//===- relaxation_multipass.cpp - Section 8 multi-pass traversal ----------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Relaxation codes defeat single-sweep shackling: in Gauss-Seidel every
// element eventually affects every other, so no one-pass block traversal is
// legal. The paper's Section 8 answer is to visit the blocked array
// repeatedly, executing in each visit only the instances whose dependences
// are satisfied. This example shows (a) the exact legality test rejecting
// the single-sweep shackle with a concrete counterexample, and (b) the
// multi-pass runtime executing it correctly anyway, with the pass count
// growing with the number of relaxation sweeps.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"
#include "runtime/MultiPass.h"

#include <cstdio>

using namespace shackle;

int main() {
  BenchSpec Spec = makeSeidel1D();
  const Program &P = *Spec.Prog;
  std::printf("== 1-D Gauss-Seidel ==\n%s\n", P.str().c_str());

  ShackleChain Chain = seidelShackle(P, 8);
  LegalityResult R = checkLegality(P, Chain);
  std::printf("single-sweep shackle (blocks of 8): %s\n",
              R.summary(P).c_str());
  if (!R.Legal && !R.Violations.empty())
    std::printf("counterexample: %s\n\n",
                R.Violations[0].witnessStr(P).c_str());

  const int64_t N = 64;
  for (int64_t T : {1, 2, 4, 8}) {
    ProgramInstance Ref(P, {N, T}), Test(P, {N, T});
    Ref.fillRandom(5, 0.0, 1.0);
    Test.buffer(0) = Ref.buffer(0);
    runLoopNest(generateOriginalCode(P), Ref);
    MultiPassResult M = runMultiPassShackled(P, Chain.Factors[0], Test);
    std::printf("T=%-2lld sweeps: %u passes over the blocks, %llu instances,"
                " max diff vs original = %g\n",
                static_cast<long long>(T), M.Passes,
                static_cast<unsigned long long>(M.Instances),
                Ref.maxAbsDifference(Test));
  }
  return 0;
}
