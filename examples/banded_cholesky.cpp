//===- banded_cholesky.cpp - Blocking composed with data reshaping -------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The paper's Figure 15 setting: banded Cholesky factorization is "regular
// Cholesky factorization restricted to accessing data in the band", the
// same data shackle as for the dense code is applied to the restricted
// program, and the physical array uses LAPACK band storage — i.e. the
// logical blocking composes with a physical data transformation. This
// example prints the restricted source, the blocked code generated for it,
// and verifies the transformed band-storage execution against both the
// original band program and a dense Cholesky restricted to the band.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "kernels/Baselines.h"
#include "programs/Benchmarks.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

using namespace shackle;

int main() {
  BenchSpec Spec = makeCholeskyBanded();
  const Program &P = *Spec.Prog;
  std::printf("== Banded Cholesky source (band-restricted, 0-based) ==\n%s\n",
              P.str().c_str());

  ShackleChain Chain = choleskyShackleStores(P, 16);
  LegalityResult R = checkLegality(P, Chain);
  std::printf("stores shackle with 16x16 logical blocks: %s\n\n",
              R.summary(P).c_str());
  if (!R.Legal)
    return 1;

  LoopNest Blocked = generateShackledCode(P, Chain);
  std::printf("== Blocked code (walks LAPACK band storage) ==\n%s\n",
              Blocked.str().c_str());

  // Verify against the original program and against a dense factorization
  // restricted to the band.
  const int64_t N = 60, BW = 9;
  ProgramInstance Ref(P, {N, BW}), Test(P, {N, BW});
  Ref.fillRandom(4, 0.5, 1.5);
  for (int64_t J = 0; J < N; ++J) {
    int64_t Idx[2] = {J, J};
    Ref.buffer(0)[Ref.offset(0, Idx)] += 3.0 * static_cast<double>(BW + 1);
  }
  Test.buffer(0) = Ref.buffer(0);
  std::vector<double> Band0 = Ref.buffer(0);

  runLoopNest(generateOriginalCode(P), Ref);
  runLoopNest(Blocked, Test);
  std::printf("blocked vs original band program: max diff = %g\n",
              Ref.maxAbsDifference(Test));

  // Dense cross-check: expand the band, factor densely, compare in-band.
  std::vector<double> Dense(N * N, 0.0);
  for (int64_t J = 0; J < N; ++J)
    for (int64_t I = J; I <= std::min(N - 1, J + BW); ++I) {
      double V = Band0[(I - J) + J * (BW + 1)];
      Dense[I * N + J] = V;
      Dense[J * N + I] = V;
    }
  naiveCholeskyRight(Dense.data(), N);
  double MaxDiff = 0;
  for (int64_t J = 0; J < N; ++J)
    for (int64_t I = J; I <= std::min(N - 1, J + BW); ++I) {
      int64_t Idx[2] = {I, J};
      MaxDiff = std::max(MaxDiff,
                         std::fabs(Test.buffer(0)[Test.offset(0, Idx)] -
                                   Dense[I * N + J]));
    }
  std::printf("blocked band factor vs dense factor (in band): max diff = "
              "%g\n",
              MaxDiff);
  return 0;
}
