//===- adi_fusion.cpp - Shackling as fusion + interchange ----------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The ADI kernel (paper Figure 14): choosing B[i-1,k] as the data-centric
// reference in both statements and blocking B into 1x1 blocks traversed in
// storage order performs, in one data-centric step, what the control-centric
// recipe needs two transformations for (fuse the k loops, then interchange
// with the i loop). The generated code *is* the paper's Figure 14(ii).
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <cstdio>

using namespace shackle;

int main() {
  BenchSpec Spec = makeADI();
  const Program &P = *Spec.Prog;
  std::printf("== ADI input code (paper Figure 14(i), 0-based) ==\n%s\n",
              P.str().c_str());

  ShackleChain Chain = adiShackle(P);
  LegalityResult R = checkLegality(P, Chain);
  std::printf("1x1 shackle on B[i-1,k]: %s\n\n", R.summary(P).c_str());
  if (!R.Legal)
    return 1;

  LoopNest Fused = generateShackledCode(P, Chain);
  std::printf("== Transformed code (fusion + interchange, Figure 14(ii)) =="
              "\n%s\n",
              Fused.str().c_str());

  LoopNest Orig = generateOriginalCode(P);
  int64_t N = 64;
  ProgramInstance A(P, {N}), B(P, {N});
  A.fillRandom(17, 1.0, 2.0);
  for (unsigned Id = 0; Id < P.getNumArrays(); ++Id)
    B.buffer(Id) = A.buffer(Id);
  runLoopNest(Orig, A);
  runLoopNest(Fused, B);
  std::printf("verified on N=%lld: max diff = %g\n",
              static_cast<long long>(N), A.maxAbsDifference(B));
  return 0;
}
