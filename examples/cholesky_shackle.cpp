//===- cholesky_shackle.cpp - Imperfect nests and shackle products ------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The paper's flagship imperfectly nested example: right-looking Cholesky
// factorization. This example
//
//   * enumerates all six single-shackle reference choices of Section 6.1
//     and reports which are legal (the paper's census);
//   * prints the blocked code produced by the "writes" shackle — compare
//     with the paper's Figure 7: per block-column, updates from the left,
//     then a baby Cholesky of the diagonal block, then for each off-diagonal
//     block updates from the left followed by interleaved scaling/updates;
//   * forms Cartesian products (writes x reads, reads x writes) and verifies
//     both against the original program.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <cstdio>

using namespace shackle;

int main() {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  std::printf("== Right-looking Cholesky (paper Figure 1(ii), 0-based) ==\n"
              "%s\n",
              P.str().c_str());

  // Section 6.1 census: S1 must take A[J,J]; S2 has 2 choices, S3 has 3.
  std::printf("== Single-shackle legality census (blocks 64x64) ==\n");
  const char *S2Names[] = {"A[I,J]", "A[J,J]"};
  const char *S3Names[] = {"A[L,K]", "A[L,J]", "A[K,J]"};
  for (unsigned R2 = 1; R2 <= 2; ++R2) {
    for (unsigned R3 = 1; R3 <= 3; ++R3) {
      std::vector<unsigned> RefIdx = {0, R2, R3};
      ShackleChain Chain;
      Chain.Factors.push_back(DataShackle::onRefs(
          P, DataBlocking::rectangular(0, {64, 64}, {1, 0}), RefIdx));
      LegalityResult R = checkLegality(P, Chain);
      std::printf("  S1=A[J,J]  S2=%s  S3=%s  ->  %s\n", S2Names[R2 - 1],
                  S3Names[R3 - 1], R.Legal ? "LEGAL" : "illegal");
    }
  }
  std::printf("(The paper's prose lists A[L,J] for S3 in the second legal\n"
              " choice; the exact test shows A[K,J] is the one that is "
              "legal.)\n\n");

  // The writes shackle: Figure 7.
  ShackleChain Writes = choleskyShackleStores(P, 64);
  LoopNest Blocked = generateShackledCode(P, Writes);
  std::printf("== Blocked code from the writes shackle (Figure 7) ==\n%s\n",
              Blocked.str().c_str());

  // Products (Section 6.1): fully blocked code.
  for (bool WritesFirst : {true, false}) {
    ShackleChain Prod = choleskyShackleProduct(P, 64, WritesFirst);
    LegalityResult R = checkLegality(P, Prod);
    std::printf("Product %s: %s\n", WritesFirst ? "writes x reads"
                                                : "reads x writes",
                R.summary(P).c_str());
    if (!R.Legal)
      continue;
    LoopNest Nest = generateShackledCode(P, Prod);
    LoopNest Orig = generateOriginalCode(P);
    int64_t N = 150;
    ProgramInstance RefI(P, {N}), TestI(P, {N});
    RefI.fillRandom(5, 0.5, 1.5);
    for (int64_t D = 0; D < N; ++D) {
      int64_t Idx[2] = {D, D};
      RefI.buffer(0)[RefI.offset(0, Idx)] += 3.0 * static_cast<double>(N);
    }
    TestI.buffer(0) = RefI.buffer(0);
    runLoopNest(Orig, RefI);
    runLoopNest(Nest, TestI);
    std::printf("  verified on N=%lld: max diff = %g\n",
                static_cast<long long>(N), RefI.maxAbsDifference(TestI));
  }
  return 0;
}
