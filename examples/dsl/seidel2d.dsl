# 2-D Gauss-Seidel relaxation: the paper's Section 8 example class where a
# single block sweep cannot be legal. Try:
#   shackle file examples/dsl/seidel2d.dsl legality --array=A --block=8,8
#   (then see examples/relaxation_multipass for the multi-pass runtime)
param N
param T
array A[N][N]

do t = 0, T-1
  do i = 1, N-2
    do j = 1, N-2
      S1: A[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j] + A[i][j-1] + A[i][j+1])
    end
  end
end
