# Matrix multiplication, I-J-K order (paper Figure 1(i), 0-based).
param N
array C[N][N] colmajor
array A[N][N] colmajor
array B[N][N] colmajor

do I = 0, N-1
  do J = 0, N-1
    do K = 0, N-1
      S1: C[I][J] = C[I][J] + A[I][K]*B[K][J]
    end
  end
end
