# Upper-triangular solve, written with flipped indices so loops ascend while
# the data flows bottom-up. The forward block walk over b is illegal; the
# reversed walk is legal (the paper's "similar to loop reversal" remark):
#   shackle file examples/dsl/trisolve_upper.dsl legality --array=b --block=8
#   shackle file examples/dsl/trisolve_upper.dsl legality --array=b --block=8 --reversed
param N
array b[N]
array U[N][N] colmajor

do i = 0, N-1
  do j = 0, i-1
    S1: b[N-1-i] = b[N-1-i] - U[N-1-i][N-1-j] * b[N-1-j]
  end
  S2: b[N-1-i] = b[N-1-i] / U[N-1-i][N-1-i]
end
