# One Jacobi sweep over a 2-D grid (ping-pong arrays): every statement
# stores to New, so blocking New through the stores tiles the sweep.
param N
array New[N][N] colmajor
array Old[N][N] colmajor

do i = 1, N-2
  do j = 1, N-2
    S1: New[i][j] = 0.25 * (Old[i-1][j] + Old[i+1][j] + Old[i][j-1] + Old[i][j+1])
  end
end
