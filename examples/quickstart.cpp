//===- quickstart.cpp - Shackle in five minutes -------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The paper's running example, end to end through the public API:
//
//   1. write matrix multiplication in the loop-nest IR;
//   2. block array C with 25x25 cutting planes and shackle the C[I,J]
//      reference (paper Definition 1);
//   3. check legality with the exact integer test (Theorem 1);
//   4. look at the naive "runtime resolution" code (Figure 5) and the
//      polyhedrally simplified code (Figure 6);
//   5. execute both with the interpreter and confirm they compute exactly
//      what the original program computes.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"

#include <cstdio>

using namespace shackle;

int main() {
  // --- 1. The source program: C += A * B in I-J-K order. -----------------
  Program P;
  unsigned N = P.addParam("N");
  unsigned C = P.addSquareArray("C", 2, N);
  unsigned A = P.addSquareArray("A", 2, N);
  unsigned B = P.addSquareArray("B", 2, N);

  unsigned I = P.beginLoop("I", P.cst(0), P.v(N) - 1);
  unsigned J = P.beginLoop("J", P.cst(0), P.v(N) - 1);
  unsigned K = P.beginLoop("K", P.cst(0), P.v(N) - 1);
  ArrayRef CRef;
  CRef.ArrayId = C;
  CRef.Indices = {P.v(I), P.v(J)};
  ScalarExpr::Ptr Rhs = ScalarExpr::add(
      ScalarExpr::load(CRef),
      ScalarExpr::mul(
          ScalarExpr::load(ArrayRef{A, {P.v(I), P.v(K)}}),
          ScalarExpr::load(ArrayRef{B, {P.v(K), P.v(J)}})));
  P.addStmt("S1", CRef, std::move(Rhs));
  P.endLoop();
  P.endLoop();
  P.endLoop();
  P.finalize();

  std::printf("== Source program (paper Figure 1(i), 0-based) ==\n%s\n",
              P.str().c_str());

  // --- 2. Block C into 25x25 blocks; shackle C[I,J]. ----------------------
  ShackleChain Chain;
  Chain.Factors.push_back(
      DataShackle::onStores(P, DataBlocking::rectangular(C, {25, 25})));

  // --- 3. Legality (Theorem 1): exact, with N symbolic. -------------------
  LegalityResult Legal = checkLegality(P, Chain);
  std::printf("Shackle on C is %s\n\n", Legal.summary(P).c_str());
  if (!Legal.Legal)
    return 1;

  // --- 4. Generated code, naive and simplified. ---------------------------
  LoopNest Naive = generateNaiveShackledCode(P, Chain);
  std::printf("== Naive runtime-resolution code (Figure 5) ==\n%s\n",
              Naive.str().c_str());
  LoopNest Blocked = generateShackledCode(P, Chain);
  std::printf("== Simplified blocked code (Figure 6) ==\n%s\n",
              Blocked.str().c_str());

  // --- 5. Execute all three on the same inputs. ---------------------------
  LoopNest Orig = generateOriginalCode(P);
  ProgramInstance RefI(P, {40}), NaiveI(P, {40}), BlockedI(P, {40});
  RefI.fillRandom(2024, 0.5, 1.5);
  NaiveI.fillRandom(2024, 0.5, 1.5);
  BlockedI.fillRandom(2024, 0.5, 1.5);
  runLoopNest(Orig, RefI);
  runLoopNest(Naive, NaiveI);
  runLoopNest(Blocked, BlockedI);
  std::printf("max |orig - naive|   = %g\n",
              RefI.maxAbsDifference(NaiveI));
  std::printf("max |orig - blocked| = %g\n",
              RefI.maxAbsDifference(BlockedI));
  return 0;
}
