//===- multilevel_mmm.cpp - Multi-level blocking (Section 6.3) ----------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Blocking for multiple levels of memory hierarchy as a Cartesian product
// of products of shackles: the outer factor (C x A at 64) blocks for the
// slow level, the inner factor (C x A at 8) refines each 64-block into
// 8-blocks for the fast level — the paper's Figure 10. The example prints
// the generated code and then demonstrates the effect on a simulated
// two-level cache.
//
//===----------------------------------------------------------------------===//

#include "cachesim/CacheSim.h"
#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <cstdio>

using namespace shackle;

namespace {

void simulate(const char *Label, const LoopNest &Nest, const Program &P,
              int64_t N) {
  ProgramInstance Inst(P, {N});
  Inst.fillRandom(3, 0.5, 1.5);
  CacheHierarchy H({
      CacheConfig{"L1", 32 * 1024, 64, 4},
      CacheConfig{"L2", 256 * 1024, 64, 8},
  });
  TraceFn Trace = [&H](unsigned ArrayId, int64_t Off, bool) {
    H.access((static_cast<uint64_t>(ArrayId + 1) << 33) +
             static_cast<uint64_t>(Off) * sizeof(double));
  };
  runLoopNest(Nest, Inst, &Trace);
  std::printf("-- %s (N=%lld) --\n%s", Label, static_cast<long long>(N),
              H.report().c_str());
}

} // namespace

int main() {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;

  ShackleChain TwoLevel = mmmShackleTwoLevel(P, 64, 8);
  LegalityResult R = checkLegality(P, TwoLevel);
  std::printf("two-level shackle ((CxA)@64) x ((CxA)@8): %s\n\n",
              R.summary(P).c_str());
  if (!R.Legal)
    return 1;

  LoopNest Nest = generateShackledCode(P, TwoLevel);
  std::printf("== Two-level blocked matrix multiply (Figure 10) ==\n%s\n",
              Nest.str().c_str());

  // Deterministic cache behaviour: original vs one-level vs two-level.
  int64_t N = 160;
  LoopNest Orig = generateOriginalCode(P);
  simulate("original I-J-K", Orig, P, N);
  LoopNest One = generateShackledCode(P, mmmShackleCxA(P, 8));
  simulate("one-level (C x A)@8", One, P, N);
  LoopNest Two = generateShackledCode(P, mmmShackleTwoLevel(P, 40, 8));
  simulate("two-level (C x A)@40 x (C x A)@8", Two, P, N);
  return 0;
}
