//===- auto_shackle.cpp - Automatic shackle selection ---------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The paper's Section 8 plan, running: enumerate plausible data shackles
// for right-looking Cholesky, discard the illegal ones with the exact
// Theorem-1 test, rank the legal ones with the cache cost model, and print
// the resulting league table plus a block-size training sweep for the
// winner.
//
//===----------------------------------------------------------------------===//

#include "autotune/AutoShackle.h"
#include "core/ShackleDriver.h"
#include "programs/Benchmarks.h"

#include <cstdio>

using namespace shackle;

int main() {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  std::printf("Searching shackles for:\n%s\n", P.str().c_str());

  AutoShackleOptions Opts;
  Opts.BlockSizes = {8, 16};
  Opts.EvalParams = {96};
  AutoShackleResult R = searchShackles(P, /*ArrayId=*/0, Opts);

  std::printf("%-64s %8s %12s %12s %12s\n", "candidate", "legal", "L1 miss",
              "L2 miss", "cost");
  for (const ShackleCandidate &C : R.Candidates) {
    if (C.Evaluated)
      std::printf("%-64s %8s %12llu %12llu %12.0f\n", C.Description.c_str(),
                  "yes",
                  static_cast<unsigned long long>(C.Misses[0]),
                  static_cast<unsigned long long>(C.Misses[1]), C.Cost);
    else
      std::printf("%-64s %8s\n", C.Description.c_str(),
                  C.Legal ? "yes" : "no");
  }

  if (const ShackleCandidate *Best = R.best()) {
    std::printf("\nwinner: %s\n", Best->Description.c_str());
    std::printf("\nblock-size training sweep for the winner's structure:\n");
    for (auto [B, Cost] :
         sweepBlockSizes(P, Best->Chain, {4, 8, 16, 32, 64}, Opts))
      std::printf("  B=%-4lld cost=%.0f\n", static_cast<long long>(B), Cost);
    std::printf("\ngenerated code for the winner:\n%s",
                generateShackledCode(P, Best->Chain).str().c_str());
  }
  return 0;
}
