//===- Registry.cpp - Named benchmark/config registry -------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "programs/Registry.h"

using namespace shackle;

const std::map<std::string, BenchEntry> &shackle::benchRegistry() {
  static const std::map<std::string, BenchEntry> Registry = {
      {"matmul",
       {makeMatMul,
        {{"c", mmmShackleC},
         {"cxa", mmmShackleCxA},
         {"two-level",
          [](const Program &P, int64_t B) {
            return mmmShackleTwoLevel(P, B, B >= 8 ? B / 8 : 1);
          }}},
        64}},
      {"cholesky-right",
       {makeCholeskyRight,
        {{"stores", choleskyShackleStores},
         {"reads", choleskyShackleReads},
         {"product-wr",
          [](const Program &P, int64_t B) {
            return choleskyShackleProduct(P, B, true);
          }},
         {"product-rw",
          [](const Program &P, int64_t B) {
            return choleskyShackleProduct(P, B, false);
          }}},
        64}},
      {"cholesky-left",
       {makeCholeskyLeft, {{"stores", choleskyShackleStores}}, 64}},
      {"qr", {makeQRHouseholder, {{"cols", qrColumnShackle}}, 32}},
      {"adi",
       {makeADI,
        {{"fused", [](const Program &P, int64_t) { return adiShackle(P); }},
         {"two-level",
          [](const Program &P, int64_t B) {
            return adiShackleTwoLevel(P, B < 2 ? 8 : B);
          }}},
        1}},
      {"gmtry", {makeGmtry, {{"stores", gmtryShackleStores}}, 64}},
      {"banded",
       {makeCholeskyBanded, {{"stores", choleskyShackleStores}}, 32}},
      {"seidel", {makeSeidel1D, {{"blocks", seidelShackle}}, 8}},
      {"seidel2d",
       {makeSeidel2D,
        {{"blocks",
          [](const Program &P, int64_t B) {
            ShackleChain Chain;
            Chain.Factors.push_back(DataShackle::onStores(
                P, DataBlocking::rectangular(0, {B, B})));
            return Chain;
          }}},
        8}},
      {"trisolve-upper",
       {[] { return makeTriangularSolve(false); },
        {{"blocks",
          [](const Program &P, int64_t B) {
            return triSolveShackle(P, B, /*Reversed=*/false);
          }},
         {"blocks-reversed",
          [](const Program &P, int64_t B) {
            return triSolveShackle(P, B, /*Reversed=*/true);
          }}},
        8}},
  };
  return Registry;
}
