//===- Benchmarks.h - The paper's benchmark programs ------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builders for every program the paper evaluates (Sections 2 and 7), in the
/// loop-nest IR, plus the shackle configurations the paper applies to them.
/// All programs are 0-based (the paper's listings are 1-based Fortran; the
/// iteration spaces are identical up to the origin shift).
///
/// Conventions, for every builder:
///  * parameter 0 is the problem size N;
///  * the factored/blocked matrix is array 0;
///  * statement labels follow the paper (S1, S2, S3 for Cholesky).
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PROGRAMS_BENCHMARKS_H
#define SHACKLE_PROGRAMS_BENCHMARKS_H

#include "core/DataShackle.h"
#include "ir/Program.h"

#include <functional>
#include <memory>
#include <string>

namespace shackle {

/// A benchmark program with its metadata.
struct BenchSpec {
  std::string Name;
  std::unique_ptr<Program> Prog;
  /// The array the paper blocks (C for MMM, A elsewhere).
  unsigned MainArray = 0;
  /// Useful floating-point operation count as a function of the parameter
  /// values (for MFlops reporting, matching the paper's graphs).
  std::function<double(const std::vector<int64_t> &)> Flops;
};

/// Matrix multiplication C += A * B in I-J-K order (paper Figure 1(i)).
/// Arrays: 0 = C, 1 = A, 2 = B.
BenchSpec makeMatMul();

/// Right-looking Cholesky factorization (paper Figure 1(ii)).
/// Array 0 = A (symmetric positive definite; lower triangle used).
BenchSpec makeCholeskyRight();

/// Left-looking Cholesky factorization (paper Figure 1(iii)).
BenchSpec makeCholeskyLeft();

/// QR factorization by Householder reflections, pointwise algorithm
/// (paper Figure 12; the reflector vectors are stored below the diagonal
/// of A and the trailing matrix is updated eagerly).
/// Arrays: 0 = A, 1 = sig, 2 = alpha, 3 = beta, 4 = w, 5 = rdiag.
BenchSpec makeQRHouseholder();

/// The ADI kernel of McKinley et al. used in paper Figure 13(ii)/14.
/// Arrays: 0 = B, 1 = X, 2 = A. Parameter 0 is N (square arrays).
BenchSpec makeADI();

/// The GMTRY kernel (SPEC Dnasa7): Gaussian elimination across rows without
/// pivoting (paper Figure 13(i)). Array 0 = A.
BenchSpec makeGmtry();

/// Banded right-looking Cholesky: regular Cholesky restricted to a band of
/// bandwidth parameter 1 ("bw"), with A in LAPACK-style band storage
/// (paper Figure 15). Array 0 = A.
BenchSpec makeCholeskyBanded();

/// Symmetric rank-K update C += A * A^T (lower triangle): the other
/// BLAS-3 workhorse of blocked factorizations. Arrays: 0 = C, 1 = A.
BenchSpec makeSyrk();

/// Triangular matrix multiply B := L * B with unit-stride updates (L lower
/// triangular, in-place on B): TRMM, the third BLAS-3 kernel LAPACK-style
/// factorizations lean on. Arrays: 0 = B, 1 = L.
BenchSpec makeTrmm();

/// Matrix multiplication with all three matrices physically reshaped into
/// Tile x Tile block-major storage: the paper's Section 5.3 observation
/// that the blocking *map* is logical but may be composed with a physical
/// data transformation. Same iteration code as makeMatMul.
BenchSpec makeMatMulTiled(int64_t Tile);

/// In-place triangular solve of L y = b (Lower = true, forward
/// substitution) or U y = b (Lower = false, written with flipped indices so
/// the source iterates increasing loop variables while the data flows from
/// the bottom of b upward). Arrays: 0 = b (vector), 1 = the matrix.
/// The paper's Section 8 example: for the upper solve, walking the blocks
/// of b top-to-bottom is illegal but bottom-to-top (a Reversed plane set)
/// is legal — "this is similar to loop reversal".
BenchSpec makeTriangularSolve(bool Lower);

/// Triangular solve: block b into Bsz-element blocks through the stores.
ShackleChain triSolveShackle(const Program &P, int64_t Bsz, bool Reversed);

/// 1-D Gauss-Seidel relaxation: T sweeps of A[i] = (A[i-1]+A[i]+A[i+1])/3.
/// The paper's Section 8 example of a program where a single sweep over the
/// blocked array cannot be legal (every element eventually affects every
/// other); used by the multi-pass runtime. Parameters: 0 = N, 1 = T.
BenchSpec makeSeidel1D();

/// 2-D Gauss-Seidel: T five-point relaxation sweeps over an N x N grid
/// (in-place, so each sweep reads the current iterate's west/north
/// neighbours). Parameters: 0 = N, 1 = T. Array 0 = A.
BenchSpec makeSeidel2D();

//===----------------------------------------------------------------------===//
// Shackle configurations (Section 6.1 and Section 7 of the paper)
//===----------------------------------------------------------------------===//

/// MMM: block C with Bsz x Bsz blocks, shackle C[I,J] in the statement.
/// Produces the partially blocked code of Figure 6.
ShackleChain mmmShackleC(const Program &P, int64_t Bsz);

/// MMM: Cartesian product of the C and A shackles -> fully blocked code of
/// Figure 3.
ShackleChain mmmShackleCxA(const Program &P, int64_t Bsz);

/// MMM: two-level blocking ((C x A) at Outer) x ((C x A) at Inner), the
/// Figure 10 code. Outer must be a multiple of Inner for clean nesting.
ShackleChain mmmShackleTwoLevel(const Program &P, int64_t Outer,
                                int64_t Inner);

/// Cholesky (either variant): block A, shackle every statement through its
/// store ("writes" choice; one of the two legal single shackles).
ShackleChain choleskyShackleStores(const Program &P, int64_t Bsz);

/// Cholesky: the other legal choice, shackling the reads (A[J,J] in S1 and
/// S2, A[L,J] in S3).
ShackleChain choleskyShackleReads(const Program &P, int64_t Bsz);

/// Cholesky: product of the writes and reads shackles -> fully blocked code
/// (Section 6.1; order Writes x Reads gives right-looking, Reads x Writes
/// left-looking).
ShackleChain choleskyShackleProduct(const Program &P, int64_t Bsz,
                                    bool WritesFirst);

/// QR: block the columns of A (1-D blocking) and tie the update statements
/// to the column being updated -> lazy ("left-looking") blocked QR.
ShackleChain qrColumnShackle(const Program &P, int64_t Bsz);

/// ADI: block B with 1x1 blocks traversed in column-major order, shackling
/// B[i-1,k] in both statements -> loop fusion + interchange (Figure 14(ii)).
ShackleChain adiShackle(const Program &P);

/// ADI: two-level chain for hierarchical scheduling - an outer factor that
/// groups B's columns into ColGroup-wide panels (same shackled reference
/// B[i-1,k]) followed by the adiShackle factor, so outer tasks are column
/// panels whose 1x1 inner blocks replay serially. ColGroup must be >= 1.
ShackleChain adiShackleTwoLevel(const Program &P, int64_t ColGroup);

/// GMTRY: 2-D blocking of A through the stores, like Cholesky.
ShackleChain gmtryShackleStores(const Program &P, int64_t Bsz);

/// Seidel: block the 1-D array into Bsz-element blocks, shackling the
/// store A[i]. Illegal as a single-pass shackle; intended for the
/// multi-pass runtime (runMultiPassShackled).
ShackleChain seidelShackle(const Program &P, int64_t Bsz);

} // namespace shackle

#endif // SHACKLE_PROGRAMS_BENCHMARKS_H
