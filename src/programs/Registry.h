//===- Registry.h - Named benchmark/config registry -------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The shared registry of named benchmarks and their shackle configurations,
/// used by both the CLI driver and the plan-cache service: a benchmark name
/// resolves to a program factory plus a map of config names to chain
/// factories parameterized by block size.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PROGRAMS_REGISTRY_H
#define SHACKLE_PROGRAMS_REGISTRY_H

#include "core/DataShackle.h"
#include "programs/Benchmarks.h"

#include <cstdint>
#include <functional>
#include <map>
#include <string>

namespace shackle {

struct BenchEntry {
  std::function<BenchSpec()> Make;
  /// Config name -> chain factory (program, block size).
  std::map<std::string,
           std::function<ShackleChain(const Program &, int64_t)>>
      Configs;
  int64_t DefaultBlock = 64;
};

/// The process-wide benchmark registry (name -> entry). Immutable after
/// first use; safe to read from concurrent service threads.
const std::map<std::string, BenchEntry> &benchRegistry();

} // namespace shackle

#endif // SHACKLE_PROGRAMS_REGISTRY_H
