//===- Benchmarks.cpp - The paper's benchmark programs -----------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "programs/Benchmarks.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace shackle;

namespace {

ScalarExpr::Ptr ld(unsigned Array, std::initializer_list<AffineExpr> Idx) {
  ArrayRef R;
  R.ArrayId = Array;
  R.Indices = Idx;
  return ScalarExpr::load(std::move(R));
}

ArrayRef ref(unsigned Array, std::initializer_list<AffineExpr> Idx) {
  ArrayRef R;
  R.ArrayId = Array;
  R.Indices = Idx;
  return R;
}

/// Finds a statement id by label.
unsigned stmtByLabel(const Program &P, const std::string &Label) {
  for (unsigned Id = 0; Id < P.getNumStmts(); ++Id)
    if (P.getStmt(Id).Label == Label)
      return Id;
  fatalError("no statement with the requested label");
}

} // namespace

//===----------------------------------------------------------------------===//
// Matrix multiplication (Figure 1(i))
//===----------------------------------------------------------------------===//

BenchSpec shackle::makeMatMul() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N");
  unsigned C = P->addSquareArray("C", 2, N, LayoutKind::ColMajor);
  unsigned A = P->addSquareArray("A", 2, N, LayoutKind::ColMajor);
  unsigned B = P->addSquareArray("B", 2, N, LayoutKind::ColMajor);

  unsigned I = P->beginLoop("I", P->cst(0), P->v(N) - 1);
  unsigned J = P->beginLoop("J", P->cst(0), P->v(N) - 1);
  unsigned K = P->beginLoop("K", P->cst(0), P->v(N) - 1);
  P->addStmt("S1", ref(C, {P->v(I), P->v(J)}),
             ScalarExpr::add(ld(C, {P->v(I), P->v(J)}),
                             ScalarExpr::mul(ld(A, {P->v(I), P->v(K)}),
                                             ld(B, {P->v(K), P->v(J)}))));
  P->endLoop();
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "matmul";
  Spec.Prog = std::move(P);
  Spec.MainArray = C;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    return 2.0 * N * N * N;
  };
  return Spec;
}

//===----------------------------------------------------------------------===//
// Cholesky factorizations (Figure 1(ii), 1(iii))
//===----------------------------------------------------------------------===//

BenchSpec shackle::makeCholeskyRight() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N");
  unsigned A = P->addSquareArray("A", 2, N, LayoutKind::ColMajor);

  unsigned J = P->beginLoop("J", P->cst(0), P->v(N) - 1);
  P->addStmt("S1", ref(A, {P->v(J), P->v(J)}),
             ScalarExpr::sqrt(ld(A, {P->v(J), P->v(J)})));
  unsigned I = P->beginLoop("I", P->v(J) + 1, P->v(N) - 1);
  P->addStmt("S2", ref(A, {P->v(I), P->v(J)}),
             ScalarExpr::div(ld(A, {P->v(I), P->v(J)}),
                             ld(A, {P->v(J), P->v(J)})));
  P->endLoop();
  unsigned L = P->beginLoop("L", P->v(J) + 1, P->v(N) - 1);
  unsigned K = P->beginLoop("K", P->v(J) + 1, P->v(L));
  P->addStmt("S3", ref(A, {P->v(L), P->v(K)}),
             ScalarExpr::sub(ld(A, {P->v(L), P->v(K)}),
                             ScalarExpr::mul(ld(A, {P->v(L), P->v(J)}),
                                             ld(A, {P->v(K), P->v(J)}))));
  P->endLoop();
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "cholesky-right";
  Spec.Prog = std::move(P);
  Spec.MainArray = A;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    return N * N * N / 3.0;
  };
  return Spec;
}

BenchSpec shackle::makeCholeskyLeft() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N");
  unsigned A = P->addSquareArray("A", 2, N, LayoutKind::ColMajor);

  unsigned J = P->beginLoop("J", P->cst(0), P->v(N) - 1);
  unsigned L = P->beginLoop("L", P->v(J), P->v(N) - 1);
  unsigned K = P->beginLoop("K", P->cst(0), P->v(J) - 1);
  P->addStmt("S3", ref(A, {P->v(L), P->v(J)}),
             ScalarExpr::sub(ld(A, {P->v(L), P->v(J)}),
                             ScalarExpr::mul(ld(A, {P->v(L), P->v(K)}),
                                             ld(A, {P->v(J), P->v(K)}))));
  P->endLoop();
  P->endLoop();
  P->addStmt("S1", ref(A, {P->v(J), P->v(J)}),
             ScalarExpr::sqrt(ld(A, {P->v(J), P->v(J)})));
  unsigned I = P->beginLoop("I", P->v(J) + 1, P->v(N) - 1);
  P->addStmt("S2", ref(A, {P->v(I), P->v(J)}),
             ScalarExpr::div(ld(A, {P->v(I), P->v(J)}),
                             ld(A, {P->v(J), P->v(J)})));
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "cholesky-left";
  Spec.Prog = std::move(P);
  Spec.MainArray = A;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    return N * N * N / 3.0;
  };
  return Spec;
}

//===----------------------------------------------------------------------===//
// QR factorization by Householder reflections
//===----------------------------------------------------------------------===//

BenchSpec shackle::makeQRHouseholder() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N");
  unsigned A = P->addSquareArray("A", 2, N, LayoutKind::ColMajor);
  unsigned Sig = P->addArray("sig", {P->v(N)});
  unsigned Alpha = P->addArray("alpha", {P->v(N)});
  unsigned Beta = P->addArray("beta", {P->v(N)});
  unsigned W = P->addArray("w", {P->v(N)});
  unsigned Rd = P->addArray("rdiag", {P->v(N)});

  // For column K: v = x + |x| e1 stored in A[K..N-1, K]; beta = v'v / 2;
  // each trailing column J is updated as a_J -= v * (v'a_J) / beta.
  unsigned K = P->beginLoop("K", P->cst(0), P->v(N) - 1);
  P->addStmt("S1", ref(Sig, {P->v(K)}), ScalarExpr::number(0.0));
  unsigned I1 = P->beginLoop("I1", P->v(K), P->v(N) - 1);
  P->addStmt("S2", ref(Sig, {P->v(K)}),
             ScalarExpr::add(ld(Sig, {P->v(K)}),
                             ScalarExpr::mul(ld(A, {P->v(I1), P->v(K)}),
                                             ld(A, {P->v(I1), P->v(K)}))));
  P->endLoop();
  P->addStmt("S3", ref(Alpha, {P->v(K)}),
             ScalarExpr::sqrt(ld(Sig, {P->v(K)})));
  P->addStmt("S4", ref(Beta, {P->v(K)}),
             ScalarExpr::add(ld(Sig, {P->v(K)}),
                             ScalarExpr::mul(ld(Alpha, {P->v(K)}),
                                             ld(A, {P->v(K), P->v(K)}))));
  P->addStmt("S5", ref(Rd, {P->v(K)}),
             ScalarExpr::neg(ld(Alpha, {P->v(K)})));
  P->addStmt("S6", ref(A, {P->v(K), P->v(K)}),
             ScalarExpr::add(ld(A, {P->v(K), P->v(K)}),
                             ld(Alpha, {P->v(K)})));
  unsigned J = P->beginLoop("J", P->v(K) + 1, P->v(N) - 1);
  P->addStmt("S7", ref(W, {P->v(J)}), ScalarExpr::number(0.0));
  unsigned I2 = P->beginLoop("I2", P->v(K), P->v(N) - 1);
  P->addStmt("S8", ref(W, {P->v(J)}),
             ScalarExpr::add(ld(W, {P->v(J)}),
                             ScalarExpr::mul(ld(A, {P->v(I2), P->v(K)}),
                                             ld(A, {P->v(I2), P->v(J)}))));
  P->endLoop();
  unsigned I3 = P->beginLoop("I3", P->v(K), P->v(N) - 1);
  P->addStmt("S9", ref(A, {P->v(I3), P->v(J)}),
             ScalarExpr::sub(
                 ld(A, {P->v(I3), P->v(J)}),
                 ScalarExpr::mul(ld(A, {P->v(I3), P->v(K)}),
                                 ScalarExpr::div(ld(W, {P->v(J)}),
                                                 ld(Beta, {P->v(K)})))));
  P->endLoop();
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "qr-householder";
  Spec.Prog = std::move(P);
  Spec.MainArray = A;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    return 4.0 * N * N * N / 3.0;
  };
  return Spec;
}

//===----------------------------------------------------------------------===//
// ADI kernel (Figure 14(i))
//===----------------------------------------------------------------------===//

BenchSpec shackle::makeADI() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N", /*MinValue=*/2);
  unsigned B = P->addSquareArray("B", 2, N, LayoutKind::ColMajor);
  unsigned X = P->addSquareArray("X", 2, N, LayoutKind::ColMajor);
  unsigned A = P->addSquareArray("A", 2, N, LayoutKind::ColMajor);

  unsigned I = P->beginLoop("i", P->cst(1), P->v(N) - 1);
  unsigned K1 = P->beginLoop("k1", P->cst(0), P->v(N) - 1);
  P->addStmt(
      "S1", ref(X, {P->v(I), P->v(K1)}),
      ScalarExpr::sub(ld(X, {P->v(I), P->v(K1)}),
                      ScalarExpr::div(
                          ScalarExpr::mul(ld(X, {P->v(I) - 1, P->v(K1)}),
                                          ld(A, {P->v(I), P->v(K1)})),
                          ld(B, {P->v(I) - 1, P->v(K1)}))));
  P->endLoop();
  unsigned K2 = P->beginLoop("k2", P->cst(0), P->v(N) - 1);
  P->addStmt(
      "S2", ref(B, {P->v(I), P->v(K2)}),
      ScalarExpr::sub(ld(B, {P->v(I), P->v(K2)}),
                      ScalarExpr::div(
                          ScalarExpr::mul(ld(A, {P->v(I), P->v(K2)}),
                                          ld(A, {P->v(I), P->v(K2)})),
                          ld(B, {P->v(I) - 1, P->v(K2)}))));
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "adi";
  Spec.Prog = std::move(P);
  Spec.MainArray = B;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    return 6.0 * (N - 1) * N;
  };
  return Spec;
}

//===----------------------------------------------------------------------===//
// GMTRY kernel: Gaussian elimination without pivoting
//===----------------------------------------------------------------------===//

BenchSpec shackle::makeGmtry() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N");
  unsigned A = P->addSquareArray("A", 2, N, LayoutKind::ColMajor);

  unsigned K = P->beginLoop("K", P->cst(0), P->v(N) - 1);
  unsigned I1 = P->beginLoop("I1", P->v(K) + 1, P->v(N) - 1);
  P->addStmt("S1", ref(A, {P->v(I1), P->v(K)}),
             ScalarExpr::div(ld(A, {P->v(I1), P->v(K)}),
                             ld(A, {P->v(K), P->v(K)})));
  P->endLoop();
  unsigned I2 = P->beginLoop("I2", P->v(K) + 1, P->v(N) - 1);
  unsigned J = P->beginLoop("J", P->v(K) + 1, P->v(N) - 1);
  P->addStmt("S2", ref(A, {P->v(I2), P->v(J)}),
             ScalarExpr::sub(ld(A, {P->v(I2), P->v(J)}),
                             ScalarExpr::mul(ld(A, {P->v(I2), P->v(K)}),
                                             ld(A, {P->v(K), P->v(J)}))));
  P->endLoop();
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "gmtry";
  Spec.Prog = std::move(P);
  Spec.MainArray = A;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    return 2.0 * N * N * N / 3.0;
  };
  return Spec;
}

//===----------------------------------------------------------------------===//
// Banded Cholesky (Figure 15)
//===----------------------------------------------------------------------===//

BenchSpec shackle::makeCholeskyBanded() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N");
  unsigned Bw = P->addParam("bw");
  unsigned A = P->addArray("A", {P->v(N), P->v(N)}, LayoutKind::BandLower,
                           /*BandParam=*/Bw);

  unsigned J = P->beginLoop("J", P->cst(0), P->v(N) - 1);
  P->addStmt("S1", ref(A, {P->v(J), P->v(J)}),
             ScalarExpr::sqrt(ld(A, {P->v(J), P->v(J)})));
  unsigned I = P->beginLoopMulti("I", {P->v(J) + 1},
                                 {P->v(N) - 1, P->v(J) + P->v(Bw)});
  P->addStmt("S2", ref(A, {P->v(I), P->v(J)}),
             ScalarExpr::div(ld(A, {P->v(I), P->v(J)}),
                             ld(A, {P->v(J), P->v(J)})));
  P->endLoop();
  unsigned L = P->beginLoopMulti("L", {P->v(J) + 1},
                                 {P->v(N) - 1, P->v(J) + P->v(Bw)});
  unsigned K = P->beginLoop("K", P->v(J) + 1, P->v(L));
  P->addStmt("S3", ref(A, {P->v(L), P->v(K)}),
             ScalarExpr::sub(ld(A, {P->v(L), P->v(K)}),
                             ScalarExpr::mul(ld(A, {P->v(L), P->v(J)}),
                                             ld(A, {P->v(K), P->v(J)}))));
  P->endLoop();
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "cholesky-banded";
  Spec.Prog = std::move(P);
  Spec.MainArray = A;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    double B = static_cast<double>(Pv[1]);
    return N * (B * B + 3.0 * B + 1.0);
  };
  return Spec;
}

//===----------------------------------------------------------------------===//
// SYRK and TRMM (BLAS-3 companions of the factorizations)
//===----------------------------------------------------------------------===//

BenchSpec shackle::makeSyrk() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N");
  unsigned C = P->addSquareArray("C", 2, N, LayoutKind::ColMajor);
  unsigned A = P->addSquareArray("A", 2, N, LayoutKind::ColMajor);

  // C[I,J] += A[I,K] * A[J,K] for J <= I (lower triangle).
  unsigned I = P->beginLoop("I", P->cst(0), P->v(N) - 1);
  unsigned J = P->beginLoop("J", P->cst(0), P->v(I));
  unsigned K = P->beginLoop("K", P->cst(0), P->v(N) - 1);
  P->addStmt("S1", ref(C, {P->v(I), P->v(J)}),
             ScalarExpr::add(ld(C, {P->v(I), P->v(J)}),
                             ScalarExpr::mul(ld(A, {P->v(I), P->v(K)}),
                                             ld(A, {P->v(J), P->v(K)}))));
  P->endLoop();
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "syrk";
  Spec.Prog = std::move(P);
  Spec.MainArray = C;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    return N * N * N; // ~N^3 useful flops on the triangle.
  };
  return Spec;
}

BenchSpec shackle::makeTrmm() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N");
  unsigned B = P->addSquareArray("B", 2, N, LayoutKind::ColMajor);
  unsigned L = P->addSquareArray("L", 2, N, LayoutKind::ColMajor);

  // In-place B := L * B, L lower triangular: row I of the result needs
  // rows 0..I of B, so rows must be produced bottom-up. With ascending
  // loops: B[N-1-Ip, J] = sum_{K <= N-1-Ip} L[N-1-Ip, K] * B[K, J],
  // accumulated in place (diagonal term last via the K loop ordering).
  unsigned Ip = P->beginLoop("Ip", P->cst(0), P->v(N) - 1);
  unsigned J = P->beginLoop("J", P->cst(0), P->v(N) - 1);
  AffineExpr Row = (P->cst(0) - P->v(Ip)) + P->v(N) - 1; // N-1-Ip.
  P->addStmt("S1", ref(B, {Row, P->v(J)}),
             ScalarExpr::mul(ld(L, {Row, Row}), ld(B, {Row, P->v(J)})));
  unsigned K = P->beginLoop("K", P->cst(0), Row - 1);
  P->addStmt("S2", ref(B, {Row, P->v(J)}),
             ScalarExpr::add(ld(B, {Row, P->v(J)}),
                             ScalarExpr::mul(ld(L, {Row, P->v(K)}),
                                             ld(B, {P->v(K), P->v(J)}))));
  P->endLoop();
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "trmm";
  Spec.Prog = std::move(P);
  Spec.MainArray = B;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    return N * N * N;
  };
  return Spec;
}

//===----------------------------------------------------------------------===//
// Physically tiled matrix multiplication (Section 5.3)
//===----------------------------------------------------------------------===//

BenchSpec shackle::makeMatMulTiled(int64_t Tile) {
  BenchSpec Spec = makeMatMul();
  // Rebuild with the same structure is unnecessary: retile the arrays of a
  // fresh program before finalize. makeMatMul already finalized, so build
  // anew here.
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N");
  unsigned C = P->addSquareArray("C", 2, N);
  unsigned A = P->addSquareArray("A", 2, N);
  unsigned B = P->addSquareArray("B", 2, N);
  P->setTiledLayout(C, Tile, Tile);
  P->setTiledLayout(A, Tile, Tile);
  P->setTiledLayout(B, Tile, Tile);

  unsigned I = P->beginLoop("I", P->cst(0), P->v(N) - 1);
  unsigned J = P->beginLoop("J", P->cst(0), P->v(N) - 1);
  unsigned K = P->beginLoop("K", P->cst(0), P->v(N) - 1);
  P->addStmt("S1", ref(C, {P->v(I), P->v(J)}),
             ScalarExpr::add(ld(C, {P->v(I), P->v(J)}),
                             ScalarExpr::mul(ld(A, {P->v(I), P->v(K)}),
                                             ld(B, {P->v(K), P->v(J)}))));
  P->endLoop();
  P->endLoop();
  P->endLoop();
  P->finalize();

  Spec.Name = "matmul-tiled";
  Spec.Prog = std::move(P);
  return Spec;
}

//===----------------------------------------------------------------------===//
// Triangular solves (Section 8's back-solve remark)
//===----------------------------------------------------------------------===//

BenchSpec shackle::makeTriangularSolve(bool Lower) {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N");
  unsigned B = P->addArray("b", {P->v(N)});
  unsigned M = P->addSquareArray("L", 2, N, LayoutKind::ColMajor);

  // For the upper solve the data flows bottom-up; the source program uses
  // flipped indices r(i) = N-1-i so loops still increase.
  auto Row = [&](const AffineExpr &V) {
    return Lower ? V : (P->cst(0) - V) + P->v(N) - 1;
  };

  unsigned I = P->beginLoop("i", P->cst(0), P->v(N) - 1);
  unsigned J = P->beginLoop("j", P->cst(0), P->v(I) - 1);
  P->addStmt("S1", ref(B, {Row(P->v(I))}),
             ScalarExpr::sub(ld(B, {Row(P->v(I))}),
                             ScalarExpr::mul(
                                 ld(M, {Row(P->v(I)), Row(P->v(J))}),
                                 ld(B, {Row(P->v(J))}))));
  P->endLoop();
  P->addStmt("S2", ref(B, {Row(P->v(I))}),
             ScalarExpr::div(ld(B, {Row(P->v(I))}),
                             ld(M, {Row(P->v(I)), Row(P->v(I))})));
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = Lower ? "trisolve-lower" : "trisolve-upper";
  Spec.Prog = std::move(P);
  Spec.MainArray = B;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    return N * N;
  };
  return Spec;
}

ShackleChain shackle::triSolveShackle(const Program &P, int64_t Bsz,
                                      bool Reversed) {
  DataBlocking Blocking = DataBlocking::rectangular(0, {Bsz});
  Blocking.Planes[0].Reversed = Reversed;
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onStores(P, std::move(Blocking)));
  return Chain;
}

//===----------------------------------------------------------------------===//
// 1-D Gauss-Seidel relaxation (Section 8)
//===----------------------------------------------------------------------===//

BenchSpec shackle::makeSeidel1D() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N", /*MinValue=*/3);
  unsigned T = P->addParam("T", /*MinValue=*/1);
  unsigned A = P->addArray("A", {P->v(N)});

  unsigned Tv = P->beginLoop("t", P->cst(0), P->v(T) - 1);
  (void)Tv;
  unsigned I = P->beginLoop("i", P->cst(1), P->v(N) - 2);
  P->addStmt(
      "S1", ref(A, {P->v(I)}),
      ScalarExpr::div(
          ScalarExpr::add(ld(A, {P->v(I) - 1}),
                          ScalarExpr::add(ld(A, {P->v(I)}),
                                          ld(A, {P->v(I) + 1}))),
          ScalarExpr::number(3.0)));
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "seidel-1d";
  Spec.Prog = std::move(P);
  Spec.MainArray = A;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    double T = static_cast<double>(Pv[1]);
    return 3.0 * (N - 2.0) * T;
  };
  return Spec;
}

BenchSpec shackle::makeSeidel2D() {
  auto P = std::make_unique<Program>();
  unsigned N = P->addParam("N", /*MinValue=*/3);
  unsigned T = P->addParam("T", /*MinValue=*/1);
  unsigned A = P->addSquareArray("A", 2, N);

  unsigned Tv = P->beginLoop("t", P->cst(0), P->v(T) - 1);
  (void)Tv;
  unsigned I = P->beginLoop("i", P->cst(1), P->v(N) - 2);
  unsigned J = P->beginLoop("j", P->cst(1), P->v(N) - 2);
  P->addStmt(
      "S1", ref(A, {P->v(I), P->v(J)}),
      ScalarExpr::mul(
          ScalarExpr::number(0.2),
          ScalarExpr::add(
              ld(A, {P->v(I), P->v(J)}),
              ScalarExpr::add(
                  ScalarExpr::add(ld(A, {P->v(I) - 1, P->v(J)}),
                                  ld(A, {P->v(I) + 1, P->v(J)})),
                  ScalarExpr::add(ld(A, {P->v(I), P->v(J) - 1}),
                                  ld(A, {P->v(I), P->v(J) + 1}))))));
  P->endLoop();
  P->endLoop();
  P->endLoop();
  P->finalize();

  BenchSpec Spec;
  Spec.Name = "seidel-2d";
  Spec.Prog = std::move(P);
  Spec.MainArray = A;
  Spec.Flops = [](const std::vector<int64_t> &Pv) {
    double N = static_cast<double>(Pv[0]);
    double T = static_cast<double>(Pv[1]);
    return 5.0 * (N - 2.0) * (N - 2.0) * T;
  };
  return Spec;
}

//===----------------------------------------------------------------------===//
// Shackle configurations
//===----------------------------------------------------------------------===//

ShackleChain shackle::mmmShackleC(const Program &P, int64_t Bsz) {
  ShackleChain Chain;
  Chain.Factors.push_back(
      DataShackle::onStores(P, DataBlocking::rectangular(0, {Bsz, Bsz})));
  return Chain;
}

ShackleChain shackle::mmmShackleCxA(const Program &P, int64_t Bsz) {
  ShackleChain Chain = mmmShackleC(P, Bsz);
  // Reference 2 of S1 is A[I,K] (refs are: store C, load C, load A, load B).
  Chain.Factors.push_back(DataShackle::onRefs(
      P, DataBlocking::rectangular(1, {Bsz, Bsz}), {2}));
  return Chain;
}

ShackleChain shackle::mmmShackleTwoLevel(const Program &P, int64_t Outer,
                                         int64_t Inner) {
  assert(Outer % Inner == 0 && "outer block must be a multiple of the inner");
  ShackleChain Chain = mmmShackleCxA(P, Outer);
  ShackleChain InnerChain = mmmShackleCxA(P, Inner);
  for (DataShackle &F : InnerChain.Factors)
    Chain.Factors.push_back(std::move(F));
  return Chain;
}

ShackleChain shackle::choleskyShackleStores(const Program &P, int64_t Bsz) {
  // Column blocks vary slowest: the paper's "top to bottom, left to right"
  // walk, which yields the Figure 7/8 code shape.
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onStores(
      P, DataBlocking::rectangular(0, {Bsz, Bsz}, {1, 0})));
  return Chain;
}

ShackleChain shackle::choleskyShackleReads(const Program &P, int64_t Bsz) {
  // S1 -> A[J,J] (load 1), S2 -> A[J,J] (load 2), S3 -> A[K,J] (load 3).
  //
  // The paper's Section 6.1 prose says "A[L,J] from S3", but that choice is
  // not legal: the update S3(J,L,K) of element A[L,K] would be shackled to
  // block (L,J) while the scaling S2(K,L) of the same element is shackled to
  // the diagonal block (K,K), and for L in a later block row the scaling's
  // block is touched first, breaking the output dependence S3 -> S2. Both
  // our exact ILP legality test and a brute-force enumeration of all
  // instance orders at small N confirm that A[K,J] is the reference that
  // makes the "reads" shackle legal (see tests/legality_test.cpp).
  std::vector<unsigned> RefIdx(P.getNumStmts(), 0);
  RefIdx[stmtByLabel(P, "S1")] = 1;
  RefIdx[stmtByLabel(P, "S2")] = 2;
  RefIdx[stmtByLabel(P, "S3")] = 3;
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onRefs(
      P, DataBlocking::rectangular(0, {Bsz, Bsz}, {1, 0}), RefIdx));
  return Chain;
}

ShackleChain shackle::choleskyShackleProduct(const Program &P, int64_t Bsz,
                                             bool WritesFirst) {
  ShackleChain Writes = choleskyShackleStores(P, Bsz);
  ShackleChain Reads = choleskyShackleReads(P, Bsz);
  ShackleChain Chain;
  if (WritesFirst) {
    Chain.Factors.push_back(std::move(Writes.Factors[0]));
    Chain.Factors.push_back(std::move(Reads.Factors[0]));
  } else {
    Chain.Factors.push_back(std::move(Reads.Factors[0]));
    Chain.Factors.push_back(std::move(Writes.Factors[0]));
  }
  return Chain;
}

ShackleChain shackle::qrColumnShackle(const Program &P, int64_t Bsz) {
  // One set of cutting planes orthogonal to the column index of A.
  DataBlocking Blocking;
  Blocking.ArrayId = 0;
  CuttingPlaneSet Cols;
  Cols.Normal = {0, 1};
  Cols.BlockSize = Bsz;
  Blocking.Planes.push_back(std::move(Cols));

  DataShackle Sh;
  Sh.Blocking = std::move(Blocking);
  Sh.ShackledRefs.resize(P.getNumStmts());

  // Column-K statements (reflector construction) tie to column K; the
  // update statements tie to the column J being updated. Statements with no
  // textual reference to A get a dummy reference (paper Section 5.3).
  auto ColRef = [&](unsigned KVar) {
    ArrayRef R;
    R.ArrayId = 0;
    R.Indices = {P.v(KVar), P.v(KVar)};
    return R;
  };
  for (unsigned Id = 0; Id < P.getNumStmts(); ++Id) {
    const Stmt &S = P.getStmt(Id);
    unsigned KVar = S.LoopVars.front();
    if (S.Label == "S7" || S.Label == "S8" || S.Label == "S9") {
      // Update statements: loop vars are (K, J, ...); use column J.
      unsigned JVar = S.LoopVars[1];
      ArrayRef R;
      R.ArrayId = 0;
      R.Indices = {P.v(JVar), P.v(JVar)};
      Sh.ShackledRefs[Id] = std::move(R);
    } else {
      Sh.ShackledRefs[Id] = ColRef(KVar);
    }
  }
  ShackleChain Chain;
  Chain.Factors.push_back(std::move(Sh));
  return Chain;
}

ShackleChain shackle::adiShackle(const Program &P) {
  // Block B with 1x1 blocks traversed column-by-column (storage order for a
  // column-major mindset): the column plane set first, then the row set.
  DataBlocking Blocking;
  Blocking.ArrayId = 0;
  CuttingPlaneSet Cols;
  Cols.Normal = {0, 1};
  Cols.BlockSize = 1;
  CuttingPlaneSet Rows;
  Rows.Normal = {1, 0};
  Rows.BlockSize = 1;
  Blocking.Planes.push_back(std::move(Cols));
  Blocking.Planes.push_back(std::move(Rows));

  DataShackle Sh;
  Sh.Blocking = std::move(Blocking);
  Sh.ShackledRefs.resize(P.getNumStmts());
  for (unsigned Id = 0; Id < P.getNumStmts(); ++Id) {
    const Stmt &S = P.getStmt(Id);
    unsigned IVar = S.LoopVars[0];
    unsigned KVar = S.LoopVars[1];
    // B[i-1, k] in both statements (a real reference in both).
    ArrayRef R;
    R.ArrayId = 0;
    R.Indices = {P.v(IVar) - 1, P.v(KVar)};
    Sh.ShackledRefs[Id] = std::move(R);
  }
  ShackleChain Chain;
  Chain.Factors.push_back(std::move(Sh));
  return Chain;
}

ShackleChain shackle::adiShackleTwoLevel(const Program &P, int64_t ColGroup) {
  assert(ColGroup >= 1 && "column group must be at least 1");
  // Outer factor: ColGroup-wide column panels of B, shackled through the
  // same B[i-1,k] reference the 1x1 inner factor uses. The panel coordinate
  // is floor(k / ColGroup), so outer tasks sweep the panels left to right
  // and the inner adiShackle factor replays its fused column-major
  // traversal within each panel.
  DataBlocking Blocking;
  Blocking.ArrayId = 0;
  CuttingPlaneSet Cols;
  Cols.Normal = {0, 1};
  Cols.BlockSize = ColGroup;
  Blocking.Planes.push_back(std::move(Cols));

  DataShackle Outer;
  Outer.Blocking = std::move(Blocking);
  Outer.ShackledRefs.resize(P.getNumStmts());
  for (unsigned Id = 0; Id < P.getNumStmts(); ++Id) {
    const Stmt &S = P.getStmt(Id);
    ArrayRef R;
    R.ArrayId = 0;
    R.Indices = {P.v(S.LoopVars[0]) - 1, P.v(S.LoopVars[1])};
    Outer.ShackledRefs[Id] = std::move(R);
  }

  ShackleChain Chain;
  Chain.Factors.push_back(std::move(Outer));
  ShackleChain Inner = adiShackle(P);
  Chain.Factors.push_back(std::move(Inner.Factors[0]));
  return Chain;
}

ShackleChain shackle::gmtryShackleStores(const Program &P, int64_t Bsz) {
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onStores(
      P, DataBlocking::rectangular(0, {Bsz, Bsz}, {1, 0})));
  return Chain;
}

ShackleChain shackle::seidelShackle(const Program &P, int64_t Bsz) {
  ShackleChain Chain;
  Chain.Factors.push_back(
      DataShackle::onStores(P, DataBlocking::rectangular(0, {Bsz})));
  return Chain;
}
