//===- EmitC.h - C++ source emission for generated code ---------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits a LoopNest as portable C++ so the benchmarks measure *compiled*
/// blocked code, exactly as the paper measured xlf-compiled Fortran. Each
/// kernel becomes
///
///   extern "C" void <name>(double **arrays, const int64_t *params);
///
/// where arrays is indexed by the program's array ids and params by its
/// parameter ids. Array addressing honors each array's layout (row-major,
/// column-major, or LAPACK band storage). The dsc-gen tool calls
/// emitTranslationUnit at build time; the result is compiled into the bench
/// binaries.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_EMITC_EMITC_H
#define SHACKLE_EMITC_EMITC_H

#include "codegen/LoopAST.h"

#include <string>
#include <vector>

namespace shackle {

/// One kernel to emit: a generated nest and its function name.
struct KernelSpec {
  std::string Name;
  const LoopNest *Nest = nullptr;
};

/// Emits the definition of a single kernel function (no preamble).
std::string emitKernel(const LoopNest &Nest, const std::string &Name);

/// Emits a complete translation unit: includes, division helpers, all kernel
/// definitions, and a name -> function registry
/// (shackle_gen_lookup(const char*)).
std::string emitTranslationUnit(const std::vector<KernelSpec> &Kernels);

/// Emits the matching header: kernel declarations, the KernelFn typedef, and
/// the registry lookup declaration.
std::string emitHeader(const std::vector<KernelSpec> &Kernels);

} // namespace shackle

#endif // SHACKLE_EMITC_EMITC_H
