//===- EmitC.cpp - C++ source emission for generated code --------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "emitc/EmitC.h"

#include "support/ErrorHandling.h"
#include "support/Writer.h"

#include <cassert>
#include <cstdio>

using namespace shackle;

namespace {

/// Renders an affine expression over scan dimensions as a C expression.
std::string cAffine(const AffineExpr &E,
                    const std::vector<std::string> &DimNames) {
  std::string S;
  bool First = true;
  for (unsigned V = 0; V < E.getNumVars(); ++V) {
    int64_t C = E.getCoeff(V);
    if (C == 0)
      continue;
    if (First) {
      if (C == -1)
        S += "-";
      else if (C != 1)
        S += std::to_string(C) + "*";
    } else {
      S += C > 0 ? " + " : " - ";
      int64_t A = C > 0 ? C : -C;
      if (A != 1)
        S += std::to_string(A) + "*";
    }
    S += DimNames[V];
    First = false;
  }
  int64_t K = E.getConstant();
  if (First)
    return std::to_string(K) + "L";
  if (K > 0)
    S += " + " + std::to_string(K);
  else if (K < 0)
    S += " - " + std::to_string(-K);
  return S;
}

std::string cBound(const BoundExpr &B,
                   const std::vector<std::string> &DimNames) {
  std::string Inner = cAffine(B.Expr, DimNames);
  if (B.Divisor == 1)
    return Inner;
  return std::string(B.IsCeil ? "shk_ceildiv(" : "shk_floordiv(") + Inner +
         ", " + std::to_string(B.Divisor) + ")";
}

std::string cBoundList(const std::vector<BoundExpr> &Bs,
                       const std::vector<std::string> &DimNames, bool IsMax) {
  assert(!Bs.empty());
  std::string S = cBound(Bs[0], DimNames);
  for (unsigned I = 1; I < Bs.size(); ++I)
    S = std::string(IsMax ? "shk_max(" : "shk_min(") + S + ", " +
        cBound(Bs[I], DimNames) + ")";
  return S;
}

std::string cRow(const ConstraintRow &Row,
                 const std::vector<std::string> &DimNames) {
  AffineExpr E = AffineExpr::constant(DimNames.size(), Row.back());
  for (unsigned V = 0; V + 1 < Row.size(); ++V)
    E.setCoeff(V, Row[V]);
  return cAffine(E, DimNames);
}

/// Emits statement bodies: array addressing and scalar expressions.
class StmtEmitter {
public:
  StmtEmitter(const Program &P, const std::vector<std::string> &DimNames)
      : P(P), DimNames(DimNames) {}

  /// Sets the variable renaming for the current statement instance.
  void bind(const Stmt &S, const std::vector<unsigned> &VarMap) {
    VarNamesC.assign(P.getNumVars(), "");
    for (unsigned V = 0; V < P.getNumParams(); ++V)
      VarNamesC[V] = P.getVarName(V);
    for (unsigned K = 0; K < VarMap.size(); ++K)
      VarNamesC[S.LoopVars[K]] = DimNames[VarMap[K]];
  }

  std::string refExpr(const ArrayRef &R) const {
    const ArrayDecl &A = P.getArray(R.ArrayId);
    std::string Off;
    switch (A.Layout) {
    case LayoutKind::RowMajor: {
      for (unsigned D = 0; D < R.Indices.size(); ++D) {
        std::string Idx = "(" + cAffine(R.Indices[D], VarNamesC) + ")";
        if (D == 0)
          Off = Idx;
        else
          Off = "(" + Off + ")*(" + cAffine(A.Extents[D], VarNamesC) + ") + " +
                Idx;
      }
      break;
    }
    case LayoutKind::ColMajor: {
      for (unsigned D = R.Indices.size(); D-- > 0;) {
        std::string Idx = "(" + cAffine(R.Indices[D], VarNamesC) + ")";
        if (D + 1 == R.Indices.size())
          Off = Idx;
        else
          Off = "(" + Off + ")*(" + cAffine(A.Extents[D], VarNamesC) + ") + " +
                Idx;
      }
      break;
    }
    case LayoutKind::BandLower: {
      assert(R.Indices.size() == 2 && "band storage is for matrices");
      std::string I = cAffine(R.Indices[0], VarNamesC);
      std::string J = cAffine(R.Indices[1], VarNamesC);
      std::string Bw = P.getVarName(A.BandParam);
      Off = "((" + I + ") - (" + J + ")) + (" + J + ")*(" + Bw + " + 1)";
      break;
    }
    case LayoutKind::TiledRowMajor: {
      // Physically tiled storage: indices are non-negative, so truncating
      // C++ division and modulo match floor semantics.
      assert(R.Indices.size() == 2 && "tiled storage is for matrices");
      std::string I = "(" + cAffine(R.Indices[0], VarNamesC) + ")";
      std::string J = "(" + cAffine(R.Indices[1], VarNamesC) + ")";
      std::string TR = std::to_string(A.TileRows);
      std::string TC = std::to_string(A.TileCols);
      std::string GridCols = "shk_ceildiv(" +
                             cAffine(A.Extents[1], VarNamesC) + ", " + TC +
                             ")";
      Off = "(((" + I + "/" + TR + ")*" + GridCols + " + " + J + "/" + TC +
            ")*" + TR + " + " + I + "%" + TR + ")*" + TC + " + " + J + "%" +
            TC;
      break;
    }
    }
    return "a" + std::to_string(R.ArrayId) + "[" + Off + "]";
  }

  std::string scalarExpr(const ScalarExpr *E) const {
    switch (E->getKind()) {
    case ExprKind::Number: {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "%.17g", E->getNumber());
      return Buf;
    }
    case ExprKind::Load:
      return refExpr(E->getRef());
    case ExprKind::Add:
      return "(" + scalarExpr(E->getLHS()) + " + " + scalarExpr(E->getRHS()) +
             ")";
    case ExprKind::Sub:
      return "(" + scalarExpr(E->getLHS()) + " - " + scalarExpr(E->getRHS()) +
             ")";
    case ExprKind::Mul:
      return "(" + scalarExpr(E->getLHS()) + " * " + scalarExpr(E->getRHS()) +
             ")";
    case ExprKind::Div:
      return "(" + scalarExpr(E->getLHS()) + " / " + scalarExpr(E->getRHS()) +
             ")";
    case ExprKind::Neg:
      return "(-" + scalarExpr(E->getLHS()) + ")";
    case ExprKind::Sqrt:
      return "std::sqrt(" + scalarExpr(E->getLHS()) + ")";
    }
    fatalError("unknown scalar expression kind");
  }

private:
  const Program &P;
  const std::vector<std::string> &DimNames;
  std::vector<std::string> VarNamesC;
};

void emitNode(const ASTNode &N, const LoopNest &Nest, StmtEmitter &SE,
              Writer &W) {
  const std::vector<std::string> &Dims = Nest.DimNames;
  switch (N.Kind) {
  case ASTKind::Loop: {
    std::string V = Dims[N.Dim];
    W.line("for (int64_t " + V + " = " + cBoundList(N.Lbs, Dims, true) +
           ", " + V + "_ub = " + cBoundList(N.Ubs, Dims, false) + "; " + V +
           " <= " + V + "_ub; ++" + V + ") {");
    W.indent();
    for (const ASTNodePtr &C : N.Body)
      emitNode(*C, Nest, SE, W);
    W.dedent();
    W.line("}");
    return;
  }
  case ASTKind::Let: {
    W.line("{");
    W.indent();
    W.line("const int64_t " + Dims[N.Dim] + " = " + cBound(N.Lbs[0], Dims) +
           ";");
    for (const ASTNodePtr &C : N.Body)
      emitNode(*C, Nest, SE, W);
    W.dedent();
    W.line("}");
    return;
  }
  case ASTKind::If: {
    std::string Cond;
    for (const ConstraintRow &Row : N.EqConds) {
      if (!Cond.empty())
        Cond += " && ";
      Cond += "(" + cRow(Row, Dims) + ") == 0";
    }
    for (const ConstraintRow &Row : N.IneqConds) {
      if (!Cond.empty())
        Cond += " && ";
      Cond += "(" + cRow(Row, Dims) + ") >= 0";
    }
    W.line("if (" + Cond + ") {");
    W.indent();
    for (const ASTNodePtr &C : N.Body)
      emitNode(*C, Nest, SE, W);
    W.dedent();
    W.line("}");
    return;
  }
  case ASTKind::Instance: {
    SE.bind(*N.S, N.VarMap);
    W.line(SE.refExpr(N.S->LHS) + " = " + SE.scalarExpr(N.S->RHS.get()) +
           ";");
    return;
  }
  }
}

} // namespace

std::string shackle::emitKernel(const LoopNest &Nest,
                                const std::string &Name) {
  const Program &P = *Nest.Prog;
  Writer W;
  W.line("extern \"C\" void " + Name +
         "(double **arrays, const int64_t *params) {");
  W.indent();
  for (unsigned V = 0; V < P.getNumParams(); ++V)
    W.line("const int64_t " + P.getVarName(V) + " = params[" +
           std::to_string(V) + "];");
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    W.line("double *__restrict a" + std::to_string(A) + " = arrays[" +
           std::to_string(A) + "];");
  W.line("(void)arrays; (void)params;");

  StmtEmitter SE(P, Nest.DimNames);
  for (const ASTNodePtr &N : Nest.Roots)
    emitNode(*N, Nest, SE, W);
  W.dedent();
  W.line("}");
  return W.str();
}

std::string shackle::emitTranslationUnit(
    const std::vector<KernelSpec> &Kernels) {
  Writer W;
  W.line("// Generated by dsc-gen (Shackle: data-centric multi-level"
         " blocking).");
  W.line("// Do not edit: regenerate via the build system.");
  W.line("#include <cmath>");
  W.line("#include <cstdint>");
  W.line("#include <cstring>");
  W.blank();
  W.line("namespace {");
  W.line("inline int64_t shk_floordiv(int64_t a, int64_t b) {");
  W.line("  int64_t q = a / b;");
  W.line("  return (a % b != 0 && a < 0) ? q - 1 : q;");
  W.line("}");
  W.line("inline int64_t shk_ceildiv(int64_t a, int64_t b) {");
  W.line("  int64_t q = a / b;");
  W.line("  return (a % b != 0 && a > 0) ? q + 1 : q;");
  W.line("}");
  W.line("inline int64_t shk_max(int64_t a, int64_t b) "
         "{ return a > b ? a : b; }");
  W.line("inline int64_t shk_min(int64_t a, int64_t b) "
         "{ return a < b ? a : b; }");
  W.line("} // namespace");
  W.blank();
  for (const KernelSpec &K : Kernels) {
    W.raw(emitKernel(*K.Nest, K.Name));
    W.blank();
  }

  // Registry.
  W.line("typedef void (*shackle_kernel_fn)(double **, const int64_t *);");
  W.line("extern \"C\" shackle_kernel_fn shackle_gen_lookup(const char "
         "*name) {");
  W.indent();
  for (const KernelSpec &K : Kernels)
    W.line("if (std::strcmp(name, \"" + K.Name + "\") == 0) return " +
           K.Name + ";");
  W.line("return nullptr;");
  W.dedent();
  W.line("}");
  return W.str();
}

std::string shackle::emitHeader(const std::vector<KernelSpec> &Kernels) {
  Writer W;
  W.line("// Generated by dsc-gen (Shackle). Do not edit.");
  W.line("#pragma once");
  W.line("#include <cstdint>");
  W.blank();
  for (const KernelSpec &K : Kernels)
    W.line("extern \"C\" void " + K.Name +
           "(double **arrays, const int64_t *params);");
  W.blank();
  W.line("typedef void (*shackle_kernel_fn)(double **, const int64_t *);");
  W.line("extern \"C\" shackle_kernel_fn shackle_gen_lookup(const char "
         "*name);");
  return W.str();
}
