//===- Diagnostics.h - Structured recoverable diagnostics -------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The recoverable-error side of the failure policy (see DESIGN.md,
/// "Failure policy"): anything that can go wrong because of *input* — a
/// malformed DSL program, a shackle that does not fit the program, a solver
/// that runs out of budget, a scan the code generator cannot order — is
/// reported as a Diagnostic carried by a Status or Expected<T> and flows up
/// to the caller, which degrades gracefully (fallback code generation,
/// conservative legality verdicts, non-zero CLI exit codes). fatalError in
/// ErrorHandling.h remains reserved for broken internal invariants only.
///
/// A Diagnostic is an error code, a severity, a message, an optional source
/// location (line/column in DSL input), and a chain of notes adding context
/// as the error propagates upward.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SUPPORT_DIAGNOSTICS_H
#define SHACKLE_SUPPORT_DIAGNOSTICS_H

#include <cassert>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace shackle {

/// What went wrong, machine-readably. The CLI maps these to exit codes
/// (docs/CLI.md); tests match on them instead of message text.
enum class DiagCode {
  /// The DSL front end rejected the input text.
  ParseError,
  /// A file could not be opened or read.
  IOError,
  /// A shackle does not fit the program (e.g. onStores over a statement
  /// that does not store to the blocked array).
  ShackleMismatch,
  /// The Omega test gave up: work-unit budget, recursion depth, or checked
  /// int64 arithmetic overflowed. The querent must treat the answer as
  /// "unknown" and act conservatively.
  SolverBudgetExceeded,
  /// The legality check proved a Theorem 1 violation: the shackle would run
  /// a dependence backwards.
  ShackleIllegal,
  /// The legality check could not prove or refute Theorem 1 within budget;
  /// the shackle is conservatively rejected.
  LegalityUnknown,
  /// The polyhedral scanner failed to produce loops (piece ordering,
  /// unbounded dimension, or its own solver budget); callers fall back to
  /// naive or original code.
  ScanFailed,
  /// Invalid command-line usage.
  UsageError,
  /// Parallel block execution degraded to serial: the block dependence
  /// graph was cyclic, too dense, undecidable within budget, or the nest
  /// could not be partitioned by block. Always a warning; results are
  /// still correct.
  ParallelFallback,
  /// A fault hit the parallel runtime at execution time: a block task threw,
  /// a worker stalled past the watchdog timeout or died, a deadline expired,
  /// or a deque growth allocation failed. A warning when the runtime
  /// recovered (undo + retry, overflow queue, or serial replay); an error
  /// when a block could not be re-executed and results are unreliable.
  ParallelFault,
  /// The parallel phase was quiesced mid-run and the remaining blocks were
  /// replayed serially in dependence order. Always a warning; results are
  /// still bitwise-identical to serial execution.
  ParallelDegrade,
  /// A block committed a non-finite value (produced by its own arithmetic
  /// or silently corrupted in memory). The block is quarantined, its
  /// downstream dependence cone is reported, and the run fails with exact
  /// provenance instead of letting the poison propagate. Always an error.
  ParallelPoison,
};

/// Renders the code's stable spelling, e.g. "parse-error".
const char *diagCodeName(DiagCode Code);

enum class Severity { Note, Warning, Error };

/// A position in DSL source text; 1-based, 0 meaning "unknown".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  /// "line 3, col 7" (or "" when unknown).
  std::string str() const;
};

/// One structured diagnostic with an optional chain of notes.
struct Diagnostic {
  DiagCode Code = DiagCode::UsageError;
  Severity Sev = Severity::Error;
  std::string Message;
  SourceLoc Loc;
  /// Context accumulated while the error travelled up the pipeline,
  /// outermost note last.
  std::vector<Diagnostic> Notes;

  Diagnostic() = default;
  Diagnostic(DiagCode Code, std::string Message, SourceLoc Loc = {},
             Severity Sev = Severity::Error)
      : Code(Code), Sev(Sev), Message(std::move(Message)), Loc(Loc) {}

  Diagnostic &addNote(std::string Message, SourceLoc Loc = {});

  /// One line per note: "error: [parse-error] line 3, col 7: ...".
  std::string str() const;
};

/// Success, or a Diagnostic. The [[nodiscard]] shape of llvm::Error without
/// the must-check crash: dropping a Status is a compile warning, not UB.
class [[nodiscard]] Status {
public:
  /// Success.
  Status() = default;

  static Status success() { return Status(); }
  static Status error(DiagCode Code, std::string Message, SourceLoc Loc = {}) {
    Status S;
    S.Diag.emplace(Code, std::move(Message), Loc);
    return S;
  }
  static Status error(Diagnostic D) {
    Status S;
    S.Diag.emplace(std::move(D));
    return S;
  }

  bool ok() const { return !Diag.has_value(); }
  explicit operator bool() const { return ok(); }

  const Diagnostic &diagnostic() const {
    assert(Diag && "no diagnostic on a success Status");
    return *Diag;
  }
  Diagnostic takeDiagnostic() {
    assert(Diag && "no diagnostic on a success Status");
    Diagnostic D = std::move(*Diag);
    Diag.reset();
    return D;
  }

  /// Appends a context note if this is an error; no-op on success. Returns
  /// *this so call sites can `return S.withNote(...)`.
  Status &withNote(std::string Message, SourceLoc Loc = {}) {
    if (Diag)
      Diag->addNote(std::move(Message), Loc);
    return *this;
  }

private:
  std::optional<Diagnostic> Diag;
};

/// A T or a Diagnostic explaining why there is no T.
template <typename T> class [[nodiscard]] Expected {
public:
  Expected(T Value) : Value(std::move(Value)) {}
  Expected(Diagnostic D) : Diag(std::move(D)) {}
  /// An error Status converts to an error Expected (mirrors llvm::Expected).
  Expected(Status S) {
    assert(!S.ok() && "cannot build Expected<T> from a success Status");
    Diag.emplace(S.takeDiagnostic());
  }

  bool ok() const { return Value.has_value(); }
  explicit operator bool() const { return ok(); }

  T &get() {
    assert(Value && "accessing the value of an error Expected");
    return *Value;
  }
  const T &get() const {
    assert(Value && "accessing the value of an error Expected");
    return *Value;
  }
  T &operator*() { return get(); }
  const T &operator*() const { return get(); }
  T *operator->() { return &get(); }
  const T *operator->() const { return &get(); }

  const Diagnostic &diagnostic() const {
    assert(Diag && "no diagnostic on a success Expected");
    return *Diag;
  }
  Diagnostic takeDiagnostic() {
    assert(Diag && "no diagnostic on a success Expected");
    Diagnostic D = std::move(*Diag);
    Diag.reset();
    return D;
  }
  /// The error as a Status (must be an error).
  Status takeStatus() { return Status::error(takeDiagnostic()); }

  Expected &withNote(std::string Message, SourceLoc Loc = {}) {
    if (Diag)
      Diag->addNote(std::move(Message), Loc);
    return *this;
  }

private:
  std::optional<T> Value;
  std::optional<Diagnostic> Diag;
};

} // namespace shackle

#endif // SHACKLE_SUPPORT_DIAGNOSTICS_H
