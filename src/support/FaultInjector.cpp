//===- FaultInjector.cpp - Deterministic fault injection ---------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "support/FaultInjector.h"

#include <cerrno>
#include <cstdlib>
#include <vector>

using namespace shackle;

FaultInjector &FaultInjector::instance() {
  static FaultInjector FI;
  return FI;
}

namespace {

/// SplitMix64 finalizer: the same mixer ProgramInstance::fillRandom uses,
/// so rate-based decisions are deterministic across platforms.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Atomically consumes one unit of a fire budget; false when exhausted.
bool takeBudget(std::atomic<int64_t> &Budget) {
  int64_t Cur = Budget.load(std::memory_order_relaxed);
  while (Cur > 0)
    if (Budget.compare_exchange_weak(Cur, Cur - 1,
                                     std::memory_order_relaxed))
      return true;
  return false;
}

std::string trim(const std::string &S) {
  std::size_t B = S.find_first_not_of(" \t");
  if (B == std::string::npos)
    return "";
  std::size_t E = S.find_last_not_of(" \t");
  return S.substr(B, E - B + 1);
}

std::vector<std::string> splitOn(const std::string &S, char Sep) {
  std::vector<std::string> Out;
  std::size_t Pos = 0;
  while (Pos <= S.size()) {
    std::size_t Next = S.find(Sep, Pos);
    if (Next == std::string::npos)
      Next = S.size();
    std::string Piece = trim(S.substr(Pos, Next - Pos));
    if (!Piece.empty())
      Out.push_back(std::move(Piece));
    Pos = Next + 1;
  }
  return Out;
}

/// Like splitOn(S, ';') but remembers where each clause starts, so a
/// malformed clause can be reported with its column in the spec string.
std::vector<std::pair<std::string, unsigned>>
splitClausesWithCols(const std::string &S) {
  std::vector<std::pair<std::string, unsigned>> Out;
  std::size_t Pos = 0;
  while (Pos <= S.size()) {
    std::size_t Next = S.find(';', Pos);
    if (Next == std::string::npos)
      Next = S.size();
    std::size_t Begin = S.find_first_not_of(" \t", Pos);
    std::string Piece = trim(S.substr(Pos, Next - Pos));
    if (!Piece.empty())
      Out.emplace_back(std::move(Piece),
                       static_cast<unsigned>(Begin + 1)); // 1-based col.
    Pos = Next + 1;
  }
  return Out;
}

bool parseU64(const std::string &S, uint64_t &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  unsigned long long V = std::strtoull(S.c_str(), &End, 10);
  if (errno != 0 || End != S.c_str() + S.size())
    return false;
  Out = V;
  return true;
}

bool parseRate(const std::string &S, double &Out) {
  if (S.empty())
    return false;
  errno = 0;
  char *End = nullptr;
  double V = std::strtod(S.c_str(), &End);
  if (errno != 0 || End != S.c_str() + S.size() || V < 0.0 || V > 1.0)
    return false;
  Out = V;
  return true;
}

/// \p Col is the clause's 1-based column in the spec string (0 = unknown),
/// reported as a line/col location so CLI users can see exactly which
/// clause of a multi-clause spec was rejected.
Status badSpec(const std::string &Clause, const char *Why, unsigned Col = 0) {
  Diagnostic D(DiagCode::UsageError,
               "malformed injection spec clause '" + Clause + "'",
               SourceLoc{Col == 0 ? 0u : 1u, Col});
  D.addNote(Why);
  D.addNote("grammar: seed=S; throw@block=K|any|rate=R[,count=C]; "
            "stall@worker=W[,ms=M][,count=C]; die@worker=W[,count=C]; "
            "die@domain=D[,count=C]; alloc-fail@grow=N[,count=C]; "
            "solver-unknown@query=N[,count=C]; "
            "flip@block=K[,bit=B][,count=C]; corrupt-undo@block=K[,count=C]; "
            "nan@block=K[,count=C]; inf@block=K[,count=C]; "
            "drip@client=B[,ms=M][,count=C]; kill@conn=N[,count=C]; "
            "snapshot-fail@write=enospc|short[,count=C]");
  return Status::error(std::move(D));
}

} // namespace

void FaultInjector::disarm() {
  Armed.store(false, std::memory_order_relaxed);
  Seed = 0;
  ThrowBlock = -1;
  ThrowThreshold = 0;
  ThrowBudget.store(0, std::memory_order_relaxed);
  StallWorker = -1;
  StallMs = 10000;
  StallBudget.store(0, std::memory_order_relaxed);
  DeathWorker = -1;
  DeathBudget.store(0, std::memory_order_relaxed);
  DeathDomain = -1;
  DomainDeathBudget.store(0, std::memory_order_relaxed);
  AllocFailAt = 0;
  AllocFailCount = 0;
  GrowOccurrence.store(0, std::memory_order_relaxed);
  SolverAt = 0;
  SolverCount = 0;
  QueryOccurrence.store(0, std::memory_order_relaxed);
  FlipBlock = -1;
  FlipBit = 0;
  FlipBudget.store(0, std::memory_order_relaxed);
  CorruptUndoBlock = -1;
  CorruptUndoBudget.store(0, std::memory_order_relaxed);
  NanBlock = -1;
  NanBudget.store(0, std::memory_order_relaxed);
  InfBlock = -1;
  InfBudget.store(0, std::memory_order_relaxed);
  DripBytes = 0;
  DripMs = 1;
  DripBudget.store(0, std::memory_order_relaxed);
  KillConn = -1;
  KillConnBudget.store(0, std::memory_order_relaxed);
  SnapshotFailMode = 0;
  SnapshotFailBudget.store(0, std::memory_order_relaxed);
  NumTaskThrows.store(0, std::memory_order_relaxed);
  NumWorkerStalls.store(0, std::memory_order_relaxed);
  NumWorkerDeaths.store(0, std::memory_order_relaxed);
  NumDomainDeaths.store(0, std::memory_order_relaxed);
  NumAllocFails.store(0, std::memory_order_relaxed);
  NumSolverUnknowns.store(0, std::memory_order_relaxed);
  NumBitFlips.store(0, std::memory_order_relaxed);
  NumUndoCorruptions.store(0, std::memory_order_relaxed);
  NumNansInjected.store(0, std::memory_order_relaxed);
  NumInfsInjected.store(0, std::memory_order_relaxed);
  NumClientDrips.store(0, std::memory_order_relaxed);
  NumConnKills.store(0, std::memory_order_relaxed);
  NumSnapshotWriteFails.store(0, std::memory_order_relaxed);
}

Status FaultInjector::configure(const std::string &Spec) {
  if (!FaultInjectionCompiledIn)
    return Status::error(
        DiagCode::UsageError,
        "fault injection is not compiled into this build "
        "(configure with -DSHACKLE_ENABLE_FAULT_INJECTION=ON)");
  disarm();

  std::vector<std::pair<std::string, unsigned>> Clauses =
      splitClausesWithCols(Spec);
  if (Clauses.empty())
    return badSpec(Spec, "spec is empty");

  for (const auto &[Clause, Col] : Clauses) {
    if (Clause.rfind("seed=", 0) == 0) {
      if (!parseU64(Clause.substr(5), Seed))
        return badSpec(Clause, "seed must be a decimal integer", Col);
      continue;
    }
    std::size_t At = Clause.find('@');
    if (At == std::string::npos)
      return badSpec(Clause, "expected site@selector", Col);
    std::string Site = Clause.substr(0, At);
    std::vector<std::string> Keys = splitOn(Clause.substr(At + 1), ',');
    if (Keys.empty())
      return badSpec(Clause, "missing selector after '@'", Col);

    uint64_t Count = 1;
    auto takeKey = [&Keys](const char *Name, std::string &Value) {
      std::string Prefix = std::string(Name) + "=";
      for (std::size_t I = 0; I < Keys.size(); ++I)
        if (Keys[I].rfind(Prefix, 0) == 0) {
          Value = Keys[I].substr(Prefix.size());
          Keys.erase(Keys.begin() + I);
          return true;
        }
      return false;
    };
    std::string V;
    if (takeKey("count", V) && (!parseU64(V, Count) || Count == 0))
      return badSpec(Clause, "count must be a positive integer", Col);

    if (Site == "throw") {
      ThrowBudget.store(static_cast<int64_t>(Count),
                        std::memory_order_relaxed);
      if (takeKey("block", V)) {
        uint64_t K;
        if (!parseU64(V, K))
          return badSpec(Clause, "block must be a block id", Col);
        ThrowBlock = static_cast<int64_t>(K);
      } else if (takeKey("rate", V)) {
        double R;
        if (!parseRate(V, R))
          return badSpec(Clause, "rate must be in [0, 1]", Col);
        ThrowBlock = -3;
        ThrowThreshold = R >= 1.0 ? ~0ULL
                                  : static_cast<uint64_t>(
                                        R * 18446744073709551616.0);
      } else if (!Keys.empty() && Keys[0] == "any") {
        Keys.erase(Keys.begin());
        ThrowBlock = -2;
      } else {
        return badSpec(Clause, "throw needs block=K, any, or rate=R", Col);
      }
    } else if (Site == "stall") {
      if (!takeKey("worker", V))
        return badSpec(Clause, "stall needs worker=W", Col);
      uint64_t W;
      if (!parseU64(V, W))
        return badSpec(Clause, "worker must be a worker index", Col);
      StallWorker = static_cast<int64_t>(W);
      StallBudget.store(static_cast<int64_t>(Count),
                        std::memory_order_relaxed);
      if (takeKey("ms", V) && !parseU64(V, StallMs))
        return badSpec(Clause, "ms must be a duration in milliseconds", Col);
    } else if (Site == "die") {
      if (takeKey("worker", V)) {
        uint64_t W;
        if (!parseU64(V, W))
          return badSpec(Clause, "worker must be a worker index", Col);
        DeathWorker = static_cast<int64_t>(W);
        DeathBudget.store(static_cast<int64_t>(Count),
                          std::memory_order_relaxed);
      } else if (takeKey("domain", V)) {
        uint64_t D;
        if (!parseU64(V, D))
          return badSpec(Clause, "domain must be a domain index", Col);
        DeathDomain = static_cast<int64_t>(D);
        DomainDeathBudget.store(static_cast<int64_t>(Count),
                                std::memory_order_relaxed);
      } else {
        return badSpec(Clause, "die needs worker=W or domain=D", Col);
      }
    } else if (Site == "alloc-fail") {
      if (!takeKey("grow", V))
        return badSpec(Clause, "alloc-fail needs grow=N (1-based)", Col);
      if (!parseU64(V, AllocFailAt) || AllocFailAt == 0)
        return badSpec(Clause, "grow must be a positive occurrence index",
                       Col);
      AllocFailCount = Count;
    } else if (Site == "solver-unknown") {
      if (!takeKey("query", V))
        return badSpec(Clause, "solver-unknown needs query=N (1-based)", Col);
      if (!parseU64(V, SolverAt) || SolverAt == 0)
        return badSpec(Clause, "query must be a positive occurrence index",
                       Col);
      SolverCount = Count;
    } else if (Site == "flip") {
      if (!takeKey("block", V))
        return badSpec(Clause, "flip needs block=K", Col);
      uint64_t K;
      if (!parseU64(V, K))
        return badSpec(Clause, "block must be a block id", Col);
      FlipBlock = static_cast<int64_t>(K);
      FlipBudget.store(static_cast<int64_t>(Count),
                       std::memory_order_relaxed);
      if (takeKey("bit", V)) {
        uint64_t B;
        if (!parseU64(V, B) || B > 63)
          return badSpec(Clause, "bit must be in [0, 63]", Col);
        FlipBit = static_cast<unsigned>(B);
      }
    } else if (Site == "corrupt-undo") {
      if (!takeKey("block", V))
        return badSpec(Clause, "corrupt-undo needs block=K", Col);
      uint64_t K;
      if (!parseU64(V, K))
        return badSpec(Clause, "block must be a block id", Col);
      CorruptUndoBlock = static_cast<int64_t>(K);
      CorruptUndoBudget.store(static_cast<int64_t>(Count),
                              std::memory_order_relaxed);
    } else if (Site == "nan" || Site == "inf") {
      if (!takeKey("block", V))
        return badSpec(Clause,
                       Site == "nan" ? "nan needs block=K" : "inf needs "
                                                             "block=K",
                       Col);
      uint64_t K;
      if (!parseU64(V, K))
        return badSpec(Clause, "block must be a block id", Col);
      (Site == "nan" ? NanBlock : InfBlock) = static_cast<int64_t>(K);
      (Site == "nan" ? NanBudget : InfBudget)
          .store(static_cast<int64_t>(Count), std::memory_order_relaxed);
    } else if (Site == "drip") {
      if (!takeKey("client", V))
        return badSpec(Clause, "drip needs client=B (chunk bytes)", Col);
      if (!parseU64(V, DripBytes) || DripBytes == 0)
        return badSpec(Clause, "client must be a positive chunk size", Col);
      DripBudget.store(static_cast<int64_t>(Count),
                       std::memory_order_relaxed);
      if (takeKey("ms", V) && !parseU64(V, DripMs))
        return badSpec(Clause, "ms must be a duration in milliseconds", Col);
    } else if (Site == "kill") {
      if (!takeKey("conn", V))
        return badSpec(Clause, "kill needs conn=N (0-based accept order)",
                       Col);
      uint64_t N;
      if (!parseU64(V, N))
        return badSpec(Clause, "conn must be a connection index", Col);
      KillConn = static_cast<int64_t>(N);
      KillConnBudget.store(static_cast<int64_t>(Count),
                           std::memory_order_relaxed);
    } else if (Site == "snapshot-fail") {
      if (!takeKey("write", V))
        return badSpec(Clause, "snapshot-fail needs write=enospc|short", Col);
      if (V == "enospc")
        SnapshotFailMode = 1;
      else if (V == "short")
        SnapshotFailMode = 2;
      else
        return badSpec(Clause, "write must be 'enospc' or 'short'", Col);
      SnapshotFailBudget.store(static_cast<int64_t>(Count),
                               std::memory_order_relaxed);
    } else {
      return badSpec(Clause,
                     "unknown site (throw, stall, die, alloc-fail, "
                     "solver-unknown, flip, corrupt-undo, nan, inf, drip, "
                     "kill, snapshot-fail)",
                     Col);
    }
    if (!Keys.empty())
      return badSpec(Clause, ("unexpected token '" + Keys[0] + "'").c_str(),
                     Col);
  }

  Armed.store(true, std::memory_order_relaxed);
  return Status::success();
}

bool FaultInjector::fireTaskThrow(uint64_t Block) {
  bool Match;
  switch (ThrowBlock) {
  case -1:
    return false;
  case -2:
    Match = true;
    break;
  case -3:
    Match = mix64(Seed ^ (Block + 1) * 0x9e3779b97f4a7c15ULL) <
            ThrowThreshold;
    break;
  default:
    Match = static_cast<int64_t>(Block) == ThrowBlock;
    break;
  }
  if (!Match || !takeBudget(ThrowBudget))
    return false;
  NumTaskThrows.fetch_add(1, std::memory_order_relaxed);
  return true;
}

uint64_t FaultInjector::fireWorkerStall(unsigned Worker) {
  if (StallWorker < 0 || static_cast<int64_t>(Worker) != StallWorker ||
      !takeBudget(StallBudget))
    return 0;
  NumWorkerStalls.fetch_add(1, std::memory_order_relaxed);
  return StallMs;
}

bool FaultInjector::fireWorkerDeath(unsigned Worker) {
  if (DeathWorker < 0 || static_cast<int64_t>(Worker) != DeathWorker ||
      !takeBudget(DeathBudget))
    return false;
  NumWorkerDeaths.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::fireDomainDeath(unsigned Domain) {
  if (DeathDomain < 0 || static_cast<int64_t>(Domain) != DeathDomain ||
      !takeBudget(DomainDeathBudget))
    return false;
  NumDomainDeaths.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::fireAllocFail() {
  if (AllocFailAt == 0)
    return false;
  uint64_t Occ = GrowOccurrence.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Occ < AllocFailAt || Occ >= AllocFailAt + AllocFailCount)
    return false;
  NumAllocFails.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::fireSolverUnknown() {
  if (SolverAt == 0)
    return false;
  uint64_t Occ = QueryOccurrence.fetch_add(1, std::memory_order_relaxed) + 1;
  if (Occ < SolverAt || Occ >= SolverAt + SolverCount)
    return false;
  NumSolverUnknowns.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::fireBitFlip(uint64_t Block, unsigned &Bit,
                                uint64_t &Pick) {
  if (FlipBlock < 0 || static_cast<int64_t>(Block) != FlipBlock ||
      !takeBudget(FlipBudget))
    return false;
  Bit = FlipBit;
  Pick = mix64(Seed ^ (Block + 1) * 0xa24baed4963ee407ULL);
  NumBitFlips.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::fireUndoCorrupt(uint64_t Block, uint64_t &Pick) {
  if (CorruptUndoBlock < 0 ||
      static_cast<int64_t>(Block) != CorruptUndoBlock ||
      !takeBudget(CorruptUndoBudget))
    return false;
  Pick = mix64(Seed ^ (Block + 1) * 0x9fb21c651e98df25ULL);
  NumUndoCorruptions.fetch_add(1, std::memory_order_relaxed);
  return true;
}

int FaultInjector::firePoisonValue(uint64_t Block, uint64_t &Pick) {
  if (NanBlock >= 0 && static_cast<int64_t>(Block) == NanBlock &&
      takeBudget(NanBudget)) {
    Pick = mix64(Seed ^ (Block + 1) * 0xd6e8feb86659fd93ULL);
    NumNansInjected.fetch_add(1, std::memory_order_relaxed);
    return 1;
  }
  if (InfBlock >= 0 && static_cast<int64_t>(Block) == InfBlock &&
      takeBudget(InfBudget)) {
    Pick = mix64(Seed ^ (Block + 1) * 0xc2b2ae3d27d4eb4fULL);
    NumInfsInjected.fetch_add(1, std::memory_order_relaxed);
    return 2;
  }
  return 0;
}

bool FaultInjector::fireClientDrip(uint64_t &Bytes, uint64_t &Ms) {
  if (DripBytes == 0 || !takeBudget(DripBudget))
    return false;
  Bytes = DripBytes;
  Ms = DripMs;
  NumClientDrips.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool FaultInjector::fireConnKill(uint64_t Conn) {
  if (KillConn < 0 || static_cast<int64_t>(Conn) != KillConn ||
      !takeBudget(KillConnBudget))
    return false;
  NumConnKills.fetch_add(1, std::memory_order_relaxed);
  return true;
}

int FaultInjector::fireSnapshotWriteFail() {
  if (SnapshotFailMode == 0 || !takeBudget(SnapshotFailBudget))
    return 0;
  NumSnapshotWriteFails.fetch_add(1, std::memory_order_relaxed);
  return SnapshotFailMode;
}

FaultCounters FaultInjector::counters() const {
  FaultCounters C;
  C.TaskThrows = NumTaskThrows.load(std::memory_order_relaxed);
  C.WorkerStalls = NumWorkerStalls.load(std::memory_order_relaxed);
  C.WorkerDeaths = NumWorkerDeaths.load(std::memory_order_relaxed);
  C.DomainDeaths = NumDomainDeaths.load(std::memory_order_relaxed);
  C.AllocFails = NumAllocFails.load(std::memory_order_relaxed);
  C.SolverUnknowns = NumSolverUnknowns.load(std::memory_order_relaxed);
  C.BitFlips = NumBitFlips.load(std::memory_order_relaxed);
  C.UndoCorruptions = NumUndoCorruptions.load(std::memory_order_relaxed);
  C.NansInjected = NumNansInjected.load(std::memory_order_relaxed);
  C.InfsInjected = NumInfsInjected.load(std::memory_order_relaxed);
  C.ClientDrips = NumClientDrips.load(std::memory_order_relaxed);
  C.ConnKills = NumConnKills.load(std::memory_order_relaxed);
  C.SnapshotWriteFails = NumSnapshotWriteFails.load(std::memory_order_relaxed);
  return C;
}
