//===- MathExtras.h - Exact integer arithmetic helpers ---------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exact 64-bit integer arithmetic used throughout the polyhedral machinery.
/// All polyhedral computations in Shackle are performed over int64_t; the
/// helpers here implement the mathematically correct (floor/ceil) division
/// semantics that C++'s truncating division does not provide, plus the
/// symmetric modulo used by the Omega test.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SUPPORT_MATHEXTRAS_H
#define SHACKLE_SUPPORT_MATHEXTRAS_H

#include <cassert>
#include <cstdint>
#include <cstdlib>
#include <numeric>

namespace shackle {

/// Greatest common divisor of the absolute values; gcd(0, 0) == 0.
inline int64_t gcd64(int64_t A, int64_t B) {
  return std::gcd(A < 0 ? -A : A, B < 0 ? -B : B);
}

/// Least common multiple of the absolute values; asserts on overflow only in
/// debug builds (inputs in this project are tiny block sizes and +-1 coeffs).
inline int64_t lcm64(int64_t A, int64_t B) {
  if (A == 0 || B == 0)
    return 0;
  int64_t G = gcd64(A, B);
  return (A / G) * B < 0 ? -((A / G) * B) : (A / G) * B;
}

/// Floor division: largest Q with Q * Divisor <= Dividend. Divisor must be
/// positive.
inline int64_t floorDiv(int64_t Dividend, int64_t Divisor) {
  assert(Divisor > 0 && "floorDiv requires a positive divisor");
  int64_t Q = Dividend / Divisor;
  if (Dividend % Divisor != 0 && Dividend < 0)
    --Q;
  return Q;
}

/// Ceil division: smallest Q with Q * Divisor >= Dividend. Divisor must be
/// positive.
inline int64_t ceilDiv(int64_t Dividend, int64_t Divisor) {
  assert(Divisor > 0 && "ceilDiv requires a positive divisor");
  int64_t Q = Dividend / Divisor;
  if (Dividend % Divisor != 0 && Dividend > 0)
    ++Q;
  return Q;
}

/// Mathematical modulo: result in [0, Divisor). Divisor must be positive.
inline int64_t floorMod(int64_t Dividend, int64_t Divisor) {
  return Dividend - floorDiv(Dividend, Divisor) * Divisor;
}

/// Pugh's symmetric "hat" modulo used by the Omega test's equality
/// elimination: result in [-floor(Divisor/2), ceil(Divisor/2)).
///
/// Defined as  a hatmod b = a - b * floor(a/b + 1/2).
inline int64_t symMod(int64_t Dividend, int64_t Divisor) {
  assert(Divisor > 0 && "symMod requires a positive divisor");
  int64_t R = floorMod(Dividend, Divisor);
  if (2 * R >= Divisor)
    R -= Divisor;
  return R;
}

/// Overflow-reporting multiply: sets \p R to the wrapped product and returns
/// true iff A * B does not fit in int64. Used by the Omega test's
/// Fourier-Motzkin combination, where coefficient products on adversarial
/// inputs can exceed 64 bits; the solver then answers Unknown instead of
/// computing with a wrapped value.
inline bool mulOverflow(int64_t A, int64_t B, int64_t &R) {
  return __builtin_mul_overflow(A, B, &R);
}

/// Overflow-reporting add; see mulOverflow.
inline bool addOverflow(int64_t A, int64_t B, int64_t &R) {
  return __builtin_add_overflow(A, B, &R);
}

/// Overflow-reporting subtract; see mulOverflow.
inline bool subOverflow(int64_t A, int64_t B, int64_t &R) {
  return __builtin_sub_overflow(A, B, &R);
}

/// Multiply with a debug-build overflow check. The polyhedral library keeps
/// coefficients small, so overflow indicates a logic error, not bad input.
inline int64_t checkedMul(int64_t A, int64_t B) {
#ifndef NDEBUG
  int64_t R;
  bool Overflow = __builtin_mul_overflow(A, B, &R);
  assert(!Overflow && "int64 overflow in polyhedral arithmetic");
  return R;
#else
  return A * B;
#endif
}

/// Add with a debug-build overflow check.
inline int64_t checkedAdd(int64_t A, int64_t B) {
#ifndef NDEBUG
  int64_t R;
  bool Overflow = __builtin_add_overflow(A, B, &R);
  assert(!Overflow && "int64 overflow in polyhedral arithmetic");
  return R;
#else
  return A + B;
#endif
}

} // namespace shackle

#endif // SHACKLE_SUPPORT_MATHEXTRAS_H
