//===- Writer.h - Indented text emission ------------------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny indentation-aware string builder used by the pretty printers and
/// the C++ emitter. Kept deliberately minimal (no iostream in library code).
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SUPPORT_WRITER_H
#define SHACKLE_SUPPORT_WRITER_H

#include <string>

namespace shackle {

/// Accumulates lines of text with a current indentation level.
class Writer {
public:
  explicit Writer(unsigned IndentWidth = 2) : IndentWidth(IndentWidth) {}

  /// Appends one full line at the current indentation.
  void line(const std::string &Text) {
    Buffer.append(Level * IndentWidth, ' ');
    Buffer += Text;
    Buffer += '\n';
  }

  /// Appends a blank line.
  void blank() { Buffer += '\n'; }

  /// Appends raw text with no indentation or newline handling.
  void raw(const std::string &Text) { Buffer += Text; }

  void indent() { ++Level; }

  void dedent() {
    if (Level > 0)
      --Level;
  }

  const std::string &str() const { return Buffer; }

private:
  std::string Buffer;
  unsigned IndentWidth;
  unsigned Level = 0;
};

} // namespace shackle

#endif // SHACKLE_SUPPORT_WRITER_H
