//===- Diagnostics.cpp - Structured recoverable diagnostics ------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

using namespace shackle;

const char *shackle::diagCodeName(DiagCode Code) {
  switch (Code) {
  case DiagCode::ParseError:
    return "parse-error";
  case DiagCode::IOError:
    return "io-error";
  case DiagCode::ShackleMismatch:
    return "shackle-mismatch";
  case DiagCode::SolverBudgetExceeded:
    return "solver-budget-exceeded";
  case DiagCode::ShackleIllegal:
    return "shackle-illegal";
  case DiagCode::LegalityUnknown:
    return "legality-unknown";
  case DiagCode::ScanFailed:
    return "scan-failed";
  case DiagCode::UsageError:
    return "usage-error";
  case DiagCode::ParallelFallback:
    return "parallel-fallback";
  case DiagCode::ParallelFault:
    return "parallel-fault";
  case DiagCode::ParallelDegrade:
    return "parallel-degrade";
  case DiagCode::ParallelPoison:
    return "parallel-poison";
  }
  return "unknown";
}

std::string SourceLoc::str() const {
  if (!isValid())
    return "";
  std::string S = "line " + std::to_string(Line);
  if (Col != 0)
    S += ", col " + std::to_string(Col);
  return S;
}

Diagnostic &Diagnostic::addNote(std::string Message, SourceLoc NoteLoc) {
  Notes.emplace_back(Code, std::move(Message), NoteLoc, Severity::Note);
  return *this;
}

static const char *severityName(Severity Sev) {
  switch (Sev) {
  case Severity::Note:
    return "note";
  case Severity::Warning:
    return "warning";
  case Severity::Error:
    return "error";
  }
  return "error";
}

std::string Diagnostic::str() const {
  std::string S = severityName(Sev);
  S += ": [";
  S += diagCodeName(Code);
  S += "]";
  if (Loc.isValid())
    S += " " + Loc.str() + ":";
  S += " " + Message;
  for (const Diagnostic &N : Notes)
    S += "\n  note: " + (N.Loc.isValid() ? N.Loc.str() + ": " : "") + N.Message;
  return S;
}
