//===- Progress.h - Partial-progress accounting -----------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny shared ledger for runtimes that may need more than one attempt to
/// finish their work. The multi-pass relaxation runtime (Section 8 of the
/// paper) already tracks "instances executed per sweep"; the self-healing
/// parallel executor needs the same shape of bookkeeping for its
/// degradation ladder (blocks completed in the parallel phase, then blocks
/// replayed serially after a quiesce). Both record one entry per attempt so
/// callers can see not just *whether* a run completed but *how* — in one
/// clean pass, or limping across several.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SUPPORT_PROGRESS_H
#define SHACKLE_SUPPORT_PROGRESS_H

#include <cstdint>
#include <string>
#include <vector>

namespace shackle {

/// Units completed per attempt, against a known total. A "unit" is whatever
/// the runtime retires atomically: a statement instance for the multi-pass
/// runtime, a block for the parallel executor.
struct ProgressLog {
  uint64_t TotalUnits = 0;
  uint64_t DoneUnits = 0;
  /// Units retired by each attempt, in attempt order.
  std::vector<uint64_t> PerAttempt;

  void recordAttempt(uint64_t Units) {
    PerAttempt.push_back(Units);
    DoneUnits += Units;
  }

  bool complete() const { return DoneUnits == TotalUnits; }

  /// "12/16 in 2 attempt(s)".
  std::string str() const {
    std::string S = std::to_string(DoneUnits) + "/" +
                    std::to_string(TotalUnits) + " in " +
                    std::to_string(PerAttempt.size()) + " attempt(s)";
    return S;
  }
};

} // namespace shackle

#endif // SHACKLE_SUPPORT_PROGRESS_H
