//===- FaultInjector.h - Deterministic fault injection ----------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, seed-driven fault injection for chaos-testing the parallel
/// runtime. A process-wide injector is configured from a spec string and
/// consulted by cheap inline hooks at four kinds of sites:
///
///   task exception     injectTaskThrow(block)      before a block body runs
///   worker stall/death injectWorkerStall(worker) / injectWorkerDeath(worker)
///                                                  after a worker claims a task
///   allocation failure injectAllocFail()           in ChaseLevDeque growth
///   solver exhaustion  injectSolverUnknown()       per BlockDepGraph query
///   data corruption    injectBitFlip(block)        after a block body runs
///                      injectUndoCorrupt(block)    before an undo restore
///                      injectPoisonValue(block)    after a block body runs
///   service chaos      injectClientDrip()          in the serviceRequest send
///                      injectConnKill(conn)        per request line served
///                      injectSnapshotWriteFail()   in the snapshot writer
///
/// The data-fault sites model *silent* corruption: unlike the control-flow
/// faults above, they do not signal — they mutate committed data (bit-flip,
/// NaN/Inf poison) or a saved pre-image (undo corruption) and leave
/// detection entirely to the integrity layer (DESIGN.md §12).
///
/// The service-chaos sites model the serving layer's failure domain
/// (DESIGN.md §14): a client that drip-feeds its request a few bytes at a
/// time, a connection that dies mid-request after the request arrived but
/// before the reply, and a snapshot autosave that hits ENOSPC or a short
/// write. The daemon must stay healthy through all three.
///
/// Spec grammar (clauses separated by ';'):
///
///   seed=S                       PRNG seed for rate-based clauses
///   throw@block=K[,count=C]      throw before block K runs, C times (default 1)
///   throw@any[,count=C]          throw before whichever block asks first
///   throw@rate=R[,count=C]       throw on blocks hashed under rate R in [0,1]
///   stall@worker=W[,ms=M][,count=C]   worker W freezes for M ms (default 10000)
///   die@worker=W[,count=C]       worker W exits, losing its claimed task
///   die@domain=D[,count=C]       any worker of locality domain D exits on
///                                claiming a task; count=C (default 1) kills
///                                up to C workers — set it to the domain
///                                size to take the whole domain down
///   alloc-fail@grow=N[,count=C]  the Nth deque growth (1-based) and the C-1
///                                following ones throw bad_alloc
///   solver-unknown@query=N[,count=C]  the Nth sign-pattern feasibility query
///                                and the C-1 following ones report Unknown
///   flip@block=K[,bit=B][,count=C]    after block K commits, flip bit B
///                                (default 0, the mantissa LSB — a 1-ulp
///                                silent error) of one seed-chosen element
///                                of its write footprint
///   corrupt-undo@block=K[,count=C]    flip one bit of one seed-chosen saved
///                                pre-image of block K's undo log just
///                                before it is restored
///   nan@block=K[,count=C]        overwrite one seed-chosen element of block
///                                K's committed footprint with a quiet NaN
///   inf@block=K[,count=C]        same, with +infinity
///   drip@client=B[,ms=M][,count=C]    serviceRequest sends its request B
///                                bytes at a time with an M ms pause between
///                                chunks (default 1), C requests (default 1)
///   kill@conn=N[,count=C]        the serving thread of connection N
///                                (0-based accept order) closes the socket
///                                after a request line arrives but before
///                                any reply is written
///   snapshot-fail@write=enospc|short[,count=C]  a snapshot save fails:
///                                enospc aborts the tmp-file write with a
///                                disk-full error, short truncates it —
///                                either way the previous snapshot must
///                                survive intact (atomic tmp+rename)
///
/// Every clause has a finite fire budget, so a recovery path that retries
/// eventually gets a clean run — the property chaos tests rely on. All
/// decisions are pure functions of the spec, the seed, and per-site
/// occurrence counters: the same spec injects the same faults on every run.
///
/// The hooks compile to constant-false when SHACKLE_ENABLE_FAULT_INJECTION
/// is not defined (CMake option of the same name, default ON), so release
/// builds can strip the whole mechanism; configure() then reports an error
/// instead of silently arming nothing.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SUPPORT_FAULTINJECTOR_H
#define SHACKLE_SUPPORT_FAULTINJECTOR_H

#include "support/Diagnostics.h"

#include <atomic>
#include <cstdint>
#include <string>

namespace shackle {

#ifdef SHACKLE_ENABLE_FAULT_INJECTION
inline constexpr bool FaultInjectionCompiledIn = true;
#else
inline constexpr bool FaultInjectionCompiledIn = false;
#endif

/// Faults actually delivered since the last configure()/disarm().
struct FaultCounters {
  uint64_t TaskThrows = 0;
  uint64_t WorkerStalls = 0;
  uint64_t WorkerDeaths = 0;
  uint64_t DomainDeaths = 0;
  uint64_t AllocFails = 0;
  uint64_t SolverUnknowns = 0;
  uint64_t BitFlips = 0;
  uint64_t UndoCorruptions = 0;
  uint64_t NansInjected = 0;
  uint64_t InfsInjected = 0;
  uint64_t ClientDrips = 0;
  uint64_t ConnKills = 0;
  uint64_t SnapshotWriteFails = 0;

  uint64_t total() const {
    return TaskThrows + WorkerStalls + WorkerDeaths + DomainDeaths +
           AllocFails + SolverUnknowns + BitFlips + UndoCorruptions +
           NansInjected + InfsInjected + ClientDrips + ConnKills +
           SnapshotWriteFails;
  }
};

class FaultInjector {
public:
  static FaultInjector &instance();

  /// Parses \p Spec and arms the injector (replacing any previous plan and
  /// zeroing the delivered-fault counters). Errors with UsageError on a
  /// malformed spec or when injection is not compiled in.
  Status configure(const std::string &Spec);

  /// Drops the plan; all hooks return "no fault" until the next configure.
  void disarm();

  /// Fast path for the inline hooks: relaxed load, no fences.
  bool armed() const { return Armed.load(std::memory_order_relaxed); }

  // Site hooks (called via the inject* wrappers below). Each consumes one
  // unit of the matching clause's fire budget when it fires.
  bool fireTaskThrow(uint64_t Block);
  /// Returns the stall duration in ms, or 0 when no fault fires.
  uint64_t fireWorkerStall(unsigned Worker);
  bool fireWorkerDeath(unsigned Worker);
  bool fireDomainDeath(unsigned Domain);
  bool fireAllocFail();
  bool fireSolverUnknown();
  /// Data-fault sites. \p Pick comes back as a seed-derived 64-bit value
  /// the caller uses to choose which footprint element (and, for undo
  /// corruption, which bit) to mutate — the injector cannot see the
  /// footprint, so element choice is delegated deterministically.
  bool fireBitFlip(uint64_t Block, unsigned &Bit, uint64_t &Pick);
  bool fireUndoCorrupt(uint64_t Block, uint64_t &Pick);
  /// 0 = no fault, 1 = NaN, 2 = +Inf.
  int firePoisonValue(uint64_t Block, uint64_t &Pick);
  /// Service-chaos sites. Drip: \p Bytes and \p Ms come back as the chunk
  /// size and inter-chunk pause for a drip-fed send.
  bool fireClientDrip(uint64_t &Bytes, uint64_t &Ms);
  bool fireConnKill(uint64_t Conn);
  /// 0 = no fault, 1 = ENOSPC (write fails), 2 = short write (truncated).
  int fireSnapshotWriteFail();

  FaultCounters counters() const;

private:
  FaultInjector() = default;

  std::atomic<bool> Armed{false};

  // Plan (written by configure under no concurrency; read by hooks).
  uint64_t Seed = 0;
  int64_t ThrowBlock = -1;     ///< Block id; -1 disabled, -2 any, -3 rate.
  uint64_t ThrowThreshold = 0; ///< Rate mode: fire iff hash < threshold.
  std::atomic<int64_t> ThrowBudget{0};
  int64_t StallWorker = -1;
  uint64_t StallMs = 10000;
  std::atomic<int64_t> StallBudget{0};
  int64_t DeathWorker = -1;
  std::atomic<int64_t> DeathBudget{0};
  int64_t DeathDomain = -1;
  std::atomic<int64_t> DomainDeathBudget{0};
  uint64_t AllocFailAt = 0; ///< 1-based growth occurrence; 0 disabled.
  uint64_t AllocFailCount = 0;
  std::atomic<uint64_t> GrowOccurrence{0};
  uint64_t SolverAt = 0; ///< 1-based query occurrence; 0 disabled.
  uint64_t SolverCount = 0;
  std::atomic<uint64_t> QueryOccurrence{0};
  int64_t FlipBlock = -1;
  unsigned FlipBit = 0;
  std::atomic<int64_t> FlipBudget{0};
  int64_t CorruptUndoBlock = -1;
  std::atomic<int64_t> CorruptUndoBudget{0};
  int64_t NanBlock = -1;
  std::atomic<int64_t> NanBudget{0};
  int64_t InfBlock = -1;
  std::atomic<int64_t> InfBudget{0};
  uint64_t DripBytes = 0; ///< Chunk size; 0 disabled.
  uint64_t DripMs = 1;
  std::atomic<int64_t> DripBudget{0};
  int64_t KillConn = -1; ///< Connection index; -1 disabled.
  std::atomic<int64_t> KillConnBudget{0};
  int SnapshotFailMode = 0; ///< 0 disabled, 1 ENOSPC, 2 short write.
  std::atomic<int64_t> SnapshotFailBudget{0};

  // Delivered-fault counters.
  std::atomic<uint64_t> NumTaskThrows{0};
  std::atomic<uint64_t> NumWorkerStalls{0};
  std::atomic<uint64_t> NumWorkerDeaths{0};
  std::atomic<uint64_t> NumDomainDeaths{0};
  std::atomic<uint64_t> NumAllocFails{0};
  std::atomic<uint64_t> NumSolverUnknowns{0};
  std::atomic<uint64_t> NumBitFlips{0};
  std::atomic<uint64_t> NumUndoCorruptions{0};
  std::atomic<uint64_t> NumNansInjected{0};
  std::atomic<uint64_t> NumInfsInjected{0};
  std::atomic<uint64_t> NumClientDrips{0};
  std::atomic<uint64_t> NumConnKills{0};
  std::atomic<uint64_t> NumSnapshotWriteFails{0};
};

// Inline call-site wrappers: one relaxed atomic load on the common path,
// constant false when the feature is compiled out.

inline bool injectTaskThrow(uint64_t Block) {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() && FI.fireTaskThrow(Block);
#else
  (void)Block;
  return false;
#endif
}

inline uint64_t injectWorkerStall(unsigned Worker) {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() ? FI.fireWorkerStall(Worker) : 0;
#else
  (void)Worker;
  return 0;
#endif
}

inline bool injectWorkerDeath(unsigned Worker) {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() && FI.fireWorkerDeath(Worker);
#else
  (void)Worker;
  return false;
#endif
}

inline bool injectDomainDeath(unsigned Domain) {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() && FI.fireDomainDeath(Domain);
#else
  (void)Domain;
  return false;
#endif
}

inline bool injectAllocFail() {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() && FI.fireAllocFail();
#else
  return false;
#endif
}

inline bool injectSolverUnknown() {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() && FI.fireSolverUnknown();
#else
  return false;
#endif
}

inline bool injectBitFlip(uint64_t Block, unsigned &Bit, uint64_t &Pick) {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() && FI.fireBitFlip(Block, Bit, Pick);
#else
  (void)Block;
  (void)Bit;
  (void)Pick;
  return false;
#endif
}

inline bool injectUndoCorrupt(uint64_t Block, uint64_t &Pick) {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() && FI.fireUndoCorrupt(Block, Pick);
#else
  (void)Block;
  (void)Pick;
  return false;
#endif
}

/// 0 = no fault, 1 = NaN, 2 = +Inf.
inline int injectPoisonValue(uint64_t Block, uint64_t &Pick) {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() ? FI.firePoisonValue(Block, Pick) : 0;
#else
  (void)Block;
  (void)Pick;
  return 0;
#endif
}

inline bool injectClientDrip(uint64_t &Bytes, uint64_t &Ms) {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() && FI.fireClientDrip(Bytes, Ms);
#else
  (void)Bytes;
  (void)Ms;
  return false;
#endif
}

inline bool injectConnKill(uint64_t Conn) {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() && FI.fireConnKill(Conn);
#else
  (void)Conn;
  return false;
#endif
}

/// 0 = no fault, 1 = ENOSPC, 2 = short write.
inline int injectSnapshotWriteFail() {
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  FaultInjector &FI = FaultInjector::instance();
  return FI.armed() ? FI.fireSnapshotWriteFail() : 0;
#else
  return 0;
#endif
}

} // namespace shackle

#endif // SHACKLE_SUPPORT_FAULTINJECTOR_H
