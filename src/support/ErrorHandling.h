//===- ErrorHandling.h - Fatal internal errors -------------------*- C++ -*-=//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reporting for broken internal invariants that must abort even in release
/// builds (the moral equivalent of llvm_unreachable / report_fatal_error).
///
/// This is the *unrecoverable* half of the failure policy (DESIGN.md,
/// "Failure policy"). Anything an end user can trigger — malformed DSL
/// input, an ill-fitting shackle, solver exhaustion — must instead return a
/// Status / Expected<T> from Diagnostics.h so the pipeline can degrade
/// gracefully.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SUPPORT_ERRORHANDLING_H
#define SHACKLE_SUPPORT_ERRORHANDLING_H

#include <cstdio>
#include <cstdlib>

namespace shackle {

/// Prints \p Msg to stderr and aborts. Use for invariant violations that
/// would otherwise silently produce wrong code.
[[noreturn]] inline void fatalError(const char *Msg) {
  std::fputs("shackle fatal error: ", stderr);
  std::fputs(Msg, stderr);
  std::fputs("\n", stderr);
  std::abort();
}

} // namespace shackle

#endif // SHACKLE_SUPPORT_ERRORHANDLING_H
