//===- Checksum.h - Order-sensitive content hashing -------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic hasher for the data-integrity layer (DESIGN.md
/// §12). The paper's block is a bounded, statically enumerable footprint
/// (Definition 1); hashing that footprint — (array, offset, bit pattern)
/// per element, in sorted footprint order — gives a content fingerprint
/// that is stable across platforms and thread counts, so it can vouch for
/// undo-log pre-images before a restore and compare independent executions
/// of the same block bit-for-bit.
///
/// The construction is FNV-1a over 64-bit words with a SplitMix64 finalizer
/// (the same mixer fillRandom and the rate-based fault injector use), word-
/// at-a-time rather than byte-at-a-time: every input is already a fixed
/// 64-bit quantity (ids, offsets, double bit patterns), and the finalizer
/// restores the avalanche quality plain word-FNV lacks. Values are hashed
/// by *bit pattern*, never by numeric value: -0.0 and 0.0 differ, every
/// NaN payload is distinguished — the same strength as
/// ProgramInstance::bitwiseEqual, which is the guarantee these checksums
/// stand in for.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SUPPORT_CHECKSUM_H
#define SHACKLE_SUPPORT_CHECKSUM_H

#include <cstdint>
#include <cstring>

namespace shackle {

/// Streaming order-sensitive checksum. Feed words; read value().
class Checksum {
public:
  Checksum &u64(uint64_t W) {
    H = (H ^ W) * 0x100000001b3ULL; // FNV-1a step, 64-bit prime.
    return *this;
  }

  /// Hashes a double by bit pattern (distinguishes -0.0/0.0 and NaNs).
  Checksum &f64(double V) {
    uint64_t Bits;
    std::memcpy(&Bits, &V, sizeof(Bits));
    return u64(Bits);
  }

  /// SplitMix64-finalized digest of everything fed so far.
  uint64_t value() const {
    uint64_t X = H + 0x9e3779b97f4a7c15ULL;
    X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
    X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
    return X ^ (X >> 31);
  }

private:
  uint64_t H = 0xcbf29ce484222325ULL; // FNV-1a offset basis.
};

/// Flips bit \p Bit (0-63) of \p V's representation — the canonical
/// "silent corruption" mutation used by both the fault injector and tests.
inline double flipDoubleBit(double V, unsigned Bit) {
  uint64_t Bits;
  std::memcpy(&Bits, &V, sizeof(Bits));
  Bits ^= 1ULL << (Bit & 63);
  std::memcpy(&V, &Bits, sizeof(V));
  return V;
}

} // namespace shackle

#endif // SHACKLE_SUPPORT_CHECKSUM_H
