//===- MultiPass.cpp - Multi-sweep block traversal ------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "runtime/MultiPass.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <map>

using namespace shackle;

namespace {

struct Instance {
  unsigned StmtId;
  std::vector<int64_t> Iter;
  std::vector<int64_t> Block; ///< Traversal-order block coordinates.
};

/// Enumerates all statement instances in original program order.
std::vector<Instance> enumerateInstances(const Program &P,
                                         const ProgramInstance &Inst) {
  std::vector<Instance> Out;
  std::vector<int64_t> VarValues(P.getNumVars(), 0);
  for (unsigned V = 0; V < P.getNumParams(); ++V)
    VarValues[V] = Inst.paramValue(V);
  std::function<void(const std::vector<Node> &)> Walk =
      [&](const std::vector<Node> &Body) {
        for (const Node &N : Body) {
          if (N.isLoop()) {
            const Loop &L = *N.L;
            int64_t Lo = L.LowerBounds[0].evaluate(VarValues);
            for (unsigned I = 1; I < L.LowerBounds.size(); ++I)
              Lo = std::max(Lo, L.LowerBounds[I].evaluate(VarValues));
            int64_t Hi = L.UpperBounds[0].evaluate(VarValues);
            for (unsigned I = 1; I < L.UpperBounds.size(); ++I)
              Hi = std::min(Hi, L.UpperBounds[I].evaluate(VarValues));
            for (int64_t V = Lo; V <= Hi; ++V) {
              VarValues[L.Var] = V;
              Walk(L.Body);
            }
          } else {
            Instance R;
            R.StmtId = N.S->Id;
            for (unsigned Var : N.S->LoopVars)
              R.Iter.push_back(VarValues[Var]);
            Out.push_back(std::move(R));
          }
        }
      };
  Walk(P.topLevel());
  return Out;
}

} // namespace

MultiPassResult shackle::runMultiPassShackled(const Program &P,
                                              const DataShackle &Sh,
                                              ProgramInstance &Inst,
                                              unsigned MaxPasses) {
  assert(Sh.ShackledRefs.size() == P.getNumStmts() &&
         "shackle must cover every statement");
  MultiPassResult Result;

  std::vector<Instance> Insts = enumerateInstances(P, Inst);
  Result.TotalInstances = Insts.size();
  Result.Progress.TotalUnits = Insts.size();

  // Block coordinates of each instance's shackled reference.
  std::vector<int64_t> VarValues(P.getNumVars(), 0);
  for (unsigned V = 0; V < P.getNumParams(); ++V)
    VarValues[V] = Inst.paramValue(V);
  for (Instance &I : Insts) {
    const Stmt &S = P.getStmt(I.StmtId);
    for (unsigned K = 0; K < S.LoopVars.size(); ++K)
      VarValues[S.LoopVars[K]] = I.Iter[K];
    const ArrayRef &Ref = Sh.ShackledRefs[I.StmtId];
    std::vector<int64_t> Idx;
    for (const AffineExpr &E : Ref.Indices)
      Idx.push_back(E.evaluate(VarValues));
    for (const CuttingPlaneSet &PS : Sh.Blocking.Planes) {
      int64_t E = 0;
      for (unsigned D = 0; D < PS.Normal.size(); ++D)
        E += PS.Normal[D] * Idx[D];
      int64_t Z = floorDiv(E, PS.BlockSize);
      I.Block.push_back(PS.Reversed ? -Z : Z);
    }
  }

  // Dependence bookkeeping: per array element, the program-order list of
  // accesses. An instance is ready when, on each element it touches, every
  // earlier conflicting access (one side a write) has executed.
  struct Access {
    uint32_t Inst;
    bool IsWrite;
  };
  std::map<std::pair<unsigned, int64_t>, std::vector<Access>> Elements;
  for (uint32_t Idx = 0; Idx < Insts.size(); ++Idx) {
    const Stmt &S = P.getStmt(Insts[Idx].StmtId);
    for (unsigned K = 0; K < S.LoopVars.size(); ++K)
      VarValues[S.LoopVars[K]] = Insts[Idx].Iter[K];
    for (const auto &[Ref, IsWrite] : S.refs()) {
      int64_t Off[8];
      for (unsigned D = 0; D < Ref->Indices.size(); ++D)
        Off[D] = Ref->Indices[D].evaluate(VarValues);
      int64_t Linear = Inst.offset(Ref->ArrayId, Off);
      Elements[{Ref->ArrayId, Linear}].push_back(Access{Idx, IsWrite});
    }
  }

  std::vector<bool> Done(Insts.size(), false);
  auto IsReady = [&](uint32_t Idx) {
    const Stmt &S = P.getStmt(Insts[Idx].StmtId);
    for (unsigned K = 0; K < S.LoopVars.size(); ++K)
      VarValues[S.LoopVars[K]] = Insts[Idx].Iter[K];
    for (const auto &[Ref, IsWrite] : S.refs()) {
      int64_t Off[8];
      for (unsigned D = 0; D < Ref->Indices.size(); ++D)
        Off[D] = Ref->Indices[D].evaluate(VarValues);
      int64_t Linear = Inst.offset(Ref->ArrayId, Off);
      for (const Access &A : Elements[{Ref->ArrayId, Linear}]) {
        if (A.Inst == Idx)
          break; // Only earlier accesses matter.
        if ((A.IsWrite || IsWrite) && !Done[A.Inst])
          return false;
      }
    }
    return true;
  };

  // Group instances by block, blocks in traversal (lexicographic) order;
  // within a block, program order.
  std::map<std::vector<int64_t>, std::vector<uint32_t>> Blocks;
  for (uint32_t Idx = 0; Idx < Insts.size(); ++Idx)
    Blocks[Insts[Idx].Block].push_back(Idx);

  uint64_t Remaining = Insts.size();
  uint32_t OldestPending = 0; // Program-order index; only moves forward.
  while (Remaining > 0 && Result.Passes < MaxPasses) {
    ++Result.Passes;
    uint64_t ExecutedThisPass = 0;
    while (OldestPending < Insts.size() && Done[OldestPending])
      ++OldestPending;
    uint32_t OldestBefore = OldestPending;
    for (auto &[Coords, Members] : Blocks) {
      for (uint32_t Idx : Members) {
        if (Done[Idx] || !IsReady(Idx))
          continue;
        const Stmt &S = P.getStmt(Insts[Idx].StmtId);
        executeStatementInstance(Inst, S, Insts[Idx].Iter);
        Done[Idx] = true;
        --Remaining;
        ++ExecutedThisPass;
      }
    }
    Result.Instances += ExecutedThisPass;
    Result.ExecutedPerPass.push_back(ExecutedThisPass);
    Result.Progress.recordAttempt(ExecutedThisPass);
    if (OldestBefore < Insts.size() && !Done[OldestBefore])
      Result.OldestRetiredEachPass = false;
    if (ExecutedThisPass == 0)
      break; // Deadlock would indicate corrupt dependence data.
  }
  Result.Completed = Remaining == 0;
  return Result;
}
