//===- MultiPass.h - Multi-sweep block traversal ------------------*- C++ -*-=//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 8 extension for relaxation codes, where a single
/// sweep over the blocked array cannot be legal because "an array element
/// is eventually affected by every other element":
///
///   "rather than perform all shackled statement instances when we touch a
///    block, we can perform only those instances for which dependences have
///    been satisfied. The array is traversed repeatedly till all instances
///    are performed."
///
/// This runtime realizes exactly that: instances are executed when their
/// dependence predecessors (earlier program-order accesses to a common
/// element, at least one a write) have completed, and blocks are swept in
/// traversal order until nothing is pending. For a shackle that is legal
/// outright, the first sweep executes everything (a property the tests
/// pin); for stencil/relaxation kernels the number of sweeps measures how
/// far the shackle is from single-pass legality.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_RUNTIME_MULTIPASS_H
#define SHACKLE_RUNTIME_MULTIPASS_H

#include "core/DataShackle.h"
#include "interp/Interpreter.h"
#include "ir/Program.h"
#include "support/Progress.h"

#include <cstdint>
#include <vector>

namespace shackle {

struct MultiPassResult {
  /// Number of full sweeps over the blocks that executed at least one
  /// instance.
  unsigned Passes = 0;
  /// Statement instances actually executed (equal to TotalInstances iff
  /// Completed; smaller when MaxPasses cut the run short).
  uint64_t Instances = 0;
  /// Statement instances the program would execute in full.
  uint64_t TotalInstances = 0;
  /// Instances executed by each sweep, in sweep order (Passes entries).
  std::vector<uint64_t> ExecutedPerPass;
  /// True while every sweep so far retired the oldest pending instance
  /// (in program order). This is the progress guarantee that makes the
  /// traversal terminate: the oldest pending instance has no unexecuted
  /// dependence predecessors, so each sweep retires it.
  bool OldestRetiredEachPass = true;
  /// False if MaxPasses was exhausted with work pending (cannot happen for
  /// well-formed programs given enough passes: see OldestRetiredEachPass).
  bool Completed = false;
  /// The same counters as Instances/TotalInstances/ExecutedPerPass in the
  /// shared partial-progress shape (one attempt per sweep) that the
  /// parallel executor's replay bookkeeping also uses.
  ProgressLog Progress;
};

/// Executes \p P on \p Inst under the multi-pass block traversal induced by
/// shackle \p Sh. Intended for modest problem sizes (the dependence
/// bookkeeping enumerates instances explicitly).
MultiPassResult runMultiPassShackled(const Program &P, const DataShackle &Sh,
                                     ProgramInstance &Inst,
                                     unsigned MaxPasses = 4096);

} // namespace shackle

#endif // SHACKLE_RUNTIME_MULTIPASS_H
