//===- Interpreter.cpp - Direct execution of generated code ------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"

#include "support/ErrorHandling.h"
#include "support/MathExtras.h"

#include <cassert>
#include <cmath>
#include <cstring>

using namespace shackle;

ProgramInstance::ProgramInstance(const Program &P,
                                 std::vector<int64_t> Params)
    : Prog(&P), ParamValues(std::move(Params)) {
  assert(ParamValues.size() == P.getNumParams() &&
         "one value per parameter required");
  std::vector<int64_t> VarValues(P.getNumVars(), 0);
  for (unsigned V = 0; V < P.getNumParams(); ++V)
    VarValues[V] = ParamValues[V];

  for (unsigned Id = 0; Id < P.getNumArrays(); ++Id) {
    const ArrayDecl &A = P.getArray(Id);
    std::vector<int64_t> Ext;
    for (const AffineExpr &E : A.Extents)
      Ext.push_back(E.evaluate(VarValues));
    int64_t Size = 1;
    switch (A.Layout) {
    case LayoutKind::RowMajor:
    case LayoutKind::ColMajor:
      for (int64_t E : Ext) {
        assert(E >= 0 && "negative array extent");
        Size *= E;
      }
      break;
    case LayoutKind::BandLower: {
      assert(Ext.size() == 2 && "band storage is for matrices");
      int64_t Bw = ParamValues[A.BandParam];
      Size = (Bw + 1) * Ext[1];
      break;
    }
    case LayoutKind::TiledRowMajor: {
      assert(Ext.size() == 2 && "tiled storage is for matrices");
      int64_t TR = ceilDiv(Ext[0], A.TileRows);
      int64_t TC = ceilDiv(Ext[1], A.TileCols);
      Size = TR * TC * A.TileRows * A.TileCols;
      break;
    }
    }
    Buffers.emplace_back(static_cast<size_t>(Size), 0.0);
    Extents.push_back(std::move(Ext));
  }
}

int64_t ProgramInstance::offset(unsigned ArrayId, const int64_t *Idx) const {
  const ArrayDecl &A = Prog->getArray(ArrayId);
  const std::vector<int64_t> &Ext = Extents[ArrayId];
  switch (A.Layout) {
  case LayoutKind::RowMajor: {
    int64_t Off = 0;
    for (unsigned D = 0; D < Ext.size(); ++D) {
      assert(Idx[D] >= 0 && Idx[D] < Ext[D] && "index out of bounds");
      Off = Off * Ext[D] + Idx[D];
    }
    return Off;
  }
  case LayoutKind::ColMajor: {
    int64_t Off = 0;
    for (unsigned D = Ext.size(); D-- > 0;) {
      assert(Idx[D] >= 0 && Idx[D] < Ext[D] && "index out of bounds");
      Off = Off * Ext[D] + Idx[D];
    }
    return Off;
  }
  case LayoutKind::BandLower: {
    int64_t Bw = ParamValues[A.BandParam];
    int64_t I = Idx[0], J = Idx[1];
    assert(I - J >= 0 && I - J <= Bw && "access outside the stored band");
    return (I - J) + J * (Bw + 1);
  }
  case LayoutKind::TiledRowMajor: {
    int64_t I = Idx[0], J = Idx[1];
    assert(I >= 0 && I < Ext[0] && J >= 0 && J < Ext[1] &&
           "index out of bounds");
    int64_t TC = ceilDiv(Ext[1], A.TileCols);
    int64_t Tile = (I / A.TileRows) * TC + (J / A.TileCols);
    return (Tile * A.TileRows + I % A.TileRows) * A.TileCols +
           J % A.TileCols;
  }
  }
  fatalError("unknown layout");
}

void ProgramInstance::fillRandom(uint64_t Seed, double Lo, double Hi) {
  // SplitMix64: deterministic across platforms.
  uint64_t X = Seed ? Seed : 0x9e3779b97f4a7c15ULL;
  auto Next = [&X]() {
    X += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  };
  for (std::vector<double> &Buf : Buffers)
    for (double &V : Buf)
      V = Lo + (Hi - Lo) * (static_cast<double>(Next() >> 11) * 0x1.0p-53);
}

bool ProgramInstance::bitwiseEqual(const ProgramInstance &Other) const {
  assert(Buffers.size() == Other.Buffers.size());
  for (unsigned Id = 0; Id < Buffers.size(); ++Id) {
    assert(Buffers[Id].size() == Other.Buffers[Id].size());
    if (!Buffers[Id].empty() &&
        std::memcmp(Buffers[Id].data(), Other.Buffers[Id].data(),
                    Buffers[Id].size() * sizeof(double)) != 0)
      return false;
  }
  return true;
}

double ProgramInstance::maxAbsDifference(const ProgramInstance &Other) const {
  assert(Buffers.size() == Other.Buffers.size());
  double Max = 0;
  for (unsigned Id = 0; Id < Buffers.size(); ++Id) {
    assert(Buffers[Id].size() == Other.Buffers[Id].size());
    for (size_t I = 0; I < Buffers[Id].size(); ++I)
      Max = std::max(Max, std::fabs(Buffers[Id][I] - Other.Buffers[Id][I]));
  }
  return Max;
}

namespace {

/// Physical offset of \p R with the given program-variable values.
int64_t refOffsetIn(const ProgramInstance &Inst, const ArrayRef &R,
                    const std::vector<int64_t> &VarValues) {
  int64_t Idx[8];
  assert(R.Indices.size() <= 8 && "array rank too large");
  for (unsigned D = 0; D < R.Indices.size(); ++D)
    Idx[D] = R.Indices[D].evaluate(VarValues);
  return Inst.offset(R.ArrayId, Idx);
}

/// Evaluates a scalar expression with the given program-variable values.
double evalScalarIn(ProgramInstance &Inst, const ScalarExpr *E,
                    const std::vector<int64_t> &VarValues,
                    const TraceFn *Trace) {
  switch (E->getKind()) {
  case ExprKind::Number:
    return E->getNumber();
  case ExprKind::Load: {
    int64_t Off = refOffsetIn(Inst, E->getRef(), VarValues);
    if (Trace)
      (*Trace)(E->getRef().ArrayId, Off, /*IsWrite=*/false);
    return Inst.buffer(E->getRef().ArrayId)[Off];
  }
  case ExprKind::Add:
    return evalScalarIn(Inst, E->getLHS(), VarValues, Trace) +
           evalScalarIn(Inst, E->getRHS(), VarValues, Trace);
  case ExprKind::Sub:
    return evalScalarIn(Inst, E->getLHS(), VarValues, Trace) -
           evalScalarIn(Inst, E->getRHS(), VarValues, Trace);
  case ExprKind::Mul:
    return evalScalarIn(Inst, E->getLHS(), VarValues, Trace) *
           evalScalarIn(Inst, E->getRHS(), VarValues, Trace);
  case ExprKind::Div:
    return evalScalarIn(Inst, E->getLHS(), VarValues, Trace) /
           evalScalarIn(Inst, E->getRHS(), VarValues, Trace);
  case ExprKind::Neg:
    return -evalScalarIn(Inst, E->getLHS(), VarValues, Trace);
  case ExprKind::Sqrt:
    return std::sqrt(evalScalarIn(Inst, E->getLHS(), VarValues, Trace));
  }
  fatalError("unknown scalar expression kind");
}

class Executor {
public:
  Executor(const LoopNest &Nest, ProgramInstance &Inst, const TraceFn *Trace,
           bool CountOnly)
      : Nest(Nest), Inst(Inst), Trace(Trace), CountOnly(CountOnly),
        DimValues(Nest.NumDims, 0),
        StmtVarValues(Nest.Prog->getNumVars(), 0) {
    for (unsigned V = 0; V < Nest.NumParams; ++V) {
      DimValues[V] = Inst.paramValue(V);
      StmtVarValues[V] = Inst.paramValue(V);
    }
  }

  /// Subtree execution: start from caller-provided dimension values (the
  /// dims bound above the subtree; the rest are scratch). When \p Writes is
  /// non-null the walk is a dry run that only reports each instance's store
  /// address (undo-log capture); the instance storage is never touched.
  Executor(const LoopNest &Nest, ProgramInstance &Inst, const TraceFn *Trace,
           std::vector<int64_t> InitialDimValues,
           const WriteSink *Writes = nullptr,
           const StoreCheckFn *Check = nullptr)
      : Nest(Nest), Inst(Inst), Trace(Trace), CountOnly(false),
        Writes(Writes), Check(Check),
        DimValues(std::move(InitialDimValues)),
        StmtVarValues(Nest.Prog->getNumVars(), 0) {
    assert(DimValues.size() == Nest.NumDims && "one value per dimension");
    for (unsigned V = 0; V < Nest.NumParams; ++V)
      StmtVarValues[V] = Inst.paramValue(V);
  }

  void run() {
    for (const ASTNodePtr &N : Nest.Roots)
      exec(*N);
  }

  void runSubtree(const ASTNode &Root) { exec(Root); }

  uint64_t instanceCount() const { return Instances; }

private:
  int64_t evalBound(const BoundExpr &B) {
    int64_t V = B.Expr.evaluate(DimValues);
    if (B.Divisor == 1)
      return V;
    return B.IsCeil ? ceilDiv(V, B.Divisor) : floorDiv(V, B.Divisor);
  }

  bool evalConds(const ASTNode &N) {
    for (const ConstraintRow &Row : N.EqConds)
      if (evalRow(Row) != 0)
        return false;
    for (const ConstraintRow &Row : N.IneqConds)
      if (evalRow(Row) < 0)
        return false;
    return true;
  }

  int64_t evalRow(const ConstraintRow &Row) {
    int64_t V = Row.back();
    for (unsigned I = 0; I + 1 < Row.size(); ++I)
      if (Row[I] != 0)
        V += Row[I] * DimValues[I];
    return V;
  }

  double evalScalar(const ScalarExpr *E) {
    switch (E->getKind()) {
    case ExprKind::Number:
      return E->getNumber();
    case ExprKind::Load: {
      int64_t Off = refOffset(E->getRef());
      if (Trace)
        (*Trace)(E->getRef().ArrayId, Off, /*IsWrite=*/false);
      return Inst.buffer(E->getRef().ArrayId)[Off];
    }
    case ExprKind::Add:
      return evalScalar(E->getLHS()) + evalScalar(E->getRHS());
    case ExprKind::Sub:
      return evalScalar(E->getLHS()) - evalScalar(E->getRHS());
    case ExprKind::Mul:
      return evalScalar(E->getLHS()) * evalScalar(E->getRHS());
    case ExprKind::Div:
      return evalScalar(E->getLHS()) / evalScalar(E->getRHS());
    case ExprKind::Neg:
      return -evalScalar(E->getLHS());
    case ExprKind::Sqrt:
      return std::sqrt(evalScalar(E->getLHS()));
    }
    fatalError("unknown scalar expression kind");
  }

  int64_t refOffset(const ArrayRef &R) {
    int64_t Idx[8];
    assert(R.Indices.size() <= 8 && "array rank too large");
    for (unsigned D = 0; D < R.Indices.size(); ++D)
      Idx[D] = R.Indices[D].evaluate(StmtVarValues);
    return Inst.offset(R.ArrayId, Idx);
  }

  void execInstance(const ASTNode &N) {
    ++Instances;
    if (CountOnly)
      return;
    const Stmt &S = *N.S;
    for (unsigned K = 0; K < N.VarMap.size(); ++K)
      StmtVarValues[S.LoopVars[K]] = DimValues[N.VarMap[K]];
    if (Writes) {
      (*Writes)(S.LHS.ArrayId, refOffset(S.LHS));
      return;
    }
    double Value = evalScalar(S.RHS.get());
    int64_t Off = refOffset(S.LHS);
    if (Trace)
      (*Trace)(S.LHS.ArrayId, Off, /*IsWrite=*/true);
    Inst.buffer(S.LHS.ArrayId)[Off] = Value;
    if (Check)
      (*Check)(S.LHS.ArrayId, Off, Value);
  }

  void exec(const ASTNode &N) {
    switch (N.Kind) {
    case ASTKind::Loop: {
      int64_t Lo = evalBound(N.Lbs[0]);
      for (unsigned I = 1; I < N.Lbs.size(); ++I)
        Lo = std::max(Lo, evalBound(N.Lbs[I]));
      int64_t Hi = evalBound(N.Ubs[0]);
      for (unsigned I = 1; I < N.Ubs.size(); ++I)
        Hi = std::min(Hi, evalBound(N.Ubs[I]));
      for (int64_t V = Lo; V <= Hi; ++V) {
        DimValues[N.Dim] = V;
        for (const ASTNodePtr &C : N.Body)
          exec(*C);
      }
      return;
    }
    case ASTKind::Let:
      DimValues[N.Dim] = evalBound(N.Lbs[0]);
      for (const ASTNodePtr &C : N.Body)
        exec(*C);
      return;
    case ASTKind::If:
      if (!evalConds(N))
        return;
      for (const ASTNodePtr &C : N.Body)
        exec(*C);
      return;
    case ASTKind::Instance:
      execInstance(N);
      return;
    }
  }

  const LoopNest &Nest;
  ProgramInstance &Inst;
  const TraceFn *Trace;
  bool CountOnly;
  const WriteSink *Writes = nullptr;
  const StoreCheckFn *Check = nullptr;
  uint64_t Instances = 0;
  std::vector<int64_t> DimValues;
  std::vector<int64_t> StmtVarValues;
};

} // namespace

void shackle::runLoopNest(const LoopNest &Nest, ProgramInstance &Inst,
                          const TraceFn *Trace) {
  Executor E(Nest, Inst, Trace, /*CountOnly=*/false);
  E.run();
}

void shackle::runLoopNestSubtree(const LoopNest &Nest, const ASTNode &Root,
                                 const std::vector<int64_t> &DimValues,
                                 ProgramInstance &Inst, const TraceFn *Trace,
                                 const StoreCheckFn *Check) {
  Executor E(Nest, Inst, Trace, DimValues, /*Writes=*/nullptr, Check);
  E.runSubtree(Root);
}

void shackle::collectSubtreeWrites(const LoopNest &Nest, const ASTNode &Root,
                                   const std::vector<int64_t> &DimValues,
                                   const ProgramInstance &Inst,
                                   const WriteSink &Sink) {
  // The const_cast is sound: with a WriteSink the Executor never touches
  // the instance's buffers (see execInstance).
  Executor E(Nest, const_cast<ProgramInstance &>(Inst), nullptr, DimValues,
             &Sink);
  E.runSubtree(Root);
}

uint64_t shackle::countExecutedInstances(const LoopNest &Nest,
                                         const ProgramInstance &Inst) {
  Executor E(Nest, const_cast<ProgramInstance &>(Inst), nullptr,
             /*CountOnly=*/true);
  E.run();
  return E.instanceCount();
}

void shackle::executeStatementInstance(ProgramInstance &Inst, const Stmt &S,
                                       const std::vector<int64_t> &IterValues,
                                       const TraceFn *Trace) {
  assert(IterValues.size() == S.getDepth() && "wrong iteration arity");
  const Program &P = Inst.program();
  std::vector<int64_t> VarValues(P.getNumVars(), 0);
  for (unsigned V = 0; V < P.getNumParams(); ++V)
    VarValues[V] = Inst.paramValue(V);
  for (unsigned K = 0; K < S.getDepth(); ++K)
    VarValues[S.LoopVars[K]] = IterValues[K];
  double Value = evalScalarIn(Inst, S.RHS.get(), VarValues, Trace);
  int64_t Off = refOffsetIn(Inst, S.LHS, VarValues);
  if (Trace)
    (*Trace)(S.LHS.ArrayId, Off, /*IsWrite=*/true);
  Inst.buffer(S.LHS.ArrayId)[Off] = Value;
}
