//===- Interpreter.h - Direct execution of generated code -------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tree-walking interpreter for LoopNest code and the runtime array
/// storage behind it. Every transformation in this project is validated by
/// running the original and the shackled LoopNests on the same inputs and
/// comparing array contents bit-for-bit / within floating-point tolerance.
/// The interpreter can also emit a memory trace (one callback per array
/// element access) that feeds the cache simulator, standing in for the
/// paper's hardware measurements at small problem sizes.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_INTERP_INTERPRETER_H
#define SHACKLE_INTERP_INTERPRETER_H

#include "codegen/LoopAST.h"
#include "ir/Program.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace shackle {

/// Concrete storage for one run: parameter values and one buffer per array,
/// addressed through the array's declared layout.
class ProgramInstance {
public:
  ProgramInstance(const Program &P, std::vector<int64_t> ParamValues);

  const Program &program() const { return *Prog; }
  int64_t paramValue(unsigned Param) const { return ParamValues[Param]; }
  const std::vector<int64_t> &paramValues() const { return ParamValues; }

  std::vector<double> &buffer(unsigned ArrayId) { return Buffers[ArrayId]; }
  const std::vector<double> &buffer(unsigned ArrayId) const {
    return Buffers[ArrayId];
  }

  /// Physical element offset of a logical index vector, honoring the
  /// array's layout (row-major, column-major, or band storage).
  int64_t offset(unsigned ArrayId, const int64_t *Idx) const;

  /// Fills every array with deterministic pseudo-random values in [lo, hi].
  void fillRandom(uint64_t Seed, double Lo = 0.0, double Hi = 1.0);

  /// Largest absolute element difference against another instance of the
  /// same program (same parameter values).
  double maxAbsDifference(const ProgramInstance &Other) const;

  /// True iff every array buffer is byte-for-byte identical to \p Other's
  /// (stricter than maxAbsDifference() == 0: distinguishes -0.0 from 0.0
  /// and compares NaNs by representation). The parallel executor's
  /// determinism guarantee is stated - and tested - at this strength.
  bool bitwiseEqual(const ProgramInstance &Other) const;

private:
  const Program *Prog;
  std::vector<int64_t> ParamValues;
  std::vector<std::vector<double>> Buffers;
  std::vector<std::vector<int64_t>> Extents; ///< Evaluated logical extents.
};

/// Per-access trace callback: array, physical element offset, write flag.
using TraceFn = std::function<void(unsigned ArrayId, int64_t Offset,
                                   bool IsWrite)>;

/// Executes \p Nest on \p Inst. If \p Trace is non-null, it is invoked for
/// every array element access in execution order (loads before the store of
/// each statement instance).
void runLoopNest(const LoopNest &Nest, ProgramInstance &Inst,
                 const TraceFn *Trace = nullptr);

/// Observer for committed stores: array, physical offset, stored value.
/// Invoked after the RHS is evaluated and the store performed. The parallel
/// executor's poison guard uses this to flag the first non-finite value a
/// block *produces* — as opposed to one corrupted in memory after the fact,
/// which only a footprint scan can see (DESIGN.md §12).
using StoreCheckFn =
    std::function<void(unsigned ArrayId, int64_t Offset, double Value)>;

/// Executes one subtree of \p Nest with the enclosing scanning dimensions
/// pre-bound: \p DimValues must hold Nest.NumDims entries whose leading
/// entries (parameters and every dimension bound above \p Root, e.g. the
/// block coordinates) carry their concrete values; the remaining entries
/// are scratch. Each call builds its own evaluation state, so concurrent
/// calls on the same instance are safe as long as the statement instances
/// they execute touch disjoint elements or are otherwise ordered (the
/// parallel executor's block dependence DAG guarantees exactly this).
/// A non-null \p Check observes every committed store.
void runLoopNestSubtree(const LoopNest &Nest, const ASTNode &Root,
                        const std::vector<int64_t> &DimValues,
                        ProgramInstance &Inst, const TraceFn *Trace = nullptr,
                        const StoreCheckFn *Check = nullptr);

/// Callback receiving one (array, physical element offset) pair per store
/// the walked code would perform. Duplicates are reported as encountered.
using WriteSink = std::function<void(unsigned ArrayId, int64_t Offset)>;

/// Enumerates the write footprint of one subtree of \p Nest without
/// executing it: the same structural walk as runLoopNestSubtree, but each
/// statement instance only evaluates its LHS address and reports it to
/// \p Sink — no loads, no stores, no floating-point work. Well-defined
/// because control flow (bounds, guards) in LoopAST is affine and therefore
/// data-independent. The parallel executor snapshots exactly these
/// elements into a block's undo log before running it.
void collectSubtreeWrites(const LoopNest &Nest, const ASTNode &Root,
                          const std::vector<int64_t> &DimValues,
                          const ProgramInstance &Inst, const WriteSink &Sink);

/// Counts the statement instances \p Nest would execute (no array work).
uint64_t countExecutedInstances(const LoopNest &Nest,
                                const ProgramInstance &Inst);

/// Executes one statement instance: \p IterValues holds the values of the
/// statement's enclosing loop variables, outermost first. Used by the
/// multi-pass runtime, which schedules instances individually.
void executeStatementInstance(ProgramInstance &Inst, const Stmt &S,
                              const std::vector<int64_t> &IterValues,
                              const TraceFn *Trace = nullptr);

} // namespace shackle

#endif // SHACKLE_INTERP_INTERPRETER_H
