//===- MicroBlas.h - Hand-tuned micro BLAS kernels --------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small dense kernels playing the role of the machine-tuned BLAS-3 the
/// paper's comparison lines use (ESSL DGEMM on the SP-2). Everything is
/// row-major with explicit leading dimensions. These are deliberately
/// straightforward, cache-friendly loops (i-k-j orders, restrict pointers)
/// rather than assembly: the experiments compare *shapes*, and the same
/// kernels serve both the "Matrix Multiply replaced by DGEMM" lines and the
/// "LAPACK" baselines.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_KERNELS_MICROBLAS_H
#define SHACKLE_KERNELS_MICROBLAS_H

#include <cstdint>

namespace shackle {

/// C[0..M)[0..N) += A[0..M)[0..K) * B[0..K)[0..N); row-major, leading
/// dimensions ldc/lda/ldb.
void microGemm(double *C, const double *A, const double *B, int64_t M,
               int64_t N, int64_t K, int64_t Ldc, int64_t Lda, int64_t Ldb);

/// C -= A * B (same shapes as microGemm).
void microGemmSub(double *C, const double *A, const double *B, int64_t M,
                  int64_t N, int64_t K, int64_t Ldc, int64_t Lda,
                  int64_t Ldb);

/// C[0..N)[0..N) -= A[0..N)[0..K) * A^T (lower triangle only): the SYRK
/// update used by blocked Cholesky.
void microSyrkLower(double *C, const double *A, int64_t N, int64_t K,
                    int64_t Ldc, int64_t Lda);

/// Solves X * L^T = B in place for X (B is M x N, L is N x N lower
/// triangular with nonzero diagonal): the TRSM used by blocked Cholesky
/// panels (right-looking, row-major).
void microTrsmRightLowerT(double *B, const double *L, int64_t M, int64_t N,
                          int64_t Ldb, int64_t Ldl);

/// Unblocked lower Cholesky of the leading N x N block (row-major, ld Lda).
/// The strict upper triangle is left untouched.
void microCholeskyLower(double *A, int64_t N, int64_t Lda);

} // namespace shackle

#endif // SHACKLE_KERNELS_MICROBLAS_H
