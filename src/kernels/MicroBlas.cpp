//===- MicroBlas.cpp - Hand-tuned micro BLAS kernels -------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "kernels/MicroBlas.h"

#include <cmath>

using namespace shackle;

void shackle::microGemm(double *C, const double *A, const double *B,
                        int64_t M, int64_t N, int64_t K, int64_t Ldc,
                        int64_t Lda, int64_t Ldb) {
  for (int64_t I = 0; I < M; ++I) {
    double *__restrict Ci = C + I * Ldc;
    for (int64_t P = 0; P < K; ++P) {
      double Aip = A[I * Lda + P];
      const double *__restrict Bp = B + P * Ldb;
      for (int64_t J = 0; J < N; ++J)
        Ci[J] += Aip * Bp[J];
    }
  }
}

void shackle::microGemmSub(double *C, const double *A, const double *B,
                           int64_t M, int64_t N, int64_t K, int64_t Ldc,
                           int64_t Lda, int64_t Ldb) {
  for (int64_t I = 0; I < M; ++I) {
    double *__restrict Ci = C + I * Ldc;
    for (int64_t P = 0; P < K; ++P) {
      double Aip = A[I * Lda + P];
      const double *__restrict Bp = B + P * Ldb;
      for (int64_t J = 0; J < N; ++J)
        Ci[J] -= Aip * Bp[J];
    }
  }
}

void shackle::microSyrkLower(double *C, const double *A, int64_t N,
                             int64_t K, int64_t Ldc, int64_t Lda) {
  for (int64_t I = 0; I < N; ++I) {
    double *__restrict Ci = C + I * Ldc;
    for (int64_t P = 0; P < K; ++P) {
      double Aip = A[I * Lda + P];
      const double *__restrict Ap = A + P; // A[J * Lda + P] walks column P.
      for (int64_t J = 0; J <= I; ++J)
        Ci[J] -= Aip * Ap[J * Lda];
    }
  }
}

void shackle::microTrsmRightLowerT(double *B, const double *L, int64_t M,
                                   int64_t N, int64_t Ldb, int64_t Ldl) {
  // Solve X * L^T = B: for each row b of B, forward-substitute
  //   x_j = (b_j - sum_{k<j} x_k * L[j][k]) / L[j][j].
  for (int64_t I = 0; I < M; ++I) {
    double *__restrict Bi = B + I * Ldb;
    for (int64_t J = 0; J < N; ++J) {
      double S = Bi[J];
      const double *__restrict Lj = L + J * Ldl;
      for (int64_t P = 0; P < J; ++P)
        S -= Bi[P] * Lj[P];
      Bi[J] = S / Lj[J];
    }
  }
}

void shackle::microCholeskyLower(double *A, int64_t N, int64_t Lda) {
  for (int64_t J = 0; J < N; ++J) {
    double *__restrict Aj = A + J * Lda;
    double D = Aj[J];
    for (int64_t P = 0; P < J; ++P)
      D -= Aj[P] * Aj[P];
    D = std::sqrt(D);
    Aj[J] = D;
    for (int64_t I = J + 1; I < N; ++I) {
      double *__restrict Ai = A + I * Lda;
      double S = Ai[J];
      for (int64_t P = 0; P < J; ++P)
        S -= Ai[P] * Aj[P];
      Ai[J] = S / D;
    }
  }
}
