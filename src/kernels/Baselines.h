//===- Baselines.h - Hand-written baseline algorithms -----------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison lines of the paper's Section 7 graphs, written by hand:
/// the naive "input codes" as plain C++ (what xlf -O3 saw), and LAPACK-style
/// hand-blocked algorithms built on the micro BLAS (standing in for "LAPACK
/// with native BLAS"). Dense matrices are row-major with leading dimension
/// N; the banded routines use LAPACK-style band storage, element (i, j)
/// at (i - j) + j * (bw + 1).
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_KERNELS_BASELINES_H
#define SHACKLE_KERNELS_BASELINES_H

#include <cstdint>

namespace shackle {

/// C += A * B, straightforward I-J-K loop (paper Figure 1(i)).
void naiveMatMul(double *C, const double *A, const double *B, int64_t N);

/// Hand-blocked C += A * B with NB x NB tiles over all three dimensions.
void blockedMatMul(double *C, const double *A, const double *B, int64_t N,
                   int64_t NB);

/// Right-looking pointwise Cholesky (paper Figure 1(ii)); writes the lower
/// triangle, strict upper is untouched.
void naiveCholeskyRight(double *A, int64_t N);

/// LAPACK-style right-looking blocked Cholesky (POTRF shape: factor panel,
/// TRSM, SYRK) with panel width NB.
void blockedCholeskyLAPACK(double *A, int64_t N, int64_t NB);

/// Pointwise Householder QR matching the IR benchmark's conventions: the
/// reflector v (with v = x + |x| e1) overwrites A at and below the diagonal,
/// and Rdiag[k] receives -|x| (the R diagonal).
void naiveQRHouseholder(double *A, double *Rdiag, int64_t N);

/// Panel-blocked Householder QR with compact-WY trailing updates (the
/// "LAPACK" line of Figure 12). Same reflector convention as
/// naiveQRHouseholder, so outputs agree to rounding.
void blockedQRWY(double *A, double *Rdiag, int64_t N, int64_t NB);

/// The ADI kernel exactly as in paper Figure 14(i).
void adiOriginal(double *B, double *X, const double *A, int64_t N);

/// The fused + interchanged form of Figure 14(ii) (what the ADI shackle
/// produces).
void adiFusedInterchanged(double *B, double *X, const double *A, int64_t N);

/// Gaussian elimination without pivoting (the GMTRY kernel's core).
void gaussNaive(double *A, int64_t N);

/// Pointwise banded Cholesky on band storage.
void bandCholeskyNaive(double *Ab, int64_t N, int64_t BW);

/// DPBTRF-style blocked banded Cholesky: panels of width NB are factored
/// through dense zero-filled scratch blocks so the updates run as BLAS-3.
void bandCholeskyBlocked(double *Ab, int64_t N, int64_t BW, int64_t NB);

} // namespace shackle

#endif // SHACKLE_KERNELS_BASELINES_H
