//===- Baselines.cpp - Hand-written baseline algorithms ----------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "kernels/Baselines.h"

#include "kernels/MicroBlas.h"

#include <algorithm>
#include <cmath>
#include <vector>

using namespace shackle;

void shackle::naiveMatMul(double *C, const double *A, const double *B,
                          int64_t N) {
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J) {
      double Acc = C[I * N + J];
      for (int64_t K = 0; K < N; ++K)
        Acc += A[I * N + K] * B[K * N + J];
      C[I * N + J] = Acc;
    }
}

void shackle::blockedMatMul(double *C, const double *A, const double *B,
                            int64_t N, int64_t NB) {
  for (int64_t I = 0; I < N; I += NB) {
    int64_t MI = std::min(NB, N - I);
    for (int64_t J = 0; J < N; J += NB) {
      int64_t MJ = std::min(NB, N - J);
      for (int64_t K = 0; K < N; K += NB) {
        int64_t MK = std::min(NB, N - K);
        microGemm(C + I * N + J, A + I * N + K, B + K * N + J, MI, MJ, MK, N,
                  N, N);
      }
    }
  }
}

void shackle::naiveCholeskyRight(double *A, int64_t N) {
  for (int64_t J = 0; J < N; ++J) {
    A[J * N + J] = std::sqrt(A[J * N + J]);
    for (int64_t I = J + 1; I < N; ++I)
      A[I * N + J] /= A[J * N + J];
    for (int64_t L = J + 1; L < N; ++L)
      for (int64_t K = J + 1; K <= L; ++K)
        A[L * N + K] -= A[L * N + J] * A[K * N + J];
  }
}

void shackle::blockedCholeskyLAPACK(double *A, int64_t N, int64_t NB) {
  for (int64_t J = 0; J < N; J += NB) {
    int64_t Nb = std::min(NB, N - J);
    microCholeskyLower(A + J * N + J, Nb, N);
    int64_t M = N - J - Nb;
    if (M <= 0)
      continue;
    microTrsmRightLowerT(A + (J + Nb) * N + J, A + J * N + J, M, Nb, N, N);
    microSyrkLower(A + (J + Nb) * N + (J + Nb), A + (J + Nb) * N + J, M, Nb,
                   N, N);
  }
}

void shackle::naiveQRHouseholder(double *A, double *Rdiag, int64_t N) {
  for (int64_t K = 0; K < N; ++K) {
    double Sig = 0;
    for (int64_t I = K; I < N; ++I)
      Sig += A[I * N + K] * A[I * N + K];
    double Alpha = std::sqrt(Sig);
    double Beta = Sig + Alpha * A[K * N + K];
    Rdiag[K] = -Alpha;
    A[K * N + K] += Alpha;
    for (int64_t J = K + 1; J < N; ++J) {
      double S = 0;
      for (int64_t I = K; I < N; ++I)
        S += A[I * N + K] * A[I * N + J];
      double Scale = S / Beta;
      for (int64_t I = K; I < N; ++I)
        A[I * N + J] -= A[I * N + K] * Scale;
    }
  }
}

void shackle::blockedQRWY(double *A, double *Rdiag, int64_t N, int64_t NB) {
  // Compact WY: within a panel the reflectors are formed and applied
  // pointwise; the trailing matrix is updated as A2 -= V * T^T * (V^T * A2),
  // where H_0 H_1 ... H_{nb-1} = I - V T V^T and tau_i = 1 / beta_i.
  std::vector<double> T, Taus, Wrk;
  for (int64_t P = 0; P < N; P += NB) {
    int64_t Nb = std::min(NB, N - P);
    T.assign(Nb * Nb, 0.0);
    Taus.assign(Nb, 0.0);

    // Factor the panel pointwise (columns P .. P+Nb-1).
    for (int64_t Kl = 0; Kl < Nb; ++Kl) {
      int64_t K = P + Kl;
      double Sig = 0;
      for (int64_t I = K; I < N; ++I)
        Sig += A[I * N + K] * A[I * N + K];
      double Alpha = std::sqrt(Sig);
      double Beta = Sig + Alpha * A[K * N + K];
      Rdiag[K] = -Alpha;
      A[K * N + K] += Alpha;
      Taus[Kl] = 1.0 / Beta;
      // Apply H_k to the remaining panel columns.
      for (int64_t J = K + 1; J < P + Nb; ++J) {
        double S = 0;
        for (int64_t I = K; I < N; ++I)
          S += A[I * N + K] * A[I * N + J];
        double Scale = S * Taus[Kl];
        for (int64_t I = K; I < N; ++I)
          A[I * N + J] -= A[I * N + K] * Scale;
      }
      // Extend T: T[0..k-1, k] = -tau_k * T_{k-1} * (V^T v_k);
      // T[k,k] = tau_k. V column j is A[P+j .. N-1, P+j] (zero above its
      // own row). The raw dot products must be staged separately: the
      // triangular mat-vec below reads all of them.
      std::vector<double> Dots(Kl);
      for (int64_t Jl = 0; Jl < Kl; ++Jl) {
        double Dot = 0;
        for (int64_t I = K; I < N; ++I) // v_k is zero above row K.
          Dot += A[I * N + (P + Jl)] * A[I * N + K];
        Dots[Jl] = Dot;
      }
      for (int64_t Il = 0; Il < Kl; ++Il) {
        double S = 0;
        for (int64_t Jl = Il; Jl < Kl; ++Jl)
          S += T[Il * Nb + Jl] * Dots[Jl];
        T[Il * Nb + Kl] = -Taus[Kl] * S;
      }
      T[Kl * Nb + Kl] = Taus[Kl];
    }

    // Trailing update: A2 (rows P..N-1, cols P+Nb..N-1) -= V T^T V^T A2.
    int64_t Nc = N - P - Nb;
    if (Nc <= 0)
      continue;
    Wrk.assign(Nb * Nc, 0.0);
    // W = V^T * A2  (Nb x Nc). V[i, j] = A[P+i, P+j] for i >= j else 0.
    for (int64_t Jl = 0; Jl < Nb; ++Jl) {
      double *__restrict Wj = Wrk.data() + Jl * Nc;
      for (int64_t I = P + Jl; I < N; ++I) {
        double V = A[I * N + (P + Jl)];
        const double *__restrict Ai = A + I * N + (P + Nb);
        for (int64_t C = 0; C < Nc; ++C)
          Wj[C] += V * Ai[C];
      }
    }
    // W2 = T^T * W (T upper triangular, so T^T lower): in place, bottom-up.
    for (int64_t Il = Nb - 1; Il >= 0; --Il) {
      double *__restrict Wi = Wrk.data() + Il * Nc;
      for (int64_t C = 0; C < Nc; ++C)
        Wi[C] *= T[Il * Nb + Il];
      for (int64_t Jl = 0; Jl < Il; ++Jl) {
        double Tji = T[Jl * Nb + Il];
        const double *__restrict Wj = Wrk.data() + Jl * Nc;
        for (int64_t C = 0; C < Nc; ++C)
          Wi[C] += Tji * Wj[C];
      }
    }
    // A2 -= V * W2.
    for (int64_t I = P; I < N; ++I) {
      double *__restrict Ai = A + I * N + (P + Nb);
      int64_t JMax = std::min<int64_t>(I - P, Nb - 1);
      for (int64_t Jl = 0; Jl <= JMax; ++Jl) {
        double V = A[I * N + (P + Jl)];
        const double *__restrict Wj = Wrk.data() + Jl * Nc;
        for (int64_t C = 0; C < Nc; ++C)
          Ai[C] -= V * Wj[C];
      }
    }
  }
}

// The ADI kernels use column-major (Fortran) storage: element (i, k) lives
// at i + k * N. That matches the paper's setting, where the input code's
// k-inner loops stride by N and the fused + interchanged code is
// unit-stride.

void shackle::adiOriginal(double *B, double *X, const double *A, int64_t N) {
  for (int64_t I = 1; I < N; ++I) {
    for (int64_t K = 0; K < N; ++K)
      X[I + K * N] -= X[(I - 1) + K * N] * A[I + K * N] / B[(I - 1) + K * N];
    for (int64_t K = 0; K < N; ++K)
      B[I + K * N] -= A[I + K * N] * A[I + K * N] / B[(I - 1) + K * N];
  }
}

void shackle::adiFusedInterchanged(double *B, double *X, const double *A,
                                   int64_t N) {
  for (int64_t K = 0; K < N; ++K) {
    for (int64_t I = 1; I < N; ++I) {
      X[I + K * N] -= X[(I - 1) + K * N] * A[I + K * N] / B[(I - 1) + K * N];
      B[I + K * N] -= A[I + K * N] * A[I + K * N] / B[(I - 1) + K * N];
    }
  }
}

void shackle::gaussNaive(double *A, int64_t N) {
  for (int64_t K = 0; K < N; ++K) {
    for (int64_t I = K + 1; I < N; ++I)
      A[I * N + K] /= A[K * N + K];
    for (int64_t I = K + 1; I < N; ++I)
      for (int64_t J = K + 1; J < N; ++J)
        A[I * N + J] -= A[I * N + K] * A[K * N + J];
  }
}

namespace {

inline int64_t bandOff(int64_t I, int64_t J, int64_t BW) {
  return (I - J) + J * (BW + 1);
}

} // namespace

void shackle::bandCholeskyNaive(double *Ab, int64_t N, int64_t BW) {
  for (int64_t J = 0; J < N; ++J) {
    double D = std::sqrt(Ab[bandOff(J, J, BW)]);
    Ab[bandOff(J, J, BW)] = D;
    int64_t Last = std::min(N - 1, J + BW);
    for (int64_t I = J + 1; I <= Last; ++I)
      Ab[bandOff(I, J, BW)] /= D;
    for (int64_t L = J + 1; L <= Last; ++L)
      for (int64_t K = J + 1; K <= L; ++K)
        Ab[bandOff(L, K, BW)] -=
            Ab[bandOff(L, J, BW)] * Ab[bandOff(K, J, BW)];
  }
}

void shackle::bandCholeskyBlocked(double *Ab, int64_t N, int64_t BW,
                                  int64_t NB) {
  // DPBTRF shape: stage the active window (panel columns plus the rows that
  // can touch them, all within the band) into a dense zero-filled scratch,
  // run the dense blocked step, and copy the in-band entries back.
  std::vector<double> S;
  for (int64_t J = 0; J < N; J += NB) {
    int64_t Nb = std::min(NB, N - J);
    int64_t M = std::min(N - J, BW + Nb); // Rows J .. J+M-1 are active.
    S.assign(M * M, 0.0);
    auto InBand = [&](int64_t I, int64_t K) {
      return K <= I && I - K <= BW;
    };
    for (int64_t I = 0; I < M; ++I)
      for (int64_t K = 0; K <= I && K < M; ++K)
        if (InBand(J + I, J + K))
          S[I * M + K] = Ab[bandOff(J + I, J + K, BW)];

    // Dense step on the window: factor Nb panel, TRSM, SYRK.
    microCholeskyLower(S.data(), Nb, M);
    if (M > Nb) {
      microTrsmRightLowerT(S.data() + Nb * M, S.data(), M - Nb, Nb, M, M);
      microSyrkLower(S.data() + Nb * M + Nb, S.data() + Nb * M, M - Nb, Nb,
                     M, M);
    }

    for (int64_t I = 0; I < M; ++I)
      for (int64_t K = 0; K <= I && K < M; ++K)
        if (InBand(J + I, J + K))
          Ab[bandOff(J + I, J + K, BW)] = S[I * M + K];
  }
}
