//===- Json.cpp - Minimal JSON values for the service protocol ----------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "service/Json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace shackle;

JsonValue JsonValue::boolean(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

JsonValue JsonValue::number(double D) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = D;
  return V;
}

JsonValue JsonValue::integer(int64_t I) {
  return number(static_cast<double>(I));
}

JsonValue JsonValue::string(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.Str = std::move(S);
  return V;
}

JsonValue JsonValue::array() {
  JsonValue V;
  V.K = Kind::Array;
  return V;
}

JsonValue JsonValue::object() {
  JsonValue V;
  V.K = Kind::Object;
  return V;
}

const JsonValue &JsonValue::get(const std::string &Key) const {
  static const JsonValue Null;
  if (K != Kind::Object)
    return Null;
  auto It = Obj.find(Key);
  return It == Obj.end() ? Null : It->second;
}

bool JsonValue::has(const std::string &Key) const {
  return K == Kind::Object && Obj.count(Key);
}

int64_t JsonValue::getInt(const std::string &Key, int64_t Default) const {
  const JsonValue &V = get(Key);
  return V.isNumber() ? V.asInt() : Default;
}

std::string JsonValue::getString(const std::string &Key,
                                 const std::string &Default) const {
  const JsonValue &V = get(Key);
  return V.isString() ? V.asString() : Default;
}

bool JsonValue::getBool(const std::string &Key, bool Default) const {
  const JsonValue &V = get(Key);
  return V.isBool() ? V.asBool() : Default;
}

void JsonValue::set(const std::string &Key, JsonValue V) {
  if (K == Kind::Object)
    Obj[Key] = std::move(V);
}

void JsonValue::push(JsonValue V) {
  if (K == Kind::Array)
    Arr.push_back(std::move(V));
}

namespace {

void escapeInto(const std::string &S, std::string &Out) {
  Out += '"';
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  Out += '"';
}

void numberInto(double D, std::string &Out) {
  // Integral values print without a fraction so int64 fields round-trip.
  if (std::floor(D) == D && std::fabs(D) < 9.2e18) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(D));
    Out += Buf;
    return;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", D);
  Out += Buf;
}

void serializeInto(const JsonValue &V, std::string &Out) {
  switch (V.kind()) {
  case JsonValue::Kind::Null:
    Out += "null";
    return;
  case JsonValue::Kind::Bool:
    Out += V.asBool() ? "true" : "false";
    return;
  case JsonValue::Kind::Number:
    numberInto(V.asNumber(), Out);
    return;
  case JsonValue::Kind::String:
    escapeInto(V.asString(), Out);
    return;
  case JsonValue::Kind::Array: {
    Out += '[';
    bool First = true;
    for (const JsonValue &E : V.asArray()) {
      if (!First)
        Out += ',';
      First = false;
      serializeInto(E, Out);
    }
    Out += ']';
    return;
  }
  case JsonValue::Kind::Object: {
    Out += '{';
    bool First = true;
    for (const auto &[Key, Val] : V.asObject()) {
      if (!First)
        Out += ',';
      First = false;
      escapeInto(Key, Out);
      Out += ':';
      serializeInto(Val, Out);
    }
    Out += '}';
    return;
  }
  }
}

struct Parser {
  const std::string &Text;
  std::size_t Pos = 0;
  std::string Err;

  bool fail(const std::string &Msg) {
    if (Err.empty())
      Err = Msg + " at offset " + std::to_string(Pos + 1);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    std::size_t N = std::string(Lit).size();
    if (Text.compare(Pos, N, Lit) != 0)
      return fail(std::string("expected '") + Lit + "'");
    Pos += N;
    return true;
  }

  bool parseString(std::string &Out) {
    if (Pos >= Text.size() || Text[Pos] != '"')
      return fail("expected string");
    ++Pos;
    while (Pos < Text.size()) {
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (C == '\\') {
        if (Pos >= Text.size())
          return fail("unterminated escape");
        char E = Text[Pos++];
        switch (E) {
        case '"':
          Out += '"';
          break;
        case '\\':
          Out += '\\';
          break;
        case '/':
          Out += '/';
          break;
        case 'n':
          Out += '\n';
          break;
        case 'r':
          Out += '\r';
          break;
        case 't':
          Out += '\t';
          break;
        case 'b':
          Out += '\b';
          break;
        case 'f':
          Out += '\f';
          break;
        default:
          return fail("unsupported escape");
        }
        continue;
      }
      Out += C;
    }
    return fail("unterminated string");
  }

  bool parseValue(JsonValue &Out, unsigned Depth) {
    if (Depth > 64)
      return fail("nesting too deep");
    skipWs();
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    char C = Text[Pos];
    if (C == 'n') {
      if (!literal("null"))
        return false;
      Out = JsonValue::null();
      return true;
    }
    if (C == 't') {
      if (!literal("true"))
        return false;
      Out = JsonValue::boolean(true);
      return true;
    }
    if (C == 'f') {
      if (!literal("false"))
        return false;
      Out = JsonValue::boolean(false);
      return true;
    }
    if (C == '"') {
      std::string S;
      if (!parseString(S))
        return false;
      Out = JsonValue::string(std::move(S));
      return true;
    }
    if (C == '[') {
      ++Pos;
      Out = JsonValue::array();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == ']') {
        ++Pos;
        return true;
      }
      while (true) {
        JsonValue E;
        if (!parseValue(E, Depth + 1))
          return false;
        Out.push(std::move(E));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated array");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == ']') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '{') {
      ++Pos;
      Out = JsonValue::object();
      skipWs();
      if (Pos < Text.size() && Text[Pos] == '}') {
        ++Pos;
        return true;
      }
      while (true) {
        skipWs();
        std::string Key;
        if (!parseString(Key))
          return false;
        skipWs();
        if (Pos >= Text.size() || Text[Pos] != ':')
          return fail("expected ':'");
        ++Pos;
        JsonValue V;
        if (!parseValue(V, Depth + 1))
          return false;
        Out.set(Key, std::move(V));
        skipWs();
        if (Pos >= Text.size())
          return fail("unterminated object");
        if (Text[Pos] == ',') {
          ++Pos;
          continue;
        }
        if (Text[Pos] == '}') {
          ++Pos;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    if (C == '-' || (C >= '0' && C <= '9')) {
      std::size_t Start = Pos;
      if (Text[Pos] == '-')
        ++Pos;
      while (Pos < Text.size() &&
             ((Text[Pos] >= '0' && Text[Pos] <= '9') || Text[Pos] == '.' ||
              Text[Pos] == 'e' || Text[Pos] == 'E' || Text[Pos] == '+' ||
              Text[Pos] == '-'))
        ++Pos;
      char *End = nullptr;
      std::string Num = Text.substr(Start, Pos - Start);
      double D = std::strtod(Num.c_str(), &End);
      if (End == Num.c_str() || *End)
        return fail("malformed number");
      Out = JsonValue::number(D);
      return true;
    }
    return fail("unexpected character");
  }
};

} // namespace

std::string JsonValue::str() const {
  std::string Out;
  serializeInto(*this, Out);
  return Out;
}

bool shackle::parseJson(const std::string &Text, JsonValue &Out,
                        std::string *Err) {
  Parser P{Text, /*Pos=*/0, /*Err=*/{}};
  if (!P.parseValue(Out, 0)) {
    if (Err)
      *Err = P.Err;
    return false;
  }
  P.skipWs();
  if (P.Pos != Text.size()) {
    if (Err)
      *Err = "trailing garbage at offset " + std::to_string(P.Pos + 1);
    return false;
  }
  return true;
}
