//===- Server.cpp - Unix-socket transport for shackle serve -------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include "support/FaultInjector.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace shackle;

namespace {

/// Writes all of \p Data, riding out partial writes and EINTR. SIGPIPE is
/// suppressed per-call so a vanished client never kills the daemon.
bool sendAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

/// Sends one structured error reply line; best-effort (the peer may be
/// gone, which is fine — the connection is closing anyway).
void sendErrorLine(int Fd, JsonValue Reply) {
  std::string Line = Reply.str();
  Line += '\n';
  sendAll(Fd, Line.data(), Line.size());
}

bool fillSockaddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

/// SplitMix64 finalizer for deterministic retry jitter.
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

} // namespace

struct ServiceServer::Impl {
  Impl(ServiceCore &Core, const AdmissionOptions &AOpts)
      : Admission(Core, AOpts) {}

  AdmissionController Admission;
  std::atomic<bool> Stop{false};
  std::atomic<uint64_t> Connections{0};
  std::atomic<unsigned> LiveConns{0};
  std::atomic<uint64_t> Autosaves{0};

  struct Conn {
    std::thread T;
    std::shared_ptr<std::atomic<bool>> Done;
  };
  std::mutex ConnsM;
  std::vector<Conn> Conns;

  /// Joins every finished connection thread (\p All joins the live ones
  /// too — only safe once the draining predicate is visible to them).
  void reapConns(bool All) {
    std::vector<std::thread> Join;
    {
      std::lock_guard<std::mutex> Lock(ConnsM);
      for (size_t I = 0; I < Conns.size();) {
        if (All || Conns[I].Done->load(std::memory_order_acquire)) {
          Join.push_back(std::move(Conns[I].T));
          Conns.erase(Conns.begin() + I);
        } else {
          ++I;
        }
      }
    }
    for (std::thread &T : Join)
      T.join();
  }
};

ServiceServer::ServiceServer(ServiceCore &Core, std::string SocketPath,
                             ServerOptions Opts)
    : Core(Core), SocketPath(std::move(SocketPath)), Opts(Opts),
      State(new Impl(Core, Opts.Admission)) {}

ServiceServer::~ServiceServer() {
  if (ListenFd >= 0)
    ::close(ListenFd);
  delete State;
}

const AdmissionController &ServiceServer::admission() const {
  return State->Admission;
}

uint64_t ServiceServer::autosaves() const { return State->Autosaves.load(); }

Status ServiceServer::start() {
  sockaddr_un Addr;
  if (!fillSockaddr(SocketPath, Addr))
    return Status::error(DiagCode::IOError,
                         "socket path empty or too long for AF_UNIX: '" +
                             SocketPath + "'");
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Status::error(DiagCode::IOError,
                         std::string("socket: ") + std::strerror(errno));
  // A stale file from a dead server would make bind fail; replace it. A
  // *live* server would still hold the name after unlink, so two daemons
  // on one path is a user error this does not try to detect.
  ::unlink(SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0)
    return Status::error(DiagCode::IOError, "bind '" + SocketPath +
                                                "': " + std::strerror(errno));
  if (::listen(ListenFd, 64) < 0)
    return Status::error(DiagCode::IOError,
                         std::string("listen: ") + std::strerror(errno));
  return Status::success();
}

void ServiceServer::stop() { State->Stop.store(true); }

uint64_t ServiceServer::serve() {
  auto Draining = [this] {
    return Core.shutdownRequested() || State->Stop.load();
  };

  // Periodic snapshot autosave: a crash then loses at most one interval of
  // cache warmth instead of the whole uptime (the shutdown-path save
  // becomes a final flush, not the only persistence point).
  std::thread Autosaver;
  if (Opts.SnapshotIntervalS > 0 && !Core.options().SnapshotPath.empty()) {
    Autosaver = std::thread([this, Draining] {
      auto Last = std::chrono::steady_clock::now();
      while (!Draining()) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        auto Now = std::chrono::steady_clock::now();
        if (Now - Last < std::chrono::seconds(Opts.SnapshotIntervalS))
          continue;
        Last = Now;
        Status S = Core.saveSnapshot();
        if (S.ok())
          State->Autosaves.fetch_add(1);
        else
          std::fprintf(stderr, "%s\n", S.diagnostic().str().c_str());
      }
    });
  }

  auto Connection = [this, Draining](int Fd, uint64_t ConnIdx,
                                     std::shared_ptr<std::atomic<bool>>
                                         Done) {
    std::string Buf;
    char Chunk[4096];
    auto LastActivity = std::chrono::steady_clock::now();
    bool Close = false;
    while (!Close && !Draining()) {
      pollfd P{Fd, POLLIN, 0};
      int R = ::poll(&P, 1, 100);
      if (R < 0 && errno != EINTR)
        break;
      if (R <= 0) {
        if (Opts.IdleTimeoutMs > 0 &&
            std::chrono::steady_clock::now() - LastActivity >
                std::chrono::milliseconds(Opts.IdleTimeoutMs)) {
          sendErrorLine(Fd, serviceErrorReply(
                                "idle-timeout",
                                "connection idle for more than " +
                                    std::to_string(Opts.IdleTimeoutMs) +
                                    "ms; closing"));
          break;
        }
        continue;
      }
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        break; // EOF or error: client is done.
      LastActivity = std::chrono::steady_clock::now();
      Buf.append(Chunk, static_cast<size_t>(N));
      size_t Start = 0, Nl;
      while ((Nl = Buf.find('\n', Start)) != std::string::npos) {
        if (Nl - Start > Opts.MaxLineBytes) {
          sendErrorLine(Fd, [this] {
            JsonValue R = serviceErrorReply(
                "line-too-long",
                "request line exceeds " +
                    std::to_string(Opts.MaxLineBytes) +
                    " bytes; closing connection");
            R.set("max_line_bytes",
                  JsonValue::integer(
                      static_cast<int64_t>(Opts.MaxLineBytes)));
            return R;
          }());
          Close = true;
          break;
        }
        if (injectConnKill(ConnIdx)) {
          // Service chaos: the connection dies mid-request, after the
          // request arrived but before any reply. The client sees a
          // clean close; the daemon must stay healthy.
          Close = true;
          break;
        }
        std::string Reply = State->Admission.process(
            Buf.substr(Start, Nl - Start));
        Reply += '\n';
        if (!sendAll(Fd, Reply.data(), Reply.size())) {
          Start = Buf.size();
          break;
        }
        Start = Nl + 1;
      }
      if (Close)
        break;
      Buf.erase(0, Start);
      // A buffered partial line may never see its newline (a hostile or
      // broken client streaming bytes forever): cap it.
      if (Buf.size() > Opts.MaxLineBytes) {
        sendErrorLine(Fd, [this] {
          JsonValue R = serviceErrorReply(
              "line-too-long",
              "request line exceeds " + std::to_string(Opts.MaxLineBytes) +
                  " bytes without a newline; closing connection");
          R.set("max_line_bytes",
                JsonValue::integer(static_cast<int64_t>(Opts.MaxLineBytes)));
          return R;
        }());
        break;
      }
    }
    ::close(Fd);
    State->LiveConns.fetch_sub(1);
    Done->store(true, std::memory_order_release);
  };

  while (!Draining()) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, 100);
    if (R < 0 && errno != EINTR)
      break;
    State->reapConns(false);
    if (R <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    if (State->LiveConns.load() >= Opts.MaxConnections) {
      // Connection cap: answer with the same structured shed reply the
      // admission layer uses, then close — no thread is spent on it.
      JsonValue Reply = serviceErrorReply(
          "overloaded", "connection limit (" +
                            std::to_string(Opts.MaxConnections) +
                            ") reached");
      Reply.set("retry_after_ms",
                JsonValue::integer(static_cast<int64_t>(
                    State->Admission.retryAfterMs())));
      sendErrorLine(Fd, std::move(Reply));
      ::close(Fd);
      continue;
    }
    uint64_t ConnIdx = State->Connections.fetch_add(1);
    State->LiveConns.fetch_add(1);
    auto Done = std::make_shared<std::atomic<bool>>(false);
    std::lock_guard<std::mutex> Lock(State->ConnsM);
    State->Conns.push_back(
        {std::thread(Connection, Fd, ConnIdx, Done), Done});
  }

  // Graceful drain: no new connections (the loop above has exited), no new
  // admissions; everything queued or in flight finishes and its reply is
  // flushed by the still-running connection threads, which then observe
  // the draining predicate and exit within one poll interval.
  State->Admission.drain();
  State->reapConns(true);
  if (Autosaver.joinable())
    Autosaver.join();
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(SocketPath.c_str());
  return State->Connections.load();
}

namespace {

/// One connect-send-receive round against the daemon. Factored out so the
/// retrying wrapper below can re-send on `overloaded`.
bool requestOnce(const std::string &SocketPath,
                 const std::string &RequestLine, std::string &ReplyLine,
                 std::string *Err, unsigned TimeoutMs) {
  sockaddr_un Addr;
  if (!fillSockaddr(SocketPath, Addr)) {
    if (Err)
      *Err = "socket path empty or too long for AF_UNIX";
    return false;
  }

  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  int Fd = -1;
  for (;;) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      if (Err)
        *Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      break;
    int E = errno;
    ::close(Fd);
    Fd = -1;
    // The server may still be coming up (no file yet, or bound but not
    // listening); retry those until the deadline.
    if ((E != ENOENT && E != ECONNREFUSED) ||
        std::chrono::steady_clock::now() >= Deadline) {
      if (Err)
        *Err = "connect '" + SocketPath + "': " + std::strerror(E);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  std::string Req = RequestLine;
  if (Req.empty() || Req.back() != '\n')
    Req += '\n';

  // Service chaos: a drip-feeding client sends its request a few bytes at
  // a time with pauses, exercising the server's split-read reassembly and
  // idle accounting.
  uint64_t DripBytes = 0, DripMs = 0;
  bool Sent;
  if (injectClientDrip(DripBytes, DripMs)) {
    Sent = true;
    for (size_t Off = 0; Off < Req.size() && Sent;
         Off += static_cast<size_t>(DripBytes)) {
      size_t Len = std::min(static_cast<size_t>(DripBytes),
                            Req.size() - Off);
      Sent = sendAll(Fd, Req.data() + Off, Len);
      if (DripMs > 0 && Off + Len < Req.size())
        std::this_thread::sleep_for(std::chrono::milliseconds(DripMs));
    }
  } else {
    Sent = sendAll(Fd, Req.data(), Req.size());
  }
  if (!Sent) {
    if (Err)
      *Err = std::string("send: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }

  ReplyLine.clear();
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = std::string("recv: ") + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    if (N == 0) {
      if (Err)
        *Err = "connection closed before a reply line arrived";
      ::close(Fd);
      return false;
    }
    ReplyLine.append(Chunk, static_cast<size_t>(N));
    size_t Nl = ReplyLine.find('\n');
    if (Nl != std::string::npos) {
      ReplyLine.erase(Nl);
      break;
    }
  }
  ::close(Fd);
  return true;
}

} // namespace

bool shackle::serviceRequest(const std::string &SocketPath,
                             const std::string &RequestLine,
                             std::string &ReplyLine, std::string *Err,
                             unsigned TimeoutMs) {
  ServiceRequestOptions Opts;
  Opts.TimeoutMs = TimeoutMs;
  return serviceRequest(SocketPath, RequestLine, ReplyLine, Err, Opts);
}

bool shackle::serviceRequest(const std::string &SocketPath,
                             const std::string &RequestLine,
                             std::string &ReplyLine, std::string *Err,
                             const ServiceRequestOptions &Opts) {
  unsigned Retries = 0;
  for (unsigned Attempt = 0;; ++Attempt) {
    if (!requestOnce(SocketPath, RequestLine, ReplyLine, Err,
                     Opts.TimeoutMs)) {
      if (Opts.RetriesOut)
        *Opts.RetriesOut = Retries;
      return false;
    }
    if (Attempt >= Opts.MaxRetries)
      break;
    JsonValue Reply;
    std::string ParseErr;
    if (!parseJson(ReplyLine, Reply, &ParseErr) ||
        Reply.getString("code") != "overloaded")
      break; // Anything but a shed reply is final.
    // Exponential backoff with deterministic jitter, honoring the
    // server's retry_after_ms as a floor: the server knows its backlog
    // better than any client-side schedule.
    uint64_t Hint = static_cast<uint64_t>(
        std::max<int64_t>(0, Reply.getInt("retry_after_ms", 0)));
    uint64_t Backoff = Opts.BackoffBaseMs << std::min(Attempt, 20u);
    Backoff = std::min(Backoff, Opts.BackoffMaxMs);
    uint64_t Jittered =
        Backoff / 2 + mix64(Opts.Seed ^ (Attempt + 1)) % (Backoff / 2 + 1);
    uint64_t DelayMs = std::max(Hint, Jittered);
    std::this_thread::sleep_for(std::chrono::milliseconds(DelayMs));
    ++Retries;
  }
  if (Opts.RetriesOut)
    *Opts.RetriesOut = Retries;
  return true;
}
