//===- Server.cpp - Unix-socket transport for shackle serve -------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "service/Server.h"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace shackle;

namespace {

/// Writes all of \p Data, riding out partial writes and EINTR. SIGPIPE is
/// suppressed per-call so a vanished client never kills the daemon.
bool sendAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return false;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
  return true;
}

bool fillSockaddr(const std::string &Path, sockaddr_un &Addr) {
  if (Path.empty() || Path.size() >= sizeof(Addr.sun_path))
    return false;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  return true;
}

} // namespace

struct ServiceServer::Impl {
  std::atomic<bool> Stop{false};
  std::mutex ThreadsM;
  std::vector<std::thread> Threads;
  std::atomic<uint64_t> Connections{0};
};

ServiceServer::ServiceServer(ServiceCore &Core, std::string SocketPath)
    : Core(Core), SocketPath(std::move(SocketPath)), State(new Impl) {}

ServiceServer::~ServiceServer() {
  if (ListenFd >= 0)
    ::close(ListenFd);
  delete State;
}

Status ServiceServer::start() {
  sockaddr_un Addr;
  if (!fillSockaddr(SocketPath, Addr))
    return Status::error(DiagCode::IOError,
                         "socket path empty or too long for AF_UNIX: '" +
                             SocketPath + "'");
  ListenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (ListenFd < 0)
    return Status::error(DiagCode::IOError,
                         std::string("socket: ") + std::strerror(errno));
  // A stale file from a dead server would make bind fail; replace it. A
  // *live* server would still hold the name after unlink, so two daemons
  // on one path is a user error this does not try to detect.
  ::unlink(SocketPath.c_str());
  if (::bind(ListenFd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) <
      0)
    return Status::error(DiagCode::IOError, "bind '" + SocketPath +
                                                "': " + std::strerror(errno));
  if (::listen(ListenFd, 64) < 0)
    return Status::error(DiagCode::IOError,
                         std::string("listen: ") + std::strerror(errno));
  return Status::success();
}

void ServiceServer::stop() { State->Stop.store(true); }

uint64_t ServiceServer::serve() {
  auto Draining = [&] {
    return Core.shutdownRequested() || State->Stop.load();
  };

  auto Connection = [this, Draining](int Fd) {
    std::string Buf;
    char Chunk[4096];
    while (!Draining()) {
      pollfd P{Fd, POLLIN, 0};
      int R = ::poll(&P, 1, 100);
      if (R < 0 && errno != EINTR)
        break;
      if (R <= 0)
        continue;
      ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
      if (N <= 0)
        break; // EOF or error: client is done.
      Buf.append(Chunk, static_cast<size_t>(N));
      size_t Start = 0, Nl;
      while ((Nl = Buf.find('\n', Start)) != std::string::npos) {
        std::string Reply = Core.handleLine(Buf.substr(Start, Nl - Start));
        Reply += '\n';
        if (!sendAll(Fd, Reply.data(), Reply.size())) {
          Start = Buf.size();
          break;
        }
        Start = Nl + 1;
      }
      Buf.erase(0, Start);
    }
    ::close(Fd);
  };

  while (!Draining()) {
    pollfd P{ListenFd, POLLIN, 0};
    int R = ::poll(&P, 1, 100);
    if (R < 0 && errno != EINTR)
      break;
    if (R <= 0)
      continue;
    int Fd = ::accept(ListenFd, nullptr, nullptr);
    if (Fd < 0)
      continue;
    State->Connections.fetch_add(1);
    std::lock_guard<std::mutex> Lock(State->ThreadsM);
    State->Threads.emplace_back(Connection, Fd);
  }

  // Every connection thread polls the same draining predicate, so this
  // join terminates within one poll interval of shutdown.
  std::vector<std::thread> Threads;
  {
    std::lock_guard<std::mutex> Lock(State->ThreadsM);
    Threads.swap(State->Threads);
  }
  for (std::thread &T : Threads)
    T.join();
  ::close(ListenFd);
  ListenFd = -1;
  ::unlink(SocketPath.c_str());
  return State->Connections.load();
}

bool shackle::serviceRequest(const std::string &SocketPath,
                             const std::string &RequestLine,
                             std::string &ReplyLine, std::string *Err,
                             unsigned TimeoutMs) {
  sockaddr_un Addr;
  if (!fillSockaddr(SocketPath, Addr)) {
    if (Err)
      *Err = "socket path empty or too long for AF_UNIX";
    return false;
  }

  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  int Fd = -1;
  for (;;) {
    Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (Fd < 0) {
      if (Err)
        *Err = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      break;
    int E = errno;
    ::close(Fd);
    Fd = -1;
    // The server may still be coming up (no file yet, or bound but not
    // listening); retry those until the deadline.
    if ((E != ENOENT && E != ECONNREFUSED) ||
        std::chrono::steady_clock::now() >= Deadline) {
      if (Err)
        *Err = "connect '" + SocketPath + "': " + std::strerror(E);
      return false;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  std::string Req = RequestLine;
  if (Req.empty() || Req.back() != '\n')
    Req += '\n';
  if (!sendAll(Fd, Req.data(), Req.size())) {
    if (Err)
      *Err = std::string("send: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }

  ReplyLine.clear();
  char Chunk[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Chunk, sizeof(Chunk), 0);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      if (Err)
        *Err = std::string("recv: ") + std::strerror(errno);
      ::close(Fd);
      return false;
    }
    if (N == 0) {
      if (Err)
        *Err = "connection closed before a reply line arrived";
      ::close(Fd);
      return false;
    }
    ReplyLine.append(Chunk, static_cast<size_t>(N));
    size_t Nl = ReplyLine.find('\n');
    if (Nl != std::string::npos) {
      ReplyLine.erase(Nl);
      break;
    }
  }
  ::close(Fd);
  return true;
}
