//===- VerdictCache.cpp - Cached per-factor legality verdicts -----------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "service/VerdictCache.h"

#include "service/PlanKey.h"

using namespace shackle;

VerdictReuse VerdictCache::lookup(const Program &P,
                                  const ShackleChain &Chain) const {
  VerdictReuse Reuse;
  unsigned N = static_cast<unsigned>(Chain.Factors.size());
  std::lock_guard<std::mutex> Lock(M);
  // Full-chain Illegal dominates: no query can change a proven violation.
  auto Full = Verdicts.find(fingerprintChainPrefix(P, Chain, N));
  if (Full != Verdicts.end() && Full->second == LegalityVerdict::Illegal) {
    Reuse.KnownIllegal = true;
    return Reuse;
  }
  // Longest cached-Legal prefix, longest first so one hit suffices.
  for (unsigned K = N; K >= 1; --K) {
    auto It = Verdicts.find(fingerprintChainPrefix(P, Chain, K));
    if (It != Verdicts.end() && It->second == LegalityVerdict::Legal) {
      Reuse.SkipFactors = K;
      Reuse.SkipBlockDims = Chain.numBlockDimsPrefix(K);
      return Reuse;
    }
  }
  return Reuse;
}

void VerdictCache::record(const Program &P, const ShackleChain &Chain,
                          LegalityVerdict Verdict) {
  unsigned N = static_cast<unsigned>(Chain.Factors.size());
  std::lock_guard<std::mutex> Lock(M);
  if (Verdict == LegalityVerdict::Legal) {
    for (unsigned K = 1; K <= N; ++K)
      Verdicts[fingerprintChainPrefix(P, Chain, K)] = LegalityVerdict::Legal;
  } else if (Verdict == LegalityVerdict::Illegal) {
    Verdicts[fingerprintChainPrefix(P, Chain, N)] = LegalityVerdict::Illegal;
  }
}

void VerdictCache::creditSaved(uint64_t N) {
  std::lock_guard<std::mutex> Lock(M);
  Saved += N;
}

uint64_t VerdictCache::solverCallsSaved() const {
  std::lock_guard<std::mutex> Lock(M);
  return Saved;
}

std::size_t VerdictCache::size() const {
  std::lock_guard<std::mutex> Lock(M);
  return Verdicts.size();
}
