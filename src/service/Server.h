//===- Server.h - Unix-socket transport for shackle serve -------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon transport: a stream Unix-domain socket speaking newline-
/// delimited JSON (one request per line, one reply line per request;
/// docs/SERVE.md). Each accepted connection gets its own I/O thread that
/// feeds complete lines to the shared AdmissionController — connection I/O
/// is decoupled from request execution, which happens on the controller's
/// bounded worker pool (Admission.h), so a flood of clients saturates into
/// structured `overloaded` replies instead of unbounded threads and memory.
///
/// Connection hygiene (DESIGN.md §14): request lines are capped at
/// MaxLineBytes (a newline-free stream gets one `line-too-long` reply and
/// the connection closes), idle connections time out after IdleTimeoutMs,
/// and at most MaxConnections clients are served at once (excess
/// connections get one `overloaded` reply and close). Finished connection
/// threads are reaped continuously, so a long-lived daemon's thread count
/// stays bounded by the connection cap.
///
/// Shutdown is a graceful drain: once the core accepts a shutdown request
/// or stop() is called (the CLI's SIGTERM/SIGINT hook), the server stops
/// accepting, drains the admission queue (in-flight requests finish or
/// deadline-expire, their replies are flushed), joins every thread, and
/// returns — after which the CLI writes the final snapshot and exits 0.
/// With SnapshotIntervalS > 0 a background thread also autosaves the plan
/// cache periodically (atomic tmp+rename), so a crash loses at most one
/// interval of cache warmth.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SERVICE_SERVER_H
#define SHACKLE_SERVICE_SERVER_H

#include "service/Admission.h"
#include "service/Service.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string>

namespace shackle {

struct ServerOptions {
  AdmissionOptions Admission;
  /// Longest accepted request line; beyond it the connection gets a
  /// structured `line-too-long` reply and closes.
  uint64_t MaxLineBytes = 1ull << 20;
  /// Connections with no traffic for this long get a structured
  /// `idle-timeout` reply and close; 0 disables the timeout.
  uint64_t IdleTimeoutMs = 0;
  /// Concurrent-connection cap; excess connections are told `overloaded`
  /// (with retry_after_ms) and closed without a serving thread.
  unsigned MaxConnections = 256;
  /// Autosave the plan-cache snapshot every this many seconds (0 = only
  /// the final save at shutdown). No-op when the core has no snapshot
  /// path.
  uint64_t SnapshotIntervalS = 0;
};

class ServiceServer {
public:
  /// \p Core must outlive the server. \p SocketPath is created on start()
  /// (a stale file from a dead server is replaced) and unlinked when
  /// serve() returns.
  ServiceServer(ServiceCore &Core, std::string SocketPath,
                ServerOptions Opts = ServerOptions());
  ~ServiceServer();

  ServiceServer(const ServiceServer &) = delete;
  ServiceServer &operator=(const ServiceServer &) = delete;

  /// Binds and listens. Fails (IOError) on an unbindable path.
  Status start();

  /// Accepts and serves connections until the core accepts a shutdown
  /// request (or stop() is called), then drains the admission queue, joins
  /// every connection thread, and removes the socket file. Returns the
  /// number of connections served.
  uint64_t serve();

  /// Asks serve() to wind down from another thread (tests, signal hooks).
  /// Only performs an atomic store — safe to call from a signal handler.
  void stop();

  const AdmissionController &admission() const;
  /// Snapshot autosaves performed so far (successful ones).
  uint64_t autosaves() const;

private:
  ServiceCore &Core;
  std::string SocketPath;
  ServerOptions Opts;
  int ListenFd = -1;
  // Defined in the .cpp to keep <thread>/<atomic> plumbing private.
  struct Impl;
  Impl *State;
};

/// Options for serviceRequest. Retries fire only on `overloaded` replies:
/// the client honors the server's retry_after_ms hint as a floor under an
/// exponential-backoff-with-jitter schedule (deterministic per Seed), up to
/// MaxRetries re-sends. Transport errors and every other reply (including
/// `draining`, which will not recover on this instance) are returned as-is.
struct ServiceRequestOptions {
  unsigned TimeoutMs = 10000;  ///< Connect/serve deadline per attempt.
  unsigned MaxRetries = 0;     ///< Re-sends after an `overloaded` reply.
  uint64_t BackoffBaseMs = 10; ///< Doubles per attempt before jitter.
  uint64_t BackoffMaxMs = 2000;
  uint64_t Seed = 0;           ///< Jitter seed (deterministic tests).
  unsigned *RetriesOut = nullptr; ///< Optional: retries actually spent.
};

/// One-shot client: connects to \p SocketPath (retrying until
/// \p TimeoutMs while the server comes up), sends \p RequestLine (a newline
/// is appended if missing), and reads one reply line into \p ReplyLine.
/// Returns false with \p Err set on connect/IO failure.
bool serviceRequest(const std::string &SocketPath,
                    const std::string &RequestLine, std::string &ReplyLine,
                    std::string *Err = nullptr, unsigned TimeoutMs = 10000);

/// Retry-aware form (see ServiceRequestOptions).
bool serviceRequest(const std::string &SocketPath,
                    const std::string &RequestLine, std::string &ReplyLine,
                    std::string *Err, const ServiceRequestOptions &Opts);

} // namespace shackle

#endif // SHACKLE_SERVICE_SERVER_H
