//===- Server.h - Unix-socket transport for shackle serve -------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The daemon transport: a stream Unix-domain socket speaking newline-
/// delimited JSON (one request per line, one reply line per request;
/// docs/SERVE.md). Each accepted connection gets its own thread that feeds
/// lines to the shared ServiceCore — which is where all concurrency control
/// (single-flight plan cache, verdict cache) lives — so N clients pipeline
/// freely. The accept loop polls with a short timeout and exits once the
/// core has accepted a shutdown request; connection threads watch the same
/// flag, so serve() always joins everything before returning.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SERVICE_SERVER_H
#define SHACKLE_SERVICE_SERVER_H

#include "service/Service.h"
#include "support/Diagnostics.h"

#include <string>

namespace shackle {

class ServiceServer {
public:
  /// \p Core must outlive the server. \p SocketPath is created on start()
  /// (a stale file from a dead server is replaced) and unlinked when
  /// serve() returns.
  ServiceServer(ServiceCore &Core, std::string SocketPath);
  ~ServiceServer();

  ServiceServer(const ServiceServer &) = delete;
  ServiceServer &operator=(const ServiceServer &) = delete;

  /// Binds and listens. Fails (IOError) on an unbindable path.
  Status start();

  /// Accepts and serves connections until the core accepts a shutdown
  /// request (or stop() is called), then joins every connection thread and
  /// removes the socket file. Returns the number of connections served.
  uint64_t serve();

  /// Asks serve() to wind down from another thread (tests, signal hooks).
  void stop();

private:
  ServiceCore &Core;
  std::string SocketPath;
  int ListenFd = -1;
  // Defined in the .cpp to keep <thread>/<atomic> plumbing private.
  struct Impl;
  Impl *State;
};

/// One-shot client: connects to \p SocketPath (retrying until
/// \p TimeoutMs while the server comes up), sends \p RequestLine (a newline
/// is appended if missing), and reads one reply line into \p ReplyLine.
/// Returns false with \p Err set on connect/IO failure.
bool serviceRequest(const std::string &SocketPath,
                    const std::string &RequestLine, std::string &ReplyLine,
                    std::string *Err = nullptr, unsigned TimeoutMs = 10000);

} // namespace shackle

#endif // SHACKLE_SERVICE_SERVER_H
