//===- Service.h - The shackle compile/run service core ---------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The transport-independent heart of `shackle serve`: parse one JSON
/// request, resolve it to (program, chain, params), serve the plan through
/// the single-flight PlanCache (with factor-verdict reuse on cold
/// compiles), optionally execute it, and build the JSON reply. The Unix-
/// socket server (Server.h) and the in-process tests both drive this class;
/// it is safe to call handleLine concurrently from many threads.
///
/// Protocol (newline-delimited JSON; full schema in docs/SERVE.md):
///
///   {"op":"compile", "benchmark":"matmul", "config":"c", "block":64,
///    "params":[96], "task_level":0|"auto", "threads":4}
///   {"op":"run", ...same...}          — compile (or hit) then execute
///   {"op":"stats"}                     — counters + latency percentiles
///   {"op":"shutdown"}                  — stop accepting, snapshot, exit
///
/// DSL programs are accepted in place of a benchmark name:
///   {"op":"run", "dsl":"...", "array":"A", "block":[32,32],
///    "order":"colblocks", "reversed":false, ...}
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SERVICE_SERVICE_H
#define SHACKLE_SERVICE_SERVICE_H

#include "service/Json.h"
#include "service/PlanCache.h"
#include "service/VerdictCache.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace shackle {

struct ServiceOptions {
  uint64_t CacheBytes = 256ull << 20;
  /// Snapshot file loaded by loadSnapshot() and written by saveSnapshot().
  /// Empty disables persistence.
  std::string SnapshotPath;
  /// Thread count for `run` requests that do not say otherwise.
  unsigned DefaultThreads = 1;
  SolverBudget Budget;
  /// When true (the default), the machine-shape key component is detected
  /// from the host. Tests pin Shape and set this false so keys are
  /// reproducible.
  bool DetectShape = true;
  MachineShape Shape;
};

/// A point-in-time view of every counter the service exposes (the CLI
/// `service:` line, the `stats` op, and the throughput benchmark's JSON).
struct ServiceStats {
  PlanCacheStats Cache;
  uint64_t VerdictEntries = 0;
  uint64_t SolverCallsSaved = 0;
  uint64_t Requests = 0; ///< compile/run requests (the cached ops).
  uint64_t Errors = 0;   ///< Requests answered with ok=false.
  double P50Ms = 0;      ///< Median compile/run latency.
  double P95Ms = 0;
};

class ServiceCore {
public:
  explicit ServiceCore(ServiceOptions Opts = ServiceOptions());

  /// Handles one request line; always returns a reply document (never
  /// throws, never returns empty). Thread-safe.
  std::string handleLine(const std::string &Line);

  /// Structured form of handleLine for in-process callers.
  JsonValue handle(const JsonValue &Req);

  /// True once a shutdown request has been accepted.
  bool shutdownRequested() const {
    return Shutdown.load(std::memory_order_acquire);
  }

  ServiceStats stats() const;
  /// The one-line `service:` summary the CLI prints on exit.
  std::string statsLine() const;

  /// Loads Opts.SnapshotPath into the cache. A malformed file comes back as
  /// an error status (message already `[service-cache]`-prefixed) with the
  /// cache left empty but fully usable — callers warn and continue cold.
  Status loadSnapshot();
  Status saveSnapshot() const;

  PlanCache &cache() { return Cache; }
  VerdictCache &verdicts() { return Verdicts; }
  const ServiceOptions &options() const { return Opts; }

private:
  /// A request resolved to compilable form. Prog owns the program (plans
  /// point into it, so cache entries keep it alive).
  struct ResolvedRequest {
    std::shared_ptr<const Program> Prog;
    ShackleChain Chain;
    std::vector<int64_t> Params;
    unsigned TaskLevel = 0; ///< PlanKeyAutoTaskLevel for "auto".
    unsigned Threads = 1;
  };

  /// Fills \p R from \p Req; on failure returns false with \p ErrReply set.
  bool resolve(const JsonValue &Req, ResolvedRequest &R, JsonValue &ErrReply);

  JsonValue handleCompileOrRun(const JsonValue &Req, bool Execute);
  JsonValue handleStats();

  void recordLatency(double Ms);
  void latencyPercentiles(double &P50, double &P95) const;

  ServiceOptions Opts;
  PlanCache Cache;
  VerdictCache Verdicts;
  std::atomic<bool> Shutdown{false};
  std::atomic<uint64_t> Requests{0};
  std::atomic<uint64_t> Errors{0};

  mutable std::mutex LatM;
  std::vector<double> LatMs; ///< Bounded ring of recent request latencies.
  std::size_t LatNext = 0;
  static constexpr std::size_t LatCap = 4096;
};

} // namespace shackle

#endif // SHACKLE_SERVICE_SERVICE_H
