//===- VerdictCache.h - Cached per-factor legality verdicts -----*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Legality verdicts for shackle chains decompose over factor *prefixes*:
/// for any dependence, the dim-J violation system depends only on the
/// factors covering block dims 0..J (block-link constraints are
/// functionally determined), and a first-differing-coordinate violation
/// inside a prefix is verbatim a violation of every chain extending it. So
///
///   * a chain proven Legal makes every prefix of it proven Legal, and
///   * a new chain sharing a cached-Legal prefix can skip all violation
///     queries for the prefix's block dims (checkLegalityFrom), and
///   * a chain whose own fingerprint is cached Illegal needs no solver at
///     all.
///
/// This cache stores verdicts keyed by (program, factor-prefix fingerprint)
/// and counts the Omega queries those reuses avoided — the service's
/// solver-calls-saved stat.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SERVICE_VERDICTCACHE_H
#define SHACKLE_SERVICE_VERDICTCACHE_H

#include "core/DataShackle.h"
#include "core/Legality.h"
#include "ir/Program.h"

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace shackle {

/// What a lookup found for a chain about to be checked.
struct VerdictReuse {
  /// Block dims covered by the longest cached-Legal factor prefix; pass to
  /// checkLegalityFrom / ParallelPlanOptions::LegalitySkipBlockDims.
  unsigned SkipBlockDims = 0;
  /// Factors in that prefix (for reporting).
  unsigned SkipFactors = 0;
  /// The full chain itself is cached Illegal: skip the solver entirely.
  bool KnownIllegal = false;
};

/// Thread-safe verdict store. Chains are fingerprinted structurally
/// (fingerprintChainPrefix), so equal shackle specs share verdicts across
/// requests regardless of how they were constructed.
class VerdictCache {
public:
  /// Finds the best reuse for \p Chain before a legality check.
  VerdictReuse lookup(const Program &P, const ShackleChain &Chain) const;

  /// Records the outcome of a completed check. Legal chains record every
  /// prefix as Legal (prefixes of legal chains are legal); Illegal chains
  /// record only the full chain's fingerprint as Illegal (prefixes may
  /// still be fine). Unknown verdicts record nothing — they carry no
  /// reusable proof.
  void record(const Program &P, const ShackleChain &Chain,
              LegalityVerdict Verdict);

  /// Adds \p N avoided solver queries (from LegalityCheckStats or a
  /// KnownIllegal short-circuit) to the running total.
  void creditSaved(uint64_t N);
  uint64_t solverCallsSaved() const;

  std::size_t size() const;

private:
  mutable std::mutex M;
  /// Prefix fingerprint -> proven verdict (Legal or Illegal only).
  std::unordered_map<uint64_t, LegalityVerdict> Verdicts;
  uint64_t Saved = 0;
};

} // namespace shackle

#endif // SHACKLE_SERVICE_VERDICTCACHE_H
