//===- PlanSerdes.h - Binary plan (de)serialization -------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Versioned binary serialization of compiled plans for the persistent plan
/// cache: the simplified LoopNest (statement pointers stored as statement
/// ids), the block partition (AST pointers stored as pre-order node
/// indices), and the block-dependence DAG. Deserialization rebinds against
/// a caller-supplied Program whose canonical hash matched the cache key, so
/// structural identity is guaranteed before pointers are re-established;
/// every read is bounds-checked and every index validated, so a truncated
/// or corrupted blob fails with a message instead of crashing.
///
/// The snapshot file format (magic, version, entry list, trailing whole-file
/// checksum from src/support/Checksum.h) lives here too; a file that fails
/// any of those checks loads as an empty entry list with a diagnostic — the
/// cache then simply starts cold (docs/SERVE.md).
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SERVICE_PLANSERDES_H
#define SHACKLE_SERVICE_PLANSERDES_H

#include "parallel/ParallelExecutor.h"
#include "service/PlanKey.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace shackle {

/// Serializes a built plan to a self-contained binary blob. Only
/// blocked-tier plans round-trip usefully; callers persist plans whose
/// partition succeeded (the service only caches those to disk).
std::string serializePlan(const ParallelPlan &Plan);

/// Rebuilds plan parts from \p Blob against \p P (which must be the program
/// the plan was compiled from — the cache key's DslHash guarantees this).
/// Returns false with \p Err set on any structural problem; \p Out is then
/// unspecified but safe to destroy.
bool deserializePlan(const std::string &Blob, const Program &P,
                     ParallelPlanParts &Out, std::string *Err);

/// One persisted cache entry: its key and the serialized plan.
struct SnapshotEntry {
  PlanKey Key;
  std::string Blob;
};

/// Writes entries to \p Path (atomically via a temp file + rename), with a
/// trailing whole-file checksum.
Status saveSnapshotFile(const std::string &Path,
                        const std::vector<SnapshotEntry> &Entries);

/// Reads a snapshot. A missing file yields success with no entries (a cold
/// cache is not an error); a malformed, truncated, or checksum-mismatched
/// file yields an IOError status whose message carries the `[service-cache]`
/// reason, and \p Out is left empty — callers warn and continue cold.
Status loadSnapshotFile(const std::string &Path,
                        std::vector<SnapshotEntry> &Out);

} // namespace shackle

#endif // SHACKLE_SERVICE_PLANSERDES_H
