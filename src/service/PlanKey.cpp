//===- PlanKey.cpp - Canonical plan-cache fingerprints ------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "service/PlanKey.h"

#include "parallel/Affinity.h"
#include "support/Checksum.h"

#include <cstdio>
#include <thread>

using namespace shackle;

namespace {

void hashString(Checksum &C, const std::string &S) {
  C.u64(S.size());
  // Pack 8 bytes per word; the tail word is zero-padded (the length word
  // keeps "abc" and "abc\0" distinct).
  uint64_t W = 0;
  unsigned N = 0;
  for (char Ch : S) {
    W |= static_cast<uint64_t>(static_cast<unsigned char>(Ch)) << (8 * N);
    if (++N == 8) {
      C.u64(W);
      W = 0;
      N = 0;
    }
  }
  if (N)
    C.u64(W);
}

void hashAffine(Checksum &C, const AffineExpr &E) {
  C.u64(E.getNumVars());
  for (unsigned V = 0; V < E.getNumVars(); ++V)
    C.u64(static_cast<uint64_t>(E.getCoeff(V)));
  C.u64(static_cast<uint64_t>(E.getConstant()));
}

} // namespace

uint64_t MachineShape::hash() const {
  Checksum C;
  C.u64(Threads).u64(Domains);
  return C.value();
}

std::string MachineShape::str() const {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%ut/%ud", Threads, Domains);
  return Buf;
}

MachineShape shackle::detectMachineShape() {
  MachineShape S;
  unsigned HW = std::thread::hardware_concurrency();
  S.Threads = HW ? HW : 1;
  // detectDomainSize returns workers-per-domain for a given worker count;
  // the domain count is what the shape needs.
  unsigned PerDomain = detectDomainSize(S.Threads);
  S.Domains = PerDomain ? (S.Threads + PerDomain - 1) / PerDomain : 1;
  return S;
}

uint64_t shackle::canonicalProgramHash(const Program &P) {
  Checksum C;
  hashString(C, P.str());
  return C.value();
}

uint64_t shackle::fingerprintChainPrefix(const Program &P,
                                         const ShackleChain &Chain,
                                         unsigned NumFactors) {
  unsigned N = static_cast<unsigned>(Chain.Factors.size());
  if (NumFactors == 0 || NumFactors > N)
    NumFactors = N;
  Checksum C;
  C.u64(canonicalProgramHash(P));
  C.u64(NumFactors);
  for (unsigned F = 0; F < NumFactors; ++F) {
    const DataShackle &S = Chain.Factors[F];
    C.u64(S.Blocking.ArrayId);
    C.u64(S.Blocking.Planes.size());
    for (const CuttingPlaneSet &Pl : S.Blocking.Planes) {
      C.u64(Pl.Normal.size());
      for (int64_t NC : Pl.Normal)
        C.u64(static_cast<uint64_t>(NC));
      C.u64(static_cast<uint64_t>(Pl.BlockSize));
      C.u64(Pl.Reversed ? 1 : 0);
    }
    C.u64(S.ShackledRefs.size());
    for (const ArrayRef &R : S.ShackledRefs) {
      C.u64(R.ArrayId);
      C.u64(R.Indices.size());
      for (const AffineExpr &E : R.Indices)
        hashAffine(C, E);
    }
  }
  return C.value();
}

uint64_t PlanKey::digest() const {
  Checksum C;
  C.u64(DslHash).u64(SpecHash).u64(ParamsHash).u64(TaskLevel).u64(MachineHash);
  return C.value();
}

std::string PlanKey::str() const {
  char Buf[128];
  if (TaskLevel == PlanKeyAutoTaskLevel)
    std::snprintf(Buf, sizeof(Buf), "%016llx (dsl=%08llx spec=%08llx lvl=auto)",
                  static_cast<unsigned long long>(digest()),
                  static_cast<unsigned long long>(DslHash >> 32),
                  static_cast<unsigned long long>(SpecHash >> 32));
  else
    std::snprintf(Buf, sizeof(Buf), "%016llx (dsl=%08llx spec=%08llx lvl=%u)",
                  static_cast<unsigned long long>(digest()),
                  static_cast<unsigned long long>(DslHash >> 32),
                  static_cast<unsigned long long>(SpecHash >> 32), TaskLevel);
  return Buf;
}

PlanKey shackle::makePlanKey(const Program &P, const ShackleChain &Chain,
                             const std::vector<int64_t> &ParamValues,
                             unsigned TaskLevel, const MachineShape &Shape) {
  PlanKey K;
  K.DslHash = canonicalProgramHash(P);
  K.SpecHash = fingerprintChainPrefix(P, Chain);
  Checksum PC;
  PC.u64(ParamValues.size());
  for (int64_t V : ParamValues)
    PC.u64(static_cast<uint64_t>(V));
  K.ParamsHash = PC.value();
  K.TaskLevel = TaskLevel;
  K.MachineHash = Shape.hash();
  return K;
}
