//===- PlanSerdes.cpp - Binary plan (de)serialization -------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "service/PlanSerdes.h"

#include "support/Checksum.h"
#include "support/FaultInjector.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <unordered_map>

using namespace shackle;

namespace {

constexpr char SnapshotMagic[8] = {'S', 'H', 'K', 'P', 'L', 'A', 'N', 'C'};
constexpr uint32_t SnapshotVersion = 1;
constexpr uint32_t BlobVersion = 1;
constexpr unsigned MaxAstDepth = 512;

//===----------------------------------------------------------------------===//
// Byte streams
//===----------------------------------------------------------------------===//

struct ByteWriter {
  std::string Buf;

  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void u32(uint32_t V) {
    char B[4];
    std::memcpy(B, &V, 4);
    Buf.append(B, 4);
  }
  void u64(uint64_t V) {
    char B[8];
    std::memcpy(B, &V, 8);
    Buf.append(B, 8);
  }
  void i64(int64_t V) { u64(static_cast<uint64_t>(V)); }
  void str(const std::string &S) {
    u32(static_cast<uint32_t>(S.size()));
    Buf.append(S);
  }
  void i64vec(const std::vector<int64_t> &V) {
    u32(static_cast<uint32_t>(V.size()));
    for (int64_t X : V)
      i64(X);
  }
};

/// Bounds-checked reader: the first overrun latches Fail and every later
/// read returns zeros, so decode loops terminate without UB.
struct ByteReader {
  const std::string &Buf;
  std::size_t Pos = 0;
  bool Fail = false;

  std::size_t remaining() const { return Fail ? 0 : Buf.size() - Pos; }

  bool take(void *Out, std::size_t N) {
    if (Fail || Buf.size() - Pos < N) {
      Fail = true;
      return false;
    }
    std::memcpy(Out, Buf.data() + Pos, N);
    Pos += N;
    return true;
  }
  uint8_t u8() {
    uint8_t V = 0;
    take(&V, 1);
    return V;
  }
  uint32_t u32() {
    uint32_t V = 0;
    take(&V, 4);
    return V;
  }
  uint64_t u64() {
    uint64_t V = 0;
    take(&V, 8);
    return V;
  }
  int64_t i64() { return static_cast<int64_t>(u64()); }
  std::string str() {
    uint32_t N = u32();
    if (Fail || Buf.size() - Pos < N) {
      Fail = true;
      return {};
    }
    std::string S(Buf.data() + Pos, N);
    Pos += N;
    return S;
  }
  /// Guards a count against the bytes actually left: a corrupted length
  /// cannot force a huge allocation.
  bool plausibleCount(uint64_t Count, std::size_t MinBytesPer) {
    if (Fail || Count > remaining() / (MinBytesPer ? MinBytesPer : 1)) {
      Fail = true;
      return false;
    }
    return true;
  }
  std::vector<int64_t> i64vec() {
    uint32_t N = u32();
    std::vector<int64_t> V;
    if (!plausibleCount(N, 8))
      return V;
    V.reserve(N);
    for (uint32_t I = 0; I < N; ++I)
      V.push_back(i64());
    return V;
  }
};

//===----------------------------------------------------------------------===//
// AST serialization
//===----------------------------------------------------------------------===//

void writeAffine(ByteWriter &W, const AffineExpr &E) {
  W.u32(E.getNumVars());
  for (unsigned V = 0; V < E.getNumVars(); ++V)
    W.i64(E.getCoeff(V));
  W.i64(E.getConstant());
}

AffineExpr readAffine(ByteReader &R) {
  uint32_t N = R.u32();
  if (!R.plausibleCount(N, 8))
    return AffineExpr();
  AffineExpr E = AffineExpr::constant(N, 0);
  for (uint32_t V = 0; V < N; ++V)
    E.setCoeff(V, R.i64());
  E.setConstant(R.i64());
  return E;
}

void writeBound(ByteWriter &W, const BoundExpr &B) {
  writeAffine(W, B.Expr);
  W.i64(B.Divisor);
  W.u8(B.IsCeil ? 1 : 0);
}

BoundExpr readBound(ByteReader &R) {
  BoundExpr B;
  B.Expr = readAffine(R);
  B.Divisor = R.i64();
  B.IsCeil = R.u8() != 0;
  return B;
}

void writeRows(ByteWriter &W, const std::vector<ConstraintRow> &Rows) {
  W.u32(static_cast<uint32_t>(Rows.size()));
  for (const ConstraintRow &Row : Rows)
    W.i64vec(Row);
}

std::vector<ConstraintRow> readRows(ByteReader &R) {
  uint32_t N = R.u32();
  std::vector<ConstraintRow> Rows;
  if (!R.plausibleCount(N, 4))
    return Rows;
  Rows.reserve(N);
  for (uint32_t I = 0; I < N; ++I)
    Rows.push_back(R.i64vec());
  return Rows;
}

void writeNode(ByteWriter &W, const ASTNode &N) {
  W.u8(static_cast<uint8_t>(N.Kind));
  W.u32(N.Dim);
  W.u32(static_cast<uint32_t>(N.Lbs.size()));
  for (const BoundExpr &B : N.Lbs)
    writeBound(W, B);
  W.u32(static_cast<uint32_t>(N.Ubs.size()));
  for (const BoundExpr &B : N.Ubs)
    writeBound(W, B);
  writeRows(W, N.IneqConds);
  writeRows(W, N.EqConds);
  W.u32(N.S ? N.S->Id : 0xffffffffu);
  W.u32(static_cast<uint32_t>(N.VarMap.size()));
  for (unsigned V : N.VarMap)
    W.u32(V);
  W.u32(static_cast<uint32_t>(N.Body.size()));
  for (const ASTNodePtr &C : N.Body)
    writeNode(W, *C);
}

ASTNodePtr readNode(ByteReader &R, const Program &P, unsigned Depth) {
  if (R.Fail || Depth > MaxAstDepth) {
    R.Fail = true;
    return nullptr;
  }
  uint8_t KindRaw = R.u8();
  if (KindRaw > static_cast<uint8_t>(ASTKind::Let)) {
    R.Fail = true;
    return nullptr;
  }
  auto N = std::make_unique<ASTNode>();
  N->Kind = static_cast<ASTKind>(KindRaw);
  N->Dim = R.u32();
  uint32_t NLbs = R.u32();
  if (!R.plausibleCount(NLbs, 8))
    return nullptr;
  for (uint32_t I = 0; I < NLbs; ++I)
    N->Lbs.push_back(readBound(R));
  uint32_t NUbs = R.u32();
  if (!R.plausibleCount(NUbs, 8))
    return nullptr;
  for (uint32_t I = 0; I < NUbs; ++I)
    N->Ubs.push_back(readBound(R));
  N->IneqConds = readRows(R);
  N->EqConds = readRows(R);
  uint32_t StmtId = R.u32();
  if (StmtId != 0xffffffffu) {
    if (StmtId >= P.getNumStmts()) {
      R.Fail = true;
      return nullptr;
    }
    N->S = &P.getStmt(StmtId);
  }
  uint32_t NVm = R.u32();
  if (!R.plausibleCount(NVm, 4))
    return nullptr;
  for (uint32_t I = 0; I < NVm; ++I)
    N->VarMap.push_back(R.u32());
  uint32_t NBody = R.u32();
  if (!R.plausibleCount(NBody, 1))
    return nullptr;
  for (uint32_t I = 0; I < NBody; ++I) {
    ASTNodePtr C = readNode(R, P, Depth + 1);
    if (!C)
      return nullptr;
    N->Body.push_back(std::move(C));
  }
  return N;
}

/// Pre-order enumeration of every node in the nest, the pointer<->index
/// mapping partition segments are stored through.
void preorder(const ASTNode &N, std::vector<const ASTNode *> &Out) {
  Out.push_back(&N);
  for (const ASTNodePtr &C : N.Body)
    preorder(*C, Out);
}

std::vector<const ASTNode *> preorderNodes(const LoopNest &Nest) {
  std::vector<const ASTNode *> Out;
  for (const ASTNodePtr &Root : Nest.Roots)
    preorder(*Root, Out);
  return Out;
}

} // namespace

std::string shackle::serializePlan(const ParallelPlan &Plan) {
  ByteWriter W;
  W.u32(BlobVersion);
  W.u8(static_cast<uint8_t>(Plan.tier()));
  W.u32(Plan.taskFactors());
  W.u32(Plan.totalFactors());
  W.i64vec(Plan.paramValues());

  // The nest.
  const LoopNest &Nest = Plan.nest();
  W.u32(Nest.NumDims);
  W.u32(Nest.NumParams);
  W.u32(static_cast<uint32_t>(Nest.DimNames.size()));
  for (const std::string &Name : Nest.DimNames)
    W.str(Name);
  W.u32(static_cast<uint32_t>(Nest.Roots.size()));
  for (const ASTNodePtr &Root : Nest.Roots)
    writeNode(W, *Root);

  // The partition, AST pointers as pre-order indices.
  std::vector<const ASTNode *> Order = preorderNodes(Nest);
  std::unordered_map<const ASTNode *, uint64_t> Index;
  Index.reserve(Order.size());
  for (std::size_t I = 0; I < Order.size(); ++I)
    Index[Order[I]] = I;
  const BlockPartition &Part = Plan.partition();
  W.u8(Part.OK ? 1 : 0);
  W.u32(Part.NumBlockDims);
  W.u64(Part.Tasks.size());
  for (const BlockTask &T : Part.Tasks) {
    W.i64vec(T.Coords);
    W.u32(static_cast<uint32_t>(T.Segments.size()));
    for (const BlockTask::Segment &S : T.Segments) {
      auto It = Index.find(S.Node);
      W.u64(It == Index.end() ? ~0ull : It->second);
      W.i64vec(S.DimValues);
    }
  }

  // The DAG.
  const BlockDepGraph &G = Plan.graph();
  W.u32(G.NumBlockDims);
  W.u64(G.Coords.size());
  for (const std::vector<int64_t> &C : G.Coords)
    W.i64vec(C);
  for (const std::vector<uint32_t> &Succ : G.Succs) {
    W.u32(static_cast<uint32_t>(Succ.size()));
    for (uint32_t S : Succ)
      W.u32(S);
  }
  for (uint32_t D : G.InDegree)
    W.u32(D);
  W.u64(G.NumEdges);
  W.u32(static_cast<uint32_t>(G.SignPatterns.size()));
  for (const std::vector<int> &Pat : G.SignPatterns) {
    W.u32(static_cast<uint32_t>(Pat.size()));
    for (int S : Pat)
      W.u8(static_cast<uint8_t>(S + 1)); // {-1,0,1} -> {0,1,2}.
  }
  W.u8(G.Conservative ? 1 : 0);
  W.u8(G.EdgeCapHit ? 1 : 0);
  W.u8(G.WorkCapHit ? 1 : 0);
  W.u64(G.PairVisits);
  return std::move(W.Buf);
}

bool shackle::deserializePlan(const std::string &Blob, const Program &P,
                              ParallelPlanParts &Out, std::string *Err) {
  auto Failed = [&](const std::string &Msg) {
    if (Err)
      *Err = Msg;
    return false;
  };
  ByteReader R{Blob};
  uint32_t Version = R.u32();
  if (R.Fail || Version != BlobVersion)
    return Failed("unsupported plan blob version");
  uint8_t TierRaw = R.u8();
  if (TierRaw > static_cast<uint8_t>(CodegenTier::Original))
    return Failed("bad codegen tier");
  Out.CG.Tier = static_cast<CodegenTier>(TierRaw);
  // Only proven-legal plans are persisted; rebuild the verdict that gated
  // them rather than storing its violation machinery.
  Out.CG.Legality.Legal = true;
  Out.CG.Legality.Verdict = LegalityVerdict::Legal;
  Out.TaskFactors = R.u32();
  Out.TotalFactors = R.u32();
  Out.Params = R.i64vec();
  if (Out.Params.size() != P.getNumParams())
    return Failed("parameter count mismatch");

  LoopNest &Nest = Out.CG.Nest;
  Nest.Prog = &P;
  Nest.NumDims = R.u32();
  Nest.NumParams = R.u32();
  uint32_t NNames = R.u32();
  if (!R.plausibleCount(NNames, 4))
    return Failed("truncated blob (dim names)");
  for (uint32_t I = 0; I < NNames; ++I)
    Nest.DimNames.push_back(R.str());
  uint32_t NRoots = R.u32();
  if (!R.plausibleCount(NRoots, 1))
    return Failed("truncated blob (roots)");
  for (uint32_t I = 0; I < NRoots; ++I) {
    ASTNodePtr Root = readNode(R, P, 0);
    if (!Root)
      return Failed("truncated or malformed blob (AST)");
    Nest.Roots.push_back(std::move(Root));
  }

  std::vector<const ASTNode *> Order = preorderNodes(Nest);
  BlockPartition &Part = Out.Partition;
  Part.OK = R.u8() != 0;
  Part.NumBlockDims = R.u32();
  uint64_t NTasks = R.u64();
  if (!R.plausibleCount(NTasks, 8))
    return Failed("truncated blob (tasks)");
  Part.Tasks.reserve(NTasks);
  for (uint64_t T = 0; T < NTasks; ++T) {
    BlockTask Task;
    Task.Coords = R.i64vec();
    if (Task.Coords.size() != Part.NumBlockDims)
      return Failed("task coordinate arity mismatch");
    uint32_t NSegs = R.u32();
    if (!R.plausibleCount(NSegs, 8))
      return Failed("truncated blob (segments)");
    for (uint32_t S = 0; S < NSegs; ++S) {
      BlockTask::Segment Seg;
      uint64_t NodeIdx = R.u64();
      if (NodeIdx >= Order.size())
        return Failed("segment node index out of range");
      Seg.Node = Order[NodeIdx];
      Seg.DimValues = R.i64vec();
      if (Seg.DimValues.size() != Nest.NumDims)
        return Failed("segment dimension snapshot arity mismatch");
      Task.Segments.push_back(std::move(Seg));
    }
    Part.Tasks.push_back(std::move(Task));
  }

  BlockDepGraph &G = Out.Graph;
  G.NumBlockDims = R.u32();
  uint64_t NNodes = R.u64();
  if (NNodes != Part.Tasks.size())
    return Failed("graph/partition node count mismatch");
  if (!R.plausibleCount(NNodes, 4))
    return Failed("truncated blob (graph nodes)");
  G.Coords.reserve(NNodes);
  for (uint64_t I = 0; I < NNodes; ++I)
    G.Coords.push_back(R.i64vec());
  G.Succs.resize(NNodes);
  for (uint64_t I = 0; I < NNodes; ++I) {
    uint32_t NSucc = R.u32();
    if (!R.plausibleCount(NSucc, 4))
      return Failed("truncated blob (successors)");
    G.Succs[I].reserve(NSucc);
    for (uint32_t S = 0; S < NSucc; ++S) {
      uint32_t V = R.u32();
      if (V >= NNodes)
        return Failed("successor index out of range");
      G.Succs[I].push_back(V);
    }
  }
  G.InDegree.reserve(NNodes);
  for (uint64_t I = 0; I < NNodes; ++I)
    G.InDegree.push_back(R.u32());
  G.NumEdges = R.u64();
  uint32_t NPats = R.u32();
  if (!R.plausibleCount(NPats, 4))
    return Failed("truncated blob (sign patterns)");
  for (uint32_t I = 0; I < NPats; ++I) {
    uint32_t Len = R.u32();
    if (!R.plausibleCount(Len, 1))
      return Failed("truncated blob (sign pattern)");
    std::vector<int> Pat;
    Pat.reserve(Len);
    for (uint32_t K = 0; K < Len; ++K)
      Pat.push_back(static_cast<int>(R.u8()) - 1);
    G.SignPatterns.push_back(std::move(Pat));
  }
  G.Conservative = R.u8() != 0;
  G.EdgeCapHit = R.u8() != 0;
  G.WorkCapHit = R.u8() != 0;
  G.PairVisits = R.u64();
  if (R.Fail)
    return Failed("truncated blob");
  if (R.Pos != Blob.size())
    return Failed("trailing bytes after plan blob");
  return true;
}

//===----------------------------------------------------------------------===//
// Snapshot files
//===----------------------------------------------------------------------===//

namespace {

/// Whole-buffer checksum: length word plus the bytes packed 8 at a time
/// (tail zero-padded).
uint64_t bufferChecksum(const char *Data, std::size_t N) {
  Checksum C;
  C.u64(N);
  std::size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    uint64_t W;
    std::memcpy(&W, Data + I, 8);
    C.u64(W);
  }
  if (I < N) {
    uint64_t W = 0;
    std::memcpy(&W, Data + I, N - I);
    C.u64(W);
  }
  return C.value();
}

} // namespace

Status shackle::saveSnapshotFile(const std::string &Path,
                                 const std::vector<SnapshotEntry> &Entries) {
  ByteWriter W;
  W.Buf.append(SnapshotMagic, sizeof(SnapshotMagic));
  W.u32(SnapshotVersion);
  W.u64(Entries.size());
  for (const SnapshotEntry &E : Entries) {
    W.u64(E.Key.DslHash);
    W.u64(E.Key.SpecHash);
    W.u64(E.Key.ParamsHash);
    W.u32(E.Key.TaskLevel);
    W.u64(E.Key.MachineHash);
    W.u64(E.Blob.size());
    W.Buf.append(E.Blob);
  }
  W.u64(bufferChecksum(W.Buf.data(), W.Buf.size()));

  std::string Tmp = Path + ".tmp";
  std::FILE *F = std::fopen(Tmp.c_str(), "wb");
  if (!F)
    return Status::error(DiagCode::IOError,
                         "[service-cache] cannot write snapshot " + Tmp);
  // Service chaos: a failed or truncated tmp-file write must leave the
  // previous snapshot at Path untouched — only a complete tmp file is ever
  // renamed over it.
  if (int Mode = injectSnapshotWriteFail()) {
    if (Mode == 2)
      std::fwrite(W.Buf.data(), 1, W.Buf.size() / 2, F);
    std::fclose(F);
    std::remove(Tmp.c_str());
    return Status::error(DiagCode::IOError,
                         Mode == 1
                             ? "[service-cache] cannot write snapshot " +
                                   Tmp + ": no space left on device "
                                         "(injected)"
                             : "[service-cache] short write to snapshot " +
                                   Tmp + " (injected)");
  }
  std::size_t Wrote = std::fwrite(W.Buf.data(), 1, W.Buf.size(), F);
  bool CloseOk = std::fclose(F) == 0;
  if (Wrote != W.Buf.size() || !CloseOk) {
    std::remove(Tmp.c_str());
    return Status::error(DiagCode::IOError,
                         "[service-cache] short write to snapshot " + Tmp);
  }
  if (std::rename(Tmp.c_str(), Path.c_str()) != 0) {
    std::remove(Tmp.c_str());
    return Status::error(DiagCode::IOError,
                         "[service-cache] cannot rename snapshot into " +
                             Path);
  }
  return Status::success();
}

Status shackle::loadSnapshotFile(const std::string &Path,
                                 std::vector<SnapshotEntry> &Out) {
  Out.clear();
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Status::success(); // No snapshot yet: a cold cache, not an error.
  std::string Buf;
  char Chunk[65536];
  std::size_t Got;
  while ((Got = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Buf.append(Chunk, Got);
  std::fclose(F);

  auto Reject = [&](const std::string &Why) {
    Out.clear();
    return Status::error(DiagCode::IOError, "[service-cache] rejecting " +
                                                Path + ": " + Why +
                                                "; starting with an empty "
                                                "cache");
  };
  if (Buf.size() < sizeof(SnapshotMagic) + 4 + 8 + 8)
    return Reject("file truncated (shorter than the fixed header)");
  if (std::memcmp(Buf.data(), SnapshotMagic, sizeof(SnapshotMagic)) != 0)
    return Reject("bad magic (not a plan-cache snapshot)");
  uint64_t Stored;
  std::memcpy(&Stored, Buf.data() + Buf.size() - 8, 8);
  if (bufferChecksum(Buf.data(), Buf.size() - 8) != Stored)
    return Reject("checksum mismatch (corrupted or truncated)");

  ByteReader R{Buf};
  R.Pos = sizeof(SnapshotMagic);
  uint32_t Version = R.u32();
  if (Version != SnapshotVersion)
    return Reject("unsupported snapshot version " + std::to_string(Version));
  uint64_t Count = R.u64();
  if (!R.plausibleCount(Count, 5 * 8 + 4))
    return Reject("implausible entry count");
  for (uint64_t I = 0; I < Count; ++I) {
    SnapshotEntry E;
    E.Key.DslHash = R.u64();
    E.Key.SpecHash = R.u64();
    E.Key.ParamsHash = R.u64();
    E.Key.TaskLevel = R.u32();
    E.Key.MachineHash = R.u64();
    uint64_t BlobSize = R.u64();
    if (R.Fail || BlobSize > Buf.size() - R.Pos)
      return Reject("entry " + std::to_string(I) + " truncated");
    E.Blob.assign(Buf.data() + R.Pos, BlobSize);
    R.Pos += BlobSize;
    Out.push_back(std::move(E));
  }
  if (R.Pos != Buf.size() - 8)
    return Reject("trailing bytes after the last entry");
  return Status::success();
}
