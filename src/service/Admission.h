//===- Admission.h - Overload-safe request admission ------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The admission layer between connection I/O and request execution
/// (DESIGN.md §14). Connection threads hand request lines to process() and
/// block for the reply; the actual compile/run work happens on a bounded
/// worker pool fed from a bounded queue, so the daemon's concurrency and
/// memory footprint stay fixed no matter how many clients pile on:
///
///   * At most MaxInflight requests execute at once; at most QueueDepth
///     more wait. Anything beyond that is *shed* immediately with a
///     structured `{"ok":false,"code":"overloaded","retry_after_ms":R}`
///     reply — the server never queues without bound and never stalls a
///     client silently.
///   * Per-request deadlines (the daemon-wide RequestDeadlineMs default
///     and/or a client-supplied `deadline_ms` field) bound how long a
///     client waits for queue + execution. An expired request gets a
///     structured `deadline-exceeded` reply, but the work itself still
///     completes on the worker so the plan-cache entry lands for future
///     hits — the cost is paid once, just not waited on twice.
///   * drain() stops admitting (new requests shed with code "draining"),
///     waits for every queued and in-flight request to finish, and leaves
///     the pool idle — the SIGTERM/shutdown path.
///
/// Cheap control ops (stats, shutdown) and request-line parse errors bypass
/// the queue entirely: they must stay responsive precisely when the pool is
/// saturated. The stats reply is augmented with the admission counters.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SERVICE_ADMISSION_H
#define SHACKLE_SERVICE_ADMISSION_H

#include "service/Service.h"

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace shackle {

struct AdmissionOptions {
  /// Worker threads executing compile/run requests (the execution cap).
  unsigned MaxInflight = 4;
  /// Requests allowed to wait beyond the executing ones; the (queue +
  /// inflight) total is capped at MaxInflight + QueueDepth. 0 means "shed
  /// whenever every worker is busy".
  unsigned QueueDepth = 64;
  /// Daemon-wide deadline applied to every compile/run request; 0 = none.
  /// A client `deadline_ms` field tightens (never loosens) this.
  uint64_t RequestDeadlineMs = 0;
};

struct AdmissionStats {
  uint64_t Admitted = 0;        ///< Requests that entered the queue.
  uint64_t Shed = 0;            ///< Rejected with `overloaded`/`draining`.
  uint64_t DeadlineExpired = 0; ///< Waiters that got a timeout reply.
  uint64_t Completed = 0;       ///< Worker executions finished.
  uint64_t Abandoned = 0;       ///< Completions whose waiter had expired.
  uint64_t QueuePeak = 0;       ///< High-water mark of the wait queue.
  uint64_t QueuedNow = 0;
  uint64_t InflightNow = 0;
  double EwmaMs = 0;            ///< Smoothed per-request execution time.
};

/// Builds the uniform structured error reply the overload paths use
/// (Server.cpp shares it for connection-level errors).
JsonValue serviceErrorReply(const std::string &Code,
                            const std::string &Message);

class AdmissionController {
public:
  /// Starts Opts.MaxInflight workers. \p Core must outlive the controller.
  explicit AdmissionController(ServiceCore &Core,
                               AdmissionOptions Opts = AdmissionOptions());
  /// Drains and joins the pool; queued work is completed, not dropped.
  ~AdmissionController();

  AdmissionController(const AdmissionController &) = delete;
  AdmissionController &operator=(const AdmissionController &) = delete;

  /// Handles one request line end to end: parse, admit (or shed), wait for
  /// the reply up to the request's deadline. Always returns one reply
  /// document; never throws. Safe to call from many connection threads.
  std::string process(const std::string &Line);

  /// Stops admitting (subsequent requests shed with code "draining") and
  /// blocks until every queued and in-flight request has completed.
  /// Idempotent; the workers stay alive (the destructor joins them).
  void drain();

  /// The shed hint in milliseconds: roughly how long until a queue slot
  /// frees up, from the smoothed execution time and the current backlog.
  uint64_t retryAfterMs() const;

  AdmissionStats stats() const;
  /// One-line `admission:` summary for the CLI exit report.
  std::string statsLine() const;

private:
  struct Ticket {
    JsonValue Req;
    std::mutex M;
    std::condition_variable CV;
    bool Done = false;
    bool Abandoned = false; ///< The waiter gave up (deadline expired).
    std::string Reply;
  };

  void workerLoop();
  /// Appends the admission counters to a `stats` op reply.
  void mergeStats(JsonValue &Reply) const;

  ServiceCore &Core;
  AdmissionOptions Opts;

  mutable std::mutex M;
  std::condition_variable WorkCV; ///< Workers wait for queued tickets.
  std::condition_variable IdleCV; ///< drain() waits for quiescence.
  std::deque<std::shared_ptr<Ticket>> Queue;
  unsigned Inflight = 0;
  bool Draining = false;
  bool Stopping = false;

  // Counters (guarded by M; read via stats()).
  uint64_t Admitted = 0;
  uint64_t Shed = 0;
  uint64_t DeadlineExpired = 0;
  uint64_t Completed = 0;
  uint64_t Abandoned = 0;
  uint64_t QueuePeak = 0;
  double EwmaMs = 0; ///< 0 until the first completion.

  std::vector<std::thread> Workers;
};

} // namespace shackle

#endif // SHACKLE_SERVICE_ADMISSION_H
