//===- PlanCache.cpp - Sharded concurrent persistent plan cache ---------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "service/PlanCache.h"

#include <algorithm>
#include <cassert>

using namespace shackle;

/// A cache slot. Building entries are the single-flight rendezvous: the
/// first missing request inserts one and compiles; later requests wait on
/// the shard CV until the state leaves Building.
struct PlanCache::Entry {
  enum class State { Building, Ready, Failed };
  State St = State::Building;
  std::shared_ptr<const CachedPlan> Plan;
  std::string FailMsg;
  uint64_t Bytes = 0;
  uint64_t LruTick = 0;
};

struct PlanCache::Shard {
  mutable std::mutex M;
  std::condition_variable CV;
  std::unordered_map<uint64_t, std::shared_ptr<Entry>> Map;
  uint64_t Bytes = 0;
  uint64_t Tick = 0;
};

PlanCache::PlanCache(uint64_t MaxBytes)
    : Shards(new Shard[NumShards]),
      MaxBytesPerShard(std::max<uint64_t>(1, MaxBytes / NumShards)) {}

PlanCache::~PlanCache() = default;

PlanCache::Shard &PlanCache::shardFor(uint64_t Digest) const {
  // The digest is SplitMix64-finalized, so the low bits are well mixed.
  return Shards[Digest % NumShards];
}

void PlanCache::evictLocked(Shard &S) {
  while (S.Bytes > MaxBytesPerShard && S.Map.size() > 1) {
    uint64_t OldestTick = ~0ull;
    uint64_t OldestDigest = 0;
    std::shared_ptr<Entry> Oldest;
    for (const auto &[Digest, E] : S.Map) {
      if (E->St != Entry::State::Ready)
        continue; // Never evict an in-flight build.
      if (E->LruTick < OldestTick) {
        OldestTick = E->LruTick;
        OldestDigest = Digest;
        Oldest = E;
      }
    }
    if (!Oldest || Oldest->LruTick == S.Tick)
      break; // Nothing evictable but the entry just touched.
    // Demote to a pending blob: the expensive deserialized plan is freed,
    // but the compact form stays revivable and persistable.
    if (Oldest->Plan && !Oldest->Plan->Blob.empty()) {
      std::lock_guard<std::mutex> PLock(PendingM);
      Pending[OldestDigest] =
          SnapshotEntry{Oldest->Plan->Key, Oldest->Plan->Blob};
    }
    S.Bytes -= std::min(S.Bytes, Oldest->Bytes);
    S.Map.erase(OldestDigest);
    {
      std::lock_guard<std::mutex> SLock(StatsM);
      ++Counters.Evictions;
    }
  }
}

PlanCache::Outcome
PlanCache::getOrBuild(const PlanKey &Key,
                      std::shared_ptr<const Program> Prog,
                      const std::function<ParallelPlan()> &Build) {
  Outcome Out;
  uint64_t Digest = Key.digest();
  Shard &S = shardFor(Digest);

  std::shared_ptr<Entry> E;
  {
    std::unique_lock<std::mutex> Lock(S.M);
    auto It = S.Map.find(Digest);
    if (It != S.Map.end()) {
      E = It->second;
      if (E->St == Entry::State::Building) {
        // Single-flight: wait for the builder, never compile twice.
        {
          std::lock_guard<std::mutex> SLock(StatsM);
          ++Counters.Coalesced;
        }
        Out.Coalesced = true;
        S.CV.wait(Lock, [&] { return E->St != Entry::State::Building; });
      }
      if (E->St == Entry::State::Ready) {
        E->LruTick = ++S.Tick;
        Out.Plan = E->Plan;
        Out.Hit = true;
        std::lock_guard<std::mutex> SLock(StatsM);
        ++Counters.Hits;
        return Out;
      }
      // Failed flight: report the builder's error to this waiter too. The
      // entry was already erased by the builder, so the next request
      // retries cleanly.
      Out.Error = E->FailMsg;
      return Out;
    }
    E = std::make_shared<Entry>();
    S.Map[Digest] = E;
  }

  // We own this flight; compile outside the lock so readers of other keys
  // and coalescing waiters are never blocked behind Omega.
  std::shared_ptr<CachedPlan> Built;
  std::string Error;
  bool FromSnapshot = false;

  SnapshotEntry Blob;
  bool HaveBlob = false;
  {
    std::lock_guard<std::mutex> PLock(PendingM);
    auto It = Pending.find(Digest);
    if (It != Pending.end()) {
      Blob = std::move(It->second);
      Pending.erase(It);
      HaveBlob = true;
    }
  }
  if (HaveBlob) {
    ParallelPlanParts Parts;
    std::string DErr;
    if (deserializePlan(Blob.Blob, *Prog, Parts, &DErr)) {
      Built = std::make_shared<CachedPlan>();
      Built->Key = Key;
      Built->Prog = Prog;
      Built->Plan = ParallelPlan::fromParts(std::move(Parts));
      Built->Blob = std::move(Blob.Blob);
      FromSnapshot = true;
    }
    // A blob that fails to deserialize is dropped silently into a cold
    // compile: the snapshot-level checksum already vouched for file
    // integrity, so this only happens across incompatible builds.
  }

  if (!Built) {
    try {
      auto CP = std::make_shared<CachedPlan>();
      CP->Key = Key;
      CP->Prog = Prog;
      CP->Plan = Build();
      if (CP->Plan.parallelReady())
        CP->Blob = serializePlan(CP->Plan);
      Built = std::move(CP);
    } catch (const std::exception &Ex) {
      Error = Ex.what();
    } catch (...) {
      Error = "plan build failed";
    }
  }

  {
    std::unique_lock<std::mutex> Lock(S.M);
    if (Built) {
      E->St = Entry::State::Ready;
      E->Plan = Built;
      // Accounting: the serialized size is a good proxy for the plan's
      // resident footprint; plans too degraded to serialize get a nominal
      // charge so they still participate in LRU.
      E->Bytes = Built->Blob.empty() ? 1024 : Built->Blob.size();
      E->LruTick = ++S.Tick;
      S.Bytes += E->Bytes;
      evictLocked(S);
    } else {
      E->St = Entry::State::Failed;
      E->FailMsg = Error;
      S.Map.erase(Digest); // Next request retries from scratch.
    }
    S.CV.notify_all();
  }

  {
    std::lock_guard<std::mutex> SLock(StatsM);
    if (Built && FromSnapshot)
      ++Counters.Hits; // A disk hit: no compilation happened.
    else
      ++Counters.Misses;
  }
  Out.Plan = Built;
  Out.Hit = Built && FromSnapshot;
  Out.FromSnapshot = FromSnapshot;
  Out.Error = Error;
  return Out;
}

Status PlanCache::loadSnapshot(const std::string &Path) {
  std::vector<SnapshotEntry> Entries;
  Status S = loadSnapshotFile(Path, Entries);
  if (!S.ok())
    return S;
  std::lock_guard<std::mutex> Lock(PendingM);
  for (SnapshotEntry &E : Entries) {
    uint64_t Digest = E.Key.digest();
    Pending[Digest] = std::move(E);
  }
  return Status::success();
}

Status PlanCache::saveSnapshot(const std::string &Path) const {
  std::vector<SnapshotEntry> Entries;
  for (unsigned I = 0; I < NumShards; ++I) {
    Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.M);
    for (const auto &[Digest, E] : S.Map) {
      (void)Digest;
      if (E->St == Entry::State::Ready && E->Plan && !E->Plan->Blob.empty())
        Entries.push_back(SnapshotEntry{E->Plan->Key, E->Plan->Blob});
    }
  }
  {
    std::lock_guard<std::mutex> Lock(PendingM);
    for (const auto &[Digest, E] : Pending) {
      (void)Digest;
      Entries.push_back(E);
    }
  }
  return saveSnapshotFile(Path, Entries);
}

PlanCacheStats PlanCache::stats() const {
  PlanCacheStats Out;
  {
    std::lock_guard<std::mutex> SLock(StatsM);
    Out = Counters;
  }
  for (unsigned I = 0; I < NumShards; ++I) {
    Shard &S = Shards[I];
    std::lock_guard<std::mutex> Lock(S.M);
    Out.BytesInUse += S.Bytes;
    Out.Entries += S.Map.size();
  }
  {
    std::lock_guard<std::mutex> Lock(PendingM);
    Out.PendingBlobs = Pending.size();
  }
  return Out;
}
