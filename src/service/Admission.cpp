//===- Admission.cpp - Overload-safe request admission ------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "service/Admission.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace shackle;

JsonValue shackle::serviceErrorReply(const std::string &Code,
                                     const std::string &Message) {
  JsonValue R = JsonValue::object();
  R.set("ok", JsonValue::boolean(false));
  R.set("code", JsonValue::string(Code));
  R.set("error", JsonValue::string(Message));
  return R;
}

AdmissionController::AdmissionController(ServiceCore &Core,
                                         AdmissionOptions O)
    : Core(Core), Opts(O) {
  if (Opts.MaxInflight == 0)
    Opts.MaxInflight = 1;
  Workers.reserve(Opts.MaxInflight);
  for (unsigned I = 0; I < Opts.MaxInflight; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

AdmissionController::~AdmissionController() {
  {
    std::lock_guard<std::mutex> Lock(M);
    Draining = true;
    Stopping = true;
  }
  WorkCV.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void AdmissionController::workerLoop() {
  for (;;) {
    std::shared_ptr<Ticket> T;
    {
      std::unique_lock<std::mutex> Lock(M);
      WorkCV.wait(Lock, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping, and nothing left to finish.
      T = std::move(Queue.front());
      Queue.pop_front();
      ++Inflight;
    }

    auto Start = std::chrono::steady_clock::now();
    JsonValue Reply = Core.handle(T->Req);
    double Ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - Start)
                    .count();

    bool WasAbandoned;
    {
      std::lock_guard<std::mutex> Lock(T->M);
      T->Done = true;
      T->Reply = Reply.str();
      WasAbandoned = T->Abandoned;
    }
    T->CV.notify_all();

    {
      std::lock_guard<std::mutex> Lock(M);
      --Inflight;
      ++Completed;
      if (WasAbandoned)
        ++Abandoned;
      EwmaMs = EwmaMs == 0 ? Ms : 0.8 * EwmaMs + 0.2 * Ms;
      if (Queue.empty() && Inflight == 0)
        IdleCV.notify_all();
    }
  }
}

uint64_t AdmissionController::retryAfterMs() const {
  std::lock_guard<std::mutex> Lock(M);
  double PerSlot = EwmaMs > 0 ? EwmaMs : 10.0;
  double Backlog = static_cast<double>(Queue.size() + Inflight + 1);
  double Est = PerSlot * Backlog / static_cast<double>(Opts.MaxInflight);
  return static_cast<uint64_t>(std::min(30000.0, std::max(1.0, Est)));
}

std::string AdmissionController::process(const std::string &Line) {
  JsonValue Req;
  std::string Err;
  if (!parseJson(Line, Req, &Err))
    return serviceErrorReply("parse-error", Err).str();
  if (!Req.isObject())
    return serviceErrorReply("parse-error", "request must be a JSON object")
        .str();

  std::string Op = Req.getString("op");
  if (Op != "compile" && Op != "run") {
    // Control ops bypass the queue: stats and shutdown must stay
    // responsive exactly when the pool is saturated. Usage errors are
    // cheap to answer and would only waste queue capacity.
    JsonValue Reply = Core.handle(Req);
    if (Op == "stats")
      mergeStats(Reply);
    return Reply.str();
  }

  // The effective deadline: the daemon default, tightened (never loosened)
  // by a client-supplied deadline_ms.
  uint64_t DeadlineMs = Opts.RequestDeadlineMs;
  int64_t ClientDeadline = Req.getInt("deadline_ms", 0);
  if (ClientDeadline > 0)
    DeadlineMs = DeadlineMs == 0
                     ? static_cast<uint64_t>(ClientDeadline)
                     : std::min(DeadlineMs,
                                static_cast<uint64_t>(ClientDeadline));

  auto T = std::make_shared<Ticket>();
  T->Req = std::move(Req);
  {
    std::lock_guard<std::mutex> Lock(M);
    if (Draining) {
      ++Shed;
      return serviceErrorReply("draining",
                               "server is draining and not admitting new "
                               "requests; retry against a fresh instance")
          .str();
    }
    if (Queue.size() + Inflight >= Opts.MaxInflight + Opts.QueueDepth) {
      ++Shed;
      // Compute the hint inline (retryAfterMs() would re-lock M).
      double PerSlot = EwmaMs > 0 ? EwmaMs : 10.0;
      double Backlog = static_cast<double>(Queue.size() + Inflight + 1);
      uint64_t RetryMs = static_cast<uint64_t>(std::min(
          30000.0,
          std::max(1.0, PerSlot * Backlog /
                            static_cast<double>(Opts.MaxInflight))));
      JsonValue R = serviceErrorReply(
          "overloaded", "server at capacity (" +
                            std::to_string(Inflight) + " in flight, " +
                            std::to_string(Queue.size()) + " queued)");
      R.set("retry_after_ms",
            JsonValue::integer(static_cast<int64_t>(RetryMs)));
      return R.str();
    }
    Queue.push_back(T);
    ++Admitted;
    QueuePeak = std::max<uint64_t>(QueuePeak, Queue.size());
  }
  WorkCV.notify_one();

  std::unique_lock<std::mutex> TLock(T->M);
  if (DeadlineMs == 0) {
    T->CV.wait(TLock, [&] { return T->Done; });
    return T->Reply;
  }
  if (!T->CV.wait_for(TLock, std::chrono::milliseconds(DeadlineMs),
                      [&] { return T->Done; })) {
    // The waiter leaves; the worker still completes the build so the
    // plan-cache entry lands for future hits (DESIGN.md §14).
    T->Abandoned = true;
    {
      std::lock_guard<std::mutex> Lock(M);
      ++DeadlineExpired;
    }
    JsonValue R = serviceErrorReply(
        "deadline-exceeded",
        "request exceeded its " + std::to_string(DeadlineMs) +
            "ms deadline; the compilation continues in the background "
            "and will be cached");
    R.set("deadline_ms",
          JsonValue::integer(static_cast<int64_t>(DeadlineMs)));
    return R.str();
  }
  return T->Reply;
}

void AdmissionController::drain() {
  std::unique_lock<std::mutex> Lock(M);
  Draining = true;
  IdleCV.wait(Lock, [&] { return Queue.empty() && Inflight == 0; });
}

AdmissionStats AdmissionController::stats() const {
  std::lock_guard<std::mutex> Lock(M);
  AdmissionStats S;
  S.Admitted = Admitted;
  S.Shed = Shed;
  S.DeadlineExpired = DeadlineExpired;
  S.Completed = Completed;
  S.Abandoned = Abandoned;
  S.QueuePeak = QueuePeak;
  S.QueuedNow = Queue.size();
  S.InflightNow = Inflight;
  S.EwmaMs = EwmaMs;
  return S;
}

void AdmissionController::mergeStats(JsonValue &Reply) const {
  AdmissionStats S = stats();
  Reply.set("admitted", JsonValue::integer(static_cast<int64_t>(S.Admitted)));
  Reply.set("shed", JsonValue::integer(static_cast<int64_t>(S.Shed)));
  Reply.set("deadline_expired",
            JsonValue::integer(static_cast<int64_t>(S.DeadlineExpired)));
  Reply.set("queue_peak",
            JsonValue::integer(static_cast<int64_t>(S.QueuePeak)));
  Reply.set("queued", JsonValue::integer(static_cast<int64_t>(S.QueuedNow)));
  Reply.set("inflight",
            JsonValue::integer(static_cast<int64_t>(S.InflightNow)));
}

std::string AdmissionController::statsLine() const {
  AdmissionStats S = stats();
  char Buf[256];
  std::snprintf(Buf, sizeof(Buf),
                "admission: admitted=%llu shed=%llu deadline-expired=%llu "
                "completed=%llu abandoned=%llu queue-peak=%llu ewma=%.2fms",
                static_cast<unsigned long long>(S.Admitted),
                static_cast<unsigned long long>(S.Shed),
                static_cast<unsigned long long>(S.DeadlineExpired),
                static_cast<unsigned long long>(S.Completed),
                static_cast<unsigned long long>(S.Abandoned),
                static_cast<unsigned long long>(S.QueuePeak), S.EwmaMs);
  return Buf;
}
