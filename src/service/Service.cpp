//===- Service.cpp - The shackle compile/run service core ---------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "core/ShackleDriver.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "programs/Registry.h"
#include "support/Checksum.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

using namespace shackle;

namespace {

JsonValue errorReply(const std::string &Code, const std::string &Message) {
  JsonValue R = JsonValue::object();
  R.set("ok", JsonValue::boolean(false));
  R.set("code", JsonValue::string(Code));
  R.set("error", JsonValue::string(Message));
  return R;
}

std::string hex64(uint64_t V) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%016llx",
                static_cast<unsigned long long>(V));
  return Buf;
}

/// Bit-pattern checksum of every array buffer, in array order. This is the
/// service's determinism witness: equal checksums across clients mean
/// bitwise-identical results (same strength as ProgramInstance::
/// bitwiseEqual).
uint64_t resultChecksum(const ProgramInstance &Inst) {
  Checksum C;
  const Program &P = Inst.program();
  for (unsigned A = 0; A < P.getNumArrays(); ++A) {
    const std::vector<double> &Buf = Inst.buffer(A);
    C.u64(A).u64(Buf.size());
    for (double V : Buf)
      C.f64(V);
  }
  return C.value();
}

const char *verdictName(LegalityVerdict V) {
  switch (V) {
  case LegalityVerdict::Legal:
    return "legal";
  case LegalityVerdict::Illegal:
    return "illegal";
  case LegalityVerdict::Unknown:
    return "unknown";
  }
  return "unknown";
}

} // namespace

ServiceCore::ServiceCore(ServiceOptions O)
    : Opts(std::move(O)), Cache(Opts.CacheBytes) {
  if (Opts.DetectShape)
    Opts.Shape = detectMachineShape();
  LatMs.reserve(LatCap);
}

bool ServiceCore::resolve(const JsonValue &Req, ResolvedRequest &R,
                          JsonValue &ErrReply) {
  // Parameter values (shared by both program forms).
  if (!Req.get("params").isArray()) {
    ErrReply = errorReply("usage-error", "'params' must be an array");
    return false;
  }
  for (const JsonValue &V : Req.get("params").asArray())
    R.Params.push_back(V.asInt());

  // Block sizes: a single integer or a per-rank array.
  std::vector<int64_t> Blocks;
  const JsonValue &BlockField = Req.get("block");
  if (BlockField.isArray()) {
    for (const JsonValue &V : BlockField.asArray())
      Blocks.push_back(V.asInt());
  } else if (BlockField.isNumber()) {
    Blocks.push_back(BlockField.asInt());
  }

  std::string Dsl = Req.getString("dsl");
  if (!Dsl.empty()) {
    // DSL form: parse, then shackle every statement through its store into
    // the named array (the `shackle file` pipeline).
    ParseResult PR = parseProgram(Dsl);
    if (!PR) {
      ErrReply = errorReply("parse-error", PR.Diag.str());
      return false;
    }
    std::shared_ptr<const Program> Prog = std::move(PR.Prog);
    std::string ArrayName = Req.getString("array");
    int ArrayId = -1;
    for (unsigned A = 0; A < Prog->getNumArrays(); ++A)
      if (Prog->getArray(A).Name == ArrayName)
        ArrayId = static_cast<int>(A);
    if (ArrayId < 0) {
      ErrReply = errorReply("usage-error",
                            "'array' must name an array declared in 'dsl'");
      return false;
    }
    unsigned Rank =
        static_cast<unsigned>(Prog->getArray(ArrayId).Extents.size());
    if (Blocks.empty())
      Blocks.assign(Rank, 64);
    while (Blocks.size() < Rank)
      Blocks.push_back(Blocks.back());
    std::vector<unsigned> Order(Rank);
    for (unsigned D = 0; D < Rank; ++D)
      Order[D] = D;
    if (Req.getString("order") == "colblocks" && Rank == 2)
      Order = {1, 0};
    DataBlocking Blocking = DataBlocking::rectangular(ArrayId, Blocks, Order);
    if (Req.getBool("reversed", false))
      Blocking.Planes[0].Reversed = true;
    Expected<DataShackle> Shackle =
        DataShackle::tryOnStores(*Prog, std::move(Blocking));
    if (!Shackle.ok()) {
      ErrReply = errorReply("usage-error", Shackle.diagnostic().str());
      return false;
    }
    R.Chain.Factors.push_back(std::move(Shackle.get()));
    R.Prog = std::move(Prog);
  } else {
    std::string Bench = Req.getString("benchmark");
    auto It = benchRegistry().find(Bench);
    if (It == benchRegistry().end()) {
      ErrReply = errorReply("usage-error",
                            "unknown benchmark '" + Bench +
                                "' (and no 'dsl' given); see 'shackle list'");
      return false;
    }
    std::string Config = Req.getString("config");
    auto CIt = It->second.Configs.find(Config);
    if (CIt == It->second.Configs.end()) {
      ErrReply = errorReply("usage-error", "unknown config '" + Config +
                                               "' for benchmark '" + Bench +
                                               "'");
      return false;
    }
    BenchSpec Spec = It->second.Make();
    std::shared_ptr<const Program> Prog = std::move(Spec.Prog);
    int64_t Block = Blocks.empty() ? It->second.DefaultBlock : Blocks[0];
    R.Chain = CIt->second(*Prog, Block);
    R.Prog = std::move(Prog);
  }

  if (R.Params.size() != R.Prog->getNumParams()) {
    ErrReply = errorReply(
        "usage-error", "'params' must supply " +
                           std::to_string(R.Prog->getNumParams()) +
                           " value(s), got " + std::to_string(R.Params.size()));
    return false;
  }

  const JsonValue &Level = Req.get("task_level");
  if (Level.isString() && Level.asString() == "auto")
    R.TaskLevel = PlanKeyAutoTaskLevel;
  else if (Level.isNumber() && Level.asInt() >= 0)
    R.TaskLevel = static_cast<unsigned>(Level.asInt());
  else if (!Level.isNull()) {
    ErrReply = errorReply("usage-error",
                          "'task_level' must be a factor count or \"auto\"");
    return false;
  }

  R.Threads = static_cast<unsigned>(std::max<int64_t>(
      1, Req.getInt("threads", Opts.DefaultThreads)));
  return true;
}

JsonValue ServiceCore::handleCompileOrRun(const JsonValue &Req, bool Execute) {
  ResolvedRequest R;
  JsonValue Err;
  if (!resolve(Req, R, Err))
    return Err;

  PlanKey Key = makePlanKey(*R.Prog, R.Chain, R.Params, R.TaskLevel,
                            Opts.Shape);

  // These are only written if this thread owns the build (single-flight
  // runs the closure on the missing caller's thread, synchronously).
  LegalityCheckStats LegStats;
  VerdictReuse Reuse;
  bool WeBuilt = false;

  PlanCache::Outcome Out = Cache.getOrBuild(Key, R.Prog, [&]() {
    WeBuilt = true;
    Reuse = Verdicts.lookup(*R.Prog, R.Chain);
    ParallelPlanOptions POpts;
    POpts.Budget = Opts.Budget;
    POpts.ThreadsHint = R.Threads;
    if (R.TaskLevel == PlanKeyAutoTaskLevel)
      POpts.AutoTaskLevel = true;
    else
      POpts.TaskLevel = R.TaskLevel;
    POpts.LegalitySkipBlockDims = Reuse.SkipBlockDims;
    POpts.LegalityKnownIllegal = Reuse.KnownIllegal;
    POpts.LegalityStats = &LegStats;
    ParallelPlan Plan = ParallelPlan::build(*R.Prog, R.Chain, R.Params, POpts);
    if (Reuse.KnownIllegal) {
      // The whole check was skipped; credit one avoided query (a fresh
      // check would have run at least one before finding the violation).
      Verdicts.creditSaved(1);
    } else {
      Verdicts.record(*R.Prog, R.Chain, Plan.legality().Verdict);
      Verdicts.creditSaved(LegStats.QueriesSkipped);
    }
    return Plan;
  });

  if (!Out.Plan)
    return errorReply("compile-failed", Out.Error.empty()
                                            ? "plan build failed"
                                            : Out.Error);

  const ParallelPlan &Plan = Out.Plan->Plan;
  JsonValue Reply = JsonValue::object();
  Reply.set("ok", JsonValue::boolean(true));
  Reply.set("op", JsonValue::string(Execute ? "run" : "compile"));
  Reply.set("key", JsonValue::string(hex64(Key.digest())));
  Reply.set("hit", JsonValue::boolean(Out.Hit));
  Reply.set("coalesced", JsonValue::boolean(Out.Coalesced));
  Reply.set("from_snapshot", JsonValue::boolean(Out.FromSnapshot));
  Reply.set("tier", JsonValue::string(codegenTierName(Plan.tier())));
  Reply.set("legality",
            JsonValue::string(verdictName(Plan.legality().Verdict)));
  Reply.set("parallel_ready", JsonValue::boolean(Plan.parallelReady()));
  Reply.set("tasks",
            JsonValue::integer(static_cast<int64_t>(
                Plan.partition().OK ? Plan.partition().Tasks.size() : 0)));
  if (WeBuilt) {
    Reply.set("solver_queries_run",
              JsonValue::integer(static_cast<int64_t>(LegStats.QueriesRun)));
    Reply.set("solver_queries_skipped",
              JsonValue::integer(
                  static_cast<int64_t>(LegStats.QueriesSkipped +
                                       (Reuse.KnownIllegal ? 1 : 0))));
  }

  if (!Execute)
    return Reply;

  ProgramInstance Inst(*R.Prog, R.Params);
  Inst.fillRandom(1, 0.5, 1.5);
  ParallelRunOptions RunOpts;
  RunOpts.NumThreads = R.Threads;
  auto Start = std::chrono::steady_clock::now();
  ParallelRunStats Stats = Plan.run(Inst, RunOpts);
  auto End = std::chrono::steady_clock::now();
  if (Stats.Failed)
    return errorReply("run-failed",
                      "a block failed every recovery attempt; results "
                      "withheld");
  Reply.set("mode", JsonValue::string(parallelModeName(Stats.Mode)));
  Reply.set("blocks_run",
            JsonValue::integer(static_cast<int64_t>(Stats.BlocksRun)));
  Reply.set("threads_used",
            JsonValue::integer(static_cast<int64_t>(Stats.ThreadsUsed)));
  Reply.set("run_ms",
            JsonValue::number(
                std::chrono::duration<double, std::milli>(End - Start)
                    .count()));
  Reply.set("checksum", JsonValue::string(hex64(resultChecksum(Inst))));
  return Reply;
}

JsonValue ServiceCore::handleStats() {
  ServiceStats S = stats();
  JsonValue Reply = JsonValue::object();
  Reply.set("ok", JsonValue::boolean(true));
  Reply.set("op", JsonValue::string("stats"));
  Reply.set("hits", JsonValue::integer(static_cast<int64_t>(S.Cache.Hits)));
  Reply.set("misses",
            JsonValue::integer(static_cast<int64_t>(S.Cache.Misses)));
  Reply.set("coalesced",
            JsonValue::integer(static_cast<int64_t>(S.Cache.Coalesced)));
  Reply.set("evictions",
            JsonValue::integer(static_cast<int64_t>(S.Cache.Evictions)));
  Reply.set("entries",
            JsonValue::integer(static_cast<int64_t>(S.Cache.Entries)));
  Reply.set("bytes",
            JsonValue::integer(static_cast<int64_t>(S.Cache.BytesInUse)));
  Reply.set("pending_blobs",
            JsonValue::integer(static_cast<int64_t>(S.Cache.PendingBlobs)));
  Reply.set("verdict_entries",
            JsonValue::integer(static_cast<int64_t>(S.VerdictEntries)));
  Reply.set("solver_calls_saved",
            JsonValue::integer(static_cast<int64_t>(S.SolverCallsSaved)));
  Reply.set("requests",
            JsonValue::integer(static_cast<int64_t>(S.Requests)));
  Reply.set("errors", JsonValue::integer(static_cast<int64_t>(S.Errors)));
  Reply.set("p50_ms", JsonValue::number(S.P50Ms));
  Reply.set("p95_ms", JsonValue::number(S.P95Ms));
  Reply.set("machine", JsonValue::string(Opts.Shape.str()));
  return Reply;
}

JsonValue ServiceCore::handle(const JsonValue &Req) {
  if (!Req.isObject())
    return errorReply("parse-error", "request must be a JSON object");
  std::string Op = Req.getString("op");
  if (Op == "stats")
    return handleStats();
  if (Op == "shutdown") {
    Shutdown.store(true, std::memory_order_release);
    JsonValue Reply = JsonValue::object();
    Reply.set("ok", JsonValue::boolean(true));
    Reply.set("op", JsonValue::string("shutdown"));
    return Reply;
  }
  if (Op == "compile" || Op == "run") {
    Requests.fetch_add(1, std::memory_order_relaxed);
    auto Start = std::chrono::steady_clock::now();
    JsonValue Reply = handleCompileOrRun(Req, Op == "run");
    auto End = std::chrono::steady_clock::now();
    recordLatency(
        std::chrono::duration<double, std::milli>(End - Start).count());
    if (!Reply.getBool("ok", false))
      Errors.fetch_add(1, std::memory_order_relaxed);
    return Reply;
  }
  return errorReply("usage-error",
                    "unknown op '" + Op +
                        "' (expected compile, run, stats, or shutdown)");
}

std::string ServiceCore::handleLine(const std::string &Line) {
  JsonValue Req;
  std::string Err;
  JsonValue Reply;
  if (!parseJson(Line, Req, &Err))
    Reply = errorReply("parse-error", Err);
  else
    Reply = handle(Req);
  return Reply.str();
}

void ServiceCore::recordLatency(double Ms) {
  std::lock_guard<std::mutex> Lock(LatM);
  if (LatMs.size() < LatCap) {
    LatMs.push_back(Ms);
  } else {
    LatMs[LatNext] = Ms;
    LatNext = (LatNext + 1) % LatCap;
  }
}

void ServiceCore::latencyPercentiles(double &P50, double &P95) const {
  std::vector<double> Copy;
  {
    std::lock_guard<std::mutex> Lock(LatM);
    Copy = LatMs;
  }
  P50 = P95 = 0;
  if (Copy.empty())
    return;
  std::sort(Copy.begin(), Copy.end());
  P50 = Copy[Copy.size() / 2];
  P95 = Copy[std::min(Copy.size() - 1, (Copy.size() * 95) / 100)];
}

ServiceStats ServiceCore::stats() const {
  ServiceStats S;
  S.Cache = Cache.stats();
  S.VerdictEntries = Verdicts.size();
  S.SolverCallsSaved = Verdicts.solverCallsSaved();
  S.Requests = Requests.load(std::memory_order_relaxed);
  S.Errors = Errors.load(std::memory_order_relaxed);
  latencyPercentiles(S.P50Ms, S.P95Ms);
  return S;
}

std::string ServiceCore::statsLine() const {
  ServiceStats S = stats();
  char Buf[512];
  std::snprintf(
      Buf, sizeof(Buf),
      "service: hits=%llu misses=%llu coalesced=%llu evictions=%llu "
      "entries=%llu bytes=%llu pending=%llu solver-saved=%llu "
      "requests=%llu errors=%llu p50=%.2fms p95=%.2fms",
      static_cast<unsigned long long>(S.Cache.Hits),
      static_cast<unsigned long long>(S.Cache.Misses),
      static_cast<unsigned long long>(S.Cache.Coalesced),
      static_cast<unsigned long long>(S.Cache.Evictions),
      static_cast<unsigned long long>(S.Cache.Entries),
      static_cast<unsigned long long>(S.Cache.BytesInUse),
      static_cast<unsigned long long>(S.Cache.PendingBlobs),
      static_cast<unsigned long long>(S.SolverCallsSaved),
      static_cast<unsigned long long>(S.Requests),
      static_cast<unsigned long long>(S.Errors), S.P50Ms, S.P95Ms);
  return Buf;
}

Status ServiceCore::loadSnapshot() {
  if (Opts.SnapshotPath.empty())
    return Status::success();
  return Cache.loadSnapshot(Opts.SnapshotPath);
}

Status ServiceCore::saveSnapshot() const {
  if (Opts.SnapshotPath.empty())
    return Status::success();
  return Cache.saveSnapshot(Opts.SnapshotPath);
}
