//===- PlanCache.h - Sharded concurrent persistent plan cache ---*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The service's plan cache: a sharded, reader-mostly concurrent map from
/// canonical PlanKey digests to compiled plans (legality verdict, simplified
/// LoopAST, block partition, dependence DAG — the affinity map is derived
/// per run from the partition, which is cheap and thread-count-dependent).
///
///   * Single-flight: concurrent misses on one key compile once; waiters
///     block on the entry and are counted as coalesces.
///   * LRU-by-bytes eviction: live plans are charged their serialized size;
///     evicted plans fall back to their compact blob (still persisted, and
///     revivable on the next miss) so eviction frees the expensive
///     deserialized structures first.
///   * Persistence: a versioned, checksummed snapshot file
///     (PlanSerdes). Loaded blobs stay *pending* — keyed by digest, not yet
///     bound to any Program — and are deserialized lazily against the first
///     requesting program, whose canonical hash necessarily matches the
///     key's DslHash.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SERVICE_PLANCACHE_H
#define SHACKLE_SERVICE_PLANCACHE_H

#include "parallel/ParallelExecutor.h"
#include "service/PlanKey.h"
#include "service/PlanSerdes.h"
#include "support/Diagnostics.h"

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace shackle {

/// One cached compilation: the plan plus the program it was compiled
/// against (plans hold pointers into their program, so the two share a
/// lifetime) and the serialized form used for accounting and persistence.
struct CachedPlan {
  PlanKey Key;
  std::shared_ptr<const Program> Prog;
  ParallelPlan Plan;
  std::string Blob; ///< Empty when the plan is not worth persisting.
};

struct PlanCacheStats {
  uint64_t Hits = 0;      ///< Served from a live entry (or revived blob).
  uint64_t Misses = 0;    ///< Full compilations performed.
  uint64_t Coalesced = 0; ///< Waiters that piggybacked on another's build.
  uint64_t Evictions = 0; ///< Live entries demoted to pending blobs.
  uint64_t BytesInUse = 0;
  uint64_t Entries = 0;
  uint64_t PendingBlobs = 0; ///< Loaded-from-disk plans not yet bound.
};

class PlanCache {
public:
  explicit PlanCache(uint64_t MaxBytes = 256ull << 20);
  ~PlanCache(); ///< Out of line: Shard is incomplete here.

  struct Outcome {
    std::shared_ptr<const CachedPlan> Plan; ///< Null on build failure.
    bool Hit = false;          ///< Found live, coalesced, or revived.
    bool Coalesced = false;    ///< Waited on another request's build.
    bool FromSnapshot = false; ///< Revived from a persisted blob.
    std::string Error;         ///< Set when Plan is null.
  };

  /// Looks \p Key up; on a miss, runs \p Build exactly once across all
  /// concurrent callers of the same key (single-flight) after first trying
  /// to revive a pending snapshot blob against \p Prog. \p Build must
  /// return the compiled plan; exceptions fail all waiters of this flight.
  Outcome getOrBuild(const PlanKey &Key, std::shared_ptr<const Program> Prog,
                     const std::function<ParallelPlan()> &Build);

  /// Loads \p Path into the pending-blob set (see class comment). Any
  /// malformed file yields an error status and leaves the cache empty but
  /// usable — callers warn and continue cold.
  Status loadSnapshot(const std::string &Path);

  /// Persists every persistable live plan plus still-pending blobs.
  Status saveSnapshot(const std::string &Path) const;

  PlanCacheStats stats() const;

private:
  struct Entry;
  struct Shard;

  Shard &shardFor(uint64_t Digest) const;
  /// Demotes LRU entries until the shard fits its budget. Caller holds the
  /// shard lock.
  void evictLocked(Shard &S);

  static constexpr unsigned NumShards = 16;
  std::unique_ptr<Shard[]> Shards;
  uint64_t MaxBytesPerShard;

  mutable std::mutex PendingM;
  std::unordered_map<uint64_t, SnapshotEntry> Pending;

  mutable std::mutex StatsM;
  PlanCacheStats Counters; ///< Hits/Misses/Coalesced/Evictions only.
};

} // namespace shackle

#endif // SHACKLE_SERVICE_PLANCACHE_H
