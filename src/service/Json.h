//===- Json.h - Minimal JSON values for the service protocol ----*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deliberately small JSON value type and recursive-descent parser for the
/// `shackle serve` newline-delimited request protocol (docs/SERVE.md). No
/// external dependency; supports the full JSON grammar except `\uXXXX`
/// escapes (rejected with a diagnostic), which the protocol never needs.
/// Numbers are kept as doubles plus an exact int64 view for integral values.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SERVICE_JSON_H
#define SHACKLE_SERVICE_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace shackle {

class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool B);
  static JsonValue number(double D);
  static JsonValue integer(int64_t I);
  static JsonValue string(std::string S);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isBool() const { return K == Kind::Bool; }
  bool isNumber() const { return K == Kind::Number; }
  bool isString() const { return K == Kind::String; }
  bool isArray() const { return K == Kind::Array; }
  bool isObject() const { return K == Kind::Object; }

  bool asBool() const { return B; }
  double asNumber() const { return Num; }
  /// The number truncated to int64 (0 for non-numbers).
  int64_t asInt() const { return static_cast<int64_t>(Num); }
  const std::string &asString() const { return Str; }
  const std::vector<JsonValue> &asArray() const { return Arr; }
  const std::map<std::string, JsonValue> &asObject() const { return Obj; }

  /// Object field access; returns a shared null value when missing or when
  /// this value is not an object.
  const JsonValue &get(const std::string &Key) const;
  bool has(const std::string &Key) const;

  /// Typed field helpers with defaults (missing or wrong-typed fields fall
  /// back to the default — request validation stays in one place).
  int64_t getInt(const std::string &Key, int64_t Default) const;
  std::string getString(const std::string &Key,
                        const std::string &Default = "") const;
  bool getBool(const std::string &Key, bool Default) const;

  /// Mutators (no-ops on the wrong kind; used by reply builders).
  void set(const std::string &Key, JsonValue V);
  void push(JsonValue V);

  /// Serializes to compact JSON (keys in map order, deterministic).
  std::string str() const;

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string Str;
  std::vector<JsonValue> Arr;
  std::map<std::string, JsonValue> Obj;
};

/// Parses one JSON document from \p Text. On failure returns false and sets
/// \p Err to a message with a 1-based character offset. Trailing whitespace
/// is allowed; trailing garbage is an error.
bool parseJson(const std::string &Text, JsonValue &Out, std::string *Err);

} // namespace shackle

#endif // SHACKLE_SERVICE_JSON_H
