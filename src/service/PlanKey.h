//===- PlanKey.h - Canonical plan-cache fingerprints ------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonical cache keys for compiled plans. A plan is reusable exactly when
/// five things match: the program (hashed over its canonical printed form,
/// so whitespace/comment differences in DSL source normalize away), the
/// shackle specification including block sizes (hashed structurally over
/// planes and shackled references), the concrete parameter values (the
/// partition and DAG are built for concrete sizes), the task level, and the
/// machine shape (thread and NUMA-domain counts — affinity maps and auto
/// task levels depend on them). Factor *prefix* fingerprints are exposed
/// separately so cached legality verdicts can be reused across chains that
/// share a prefix (docs/SERVE.md).
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_SERVICE_PLANKEY_H
#define SHACKLE_SERVICE_PLANKEY_H

#include "core/DataShackle.h"
#include "ir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace shackle {

/// The machine-shape component of a plan key: anything the plan bakes in
/// that varies across hosts.
struct MachineShape {
  unsigned Threads = 1; ///< Hardware concurrency (plan-time thread hint).
  unsigned Domains = 1; ///< NUMA locality domains (detectDomainSize).

  uint64_t hash() const;
  std::string str() const;
};

/// Detects the current host's shape (hardware_concurrency + NUMA nodes).
MachineShape detectMachineShape();

/// Hash of the program's canonical printed form (Program::str()). Two DSL
/// sources that parse to the same program — e.g. differing only in
/// whitespace or comments — hash identically.
uint64_t canonicalProgramHash(const Program &P);

/// Structural fingerprint of the first \p NumFactors factors of \p Chain
/// (0 = all): array ids, cutting-plane normals, block sizes, Reversed
/// flags, and every shackled reference's affine subscripts. Mixed with the
/// program hash so a prefix fingerprint is only comparable within one
/// program.
uint64_t fingerprintChainPrefix(const Program &P, const ShackleChain &Chain,
                                unsigned NumFactors = 0);

/// TaskLevel encoding for PlanKey: 'auto' is a distinct key from any fixed
/// level because the resolved granularity depends on the thread hint.
constexpr unsigned PlanKeyAutoTaskLevel = 0xffffffffu;

struct PlanKey {
  uint64_t DslHash = 0;     ///< canonicalProgramHash.
  uint64_t SpecHash = 0;    ///< fingerprintChainPrefix over the full chain.
  uint64_t ParamsHash = 0;  ///< Hash of the concrete parameter values.
  unsigned TaskLevel = 0;   ///< Requested level (PlanKeyAutoTaskLevel=auto).
  uint64_t MachineHash = 0; ///< MachineShape::hash().

  /// Single 64-bit digest used as the cache index.
  uint64_t digest() const;
  /// Short human-readable form for hit/miss logging.
  std::string str() const;

  bool operator==(const PlanKey &O) const {
    return DslHash == O.DslHash && SpecHash == O.SpecHash &&
           ParamsHash == O.ParamsHash && TaskLevel == O.TaskLevel &&
           MachineHash == O.MachineHash;
  }
};

/// Builds the canonical key for (program, chain, params, task level) on
/// \p Shape.
PlanKey makePlanKey(const Program &P, const ShackleChain &Chain,
                    const std::vector<int64_t> &ParamValues,
                    unsigned TaskLevel, const MachineShape &Shape);

} // namespace shackle

#endif // SHACKLE_SERVICE_PLANKEY_H
