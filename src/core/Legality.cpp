//===- Legality.cpp - Shackle legality checking ------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"

#include "polyhedral/OmegaTest.h"
#include "polyhedral/Sample.h"

#include <cassert>

using namespace shackle;

std::string LegalityViolation::witnessStr(const Program &P) const {
  std::optional<std::vector<int64_t>> W = sampleIntegerPoint(ViolationPoly);
  if (!W)
    return "";
  const Stmt &Src = P.getStmt(Problem.SrcStmt);
  const Stmt &Dst = P.getStmt(Problem.DstStmt);
  std::string S = "with";
  for (unsigned V = 0; V < Problem.NumParams; ++V)
    S += " " + P.getVarName(V) + "=" + std::to_string((*W)[V]);
  S += ": " + Src.Label + "(";
  for (unsigned K = 0; K < Src.getDepth(); ++K) {
    if (K)
      S += ",";
    S += P.getVarName(Src.LoopVars[K]) + "=" +
         std::to_string((*W)[Problem.SrcOffset + K]);
  }
  S += ") must precede " + Dst.Label + "(";
  for (unsigned K = 0; K < Dst.getDepth(); ++K) {
    if (K)
      S += ",";
    S += P.getVarName(Dst.LoopVars[K]) + "=" +
         std::to_string((*W)[Problem.DstOffset + K]);
  }
  S += ") but its block is touched later";
  return S;
}

const char *shackle::legalityVerdictName(LegalityVerdict V) {
  switch (V) {
  case LegalityVerdict::Legal:
    return "legal";
  case LegalityVerdict::Illegal:
    return "illegal";
  case LegalityVerdict::Unknown:
    return "unknown";
  }
  return "unknown";
}

std::string LegalityResult::summary(const Program &P) const {
  if (Verdict == LegalityVerdict::Legal)
    return "legal";
  if (Verdict == LegalityVerdict::Unknown) {
    std::string S = "unknown (conservatively rejected):";
    for (const Diagnostic &D : Diags)
      S += " [" + D.Message + "]";
    return S;
  }
  std::string S = "illegal:";
  for (const LegalityViolation &V : Violations)
    S += " [" + V.Problem.describe(P) + " runs backwards at block dim b" +
         std::to_string(V.BlockDim + 1) + "]";
  return S;
}

LegalityResult shackle::checkLegality(const Program &P,
                                      const ShackleChain &Chain,
                                      bool FirstViolationOnly,
                                      const SolverBudget &Budget) {
  return checkLegalityFrom(P, Chain, /*SkipBlockDims=*/0, FirstViolationOnly,
                           Budget, nullptr);
}

LegalityResult shackle::checkLegalityFrom(const Program &P,
                                          const ShackleChain &Chain,
                                          unsigned SkipBlockDims,
                                          bool FirstViolationOnly,
                                          const SolverBudget &Budget,
                                          LegalityCheckStats *CheckStats) {
  assert(!Chain.Factors.empty() && "empty shackle chain");
  for (const DataShackle &F : Chain.Factors) {
    assert(F.ShackledRefs.size() == P.getNumStmts() &&
           "shackle must cover every statement");
    (void)F;
  }

  LegalityResult Result;
  unsigned NumBlockDims = Chain.numBlockDims();

  for (DependenceProblem &DP : buildDependenceProblems(P)) {
    const Stmt &Src = P.getStmt(DP.SrcStmt);
    const Stmt &Dst = P.getStmt(DP.DstStmt);

    // Extend the dependence space with the source and target block
    // coordinates.
    Polyhedron Poly = DP.Poly;
    std::vector<unsigned> ZSrc, ZDst;
    for (unsigned I = 0; I < NumBlockDims; ++I)
      ZSrc.push_back(Poly.appendVar("zw" + std::to_string(I + 1)));
    for (unsigned I = 0; I < NumBlockDims; ++I)
      ZDst.push_back(Poly.appendVar("zr" + std::to_string(I + 1)));

    std::vector<int> SrcMap(P.getNumVars(), -1);
    std::vector<int> DstMap(P.getNumVars(), -1);
    for (unsigned V = 0; V < DP.NumParams; ++V)
      SrcMap[V] = DstMap[V] = static_cast<int>(V);
    for (unsigned K = 0; K < Src.getDepth(); ++K)
      SrcMap[Src.LoopVars[K]] = static_cast<int>(DP.SrcOffset + K);
    for (unsigned K = 0; K < Dst.getDepth(); ++K)
      DstMap[Dst.LoopVars[K]] = static_cast<int>(DP.DstOffset + K);

    unsigned Z = 0;
    for (const DataShackle &F : Chain.Factors) {
      for (unsigned Pl = 0; Pl < F.Blocking.Planes.size(); ++Pl, ++Z) {
        addBlockLinkConstraints(Poly, P, F, Pl, DP.SrcStmt, ZSrc[Z], SrcMap);
        addBlockLinkConstraints(Poly, P, F, Pl, DP.DstStmt, ZDst[Z], DstMap);
      }
    }

    // Violation: target block strictly before source block, case split on
    // the first differing coordinate.
    for (unsigned J = 0; J < NumBlockDims; ++J) {
      if (J < SkipBlockDims) {
        // The factor prefix covering this dim is already proven Legal, so
        // the violation system is known Empty: skip the solver.
        if (CheckStats)
          ++CheckStats->QueriesSkipped;
        continue;
      }
      Polyhedron Bad = Poly;
      for (unsigned K = 0; K < J; ++K) {
        ConstraintRow Eq(Bad.getNumVars() + 1, 0);
        Eq[ZSrc[K]] = 1;
        Eq[ZDst[K]] = -1;
        Bad.addEquality(std::move(Eq));
      }
      ConstraintRow Lt(Bad.getNumVars() + 1, 0);
      Lt[ZSrc[J]] = 1;
      Lt[ZDst[J]] = -1;
      Lt.back() = -1; // zdst_J <= zsrc_J - 1.
      Bad.addInequality(std::move(Lt));

      SolverStats Stats;
      if (CheckStats)
        ++CheckStats->QueriesRun;
      FeasVerdict V = isIntegerEmptyBounded(Bad, Budget, &Stats);
      if (V == FeasVerdict::Unknown) {
        // Not proven infeasible: the shackle is no longer provably legal,
        // but keep scanning — a *proven* violation elsewhere is a stronger
        // (and more actionable) answer than Unknown.
        if (Result.Verdict == LegalityVerdict::Legal) {
          Result.Verdict = LegalityVerdict::Unknown;
          Result.Legal = false;
        }
        Diagnostic D(DiagCode::LegalityUnknown,
                     "could not decide legality of " + DP.describe(P) +
                         " at block dim b" + std::to_string(J + 1));
        D.addNote("solver gave up: " + Stats.reasonStr());
        Result.Diags.push_back(std::move(D));
        continue; // Other block dims of this dependence may still violate.
      }
      if (V == FeasVerdict::NonEmpty) {
        Result.Verdict = LegalityVerdict::Illegal;
        Result.Legal = false;
        LegalityViolation Viol;
        Viol.Problem = std::move(DP);
        Viol.BlockDim = J;
        Viol.ViolationPoly = std::move(Bad);
        Result.Violations.push_back(std::move(Viol));
        if (FirstViolationOnly)
          return Result;
        break; // Report each dependence at most once.
      }
    }
  }
  return Result;
}
