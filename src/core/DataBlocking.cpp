//===- DataBlocking.cpp - Cutting planes on a data object -------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "core/DataBlocking.h"

#include <cassert>

using namespace shackle;

DataBlocking DataBlocking::rectangular(unsigned ArrayId,
                                       const std::vector<int64_t> &Sizes) {
  std::vector<unsigned> Order(Sizes.size());
  for (unsigned D = 0; D < Sizes.size(); ++D)
    Order[D] = D;
  return rectangular(ArrayId, Sizes, Order);
}

DataBlocking DataBlocking::rectangular(unsigned ArrayId,
                                       const std::vector<int64_t> &Sizes,
                                       const std::vector<unsigned> &DimOrder) {
  assert(DimOrder.size() == Sizes.size() && "one order entry per dimension");
  DataBlocking B;
  B.ArrayId = ArrayId;
  for (unsigned D : DimOrder) {
    assert(Sizes[D] >= 1 && "block sizes must be positive");
    CuttingPlaneSet S;
    S.Normal.assign(Sizes.size(), 0);
    S.Normal[D] = 1;
    S.BlockSize = Sizes[D];
    B.Planes.push_back(std::move(S));
  }
  return B;
}
