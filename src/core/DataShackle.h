//===- DataShackle.h - Data shackles and their products ---------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's central abstraction. A DataShackle (Definition 1) combines a
/// DataBlocking of one array with, for every statement, one *shackled
/// reference* to that array: when the master walk touches a block, all
/// instances of each statement whose shackled reference lands in the block
/// are executed (in original program order within the block). Statements
/// without a reference to the blocked array are tied to it with a *dummy
/// reference* (Section 5.3).
///
/// A ShackleChain is the Cartesian product M1 x M2 x ... of Section 6: the
/// first factor partitions statement instances, later factors refine the
/// partitions without reordering across them. Products of shackles on
/// different arrays give fully blocked code (e.g. LAPACK-style matrix
/// multiply from shackling C and A), and products of products give
/// multi-level blocking (Section 6.3, Figure 10) with one factor per level
/// of the memory hierarchy.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_CORE_DATASHACKLE_H
#define SHACKLE_CORE_DATASHACKLE_H

#include "core/DataBlocking.h"
#include "ir/Program.h"
#include "polyhedral/Polyhedron.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace shackle {

/// A single data shackle: blocking plus one shackled reference per statement.
struct DataShackle {
  DataBlocking Blocking;
  /// Indexed by statement id. Each reference must target Blocking.ArrayId
  /// and have affine subscripts over the statement's loop variables and the
  /// program parameters. References need not appear textually in the
  /// statement (dummy references are permitted and only influence ordering).
  std::vector<ArrayRef> ShackledRefs;

  /// Builds a shackle that ties every statement through its left-hand-side
  /// (store) reference. All statements must write to \p Blocking's array;
  /// this is the paper's choice for matrix multiplication and Cholesky.
  /// Aborts (fatalError) on a mismatch; user-facing callers should prefer
  /// tryOnStores.
  static DataShackle onStores(const Program &P, DataBlocking Blocking);

  /// Builds a shackle from an explicit per-statement reference choice:
  /// \p RefIndex[s] selects entry i of statement s's refs() list (0 = store,
  /// 1.. = loads in pre-order). Aborts on a mismatch; user-facing callers
  /// should prefer tryOnRefs.
  static DataShackle onRefs(const Program &P, DataBlocking Blocking,
                            const std::vector<unsigned> &RefIndex);

  /// Recoverable variant of onStores: returns a ShackleMismatch diagnostic
  /// naming the offending statement instead of aborting. This is the entry
  /// point for shackles built from end-user input (the CLI's --array flag).
  static Expected<DataShackle> tryOnStores(const Program &P,
                                           DataBlocking Blocking);

  /// Recoverable variant of onRefs; also rejects out-of-range \p RefIndex
  /// entries (the aborting variant asserts on them).
  static Expected<DataShackle> tryOnRefs(const Program &P,
                                         DataBlocking Blocking,
                                         const std::vector<unsigned> &RefIndex);
};

/// A Cartesian product of shackles, outer factors first. A single-element
/// chain is a plain shackle; a multi-level blocking uses one (group of)
/// factor(s) per memory level, largest block sizes first.
struct ShackleChain {
  std::vector<DataShackle> Factors;

  /// Total number of block coordinates contributed by all factors.
  unsigned numBlockDims() const;

  /// Block coordinates contributed by the first \p NumFactors factors -
  /// the task-level prefix of a hierarchical chain. 0 (or any value past
  /// the chain length) means the whole chain, i.e. numBlockDims().
  unsigned numBlockDimsPrefix(unsigned NumFactors) const;

  /// Names for the block coordinate dimensions: b1, b2, ...
  std::vector<std::string> blockDimNames() const;
};

/// Appends, to \p Poly, the constraints linking the block coordinate held in
/// space dimension \p BlockDim to plane \p Plane of \p Factor applied to
/// statement \p S's shackled reference. \p VarDims maps every program
/// variable to its dimension in Poly's space (or -1 if unavailable; such
/// variables must not occur in the reference).
///
/// The constraints are the 0-based form of the paper's blocking map: with
/// e = Normal . ref(indices),   0 <= e - B*z <= B-1   (or with z negated
/// when the plane set is Reversed), i.e. z = floor(e / B).
void addBlockLinkConstraints(Polyhedron &Poly, const Program &P,
                             const DataShackle &Factor, unsigned Plane,
                             unsigned StmtId, unsigned BlockDim,
                             const std::vector<int> &VarDims);

/// Converts an affine expression over program variables into a constraint-row
/// "payload" over a polyhedron space via \p VarDims (every used variable must
/// be mapped). The result has Poly-arity + 1 entries (trailing constant).
ConstraintRow mapAffineToSpace(const AffineExpr &E, const Program &P,
                               const std::vector<int> &VarDims,
                               unsigned SpaceSize);

/// Appends statement \p S's iteration-domain constraints (its enclosing loop
/// bounds) to \p Poly via \p VarDims.
void addDomainConstraints(Polyhedron &Poly, const Program &P, const Stmt &S,
                          const std::vector<int> &VarDims);

/// Appends the parameter context (each parameter >= its declared minimum).
void addParamContext(Polyhedron &Poly, const Program &P,
                     const std::vector<int> &VarDims);

/// Renders a human-readable description of a shackle chain, e.g.
/// "block A 64x64 (cols,rows): S1=A[J,J] S2=A[I,J] S3=A[L,K]".
std::string describeChain(const Program &P, const ShackleChain &Chain);

} // namespace shackle

#endif // SHACKLE_CORE_DATASHACKLE_H
