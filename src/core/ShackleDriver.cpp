//===- ShackleDriver.cpp - Shackled code generation driver -------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "core/ShackleDriver.h"

#include "codegen/Scanner.h"
#include "support/ErrorHandling.h"

#include <cassert>

using namespace shackle;

namespace {

/// Converts an affine expression over program variables into one over a dim
/// space via \p VarDims (asserting every used variable is mapped).
AffineExpr remapExpr(const AffineExpr &E, const Program &P,
                     const std::vector<int> &VarDims, unsigned NumDims) {
  AffineExpr R = AffineExpr::constant(NumDims, E.getConstant());
  for (unsigned V = 0; V < P.getNumVars(); ++V) {
    int64_t C = E.getCoeff(V);
    if (C == 0)
      continue;
    assert(VarDims[V] >= 0 && "variable not mapped");
    R.setCoeff(VarDims[V], C);
  }
  return R;
}

BoundExpr plainBound(AffineExpr E) {
  BoundExpr B;
  B.Expr = std::move(E);
  return B;
}

/// Computes the affine range [EMin, EMax] of Normal . index over the array's
/// index box [0, extent-1]^rank.
void planeRange(const Program &P, const DataBlocking &Blocking, unsigned Plane,
                const std::vector<int> &ParamDims, unsigned NumDims,
                AffineExpr &EMin, AffineExpr &EMax) {
  const ArrayDecl &A = P.getArray(Blocking.ArrayId);
  const CuttingPlaneSet &PS = Blocking.Planes[Plane];
  EMin = AffineExpr::constant(NumDims, 0);
  EMax = AffineExpr::constant(NumDims, 0);
  for (unsigned D = 0; D < PS.Normal.size(); ++D) {
    int64_t C = PS.Normal[D];
    if (C == 0)
      continue;
    AffineExpr Hi =
        remapExpr(A.Extents[D] - 1, P, ParamDims, NumDims) * C;
    if (C > 0)
      EMax = EMax + Hi;
    else
      EMin = EMin + Hi;
  }
}

//===----------------------------------------------------------------------===//
// Original code
//===----------------------------------------------------------------------===//

void lowerBody(const std::vector<Node> &Body, const Program &P,
               std::vector<ASTNodePtr> &Out, unsigned DimShift) {
  for (const Node &N : Body) {
    if (N.isLoop()) {
      const Loop &L = *N.L;
      ASTNodePtr Ast = ASTNode::makeLoop(L.Var + DimShift);
      unsigned NumDims = P.getNumVars() + DimShift;
      std::vector<int> Map(P.getNumVars());
      for (unsigned V = 0; V < P.getNumVars(); ++V)
        Map[V] = static_cast<int>(
            P.getVarKind(V) == VarKind::Param ? V : V + DimShift);
      for (const AffineExpr &Lb : L.LowerBounds)
        Ast->Lbs.push_back(plainBound(remapExpr(Lb, P, Map, NumDims)));
      for (const AffineExpr &Ub : L.UpperBounds)
        Ast->Ubs.push_back(plainBound(remapExpr(Ub, P, Map, NumDims)));
      lowerBody(L.Body, P, Ast->Body, DimShift);
      Out.push_back(std::move(Ast));
    } else {
      std::vector<unsigned> VarMap;
      for (unsigned V : N.S->LoopVars)
        VarMap.push_back(V + DimShift);
      Out.push_back(ASTNode::makeInstance(N.S, std::move(VarMap)));
    }
  }
}

} // namespace

LoopNest shackle::generateOriginalCode(const Program &P) {
  assert(P.isFinalized() && "program must be finalized");
  LoopNest Nest;
  Nest.Prog = &P;
  Nest.NumDims = P.getNumVars();
  Nest.NumParams = P.getNumParams();
  Nest.DimNames = P.getVarNames();
  lowerBody(P.topLevel(), P, Nest.Roots, /*DimShift=*/0);
  return Nest;
}

//===----------------------------------------------------------------------===//
// Naive (Figure 5) code
//===----------------------------------------------------------------------===//

LoopNest shackle::generateNaiveShackledCode(const Program &P,
                                            const ShackleChain &Chain) {
  assert(P.isFinalized() && "program must be finalized");
  unsigned NumParams = P.getNumParams();
  unsigned M = Chain.numBlockDims();
  unsigned NumDims = NumParams + M + (P.getNumVars() - NumParams);

  LoopNest Nest;
  Nest.Prog = &P;
  Nest.NumDims = NumDims;
  Nest.NumParams = NumParams;
  for (unsigned V = 0; V < NumParams; ++V)
    Nest.DimNames.push_back(P.getVarName(V));
  for (const std::string &BN : Chain.blockDimNames())
    Nest.DimNames.push_back(BN);
  for (unsigned V = NumParams; V < P.getNumVars(); ++V)
    Nest.DimNames.push_back(P.getVarName(V));

  // Program variable -> dim: params unchanged, loop vars shifted past the
  // block dims.
  std::vector<int> VarDims(P.getNumVars());
  for (unsigned V = 0; V < P.getNumVars(); ++V)
    VarDims[V] = static_cast<int>(V < NumParams ? V : V + M);
  std::vector<int> ParamDims = VarDims;

  // Lower the original program; DimShift applies to loop vars only.
  std::vector<ASTNodePtr> Inner;
  lowerBody(P.topLevel(), P, Inner, /*DimShift=*/M);

  // Wrap every statement instance with its block-membership guards.
  struct GuardAdder {
    const Program &P;
    const ShackleChain &Chain;
    const std::vector<int> &VarDims;
    unsigned NumParams, NumDims;

    void run(std::vector<ASTNodePtr> &Body) {
      for (ASTNodePtr &N : Body) {
        if (N->Kind != ASTKind::Instance) {
          run(N->Body);
          continue;
        }
        ASTNodePtr If = ASTNode::makeIf();
        unsigned Z = NumParams;
        for (const DataShackle &F : Chain.Factors) {
          for (unsigned Pl = 0; Pl < F.Blocking.Planes.size(); ++Pl, ++Z) {
            // Reuse the polyhedral constraint builder on a scratch set.
            Polyhedron Scratch(NumDims);
            addBlockLinkConstraints(Scratch, P, F, Pl, N->S->Id, Z, VarDims);
            for (const ConstraintRow &Row : Scratch.inequalities())
              If->IneqConds.push_back(Row);
          }
        }
        If->Body.push_back(std::move(N));
        N = std::move(If);
      }
    }
  };
  GuardAdder{P, Chain, VarDims, NumParams, NumDims}.run(Inner);

  // Block-enumeration loops outside.
  unsigned Z = NumParams + M;
  std::vector<ASTNodePtr> Current = std::move(Inner);
  for (unsigned FI = Chain.Factors.size(); FI-- > 0;) {
    const DataShackle &F = Chain.Factors[FI];
    for (unsigned Pl = F.Blocking.Planes.size(); Pl-- > 0;) {
      --Z;
      const CuttingPlaneSet &PS = F.Blocking.Planes[Pl];
      AffineExpr EMin, EMax;
      planeRange(P, F.Blocking, Pl, ParamDims, NumDims, EMin, EMax);
      ASTNodePtr Loop = ASTNode::makeLoop(Z);
      if (!PS.Reversed) {
        // floor(EMin/B) .. floor(EMax/B).
        BoundExpr Lb;
        Lb.Expr = EMin;
        Lb.Divisor = PS.BlockSize;
        Loop->Lbs.push_back(std::move(Lb));
        BoundExpr Ub;
        Ub.Expr = EMax;
        Ub.Divisor = PS.BlockSize;
        Loop->Ubs.push_back(std::move(Ub));
      } else {
        // z = -floor(e/B): range ceil(-EMax/B) .. ceil(-EMin/B).
        BoundExpr Lb;
        Lb.Expr = EMax * -1;
        Lb.Divisor = PS.BlockSize;
        Lb.IsCeil = true;
        Loop->Lbs.push_back(std::move(Lb));
        BoundExpr Ub;
        Ub.Expr = EMin * -1;
        Ub.Divisor = PS.BlockSize;
        Ub.IsCeil = true;
        Loop->Ubs.push_back(std::move(Ub));
      }
      Loop->Body = std::move(Current);
      Current.clear();
      Current.push_back(std::move(Loop));
    }
  }
  Nest.Roots = std::move(Current);
  return Nest;
}

//===----------------------------------------------------------------------===//
// Simplified (scanner) code
//===----------------------------------------------------------------------===//

Expected<LoopNest> shackle::generateShackledCodeChecked(
    const Program &P, const ShackleChain &Chain) {
  assert(P.isFinalized() && "program must be finalized");
  unsigned NumParams = P.getNumParams();
  unsigned M = Chain.numBlockDims();

  unsigned MaxDepth = 0;
  for (unsigned Id = 0; Id < P.getNumStmts(); ++Id)
    MaxDepth = std::max(MaxDepth, P.getStmt(Id).getDepth());

  // Scan space: [params][b1..bM][c0, t1, c1, ..., tD, cD].
  ScanSpace Space;
  Space.NumParams = NumParams;
  for (unsigned V = 0; V < NumParams; ++V) {
    Space.DimNames.push_back(P.getVarName(V));
    Space.IsSchedule.push_back(false);
  }
  for (const std::string &BN : Chain.blockDimNames()) {
    Space.DimNames.push_back(BN);
    Space.IsSchedule.push_back(false);
  }
  unsigned SchedBase = NumParams + M;
  Space.DimNames.push_back("c0");
  Space.IsSchedule.push_back(true);
  for (unsigned K = 1; K <= MaxDepth; ++K) {
    Space.DimNames.push_back("t" + std::to_string(K));
    Space.IsSchedule.push_back(false);
    Space.DimNames.push_back("c" + std::to_string(K));
    Space.IsSchedule.push_back(true);
  }
  unsigned NumDims = Space.numDims();
  auto TDim = [&](unsigned K) { return SchedBase + 2 * K - 1; }; // K >= 1.
  auto CDim = [&](unsigned J) { return SchedBase + 2 * J; };

  std::vector<ScanItem> Items;
  for (unsigned Id = 0; Id < P.getNumStmts(); ++Id) {
    const Stmt &S = P.getStmt(Id);
    unsigned D = S.getDepth();

    std::vector<int> VarDims(P.getNumVars(), -1);
    for (unsigned V = 0; V < NumParams; ++V)
      VarDims[V] = static_cast<int>(V);
    for (unsigned K = 0; K < D; ++K)
      VarDims[S.LoopVars[K]] = static_cast<int>(TDim(K + 1));

    Polyhedron Dom(Space.DimNames);
    addParamContext(Dom, P, VarDims);
    addDomainConstraints(Dom, P, S, VarDims);

    // Schedule positions, plus zero padding beyond this statement's depth.
    for (unsigned J = 0; J <= MaxDepth; ++J) {
      ConstraintRow Eq(NumDims + 1, 0);
      Eq[CDim(J)] = 1;
      Eq.back() = J < S.Schedule.size()
                      ? -static_cast<int64_t>(S.Schedule[J])
                      : 0;
      Dom.addEquality(std::move(Eq));
    }
    for (unsigned K = D + 1; K <= MaxDepth; ++K) {
      ConstraintRow Eq(NumDims + 1, 0);
      Eq[TDim(K)] = 1;
      Dom.addEquality(std::move(Eq));
    }

    // Block coordinates through the shackled references.
    unsigned Z = NumParams;
    for (const DataShackle &F : Chain.Factors)
      for (unsigned Pl = 0; Pl < F.Blocking.Planes.size(); ++Pl, ++Z)
        addBlockLinkConstraints(Dom, P, F, Pl, Id, Z, VarDims);

    ScanItem Item;
    Item.Domain = std::move(Dom);
    Item.S = &S;
    for (unsigned K = 0; K < D; ++K)
      Item.VarMap.push_back(TDim(K + 1));
    Items.push_back(std::move(Item));
  }

  Polyhedron Context(Space.DimNames);
  std::vector<int> ParamOnly(P.getNumVars(), -1);
  for (unsigned V = 0; V < NumParams; ++V)
    ParamOnly[V] = static_cast<int>(V);
  addParamContext(Context, P, ParamOnly);

  Expected<LoopNest> Nest =
      scanPolyhedraChecked(Space, std::move(Items), P, Context);
  if (!Nest.ok())
    return Nest.takeDiagnostic();
  pruneUnusedLets(Nest.get());
  return std::move(Nest.get());
}

LoopNest shackle::generateShackledCode(const Program &P,
                                       const ShackleChain &Chain) {
  Expected<LoopNest> Nest = generateShackledCodeChecked(P, Chain);
  if (!Nest.ok())
    fatalError(Nest.diagnostic().Message.c_str());
  return std::move(Nest.get());
}

//===----------------------------------------------------------------------===//
// Fault-tolerant pipeline
//===----------------------------------------------------------------------===//

const char *shackle::codegenTierName(CodegenTier Tier) {
  switch (Tier) {
  case CodegenTier::Shackled:
    return "shackled";
  case CodegenTier::Naive:
    return "naive";
  case CodegenTier::Original:
    return "original";
  }
  return "original";
}

CodegenResult shackle::generateCodeWithFallback(const Program &P,
                                                const ShackleChain &Chain,
                                                const SolverBudget &Budget) {
  return generateCodeWithFallback(P, Chain, Budget, FallbackLegalityOptions());
}

CodegenResult
shackle::generateCodeWithFallback(const Program &P, const ShackleChain &Chain,
                                  const SolverBudget &Budget,
                                  const FallbackLegalityOptions &LegOpts) {
  CodegenResult R;
  if (LegOpts.KnownIllegal) {
    // A cached proof of illegality: no query can overturn it, so skip the
    // solver and take the original-order fallback directly.
    R.Legality.Verdict = LegalityVerdict::Illegal;
    R.Legality.Legal = false;
  } else {
    R.Legality =
        checkLegalityFrom(P, Chain, LegOpts.SkipBlockDims,
                          /*FirstViolationOnly=*/true, Budget, LegOpts.Stats);
  }
  R.Diags = R.Legality.Diags;

  if (R.Legality.Verdict != LegalityVerdict::Legal) {
    // The naive tier reorders execution exactly like the shackled tier, so
    // neither is safe without a proven-legal shackle: run the original.
    R.Tier = CodegenTier::Original;
    R.Nest = generateOriginalCode(P);
    if (R.Legality.Verdict == LegalityVerdict::Illegal) {
      Diagnostic D(DiagCode::ShackleIllegal,
                   "shackle is illegal: " + R.Legality.summary(P), {},
                   Severity::Warning);
      D.addNote("falling back to original (untransformed) code");
      R.Diags.push_back(std::move(D));
    } else {
      Diagnostic D(DiagCode::LegalityUnknown,
                   "legality undecided within solver budget; "
                   "conservatively rejecting the shackle",
                   {}, Severity::Warning);
      D.addNote("falling back to original (untransformed) code");
      R.Diags.push_back(std::move(D));
    }
    return R;
  }

  Expected<LoopNest> Shackled = generateShackledCodeChecked(P, Chain);
  if (Shackled.ok()) {
    R.Tier = CodegenTier::Shackled;
    R.Nest = std::move(Shackled.get());
    return R;
  }

  // The shackle is legal but the scanner could not produce simplified code:
  // the Figure-5 guards compute the same blocked order without polyhedral
  // machinery.
  Diagnostic D = Shackled.takeDiagnostic();
  D.Sev = Severity::Warning;
  D.addNote("falling back to naive (Figure 5) blocked code");
  R.Diags.push_back(std::move(D));
  R.Tier = CodegenTier::Naive;
  R.Nest = generateNaiveShackledCode(P, Chain);
  return R;
}
