//===- ShackleDriver.h - Shackled code generation driver --------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the pipeline: given a source Program and a (chain of) data
/// shackle(s), produce executable blocked code. Three entry points mirror the
/// paper:
///
///  * generateOriginalCode — the untransformed program as a LoopNest, so the
///    same interpreter/emitter back ends run the baseline.
///  * generateNaiveShackledCode — the paper's Figure 5: enumerate blocks,
///    re-run the whole original iteration space under affine guards that
///    filter instances into the current block ("runtime resolution" code).
///  * generateShackledCode — the paper's Figures 6/7/10: the same semantics
///    fed through the polyhedral scanner, which turns guards into loop
///    bounds, splits index sets, and sorts the pieces.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_CORE_SHACKLEDRIVER_H
#define SHACKLE_CORE_SHACKLEDRIVER_H

#include "codegen/LoopAST.h"
#include "core/DataShackle.h"
#include "core/Legality.h"
#include "ir/Program.h"
#include "support/Diagnostics.h"

#include <vector>

namespace shackle {

/// Lowers the unmodified program into a LoopNest (dims: params, then one per
/// source loop in pre-order).
LoopNest generateOriginalCode(const Program &P);

/// Figure-5 style code: block loops outside, the original program inside,
/// each statement guarded by "its shackled reference falls in the current
/// block". No polyhedral simplification.
LoopNest generateNaiveShackledCode(const Program &P, const ShackleChain &C);

/// Fully simplified blocked code via the polyhedral scanner. The caller is
/// responsible for having checked legality. Aborts if the scanner fails;
/// callers with user-provided input should use generateShackledCodeChecked
/// or generateCodeWithFallback.
LoopNest generateShackledCode(const Program &P, const ShackleChain &C);

/// Recoverable variant of generateShackledCode: a scanner failure comes back
/// as a ScanFailed diagnostic instead of aborting. Legality is still the
/// caller's responsibility.
Expected<LoopNest> generateShackledCodeChecked(const Program &P,
                                               const ShackleChain &C);

/// Which code generator ultimately produced a CodegenResult's nest. Ordered
/// best-first: each tier is the fallback for the one before it.
enum class CodegenTier {
  Shackled, ///< Scanner-simplified blocked code (Figures 6/7/10).
  Naive,    ///< Figure-5 guards; blocked semantics, no simplification.
  Original, ///< Untransformed program order; always safe.
};

const char *codegenTierName(CodegenTier Tier);

/// Outcome of the fault-tolerant pipeline.
struct CodegenResult {
  LoopNest Nest;
  CodegenTier Tier = CodegenTier::Shackled;
  /// The legality verdict that gated the transformation.
  LegalityResult Legality;
  /// Why the pipeline degraded, if it did (warnings, outermost first), plus
  /// any LegalityUnknown diagnostics from the checker.
  std::vector<Diagnostic> Diags;

  /// True when the result uses the blocked execution order (Shackled or
  /// Naive tier).
  bool isBlocked() const { return Tier != CodegenTier::Original; }
};

/// The fault-tolerant pipeline: checks legality under \p Budget, then
/// degrades through the tiers. A Legal verdict tries the scanner and falls
/// back to naive (Figure 5) blocked code if the scan fails; an Illegal or
/// Unknown verdict falls back to the original program order (the naive code
/// also reorders, so it is only safe when the shackle is proven legal).
/// Never aborts on user-triggerable failures.
CodegenResult generateCodeWithFallback(const Program &P,
                                       const ShackleChain &C,
                                       const SolverBudget &Budget = SolverBudget());

/// Options for the legality step of generateCodeWithFallback, used by the
/// plan-cache service to reuse cached per-factor verdicts.
struct FallbackLegalityOptions {
  /// Skip violation queries for block dims below this bound. Sound only when
  /// the factor prefix covering those dims is already proven Legal for this
  /// program (see checkLegalityFrom).
  unsigned SkipBlockDims = 0;
  /// The chain is already *proven* Illegal for this program (cached
  /// verdict): skip the solver entirely and fall straight back to the
  /// original program order.
  bool KnownIllegal = false;
  /// When non-null, receives run/skipped query counts.
  LegalityCheckStats *Stats = nullptr;
};

/// generateCodeWithFallback with cached-verdict reuse: identical pipeline,
/// but the legality check may skip already-proven block dims.
CodegenResult generateCodeWithFallback(const Program &P, const ShackleChain &C,
                                       const SolverBudget &Budget,
                                       const FallbackLegalityOptions &LegOpts);

} // namespace shackle

#endif // SHACKLE_CORE_SHACKLEDRIVER_H
