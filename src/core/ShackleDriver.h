//===- ShackleDriver.h - Shackled code generation driver --------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top of the pipeline: given a source Program and a (chain of) data
/// shackle(s), produce executable blocked code. Three entry points mirror the
/// paper:
///
///  * generateOriginalCode — the untransformed program as a LoopNest, so the
///    same interpreter/emitter back ends run the baseline.
///  * generateNaiveShackledCode — the paper's Figure 5: enumerate blocks,
///    re-run the whole original iteration space under affine guards that
///    filter instances into the current block ("runtime resolution" code).
///  * generateShackledCode — the paper's Figures 6/7/10: the same semantics
///    fed through the polyhedral scanner, which turns guards into loop
///    bounds, splits index sets, and sorts the pieces.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_CORE_SHACKLEDRIVER_H
#define SHACKLE_CORE_SHACKLEDRIVER_H

#include "codegen/LoopAST.h"
#include "core/DataShackle.h"
#include "ir/Program.h"

namespace shackle {

/// Lowers the unmodified program into a LoopNest (dims: params, then one per
/// source loop in pre-order).
LoopNest generateOriginalCode(const Program &P);

/// Figure-5 style code: block loops outside, the original program inside,
/// each statement guarded by "its shackled reference falls in the current
/// block". No polyhedral simplification.
LoopNest generateNaiveShackledCode(const Program &P, const ShackleChain &C);

/// Fully simplified blocked code via the polyhedral scanner. The caller is
/// responsible for having checked legality.
LoopNest generateShackledCode(const Program &P, const ShackleChain &C);

} // namespace shackle

#endif // SHACKLE_CORE_SHACKLEDRIVER_H
