//===- DataShackle.cpp - Data shackles and their products -------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "core/DataShackle.h"

#include "support/ErrorHandling.h"

#include <cassert>

using namespace shackle;

DataShackle DataShackle::onStores(const Program &P, DataBlocking Blocking) {
  Expected<DataShackle> S = tryOnStores(P, std::move(Blocking));
  if (!S.ok())
    fatalError(S.diagnostic().Message.c_str());
  return std::move(S.get());
}

DataShackle DataShackle::onRefs(const Program &P, DataBlocking Blocking,
                                const std::vector<unsigned> &RefIndex) {
  assert(RefIndex.size() == P.getNumStmts() &&
         "need one reference choice per statement");
  Expected<DataShackle> S = tryOnRefs(P, std::move(Blocking), RefIndex);
  if (!S.ok())
    fatalError(S.diagnostic().Message.c_str());
  return std::move(S.get());
}

Expected<DataShackle> DataShackle::tryOnStores(const Program &P,
                                               DataBlocking Blocking) {
  DataShackle S;
  S.Blocking = std::move(Blocking);
  for (unsigned Id = 0; Id < P.getNumStmts(); ++Id) {
    const Stmt &St = P.getStmt(Id);
    if (St.LHS.ArrayId != S.Blocking.ArrayId)
      return Status::error(
          DiagCode::ShackleMismatch,
          "onStores: statement " + St.Label +
              " does not store to the blocked array " +
              P.getArray(S.Blocking.ArrayId).Name +
              "; use onRefs with an explicit (or dummy) reference");
    S.ShackledRefs.push_back(St.LHS);
  }
  return S;
}

Expected<DataShackle> DataShackle::tryOnRefs(
    const Program &P, DataBlocking Blocking,
    const std::vector<unsigned> &RefIndex) {
  DataShackle S;
  S.Blocking = std::move(Blocking);
  if (RefIndex.size() != P.getNumStmts())
    return Status::error(DiagCode::ShackleMismatch,
                         "onRefs: need one reference choice per statement (" +
                             std::to_string(RefIndex.size()) + " given, " +
                             std::to_string(P.getNumStmts()) + " needed)");
  for (unsigned Id = 0; Id < P.getNumStmts(); ++Id) {
    const Stmt &St = P.getStmt(Id);
    auto Refs = St.refs();
    if (RefIndex[Id] >= Refs.size())
      return Status::error(DiagCode::ShackleMismatch,
                           "onRefs: reference index " +
                               std::to_string(RefIndex[Id]) +
                               " out of range for statement " + St.Label +
                               " (" + std::to_string(Refs.size()) +
                               " references)");
    const ArrayRef &R = *Refs[RefIndex[Id]].first;
    if (R.ArrayId != S.Blocking.ArrayId)
      return Status::error(
          DiagCode::ShackleMismatch,
          "onRefs: chosen reference of statement " + St.Label +
              " does not target the blocked array " +
              P.getArray(S.Blocking.ArrayId).Name);
    S.ShackledRefs.push_back(R);
  }
  return S;
}

unsigned ShackleChain::numBlockDims() const {
  unsigned Total = 0;
  for (const DataShackle &F : Factors)
    Total += F.Blocking.Planes.size();
  return Total;
}

unsigned ShackleChain::numBlockDimsPrefix(unsigned NumFactors) const {
  if (NumFactors == 0 || NumFactors > Factors.size())
    NumFactors = Factors.size();
  unsigned Total = 0;
  for (unsigned I = 0; I < NumFactors; ++I)
    Total += Factors[I].Blocking.Planes.size();
  return Total;
}

std::vector<std::string> ShackleChain::blockDimNames() const {
  std::vector<std::string> Names;
  for (unsigned I = 0, E = numBlockDims(); I < E; ++I)
    Names.push_back("b" + std::to_string(I + 1));
  return Names;
}

ConstraintRow shackle::mapAffineToSpace(const AffineExpr &E, const Program &P,
                                        const std::vector<int> &VarDims,
                                        unsigned SpaceSize) {
  ConstraintRow Row(SpaceSize + 1, 0);
  for (unsigned V = 0; V < P.getNumVars(); ++V) {
    int64_t C = E.getCoeff(V);
    if (C == 0)
      continue;
    if (VarDims[V] < 0)
      fatalError("affine expression uses a variable not present in the "
                 "target space");
    Row[VarDims[V]] += C;
  }
  Row[SpaceSize] = E.getConstant();
  return Row;
}

void shackle::addBlockLinkConstraints(Polyhedron &Poly, const Program &P,
                                      const DataShackle &Factor,
                                      unsigned Plane, unsigned StmtId,
                                      unsigned BlockDim,
                                      const std::vector<int> &VarDims) {
  const CuttingPlaneSet &PS = Factor.Blocking.Planes[Plane];
  const ArrayRef &Ref = Factor.ShackledRefs[StmtId];
  assert(PS.Normal.size() == Ref.Indices.size() &&
         "cutting plane normal arity mismatch");

  // e = Normal . indices, as an affine expression over program variables.
  AffineExpr E = AffineExpr::constant(P.getNumVars(), 0);
  for (unsigned D = 0; D < PS.Normal.size(); ++D)
    if (PS.Normal[D] != 0)
      E = E + Ref.Indices[D] * PS.Normal[D];

  ConstraintRow ERow = mapAffineToSpace(E, P, VarDims, Poly.getNumVars());
  int64_t B = PS.BlockSize;
  int64_t ZSign = PS.Reversed ? -1 : 1;

  // 0 <= e - B * (ZSign * z) <= B - 1.
  ConstraintRow Lo = ERow;
  Lo[BlockDim] -= B * ZSign;
  ConstraintRow Hi(Poly.getNumVars() + 1, 0);
  for (unsigned I = 0; I <= Poly.getNumVars(); ++I)
    Hi[I] = -Lo[I];
  Hi.back() += B - 1;
  Poly.addInequality(std::move(Lo));
  Poly.addInequality(std::move(Hi));
}

void shackle::addDomainConstraints(Polyhedron &Poly, const Program &P,
                                   const Stmt &S,
                                   const std::vector<int> &VarDims) {
  for (unsigned K = 0; K < S.LoopVars.size(); ++K) {
    const Loop &L = P.getLoopForVar(S.LoopVars[K]);
    int VDim = VarDims[S.LoopVars[K]];
    assert(VDim >= 0 && "loop variable not mapped into the space");
    for (const AffineExpr &Lb : L.LowerBounds) {
      // v - lb >= 0.
      ConstraintRow Row =
          mapAffineToSpace(Lb * -1, P, VarDims, Poly.getNumVars());
      Row[VDim] += 1;
      Poly.addInequality(std::move(Row));
    }
    for (const AffineExpr &Ub : L.UpperBounds) {
      // ub - v >= 0.
      ConstraintRow Row = mapAffineToSpace(Ub, P, VarDims, Poly.getNumVars());
      Row[VDim] -= 1;
      Poly.addInequality(std::move(Row));
    }
  }
}

std::string shackle::describeChain(const Program &P,
                                   const ShackleChain &Chain) {
  std::string Out;
  for (unsigned FI = 0; FI < Chain.Factors.size(); ++FI) {
    const DataShackle &F = Chain.Factors[FI];
    if (FI)
      Out += " x ";
    Out += "block " + P.getArray(F.Blocking.ArrayId).Name + " ";
    for (unsigned Pl = 0; Pl < F.Blocking.Planes.size(); ++Pl) {
      const CuttingPlaneSet &PS = F.Blocking.Planes[Pl];
      if (Pl)
        Out += "x";
      Out += std::to_string(PS.BlockSize);
      if (PS.Reversed)
        Out += "r";
    }
    Out += " (";
    for (unsigned Pl = 0; Pl < F.Blocking.Planes.size(); ++Pl) {
      const CuttingPlaneSet &PS = F.Blocking.Planes[Pl];
      if (Pl)
        Out += ",";
      std::string Normal;
      bool Axis = false;
      for (unsigned D = 0; D < PS.Normal.size(); ++D) {
        if (PS.Normal[D] == 0)
          continue;
        if (!Normal.empty())
          Axis = false;
        else
          Axis = PS.Normal[D] == 1;
        if (!Normal.empty())
          Normal += "+";
        if (PS.Normal[D] != 1)
          Normal += std::to_string(PS.Normal[D]) + "*";
        Normal += "d" + std::to_string(D);
      }
      if (Axis && Normal == "d0")
        Out += "rows";
      else if (Axis && Normal == "d1")
        Out += "cols";
      else
        Out += Normal;
    }
    Out += "):";
    for (unsigned Id = 0; Id < F.ShackledRefs.size(); ++Id) {
      const ArrayRef &R = F.ShackledRefs[Id];
      Out += " " + P.getStmt(Id).Label + "=" +
             P.getArray(R.ArrayId).Name + "[";
      for (unsigned D = 0; D < R.Indices.size(); ++D) {
        if (D)
          Out += ",";
        Out += R.Indices[D].str(P.getVarNames());
      }
      Out += "]";
    }
  }
  return Out;
}

void shackle::addParamContext(Polyhedron &Poly, const Program &P,
                              const std::vector<int> &VarDims) {
  for (unsigned V = 0; V < P.getNumParams(); ++V) {
    if (VarDims[V] < 0)
      continue;
    ConstraintRow Row(Poly.getNumVars() + 1, 0);
    Row[VarDims[V]] = 1;
    Row.back() = -P.getParamMin(V);
    Poly.addInequality(std::move(Row));
  }
}
