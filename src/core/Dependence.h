//===- Dependence.h - Exact dependence problems ------------------*- C++ -*-=//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the integer linear systems whose feasibility decides whether a
/// dependence exists between two statement instances, exactly as in the
/// paper's Section 5 example (system (1)): same array element, both
/// instances inside their loop bounds, and the source executing strictly
/// before the target in *original program order*. Because shackling applies
/// to imperfectly nested loops, program order is encoded level by level
/// against the statements' 2d+1 schedules rather than with
/// distance/direction abstractions.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_CORE_DEPENDENCE_H
#define SHACKLE_CORE_DEPENDENCE_H

#include "ir/Program.h"
#include "polyhedral/Polyhedron.h"

#include <string>
#include <vector>

namespace shackle {

enum class DependenceKind { Flow, Anti, Output };

/// One conjunctive dependence problem: a pair of references, and the
/// polyhedron over [params][source instance][target instance] whose integer
/// points are the dependent instance pairs ordered at a particular common
/// loop level (or textually, at Level == common nesting depth).
struct DependenceProblem {
  unsigned SrcStmt = 0, DstStmt = 0;
  unsigned SrcRefIdx = 0, DstRefIdx = 0; ///< Indices into Stmt::refs().
  DependenceKind Kind = DependenceKind::Flow;
  /// Loop level carrying the order constraint; equal to the common nesting
  /// depth for the textual-order case.
  unsigned Level = 0;
  Polyhedron Poly;
  unsigned NumParams = 0;
  unsigned SrcOffset = 0; ///< First dim of the source instance variables.
  unsigned DstOffset = 0; ///< First dim of the target instance variables.

  std::string describe(const Program &P) const;
};

/// Builds every conjunctive dependence problem of \p P: all pairs of
/// references to a common array where at least one reference writes,
/// split by ordering level. Problems are not pre-filtered for feasibility;
/// callers intersect them with further constraints (legality) or test them
/// directly (dependence existence).
std::vector<DependenceProblem> buildDependenceProblems(const Program &P);

/// Convenience: true iff any dependence problem between the two statements
/// is feasible.
bool dependenceExists(const Program &P, unsigned SrcStmt, unsigned DstStmt);

/// Direction signs a dependence can take at one common loop level.
struct DirectionSet {
  bool Lt = false; ///< src iteration < dst iteration (carried forward).
  bool Eq = false; ///< equal (loop-independent at this level).
  bool Gt = false; ///< src iteration > dst iteration.

  char symbol() const {
    if (Lt && Eq && Gt)
      return '*';
    if (Lt && Eq)
      return '-'; // <=
    if (Lt)
      return '<';
    if (Eq && Gt)
      return '+'; // >=
    if (Gt)
      return '>';
    if (Eq)
      return '=';
    return '0';
  }
};

/// A per-statement-pair, per-reference-pair dependence summarized as a
/// classic direction vector over the common loops (computed exactly: one
/// integer feasibility test per level per sign).
struct DependenceSummary {
  unsigned SrcStmt = 0, DstStmt = 0;
  unsigned SrcRefIdx = 0, DstRefIdx = 0;
  DependenceKind Kind = DependenceKind::Flow;
  /// One entry per common loop, outermost first. Only directions realized
  /// by some pair of *dependent, program-ordered* instances are set.
  std::vector<DirectionSet> Directions;
  /// True if the dependence also occurs with all common loop variables
  /// equal (decided by textual order).
  bool LoopIndependent = false;

  /// E.g. "flow S2 -> S3 (=,<)".
  std::string str(const Program &P) const;
};

/// Computes exact direction vectors for every feasible dependence of \p P.
/// Infeasible reference pairs are omitted.
std::vector<DependenceSummary> summarizeDependences(const Program &P);

} // namespace shackle

#endif // SHACKLE_CORE_DEPENDENCE_H
