//===- Legality.h - Shackle legality checking (Theorem 1) -------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's Theorem 1: a data shackle (or Cartesian product of
/// shackles) is legal iff for every dependence (S1,u) -> (S2,s), the block
/// coordinates assigned to the target are not lexicographically before the
/// block coordinates assigned to the source. For each dependence problem and
/// each possible "first differing block coordinate" we form the conjunction
///
///   {dependence exists} /\ {M(S2,s) <lex M(S1,u)}
///
/// and ask the Omega test for an integer point; any solution is a
/// counterexample and the shackle is rejected. The problem size parameters
/// stay symbolic, so legality holds for every N.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_CORE_LEGALITY_H
#define SHACKLE_CORE_LEGALITY_H

#include "core/DataShackle.h"
#include "core/Dependence.h"
#include "ir/Program.h"

#include <string>
#include <vector>

namespace shackle {

/// A dependence that the shackle would execute backwards.
struct LegalityViolation {
  DependenceProblem Problem;
  /// Index of the block coordinate that runs backwards first.
  unsigned BlockDim = 0;
  /// The full violation system: dependence /\ block links /\ "target block
  /// strictly before source block". Feasible by construction.
  Polyhedron ViolationPoly;

  /// Extracts and formats a concrete counterexample: parameter values and
  /// the two statement instances the shackle would reorder. Returns an
  /// empty string if no witness is found within the search box (should not
  /// happen for real violations).
  std::string witnessStr(const Program &P) const;
};

struct LegalityResult {
  bool Legal = true;
  std::vector<LegalityViolation> Violations;

  std::string summary(const Program &P) const;
};

/// Checks \p Chain against every dependence of \p P. With
/// \p FirstViolationOnly (the default) the check stops at the first
/// counterexample; otherwise all violated dependences are reported.
LegalityResult checkLegality(const Program &P, const ShackleChain &Chain,
                             bool FirstViolationOnly = true);

} // namespace shackle

#endif // SHACKLE_CORE_LEGALITY_H
