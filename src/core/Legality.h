//===- Legality.h - Shackle legality checking (Theorem 1) -------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements the paper's Theorem 1: a data shackle (or Cartesian product of
/// shackles) is legal iff for every dependence (S1,u) -> (S2,s), the block
/// coordinates assigned to the target are not lexicographically before the
/// block coordinates assigned to the source. For each dependence problem and
/// each possible "first differing block coordinate" we form the conjunction
///
///   {dependence exists} /\ {M(S2,s) <lex M(S1,u)}
///
/// and ask the Omega test for an integer point; any solution is a
/// counterexample and the shackle is rejected. The problem size parameters
/// stay symbolic, so legality holds for every N.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_CORE_LEGALITY_H
#define SHACKLE_CORE_LEGALITY_H

#include "core/DataShackle.h"
#include "core/Dependence.h"
#include "ir/Program.h"
#include "polyhedral/OmegaTest.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace shackle {

/// A dependence that the shackle would execute backwards.
struct LegalityViolation {
  DependenceProblem Problem;
  /// Index of the block coordinate that runs backwards first.
  unsigned BlockDim = 0;
  /// The full violation system: dependence /\ block links /\ "target block
  /// strictly before source block". Feasible by construction.
  Polyhedron ViolationPoly;

  /// Extracts and formats a concrete counterexample: parameter values and
  /// the two statement instances the shackle would reorder. Returns an
  /// empty string if no witness is found within the search box (should not
  /// happen for real violations).
  std::string witnessStr(const Program &P) const;
};

/// Outcome of a legality check. Unknown means some feasibility query
/// exhausted its solver budget with no violation found elsewhere; the
/// shackle might be legal, but Theorem 1 was not proven.
enum class LegalityVerdict { Legal, Illegal, Unknown };

const char *legalityVerdictName(LegalityVerdict V);

struct LegalityResult {
  /// Compatibility alias: true iff Verdict == LegalityVerdict::Legal, so an
  /// Unknown verdict conservatively rejects the shackle.
  bool Legal = true;
  LegalityVerdict Verdict = LegalityVerdict::Legal;
  std::vector<LegalityViolation> Violations;
  /// One LegalityUnknown diagnostic per dependence whose feasibility query
  /// gave up, with the solver's reason attached as a note.
  std::vector<Diagnostic> Diags;

  std::string summary(const Program &P) const;
};

/// Counters for one legality check; used by the plan-cache service to prove
/// that cached factor verdicts actually avoided solver work.
struct LegalityCheckStats {
  uint64_t QueriesRun = 0;     ///< Feasibility queries sent to the solver.
  uint64_t QueriesSkipped = 0; ///< Queries avoided via cached factor verdicts.
};

/// Checks \p Chain against every dependence of \p P. With
/// \p FirstViolationOnly (the default) the check stops at the first
/// counterexample; otherwise all violated dependences are reported. Each
/// feasibility query runs under \p Budget; exhausted queries downgrade a
/// would-be Legal verdict to Unknown (a proven violation still wins:
/// Illegal dominates Unknown).
LegalityResult checkLegality(const Program &P, const ShackleChain &Chain,
                             bool FirstViolationOnly = true,
                             const SolverBudget &Budget = SolverBudget());

/// Like checkLegality, but skips the violation queries for block dims
/// J < \p SkipBlockDims. Sound only when the chain prefix of factors covering
/// those dims is already *proven* Legal (e.g. from a cached verdict for the
/// same program): the block-link constraints z = f(iteration) are
/// functionally determined, so feasibility of the dim-J violation system
/// depends only on the factors covering dims 0..J — a Legal prefix verdict
/// means every skipped query is known Empty. \p Stats, when non-null,
/// receives run/skipped query counts.
LegalityResult checkLegalityFrom(const Program &P, const ShackleChain &Chain,
                                 unsigned SkipBlockDims,
                                 bool FirstViolationOnly = true,
                                 const SolverBudget &Budget = SolverBudget(),
                                 LegalityCheckStats *Stats = nullptr);

} // namespace shackle

#endif // SHACKLE_CORE_LEGALITY_H
