//===- Dependence.cpp - Exact dependence problems ----------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "core/Dependence.h"

#include "core/DataShackle.h"
#include "polyhedral/OmegaTest.h"

#include <cassert>
#include <map>
#include <tuple>

using namespace shackle;

std::string DependenceProblem::describe(const Program &P) const {
  const char *KindName = Kind == DependenceKind::Flow    ? "flow"
                         : Kind == DependenceKind::Anti ? "anti"
                                                        : "output";
  return std::string(KindName) + " " + P.getStmt(SrcStmt).Label + " -> " +
         P.getStmt(DstStmt).Label + " @level " + std::to_string(Level);
}

namespace {

/// Length of the common prefix of enclosing-loop variable lists (shared
/// loops have identical variable ids).
unsigned commonDepth(const Stmt &A, const Stmt &B) {
  unsigned D = 0;
  while (D < A.LoopVars.size() && D < B.LoopVars.size() &&
         A.LoopVars[D] == B.LoopVars[D])
    ++D;
  return D;
}

/// True iff \p A is textually before \p B once all common loop variables are
/// equal: the 2d+1 schedule position at the divergence level decides.
bool textuallyBefore(const Stmt &A, const Stmt &B, unsigned CP) {
  assert(CP < A.Schedule.size() && CP < B.Schedule.size());
  return A.Schedule[CP] < B.Schedule[CP];
}

} // namespace

std::vector<DependenceProblem>
shackle::buildDependenceProblems(const Program &P) {
  assert(P.isFinalized() && "program must be finalized");
  std::vector<DependenceProblem> Out;

  for (unsigned SId = 0; SId < P.getNumStmts(); ++SId) {
    for (unsigned TId = 0; TId < P.getNumStmts(); ++TId) {
      const Stmt &Src = P.getStmt(SId);
      const Stmt &Dst = P.getStmt(TId);
      auto SrcRefs = Src.refs();
      auto DstRefs = Dst.refs();
      unsigned CP = commonDepth(Src, Dst);

      for (unsigned SR = 0; SR < SrcRefs.size(); ++SR) {
        for (unsigned DR = 0; DR < DstRefs.size(); ++DR) {
          const auto &[SrcRef, SrcWrite] = SrcRefs[SR];
          const auto &[DstRef, DstWrite] = DstRefs[DR];
          if (!SrcWrite && !DstWrite)
            continue;
          if (SrcRef->ArrayId != DstRef->ArrayId)
            continue;

          DependenceKind Kind = SrcWrite && DstWrite ? DependenceKind::Output
                                : SrcWrite           ? DependenceKind::Flow
                                                     : DependenceKind::Anti;

          // Space: [params][src vars][dst vars].
          unsigned NumParams = P.getNumParams();
          unsigned SrcOffset = NumParams;
          unsigned DstOffset = NumParams + Src.getDepth();
          unsigned SpaceSize = DstOffset + Dst.getDepth();

          std::vector<std::string> Names;
          for (unsigned V = 0; V < NumParams; ++V)
            Names.push_back(P.getVarName(V));
          for (unsigned K = 0; K < Src.getDepth(); ++K)
            Names.push_back(P.getVarName(Src.LoopVars[K]) + "_w");
          for (unsigned K = 0; K < Dst.getDepth(); ++K)
            Names.push_back(P.getVarName(Dst.LoopVars[K]) + "_r");

          std::vector<int> SrcMap(P.getNumVars(), -1);
          std::vector<int> DstMap(P.getNumVars(), -1);
          for (unsigned V = 0; V < NumParams; ++V)
            SrcMap[V] = DstMap[V] = static_cast<int>(V);
          for (unsigned K = 0; K < Src.getDepth(); ++K)
            SrcMap[Src.LoopVars[K]] = static_cast<int>(SrcOffset + K);
          for (unsigned K = 0; K < Dst.getDepth(); ++K)
            DstMap[Dst.LoopVars[K]] = static_cast<int>(DstOffset + K);

          Polyhedron Base(Names);
          addParamContext(Base, P, SrcMap);
          addDomainConstraints(Base, P, Src, SrcMap);
          addDomainConstraints(Base, P, Dst, DstMap);

          // Same array element.
          assert(SrcRef->Indices.size() == DstRef->Indices.size());
          for (unsigned D = 0; D < SrcRef->Indices.size(); ++D) {
            ConstraintRow SRow = mapAffineToSpace(SrcRef->Indices[D], P,
                                                  SrcMap, SpaceSize);
            ConstraintRow DRow = mapAffineToSpace(DstRef->Indices[D], P,
                                                  DstMap, SpaceSize);
            for (unsigned I = 0; I <= SpaceSize; ++I)
              SRow[I] -= DRow[I];
            Base.addEquality(std::move(SRow));
          }

          // Ordering cases. Level L < CP: common vars equal up to L-1, and
          // src_L < dst_L. Level CP: all common vars equal and Src textually
          // before Dst.
          for (unsigned L = 0; L <= CP; ++L) {
            if (L == CP && !textuallyBefore(Src, Dst, CP))
              break;
            DependenceProblem DP;
            DP.SrcStmt = SId;
            DP.DstStmt = TId;
            DP.SrcRefIdx = SR;
            DP.DstRefIdx = DR;
            DP.Kind = Kind;
            DP.Level = L;
            DP.NumParams = NumParams;
            DP.SrcOffset = SrcOffset;
            DP.DstOffset = DstOffset;
            DP.Poly = Base;
            for (unsigned K = 0; K < L; ++K) {
              ConstraintRow Eq(SpaceSize + 1, 0);
              Eq[SrcOffset + K] = 1;
              Eq[DstOffset + K] = -1;
              DP.Poly.addEquality(std::move(Eq));
            }
            if (L < CP) {
              // src_L <= dst_L - 1.
              ConstraintRow Lt(SpaceSize + 1, 0);
              Lt[DstOffset + L] = 1;
              Lt[SrcOffset + L] = -1;
              Lt.back() = -1;
              DP.Poly.addInequality(std::move(Lt));
            }
            // At L == CP all common variables are equal (added above) and
            // the textual order checked before entering carries the
            // dependence.
            Out.push_back(std::move(DP));
          }
        }
      }
    }
  }
  return Out;
}

bool shackle::dependenceExists(const Program &P, unsigned SrcStmt,
                               unsigned DstStmt) {
  for (const DependenceProblem &DP : buildDependenceProblems(P)) {
    if (DP.SrcStmt != SrcStmt || DP.DstStmt != DstStmt)
      continue;
    if (!isIntegerEmpty(DP.Poly))
      return true;
  }
  return false;
}

std::string DependenceSummary::str(const Program &P) const {
  const char *KindName = Kind == DependenceKind::Flow    ? "flow"
                         : Kind == DependenceKind::Anti ? "anti"
                                                        : "output";
  std::string S = std::string(KindName) + " " + P.getStmt(SrcStmt).Label +
                  " -> " + P.getStmt(DstStmt).Label + " (";
  for (unsigned K = 0; K < Directions.size(); ++K) {
    if (K)
      S += ",";
    S += Directions[K].symbol();
  }
  S += ")";
  if (LoopIndependent)
    S += " loop-independent";
  return S;
}

std::vector<DependenceSummary>
shackle::summarizeDependences(const Program &P) {
  // Group the per-level conjunctive problems by reference pair, then probe
  // each common level for each realizable sign.
  struct Key {
    unsigned Src, Dst, SrcRef, DstRef;
    bool operator<(const Key &O) const {
      return std::tie(Src, Dst, SrcRef, DstRef) <
             std::tie(O.Src, O.Dst, O.SrcRef, O.DstRef);
    }
  };
  std::vector<DependenceProblem> Problems = buildDependenceProblems(P);

  std::vector<DependenceSummary> Out;
  std::map<Key, unsigned> Index;
  for (DependenceProblem &DP : Problems) {
    Key K{DP.SrcStmt, DP.DstStmt, DP.SrcRefIdx, DP.DstRefIdx};
    unsigned CP = 0;
    {
      const Stmt &Src = P.getStmt(DP.SrcStmt);
      const Stmt &Dst = P.getStmt(DP.DstStmt);
      while (CP < Src.LoopVars.size() && CP < Dst.LoopVars.size() &&
             Src.LoopVars[CP] == Dst.LoopVars[CP])
        ++CP;
    }

    auto It = Index.find(K);
    if (It == Index.end()) {
      DependenceSummary S;
      S.SrcStmt = DP.SrcStmt;
      S.DstStmt = DP.DstStmt;
      S.SrcRefIdx = DP.SrcRefIdx;
      S.DstRefIdx = DP.DstRefIdx;
      S.Kind = DP.Kind;
      S.Directions.resize(CP);
      It = Index.emplace(K, Out.size()).first;
      Out.push_back(std::move(S));
    }
    DependenceSummary &S = Out[It->second];

    if (DP.Level == CP && !isIntegerEmpty(DP.Poly))
      S.LoopIndependent = true;

    for (unsigned L = 0; L < CP; ++L) {
      // Probe each sign of dst_L - src_L within this ordering case.
      for (int Sign = -1; Sign <= 1; ++Sign) {
        DirectionSet &D = S.Directions[L];
        if ((Sign < 0 && D.Gt) || (Sign == 0 && D.Eq) || (Sign > 0 && D.Lt))
          continue; // Already established.
        Polyhedron Q = DP.Poly;
        ConstraintRow Row(Q.getNumVars() + 1, 0);
        if (Sign == 0) {
          Row[DP.DstOffset + L] = 1;
          Row[DP.SrcOffset + L] = -1;
          Q.addEquality(std::move(Row));
        } else {
          // Sign > 0: dst - src >= 1; Sign < 0: src - dst >= 1.
          Row[DP.DstOffset + L] = Sign > 0 ? 1 : -1;
          Row[DP.SrcOffset + L] = Sign > 0 ? -1 : 1;
          Row.back() = -1;
          Q.addInequality(std::move(Row));
        }
        if (isIntegerEmpty(Q))
          continue;
        if (Sign < 0)
          D.Gt = true;
        else if (Sign == 0)
          D.Eq = true;
        else
          D.Lt = true;
      }
    }
  }

  // Drop reference pairs with no feasible dependence at all.
  std::vector<DependenceSummary> Filtered;
  for (DependenceSummary &S : Out) {
    bool Any = S.LoopIndependent;
    for (const DirectionSet &D : S.Directions)
      Any |= D.Lt || D.Eq || D.Gt;
    if (Any)
      Filtered.push_back(std::move(S));
  }
  return Filtered;
}
