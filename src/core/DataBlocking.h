//===- DataBlocking.h - Cutting planes on a data object ---------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The first component of a data shackle (paper Definition 1): a division of
/// an array into blocks by sets of parallel cutting planes, plus the order in
/// which the blocks are touched. Each set of planes has a normal vector over
/// the array's index space and a separation (the block size); the matrix
/// whose columns are the normals is the paper's "cutting planes matrix", and
/// blocks are visited in lexicographic order of their coordinates (a set may
/// be marked Reversed to walk bottom-to-top / right-to-left, the paper's
/// loop-reversal analogue for cases like triangular back-solve).
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_CORE_DATABLOCKING_H
#define SHACKLE_CORE_DATABLOCKING_H

#include "ir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace shackle {

/// One set of parallel cutting planes with normal \p Normal and separation
/// \p BlockSize. For an array element with (0-based) index vector a, the
/// block coordinate along this set is floor((Normal . a) / BlockSize), or its
/// negation when Reversed.
struct CuttingPlaneSet {
  std::vector<int64_t> Normal; ///< One entry per array dimension.
  int64_t BlockSize = 1;
  bool Reversed = false;
};

/// A blocking of one array: the cutting-planes matrix column by column, in
/// traversal-significance order (the first set varies slowest).
struct DataBlocking {
  unsigned ArrayId = 0;
  std::vector<CuttingPlaneSet> Planes;

  /// Convenience: axis-aligned rectangular blocking of a rank-\p Rank array
  /// with the given per-dimension block sizes (in dimension order: the first
  /// array dimension varies slowest in the block walk).
  static DataBlocking rectangular(unsigned ArrayId,
                                  const std::vector<int64_t> &Sizes);

  /// Rectangular blocking with an explicit traversal order: DimOrder[0] is
  /// the array dimension whose blocks vary slowest. Sizes remains indexed by
  /// array dimension. E.g. DimOrder {1, 0} walks a matrix column-block by
  /// column-block, the paper's "top to bottom, left to right" order.
  static DataBlocking rectangular(unsigned ArrayId,
                                  const std::vector<int64_t> &Sizes,
                                  const std::vector<unsigned> &DimOrder);
};

} // namespace shackle

#endif // SHACKLE_CORE_DATABLOCKING_H
