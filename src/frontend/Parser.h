//===- Parser.h - A do-loop language front end ------------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small textual front end for the loop-nest IR, in the visual style of
/// the paper's Fortran listings, so the command-line tools work on
/// user-written programs:
///
/// \code
///   param N
///   array A[N][N] colmajor
///
///   do J = 0, N-1
///     S1: A[J][J] = sqrt(A[J][J])
///     do I = J+1, N-1
///       S2: A[I][J] = A[I][J] / A[J][J]
///     end
///     do L = J+1, N-1
///       do K = J+1, L
///         S3: A[L][K] = A[L][K] - A[L][J]*A[K][J]
///       end
///     end
///   end
/// \endcode
///
/// Grammar (informal):
///   program := (param | array | stmt)*
///   param   := "param" IDENT
///   array   := "array" IDENT ("[" affine "]")+ layout?
///   layout  := "rowmajor" | "colmajor" | "band" "(" IDENT ")"
///             | "tiled" "(" NUM "," NUM ")"
///   stmt    := loop | assign
///   loop    := "do" IDENT "=" bound "," bound stmt* "end"
///   bound   := affine | "min" "(" affine ("," affine)+ ")"
///             | "max" "(" affine ("," affine)+ ")"
///   assign  := [LABEL ":"] ref "=" scalar
///   ref     := IDENT ("[" affine "]")+
///   affine  := linear expression over parameters and loop variables
///   scalar  := +, -, *, / over refs, numbers, "sqrt(...)", "-(...)"
///
/// Loop variables scope over their loop body; "min" is only meaningful in
/// upper bounds and "max" in lower bounds (the parser enforces this).
/// Comments run from '#' to end of line.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_FRONTEND_PARSER_H
#define SHACKLE_FRONTEND_PARSER_H

#include "ir/Program.h"
#include "support/Diagnostics.h"

#include <memory>
#include <string>

namespace shackle {

/// Result of parsing: either a finalized Program or a diagnostic carrying
/// the first error with its line/column position.
struct ParseResult {
  std::unique_ptr<Program> Prog;
  std::string Error; ///< Empty on success; "line N, col M: msg" otherwise.
  /// Structured form of Error (DiagCode::ParseError with a SourceLoc);
  /// meaningful only when Prog is null.
  Diagnostic Diag;

  explicit operator bool() const { return Prog != nullptr; }
};

/// Parses \p Source into a finalized Program.
ParseResult parseProgram(const std::string &Source);

} // namespace shackle

#endif // SHACKLE_FRONTEND_PARSER_H
