//===- Parser.cpp - A do-loop language front end --------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <map>
#include <vector>

using namespace shackle;

namespace {

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

enum class TokKind {
  Ident,
  Number,   // Integer literal.
  Float,    // Literal containing '.' or exponent.
  LBracket,
  RBracket,
  LParen,
  RParen,
  Comma,
  Colon,
  Assign,
  Plus,
  Minus,
  Star,
  Slash,
  Unknown,  // Unexpected character, or an out-of-range integer literal.
  Eof,
};

struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;
  int64_t IntValue = 0;
  double FloatValue = 0;
  unsigned Line = 0;
  unsigned Col = 0;
  /// For Unknown tokens: set when the lexeme is a numeric literal that does
  /// not fit in int64 (as opposed to a stray character).
  bool IsOverflow = false;
};

class Lexer {
public:
  explicit Lexer(const std::string &Source) : Src(Source) { next(); }

  const Token &peek() const { return Cur; }

  Token take() {
    Token T = Cur;
    next();
    return T;
  }

  unsigned line() const { return Line; }

private:
  void next() {
    skipSpace();
    Cur = Token();
    Cur.Line = Line;
    Cur.Col = static_cast<unsigned>(Pos - LineStart) + 1;
    if (Pos >= Src.size()) {
      Cur.Kind = TokKind::Eof;
      return;
    }
    char C = Src[Pos];
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      size_t Start = Pos;
      while (Pos < Src.size() &&
             (std::isalnum(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '_'))
        ++Pos;
      Cur.Kind = TokKind::Ident;
      Cur.Text = Src.substr(Start, Pos - Start);
      return;
    }
    if (std::isdigit(static_cast<unsigned char>(C))) {
      size_t Start = Pos;
      bool IsFloat = false;
      while (Pos < Src.size() &&
             (std::isdigit(static_cast<unsigned char>(Src[Pos])) ||
              Src[Pos] == '.' || Src[Pos] == 'e' || Src[Pos] == 'E' ||
              ((Src[Pos] == '+' || Src[Pos] == '-') && Pos > Start &&
               (Src[Pos - 1] == 'e' || Src[Pos - 1] == 'E')))) {
        if (Src[Pos] == '.' || Src[Pos] == 'e' || Src[Pos] == 'E')
          IsFloat = true;
        ++Pos;
      }
      Cur.Text = Src.substr(Start, Pos - Start);
      if (IsFloat) {
        Cur.Kind = TokKind::Float;
        Cur.FloatValue = std::strtod(Cur.Text.c_str(), nullptr);
      } else {
        errno = 0;
        Cur.IntValue = std::strtoll(Cur.Text.c_str(), nullptr, 10);
        if (errno == ERANGE) {
          Cur.Kind = TokKind::Unknown;
          Cur.IsOverflow = true;
        } else {
          Cur.Kind = TokKind::Number;
        }
      }
      return;
    }
    ++Pos;
    switch (C) {
    case '[': Cur.Kind = TokKind::LBracket; return;
    case ']': Cur.Kind = TokKind::RBracket; return;
    case '(': Cur.Kind = TokKind::LParen; return;
    case ')': Cur.Kind = TokKind::RParen; return;
    case ',': Cur.Kind = TokKind::Comma; return;
    case ':': Cur.Kind = TokKind::Colon; return;
    case '=': Cur.Kind = TokKind::Assign; return;
    case '+': Cur.Kind = TokKind::Plus; return;
    case '-': Cur.Kind = TokKind::Minus; return;
    case '*': Cur.Kind = TokKind::Star; return;
    case '/': Cur.Kind = TokKind::Slash; return;
    default:
      Cur.Kind = TokKind::Unknown;
      Cur.Text = std::string(1, C);
      return;
    }
  }

  void skipSpace() {
    while (Pos < Src.size()) {
      char C = Src[Pos];
      if (C == '#') {
        while (Pos < Src.size() && Src[Pos] != '\n')
          ++Pos;
        continue;
      }
      if (C == '\n') {
        ++Line;
        ++Pos;
        LineStart = Pos;
        continue;
      }
      if (std::isspace(static_cast<unsigned char>(C))) {
        ++Pos;
        continue;
      }
      break;
    }
  }

  const std::string &Src;
  size_t Pos = 0;
  size_t LineStart = 0;
  unsigned Line = 1;
  Token Cur;
};

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

class ParserImpl {
public:
  explicit ParserImpl(const std::string &Source) : Lex(Source) {}

  ParseResult run() {
    Prog = std::make_unique<Program>();
    parseTopLevel();
    if (HasErr) {
      ParseResult R;
      R.Error = (ErrDiag.Loc.isValid() ? ErrDiag.Loc.str() + ": " : "") +
                ErrDiag.Message;
      R.Diag = std::move(ErrDiag);
      return R;
    }
    Prog->finalize();
    ParseResult R;
    R.Prog = std::move(Prog);
    return R;
  }

private:
  [[nodiscard]] bool error(const std::string &Msg) {
    if (HasErr)
      return false;
    HasErr = true;
    const Token &T = Lex.peek();
    // A stray character (or an overflowing literal) is the root cause of
    // whatever the caller failed to parse; report it instead.
    std::string M = Msg;
    if (T.Kind == TokKind::Unknown)
      M = T.IsOverflow
              ? "integer literal '" + T.Text + "' does not fit in 64 bits"
              : "unexpected character '" + T.Text + "'";
    ErrDiag = Diagnostic(DiagCode::ParseError, std::move(M),
                         SourceLoc{T.Line, T.Col});
    return false;
  }

  bool expect(TokKind K, const char *What) {
    if (Lex.peek().Kind != K)
      return error(std::string("expected ") + What);
    Lex.take();
    return true;
  }

  bool isKeyword(const char *K) const {
    return Lex.peek().Kind == TokKind::Ident && Lex.peek().Text == K;
  }

  //--- Names ---------------------------------------------------------------

  int lookupVar(const std::string &Name) const {
    auto It = Vars.find(Name);
    return It == Vars.end() ? -1 : static_cast<int>(It->second);
  }

  int lookupArray(const std::string &Name) const {
    auto It = Arrays.find(Name);
    return It == Arrays.end() ? -1 : static_cast<int>(It->second);
  }

  //--- Affine expressions ---------------------------------------------------

  /// term := NUM | NUM '*' var | var | var '*' NUM | '(' affine ')'
  bool parseAffineTerm(AffineExpr &Out) {
    const Token &T = Lex.peek();
    if (T.Kind == TokKind::LParen) {
      Lex.take();
      if (!parseAffine(Out))
        return false;
      return expect(TokKind::RParen, "')'");
    }
    if (T.Kind == TokKind::Number) {
      int64_t C = Lex.take().IntValue;
      if (Lex.peek().Kind == TokKind::Star) {
        Lex.take();
        if (Lex.peek().Kind != TokKind::Ident)
          return error("expected a variable after '*'");
        int Var = lookupVar(Lex.take().Text);
        if (Var < 0)
          return error("unknown variable in affine expression");
        Out = Prog->v(Var) * C;
        return true;
      }
      Out = Prog->cst(C);
      return true;
    }
    if (T.Kind == TokKind::Ident) {
      int Var = lookupVar(T.Text);
      if (Var < 0)
        return error("unknown variable '" + T.Text + "'");
      Lex.take();
      AffineExpr E = Prog->v(Var);
      if (Lex.peek().Kind == TokKind::Star) {
        Lex.take();
        if (Lex.peek().Kind != TokKind::Number)
          return error("affine expressions allow only constant "
                       "coefficients");
        E = E * Lex.take().IntValue;
      }
      Out = E;
      return true;
    }
    return error("expected an affine term");
  }

  bool parseAffine(AffineExpr &Out) {
    bool Negate = false;
    if (Lex.peek().Kind == TokKind::Minus) {
      Lex.take();
      Negate = true;
    }
    if (!parseAffineTerm(Out))
      return false;
    if (Negate)
      Out = Out * -1;
    while (Lex.peek().Kind == TokKind::Plus ||
           Lex.peek().Kind == TokKind::Minus) {
      bool Sub = Lex.take().Kind == TokKind::Minus;
      AffineExpr T;
      if (!parseAffineTerm(T))
        return false;
      Out = Sub ? Out - T : Out + T;
    }
    return true;
  }

  /// bound := affine | ("min"|"max") '(' affine (',' affine)+ ')'
  bool parseBound(std::vector<AffineExpr> &Out, bool IsLower) {
    if (isKeyword("min") || isKeyword("max")) {
      bool IsMin = Lex.peek().Text == "min";
      if (IsMin == IsLower)
        return error(IsLower ? "lower bounds take max(...), not min"
                             : "upper bounds take min(...), not max");
      Lex.take();
      if (!expect(TokKind::LParen, "'('"))
        return false;
      do {
        AffineExpr E;
        if (!parseAffine(E))
          return false;
        Out.push_back(std::move(E));
      } while (Lex.peek().Kind == TokKind::Comma && (Lex.take(), true));
      return expect(TokKind::RParen, "')'");
    }
    AffineExpr E;
    if (!parseAffine(E))
      return false;
    Out.push_back(std::move(E));
    return true;
  }

  //--- References and scalar expressions ------------------------------------

  bool parseRef(ArrayRef &Out) {
    if (Lex.peek().Kind != TokKind::Ident)
      return error("expected an array name");
    std::string Name = Lex.take().Text;
    int Arr = lookupArray(Name);
    if (Arr < 0)
      return error("unknown array '" + Name + "'");
    Out.ArrayId = Arr;
    Out.Indices.clear();
    while (Lex.peek().Kind == TokKind::LBracket) {
      Lex.take();
      AffineExpr E;
      if (!parseAffine(E))
        return false;
      Out.Indices.push_back(std::move(E));
      if (!expect(TokKind::RBracket, "']'"))
        return false;
    }
    if (Out.Indices.size() != Prog->getArray(Arr).Extents.size())
      return error("wrong number of subscripts for '" + Name + "'");
    return true;
  }

  /// primary := NUM | FLOAT | ref | 'sqrt' '(' scalar ')' | '(' scalar ')'
  ///          | '-' primary
  bool parsePrimary(ScalarExpr::Ptr &Out) {
    const Token &T = Lex.peek();
    if (T.Kind == TokKind::Minus) {
      Lex.take();
      ScalarExpr::Ptr E;
      if (!parsePrimary(E))
        return false;
      Out = ScalarExpr::neg(std::move(E));
      return true;
    }
    if (T.Kind == TokKind::Number) {
      Out = ScalarExpr::number(static_cast<double>(Lex.take().IntValue));
      return true;
    }
    if (T.Kind == TokKind::Float) {
      Out = ScalarExpr::number(Lex.take().FloatValue);
      return true;
    }
    if (T.Kind == TokKind::LParen) {
      Lex.take();
      if (!parseScalar(Out))
        return false;
      return expect(TokKind::RParen, "')'");
    }
    if (T.Kind == TokKind::Ident && T.Text == "sqrt") {
      Lex.take();
      if (!expect(TokKind::LParen, "'('"))
        return false;
      ScalarExpr::Ptr E;
      if (!parseScalar(E))
        return false;
      if (!expect(TokKind::RParen, "')'"))
        return false;
      Out = ScalarExpr::sqrt(std::move(E));
      return true;
    }
    if (T.Kind == TokKind::Ident) {
      ArrayRef R;
      if (!parseRef(R))
        return false;
      Out = ScalarExpr::load(std::move(R));
      return true;
    }
    return error("expected a scalar expression");
  }

  bool parseMulDiv(ScalarExpr::Ptr &Out) {
    if (!parsePrimary(Out))
      return false;
    while (Lex.peek().Kind == TokKind::Star ||
           Lex.peek().Kind == TokKind::Slash) {
      bool IsDiv = Lex.take().Kind == TokKind::Slash;
      ScalarExpr::Ptr R;
      if (!parsePrimary(R))
        return false;
      Out = IsDiv ? ScalarExpr::div(std::move(Out), std::move(R))
                  : ScalarExpr::mul(std::move(Out), std::move(R));
    }
    return true;
  }

  bool parseScalar(ScalarExpr::Ptr &Out) {
    if (!parseMulDiv(Out))
      return false;
    while (Lex.peek().Kind == TokKind::Plus ||
           Lex.peek().Kind == TokKind::Minus) {
      bool IsSub = Lex.take().Kind == TokKind::Minus;
      ScalarExpr::Ptr R;
      if (!parseMulDiv(R))
        return false;
      Out = IsSub ? ScalarExpr::sub(std::move(Out), std::move(R))
                  : ScalarExpr::add(std::move(Out), std::move(R));
    }
    return true;
  }

  //--- Declarations and statements -------------------------------------------

  bool parseParam() {
    Lex.take(); // 'param'
    if (Lex.peek().Kind != TokKind::Ident)
      return error("expected a parameter name");
    std::string Name = Lex.take().Text;
    if (Vars.count(Name))
      return error("redefinition of '" + Name + "'");
    Vars[Name] = Prog->addParam(Name);
    return true;
  }

  bool parseArray() {
    Lex.take(); // 'array'
    if (Lex.peek().Kind != TokKind::Ident)
      return error("expected an array name");
    std::string Name = Lex.take().Text;
    if (Arrays.count(Name))
      return error("redefinition of array '" + Name + "'");
    std::vector<AffineExpr> Extents;
    while (Lex.peek().Kind == TokKind::LBracket) {
      Lex.take();
      AffineExpr E;
      if (!parseAffine(E))
        return false;
      Extents.push_back(std::move(E));
      if (!expect(TokKind::RBracket, "']'"))
        return false;
    }
    if (Extents.empty())
      return error("arrays need at least one extent");

    LayoutKind Layout = LayoutKind::RowMajor;
    unsigned BandParam = 0;
    int64_t TileR = 0, TileC = 0;
    if (isKeyword("rowmajor")) {
      Lex.take();
    } else if (isKeyword("colmajor")) {
      Lex.take();
      Layout = LayoutKind::ColMajor;
    } else if (isKeyword("band")) {
      Lex.take();
      if (!expect(TokKind::LParen, "'('"))
        return false;
      if (Lex.peek().Kind != TokKind::Ident)
        return error("band(...) takes a parameter name");
      int BP = lookupVar(Lex.take().Text);
      if (BP < 0 || Prog->getVarKind(BP) != VarKind::Param)
        return error("band(...) takes a parameter name");
      BandParam = BP;
      Layout = LayoutKind::BandLower;
      if (!expect(TokKind::RParen, "')'"))
        return false;
    } else if (isKeyword("tiled")) {
      Lex.take();
      if (!expect(TokKind::LParen, "'('"))
        return false;
      if (Lex.peek().Kind != TokKind::Number)
        return error("tiled(...) takes two integer tile sizes");
      TileR = Lex.take().IntValue;
      if (!expect(TokKind::Comma, "','"))
        return false;
      if (Lex.peek().Kind != TokKind::Number)
        return error("tiled(...) takes two integer tile sizes");
      TileC = Lex.take().IntValue;
      if (!expect(TokKind::RParen, "')'"))
        return false;
    }

    unsigned Id = Prog->addArray(Name, std::move(Extents), Layout, BandParam);
    if (TileR > 0)
      Prog->setTiledLayout(Id, TileR, TileC);
    Arrays[Name] = Id;
    return true;
  }

  bool parseLoop() {
    Lex.take(); // 'do'
    if (Lex.peek().Kind != TokKind::Ident)
      return error("expected a loop variable");
    std::string Name = Lex.take().Text;
    if (Vars.count(Name))
      return error("loop variable '" + Name + "' shadows an existing name");
    if (!expect(TokKind::Assign, "'='"))
      return false;
    std::vector<AffineExpr> Lbs, Ubs;
    if (!parseBound(Lbs, /*IsLower=*/true))
      return false;
    if (!expect(TokKind::Comma, "','"))
      return false;
    if (!parseBound(Ubs, /*IsLower=*/false))
      return false;

    Vars[Name] = Prog->beginLoopMulti(Name, std::move(Lbs), std::move(Ubs));
    while (!isKeyword("end") && Lex.peek().Kind != TokKind::Eof)
      if (!parseStmtOrLoop())
        return false;
    if (!isKeyword("end"))
      return error("expected 'end' to close loop '" + Name + "'");
    Lex.take();
    Prog->endLoop();
    Vars.erase(Name);
    return true;
  }

  bool parseAssign() {
    // Optional label: IDENT ':' (distinguished by the colon lookahead via
    // the array-subscript grammar: labels are never followed by '[').
    std::string Label;
    if (Lex.peek().Kind == TokKind::Ident &&
        lookupArray(Lex.peek().Text) < 0) {
      Label = Lex.take().Text;
      if (!expect(TokKind::Colon, "':' after statement label"))
        return false;
    }
    ArrayRef LHS;
    if (!parseRef(LHS))
      return false;
    if (!expect(TokKind::Assign, "'='"))
      return false;
    ScalarExpr::Ptr RHS;
    if (!parseScalar(RHS))
      return false;
    if (Label.empty())
      Label = "S" + std::to_string(Prog->getNumStmts() + 1);
    Prog->addStmt(Label, std::move(LHS), std::move(RHS));
    return true;
  }

  bool parseStmtOrLoop() {
    if (isKeyword("do"))
      return parseLoop();
    return parseAssign();
  }

  void parseTopLevel() {
    while (!HasErr && Lex.peek().Kind != TokKind::Eof) {
      if (isKeyword("param")) {
        if (!parseParam())
          return;
      } else if (isKeyword("array")) {
        if (!parseArray())
          return;
      } else if (!parseStmtOrLoop()) {
        return;
      }
    }
  }

  Lexer Lex;
  std::unique_ptr<Program> Prog;
  std::map<std::string, unsigned> Vars;   // Params + open loop vars.
  std::map<std::string, unsigned> Arrays;
  bool HasErr = false;
  Diagnostic ErrDiag;
};

} // namespace

ParseResult shackle::parseProgram(const std::string &Source) {
  return ParserImpl(Source).run();
}
