//===- Affinity.cpp - Locality-aware task placement --------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "parallel/Affinity.h"

#include "parallel/BlockPartition.h"

#include <algorithm>

#ifdef __linux__
#include <cstdio>
#include <sys/stat.h>
#endif

using namespace shackle;

AffinityMap shackle::buildAffinityMap(std::size_t NumTasks,
                                      const std::vector<uint64_t> &Weights,
                                      unsigned NumWorkers) {
  AffinityMap Map;
  Map.NumWorkers = NumWorkers == 0 ? 1 : NumWorkers;
  Map.Home.assign(NumTasks, 0);
  Map.RangeBegin.assign(Map.NumWorkers + 1, 0);
  Map.RangeBegin[Map.NumWorkers] = static_cast<uint32_t>(NumTasks);
  if (NumTasks == 0 || Map.NumWorkers == 1)
    return Map;

  // Prefix weights over the lexicographic task order (zero-weight tasks
  // still count 1, so every task moves a cut eventually).
  std::vector<uint64_t> Prefix(NumTasks + 1, 0);
  for (std::size_t T = 0; T < NumTasks; ++T) {
    uint64_t W = T < Weights.size() && Weights[T] > 0 ? Weights[T] : 1;
    Prefix[T + 1] = Prefix[T] + W;
  }
  uint64_t Total = Prefix[NumTasks];

  // Cut before worker W at the prefix boundary nearest W/NumWorkers of the
  // total weight (rounding toward the nearer side keeps a single heavy
  // task on the worker whose share it fills, instead of starving that
  // worker). Targets grow with W and the rounding is monotone in the
  // target, so cuts never cross: the ranges are contiguous and tile
  // [0, NumTasks) exactly.
  uint32_t Cut = 0;
  for (unsigned W = 1; W < Map.NumWorkers; ++W) {
    uint64_t Target = (Total * W) / Map.NumWorkers;
    while (Cut < NumTasks && Prefix[Cut + 1] <= Target)
      ++Cut;
    if (Cut < NumTasks && Target - Prefix[Cut] > Prefix[Cut + 1] - Target)
      ++Cut;
    Map.RangeBegin[W] = Cut;
  }
  for (unsigned W = 0; W < Map.NumWorkers; ++W)
    for (uint32_t T = Map.RangeBegin[W]; T < Map.RangeBegin[W + 1]; ++T)
      Map.Home[T] = W;
  return Map;
}

AffinityMap shackle::buildAffinityMap(const BlockPartition &Part,
                                      unsigned NumWorkers) {
  std::vector<uint64_t> Weights;
  Weights.reserve(Part.Tasks.size());
  for (const BlockTask &T : Part.Tasks)
    Weights.push_back(T.Segments.empty() ? 1 : T.Segments.size());
  return buildAffinityMap(Part.Tasks.size(), Weights, NumWorkers);
}

unsigned shackle::detectDomainSize(unsigned NumWorkers) {
  if (NumWorkers == 0)
    return 1;
#ifdef __linux__
  unsigned Nodes = 0;
  for (unsigned I = 0; I < 256; ++I) {
    char Path[64];
    std::snprintf(Path, sizeof(Path), "/sys/devices/system/node/node%u", I);
    struct stat St;
    if (::stat(Path, &St) != 0 || !S_ISDIR(St.st_mode))
      break;
    ++Nodes;
  }
  if (Nodes > 1) {
    unsigned D = (NumWorkers + Nodes - 1) / Nodes;
    return D == 0 ? 1 : D;
  }
#endif
  return NumWorkers; // One domain: the pre-hierarchical behavior.
}
