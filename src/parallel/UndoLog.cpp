//===- UndoLog.cpp - Block write-footprint snapshots -------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "parallel/UndoLog.h"

#include <algorithm>
#include <cassert>

using namespace shackle;

BlockUndoLog shackle::captureBlockUndo(const LoopNest &Nest,
                                       const BlockTask &Task,
                                       const ProgramInstance &Inst) {
  std::vector<std::pair<unsigned, int64_t>> Footprint;
  WriteSink Sink = [&Footprint](unsigned ArrayId, int64_t Offset) {
    Footprint.emplace_back(ArrayId, Offset);
  };
  for (const BlockTask::Segment &Seg : Task.Segments)
    collectSubtreeWrites(Nest, *Seg.Node, Seg.DimValues, Inst, Sink);
  std::sort(Footprint.begin(), Footprint.end());
  Footprint.erase(std::unique(Footprint.begin(), Footprint.end()),
                  Footprint.end());

  BlockUndoLog Log;
  Log.Entries.reserve(Footprint.size());
  for (const auto &[ArrayId, Offset] : Footprint) {
    // A footprint offset outside the array extent means the write walk (or
    // a future native-codegen path feeding it) is broken; corrupting a
    // diagnostic here beats corrupting memory below.
    assert(Offset >= 0 &&
           static_cast<std::size_t>(Offset) < Inst.buffer(ArrayId).size() &&
           "undo footprint offset outside the array extent");
    Log.Entries.push_back(
        {ArrayId, Offset,
         Inst.buffer(ArrayId)[static_cast<std::size_t>(Offset)]});
  }
  return Log;
}

void shackle::restoreBlockUndo(const BlockUndoLog &Log,
                               ProgramInstance &Inst) {
  for (const BlockUndoLog::Entry &E : Log.Entries) {
    assert(E.Offset >= 0 &&
           static_cast<std::size_t>(E.Offset) <
               Inst.buffer(E.ArrayId).size() &&
           "undo entry offset outside the array extent");
    Inst.buffer(E.ArrayId)[static_cast<std::size_t>(E.Offset)] = E.Value;
  }
}
