//===- Scheduler.cpp - Work-stealing DAG task scheduler ----------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "parallel/Scheduler.h"

#include "parallel/ChaseLevDeque.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

using namespace shackle;

namespace {

/// Shared state of one runTaskDag invocation.
struct DagRun {
  std::size_t NumTasks;
  const std::vector<std::vector<uint32_t>> &Succs;
  const TaskBody &Body;
  unsigned NumWorkers;

  std::unique_ptr<std::atomic<uint32_t>[]> Deg;
  std::vector<std::unique_ptr<ChaseLevDeque<uint32_t>>> Deques;

  std::atomic<uint64_t> Remaining;
  std::atomic<bool> Done{false};

  // Parking. Epoch/NumParked are mutex-protected; a parker registers under
  // the lock, rescans every deque once, and only then waits, so a pusher
  // that sees NumParked == 0 is guaranteed its task is visible to that
  // rescan (Dekker pattern: both sides order their store before the other's
  // load with seq_cst fences).
  std::mutex M;
  std::condition_variable CV;
  uint64_t Epoch = 0;
  std::atomic<int> NumParked{0};

  std::atomic<uint64_t> TotalRun{0}, TotalSteals{0}, TotalParks{0};

  DagRun(std::size_t NumTasks,
         const std::vector<std::vector<uint32_t>> &Succs, const TaskBody &Body,
         unsigned NumWorkers)
      : NumTasks(NumTasks), Succs(Succs), Body(Body), NumWorkers(NumWorkers),
        Deg(new std::atomic<uint32_t>[NumTasks ? NumTasks : 1]),
        Remaining(NumTasks) {
    for (unsigned W = 0; W < NumWorkers; ++W)
      Deques.emplace_back(std::make_unique<ChaseLevDeque<uint32_t>>(
          static_cast<int64_t>(NumTasks / NumWorkers + 64)));
  }

  void wakeAll() {
    {
      std::lock_guard<std::mutex> L(M);
      ++Epoch;
    }
    CV.notify_all();
  }

  /// Called by a worker after it made new tasks stealable.
  void signalWork() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (NumParked.load(std::memory_order_relaxed) > 0)
      wakeAll();
  }

  bool popOrSteal(unsigned Me, uint32_t &T, uint64_t &Steals) {
    if (Deques[Me]->pop(T))
      return true;
    for (unsigned I = 1; I < NumWorkers; ++I) {
      unsigned Victim = (Me + I) % NumWorkers;
      if (Deques[Victim]->steal(T)) {
        ++Steals;
        return true;
      }
    }
    return false;
  }

  void execute(uint32_t T, unsigned Me, uint64_t &Ran) {
    Body(T, Me);
    ++Ran;
    unsigned Pushed = 0;
    for (uint32_t V : Succs[T])
      if (Deg[V].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        Deques[Me]->push(V);
        ++Pushed;
      }
    if (Pushed > 0)
      signalWork();
    if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Done.store(true, std::memory_order_release);
      wakeAll();
    }
  }

  void workerLoop(unsigned Me) {
    uint64_t Ran = 0, Steals = 0, Parks = 0;
    uint32_t T = 0;
    while (!Done.load(std::memory_order_acquire)) {
      if (popOrSteal(Me, T, Steals)) {
        execute(T, Me, Ran);
        continue;
      }
      // Nothing visible: register as parked, rescan once, then sleep. The
      // timed wait is a liveness backstop only; the epoch protocol is what
      // normally wakes us.
      uint64_t E;
      {
        std::lock_guard<std::mutex> L(M);
        E = Epoch;
      }
      NumParked.fetch_add(1, std::memory_order_seq_cst);
      bool GotTask = !Done.load(std::memory_order_acquire) &&
                     popOrSteal(Me, T, Steals);
      if (GotTask) {
        NumParked.fetch_sub(1, std::memory_order_relaxed);
        execute(T, Me, Ran);
        continue;
      }
      if (Done.load(std::memory_order_acquire)) {
        NumParked.fetch_sub(1, std::memory_order_relaxed);
        continue; // Outer loop exits.
      }
      {
        std::unique_lock<std::mutex> L(M);
        ++Parks;
        CV.wait_for(L, std::chrono::milliseconds(1), [&] {
          return Epoch != E || Done.load(std::memory_order_acquire);
        });
      }
      NumParked.fetch_sub(1, std::memory_order_relaxed);
    }
    TotalRun.fetch_add(Ran, std::memory_order_relaxed);
    TotalSteals.fetch_add(Steals, std::memory_order_relaxed);
    TotalParks.fetch_add(Parks, std::memory_order_relaxed);
  }
};

} // namespace

bool shackle::runTaskDag(std::size_t NumTasks,
                         const std::vector<std::vector<uint32_t>> &Succs,
                         const std::vector<uint32_t> &InDegree,
                         unsigned NumThreads, const TaskBody &Body,
                         DagRunStats *Stats) {
  if (Succs.size() != NumTasks || InDegree.size() != NumTasks)
    return false;

  // Validate: recompute in-degrees and run a Kahn pass. Refusing a cyclic
  // or inconsistent graph *before* running anything keeps task side effects
  // all-or-nothing, which the serial-fallback callers rely on.
  std::vector<uint32_t> Deg(NumTasks, 0);
  for (std::size_t U = 0; U < NumTasks; ++U)
    for (uint32_t V : Succs[U]) {
      if (V >= NumTasks)
        return false;
      ++Deg[V];
    }
  for (std::size_t U = 0; U < NumTasks; ++U)
    if (Deg[U] != InDegree[U])
      return false;
  {
    std::vector<uint32_t> Work = Deg;
    std::vector<uint32_t> Queue;
    Queue.reserve(NumTasks);
    for (std::size_t U = 0; U < NumTasks; ++U)
      if (Work[U] == 0)
        Queue.push_back(static_cast<uint32_t>(U));
    for (std::size_t I = 0; I < Queue.size(); ++I)
      for (uint32_t V : Succs[Queue[I]])
        if (--Work[V] == 0)
          Queue.push_back(V);
    if (Queue.size() != NumTasks)
      return false; // Cycle.
  }

  if (NumTasks == 0) {
    if (Stats)
      *Stats = DagRunStats{};
    return true;
  }

  unsigned NumWorkers = NumThreads == 0 ? 1 : NumThreads;
  if (static_cast<std::size_t>(NumWorkers) > NumTasks)
    NumWorkers = static_cast<unsigned>(NumTasks);

  DagRun Run(NumTasks, Succs, Body, NumWorkers);
  for (std::size_t U = 0; U < NumTasks; ++U)
    Run.Deg[U].store(Deg[U], std::memory_order_relaxed);

  // Seed the deques round-robin with the initially ready tasks (before any
  // worker starts, so plain pushes are safe and every worker begins with
  // a fair share of the first wavefront).
  unsigned Next = 0;
  for (std::size_t U = 0; U < NumTasks; ++U)
    if (Deg[U] == 0) {
      Run.Deques[Next]->push(static_cast<uint32_t>(U));
      Next = (Next + 1) % NumWorkers;
    }

  std::vector<std::thread> Threads;
  Threads.reserve(NumWorkers - 1);
  for (unsigned W = 1; W < NumWorkers; ++W)
    Threads.emplace_back([&Run, W] { Run.workerLoop(W); });
  Run.workerLoop(0);
  for (std::thread &Th : Threads)
    Th.join();

  if (Stats) {
    Stats->ThreadsUsed = NumWorkers;
    Stats->TasksRun = Run.TotalRun.load(std::memory_order_relaxed);
    Stats->Steals = Run.TotalSteals.load(std::memory_order_relaxed);
    Stats->Parks = Run.TotalParks.load(std::memory_order_relaxed);
  }
  return true;
}
