//===- Scheduler.cpp - Work-stealing DAG task scheduler ----------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "parallel/Scheduler.h"

#include "parallel/ChaseLevDeque.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

using namespace shackle;

const char *shackle::dagAbortName(DagAbort A) {
  switch (A) {
  case DagAbort::None:
    return "none";
  case DagAbort::TaskFailed:
    return "task-failed";
  case DagAbort::Deadline:
    return "deadline";
  case DagAbort::Stalled:
    return "stalled";
  }
  return "none";
}

namespace {

using Clock = std::chrono::steady_clock;

uint64_t msBetween(Clock::time_point From, Clock::time_point To) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(To - From)
          .count());
}

/// SplitMix64 finalizer: seeds the RandomVictim scan offsets so that the
/// "random" baseline is still a pure function of (seed, worker, attempt).
uint64_t mix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ULL;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ULL;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebULL;
  return X ^ (X >> 31);
}

/// Per-worker loop state: run/steal tallies plus the consecutive-empty-
/// local-scan counter that gates cross-domain stealing.
struct WorkerCtx {
  uint64_t Ran = 0, Steals = 0, LocalSteals = 0, RemoteSteals = 0;
  uint64_t Parks = 0, HomeHits = 0;
  unsigned FailedLocalScans = 0;
  uint64_t StealNonce = 0; ///< RandomVictim attempt counter.
};

/// Shared state of one runTaskDagPartial invocation.
struct DagRun {
  std::size_t NumTasks;
  const std::vector<std::vector<uint32_t>> &Succs;
  const FailableTaskBody &Body;
  unsigned NumWorkers;
  /// Normalized options (Affinity null unless it covers every task;
  /// DomainSize clamped to [1, NumWorkers]).
  const std::vector<uint32_t> *Affinity;
  unsigned DomainSize;
  unsigned NumDomains;
  unsigned StealRemoteAfter;
  bool RandomVictim;
  uint64_t StealSeed;
  /// Stealing fully disabled (DomainSize == 1 domains-of-one plus no
  /// remote phase): mailbox delivery must then block, never fall back,
  /// so every task runs on its home worker.
  bool NoSteal;

  std::unique_ptr<std::atomic<uint32_t>[]> Deg;
  /// 1 after a task's body ran and returned true. Read post-join by the
  /// caller to replay exactly the unfinished suffix.
  std::unique_ptr<std::atomic<uint8_t>[]> TaskDone;
  /// Per-worker liveness counters, bumped once per worker-loop iteration
  /// (including parked iterations, via the 1 ms timed-wait backstop). The
  /// watchdog diffs them to name the workers that froze.
  std::unique_ptr<std::atomic<uint64_t>[]> Heartbeat;
  std::vector<std::unique_ptr<ChaseLevDeque<uint32_t>>> Deques;

  std::atomic<uint64_t> Remaining;
  std::atomic<bool> Done{false};

  /// Quiesce protocol: any failure path stores AbortWhy then Abort and
  /// wakes everyone; every worker re-checks stopping() per iteration (and
  /// inside simulated stalls), so the pool drains within one task body of
  /// the request. Successors of unfinished tasks are never released.
  std::atomic<bool> Abort{false};
  std::atomic<int> AbortWhy{static_cast<int>(DagAbort::None)};

  /// Overflow queue: the safety net for deque growth hitting bad_alloc.
  /// A failed hand-off lands here (mutex-protected, pre-reserved where
  /// possible) instead of being dropped; popOrSteal drains it.
  std::mutex OvM;
  std::vector<uint32_t> Overflow;
  std::atomic<uint64_t> OverflowPushes{0};

  /// Per-worker mailbox for affinity hand-offs: Chase-Lev pushes are
  /// owner-only, so a finisher routing a ready task to a *different* home
  /// worker must go through this mutex-protected box instead. Size mirrors
  /// Q.size() with seq_cst updates so the parking Dekker pattern (and the
  /// empty-check fast path) works without taking the lock.
  struct Mailbox {
    std::mutex M;
    std::vector<uint32_t> Q;
    std::atomic<uint32_t> Size{0};
  };
  std::unique_ptr<Mailbox[]> Mailboxes;
  std::atomic<uint64_t> MailboxPushes{0};
  std::atomic<uint64_t> MailboxFallbacks{0};

  // Parking. Epoch/NumParked are mutex-protected; a parker registers under
  // the lock, rescans every deque once, and only then waits, so a pusher
  // that sees NumParked == 0 is guaranteed its task is visible to that
  // rescan (Dekker pattern: both sides order their store before the other's
  // load with seq_cst fences).
  std::mutex M;
  std::condition_variable CV;
  uint64_t Epoch = 0;
  std::atomic<int> NumParked{0};

  std::atomic<uint64_t> TotalRun{0}, TotalSteals{0}, TotalParks{0};
  std::atomic<uint64_t> TotalLocalSteals{0}, TotalRemoteSteals{0};
  std::atomic<uint64_t> TotalHomeHits{0};
  std::atomic<uint64_t> TotalFailures{0};
  std::atomic<unsigned> StalledWorkers{0};

  DagRun(std::size_t NumTasks,
         const std::vector<std::vector<uint32_t>> &Succs,
         const FailableTaskBody &Body, unsigned NumWorkers,
         const DagRunOptions &Opts)
      : NumTasks(NumTasks), Succs(Succs), Body(Body), NumWorkers(NumWorkers),
        Affinity(Opts.Affinity && Opts.Affinity->size() == NumTasks
                     ? Opts.Affinity
                     : nullptr),
        DomainSize(Opts.DomainSize == 0 || Opts.DomainSize > NumWorkers
                       ? NumWorkers
                       : Opts.DomainSize),
        NumDomains((NumWorkers + DomainSize - 1) / DomainSize),
        StealRemoteAfter(Opts.StealRemoteAfter),
        RandomVictim(Opts.RandomVictim), StealSeed(Opts.StealSeed),
        NoSteal(DomainSize == 1 && StealRemoteAfter == 0 && !RandomVictim),
        Deg(new std::atomic<uint32_t>[NumTasks ? NumTasks : 1]),
        TaskDone(new std::atomic<uint8_t>[NumTasks ? NumTasks : 1]),
        Heartbeat(new std::atomic<uint64_t>[NumWorkers]),
        Remaining(NumTasks), Mailboxes(new Mailbox[NumWorkers]) {
    for (std::size_t U = 0; U < NumTasks; ++U)
      TaskDone[U].store(0, std::memory_order_relaxed);
    for (unsigned W = 0; W < NumWorkers; ++W) {
      Heartbeat[W].store(0, std::memory_order_relaxed);
      Deques.emplace_back(std::make_unique<ChaseLevDeque<uint32_t>>(
          static_cast<int64_t>(NumTasks / NumWorkers + 64)));
    }
  }

  unsigned homeOf(uint32_t T) const { return (*Affinity)[T] % NumWorkers; }
  unsigned domainOf(unsigned W) const { return W / DomainSize; }

  bool stopping() const {
    return Done.load(std::memory_order_acquire) ||
           Abort.load(std::memory_order_acquire);
  }

  void requestAbort(DagAbort Why) {
    int None = static_cast<int>(DagAbort::None);
    AbortWhy.compare_exchange_strong(None, static_cast<int>(Why),
                                     std::memory_order_relaxed);
    Abort.store(true, std::memory_order_release);
    wakeAll();
  }

  void wakeAll() {
    {
      std::lock_guard<std::mutex> L(M);
      ++Epoch;
    }
    CV.notify_all();
  }

  /// Called by a worker after it made new tasks stealable.
  void signalWork() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (NumParked.load(std::memory_order_relaxed) > 0)
      wakeAll();
  }

  /// Hands a ready task to worker \p Me's deque; never loses it (deque
  /// growth failure diverts to the overflow queue).
  void pushReady(unsigned Me, uint32_t V) {
    if (Deques[Me]->push(V))
      return;
    {
      std::lock_guard<std::mutex> L(OvM);
      Overflow.push_back(V);
    }
    OverflowPushes.fetch_add(1, std::memory_order_relaxed);
  }

  /// Routes a released successor to the most local runnable place: the
  /// finisher's own deque when it is the task's home (or no affinity is
  /// set), otherwise the home worker's mailbox. A contended mailbox falls
  /// back to the finisher's deque — the task stays runnable, just less
  /// local — except under NoSteal, where nothing would ever move it back,
  /// so delivery takes the lock unconditionally.
  void routeReady(unsigned Me, uint32_t V) {
    unsigned Home;
    if (!Affinity || (Home = homeOf(V)) == Me) {
      pushReady(Me, V);
      return;
    }
    Mailbox &MB = Mailboxes[Home];
    std::unique_lock<std::mutex> L(MB.M, std::defer_lock);
    if (NoSteal)
      L.lock();
    else
      (void)L.try_lock();
    if (L.owns_lock()) {
      try {
        MB.Q.push_back(V);
        MB.Size.fetch_add(1, std::memory_order_seq_cst);
        MailboxPushes.fetch_add(1, std::memory_order_relaxed);
        return;
      } catch (...) {
        // push_back allocation failure: fall through to the local deque
        // (whose own failure path is the overflow queue). Never lost.
        L.unlock();
      }
    }
    MailboxFallbacks.fetch_add(1, std::memory_order_relaxed);
    pushReady(Me, V);
  }

  /// Takes one task from worker \p W's mailbox. Callable by any worker:
  /// the owner drains its own box ahead of stealing, and the desperate
  /// phase of popOrSteal raids foreign boxes so tasks homed to a dead
  /// worker (or a dead domain) are still picked up.
  bool popMailbox(unsigned W, uint32_t &T) {
    Mailbox &MB = Mailboxes[W];
    if (MB.Size.load(std::memory_order_seq_cst) == 0)
      return false;
    std::lock_guard<std::mutex> L(MB.M);
    if (MB.Q.empty())
      return false;
    T = MB.Q.back();
    MB.Q.pop_back();
    MB.Size.fetch_sub(1, std::memory_order_seq_cst);
    return true;
  }

  bool popOverflow(uint32_t &T) {
    std::lock_guard<std::mutex> L(OvM);
    if (Overflow.empty())
      return false;
    T = Overflow.back();
    Overflow.pop_back();
    return true;
  }

  void countSteal(unsigned Me, unsigned Victim, WorkerCtx &C) {
    ++C.Steals;
    if (domainOf(Victim) == domainOf(Me))
      ++C.LocalSteals;
    else
      ++C.RemoteSteals;
    C.FailedLocalScans = 0;
  }

  bool popOrSteal(unsigned Me, uint32_t &T, WorkerCtx &C) {
    if (Deques[Me]->pop(T) || popMailbox(Me, T) || popOverflow(T)) {
      C.FailedLocalScans = 0;
      return true;
    }

    if (RandomVictim) {
      // Baseline mode: full ring scan from a seeded pseudo-random start,
      // domains ignored. (R + I) % (NumWorkers - 1) visits every other
      // worker exactly once, so nothing is missed — only the order varies.
      if (NumWorkers > 1) {
        uint64_t R = mix64(StealSeed ^ (static_cast<uint64_t>(Me) << 32) ^
                           ++C.StealNonce);
        for (unsigned I = 0; I < NumWorkers - 1; ++I) {
          unsigned Victim =
              (Me + 1 + static_cast<unsigned>((R + I) % (NumWorkers - 1))) %
              NumWorkers;
          if (Deques[Victim]->steal(T) || popMailbox(Victim, T)) {
            countSteal(Me, Victim, C);
            return true;
          }
        }
      }
      return false;
    }

    // Hierarchical scan: same-domain victims first, deterministic ring
    // order from Me so chaos runs stay reproducible.
    unsigned DomBegin = domainOf(Me) * DomainSize;
    unsigned DomCount = std::min(DomainSize, NumWorkers - DomBegin);
    for (unsigned I = 1; I < DomCount; ++I) {
      unsigned Victim = DomBegin + (Me - DomBegin + I) % DomCount;
      if (Deques[Victim]->steal(T)) {
        countSteal(Me, Victim, C);
        return true;
      }
    }
    // Desperate phase, entered only after StealRemoteAfter consecutive
    // empty local scans: remote deques first, then every foreign mailbox
    // (including same-domain ones, so a dead owner's deliveries are
    // recovered even in a single-domain pool).
    if (StealRemoteAfter > 0 && C.FailedLocalScans >= StealRemoteAfter) {
      for (unsigned I = 1; I < NumWorkers; ++I) {
        unsigned Victim = (Me + I) % NumWorkers;
        if (Victim >= DomBegin && Victim < DomBegin + DomCount)
          continue; // Local deques already scanned above.
        if (Deques[Victim]->steal(T)) {
          countSteal(Me, Victim, C);
          return true;
        }
      }
      for (unsigned I = 1; I < NumWorkers; ++I) {
        unsigned Victim = (Me + I) % NumWorkers;
        if (popMailbox(Victim, T)) {
          countSteal(Me, Victim, C);
          return true;
        }
      }
    }
    ++C.FailedLocalScans;
    return false;
  }

  void execute(uint32_t T, unsigned Me, WorkerCtx &C) {
    bool OK = false;
    try {
      OK = Body(T, Me);
    } catch (...) {
      OK = false; // A body that leaks an exception counts as failed.
    }
    if (!OK) {
      // The failed task stays not-done and its successors are never
      // released, so every completed task saw exactly the inputs a serial
      // DAG-order execution would have produced.
      TotalFailures.fetch_add(1, std::memory_order_relaxed);
      requestAbort(DagAbort::TaskFailed);
      return;
    }
    TaskDone[T].store(1, std::memory_order_relaxed);
    ++C.Ran;
    if (Affinity && homeOf(T) == Me)
      ++C.HomeHits;
    unsigned Pushed = 0;
    for (uint32_t V : Succs[T])
      if (Deg[V].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        routeReady(Me, V);
        ++Pushed;
      }
    if (Pushed > 0)
      signalWork();
    if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Done.store(true, std::memory_order_release);
      wakeAll();
    }
  }

  /// Simulated wedge for stall injection: sleeps without heartbeating (the
  /// point is to look dead to the watchdog) but checks Abort each slice so
  /// the post-abort join stays prompt.
  void stallFor(uint64_t Ms) {
    Clock::time_point End = Clock::now() + std::chrono::milliseconds(Ms);
    while (Clock::now() < End && !Abort.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  void workerLoop(unsigned Me) {
    WorkerCtx C;
    uint32_t T = 0;
    while (!stopping()) {
      Heartbeat[Me].fetch_add(1, std::memory_order_relaxed);
      if (popOrSteal(Me, T, C)) {
        if (injectWorkerDeath(Me) || injectDomainDeath(domainOf(Me)))
          break; // Dies holding T; only the watchdog can notice.
        if (uint64_t Ms = injectWorkerStall(Me)) {
          stallFor(Ms);
          if (stopping())
            break; // Quiesced mid-wedge; T stays not-done for replay.
        }
        execute(T, Me, C);
        continue;
      }
      // Nothing visible: register as parked, rescan once, then sleep. The
      // timed wait is a liveness backstop only; the epoch protocol is what
      // normally wakes us.
      uint64_t E;
      {
        std::lock_guard<std::mutex> L(M);
        E = Epoch;
      }
      NumParked.fetch_add(1, std::memory_order_seq_cst);
      bool GotTask = !stopping() && popOrSteal(Me, T, C);
      if (GotTask) {
        NumParked.fetch_sub(1, std::memory_order_relaxed);
        execute(T, Me, C);
        continue;
      }
      if (stopping()) {
        NumParked.fetch_sub(1, std::memory_order_relaxed);
        continue; // Outer loop exits.
      }
      {
        std::unique_lock<std::mutex> L(M);
        ++C.Parks;
        CV.wait_for(L, std::chrono::milliseconds(1),
                    [&] { return Epoch != E || stopping(); });
      }
      NumParked.fetch_sub(1, std::memory_order_relaxed);
    }
    TotalRun.fetch_add(C.Ran, std::memory_order_relaxed);
    TotalSteals.fetch_add(C.Steals, std::memory_order_relaxed);
    TotalLocalSteals.fetch_add(C.LocalSteals, std::memory_order_relaxed);
    TotalRemoteSteals.fetch_add(C.RemoteSteals, std::memory_order_relaxed);
    TotalHomeHits.fetch_add(C.HomeHits, std::memory_order_relaxed);
    TotalParks.fetch_add(C.Parks, std::memory_order_relaxed);
  }

  /// Watchdog: detects deadline expiry and global stalls. Stall detection
  /// watches Remaining, not heartbeats — a parked-but-healthy pool
  /// heartbeats forever while making no progress, and that is exactly the
  /// wedge (lost task, dead worker) this must catch. Heartbeats are only
  /// used to *name* the frozen workers once a stall is established.
  void watchdogLoop(uint64_t DeadlineMs, uint64_t StallTimeoutMs) {
    Clock::time_point Start = Clock::now();
    Clock::time_point LastProgress = Start;
    uint64_t LastRemaining = Remaining.load(std::memory_order_acquire);
    std::vector<uint64_t> HbSnap(NumWorkers, 0);
    auto Snap = [&] {
      for (unsigned W = 0; W < NumWorkers; ++W)
        HbSnap[W] = Heartbeat[W].load(std::memory_order_relaxed);
    };
    Snap();
    uint64_t Horizon = StallTimeoutMs ? StallTimeoutMs : DeadlineMs;
    if (DeadlineMs)
      Horizon = std::min(Horizon, DeadlineMs);
    uint64_t TickMs = Horizon / 8;
    if (TickMs < 1)
      TickMs = 1;
    if (TickMs > 10)
      TickMs = 10;
    while (!stopping()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(TickMs));
      if (stopping())
        break;
      Clock::time_point Now = Clock::now();
      if (DeadlineMs && msBetween(Start, Now) >= DeadlineMs) {
        requestAbort(DagAbort::Deadline);
        break;
      }
      uint64_t R = Remaining.load(std::memory_order_acquire);
      if (R != LastRemaining) {
        LastRemaining = R;
        LastProgress = Now;
        Snap();
        continue;
      }
      if (StallTimeoutMs && msBetween(LastProgress, Now) >= StallTimeoutMs) {
        // Frozen = no heartbeat over the last full tick. Healthy parked
        // workers advance many times per tick via the 1 ms wait backstop.
        unsigned Frozen = 0;
        for (unsigned W = 0; W < NumWorkers; ++W)
          if (Heartbeat[W].load(std::memory_order_relaxed) == HbSnap[W])
            ++Frozen;
        StalledWorkers.store(Frozen, std::memory_order_relaxed);
        requestAbort(DagAbort::Stalled);
        break;
      }
      Snap(); // Rolling per-tick baseline for the frozen-worker diff.
    }
  }
};

} // namespace

DagRunResult shackle::runTaskDagPartial(
    std::size_t NumTasks, const std::vector<std::vector<uint32_t>> &Succs,
    const std::vector<uint32_t> &InDegree, const DagRunOptions &Opts,
    const FailableTaskBody &Body) {
  DagRunResult Result;
  if (Succs.size() != NumTasks || InDegree.size() != NumTasks) {
    Result.Refused = true;
    return Result;
  }

  // Validate: recompute in-degrees and run a Kahn pass. Refusing a cyclic
  // or inconsistent graph *before* running anything keeps task side effects
  // all-or-nothing, which the serial-fallback callers rely on.
  std::vector<uint32_t> Deg(NumTasks, 0);
  for (std::size_t U = 0; U < NumTasks; ++U)
    for (uint32_t V : Succs[U]) {
      if (V >= NumTasks) {
        Result.Refused = true;
        return Result;
      }
      ++Deg[V];
    }
  for (std::size_t U = 0; U < NumTasks; ++U)
    if (Deg[U] != InDegree[U]) {
      Result.Refused = true;
      return Result;
    }
  {
    std::vector<uint32_t> Work = Deg;
    std::vector<uint32_t> Queue;
    Queue.reserve(NumTasks);
    for (std::size_t U = 0; U < NumTasks; ++U)
      if (Work[U] == 0)
        Queue.push_back(static_cast<uint32_t>(U));
    for (std::size_t I = 0; I < Queue.size(); ++I)
      for (uint32_t V : Succs[Queue[I]])
        if (--Work[V] == 0)
          Queue.push_back(V);
    if (Queue.size() != NumTasks) {
      Result.Refused = true; // Cycle.
      return Result;
    }
  }

  if (NumTasks == 0) {
    Result.Completed = true;
    return Result;
  }

  unsigned NumWorkers = Opts.NumThreads == 0 ? 1 : Opts.NumThreads;
  if (static_cast<std::size_t>(NumWorkers) > NumTasks)
    NumWorkers = static_cast<unsigned>(NumTasks);

  DagRun Run(NumTasks, Succs, Body, NumWorkers, Opts);
  for (std::size_t U = 0; U < NumTasks; ++U)
    Run.Deg[U].store(Deg[U], std::memory_order_relaxed);

  // Seed the deques with the initially ready tasks (before any worker
  // starts, so plain pushes are safe): each to its affinity home when a
  // map is set — owner-computes placement — or round-robin otherwise, so
  // every worker begins with a fair share of the first wavefront.
  // pushReady keeps even a seeding allocation failure from losing a task.
  unsigned Next = 0;
  for (std::size_t U = 0; U < NumTasks; ++U)
    if (Deg[U] == 0) {
      if (Run.Affinity) {
        Run.pushReady(Run.homeOf(static_cast<uint32_t>(U)),
                      static_cast<uint32_t>(U));
      } else {
        Run.pushReady(Next, static_cast<uint32_t>(U));
        Next = (Next + 1) % NumWorkers;
      }
    }

  std::thread Watchdog;
  bool HasWatchdog = Opts.DeadlineMs != 0 || Opts.StallTimeoutMs != 0;
  if (HasWatchdog)
    Watchdog = std::thread([&Run, &Opts] {
      Run.watchdogLoop(Opts.DeadlineMs, Opts.StallTimeoutMs);
    });

  std::vector<std::thread> Threads;
  Threads.reserve(NumWorkers - 1);
  for (unsigned W = 1; W < NumWorkers; ++W)
    Threads.emplace_back([&Run, W] { Run.workerLoop(W); });
  Run.workerLoop(0);
  for (std::thread &Th : Threads)
    Th.join();
  if (HasWatchdog)
    Watchdog.join();

  Result.TaskDone.resize(NumTasks, 0);
  uint64_t NumDone = 0;
  for (std::size_t U = 0; U < NumTasks; ++U)
    if (Run.TaskDone[U].load(std::memory_order_relaxed)) {
      Result.TaskDone[U] = 1;
      ++NumDone;
    }
  Result.Completed = NumDone == NumTasks;

  Result.Stats.ThreadsUsed = NumWorkers;
  Result.Stats.TasksRun = Run.TotalRun.load(std::memory_order_relaxed);
  Result.Stats.Steals = Run.TotalSteals.load(std::memory_order_relaxed);
  Result.Stats.LocalSteals =
      Run.TotalLocalSteals.load(std::memory_order_relaxed);
  Result.Stats.RemoteSteals =
      Run.TotalRemoteSteals.load(std::memory_order_relaxed);
  Result.Stats.MailboxPushes =
      Run.MailboxPushes.load(std::memory_order_relaxed);
  Result.Stats.MailboxFallbacks =
      Run.MailboxFallbacks.load(std::memory_order_relaxed);
  Result.Stats.HomeHits = Run.TotalHomeHits.load(std::memory_order_relaxed);
  Result.Stats.NumDomains = Run.NumDomains;
  Result.Stats.DomainSizeUsed = Run.DomainSize;
  Result.Stats.Parks = Run.TotalParks.load(std::memory_order_relaxed);
  Result.Stats.TaskFailures =
      Run.TotalFailures.load(std::memory_order_relaxed);
  Result.Stats.OverflowPushes =
      Run.OverflowPushes.load(std::memory_order_relaxed);
  Result.Stats.StalledWorkers =
      Run.StalledWorkers.load(std::memory_order_relaxed);
  Result.Stats.Abort = Result.Completed
                           ? DagAbort::None
                           : static_cast<DagAbort>(Run.AbortWhy.load(
                                 std::memory_order_relaxed));
  return Result;
}

bool shackle::runTaskDag(std::size_t NumTasks,
                         const std::vector<std::vector<uint32_t>> &Succs,
                         const std::vector<uint32_t> &InDegree,
                         unsigned NumThreads, const TaskBody &Body,
                         DagRunStats *Stats) {
  DagRunOptions Opts;
  Opts.NumThreads = NumThreads;
  DagRunResult R = runTaskDagPartial(
      NumTasks, Succs, InDegree, Opts,
      [&Body](uint32_t T, unsigned W) {
        Body(T, W);
        return true;
      });
  if (Stats)
    *Stats = R.Stats;
  return !R.Refused && R.Completed;
}
