//===- Scheduler.cpp - Work-stealing DAG task scheduler ----------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "parallel/Scheduler.h"

#include "parallel/ChaseLevDeque.h"
#include "support/FaultInjector.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>

using namespace shackle;

const char *shackle::dagAbortName(DagAbort A) {
  switch (A) {
  case DagAbort::None:
    return "none";
  case DagAbort::TaskFailed:
    return "task-failed";
  case DagAbort::Deadline:
    return "deadline";
  case DagAbort::Stalled:
    return "stalled";
  }
  return "none";
}

namespace {

using Clock = std::chrono::steady_clock;

uint64_t msBetween(Clock::time_point From, Clock::time_point To) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(To - From)
          .count());
}

/// Shared state of one runTaskDagPartial invocation.
struct DagRun {
  std::size_t NumTasks;
  const std::vector<std::vector<uint32_t>> &Succs;
  const FailableTaskBody &Body;
  unsigned NumWorkers;

  std::unique_ptr<std::atomic<uint32_t>[]> Deg;
  /// 1 after a task's body ran and returned true. Read post-join by the
  /// caller to replay exactly the unfinished suffix.
  std::unique_ptr<std::atomic<uint8_t>[]> TaskDone;
  /// Per-worker liveness counters, bumped once per worker-loop iteration
  /// (including parked iterations, via the 1 ms timed-wait backstop). The
  /// watchdog diffs them to name the workers that froze.
  std::unique_ptr<std::atomic<uint64_t>[]> Heartbeat;
  std::vector<std::unique_ptr<ChaseLevDeque<uint32_t>>> Deques;

  std::atomic<uint64_t> Remaining;
  std::atomic<bool> Done{false};

  /// Quiesce protocol: any failure path stores AbortWhy then Abort and
  /// wakes everyone; every worker re-checks stopping() per iteration (and
  /// inside simulated stalls), so the pool drains within one task body of
  /// the request. Successors of unfinished tasks are never released.
  std::atomic<bool> Abort{false};
  std::atomic<int> AbortWhy{static_cast<int>(DagAbort::None)};

  /// Overflow queue: the safety net for deque growth hitting bad_alloc.
  /// A failed hand-off lands here (mutex-protected, pre-reserved where
  /// possible) instead of being dropped; popOrSteal drains it.
  std::mutex OvM;
  std::vector<uint32_t> Overflow;
  std::atomic<uint64_t> OverflowPushes{0};

  // Parking. Epoch/NumParked are mutex-protected; a parker registers under
  // the lock, rescans every deque once, and only then waits, so a pusher
  // that sees NumParked == 0 is guaranteed its task is visible to that
  // rescan (Dekker pattern: both sides order their store before the other's
  // load with seq_cst fences).
  std::mutex M;
  std::condition_variable CV;
  uint64_t Epoch = 0;
  std::atomic<int> NumParked{0};

  std::atomic<uint64_t> TotalRun{0}, TotalSteals{0}, TotalParks{0};
  std::atomic<uint64_t> TotalFailures{0};
  std::atomic<unsigned> StalledWorkers{0};

  DagRun(std::size_t NumTasks,
         const std::vector<std::vector<uint32_t>> &Succs,
         const FailableTaskBody &Body, unsigned NumWorkers)
      : NumTasks(NumTasks), Succs(Succs), Body(Body), NumWorkers(NumWorkers),
        Deg(new std::atomic<uint32_t>[NumTasks ? NumTasks : 1]),
        TaskDone(new std::atomic<uint8_t>[NumTasks ? NumTasks : 1]),
        Heartbeat(new std::atomic<uint64_t>[NumWorkers]),
        Remaining(NumTasks) {
    for (std::size_t U = 0; U < NumTasks; ++U)
      TaskDone[U].store(0, std::memory_order_relaxed);
    for (unsigned W = 0; W < NumWorkers; ++W) {
      Heartbeat[W].store(0, std::memory_order_relaxed);
      Deques.emplace_back(std::make_unique<ChaseLevDeque<uint32_t>>(
          static_cast<int64_t>(NumTasks / NumWorkers + 64)));
    }
  }

  bool stopping() const {
    return Done.load(std::memory_order_acquire) ||
           Abort.load(std::memory_order_acquire);
  }

  void requestAbort(DagAbort Why) {
    int None = static_cast<int>(DagAbort::None);
    AbortWhy.compare_exchange_strong(None, static_cast<int>(Why),
                                     std::memory_order_relaxed);
    Abort.store(true, std::memory_order_release);
    wakeAll();
  }

  void wakeAll() {
    {
      std::lock_guard<std::mutex> L(M);
      ++Epoch;
    }
    CV.notify_all();
  }

  /// Called by a worker after it made new tasks stealable.
  void signalWork() {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (NumParked.load(std::memory_order_relaxed) > 0)
      wakeAll();
  }

  /// Hands a ready task to worker \p Me; never loses it (deque growth
  /// failure diverts to the overflow queue).
  void pushReady(unsigned Me, uint32_t V) {
    if (Deques[Me]->push(V))
      return;
    {
      std::lock_guard<std::mutex> L(OvM);
      Overflow.push_back(V);
    }
    OverflowPushes.fetch_add(1, std::memory_order_relaxed);
  }

  bool popOverflow(uint32_t &T) {
    std::lock_guard<std::mutex> L(OvM);
    if (Overflow.empty())
      return false;
    T = Overflow.back();
    Overflow.pop_back();
    return true;
  }

  bool popOrSteal(unsigned Me, uint32_t &T, uint64_t &Steals) {
    if (Deques[Me]->pop(T))
      return true;
    if (popOverflow(T))
      return true;
    for (unsigned I = 1; I < NumWorkers; ++I) {
      unsigned Victim = (Me + I) % NumWorkers;
      if (Deques[Victim]->steal(T)) {
        ++Steals;
        return true;
      }
    }
    return false;
  }

  void execute(uint32_t T, unsigned Me, uint64_t &Ran) {
    bool OK = false;
    try {
      OK = Body(T, Me);
    } catch (...) {
      OK = false; // A body that leaks an exception counts as failed.
    }
    if (!OK) {
      // The failed task stays not-done and its successors are never
      // released, so every completed task saw exactly the inputs a serial
      // DAG-order execution would have produced.
      TotalFailures.fetch_add(1, std::memory_order_relaxed);
      requestAbort(DagAbort::TaskFailed);
      return;
    }
    TaskDone[T].store(1, std::memory_order_relaxed);
    ++Ran;
    unsigned Pushed = 0;
    for (uint32_t V : Succs[T])
      if (Deg[V].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        pushReady(Me, V);
        ++Pushed;
      }
    if (Pushed > 0)
      signalWork();
    if (Remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      Done.store(true, std::memory_order_release);
      wakeAll();
    }
  }

  /// Simulated wedge for stall injection: sleeps without heartbeating (the
  /// point is to look dead to the watchdog) but checks Abort each slice so
  /// the post-abort join stays prompt.
  void stallFor(uint64_t Ms) {
    Clock::time_point End = Clock::now() + std::chrono::milliseconds(Ms);
    while (Clock::now() < End && !Abort.load(std::memory_order_acquire))
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  void workerLoop(unsigned Me) {
    uint64_t Ran = 0, Steals = 0, Parks = 0;
    uint32_t T = 0;
    while (!stopping()) {
      Heartbeat[Me].fetch_add(1, std::memory_order_relaxed);
      if (popOrSteal(Me, T, Steals)) {
        if (injectWorkerDeath(Me))
          break; // Dies holding T; only the watchdog can notice.
        if (uint64_t Ms = injectWorkerStall(Me)) {
          stallFor(Ms);
          if (stopping())
            break; // Quiesced mid-wedge; T stays not-done for replay.
        }
        execute(T, Me, Ran);
        continue;
      }
      // Nothing visible: register as parked, rescan once, then sleep. The
      // timed wait is a liveness backstop only; the epoch protocol is what
      // normally wakes us.
      uint64_t E;
      {
        std::lock_guard<std::mutex> L(M);
        E = Epoch;
      }
      NumParked.fetch_add(1, std::memory_order_seq_cst);
      bool GotTask = !stopping() && popOrSteal(Me, T, Steals);
      if (GotTask) {
        NumParked.fetch_sub(1, std::memory_order_relaxed);
        execute(T, Me, Ran);
        continue;
      }
      if (stopping()) {
        NumParked.fetch_sub(1, std::memory_order_relaxed);
        continue; // Outer loop exits.
      }
      {
        std::unique_lock<std::mutex> L(M);
        ++Parks;
        CV.wait_for(L, std::chrono::milliseconds(1),
                    [&] { return Epoch != E || stopping(); });
      }
      NumParked.fetch_sub(1, std::memory_order_relaxed);
    }
    TotalRun.fetch_add(Ran, std::memory_order_relaxed);
    TotalSteals.fetch_add(Steals, std::memory_order_relaxed);
    TotalParks.fetch_add(Parks, std::memory_order_relaxed);
  }

  /// Watchdog: detects deadline expiry and global stalls. Stall detection
  /// watches Remaining, not heartbeats — a parked-but-healthy pool
  /// heartbeats forever while making no progress, and that is exactly the
  /// wedge (lost task, dead worker) this must catch. Heartbeats are only
  /// used to *name* the frozen workers once a stall is established.
  void watchdogLoop(uint64_t DeadlineMs, uint64_t StallTimeoutMs) {
    Clock::time_point Start = Clock::now();
    Clock::time_point LastProgress = Start;
    uint64_t LastRemaining = Remaining.load(std::memory_order_acquire);
    std::vector<uint64_t> HbSnap(NumWorkers, 0);
    auto Snap = [&] {
      for (unsigned W = 0; W < NumWorkers; ++W)
        HbSnap[W] = Heartbeat[W].load(std::memory_order_relaxed);
    };
    Snap();
    uint64_t Horizon = StallTimeoutMs ? StallTimeoutMs : DeadlineMs;
    if (DeadlineMs)
      Horizon = std::min(Horizon, DeadlineMs);
    uint64_t TickMs = Horizon / 8;
    if (TickMs < 1)
      TickMs = 1;
    if (TickMs > 10)
      TickMs = 10;
    while (!stopping()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(TickMs));
      if (stopping())
        break;
      Clock::time_point Now = Clock::now();
      if (DeadlineMs && msBetween(Start, Now) >= DeadlineMs) {
        requestAbort(DagAbort::Deadline);
        break;
      }
      uint64_t R = Remaining.load(std::memory_order_acquire);
      if (R != LastRemaining) {
        LastRemaining = R;
        LastProgress = Now;
        Snap();
        continue;
      }
      if (StallTimeoutMs && msBetween(LastProgress, Now) >= StallTimeoutMs) {
        // Frozen = no heartbeat over the last full tick. Healthy parked
        // workers advance many times per tick via the 1 ms wait backstop.
        unsigned Frozen = 0;
        for (unsigned W = 0; W < NumWorkers; ++W)
          if (Heartbeat[W].load(std::memory_order_relaxed) == HbSnap[W])
            ++Frozen;
        StalledWorkers.store(Frozen, std::memory_order_relaxed);
        requestAbort(DagAbort::Stalled);
        break;
      }
      Snap(); // Rolling per-tick baseline for the frozen-worker diff.
    }
  }
};

} // namespace

DagRunResult shackle::runTaskDagPartial(
    std::size_t NumTasks, const std::vector<std::vector<uint32_t>> &Succs,
    const std::vector<uint32_t> &InDegree, const DagRunOptions &Opts,
    const FailableTaskBody &Body) {
  DagRunResult Result;
  if (Succs.size() != NumTasks || InDegree.size() != NumTasks) {
    Result.Refused = true;
    return Result;
  }

  // Validate: recompute in-degrees and run a Kahn pass. Refusing a cyclic
  // or inconsistent graph *before* running anything keeps task side effects
  // all-or-nothing, which the serial-fallback callers rely on.
  std::vector<uint32_t> Deg(NumTasks, 0);
  for (std::size_t U = 0; U < NumTasks; ++U)
    for (uint32_t V : Succs[U]) {
      if (V >= NumTasks) {
        Result.Refused = true;
        return Result;
      }
      ++Deg[V];
    }
  for (std::size_t U = 0; U < NumTasks; ++U)
    if (Deg[U] != InDegree[U]) {
      Result.Refused = true;
      return Result;
    }
  {
    std::vector<uint32_t> Work = Deg;
    std::vector<uint32_t> Queue;
    Queue.reserve(NumTasks);
    for (std::size_t U = 0; U < NumTasks; ++U)
      if (Work[U] == 0)
        Queue.push_back(static_cast<uint32_t>(U));
    for (std::size_t I = 0; I < Queue.size(); ++I)
      for (uint32_t V : Succs[Queue[I]])
        if (--Work[V] == 0)
          Queue.push_back(V);
    if (Queue.size() != NumTasks) {
      Result.Refused = true; // Cycle.
      return Result;
    }
  }

  if (NumTasks == 0) {
    Result.Completed = true;
    return Result;
  }

  unsigned NumWorkers = Opts.NumThreads == 0 ? 1 : Opts.NumThreads;
  if (static_cast<std::size_t>(NumWorkers) > NumTasks)
    NumWorkers = static_cast<unsigned>(NumTasks);

  DagRun Run(NumTasks, Succs, Body, NumWorkers);
  for (std::size_t U = 0; U < NumTasks; ++U)
    Run.Deg[U].store(Deg[U], std::memory_order_relaxed);

  // Seed the deques round-robin with the initially ready tasks (before any
  // worker starts, so plain pushes are safe and every worker begins with
  // a fair share of the first wavefront). pushReady keeps even a seeding
  // allocation failure from losing a task.
  unsigned Next = 0;
  for (std::size_t U = 0; U < NumTasks; ++U)
    if (Deg[U] == 0) {
      Run.pushReady(Next, static_cast<uint32_t>(U));
      Next = (Next + 1) % NumWorkers;
    }

  std::thread Watchdog;
  bool HasWatchdog = Opts.DeadlineMs != 0 || Opts.StallTimeoutMs != 0;
  if (HasWatchdog)
    Watchdog = std::thread([&Run, &Opts] {
      Run.watchdogLoop(Opts.DeadlineMs, Opts.StallTimeoutMs);
    });

  std::vector<std::thread> Threads;
  Threads.reserve(NumWorkers - 1);
  for (unsigned W = 1; W < NumWorkers; ++W)
    Threads.emplace_back([&Run, W] { Run.workerLoop(W); });
  Run.workerLoop(0);
  for (std::thread &Th : Threads)
    Th.join();
  if (HasWatchdog)
    Watchdog.join();

  Result.TaskDone.resize(NumTasks, 0);
  uint64_t NumDone = 0;
  for (std::size_t U = 0; U < NumTasks; ++U)
    if (Run.TaskDone[U].load(std::memory_order_relaxed)) {
      Result.TaskDone[U] = 1;
      ++NumDone;
    }
  Result.Completed = NumDone == NumTasks;

  Result.Stats.ThreadsUsed = NumWorkers;
  Result.Stats.TasksRun = Run.TotalRun.load(std::memory_order_relaxed);
  Result.Stats.Steals = Run.TotalSteals.load(std::memory_order_relaxed);
  Result.Stats.Parks = Run.TotalParks.load(std::memory_order_relaxed);
  Result.Stats.TaskFailures =
      Run.TotalFailures.load(std::memory_order_relaxed);
  Result.Stats.OverflowPushes =
      Run.OverflowPushes.load(std::memory_order_relaxed);
  Result.Stats.StalledWorkers =
      Run.StalledWorkers.load(std::memory_order_relaxed);
  Result.Stats.Abort = Result.Completed
                           ? DagAbort::None
                           : static_cast<DagAbort>(Run.AbortWhy.load(
                                 std::memory_order_relaxed));
  return Result;
}

bool shackle::runTaskDag(std::size_t NumTasks,
                         const std::vector<std::vector<uint32_t>> &Succs,
                         const std::vector<uint32_t> &InDegree,
                         unsigned NumThreads, const TaskBody &Body,
                         DagRunStats *Stats) {
  DagRunOptions Opts;
  Opts.NumThreads = NumThreads;
  DagRunResult R = runTaskDagPartial(
      NumTasks, Succs, InDegree, Opts,
      [&Body](uint32_t T, unsigned W) {
        Body(T, W);
        return true;
      });
  if (Stats)
    *Stats = R.Stats;
  return !R.Refused && R.Completed;
}
