//===- ParallelExecutor.h - Parallel block-shackled execution ---*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel execution mode: plan once, run many times.
///
/// A ParallelPlan fixes a program, a shackle chain, and concrete parameter
/// values, then precomputes everything workers need so that execution
/// touches no shared mutable analysis state:
///
///   1. code generation through the fault-tolerant pipeline (legality under
///      a SolverBudget, shackled -> naive -> original tiers);
///   2. the per-block task list (partitionLoopNestByBlocks);
///   3. the block dependence DAG (buildBlockDepGraph).
///
/// Hierarchical chains (one factor group per memory level, Figure 10) can
/// schedule at a coarser granularity: ParallelPlanOptions::TaskLevel picks
/// how many leading factors define the tasks, the partition binds only
/// those factors' block dimensions (inner block loops become part of the
/// task segments, replayed serially in original shackled order), and the
/// DAG is built over the projected outer coordinates. Every runtime
/// guarantee - determinism, undo-log rollback, degraded replay - holds
/// unchanged at the outer-task granularity: a task's undo footprint is the
/// whole outer block, and a retry or serial replay re-runs the outer block
/// including all inner levels.
///
/// run() executes ready blocks as tasks on the work-stealing scheduler,
/// releasing successors as in-degrees drop to zero. Whenever any stage
/// degrades - shackle not proven legal, unpartitionable nest, cyclic or
/// over-dense or solver-Unknown-poisoned graph - the plan keeps a serial
/// fallback (the same LoopNest run in traversal order, the multi-pass
/// runtime's philosophy of never refusing to execute), records a
/// ParallelFallback diagnostic, and still produces correct results.
///
/// Runtime faults extend the same ladder downward (DESIGN.md §9): a block
/// whose body throws is rolled back from its undo log (captureBlockUndo)
/// and retried in place up to MaxRetries times; a block that keeps failing,
/// a watchdog stall, or a deadline quiesces the scheduler and the surviving
/// unfinished blocks are replayed serially in dependence order — mode
/// Degraded, diagnostics ParallelFault/ParallelDegrade, results still
/// bitwise-identical to serial. Only a block that fails every serial
/// attempt too marks the run Failed.
///
/// The data plane gets the same treatment (DESIGN.md §12): undo logs are
/// checksummed at capture and verified before every restore (an unsound
/// restore is refused and the run restarts serially from a pristine input
/// snapshot); --verify-data=block commits a block only after two
/// independent executions agree bit-for-bit, so a silent bit-flip is
/// detected and recomputed; and a block that commits a non-finite value is
/// quarantined with its downstream dependence cone and reported with exact
/// provenance (ParallelPoison) instead of poisoning the results silently.
///
/// Determinism: for every dependence edge u -> v the scheduler orders all
/// of block u before all of block v, and instances inside a block run in
/// original program order; every pair of conflicting accesses is therefore
/// ordered identically to the serial shackled execution, making parallel
/// results bitwise-identical to serial ones for any thread count.
///
/// Locality (DESIGN.md §11): by default a run builds an affinity map —
/// one contiguous, segment-weighted range of the lexicographic block order
/// per worker — seeds every task on its home worker, and lets the
/// hierarchical scheduler keep tasks near home (same-domain steals first,
/// remote domains only when a domain runs dry). Placement, domain size,
/// steal policy, and the first-touch warming pass are all per-run options;
/// none of them changes results, only where blocks execute.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PARALLEL_PARALLELEXECUTOR_H
#define SHACKLE_PARALLEL_PARALLELEXECUTOR_H

#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "parallel/Affinity.h"
#include "parallel/BlockDepGraph.h"
#include "parallel/BlockPartition.h"
#include "parallel/Integrity.h"
#include "parallel/Scheduler.h"
#include "support/Diagnostics.h"
#include "support/Progress.h"

#include <cstdint>
#include <string>
#include <vector>

namespace shackle {

struct ParallelPlanOptions {
  /// Budget for both the legality check and the DAG sign-pattern queries.
  SolverBudget Budget;
  /// Passed through to buildBlockDepGraph.
  uint64_t MaxEdges = 8ull << 20;
  /// Task granularity for hierarchical chains: the number of leading chain
  /// factors whose block coordinates define the schedulable tasks. 0 (or
  /// any value >= the chain length) is the flat mode - one task per
  /// innermost block of the full chain. For a two-level chain (Figure 10),
  /// TaskLevel = <number of outer-level factors> makes each task one outer
  /// block that replays its inner shackle levels serially in the original
  /// shackled order - far fewer DAG nodes at large N.
  unsigned TaskLevel = 0;
  /// Pick the task level automatically: the coarsest factor prefix whose
  /// partition still yields at least max(16, 4 * ThreadsHint) tasks, so
  /// the DAG stays as small as the thread count allows. Overrides
  /// TaskLevel.
  bool AutoTaskLevel = false;
  /// Worker-count hint for AutoTaskLevel (0: assume 8).
  unsigned ThreadsHint = 0;
  /// Task-count ceiling for the partition walk: a partition finer than
  /// this fails (serial fallback) instead of exhausting memory. 0 = off.
  uint64_t MaxTasks = 1ull << 20;
  /// Work ceiling for the DAG's quadratic pair scan; see
  /// BlockDepGraphOptions::MaxPairVisits.
  uint64_t MaxPairVisits = 1ull << 30;
  /// Cached-verdict reuse (plan-cache service): skip legality violation
  /// queries for block dims below this bound. Sound only when the factor
  /// prefix covering those dims is already proven Legal for this program
  /// (see checkLegalityFrom).
  unsigned LegalitySkipBlockDims = 0;
  /// Cached-verdict reuse: the chain is already proven Illegal for this
  /// program, so skip the solver entirely and build an original-order plan.
  bool LegalityKnownIllegal = false;
  /// When non-null, receives run/skipped legality-query counts.
  LegalityCheckStats *LegalityStats = nullptr;
};

/// How one execution actually ran.
enum class ParallelMode {
  Parallel,       ///< Every block completed in the parallel phase.
  Degraded,       ///< Parallel phase quiesced; suffix replayed serially.
  SerialFallback, ///< Plan was never parallel-ready; ran serially.
};

const char *parallelModeName(ParallelMode M);

/// How initially-ready tasks and released successors are placed on workers.
enum class TaskPlacement {
  /// Owner-computes: an affinity map computed at plan time splits the
  /// lexicographic block order into one contiguous, weight-balanced range
  /// per worker; every task is seeded to (and routed back toward) its home
  /// worker, so neighboring blocks — which share panel reuse by the paper's
  /// data-centric construction — stay in the same cache.
  Affinity,
  /// The legacy policy: seed round-robin, successors stay with whichever
  /// worker released them. Kept as the locality baseline.
  RoundRobin,
};

/// Per-run knobs for the self-healing execution path.
struct ParallelRunOptions {
  unsigned NumThreads = 1;
  /// Task placement policy (see TaskPlacement).
  TaskPlacement Placement = TaskPlacement::Affinity;
  /// Locality-domain width for hierarchical stealing: workers [0, D),
  /// [D, 2D), ... steal within their own domain first. 0 = auto-detect
  /// (one domain per NUMA node when the machine has several; otherwise a
  /// single flat domain, the legacy behavior).
  unsigned DomainSize = 0;
  /// Consecutive empty same-domain steal scans before a worker tries
  /// remote domains. 0 disables cross-domain stealing; see
  /// DagRunOptions::StealRemoteAfter for the interaction with DomainSize.
  unsigned StealRemoteAfter = 2;
  /// Benchmark baseline: steal from seeded pseudo-random victims instead
  /// of the deterministic local-first ring (forces locality loss).
  bool RandomSteal = false;
  /// Seed for RandomSteal victim selection (runs stay reproducible).
  uint64_t StealSeed = 0;
  /// Warm each home worker's pages before the run: every worker reads its
  /// own tasks' write footprints once, so first-touch NUMA policies place
  /// those pages on the worker's node. Read-only — footprints of distinct
  /// tasks may overlap, so the warming pass never writes.
  bool FirstTouch = false;
  /// Snapshot each block's write footprint before running it so a failed
  /// block can be rolled back and retried. Off = the pre-fault-tolerance
  /// fast path (benchmarks): any task failure poisons the run.
  bool UndoLog = true;
  /// Rollback-and-retry attempts per block (on top of the first attempt),
  /// applied independently in the parallel phase and the serial replay.
  unsigned MaxRetries = 2;
  /// Data-verification level (needs UndoLog; silently Off without it).
  /// Undo checksums every captured undo log and verifies it before any
  /// restore. Block additionally commits a block only after two
  /// executions from the same pre-state produce bit-identical footprints
  /// — every block runs at least twice, the paranoia mode that catches
  /// silent bit-flips in committed data.
  DataVerify VerifyData = DataVerify::Undo;
  /// Quarantine blocks that commit a non-finite value: report the first
  /// poisoned element with exact provenance, roll the block back, and fail
  /// the run with its downstream dependence cone named, instead of letting
  /// the NaN/Inf propagate (needs UndoLog; off without it).
  bool PoisonCheck = true;
  /// Abort the parallel phase this many ms after it starts (0 = none).
  uint64_t DeadlineMs = 0;
  /// Watchdog: abort the parallel phase when no block completes for this
  /// many ms (0 = off). When the fault injector is armed and this is 0, a
  /// conservative default is applied so injected stalls/deaths cannot hang
  /// the run.
  uint64_t StallTimeoutMs = 0;
  /// Per-worker memory-trace sinks, for cache simulation of the parallel
  /// traversal order: when non-null, segments executed by worker W trace
  /// into (*WorkerTraces)[W] (entries past the vector's size are silently
  /// untraced), and the degraded serial replay traces into entry 0. Each
  /// worker writes only its own sink, so plain (unsynchronized) sinks are
  /// race-free. Undo-log snapshots do not trace - they are runtime
  /// bookkeeping, not program accesses.
  std::vector<TraceFn> *WorkerTraces = nullptr;
};

struct ParallelRunStats {
  ParallelMode Mode = ParallelMode::SerialFallback;
  unsigned ThreadsUsed = 1;
  /// Tasks completed. With a hierarchical plan these are *outer* tasks
  /// (TaskFactors < TotalFactors), not inner block visits; every progress
  /// and retry counter below shares that granularity.
  uint64_t BlocksRun = 0;
  /// Task granularity of the plan that ran: tasks cover the blocks of the
  /// first TaskFactors of TotalFactors chain factors.
  unsigned TaskFactors = 0;
  unsigned TotalFactors = 0;
  /// Code segments executed across completed tasks - the inner-level work
  /// a hierarchical task amortizes (equals BlocksRun for flat plans with
  /// unsplit blocks).
  uint64_t SegmentsRun = 0;
  uint64_t Steals = 0;
  // Steal-locality telemetry (Steals == LocalSteals + RemoteSteals).
  uint64_t LocalSteals = 0;  ///< Steals from a same-domain victim.
  uint64_t RemoteSteals = 0; ///< Steals that crossed a domain boundary.
  uint64_t HomeHits = 0; ///< Tasks executed on their affinity home worker.
  uint64_t MailboxPushes = 0;    ///< Hand-offs delivered to home mailboxes.
  uint64_t MailboxFallbacks = 0; ///< Contended mailboxes; kept locally.
  unsigned NumDomains = 1;     ///< Locality domains the pool was split into.
  unsigned DomainSize = 0;     ///< Workers per domain after clamping.
  /// Estimated bytes of block write-footprint executed outside the home
  /// worker's domain (undo-log entry counts x sizeof(double); 0 when undo
  /// logging or affinity placement is off).
  uint64_t BytesMigrated = 0;
  /// Elements read by the first-touch warming pass (0 unless FirstTouch).
  uint64_t FirstTouchElems = 0;
  /// Block-body failures caught (each rolled back via the undo log).
  uint64_t Faults = 0;
  /// Rollback-and-retry attempts across all blocks and both phases.
  uint64_t Retries = 0;
  /// Blocks completed by the serial replay after a quiesce.
  uint64_t ReplayedSerially = 0;
  /// Why the parallel phase stopped early (None when it completed).
  DagAbort Abort = DagAbort::None;
  /// A block failed every attempt, including serial replay; results are
  /// unreliable. Never set when recovery succeeded.
  bool Failed = false;
  /// Data-integrity telemetry (checksums, corruptions, quarantines).
  IntegrityStats Integrity;
  /// Verification level the run actually used (Off when UndoLog was off,
  /// whatever ParallelRunOptions::VerifyData asked for otherwise).
  DataVerify VerifyUsed = DataVerify::Off;
  /// Blocks completed per attempt (parallel phase, then serial replay) —
  /// the same partial-progress ledger the multi-pass runtime keeps.
  ProgressLog Progress;
  /// Per-block retry counts, indexed by block id; empty when no retries.
  std::vector<uint32_t> RetriesPerBlock;
  /// ParallelFault / ParallelDegrade diagnostics from this run.
  std::vector<Diagnostic> Diags;
};

/// The deserializable pieces of a ParallelPlan, produced by the plan-cache
/// serdes layer (src/service/PlanSerdes). Partition segments must already
/// point into CG.Nest.
struct ParallelPlanParts {
  CodegenResult CG;
  BlockPartition Partition;
  BlockDepGraph Graph;
  std::vector<Diagnostic> Diags;
  std::vector<int64_t> Params;
  unsigned TaskFactors = 0;
  unsigned TotalFactors = 0;
};

class ParallelPlan {
public:
  /// Builds a plan; never fails (degrades to a serial plan instead, with
  /// the reasons in diags()).
  static ParallelPlan build(const Program &P, const ShackleChain &Chain,
                            std::vector<int64_t> ParamValues,
                            const ParallelPlanOptions &Opts =
                                ParallelPlanOptions());

  /// Reassembles a plan from deserialized parts (plan-cache warm hits).
  /// Ready is recomputed from the parts with the same criteria build()
  /// applies, so a tampered or stale snapshot degrades to serial instead of
  /// executing an untrusted schedule.
  static ParallelPlan fromParts(ParallelPlanParts Parts);

  /// True when run() with >1 thread will actually execute blocks
  /// concurrently (graph built, acyclic, partition OK).
  bool parallelReady() const { return Ready; }

  /// The nest every execution (parallel or serial) interprets.
  const LoopNest &nest() const { return CG.Nest; }
  CodegenTier tier() const { return CG.Tier; }
  /// The legality verdict that gated the transformation (service verdict
  /// cache records it per factor prefix).
  const LegalityResult &legality() const { return CG.Legality; }
  const BlockDepGraph &graph() const { return Graph; }
  const BlockPartition &partition() const { return Partition; }
  const std::vector<Diagnostic> &diags() const { return Diags; }
  const std::vector<int64_t> &paramValues() const { return Params; }

  /// Task granularity: tasks are the blocks of the first taskFactors() of
  /// totalFactors() chain factors; hierarchical() when that is a proper
  /// prefix (inner levels replayed serially inside each task).
  unsigned taskFactors() const { return TaskFactors; }
  unsigned totalFactors() const { return TotalFactors; }
  bool hierarchical() const { return TaskFactors < TotalFactors; }

  /// Plan-construction cost split: the partition walk(s) and the DAG
  /// build (sign-pattern search + pair scan), in milliseconds.
  double partitionMs() const { return PartitionMs; }
  double dagBuildMs() const { return DagBuildMs; }

  /// Executes the plan on \p Inst (whose parameter values must match) under
  /// \p Opts: undo-logged blocks, rollback-and-retry on failure, watchdog
  /// and deadline aborts, serial replay of the unfinished suffix after a
  /// quiesce. Never throws and never hangs; see ParallelRunStats for what
  /// happened. Falls back to serial in-order execution when the plan is
  /// not parallel-ready.
  ParallelRunStats run(ProgramInstance &Inst,
                       const ParallelRunOptions &Opts) const;

  /// Fast-path overload (benchmarks, determinism tests): \p NumThreads
  /// workers, undo logging off, no watchdog. Thread-count 0 means 1.
  ParallelRunStats run(ProgramInstance &Inst, unsigned NumThreads) const;

  /// Serial reference execution of the same nest (always available).
  void runSerial(ProgramInstance &Inst) const { runLoopNest(CG.Nest, Inst); }

  /// The affinity map a run with \p NumThreads threads would use: one
  /// contiguous, segment-weighted range of the lexicographic task order per
  /// effective worker (the thread count is clamped to the task count, the
  /// same clamp the scheduler applies). Exposed for tests and for tools
  /// that want to inspect or pre-place block data.
  AffinityMap affinityMap(unsigned NumThreads) const;

  /// One-line human-readable summary (task level, tasks, edges, critical
  /// path, DAG build time, mode).
  std::string summary() const;

private:
  CodegenResult CG;
  BlockPartition Partition;
  BlockDepGraph Graph;
  std::vector<Diagnostic> Diags;
  std::vector<int64_t> Params;
  unsigned TaskFactors = 0;
  unsigned TotalFactors = 0;
  double PartitionMs = 0.0;
  double DagBuildMs = 0.0;
  bool Ready = false;
};

} // namespace shackle

#endif // SHACKLE_PARALLEL_PARALLELEXECUTOR_H
