//===- ParallelExecutor.h - Parallel block-shackled execution ---*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The parallel execution mode: plan once, run many times.
///
/// A ParallelPlan fixes a program, a shackle chain, and concrete parameter
/// values, then precomputes everything workers need so that execution
/// touches no shared mutable analysis state:
///
///   1. code generation through the fault-tolerant pipeline (legality under
///      a SolverBudget, shackled -> naive -> original tiers);
///   2. the per-block task list (partitionLoopNestByBlocks);
///   3. the block dependence DAG (buildBlockDepGraph).
///
/// run() executes ready blocks as tasks on the work-stealing scheduler,
/// releasing successors as in-degrees drop to zero. Whenever any stage
/// degrades - shackle not proven legal, unpartitionable nest, cyclic or
/// over-dense or solver-Unknown-poisoned graph - the plan keeps a serial
/// fallback (the same LoopNest run in traversal order, the multi-pass
/// runtime's philosophy of never refusing to execute), records a
/// ParallelFallback diagnostic, and still produces correct results.
///
/// Determinism: for every dependence edge u -> v the scheduler orders all
/// of block u before all of block v, and instances inside a block run in
/// original program order; every pair of conflicting accesses is therefore
/// ordered identically to the serial shackled execution, making parallel
/// results bitwise-identical to serial ones for any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PARALLEL_PARALLELEXECUTOR_H
#define SHACKLE_PARALLEL_PARALLELEXECUTOR_H

#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "parallel/BlockDepGraph.h"
#include "parallel/BlockPartition.h"
#include "parallel/Scheduler.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace shackle {

struct ParallelPlanOptions {
  /// Budget for both the legality check and the DAG sign-pattern queries.
  SolverBudget Budget;
  /// Passed through to buildBlockDepGraph.
  uint64_t MaxEdges = 8ull << 20;
};

/// How one execution actually ran.
enum class ParallelMode { Parallel, SerialFallback };

const char *parallelModeName(ParallelMode M);

struct ParallelRunStats {
  ParallelMode Mode = ParallelMode::SerialFallback;
  unsigned ThreadsUsed = 1;
  uint64_t BlocksRun = 0;
  uint64_t Steals = 0;
};

class ParallelPlan {
public:
  /// Builds a plan; never fails (degrades to a serial plan instead, with
  /// the reasons in diags()).
  static ParallelPlan build(const Program &P, const ShackleChain &Chain,
                            std::vector<int64_t> ParamValues,
                            const ParallelPlanOptions &Opts =
                                ParallelPlanOptions());

  /// True when run() with >1 thread will actually execute blocks
  /// concurrently (graph built, acyclic, partition OK).
  bool parallelReady() const { return Ready; }

  /// The nest every execution (parallel or serial) interprets.
  const LoopNest &nest() const { return CG.Nest; }
  CodegenTier tier() const { return CG.Tier; }
  const BlockDepGraph &graph() const { return Graph; }
  const BlockPartition &partition() const { return Partition; }
  const std::vector<Diagnostic> &diags() const { return Diags; }
  const std::vector<int64_t> &paramValues() const { return Params; }

  /// Executes the plan on \p Inst (whose parameter values must match) with
  /// \p NumThreads workers. Thread-count 0 means 1. Falls back to serial
  /// in-order execution when the plan is not parallel-ready.
  ParallelRunStats run(ProgramInstance &Inst, unsigned NumThreads) const;

  /// Serial reference execution of the same nest (always available).
  void runSerial(ProgramInstance &Inst) const { runLoopNest(CG.Nest, Inst); }

  /// One-line human-readable summary (blocks, edges, critical path, mode).
  std::string summary() const;

private:
  CodegenResult CG;
  BlockPartition Partition;
  BlockDepGraph Graph;
  std::vector<Diagnostic> Diags;
  std::vector<int64_t> Params;
  bool Ready = false;
};

} // namespace shackle

#endif // SHACKLE_PARALLEL_PARALLELEXECUTOR_H
