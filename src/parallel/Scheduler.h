//===- Scheduler.h - Work-stealing DAG task scheduler -----------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a dependence DAG of tasks on a pool of worker threads. Each
/// worker owns a Chase–Lev deque; completed tasks decrement the in-degree
/// of their successors and push the ones that drop to zero onto the
/// finishing worker's deque (locality: a block's successors usually touch
/// adjacent data). Idle workers steal from random victims and park on a
/// condition variable when the whole system looks empty, so a wavefront
/// that narrows to one task does not spin the other cores.
///
/// The caller must pass an acyclic graph (runTaskDag verifies with a Kahn
/// pass before touching any task and refuses cyclic inputs). Task bodies
/// run exactly once; for every edge u -> v, the body of u happens-before
/// the body of v (the in-degree decrement is acq_rel and the deque provides
/// release/acquire hand-off), so data written by u is visible to v without
/// further synchronization.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PARALLEL_SCHEDULER_H
#define SHACKLE_PARALLEL_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <vector>

namespace shackle {

/// Counters from one DAG execution (telemetry; not needed for correctness).
struct DagRunStats {
  unsigned ThreadsUsed = 1;
  uint64_t TasksRun = 0;
  uint64_t Steals = 0;    ///< Successful steals across all workers.
  uint64_t Parks = 0;     ///< Times a worker went to sleep empty-handed.
};

/// Task body: called exactly once per task, with the task id and the index
/// of the worker executing it.
using TaskBody = std::function<void(uint32_t Task, unsigned Worker)>;

/// Executes tasks 0..NumTasks-1 respecting the edges Succs (task u lists
/// every v that must wait for u); InDegree[v] must equal the number of
/// predecessors of v. Spawns NumThreads-1 workers and uses the calling
/// thread as worker 0 (NumThreads == 1 runs everything inline).
///
/// Returns false - without running anything - if the graph is cyclic or
/// InDegree is inconsistent with Succs; returns true after all tasks ran.
bool runTaskDag(std::size_t NumTasks,
                const std::vector<std::vector<uint32_t>> &Succs,
                const std::vector<uint32_t> &InDegree, unsigned NumThreads,
                const TaskBody &Body, DagRunStats *Stats = nullptr);

} // namespace shackle

#endif // SHACKLE_PARALLEL_SCHEDULER_H
