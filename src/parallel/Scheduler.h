//===- Scheduler.h - Work-stealing DAG task scheduler -----------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes a dependence DAG of tasks on a pool of worker threads. Each
/// worker owns a Chase–Lev deque plus a mutex-protected mailbox (Chase–Lev
/// pushes are owner-only, so a foreign hand-off needs the mailbox).
/// Completed tasks decrement the in-degree of their successors; a released
/// successor goes to the finishing worker's own deque, or — when an
/// affinity map names a different home worker — to that home's mailbox,
/// falling back to the local deque if the mailbox is contended, so a block
/// stays with the worker whose cache holds its panels.
///
/// Idle workers scan victims deterministically, not randomly: first the
/// other deques of their own locality domain (a contiguous group of
/// DomainSize workers) in ring order (Me + I) % DomainSize, then — only
/// after StealRemoteAfter consecutive empty local scans — every remote
/// deque and finally every foreign mailbox, so tasks homed to a dead
/// worker or a dead domain are still picked up. The deterministic ring
/// keeps chaos runs reproducible; RandomVictim (for locality baselines)
/// replaces the scan's starting point with a seeded pseudo-random one that
/// is still a pure function of (StealSeed, worker, attempt). Workers park
/// on a condition variable when the whole system looks empty, so a
/// wavefront that narrows to one task does not spin the other cores.
///
/// The caller must pass an acyclic graph (a Kahn pass verifies before
/// touching any task and refuses cyclic inputs). Task bodies run at most
/// once; for every edge u -> v, the body of u happens-before the body of v
/// (the in-degree decrement is acq_rel and the deque provides
/// release/acquire hand-off), so data written by u is visible to v without
/// further synchronization.
///
/// runTaskDagPartial adds the failure story: a body may report failure
/// (return false or throw), a watchdog may observe a deadline or a global
/// stall, and either event *quiesces* the run — every worker stops at its
/// next loop iteration, no successor of an unfinished task is ever
/// released, and the per-task completion map comes back so the caller can
/// replay exactly the unfinished suffix. Failed or abandoned tasks never
/// release successors, so everything a completed task wrote is exactly what
/// a serial prefix of the DAG would have written. Deque overflow (growth
/// hitting bad_alloc) diverts the hand-off to a mutex-protected overflow
/// queue instead of losing the task.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PARALLEL_SCHEDULER_H
#define SHACKLE_PARALLEL_SCHEDULER_H

#include <cstdint>
#include <functional>
#include <vector>

namespace shackle {

/// Why a partial run stopped early.
enum class DagAbort {
  None,       ///< Ran to completion.
  TaskFailed, ///< A task body returned false or threw.
  Deadline,   ///< DeadlineMs expired.
  Stalled,    ///< No task completed for StallTimeoutMs (wedged worker).
};

const char *dagAbortName(DagAbort A);

/// Counters from one DAG execution (telemetry; not needed for correctness).
struct DagRunStats {
  unsigned ThreadsUsed = 1;
  uint64_t TasksRun = 0;
  uint64_t Steals = 0; ///< Successful steals across all workers.
  uint64_t Parks = 0;  ///< Times a worker went to sleep empty-handed.
  uint64_t TaskFailures = 0;   ///< Bodies that returned false or threw.
  uint64_t OverflowPushes = 0; ///< Hand-offs diverted by deque bad_alloc.
  unsigned StalledWorkers = 0; ///< Workers without a heartbeat at a stall.
  DagAbort Abort = DagAbort::None;
  // Steal-locality telemetry. Steals == LocalSteals + RemoteSteals.
  uint64_t LocalSteals = 0;  ///< Steals from a same-domain victim.
  uint64_t RemoteSteals = 0; ///< Steals crossing a domain boundary.
  uint64_t MailboxPushes = 0;    ///< Hand-offs delivered to a home mailbox.
  uint64_t MailboxFallbacks = 0; ///< Contended mailboxes; kept locally.
  uint64_t HomeHits = 0; ///< Tasks executed on their affinity home worker.
  unsigned NumDomains = 1;      ///< Locality domains the pool was split into.
  unsigned DomainSizeUsed = 0;  ///< Workers per domain after clamping.
};

/// Task body: called at most once per task, with the task id and the index
/// of the worker executing it.
using TaskBody = std::function<void(uint32_t Task, unsigned Worker)>;

/// Failable task body: returns false (or throws anything) to report that
/// the task did not complete; its successors are then never released and
/// the run aborts with DagAbort::TaskFailed.
using FailableTaskBody = std::function<bool(uint32_t Task, unsigned Worker)>;

struct DagRunOptions {
  unsigned NumThreads = 1;
  /// Abort the run this many ms after it starts (0 = no deadline).
  uint64_t DeadlineMs = 0;
  /// Abort when no task completes for this many ms (0 = no stall watch).
  /// This is the watchdog that catches wedged or dead workers: parked
  /// workers keep heartbeating, so only a genuinely stuck run trips it.
  uint64_t StallTimeoutMs = 0;
  /// Optional task -> home-worker map (size must equal the task count, or
  /// it is ignored; entries are taken modulo the effective worker count,
  /// which may be clamped below NumThreads). When set, initially ready
  /// tasks are seeded to their home's deque and released successors are
  /// routed to their home's mailbox; when null, seeding is round-robin and
  /// successors stay with the finishing worker (the legacy policy).
  const std::vector<uint32_t> *Affinity = nullptr;
  /// Locality-domain width: workers [0, D), [D, 2D), ... form domains.
  /// 0 (or any value >= the worker count) puts every worker in one domain,
  /// which reproduces the pre-hierarchical flat steal scan.
  unsigned DomainSize = 0;
  /// Consecutive empty same-domain scans before a worker widens its
  /// stealing to remote domains (deques, then mailboxes). 0 disables
  /// cross-domain stealing entirely; combined with DomainSize == 1 it
  /// disables stealing altogether, and mailbox delivery then blocks
  /// (instead of falling back locally) so every task still reaches its
  /// home worker.
  unsigned StealRemoteAfter = 2;
  /// Baseline for locality benchmarks: scan victims from a seeded
  /// pseudo-random starting point (ignoring domains) instead of the
  /// deterministic local-first ring. Victim order is still a pure function
  /// of (StealSeed, worker, attempt), so runs remain reproducible.
  bool RandomVictim = false;
  uint64_t StealSeed = 0;
};

struct DagRunResult {
  /// The graph was cyclic or inconsistent; nothing ran.
  bool Refused = false;
  /// Every task completed successfully.
  bool Completed = false;
  /// Per-task completion map (1 = body ran and returned true). Valid when
  /// !Refused; the caller replays the zero entries in topological order.
  std::vector<uint8_t> TaskDone;
  DagRunStats Stats;
};

/// Executes tasks 0..NumTasks-1 respecting the edges Succs (task u lists
/// every v that must wait for u); InDegree[v] must equal the number of
/// predecessors of v. Spawns NumThreads-1 workers plus (when a deadline or
/// stall timeout is set) one watchdog thread, and uses the calling thread
/// as worker 0. Never throws and never hangs: failures and timeouts
/// quiesce the pool and report partial completion instead.
DagRunResult runTaskDagPartial(std::size_t NumTasks,
                               const std::vector<std::vector<uint32_t>> &Succs,
                               const std::vector<uint32_t> &InDegree,
                               const DagRunOptions &Opts,
                               const FailableTaskBody &Body);

/// All-or-nothing convenience wrapper (the pre-fault-tolerance interface):
/// returns false — without running anything — if the graph is cyclic or
/// InDegree is inconsistent with Succs; returns true after all tasks ran.
bool runTaskDag(std::size_t NumTasks,
                const std::vector<std::vector<uint32_t>> &Succs,
                const std::vector<uint32_t> &InDegree, unsigned NumThreads,
                const TaskBody &Body, DagRunStats *Stats = nullptr);

} // namespace shackle

#endif // SHACKLE_PARALLEL_SCHEDULER_H
