//===- Integrity.cpp - Block-footprint data integrity ------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "parallel/Integrity.h"

#include "support/Checksum.h"

#include <algorithm>
#include <cmath>

using namespace shackle;

const char *shackle::dataVerifyName(DataVerify V) {
  switch (V) {
  case DataVerify::Off:
    return "off";
  case DataVerify::Undo:
    return "undo";
  case DataVerify::Block:
    return "block";
  }
  return "off";
}

uint64_t shackle::checksumUndoLog(const BlockUndoLog &Log) {
  Checksum C;
  for (const BlockUndoLog::Entry &E : Log.Entries)
    C.u64(E.ArrayId).u64(static_cast<uint64_t>(E.Offset)).f64(E.Value);
  return C.value();
}

uint64_t shackle::checksumFootprint(const BlockUndoLog &Log,
                                    const ProgramInstance &Inst) {
  Checksum C;
  for (const BlockUndoLog::Entry &E : Log.Entries)
    C.u64(E.ArrayId)
        .u64(static_cast<uint64_t>(E.Offset))
        .f64(Inst.buffer(E.ArrayId)[static_cast<std::size_t>(E.Offset)]);
  return C.value();
}

PoisonFinding shackle::scanFootprintPoison(const BlockUndoLog &Log,
                                           const ProgramInstance &Inst) {
  PoisonFinding F;
  for (const BlockUndoLog::Entry &E : Log.Entries) {
    double V = Inst.buffer(E.ArrayId)[static_cast<std::size_t>(E.Offset)];
    if (!std::isfinite(V)) {
      F.Found = true;
      F.ArrayId = E.ArrayId;
      F.Offset = E.Offset;
      F.Value = V;
      return F;
    }
  }
  return F;
}

std::vector<uint32_t> shackle::downstreamCone(const BlockDepGraph &Graph,
                                              uint32_t Root) {
  std::vector<uint8_t> Seen(Graph.Succs.size(), 0);
  std::vector<uint32_t> Work{Root};
  Seen[Root] = 1;
  std::vector<uint32_t> Cone;
  while (!Work.empty()) {
    uint32_t U = Work.back();
    Work.pop_back();
    for (uint32_t V : Graph.Succs[U])
      if (!Seen[V]) {
        Seen[V] = 1;
        Cone.push_back(V);
        Work.push_back(V);
      }
  }
  std::sort(Cone.begin(), Cone.end());
  return Cone;
}

std::string shackle::formatCone(const std::vector<uint32_t> &Cone,
                                std::size_t MaxNamed) {
  std::string S;
  for (std::size_t I = 0; I < Cone.size(); ++I) {
    if (I == MaxNamed) {
      S += ", ...";
      break;
    }
    if (I)
      S += ", ";
    S += "#" + std::to_string(Cone[I]);
  }
  return S;
}

PristineSnapshot shackle::capturePristine(const ProgramInstance &Inst) {
  PristineSnapshot Snap;
  const unsigned NumArrays = Inst.program().getNumArrays();
  Snap.Buffers.reserve(NumArrays);
  for (unsigned A = 0; A < NumArrays; ++A)
    Snap.Buffers.push_back(Inst.buffer(A));
  return Snap;
}

void shackle::restorePristine(const PristineSnapshot &Snap,
                              ProgramInstance &Inst) {
  for (unsigned A = 0; A < Snap.Buffers.size(); ++A)
    Inst.buffer(A) = Snap.Buffers[A];
}
