//===- ParallelExecutor.cpp - Parallel block-shackled execution --------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "parallel/ParallelExecutor.h"

#include "parallel/UndoLog.h"
#include "support/Checksum.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <thread>

using namespace shackle;

const char *shackle::parallelModeName(ParallelMode M) {
  switch (M) {
  case ParallelMode::Parallel:
    return "parallel";
  case ParallelMode::Degraded:
    return "degraded";
  case ParallelMode::SerialFallback:
    return "serial-fallback";
  }
  return "serial-fallback";
}

ParallelPlan ParallelPlan::build(const Program &P, const ShackleChain &Chain,
                                 std::vector<int64_t> ParamValues,
                                 const ParallelPlanOptions &Opts) {
  ParallelPlan Plan;
  Plan.Params = std::move(ParamValues);
  assert(Plan.Params.size() == P.getNumParams() &&
         "one value per program parameter");
  Plan.TotalFactors = static_cast<unsigned>(Chain.Factors.size());
  Plan.TaskFactors = Plan.TotalFactors;

  // Tier 1: the fault-tolerant codegen pipeline. An Illegal/Unknown shackle
  // lands on the Original tier, which has no block structure to extract.
  FallbackLegalityOptions LegOpts;
  LegOpts.SkipBlockDims = Opts.LegalitySkipBlockDims;
  LegOpts.KnownIllegal = Opts.LegalityKnownIllegal;
  LegOpts.Stats = Opts.LegalityStats;
  Plan.CG = generateCodeWithFallback(P, Chain, Opts.Budget, LegOpts);
  Plan.Diags = Plan.CG.Diags;
  if (!Plan.CG.isBlocked()) {
    Diagnostic D(DiagCode::ParallelFallback,
                 "shackle not proven legal; executing serially in original "
                 "program order",
                 {}, Severity::Warning);
    Plan.Diags.push_back(std::move(D));
    return Plan;
  }

  // Tier 2: slice the blocked nest into tasks. The task granularity is a
  // prefix of the chain's factors: all of them (flat), a fixed TaskLevel,
  // or - under AutoTaskLevel - the coarsest prefix that still feeds the
  // requested worker count. Partitioning on a prefix makes the inner
  // factors' block loops part of the task segments, so each task replays
  // its inner shackle levels serially in original shackled order.
  using Clock = std::chrono::steady_clock;
  auto partitionAt = [&](unsigned NumFactors) {
    return partitionLoopNestByBlocks(Plan.CG.Nest,
                                     Chain.numBlockDimsPrefix(NumFactors),
                                     Plan.Params, Opts.MaxTasks);
  };

  auto PartStart = Clock::now();
  if (Opts.AutoTaskLevel && Plan.TotalFactors > 1) {
    unsigned Hint = Opts.ThreadsHint ? Opts.ThreadsHint : 8;
    std::size_t MinTasks = std::max<std::size_t>(16, 4 * std::size_t(Hint));
    unsigned BestLevel = 0;
    BlockPartition Best;
    for (unsigned K = 1; K <= Plan.TotalFactors; ++K) {
      BlockPartition Part = partitionAt(K);
      if (!Part.OK)
        continue; // A finer level may still partition (or the flat one).
      bool Enough = Part.Tasks.size() >= MinTasks;
      BestLevel = K;
      Best = std::move(Part);
      if (Enough)
        break; // Coarsest prefix with enough parallelism.
    }
    if (BestLevel == 0) {
      // Every level failed; report the flat attempt's reason.
      Plan.Partition = partitionAt(Plan.TotalFactors);
      Plan.TaskFactors = Plan.TotalFactors;
    } else {
      Plan.Partition = std::move(Best);
      Plan.TaskFactors = BestLevel;
    }
  } else {
    Plan.TaskFactors =
        (Opts.TaskLevel == 0 || Opts.TaskLevel > Plan.TotalFactors)
            ? Plan.TotalFactors
            : Opts.TaskLevel;
    Plan.Partition = partitionAt(Plan.TaskFactors);
  }
  Plan.PartitionMs =
      std::chrono::duration<double, std::milli>(Clock::now() - PartStart)
          .count();
  if (!Plan.Partition.OK) {
    Diagnostic D(DiagCode::ParallelFallback,
                 "cannot partition generated code by block; executing the "
                 "blocked nest serially",
                 {}, Severity::Warning);
    D.addNote(Plan.Partition.FailReason);
    Plan.Diags.push_back(std::move(D));
    return Plan;
  }

  // Tier 3: the block dependence DAG under the solver budget, over the
  // selected factor prefix's coordinates (inner coordinates projected away
  // before the sign-pattern search).
  BlockDepGraphOptions GOpts;
  GOpts.Budget = Opts.Budget;
  GOpts.MaxEdges = Opts.MaxEdges;
  GOpts.MaxPairVisits = Opts.MaxPairVisits;
  GOpts.TaskFactors = Plan.TaskFactors;
  auto DagStart = Clock::now();
  Plan.Graph = buildBlockDepGraph(P, Chain, Plan.Params,
                                  Plan.Partition.coords(), GOpts);
  Plan.DagBuildMs =
      std::chrono::duration<double, std::milli>(Clock::now() - DagStart)
          .count();
  if (Plan.Graph.EdgeCapHit || Plan.Graph.WorkCapHit) {
    Diagnostic D(DiagCode::ParallelFallback,
                 std::string("block dependence graph exceeds the ") +
                     (Plan.Graph.EdgeCapHit ? "edge cap" : "pair-scan work "
                                                           "cap") +
                     "; executing the blocked nest serially",
                 {}, Severity::Warning);
    if (Plan.TaskFactors == Plan.TotalFactors && Plan.TotalFactors > 1)
      D.addNote("a coarser task level (--task-level) would shrink the "
                "graph");
    Plan.Diags.push_back(std::move(D));
    return Plan;
  }
  if (!Plan.Graph.acyclic()) {
    // Only reachable via conservative Unknown edges (a proven-legal shackle
    // yields lex-forward edges only), but handled unconditionally: the
    // multi-pass runtime's rule - when the static schedule cannot be
    // trusted, fall back to an order that is - applies here too.
    Diagnostic D(DiagCode::ParallelFallback,
                 "block dependence graph is cyclic; executing the blocked "
                 "nest serially",
                 {}, Severity::Warning);
    if (Plan.Graph.Conservative)
      D.addNote("cycle includes conservative edges from solver-budget "
                "Unknown verdicts");
    Plan.Diags.push_back(std::move(D));
    return Plan;
  }
  if (Plan.Graph.Conservative) {
    Diagnostic D(DiagCode::ParallelFallback,
                 "some block-dependence queries exhausted the solver "
                 "budget; extra conservative edges may reduce parallelism",
                 {}, Severity::Warning);
    Plan.Diags.push_back(std::move(D));
    // Still parallel-ready: conservative edges are sound.
  }
  Plan.Ready = true;
  return Plan;
}

ParallelPlan ParallelPlan::fromParts(ParallelPlanParts Parts) {
  ParallelPlan Plan;
  Plan.CG = std::move(Parts.CG);
  Plan.Partition = std::move(Parts.Partition);
  Plan.Graph = std::move(Parts.Graph);
  Plan.Diags = std::move(Parts.Diags);
  Plan.Params = std::move(Parts.Params);
  Plan.TaskFactors = Parts.TaskFactors;
  Plan.TotalFactors = Parts.TotalFactors;
  // Recompute readiness with build()'s criteria rather than trusting a
  // persisted flag: a snapshot that deserialized into a non-runnable shape
  // degrades to the serial fallback, never an untrusted parallel schedule.
  Plan.Ready = Plan.CG.isBlocked() && Plan.Partition.OK &&
               !Plan.Graph.EdgeCapHit && !Plan.Graph.WorkCapHit &&
               Plan.Graph.acyclic();
  return Plan;
}

ParallelRunStats ParallelPlan::run(ProgramInstance &Inst,
                                   unsigned NumThreads) const {
  // The pre-fault-tolerance fast path: no undo snapshots, no watchdog, no
  // data verification.
  ParallelRunOptions Opts;
  Opts.NumThreads = NumThreads;
  Opts.UndoLog = false;
  Opts.MaxRetries = 0;
  Opts.VerifyData = DataVerify::Off;
  Opts.PoisonCheck = false;
  return run(Inst, Opts);
}

ParallelRunStats ParallelPlan::run(ProgramInstance &Inst,
                                   const ParallelRunOptions &Opts) const {
  assert(Inst.paramValues() == Params &&
         "instance parameters must match the plan");
  ParallelRunStats S;
  S.TaskFactors = TaskFactors;
  S.TotalFactors = TotalFactors;
  if (!Ready) {
    runSerial(Inst);
    S.Mode = ParallelMode::SerialFallback;
    S.ThreadsUsed = 1;
    S.BlocksRun = Partition.OK ? Partition.Tasks.size() : 0;
    S.SegmentsRun = Partition.OK ? Partition.totalSegments() : 0;
    S.Progress.TotalUnits = 1; // Unit = the whole nest, run in one piece.
    S.Progress.recordAttempt(1);
    return S;
  }

  const std::vector<BlockTask> &Tasks = Partition.Tasks;
  const std::size_t N = Tasks.size();
  S.Progress.TotalUnits = N;

  // Data-integrity configuration (DESIGN.md §12). Verification and the
  // poison guard both need the undo log: checksums and poison scans walk
  // its footprint addresses, and quarantine needs rollback.
  const DataVerify Verify =
      Opts.UndoLog ? Opts.VerifyData : DataVerify::Off;
  const bool PoisonOn = Opts.PoisonCheck && Opts.UndoLog;
  S.VerifyUsed = Verify;

  // When restores can be refused (a corrupted undo log), the only sound
  // recovery is a whole-run restart, so snapshot every input buffer before
  // any block writes. One full copy per run, the price of the last rung
  // above "fail".
  PristineSnapshot Pristine;
  if (Verify != DataVerify::Off)
    Pristine = capturePristine(Inst);

  // Placement: clamp the worker count exactly as the scheduler will, then
  // (under affinity placement) split the lexicographic task order into one
  // segment-weighted contiguous range per effective worker. Neighboring
  // blocks share panel reuse by the data-centric construction, so a
  // contiguous range is also a cache-coherent one.
  const unsigned ReqThreads = Opts.NumThreads == 0 ? 1 : Opts.NumThreads;
  const unsigned EffWorkers = static_cast<unsigned>(
      std::min<std::size_t>(ReqThreads, N == 0 ? 1 : N));
  const bool UseAffinity = Opts.Placement == TaskPlacement::Affinity;
  AffinityMap AMap;
  if (UseAffinity)
    AMap = buildAffinityMap(Partition, EffWorkers);
  const unsigned DomainSizeOpt =
      Opts.DomainSize == 0 ? detectDomainSize(EffWorkers) : Opts.DomainSize;
  const unsigned DomSize = (DomainSizeOpt == 0 || DomainSizeOpt > EffWorkers)
                               ? EffWorkers
                               : DomainSizeOpt;
  auto domainOf = [DomSize](unsigned W) { return W / DomSize; };
  std::atomic<uint64_t> BytesMigrated{0};

  // Shared bookkeeping. RetryCount's per-block slots are only written by
  // the worker currently executing that block (DAG edges order any two
  // conflicting executions of a block), so a plain vector is race-free;
  // the diagnostic list takes a mutex.
  std::vector<uint32_t> RetryCount(N, 0);
  std::atomic<uint64_t> Faults{0};
  std::atomic<uint64_t> SegmentsDone{0};
  std::atomic<bool> Poisoned{false};
  std::mutex DiagM;
  std::vector<Diagnostic> FaultDiags;
  auto noteDiag = [&](Diagnostic D) {
    std::lock_guard<std::mutex> L(DiagM);
    FaultDiags.push_back(std::move(D));
  };

  // Integrity bookkeeping. The counters are plain telemetry; the poison
  // record is first-writer-wins under its mutex (the first non-finite
  // commit is the provenance that matters — everything downstream of it is
  // propagation, not cause), and Quarantined marks its dependence cone so
  // the serial replay skips blocks whose inputs were rolled back.
  std::atomic<uint64_t> NumChecksumsVerified{0};
  std::atomic<uint64_t> NumCorruptionsDetected{0};
  std::atomic<uint64_t> NumUndoRefused{0};
  std::atomic<uint64_t> NumPoisonedBlocks{0};
  std::atomic<bool> UndoCorrupted{false};
  std::mutex PoisonM;
  struct PoisonRecord {
    bool Set = false;
    uint32_t Task = 0;
    PoisonFinding Finding;
  } Poison;
  std::vector<uint8_t> Quarantined(N, 0);
  std::atomic<bool> ProducedWarned{false};

  // Diagnostics name the scheduling unit: outer tasks for hierarchical
  // plans (each one rolls back and retries as a whole), plain blocks
  // otherwise.
  auto blockName = [&](uint32_t T) {
    std::string Name =
        (hierarchical() ? "outer task #" : "block #") + std::to_string(T) +
        " (";
    for (std::size_t I = 0; I < Tasks[T].Coords.size(); ++I) {
      if (I)
        Name += ",";
      Name += std::to_string(Tasks[T].Coords[I]);
    }
    return Name + ")";
  };

  // One execution attempt of one block; failures come back as a message.
  // The executing worker's trace sink (if any) sees every program access
  // the attempt performs, in that worker's execution order. A non-null
  // \p Produced records the first non-finite value the block's own
  // arithmetic stores (the interpreter-side half of the poison guard).
  auto tryRunBlock = [&](uint32_t T, unsigned Worker, std::string &Err,
                         PoisonFinding *Produced) {
    const TraceFn *Trace = nullptr;
    if (Opts.WorkerTraces && Worker < Opts.WorkerTraces->size())
      Trace = &(*Opts.WorkerTraces)[Worker];
    StoreCheckFn Check;
    const StoreCheckFn *CheckP = nullptr;
    if (Produced) {
      Check = [Produced](unsigned ArrayId, int64_t Offset, double Value) {
        if (!Produced->Found && !std::isfinite(Value)) {
          Produced->Found = true;
          Produced->ArrayId = ArrayId;
          Produced->Offset = Offset;
          Produced->Value = Value;
        }
      };
      CheckP = &Check;
    }
    try {
      if (injectTaskThrow(T))
        throw std::runtime_error("injected task fault");
      for (const BlockTask::Segment &Seg : Tasks[T].Segments)
        runLoopNestSubtree(CG.Nest, *Seg.Node, Seg.DimValues, Inst, Trace,
                           CheckP);
      SegmentsDone.fetch_add(Tasks[T].Segments.size(),
                             std::memory_order_relaxed);
      return true;
    } catch (const std::exception &E) {
      Err = E.what();
    } catch (...) {
      Err = "unknown exception";
    }
    return false;
  };

  // Snapshot + first attempt + up to MaxRetries rollback-and-retry rounds.
  // On false the block's footprint has been restored to its pre-attempt
  // state (or Poisoned is set when undo logging is off), so the caller can
  // replay it later without recapturing anything else. With a hierarchical
  // plan the rollback granularity is the whole outer block: the undo log
  // snapshots every element the task's segments (all inner levels
  // included) can write, and a retry re-runs all of them.
  //
  // The integrity ladder (DESIGN.md §12) hangs off the same loop. The undo
  // log is checksummed at capture and re-verified before every restore: a
  // mismatch (e.g. injected corrupt-undo) refuses the unsound restore and
  // flags UndoCorrupted, escalating the run to a full serial replay from
  // the pristine snapshot. Under DataVerify::Block a block commits only
  // after two executions from the same pre-state produce bit-identical
  // footprints — a flipped bit in either one shows up as a checksum
  // divergence, is rolled back, and recomputed. And when the poison guard
  // is on, a non-finite value in the committed footprint quarantines the
  // block and its downstream cone with exact provenance.
  auto attemptBlock = [&](uint32_t T, unsigned Worker) {
    BlockUndoLog Undo;
    uint64_t UndoSum = 0;
    if (Opts.UndoLog) {
      Undo = captureBlockUndo(CG.Nest, Tasks[T], Inst);
      if (Verify != DataVerify::Off)
        UndoSum = checksumUndoLog(Undo);
    }
    // The undo snapshot is exactly the block's write footprint, so it
    // doubles as the migration estimate: executing outside the home
    // worker's domain drags that many elements across domains.
    if (Opts.UndoLog && UseAffinity &&
        domainOf(Worker) != domainOf(AMap.Home[T]))
      BytesMigrated.fetch_add(Undo.Entries.size() * sizeof(double),
                              std::memory_order_relaxed);

    // Verified rollback. The corrupt-undo injection site sits here — it
    // mutates a saved pre-image the way a latent memory fault would,
    // whether or not verification is on (detection must never be a
    // precondition for the fault). False = the restore was refused.
    auto restoreVerified = [&]() {
      uint64_t Pick;
      if (!Undo.Entries.empty() && injectUndoCorrupt(T, Pick)) {
        BlockUndoLog::Entry &E = Undo.Entries[Pick % Undo.Entries.size()];
        E.Value = flipDoubleBit(E.Value, static_cast<unsigned>(Pick >> 32));
      }
      if (Verify != DataVerify::Off) {
        if (checksumUndoLog(Undo) != UndoSum) {
          NumCorruptionsDetected.fetch_add(1, std::memory_order_relaxed);
          NumUndoRefused.fetch_add(1, std::memory_order_relaxed);
          UndoCorrupted.store(true, std::memory_order_relaxed);
          Diagnostic D(DiagCode::ParallelFault,
                       "undo log of " + blockName(T) +
                           " failed checksum verification; refusing the "
                           "unsound restore",
                       {}, Severity::Error);
          D.addNote("escalating to a full serial replay from the pristine "
                    "input snapshot");
          noteDiag(std::move(D));
          return false;
        }
        NumChecksumsVerified.fetch_add(1, std::memory_order_relaxed);
      }
      restoreBlockUndo(Undo, Inst);
      return true;
    };

    // Quarantine: record first-poison provenance, mark the downstream
    // dependence cone, roll the poisoned footprint back to pre-state.
    // Only silent corruption lands here — a non-finite found in the
    // committed footprint that the interpreter never stored, so a serial
    // run would not have it either.
    auto quarantine = [&](const PoisonFinding &F) {
      const ArrayDecl &Arr = Inst.program().getArray(F.ArrayId);
      std::vector<uint32_t> Cone = downstreamCone(Graph, T);
      {
        std::lock_guard<std::mutex> L(PoisonM);
        if (!Poison.Set) {
          Poison.Set = true;
          Poison.Task = T;
          Poison.Finding = F;
        }
        Quarantined[T] = 1;
        for (uint32_t V : Cone)
          Quarantined[V] = 1;
      }
      NumPoisonedBlocks.fetch_add(1 + Cone.size(),
                                  std::memory_order_relaxed);
      NumCorruptionsDetected.fetch_add(1, std::memory_order_relaxed);
      Diagnostic D(DiagCode::ParallelPoison,
                   blockName(T) + " committed non-finite value " +
                       std::to_string(F.Value) + " at " + Arr.Name + "[" +
                       std::to_string(F.Offset) + "] (array " +
                       std::to_string(F.ArrayId) + "); block quarantined",
                   {}, Severity::Error);
      D.addNote("the interpreter never stored a non-finite value here: "
                "silent corruption of committed data, not the block's own "
                "arithmetic");
      D.addNote(Cone.empty()
                    ? "no downstream dependents"
                    : "downstream dependence cone quarantined (" +
                          std::to_string(Cone.size()) +
                          " block(s)): " + formatCone(Cone));
      noteDiag(std::move(D));
      restoreVerified();
    };

    // DataVerify::Block needs two agreeing executions even fault-free, so
    // it gets one extra attempt on top of the retry budget.
    const unsigned Attempts = (Verify == DataVerify::Block ? 2 : 1) +
                              (Opts.UndoLog ? Opts.MaxRetries : 0);
    bool HaveSum = false;
    uint64_t PrevSum = 0;
    unsigned FaultRetries = 0;
    for (unsigned A = 0; A < Attempts; ++A) {
      std::string Err;
      PoisonFinding Produced;
      if (!tryRunBlock(T, Worker, Err, PoisonOn ? &Produced : nullptr)) {
        Faults.fetch_add(1, std::memory_order_relaxed);
        Diagnostic D(DiagCode::ParallelFault,
                     blockName(T) + " failed: " + Err, {},
                     Severity::Warning);
        if (!Opts.UndoLog) {
          Poisoned.store(true, std::memory_order_relaxed);
          D.Sev = Severity::Error;
          D.addNote("undo logging disabled; block state cannot be rolled "
                    "back");
          noteDiag(std::move(D));
          return false;
        }
        if (A + 1 < Attempts) {
          ++RetryCount[T];
          ++FaultRetries;
          D.addNote("write footprint rolled back (" +
                    std::to_string(Undo.Entries.size()) +
                    " element(s)); retrying, attempt " + std::to_string(A + 2) +
                    " of " + std::to_string(Attempts));
        } else {
          D.addNote("write footprint rolled back; retry budget exhausted");
        }
        noteDiag(std::move(D));
        if (!restoreVerified())
          return false;
        continue;
      }

      // The block committed. Data-fault injection sites: a bit flip or a
      // NaN/Inf poison lands in the committed footprint *after* the body
      // ran — modeling silent corruption between compute and consume.
      if (!Undo.Entries.empty()) {
        unsigned Bit;
        uint64_t Pick;
        if (injectBitFlip(T, Bit, Pick)) {
          const BlockUndoLog::Entry &E =
              Undo.Entries[Pick % Undo.Entries.size()];
          double &Slot =
              Inst.buffer(E.ArrayId)[static_cast<std::size_t>(E.Offset)];
          Slot = flipDoubleBit(Slot, Bit);
        }
        if (int PK = injectPoisonValue(T, Pick)) {
          const BlockUndoLog::Entry &E =
              Undo.Entries[Pick % Undo.Entries.size()];
          Inst.buffer(E.ArrayId)[static_cast<std::size_t>(E.Offset)] =
              PK == 1 ? std::numeric_limits<double>::quiet_NaN()
                      : std::numeric_limits<double>::infinity();
        }
      }

      // Poison guard. A non-finite store caught by the interpreter is a
      // *produced* value: the block's own arithmetic computed it, exactly
      // as a serial run would, so refusing it would break serial
      // equivalence — attribute it loudly (once per run) and commit. A
      // non-finite only the footprint scan can see was never stored by the
      // interpreter: silent corruption, quarantined. When a block produces
      // poison, the scan is skipped (it could no longer tell the produced
      // value from an additional corrupted one).
      if (PoisonOn) {
        if (Produced.Found) {
          if (!ProducedWarned.exchange(true, std::memory_order_relaxed)) {
            const ArrayDecl &Arr = Inst.program().getArray(Produced.ArrayId);
            Diagnostic D(DiagCode::ParallelPoison,
                         blockName(T) + " produced non-finite value " +
                             std::to_string(Produced.Value) + " at " +
                             Arr.Name + "[" +
                             std::to_string(Produced.Offset) + "] (array " +
                             std::to_string(Produced.ArrayId) + ")",
                         {}, Severity::Warning);
            D.addNote("stored by the block's own arithmetic: genuine "
                      "numerical failure, not runtime corruption; the "
                      "value is committed exactly as a serial run would");
            D.addNote("first occurrence named; later ones are propagation");
            noteDiag(std::move(D));
          }
        } else {
          PoisonFinding F = scanFootprintPoison(Undo, Inst);
          if (F.Found) {
            quarantine(F);
            return false;
          }
        }
      }

      // Shadow re-execution agreement: commit only after two consecutive
      // completed executions fingerprint identically.
      if (Verify == DataVerify::Block) {
        uint64_t Sum = checksumFootprint(Undo, Inst);
        if (HaveSum && Sum == PrevSum) {
          NumChecksumsVerified.fetch_add(1, std::memory_order_relaxed);
          if (FaultRetries > 0)
            noteDiag(Diagnostic(
                DiagCode::ParallelFault,
                blockName(T) + " recovered after " +
                    std::to_string(FaultRetries) + " rollback retr" +
                    (FaultRetries == 1 ? "y" : "ies"),
                {}, Severity::Warning));
          return true;
        }
        if (HaveSum) {
          NumCorruptionsDetected.fetch_add(1, std::memory_order_relaxed);
          ++RetryCount[T];
          noteDiag(Diagnostic(
              DiagCode::ParallelFault,
              blockName(T) + " footprint checksums diverged between "
                             "independent executions: silent data "
                             "corruption detected; rolled back, recomputing",
              {}, Severity::Warning));
        }
        HaveSum = true;
        PrevSum = Sum;
        if (A + 1 == Attempts)
          break; // Unconfirmed single execution; refuse to commit below.
        if (!restoreVerified())
          return false;
        continue;
      }

      if (FaultRetries > 0)
        noteDiag(Diagnostic(
            DiagCode::ParallelFault,
            blockName(T) + " recovered after " +
                std::to_string(FaultRetries) + " rollback retr" +
                (FaultRetries == 1 ? "y" : "ies"),
            {}, Severity::Warning));
      return true;
    }
    // Attempt budget exhausted. Under DataVerify::Block the last completed
    // execution may still be sitting in the footprint unconfirmed — never
    // commit data no second execution has vouched for.
    if (Verify == DataVerify::Block && HaveSum) {
      if (restoreVerified())
        noteDiag(Diagnostic(
            DiagCode::ParallelFault,
            blockName(T) + " never produced two agreeing executions within "
                           "the attempt budget; rolled back",
            {}, Severity::Error));
    }
    return false;
  };

  // First-touch warming: each home worker reads its own range's write
  // footprints once before the run, so first-touch NUMA policies place
  // those pages on the worker's node. Strictly read-only — footprints of
  // neighboring tasks may overlap, so a writing pass would race.
  uint64_t FirstTouchElems = 0;
  if (Opts.FirstTouch && UseAffinity && N > 0) {
    std::atomic<uint64_t> Touched{0};
    auto warmRange = [&](unsigned W) {
      volatile double Acc = 0.0;
      uint64_t Count = 0;
      for (uint32_t T = AMap.RangeBegin[W]; T < AMap.RangeBegin[W + 1]; ++T)
        for (const BlockTask::Segment &Seg : Tasks[T].Segments)
          collectSubtreeWrites(CG.Nest, *Seg.Node, Seg.DimValues, Inst,
                               [&](unsigned ArrayId, int64_t Offset) {
                                 Acc = Acc + Inst.buffer(ArrayId)[Offset];
                                 ++Count;
                               });
      Touched.fetch_add(Count, std::memory_order_relaxed);
    };
    std::vector<std::thread> Warmers;
    Warmers.reserve(EffWorkers - 1);
    for (unsigned W = 1; W < EffWorkers; ++W)
      Warmers.emplace_back(warmRange, W);
    warmRange(0);
    for (std::thread &Th : Warmers)
      Th.join();
    FirstTouchElems = Touched.load(std::memory_order_relaxed);
  }

  DagRunOptions DOpts;
  DOpts.NumThreads = Opts.NumThreads == 0 ? 1 : Opts.NumThreads;
  DOpts.DeadlineMs = Opts.DeadlineMs;
  DOpts.StallTimeoutMs = Opts.StallTimeoutMs;
  if (UseAffinity)
    DOpts.Affinity = &AMap.Home;
  DOpts.DomainSize = DomSize;
  DOpts.StealRemoteAfter = Opts.StealRemoteAfter;
  DOpts.RandomVictim = Opts.RandomSteal;
  DOpts.StealSeed = Opts.StealSeed;
#ifdef SHACKLE_ENABLE_FAULT_INJECTION
  // Injected stalls and deaths wedge the pool on purpose; without a
  // watchdog they would hang the run forever, so chaos runs always get one.
  if (DOpts.StallTimeoutMs == 0 && FaultInjector::instance().armed())
    DOpts.StallTimeoutMs = 1000;
#endif

  DagRunResult R = runTaskDagPartial(
      N, Graph.Succs, Graph.InDegree, DOpts,
      [&](uint32_t T, unsigned Worker) { return attemptBlock(T, Worker); });
  if (R.Refused) {
    // Defensive: runTaskDagPartial re-validates and refuses without side
    // effects, so the serial path is still a clean first execution.
    runSerial(Inst);
    S.Mode = ParallelMode::SerialFallback;
    S.ThreadsUsed = 1;
    S.BlocksRun = N;
    S.SegmentsRun = Partition.totalSegments();
    S.Progress.recordAttempt(N);
    return S;
  }

  S.ThreadsUsed = R.Stats.ThreadsUsed;
  S.Steals = R.Stats.Steals;
  S.LocalSteals = R.Stats.LocalSteals;
  S.RemoteSteals = R.Stats.RemoteSteals;
  S.HomeHits = R.Stats.HomeHits;
  S.MailboxPushes = R.Stats.MailboxPushes;
  S.MailboxFallbacks = R.Stats.MailboxFallbacks;
  S.NumDomains = R.Stats.NumDomains;
  S.DomainSize = R.Stats.DomainSizeUsed;
  S.Abort = R.Stats.Abort;
  uint64_t ParallelDone = 0;
  for (uint8_t D : R.TaskDone)
    ParallelDone += D;
  S.Progress.recordAttempt(ParallelDone);

  if (R.Stats.OverflowPushes > 0)
    noteDiag(Diagnostic(
        DiagCode::ParallelFault,
        "deque growth allocation failed; " +
            std::to_string(R.Stats.OverflowPushes) +
            " task hand-off(s) diverted to the overflow queue (none lost)",
        {}, Severity::Warning));

  auto finalize = [&] {
    S.Faults = Faults.load(std::memory_order_relaxed);
    S.SegmentsRun = SegmentsDone.load(std::memory_order_relaxed);
    S.BytesMigrated = BytesMigrated.load(std::memory_order_relaxed);
    S.FirstTouchElems = FirstTouchElems;
    uint64_t TotalRetries = 0;
    bool AnyRetry = false;
    for (uint32_t C : RetryCount) {
      TotalRetries += C;
      AnyRetry |= C != 0;
    }
    S.Retries = TotalRetries;
    if (AnyRetry)
      S.RetriesPerBlock = RetryCount;
    if (Poisoned.load(std::memory_order_relaxed))
      S.Failed = true;
    S.Integrity.ChecksumsVerified =
        NumChecksumsVerified.load(std::memory_order_relaxed);
    S.Integrity.CorruptionsDetected =
        NumCorruptionsDetected.load(std::memory_order_relaxed);
    S.Integrity.UndoRefused = NumUndoRefused.load(std::memory_order_relaxed);
    S.Integrity.PoisonedBlocks =
        NumPoisonedBlocks.load(std::memory_order_relaxed);
    if (Poison.Set)
      S.Failed = true;
    S.Diags = std::move(FaultDiags);
  };

  if (R.Completed && !UndoCorrupted.load(std::memory_order_relaxed)) {
    S.Mode = ParallelMode::Parallel;
    S.BlocksRun = N;
    finalize();
    return S;
  }

  // Quiesce happened. Name watchdog-detected faults (task failures already
  // produced their own diagnostics above), then announce the degradation
  // and replay the unfinished suffix serially in dependence order. Any
  // topological order is bitwise-equivalent: a completed block saw exactly
  // its DAG-ordered inputs, an unfinished block's footprint is untouched
  // (rolled back on failure, never started otherwise), and independent
  // blocks touch disjoint data by construction of the dependence graph.
  S.Mode = ParallelMode::Degraded;
  uint64_t Unfinished = N - ParallelDone;
  if (!R.Completed) {
  if (S.Abort == DagAbort::Stalled)
    noteDiag(Diagnostic(
        DiagCode::ParallelFault,
        "watchdog: no block completed within " +
            std::to_string(DOpts.StallTimeoutMs) + " ms; " +
            std::to_string(R.Stats.StalledWorkers) + " of " +
            std::to_string(R.Stats.ThreadsUsed) +
            " worker(s) without a heartbeat",
        {}, Severity::Warning));
  else if (S.Abort == DagAbort::Deadline)
    noteDiag(Diagnostic(DiagCode::ParallelFault,
                        "deadline of " + std::to_string(DOpts.DeadlineMs) +
                            " ms expired with " + std::to_string(Unfinished) +
                            " block(s) unfinished",
                        {}, Severity::Warning));
  noteDiag(Diagnostic(
      DiagCode::ParallelDegrade,
      "parallel phase aborted (" + std::string(dagAbortName(S.Abort)) +
          ") after " + std::to_string(ParallelDone) + " of " +
          std::to_string(N) + " block(s); replaying the remaining " +
          std::to_string(Unfinished) + " serially in dependence order",
      {}, Severity::Warning));
  }

  // Kahn order over the (acyclic, validated) block DAG.
  std::vector<uint32_t> Topo;
  {
    std::vector<uint32_t> Work = Graph.InDegree;
    Topo.reserve(N);
    for (std::size_t U = 0; U < N; ++U)
      if (Work[U] == 0)
        Topo.push_back(static_cast<uint32_t>(U));
    for (std::size_t I = 0; I < Topo.size(); ++I)
      for (uint32_t V : Graph.Succs[Topo[I]])
        if (--Work[V] == 0)
          Topo.push_back(V);
  }

  uint64_t Replayed = 0;
  uint64_t SkippedQuarantine = 0;
  if (!UndoCorrupted.load(std::memory_order_relaxed)) {
    for (uint32_t T : Topo) {
      if (R.TaskDone[T])
        continue;
      if (Quarantined[T]) {
        // Poisoned block or its downstream cone: inputs were rolled back
        // to pre-poison state, so running it would compute garbage. The
        // result is withheld, never silently wrong.
        ++SkippedQuarantine;
        continue;
      }
      if (attemptBlock(T, /*Worker=*/0)) {
        ++Replayed;
        continue;
      }
      if (UndoCorrupted.load(std::memory_order_relaxed))
        break; // Refused restore: instance state is unknown everywhere.
      if (Quarantined[T])
        continue; // Quarantined itself during replay; diag already emitted.
      S.Failed = true;
      noteDiag(Diagnostic(DiagCode::ParallelFault,
                          blockName(T) +
                              " failed every attempt including serial "
                              "replay; results are unreliable",
                          {}, Severity::Error));
    }
  }

  if (UndoCorrupted.load(std::memory_order_relaxed)) {
    // Last rung before failure. A restore was refused because the undo log
    // itself failed verification, so no per-block state can be trusted:
    // put every array back to its pristine pre-run snapshot and replay the
    // whole nest serially. Slow, but bitwise-identical to a serial run.
    noteDiag(Diagnostic(
        DiagCode::ParallelDegrade,
        "an undo log failed checksum verification; restarting the whole "
        "nest serially from the pristine input snapshot",
        {}, Severity::Warning));
    restorePristine(Pristine, Inst);
    runSerial(Inst);
    S.Integrity.PristineReplays = 1;
    S.BlocksRun = N;
    S.ReplayedSerially = N;
    S.Progress = ProgressLog{};
    S.Progress.TotalUnits = N;
    S.Progress.recordAttempt(0);
    S.Progress.recordAttempt(N);
    finalize();
    S.SegmentsRun = Partition.totalSegments();
    return S;
  }

  if (SkippedQuarantine > 0)
    noteDiag(Diagnostic(
        DiagCode::ParallelPoison,
        std::to_string(SkippedQuarantine) +
            " quarantined block(s) withheld from the serial replay; the "
            "run fails with provenance rather than committing poisoned "
            "data",
        {}, Severity::Error));
  S.ReplayedSerially = Replayed;
  S.Progress.recordAttempt(Replayed);
  S.BlocksRun = ParallelDone + Replayed;
  finalize();
  return S;
}

AffinityMap ParallelPlan::affinityMap(unsigned NumThreads) const {
  const std::size_t N = Partition.OK ? Partition.Tasks.size() : 0;
  const unsigned Req = NumThreads == 0 ? 1 : NumThreads;
  const unsigned Eff =
      static_cast<unsigned>(std::min<std::size_t>(Req, N == 0 ? 1 : N));
  return buildAffinityMap(Partition, Eff);
}

std::string ParallelPlan::summary() const {
  std::string S = "tier=" + std::string(codegenTierName(CG.Tier));
  S += " mode=";
  S += Ready ? "parallel" : "serial-fallback";
  if (Partition.OK) {
    S += " task-level=" + std::to_string(TaskFactors) + "/" +
         std::to_string(TotalFactors);
    S += " tasks=" + std::to_string(Partition.Tasks.size());
    S += " segments=" + std::to_string(Partition.totalSegments());
    S += " edges=" + std::to_string(Graph.NumEdges);
    if (Ready)
      S += " critical-path=" + std::to_string(Graph.criticalPathLength());
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.2f", DagBuildMs);
    S += " dag-build-ms=";
    S += Buf;
  }
  if (Graph.Conservative)
    S += " (conservative)";
  return S;
}
