//===- ParallelExecutor.cpp - Parallel block-shackled execution --------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "parallel/ParallelExecutor.h"

#include <cassert>

using namespace shackle;

const char *shackle::parallelModeName(ParallelMode M) {
  switch (M) {
  case ParallelMode::Parallel:
    return "parallel";
  case ParallelMode::SerialFallback:
    return "serial-fallback";
  }
  return "serial-fallback";
}

ParallelPlan ParallelPlan::build(const Program &P, const ShackleChain &Chain,
                                 std::vector<int64_t> ParamValues,
                                 const ParallelPlanOptions &Opts) {
  ParallelPlan Plan;
  Plan.Params = std::move(ParamValues);
  assert(Plan.Params.size() == P.getNumParams() &&
         "one value per program parameter");

  // Tier 1: the fault-tolerant codegen pipeline. An Illegal/Unknown shackle
  // lands on the Original tier, which has no block structure to extract.
  Plan.CG = generateCodeWithFallback(P, Chain, Opts.Budget);
  Plan.Diags = Plan.CG.Diags;
  if (!Plan.CG.isBlocked()) {
    Diagnostic D(DiagCode::ParallelFallback,
                 "shackle not proven legal; executing serially in original "
                 "program order",
                 {}, Severity::Warning);
    Plan.Diags.push_back(std::move(D));
    return Plan;
  }

  // Tier 2: slice the blocked nest into per-block tasks.
  Plan.Partition =
      partitionLoopNestByBlocks(Plan.CG.Nest, Chain.numBlockDims(),
                                Plan.Params);
  if (!Plan.Partition.OK) {
    Diagnostic D(DiagCode::ParallelFallback,
                 "cannot partition generated code by block; executing the "
                 "blocked nest serially",
                 {}, Severity::Warning);
    D.addNote(Plan.Partition.FailReason);
    Plan.Diags.push_back(std::move(D));
    return Plan;
  }

  // Tier 3: the block dependence DAG under the solver budget.
  BlockDepGraphOptions GOpts;
  GOpts.Budget = Opts.Budget;
  GOpts.MaxEdges = Opts.MaxEdges;
  Plan.Graph = buildBlockDepGraph(P, Chain, Plan.Params,
                                  Plan.Partition.coords(), GOpts);
  if (Plan.Graph.EdgeCapHit) {
    Diagnostic D(DiagCode::ParallelFallback,
                 "block dependence graph exceeds the edge cap; executing "
                 "the blocked nest serially",
                 {}, Severity::Warning);
    Plan.Diags.push_back(std::move(D));
    return Plan;
  }
  if (!Plan.Graph.acyclic()) {
    // Only reachable via conservative Unknown edges (a proven-legal shackle
    // yields lex-forward edges only), but handled unconditionally: the
    // multi-pass runtime's rule - when the static schedule cannot be
    // trusted, fall back to an order that is - applies here too.
    Diagnostic D(DiagCode::ParallelFallback,
                 "block dependence graph is cyclic; executing the blocked "
                 "nest serially",
                 {}, Severity::Warning);
    if (Plan.Graph.Conservative)
      D.addNote("cycle includes conservative edges from solver-budget "
                "Unknown verdicts");
    Plan.Diags.push_back(std::move(D));
    return Plan;
  }
  if (Plan.Graph.Conservative) {
    Diagnostic D(DiagCode::ParallelFallback,
                 "some block-dependence queries exhausted the solver "
                 "budget; extra conservative edges may reduce parallelism",
                 {}, Severity::Warning);
    Plan.Diags.push_back(std::move(D));
    // Still parallel-ready: conservative edges are sound.
  }
  Plan.Ready = true;
  return Plan;
}

ParallelRunStats ParallelPlan::run(ProgramInstance &Inst,
                                   unsigned NumThreads) const {
  assert(Inst.paramValues() == Params &&
         "instance parameters must match the plan");
  ParallelRunStats Stats;
  if (!Ready) {
    runSerial(Inst);
    Stats.Mode = ParallelMode::SerialFallback;
    Stats.ThreadsUsed = 1;
    Stats.BlocksRun = Partition.OK ? Partition.Tasks.size() : 0;
    return Stats;
  }

  const std::vector<BlockTask> &Tasks = Partition.Tasks;
  DagRunStats DS;
  bool Ran = runTaskDag(
      Tasks.size(), Graph.Succs, Graph.InDegree,
      NumThreads == 0 ? 1 : NumThreads,
      [&](uint32_t T, unsigned) {
        for (const BlockTask::Segment &Seg : Tasks[T].Segments)
          runLoopNestSubtree(CG.Nest, *Seg.Node, Seg.DimValues, Inst);
      },
      &DS);
  if (!Ran) {
    // Defensive: runTaskDag re-validates and refuses without side effects,
    // so the serial path is still a clean first execution.
    runSerial(Inst);
    Stats.Mode = ParallelMode::SerialFallback;
    Stats.ThreadsUsed = 1;
    Stats.BlocksRun = Tasks.size();
    return Stats;
  }
  Stats.Mode = ParallelMode::Parallel;
  Stats.ThreadsUsed = DS.ThreadsUsed;
  Stats.BlocksRun = DS.TasksRun;
  Stats.Steals = DS.Steals;
  return Stats;
}

std::string ParallelPlan::summary() const {
  std::string S = "tier=" + std::string(codegenTierName(CG.Tier));
  S += " mode=";
  S += Ready ? "parallel" : "serial-fallback";
  if (Partition.OK) {
    S += " blocks=" + std::to_string(Partition.Tasks.size());
    S += " edges=" + std::to_string(Graph.NumEdges);
    if (Ready)
      S += " critical-path=" + std::to_string(Graph.criticalPathLength());
  }
  if (Graph.Conservative)
    S += " (conservative)";
  return S;
}
