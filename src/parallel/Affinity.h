//===- Affinity.h - Locality-aware task placement ---------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owner-computes placement for block tasks. The partition lists tasks in
/// the lexicographic block traversal order of the shackled nest, which is
/// exactly the order in which the cutting planes sweep the shackled array:
/// adjacent tasks touch adjacent array panels. buildAffinityMap therefore
/// assigns each worker one *contiguous* range of that order, weighted by
/// segment count so uneven partitions still balance, and records the home
/// worker per task. Seeding the scheduler from this map (instead of
/// round-robin) keeps a worker's tasks on the panels it just warmed, so
/// steals become the exception rather than the steady state.
///
/// The map is a pure function of (task weights, worker count): cheap enough
/// to rebuild per run (the worker count is a run option, not a plan
/// property) and deterministic, so tests can recompute the exact placement
/// the executor used.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PARALLEL_AFFINITY_H
#define SHACKLE_PARALLEL_AFFINITY_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace shackle {

struct BlockPartition;

/// Task -> home-worker assignment: contiguous, weight-balanced ranges of
/// the lexicographic task order.
struct AffinityMap {
  unsigned NumWorkers = 0;
  /// Home[T] is task T's home worker; size == number of tasks.
  std::vector<uint32_t> Home;
  /// NumWorkers + 1 boundaries into the task order: worker W owns tasks
  /// [RangeBegin[W], RangeBegin[W + 1]). Ranges tile the task list exactly;
  /// a range may be empty when there are fewer tasks (or less weight) than
  /// workers.
  std::vector<uint32_t> RangeBegin;

  bool valid() const { return NumWorkers > 0; }
};

/// Splits tasks 0..NumTasks-1 (in order) into NumWorkers contiguous ranges
/// whose \p Weights sums are as even as the prefix structure allows: the
/// cut before worker W is the prefix boundary nearest W/NumWorkers of the
/// total weight. Every task gets exactly one home.
AffinityMap buildAffinityMap(std::size_t NumTasks,
                             const std::vector<uint64_t> &Weights,
                             unsigned NumWorkers);

/// Convenience overload: weights are the tasks' segment counts (>= 1), so
/// hierarchical tasks that replay more inner work count proportionally.
AffinityMap buildAffinityMap(const BlockPartition &Part, unsigned NumWorkers);

/// Locality-domain width to use when the caller did not pick one: on Linux
/// the worker count is divided evenly over the machine's NUMA nodes
/// (/sys/devices/system/node); on a single-node machine (or any platform
/// where detection fails) all workers share one domain.
unsigned detectDomainSize(unsigned NumWorkers);

} // namespace shackle

#endif // SHACKLE_PARALLEL_AFFINITY_H
