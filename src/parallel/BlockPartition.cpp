//===- BlockPartition.cpp - Slice a shackled nest into block tasks -----------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "parallel/BlockPartition.h"

#include "support/MathExtras.h"

#include <map>

using namespace shackle;

namespace {

struct Walker {
  const LoopNest &Nest;
  unsigned BlockBase;  ///< First block dim (== Nest.NumParams).
  unsigned SchedBase;  ///< First intra-block dim (== BlockBase + M).
  uint64_t MaxTasks;   ///< 0 = unbounded.
  BlockPartition &Out;

  std::vector<int64_t> DimValues;
  std::vector<bool> Bound;
  unsigned NumBound = 0; ///< Block dims currently bound.

  /// Block coords -> index into Out.Tasks (first-visit order preserved).
  std::map<std::vector<int64_t>, std::size_t> TaskIndex;

  bool Failed = false;

  Walker(const LoopNest &Nest, unsigned M, uint64_t MaxTasks,
         BlockPartition &Out)
      : Nest(Nest), BlockBase(Nest.NumParams), SchedBase(Nest.NumParams + M),
        MaxTasks(MaxTasks), Out(Out), DimValues(Nest.NumDims, 0),
        Bound(Nest.NumDims, false) {}

  void fail(const std::string &Why) {
    if (!Failed) {
      Failed = true;
      Out.FailReason = Why;
    }
  }

  int64_t evalBound(const BoundExpr &B) {
    int64_t V = B.Expr.evaluate(DimValues);
    if (B.Divisor == 1)
      return V;
    return B.IsCeil ? ceilDiv(V, B.Divisor) : floorDiv(V, B.Divisor);
  }

  /// True if every dimension the row reads is already bound (params and
  /// block dims walked so far).
  bool rowIsBound(const ConstraintRow &Row) const {
    for (unsigned I = 0; I + 1 < Row.size(); ++I)
      if (Row[I] != 0 && !(I < Nest.NumParams || Bound[I]))
        return false;
    return true;
  }

  int64_t evalRow(const ConstraintRow &Row) const {
    int64_t V = Row.back();
    for (unsigned I = 0; I + 1 < Row.size(); ++I)
      if (Row[I] != 0)
        V += Row[I] * DimValues[I];
    return V;
  }

  void recordSegment(const ASTNode &N) {
    if (NumBound != SchedBase - BlockBase) {
      fail("intra-block code reached with only " + std::to_string(NumBound) +
           " of " + std::to_string(SchedBase - BlockBase) +
           " block dims bound");
      return;
    }
    std::vector<int64_t> Coords(DimValues.begin() + BlockBase,
                                DimValues.begin() + SchedBase);
    auto [It, Inserted] =
        TaskIndex.try_emplace(std::move(Coords), Out.Tasks.size());
    if (Inserted) {
      if (MaxTasks && Out.Tasks.size() >= MaxTasks) {
        fail("block task count exceeds the cap of " +
             std::to_string(MaxTasks) +
             " (partition too fine; coarsen with a higher task level)");
        return;
      }
      Out.Tasks.emplace_back();
      Out.Tasks.back().Coords.assign(DimValues.begin() + BlockBase,
                                     DimValues.begin() + SchedBase);
    }
    BlockTask::Segment Seg;
    Seg.Node = &N;
    Seg.DimValues = DimValues;
    Out.Tasks[It->second].Segments.push_back(std::move(Seg));
  }

  void walk(const ASTNode &N) {
    if (Failed)
      return;
    switch (N.Kind) {
    case ASTKind::Loop:
    case ASTKind::Let: {
      if (N.Dim >= SchedBase) {
        recordSegment(N); // Intra-block loop: the task executes it.
        return;
      }
      if (N.Dim < BlockBase) {
        fail("loop over a parameter dimension");
        return;
      }
      int64_t Lo, Hi;
      if (N.Kind == ASTKind::Let) {
        Lo = Hi = evalBound(N.Lbs[0]);
      } else {
        Lo = evalBound(N.Lbs[0]);
        for (unsigned I = 1; I < N.Lbs.size(); ++I)
          Lo = std::max(Lo, evalBound(N.Lbs[I]));
        Hi = evalBound(N.Ubs[0]);
        for (unsigned I = 1; I < N.Ubs.size(); ++I)
          Hi = std::min(Hi, evalBound(N.Ubs[I]));
      }
      bool WasBound = Bound[N.Dim];
      if (!WasBound) {
        Bound[N.Dim] = true;
        ++NumBound;
      }
      for (int64_t V = Lo; V <= Hi && !Failed; ++V) {
        DimValues[N.Dim] = V;
        for (const ASTNodePtr &C : N.Body)
          walk(*C);
      }
      if (!WasBound) {
        Bound[N.Dim] = false;
        --NumBound;
      }
      return;
    }
    case ASTKind::If: {
      // A guard over already-bound dims partitions the block space: decide
      // it here. A guard reading inner dims belongs to the block body.
      bool AllBound = true;
      for (const ConstraintRow &Row : N.EqConds)
        AllBound = AllBound && rowIsBound(Row);
      for (const ConstraintRow &Row : N.IneqConds)
        AllBound = AllBound && rowIsBound(Row);
      if (!AllBound) {
        recordSegment(N);
        return;
      }
      for (const ConstraintRow &Row : N.EqConds)
        if (evalRow(Row) != 0)
          return;
      for (const ConstraintRow &Row : N.IneqConds)
        if (evalRow(Row) < 0)
          return;
      for (const ASTNodePtr &C : N.Body)
        walk(*C);
      return;
    }
    case ASTKind::Instance:
      recordSegment(N);
      return;
    }
  }
};

} // namespace

BlockPartition
shackle::partitionLoopNestByBlocks(const LoopNest &Nest, unsigned NumBlockDims,
                                   const std::vector<int64_t> &ParamValues,
                                   uint64_t MaxTasks) {
  BlockPartition Out;
  Out.NumBlockDims = NumBlockDims;
  if (ParamValues.size() != Nest.NumParams) {
    Out.FailReason = "wrong number of parameter values";
    return Out;
  }
  if (Nest.NumParams + NumBlockDims > Nest.NumDims) {
    Out.FailReason = "nest has fewer dims than params + block dims";
    return Out;
  }
  Walker W(Nest, NumBlockDims, MaxTasks, Out);
  for (unsigned V = 0; V < Nest.NumParams; ++V)
    W.DimValues[V] = ParamValues[V];
  for (const ASTNodePtr &N : Nest.Roots) {
    W.walk(*N);
    if (W.Failed)
      break;
  }
  if (W.Failed) {
    Out.Tasks.clear();
    return Out;
  }
  Out.OK = true;
  return Out;
}
