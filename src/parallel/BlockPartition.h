//===- BlockPartition.h - Slice a shackled nest into block tasks *- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A shackled LoopNest scans [params][b1..bM][schedule dims]: the outermost
/// M loop levels enumerate the touched blocks in traversal order, and the
/// subtrees below them perform the instances shackled to each block. This
/// pass walks exactly those outer levels with concrete parameter values,
/// and produces one task per block: its coordinates plus the list of
/// (subtree, bound-dimension snapshot) segments to execute. The scanner may
/// split a block dimension's index set into several sibling loops, so a
/// block's segments can come from different subtrees; they are recorded in
/// serial execution order and must run in that order within the block.
///
/// Hierarchical chains partition the same way with a *prefix* of the block
/// dimensions: passing the outer factors' dimension count makes the inner
/// factors' block loops part of the recorded segments, so one task covers a
/// whole outer block and replays its inner shackle levels serially in the
/// original shackled order. Nothing else changes - the walk only binds the
/// dimensions it is told are task coordinates.
///
/// The walk is purely structural: it never executes statements and never
/// touches array storage, so the resulting partition is immutable shared
/// input for any number of concurrent workers (each worker re-executes a
/// segment through its own interpreter state).
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PARALLEL_BLOCKPARTITION_H
#define SHACKLE_PARALLEL_BLOCKPARTITION_H

#include "codegen/LoopAST.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace shackle {

/// One schedulable unit: all instances the shackle ties to one block.
struct BlockTask {
  /// Block coordinates (b1..bM), negated where the plane set is Reversed -
  /// i.e. exactly the values of the nest's block dimensions.
  std::vector<int64_t> Coords;

  /// One entry per generated-code subtree belonging to this block, in
  /// serial execution order.
  struct Segment {
    const ASTNode *Node = nullptr;
    /// Snapshot of the nest's dimension values with params and all block
    /// dims bound (inner dims are scratch for the executing interpreter).
    std::vector<int64_t> DimValues;
  };
  std::vector<Segment> Segments;
};

struct BlockPartition {
  bool OK = false;
  /// Why partitioning failed (structure not recognized); empty when OK.
  std::string FailReason;
  /// Dimensions the nest was partitioned on - the full chain when flat, or
  /// an outer-factor prefix when hierarchical.
  unsigned NumBlockDims = 0;
  /// Tasks in block traversal order (first-visit order of the serial nest).
  std::vector<BlockTask> Tasks;

  /// Convenience: the coordinate tuples alone, for buildBlockDepGraph.
  std::vector<std::vector<int64_t>> coords() const {
    std::vector<std::vector<int64_t>> C;
    C.reserve(Tasks.size());
    for (const BlockTask &T : Tasks)
      C.push_back(T.Coords);
    return C;
  }

  /// Task-granularity stats: total code segments across all tasks, and the
  /// largest single task. A hierarchical partition has fewer tasks but the
  /// same total segment work, so segments/task measures the coarsening.
  uint64_t totalSegments() const {
    uint64_t Total = 0;
    for (const BlockTask &T : Tasks)
      Total += T.Segments.size();
    return Total;
  }
  std::size_t maxSegmentsPerTask() const {
    std::size_t Max = 0;
    for (const BlockTask &T : Tasks)
      Max = std::max(Max, T.Segments.size());
    return Max;
  }
};

/// Partitions \p Nest (a shackled or naive-shackled LoopNest whose dims
/// NumParams..NumParams+NumBlockDims-1 are the block coordinates) by block,
/// for the concrete \p ParamValues. Returns OK == false when the nest does
/// not have the expected block-loops-outside shape; callers then run the
/// nest serially instead. \p NumBlockDims may be a prefix of the nest's
/// block dimensions (hierarchical mode; see the file comment). A nonzero
/// \p MaxTasks bounds the walk: partitioning fails once the task count
/// exceeds it, so a pathologically fine flat partition degrades to serial
/// execution instead of exhausting memory.
BlockPartition partitionLoopNestByBlocks(const LoopNest &Nest,
                                         unsigned NumBlockDims,
                                         const std::vector<int64_t> &ParamValues,
                                         uint64_t MaxTasks = 0);

} // namespace shackle

#endif // SHACKLE_PARALLEL_BLOCKPARTITION_H
