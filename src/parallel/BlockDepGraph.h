//===- BlockDepGraph.h - Dependence DAG over block coordinates --*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's legality machinery (Theorem 1) relates every dependence to
/// the *block coordinates* its endpoints are mapped to. Legality only needs
/// "never backwards"; this pass extracts the stronger information latent in
/// the same systems: between which pairs of blocks does any dependence flow
/// at all? Blocks with no dependence path between them can execute
/// concurrently - the block-level analogue of wavefront parallelism in
/// tiled polyhedral programs.
///
/// For each dependence problem we append source/target block coordinates
/// exactly as the legality checker does, pin the problem-size parameters to
/// their concrete values, and search the feasible *sign patterns* of the
/// block-coordinate difference (target minus source) with one bounded Omega
/// query per node of the {-,0,+}^M search tree, pruning infeasible
/// prefixes. A block pair (u, v) gets an edge iff sign(v - u) matches some
/// feasible pattern - an over-approximation of the exact block dependence
/// relation (sound for parallel execution: extra edges only reduce
/// concurrency). A query that exhausts its SolverBudget marks the graph
/// Conservative and is treated as feasible, again erring toward more edges.
///
/// For a shackle proven legal, every feasible pattern is lexicographically
/// non-negative (that is Theorem 1), so all edges point forward in block
/// traversal order and the graph is acyclic by construction. Cyclic graphs
/// can only arise from Unknown verdicts or unchecked shackles; callers must
/// test acyclic() and fall back to serial execution.
///
/// Hierarchical chains build the DAG over the *outer* factors only
/// (TaskFactors): the inner factors' block coordinates are projected away
/// before the sign-pattern search by simply not appending their variables
/// or block-link constraints. The projection is exact - each omitted
/// coordinate is functionally determined (z = floor(e / B)) by variables
/// that stay in the problem, so dropping its defining constraints never
/// changes which outer-coordinate patterns are feasible. Every feasible
/// full-chain pattern therefore projects to a feasible prefix pattern:
/// coarsening loses no dependence (edges between tasks survive; a
/// dependence whose outer signs are all zero stays inside one task, where
/// the serially replayed inner levels honor it by program order). Prefixes
/// of lexicographically non-negative vectors are lexicographically
/// non-negative or all-zero, so the hierarchical DAG of a proven-legal
/// chain is acyclic by the same Theorem 1 argument.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PARALLEL_BLOCKDEPGRAPH_H
#define SHACKLE_PARALLEL_BLOCKDEPGRAPH_H

#include "core/DataShackle.h"
#include "ir/Program.h"
#include "polyhedral/OmegaTest.h"

#include <cstdint>
#include <vector>

namespace shackle {

struct BlockDepGraphOptions {
  /// Budget for each feasibility query in the sign-pattern search.
  SolverBudget Budget;
  /// Edge-count ceiling: a graph too dense to be worth scheduling (the
  /// worst case is quadratic in blocks) stops early with EdgeCapHit set.
  uint64_t MaxEdges = 8ull << 20;
  /// Number of leading chain factors whose block coordinates form the
  /// graph's nodes. 0 = all factors (the flat graph). The supplied Blocks
  /// tuples must have exactly that many coordinates.
  unsigned TaskFactors = 0;
  /// Work ceiling on the quadratic pair scan (same philosophy as the
  /// SolverBudget): construction stops with WorkCapHit set once this many
  /// block pairs have been examined, so a flat partition of a deep chain
  /// degrades to serial execution instead of scanning for minutes.
  uint64_t MaxPairVisits = 1ull << 30;
};

/// Dependence DAG over the touched blocks of one shackled execution.
struct BlockDepGraph {
  unsigned NumBlockDims = 0;
  /// Node -> block coordinates, in block traversal order.
  std::vector<std::vector<int64_t>> Coords;
  /// Node -> successors (blocks that must wait for it). Deduplicated.
  std::vector<std::vector<uint32_t>> Succs;
  /// Node -> number of predecessors.
  std::vector<uint32_t> InDegree;
  uint64_t NumEdges = 0;

  /// Feasible nonzero sign patterns of (target block - source block), one
  /// entry per block dim in {-1, 0, +1}. Kept for diagnostics and tests.
  std::vector<std::vector<int>> SignPatterns;

  /// True when some solver query gave up and its pattern subtree was
  /// conservatively treated as feasible.
  bool Conservative = false;
  /// True when MaxEdges tripped; Succs/InDegree are then incomplete and
  /// the graph must not be used for scheduling.
  bool EdgeCapHit = false;
  /// True when MaxPairVisits tripped; like EdgeCapHit, the graph is
  /// incomplete and must not be used for scheduling.
  bool WorkCapHit = false;
  /// Block pairs examined by the edge scan (work accounting).
  uint64_t PairVisits = 0;

  std::size_t numBlocks() const { return Coords.size(); }

  /// Kahn check. An EdgeCapHit or WorkCapHit graph reports false (unusable).
  bool acyclic() const;

  /// Length of the longest path + 1 (the critical-path lower bound on
  /// parallel makespan, in blocks). Only valid on acyclic graphs.
  std::size_t criticalPathLength() const;
};

/// Computes the feasible sign patterns of the block-coordinate difference
/// for every dependence of \p P under shackle chain \p Chain, with the
/// program parameters pinned to \p ParamValues. A nonzero \p NumFactors
/// restricts the search to the first NumFactors factors' coordinates (the
/// hierarchical projection described in the file comment). Exposed
/// separately for testing; buildBlockDepGraph calls it.
std::vector<std::vector<int>>
blockDependenceSigns(const Program &P, const ShackleChain &Chain,
                     const std::vector<int64_t> &ParamValues,
                     const SolverBudget &Budget, bool *SawUnknown = nullptr,
                     unsigned NumFactors = 0);

/// Builds the dependence DAG over \p Blocks (the touched block coordinate
/// tuples in traversal order, e.g. from partitionLoopNestByBlocks; outer
/// prefix tuples when Opts.TaskFactors selects a hierarchical level).
BlockDepGraph
buildBlockDepGraph(const Program &P, const ShackleChain &Chain,
                   const std::vector<int64_t> &ParamValues,
                   const std::vector<std::vector<int64_t>> &Blocks,
                   const BlockDepGraphOptions &Opts = BlockDepGraphOptions());

} // namespace shackle

#endif // SHACKLE_PARALLEL_BLOCKDEPGRAPH_H
