//===- Integrity.h - Block-footprint data integrity -------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The data-plane half of the runtime's fault-tolerance story (DESIGN.md
/// §12). The control-flow ladder (§9) survives throws, stalls, and deaths;
/// this layer detects *silent* corruption — a flipped bit in committed
/// data, a mutated undo pre-image, a NaN that would otherwise poison every
/// downstream block — and turns each into either a bitwise-identical
/// recovery or a precisely attributed failure. Never a silently wrong
/// answer.
///
/// Everything here leans on the paper's central property: a block
/// (Definition 1) has a bounded, statically enumerable write footprint.
/// That footprint is already captured per task as a BlockUndoLog, which
/// makes it cheap to
///
///   - checksum an undo log at capture and re-verify it before a restore,
///     refusing an unsound restore (checksumUndoLog);
///   - fingerprint the committed footprint after a run and compare
///     independent executions of the same block bit-for-bit
///     (checksumFootprint) — the shadow re-execution check behind
///     --verify-data=block;
///   - scan the committed footprint for non-finite values the interpreter
///     never stored, distinguishing silent memory corruption from genuine
///     numerical failure (scanFootprintPoison);
///   - walk the block dependence DAG from a quarantined block to name the
///     downstream cone its poison would have reached (downstreamCone).
///
/// The escalation ladder on detection: verify -> rollback-and-retry ->
/// degraded serial replay (from a pristine input snapshot when the undo
/// log itself is untrustworthy) -> fail with provenance.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PARALLEL_INTEGRITY_H
#define SHACKLE_PARALLEL_INTEGRITY_H

#include "interp/Interpreter.h"
#include "parallel/BlockDepGraph.h"
#include "parallel/UndoLog.h"

#include <cstdint>
#include <string>
#include <vector>

namespace shackle {

/// How much data verification a run performs (--verify-data).
enum class DataVerify {
  Off,  ///< No checksums; the pre-integrity fast path.
  Undo, ///< Checksum undo logs at capture; verify before every restore.
  Block, ///< Undo, plus commit a block only after two independent
         ///< executions produce bit-identical footprints (paranoia).
};

const char *dataVerifyName(DataVerify V);

/// Integrity telemetry for one run; flows into ParallelRunStats, the CLI
/// `integrity:` line, and the benchmark JSON sink.
struct IntegrityStats {
  /// Checksum verifications that passed (undo pre-restore checks plus
  /// footprint agreements under DataVerify::Block).
  uint64_t ChecksumsVerified = 0;
  /// Silent corruptions caught: undo-log checksum mismatches, footprint
  /// divergences between shadow executions, and non-finite values found in
  /// committed data that the interpreter never stored.
  uint64_t CorruptionsDetected = 0;
  /// Restores refused because the undo log failed verification (each one
  /// escalates to the pristine-snapshot serial replay).
  uint64_t UndoRefused = 0;
  /// Blocks quarantined for committing a non-finite value.
  uint64_t PoisonedBlocks = 0;
  /// Full serial replays from the pristine input snapshot.
  uint64_t PristineReplays = 0;
};

/// Order-sensitive digest of an undo log: (array, offset, pre-image bit
/// pattern) per entry, in the log's sorted footprint order.
uint64_t checksumUndoLog(const BlockUndoLog &Log);

/// Digest of the *current* instance values at the log's footprint
/// addresses — the committed result of the block whose capture produced
/// \p Log. Two executions of a block from the same pre-state are
/// deterministic, so unequal digests prove silent corruption of one.
uint64_t checksumFootprint(const BlockUndoLog &Log,
                           const ProgramInstance &Inst);

/// First non-finite value found somewhere in a block's committed footprint.
struct PoisonFinding {
  bool Found = false;
  unsigned ArrayId = 0;
  int64_t Offset = 0;
  double Value = 0.0;
};

/// Scans the committed footprint for non-finite values, in footprint
/// order. Catches poison however it got there — injected, hardware, or
/// produced — where the interpreter's store check only sees produced
/// values; the caller combines both to attribute the finding.
PoisonFinding scanFootprintPoison(const BlockUndoLog &Log,
                                  const ProgramInstance &Inst);

/// Every block reachable from \p Root along dependence edges (excluding
/// \p Root itself), ascending — the downstream cone \p Root's poison would
/// have reached. These blocks are quarantined: their inputs were rolled
/// back to pre-\p Root state, so running them would compute garbage.
std::vector<uint32_t> downstreamCone(const BlockDepGraph &Graph,
                                     uint32_t Root);

/// "#3, #7, #12" (first \p MaxNamed ids, "..." past that).
std::string formatCone(const std::vector<uint32_t> &Cone,
                       std::size_t MaxNamed = 8);

/// Full copy of an instance's buffers, taken before any block runs. The
/// last rung above failure: when an undo log cannot be trusted, the
/// instance state after a refused restore is unknown, and the only sound
/// recovery is to put every array back and replay the whole nest serially.
struct PristineSnapshot {
  std::vector<std::vector<double>> Buffers;
};

PristineSnapshot capturePristine(const ProgramInstance &Inst);
void restorePristine(const PristineSnapshot &Snap, ProgramInstance &Inst);

} // namespace shackle

#endif // SHACKLE_PARALLEL_INTEGRITY_H
