//===- BlockDepGraph.cpp - Dependence DAG over block coordinates -------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "parallel/BlockDepGraph.h"

#include "core/Dependence.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <unordered_set>

using namespace shackle;

bool BlockDepGraph::acyclic() const {
  if (EdgeCapHit || WorkCapHit)
    return false;
  std::vector<uint32_t> Deg = InDegree;
  std::vector<uint32_t> Queue;
  Queue.reserve(Coords.size());
  for (std::size_t U = 0; U < Coords.size(); ++U)
    if (Deg[U] == 0)
      Queue.push_back(static_cast<uint32_t>(U));
  for (std::size_t I = 0; I < Queue.size(); ++I)
    for (uint32_t V : Succs[Queue[I]])
      if (--Deg[V] == 0)
        Queue.push_back(V);
  return Queue.size() == Coords.size();
}

std::size_t BlockDepGraph::criticalPathLength() const {
  std::vector<uint32_t> Deg = InDegree;
  std::vector<uint32_t> Queue;
  std::vector<uint32_t> Depth(Coords.size(), 1);
  Queue.reserve(Coords.size());
  for (std::size_t U = 0; U < Coords.size(); ++U)
    if (Deg[U] == 0)
      Queue.push_back(static_cast<uint32_t>(U));
  std::size_t Longest = Coords.empty() ? 0 : 1;
  for (std::size_t I = 0; I < Queue.size(); ++I) {
    uint32_t U = Queue[I];
    for (uint32_t V : Succs[U]) {
      Depth[V] = std::max(Depth[V], Depth[U] + 1);
      Longest = std::max<std::size_t>(Longest, Depth[V]);
      if (--Deg[V] == 0)
        Queue.push_back(V);
    }
  }
  return Longest;
}

namespace {

/// Depth-first search over sign patterns of (zdst - zsrc), pruning
/// infeasible prefixes with one bounded Omega query per tree node.
struct SignSearch {
  const SolverBudget &Budget;
  const std::vector<unsigned> &ZSrc, &ZDst;
  std::set<std::vector<int>> &Found;
  bool &SawUnknown;

  void run(const Polyhedron &Poly, std::vector<int> &Prefix, unsigned Dim) {
    unsigned M = ZSrc.size();
    if (Dim == M) {
      bool AllZero =
          std::all_of(Prefix.begin(), Prefix.end(), [](int S) { return !S; });
      // The all-zero pattern is a same-block dependence: original program
      // order inside the block already honors it; no edge needed.
      if (!AllZero)
        Found.insert(Prefix);
      return;
    }
    // Skip subtrees that cannot contribute a new pattern. (Cheap test:
    // every completion of Prefix already recorded would require enumerating;
    // only prune the exact-match case when all remaining dims are forced.)
    for (int Sign : {-1, 0, 1}) {
      Polyhedron Next = Poly;
      if (Sign == 0) {
        ConstraintRow Eq(Next.getNumVars() + 1, 0);
        Eq[ZDst[Dim]] = 1;
        Eq[ZSrc[Dim]] = -1;
        Next.addEquality(std::move(Eq));
      } else {
        ConstraintRow Lt(Next.getNumVars() + 1, 0);
        Lt[ZDst[Dim]] = Sign;
        Lt[ZSrc[Dim]] = -Sign;
        Lt.back() = -1; // sign * (zdst - zsrc) >= 1.
        Next.addInequality(std::move(Lt));
      }
      FeasVerdict V = isIntegerEmptyBounded(Next, Budget);
      if (injectSolverUnknown())
        V = FeasVerdict::Unknown; // Chaos: simulate budget exhaustion.
      if (V == FeasVerdict::Empty)
        continue;
      if (V == FeasVerdict::Unknown)
        SawUnknown = true; // Conservative: descend as if feasible.
      Prefix.push_back(Sign);
      run(Next, Prefix, Dim + 1);
      Prefix.pop_back();
    }
  }
};

} // namespace

std::vector<std::vector<int>>
shackle::blockDependenceSigns(const Program &P, const ShackleChain &Chain,
                              const std::vector<int64_t> &ParamValues,
                              const SolverBudget &Budget, bool *SawUnknown,
                              unsigned NumFactors) {
  assert(!Chain.Factors.empty() && "empty shackle chain");
  assert(ParamValues.size() == P.getNumParams() &&
         "one value per program parameter");
  if (NumFactors == 0 || NumFactors > Chain.Factors.size())
    NumFactors = static_cast<unsigned>(Chain.Factors.size());
  // Hierarchical projection: only the first NumFactors factors' block
  // coordinates enter the problem. Each omitted inner coordinate is
  // functionally determined by variables that remain, so leaving out its
  // defining constraints is an exact projection (see the header comment).
  unsigned M = Chain.numBlockDimsPrefix(NumFactors);
  std::set<std::vector<int>> Found;
  bool Unknown = false;

  for (DependenceProblem &DP : buildDependenceProblems(P)) {
    const Stmt &Src = P.getStmt(DP.SrcStmt);
    const Stmt &Dst = P.getStmt(DP.DstStmt);

    // Extend the dependence space with both endpoints' block coordinates,
    // exactly as the legality checker does (Legality.cpp).
    Polyhedron Poly = DP.Poly;
    std::vector<unsigned> ZSrc, ZDst;
    for (unsigned I = 0; I < M; ++I)
      ZSrc.push_back(Poly.appendVar("zw" + std::to_string(I + 1)));
    for (unsigned I = 0; I < M; ++I)
      ZDst.push_back(Poly.appendVar("zr" + std::to_string(I + 1)));

    std::vector<int> SrcMap(P.getNumVars(), -1);
    std::vector<int> DstMap(P.getNumVars(), -1);
    for (unsigned V = 0; V < DP.NumParams; ++V)
      SrcMap[V] = DstMap[V] = static_cast<int>(V);
    for (unsigned K = 0; K < Src.getDepth(); ++K)
      SrcMap[Src.LoopVars[K]] = static_cast<int>(DP.SrcOffset + K);
    for (unsigned K = 0; K < Dst.getDepth(); ++K)
      DstMap[Dst.LoopVars[K]] = static_cast<int>(DP.DstOffset + K);

    unsigned Z = 0;
    for (unsigned FI = 0; FI < NumFactors; ++FI) {
      const DataShackle &F = Chain.Factors[FI];
      for (unsigned Pl = 0; Pl < F.Blocking.Planes.size(); ++Pl, ++Z) {
        addBlockLinkConstraints(Poly, P, F, Pl, DP.SrcStmt, ZSrc[Z], SrcMap);
        addBlockLinkConstraints(Poly, P, F, Pl, DP.DstStmt, ZDst[Z], DstMap);
      }
    }

    // Pin the problem-size parameters: the DAG is per concrete run, and
    // concrete parameters both sharpen the patterns and speed the solver.
    for (unsigned V = 0; V < DP.NumParams; ++V) {
      ConstraintRow Eq(Poly.getNumVars() + 1, 0);
      Eq[V] = 1;
      Eq.back() = -ParamValues[V];
      Poly.addEquality(std::move(Eq));
    }

    std::vector<int> Prefix;
    Prefix.reserve(M);
    SignSearch{Budget, ZSrc, ZDst, Found, Unknown}.run(Poly, Prefix, 0);
  }

  if (SawUnknown)
    *SawUnknown = Unknown;
  return std::vector<std::vector<int>>(Found.begin(), Found.end());
}

namespace {

/// Packs a sign vector into 2 bits per dim (supports up to 32 dims).
uint64_t packSigns(const int *Signs, unsigned M) {
  uint64_t Key = 0;
  for (unsigned I = 0; I < M; ++I)
    Key |= static_cast<uint64_t>(Signs[I] + 1) << (2 * I);
  return Key;
}

int signOf(int64_t V) { return V < 0 ? -1 : (V > 0 ? 1 : 0); }

} // namespace

BlockDepGraph
shackle::buildBlockDepGraph(const Program &P, const ShackleChain &Chain,
                            const std::vector<int64_t> &ParamValues,
                            const std::vector<std::vector<int64_t>> &Blocks,
                            const BlockDepGraphOptions &Opts) {
  BlockDepGraph G;
  G.NumBlockDims = Chain.numBlockDimsPrefix(Opts.TaskFactors);
  G.Coords = Blocks;
  G.Succs.assign(Blocks.size(), {});
  G.InDegree.assign(Blocks.size(), 0);
  assert(G.NumBlockDims <= 32 && "sign packing supports up to 32 block dims");
  assert((Blocks.empty() || Blocks.front().size() == G.NumBlockDims) &&
         "block tuples must match the selected factor prefix");

  G.SignPatterns = blockDependenceSigns(P, Chain, ParamValues, Opts.Budget,
                                        &G.Conservative, Opts.TaskFactors);
  if (G.SignPatterns.empty() || Blocks.empty())
    return G; // Fully parallel: every block is independent.

  std::unordered_set<uint64_t> Keys;
  for (const std::vector<int> &S : G.SignPatterns)
    Keys.insert(packSigns(S.data(), G.NumBlockDims));

  unsigned M = G.NumBlockDims;
  std::vector<int> Diff(M), NegDiff(M);
  for (std::size_t U = 0;
       U < Blocks.size() && !G.EdgeCapHit && !G.WorkCapHit; ++U) {
    for (std::size_t V = U + 1; V < Blocks.size(); ++V) {
      if (++G.PairVisits > Opts.MaxPairVisits) {
        G.WorkCapHit = true;
        break;
      }
      for (unsigned D = 0; D < M; ++D) {
        int S = signOf(Blocks[V][D] - Blocks[U][D]);
        Diff[D] = S;
        NegDiff[D] = -S;
      }
      if (Keys.count(packSigns(Diff.data(), M))) {
        G.Succs[U].push_back(static_cast<uint32_t>(V));
        ++G.InDegree[V];
        ++G.NumEdges;
      }
      if (Keys.count(packSigns(NegDiff.data(), M))) {
        // A dependence against traversal order: only possible for unproven
        // or illegal shackles. Recorded faithfully; acyclic() then fails
        // and the executor falls back to serial.
        G.Succs[V].push_back(static_cast<uint32_t>(U));
        ++G.InDegree[U];
        ++G.NumEdges;
      }
      if (G.NumEdges > Opts.MaxEdges) {
        G.EdgeCapHit = true;
        break;
      }
    }
  }
  return G;
}
