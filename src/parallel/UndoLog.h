//===- UndoLog.h - Block write-footprint snapshots --------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's block — the unit of data that is "current" (Definition 1) —
/// is also the natural unit of recovery: a block task's writes land in a
/// bounded, statically enumerable footprint, so saving that footprint
/// before the task runs makes the task atomic. If the body fails partway
/// through (exception, injected fault), restoring the snapshot returns the
/// instance to the exact pre-task state and the block can be retried or
/// replayed serially, preserving the runtime's bitwise-determinism
/// guarantee. Restoration is required even for a simple retry: shackled
/// statements routinely read their own outputs (e.g. Cholesky's
/// A[I][J] = A[I][J] / A[J][J]), so re-running over half-written data
/// would compute garbage.
///
/// The footprint comes from collectSubtreeWrites — the same structural walk
/// the interpreter executes, minus the arithmetic — so capture cost is
/// proportional to the block's instance count, not the array size.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PARALLEL_UNDOLOG_H
#define SHACKLE_PARALLEL_UNDOLOG_H

#include "interp/Interpreter.h"
#include "parallel/BlockPartition.h"

#include <cstdint>
#include <vector>

namespace shackle {

/// Saved pre-image of one block task's write footprint.
struct BlockUndoLog {
  struct Entry {
    unsigned ArrayId;
    int64_t Offset;
    double Value;
  };
  /// Deduplicated, sorted by (array, offset).
  std::vector<Entry> Entries;
};

/// Snapshots the elements \p Task will write on \p Inst (all segments, in
/// order, duplicates collapsed to the first pre-image — which is the only
/// correct one to restore).
BlockUndoLog captureBlockUndo(const LoopNest &Nest, const BlockTask &Task,
                              const ProgramInstance &Inst);

/// Writes the saved pre-images back, returning the footprint to its state
/// at capture time. Idempotent; safe after any partial execution of the
/// block (concurrent blocks never touch this footprint — that is exactly
/// what a block dependence edge orders).
void restoreBlockUndo(const BlockUndoLog &Log, ProgramInstance &Inst);

} // namespace shackle

#endif // SHACKLE_PARALLEL_UNDOLOG_H
