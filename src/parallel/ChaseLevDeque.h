//===- ChaseLevDeque.h - Lock-free work-stealing deque ----------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The classic Chase–Lev dynamic circular work-stealing deque [Chase & Lev,
/// SPAA 2005], with the C11 memory orderings of Lê, Pop, Cohen & Zappa
/// Nardelli, "Correct and Efficient Work-Stealing for Weak Memory Models"
/// (PPoPP 2013). One thread (the owner) pushes and pops at the bottom;
/// any number of thieves steal from the top.
///
/// The element type must be trivially copyable and small (task ids); slots
/// are std::atomic<T> so that the buffer recycling inherent to the
/// algorithm is race-free under ThreadSanitizer as well as in the C++
/// memory model. Buffers grow geometrically; retired buffers are kept
/// until the deque is destroyed, which is the standard safe-reclamation
/// shortcut (a thief may still be reading a stale buffer pointer, but the
/// storage stays valid and the subsequent top CAS fails).
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_PARALLEL_CHASELEVDEQUE_H
#define SHACKLE_PARALLEL_CHASELEVDEQUE_H

#include "support/FaultInjector.h"

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace shackle {

template <typename T> class ChaseLevDeque {
  static_assert(std::is_trivially_copyable_v<T>,
                "deque elements are copied between threads without locks");

  struct Ring {
    int64_t Capacity; ///< Always a power of two.
    int64_t Mask;
    std::unique_ptr<std::atomic<T>[]> Slots;

    explicit Ring(int64_t C)
        : Capacity(C), Mask(C - 1), Slots(new std::atomic<T>[C]) {}

    T get(int64_t I) const {
      return Slots[I & Mask].load(std::memory_order_relaxed);
    }
    void put(int64_t I, T V) {
      Slots[I & Mask].store(V, std::memory_order_relaxed);
    }
  };

public:
  explicit ChaseLevDeque(int64_t InitialCapacity = 64) {
    int64_t C = 1;
    while (C < InitialCapacity)
      C <<= 1;
    Active.store(new Ring(C), std::memory_order_relaxed);
    Retired.emplace_back(Active.load(std::memory_order_relaxed));
  }

  ChaseLevDeque(const ChaseLevDeque &) = delete;
  ChaseLevDeque &operator=(const ChaseLevDeque &) = delete;

  /// Owner only. Returns false when the buffer was full and growing it
  /// failed with bad_alloc; the item is then NOT enqueued and the deque is
  /// unchanged (strong guarantee: no task lost in the structure, no buffer
  /// leaked, thieves unaffected), so the caller can park the item elsewhere
  /// and keep running. Always true when the buffer has room.
  bool push(T Item) {
    int64_t B = Bottom.load(std::memory_order_relaxed);
    int64_t T_ = Top.load(std::memory_order_acquire);
    Ring *R = Active.load(std::memory_order_relaxed);
    if (B - T_ > R->Capacity - 1) {
      try {
        R = grow(R, B, T_);
      } catch (const std::bad_alloc &) {
        return false;
      }
    }
    R->put(B, Item);
    // Publish with a release store on Bottom (the canonical C11 orderings)
    // rather than a release fence + relaxed store: the two are equivalent in
    // the C++ memory model (and identical code on x86), but ThreadSanitizer
    // does not model standalone fences, so only the store form keeps the
    // push -> steal synchronization visible to it.
    Bottom.store(B + 1, std::memory_order_release);
    return true;
  }

  /// Owner only: LIFO pop from the bottom. Returns false when empty.
  bool pop(T &Out) {
    int64_t B = Bottom.load(std::memory_order_relaxed) - 1;
    Ring *R = Active.load(std::memory_order_relaxed);
    Bottom.store(B, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t T_ = Top.load(std::memory_order_relaxed);
    if (T_ > B) {
      // Empty: restore the canonical state.
      Bottom.store(B + 1, std::memory_order_relaxed);
      return false;
    }
    Out = R->get(B);
    if (T_ != B)
      return true; // More than one element left; no race possible.
    // Exactly one element: race against thieves for it.
    bool Won = Top.compare_exchange_strong(T_, T_ + 1,
                                           std::memory_order_seq_cst,
                                           std::memory_order_relaxed);
    Bottom.store(B + 1, std::memory_order_relaxed);
    return Won;
  }

  /// Any thread: FIFO steal from the top. Returns false when empty or when
  /// losing a race (callers just try another victim).
  bool steal(T &Out) {
    int64_t T_ = Top.load(std::memory_order_acquire);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    int64_t B = Bottom.load(std::memory_order_acquire);
    if (T_ >= B)
      return false;
    Ring *R = Active.load(std::memory_order_consume);
    T Item = R->get(T_);
    if (!Top.compare_exchange_strong(T_, T_ + 1, std::memory_order_seq_cst,
                                     std::memory_order_relaxed))
      return false;
    Out = Item;
    return true;
  }

  /// Racy size estimate (monitoring only).
  int64_t sizeEstimate() const {
    return Bottom.load(std::memory_order_relaxed) -
           Top.load(std::memory_order_relaxed);
  }

private:
  /// Exception-safe growth: everything that can throw (the injection hook,
  /// the Ring allocation, the Retired bookkeeping) happens before the new
  /// ring is published to Active, so a bad_alloc anywhere leaves the deque
  /// exactly as it was — same capacity, same elements, nothing leaked —
  /// and concurrent thieves never observe a half-built ring.
  Ring *grow(Ring *Old, int64_t B, int64_t T_) {
    if (injectAllocFail())
      throw std::bad_alloc();
    auto Fresh = std::make_unique<Ring>(Old->Capacity * 2);
    Ring *R = Fresh.get();
    for (int64_t I = T_; I < B; ++I)
      R->put(I, Old->get(I));
    Retired.reserve(Retired.size() + 1); // Last throw point.
    Active.store(R, std::memory_order_release);
    Retired.emplace_back(std::move(Fresh)); // Noexcept after the reserve;
                                            // Old stays alive for thieves.
    return R;
  }

  alignas(64) std::atomic<int64_t> Top{0};
  alignas(64) std::atomic<int64_t> Bottom{0};
  alignas(64) std::atomic<Ring *> Active{nullptr};
  /// Every ring ever allocated, owner-mutated only; freed on destruction.
  std::vector<std::unique_ptr<Ring>> Retired;
};

} // namespace shackle

#endif // SHACKLE_PARALLEL_CHASELEVDEQUE_H
