//===- AutoShackle.cpp - Automatic shackle search ------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "autotune/AutoShackle.h"

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"

#include <algorithm>
#include <cassert>

using namespace shackle;

namespace {

/// Distinct references of statement \p S targeting \p ArrayId (textual
/// duplicates collapsed).
std::vector<ArrayRef> candidateRefs(const Stmt &S, unsigned ArrayId) {
  std::vector<ArrayRef> Out;
  for (const auto &[Ref, IsWrite] : S.refs()) {
    (void)IsWrite;
    if (Ref->ArrayId != ArrayId)
      continue;
    if (std::find(Out.begin(), Out.end(), *Ref) == Out.end())
      Out.push_back(*Ref);
  }
  return Out;
}

std::string refStr(const Program &P, const ArrayRef &R) {
  std::string S = P.getArray(R.ArrayId).Name + "[";
  for (unsigned D = 0; D < R.Indices.size(); ++D) {
    if (D)
      S += ",";
    S += R.Indices[D].str(P.getVarNames());
  }
  return S + "]";
}

/// Evaluates the candidate's memory behaviour through the simulator.
void evaluate(const Program &P, ShackleCandidate &Cand,
              const AutoShackleOptions &Opts,
              const std::vector<CacheConfig> &Caches) {
  // Candidates reaching this point are proven legal, so if the scanner fails
  // the naive (Figure 5) code runs the same blocked order — and therefore
  // produces the same access trace — just without simplified loop bounds.
  Expected<LoopNest> Checked = generateShackledCodeChecked(P, Cand.Chain);
  LoopNest Nest = Checked.ok() ? std::move(Checked.get())
                               : generateNaiveShackledCode(P, Cand.Chain);
  ProgramInstance Inst(P, Opts.EvalParams);
  CacheHierarchy H(Caches);
  TraceFn Trace = [&H](unsigned ArrayId, int64_t Off, bool) {
    H.access((static_cast<uint64_t>(ArrayId + 1) << 33) +
             static_cast<uint64_t>(Off) * sizeof(double));
  };
  runLoopNest(Nest, Inst, &Trace);
  Cand.Accesses = H.accesses();
  Cand.Misses.clear();
  Cand.Cost = 0;
  for (unsigned L = 0; L < H.numLevels(); ++L) {
    Cand.Misses.push_back(H.level(L).misses());
    double W = L < Opts.LevelWeights.size() ? Opts.LevelWeights[L] : 1.0;
    Cand.Cost += W * static_cast<double>(H.level(L).misses());
  }
  Cand.Evaluated = true;
}

} // namespace

AutoShackleResult shackle::searchShackles(const Program &P, unsigned ArrayId,
                                          const AutoShackleOptions &Opts) {
  assert(!Opts.EvalParams.empty() && "evaluation parameters are required");
  AutoShackleResult Result;

  std::vector<CacheConfig> Caches = Opts.Caches;
  if (Caches.empty())
    Caches = {CacheConfig{"L1", 32 * 1024, 64, 4},
              CacheConfig{"L2", 256 * 1024, 64, 8}};

  // Per-statement candidate references.
  std::vector<std::vector<ArrayRef>> Refs;
  unsigned Combos = 1;
  for (unsigned Id = 0; Id < P.getNumStmts(); ++Id) {
    Refs.push_back(candidateRefs(P.getStmt(Id), ArrayId));
    if (Refs.back().empty())
      return Result; // Statement without a reference: caller must supply
                     // dummy references; the search does not invent them.
    Combos *= Refs.back().size();
    if (Combos > Opts.MaxCombos)
      return Result;
  }

  unsigned Rank = P.getArray(ArrayId).Extents.size();
  std::vector<std::vector<unsigned>> Orders;
  {
    std::vector<unsigned> Identity(Rank);
    for (unsigned D = 0; D < Rank; ++D)
      Identity[D] = D;
    Orders.push_back(Identity);
    if (Opts.TryBothTraversalOrders && Rank == 2)
      Orders.push_back({1, 0});
  }

  // Enumerate single shackles.
  for (unsigned Combo = 0; Combo < Combos; ++Combo) {
    std::vector<const ArrayRef *> Choice;
    unsigned Rest = Combo;
    for (unsigned Id = 0; Id < P.getNumStmts(); ++Id) {
      Choice.push_back(&Refs[Id][Rest % Refs[Id].size()]);
      Rest /= Refs[Id].size();
    }
    for (const std::vector<unsigned> &Order : Orders) {
      for (bool Rev : Opts.TryReversed ? std::vector<bool>{false, true}
                                       : std::vector<bool>{false}) {
        for (int64_t B : Opts.BlockSizes) {
          DataShackle Sh;
          Sh.Blocking = DataBlocking::rectangular(
              ArrayId, std::vector<int64_t>(Rank, B), Order);
          Sh.Blocking.Planes[0].Reversed = Rev;
          for (const ArrayRef *R : Choice)
            Sh.ShackledRefs.push_back(*R);

          ShackleCandidate Cand;
          Cand.Chain.Factors.push_back(std::move(Sh));
          for (unsigned Id = 0; Id < P.getNumStmts(); ++Id)
            Cand.Description += P.getStmt(Id).Label + "=" +
                                refStr(P, *Choice[Id]) + " ";
          Cand.Description += "order=";
          for (unsigned D : Order)
            Cand.Description += std::to_string(D);
          if (Rev)
            Cand.Description += " reversed";
          Cand.Description += " B=" + std::to_string(B);

          Cand.Legal = checkLegality(P, Cand.Chain).Legal;
          if (Cand.Legal)
            evaluate(P, Cand, Opts, Caches);
          Result.Candidates.push_back(std::move(Cand));
        }
      }
    }
  }

  // Products of the two cheapest distinct single shackles per block size.
  if (Opts.TryProducts) {
    std::vector<unsigned> LegalIdx;
    for (unsigned I = 0; I < Result.Candidates.size(); ++I)
      if (Result.Candidates[I].Legal)
        LegalIdx.push_back(I);
    std::sort(LegalIdx.begin(), LegalIdx.end(), [&](unsigned A, unsigned B) {
      return Result.Candidates[A].Cost < Result.Candidates[B].Cost;
    });
    unsigned Limit = std::min<size_t>(LegalIdx.size(), 3);
    for (unsigned AI = 0; AI < Limit; ++AI) {
      for (unsigned BI = 0; BI < Limit; ++BI) {
        if (AI == BI)
          continue;
        const ShackleCandidate &A = Result.Candidates[LegalIdx[AI]];
        const ShackleCandidate &B = Result.Candidates[LegalIdx[BI]];
        ShackleCandidate Prod;
        Prod.Chain.Factors = {A.Chain.Factors[0], B.Chain.Factors[0]};
        Prod.Description =
            "product[" + A.Description + "] x [" + B.Description + "]";
        Prod.Legal = checkLegality(P, Prod.Chain).Legal;
        if (Prod.Legal)
          evaluate(P, Prod, Opts, Caches);
        Result.Candidates.push_back(std::move(Prod));
      }
    }
  }

  // Two-level refinements of the cheapest singles (Section 6.3).
  if (Opts.TryTwoLevel && Opts.TwoLevelDivisor >= 2) {
    std::vector<unsigned> LegalIdx;
    for (unsigned I = 0; I < Result.Candidates.size(); ++I)
      if (Result.Candidates[I].Legal &&
          Result.Candidates[I].Chain.Factors.size() == 1)
        LegalIdx.push_back(I);
    std::sort(LegalIdx.begin(), LegalIdx.end(), [&](unsigned A, unsigned B) {
      return Result.Candidates[A].Cost < Result.Candidates[B].Cost;
    });
    unsigned Limit = std::min<size_t>(LegalIdx.size(), 2);
    for (unsigned I = 0; I < Limit; ++I) {
      const ShackleCandidate &Base = Result.Candidates[LegalIdx[I]];
      int64_t OuterB = Base.Chain.Factors[0].Blocking.Planes[0].BlockSize;
      if (OuterB % Opts.TwoLevelDivisor != 0 ||
          OuterB / Opts.TwoLevelDivisor < 2)
        continue;
      DataShackle Inner = Base.Chain.Factors[0];
      for (CuttingPlaneSet &PS : Inner.Blocking.Planes)
        PS.BlockSize /= Opts.TwoLevelDivisor;
      ShackleCandidate TwoLevel;
      TwoLevel.Chain.Factors = {Base.Chain.Factors[0], std::move(Inner)};
      TwoLevel.Description = "two-level[" + Base.Description + " / " +
                             std::to_string(Opts.TwoLevelDivisor) + "]";
      TwoLevel.Legal = checkLegality(P, TwoLevel.Chain).Legal;
      if (TwoLevel.Legal)
        evaluate(P, TwoLevel, Opts, Caches);
      Result.Candidates.push_back(std::move(TwoLevel));
    }
  }

  // Rank: legal+evaluated first by cost.
  std::stable_sort(Result.Candidates.begin(), Result.Candidates.end(),
                   [](const ShackleCandidate &A, const ShackleCandidate &B) {
                     if (A.Evaluated != B.Evaluated)
                       return A.Evaluated;
                     return A.Cost < B.Cost;
                   });
  if (!Result.Candidates.empty() && Result.Candidates.front().Evaluated)
    Result.BestIndex = 0;
  return Result;
}

std::vector<std::pair<int64_t, double>>
shackle::sweepBlockSizes(const Program &P, const ShackleChain &Chain,
                         const std::vector<int64_t> &Sizes,
                         const AutoShackleOptions &Opts) {
  std::vector<CacheConfig> Caches = Opts.Caches;
  if (Caches.empty())
    Caches = {CacheConfig{"L1", 32 * 1024, 64, 4},
              CacheConfig{"L2", 256 * 1024, 64, 8}};

  std::vector<std::pair<int64_t, double>> Out;
  for (int64_t B : Sizes) {
    ShackleCandidate Cand;
    Cand.Chain = Chain;
    for (DataShackle &F : Cand.Chain.Factors)
      for (CuttingPlaneSet &PS : F.Blocking.Planes)
        PS.BlockSize = B;
    if (!checkLegality(P, Cand.Chain).Legal)
      continue;
    evaluate(P, Cand, Opts, Caches);
    Out.emplace_back(B, Cand.Cost);
  }
  std::sort(Out.begin(), Out.end(),
            [](const auto &A, const auto &B) { return A.second < B.second; });
  return Out;
}
