//===- AutoShackle.h - Automatic shackle search -----------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 8 sketch, implemented: "a search method that
/// enumerates over plausible data shackles, evaluates each one and picks
/// the best", with "accurate cost models for the memory hierarchy".
///
/// The enumeration follows the paper's own hints:
///  * data-centric references are drawn from each statement's references to
///    the blocked array (Theorem 2's guidance);
///  * cutting planes stay axis-aligned — "to a first order of
///    approximation, the orientation of cutting planes is irrelevant as far
///    as performance is concerned ... orientation is important for
///    legality" — so only the traversal order and reversal vary;
///  * block sizes come from a training sweep (the Dongarra-Schreiber
///    "training sets" idea the paper cites for block-size selection).
///
/// Cost model: the deterministic cache hierarchy simulator, fed by the
/// interpreter's address trace of the candidate's generated code. For
/// affine programs the trace is input-independent, so no numeric
/// initialization is needed.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_AUTOTUNE_AUTOSHACKLE_H
#define SHACKLE_AUTOTUNE_AUTOSHACKLE_H

#include "cachesim/CacheSim.h"
#include "core/DataShackle.h"
#include "ir/Program.h"

#include <cstdint>
#include <string>
#include <vector>

namespace shackle {

struct AutoShackleOptions {
  /// Square block sizes to sweep.
  std::vector<int64_t> BlockSizes = {8, 16, 32};
  /// Concrete parameter values used to evaluate candidates (e.g. {96}).
  std::vector<int64_t> EvalParams;
  /// Cache geometry for the cost model; empty selects a small two-level
  /// hierarchy suited to the EvalParams sizes.
  std::vector<CacheConfig> Caches;
  /// Also try the transposed traversal order (for rank-2 blockings).
  bool TryBothTraversalOrders = true;
  /// Also try reversing the slowest-varying plane set.
  bool TryReversed = false;
  /// Also try Cartesian products of the best single shackles.
  bool TryProducts = true;
  /// Also try multi-level chains: the best single candidates refined by a
  /// copy of themselves with block size divided by TwoLevelDivisor
  /// (Section 6.3's construction).
  bool TryTwoLevel = true;
  int64_t TwoLevelDivisor = 8;
  /// Upper bound on reference-choice combinations considered.
  unsigned MaxCombos = 256;
  /// Per-level miss weights (latency-ish): cost = sum w_l * misses_l.
  std::vector<double> LevelWeights = {1.0, 8.0};
};

struct ShackleCandidate {
  ShackleChain Chain;
  std::string Description;
  bool Legal = false;
  bool Evaluated = false;
  std::vector<uint64_t> Misses; ///< Per cache level.
  uint64_t Accesses = 0;
  double Cost = 0.0;
};

struct AutoShackleResult {
  /// All candidates considered, the legal+evaluated ones sorted first by
  /// ascending cost.
  std::vector<ShackleCandidate> Candidates;
  /// Index of the winner in Candidates, or -1 if nothing legal was found.
  int BestIndex = -1;

  const ShackleCandidate *best() const {
    return BestIndex < 0 ? nullptr : &Candidates[BestIndex];
  }
};

/// Enumerates, legality-checks, and cost-ranks data shackles that block
/// array \p ArrayId of \p P. Every statement must contain at least one
/// reference to the array (use dummy references in the program's shackle
/// configuration otherwise; the search does not invent them).
AutoShackleResult searchShackles(const Program &P, unsigned ArrayId,
                                 const AutoShackleOptions &Opts);

/// Block-size training sweep for a fixed shackle structure: re-blocks
/// \p Chain's factors with each size and returns (size, cost) pairs sorted
/// by ascending cost. All factors are re-blocked uniformly.
std::vector<std::pair<int64_t, double>>
sweepBlockSizes(const Program &P, const ShackleChain &Chain,
                const std::vector<int64_t> &Sizes,
                const AutoShackleOptions &Opts);

} // namespace shackle

#endif // SHACKLE_AUTOTUNE_AUTOSHACKLE_H
