//===- Program.h - Loop-nest IR (perfect and imperfect nests) ---*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The source-program representation that data shackles transform: a tree of
/// do-loops with affine bounds (max-of/min-of lists allowed) containing
/// assignment statements whose subscripts are affine in the loop variables
/// and symbolic parameters. Both perfectly nested loops (matrix multiply)
/// and imperfectly nested loops (Cholesky, QR, ADI) are expressible; the
/// paper's framework is specifically motivated by the imperfect case.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_IR_PROGRAM_H
#define SHACKLE_IR_PROGRAM_H

#include "ir/Expr.h"

#include <memory>
#include <string>
#include <vector>

namespace shackle {

/// Physical storage layouts for arrays. The paper stresses that blocking is a
/// logical remap (Section 5.3) but optionally composes with a physical data
/// transformation; BandLower is the LAPACK-style band storage used by the
/// banded Cholesky experiment (Figure 15).
enum class LayoutKind {
  RowMajor,
  ColMajor,
  /// Column-major band storage of a lower-triangular band matrix: logical
  /// element (i, j) with 0 <= i - j <= bw is stored at (i - j) + j * (bw + 1).
  BandLower,
  /// Physically reshaped block-major storage (paper Section 5.3: blocking is
  /// a logical remap, but "nothing prevents us from reshaping the physical
  /// data array"). Rank-2 only: TileRows x TileCols tiles laid out
  /// row-major over the tile grid, each tile row-major internally; edge
  /// tiles are padded to full size.
  TiledRowMajor,
};

/// A declared array with symbolic extents.
struct ArrayDecl {
  std::string Name;
  std::vector<AffineExpr> Extents; ///< Logical extent per dimension.
  LayoutKind Layout = LayoutKind::RowMajor;
  unsigned BandParam = 0; ///< Parameter id holding the bandwidth (BandLower).
  int64_t TileRows = 0;   ///< Tile height (TiledRowMajor).
  int64_t TileCols = 0;   ///< Tile width (TiledRowMajor).
};

enum class VarKind { Param, Loop };

struct Loop;
struct Stmt;

/// A child of a loop body or of the program: either a nested loop or a
/// statement.
struct Node {
  Loop *L = nullptr;
  Stmt *S = nullptr;
  bool isLoop() const { return L != nullptr; }
};

/// A do-loop with unit step. The iteration range is
///   max(LowerBounds) <= var <= min(UpperBounds).
struct Loop {
  unsigned Var = 0;
  std::vector<AffineExpr> LowerBounds;
  std::vector<AffineExpr> UpperBounds;
  std::vector<Node> Body;
};

/// An assignment statement LHS = RHS executed for each iteration of its
/// enclosing loops.
struct Stmt {
  unsigned Id = 0;
  std::string Label;
  ArrayRef LHS;
  ScalarExpr::Ptr RHS;

  /// Enclosing loop variables, outermost first.
  std::vector<unsigned> LoopVars;
  /// Textual position at each nesting level (size LoopVars.size() + 1); the
  /// interleaving (Schedule[0], i1, Schedule[1], i2, ...) is the classic
  /// 2d+1-dimensional encoding of original program order.
  std::vector<unsigned> Schedule;

  unsigned getDepth() const { return LoopVars.size(); }

  /// All array references of this statement: the store plus every load.
  /// Index 0 is always the store.
  std::vector<std::pair<const ArrayRef *, bool /*IsWrite*/>> refs() const;
};

/// A whole program: parameters, arrays, and a tree of loops/statements, with
/// a builder-style construction API.
///
/// Typical use:
/// \code
///   Program P;
///   unsigned N = P.addParam("N");
///   unsigned A = P.addArray("A", 2); // N x N by default
///   unsigned J = P.beginLoop("J", P.cst(1), P.v(N));
///   P.addStmt("S1", ...);
///   P.endLoop();
///   P.finalize();
/// \endcode
class Program {
public:
  Program() = default;
  Program(const Program &) = delete;
  Program &operator=(const Program &) = delete;

  /// --- Declarations -----------------------------------------------------

  /// Adds a symbolic parameter (must precede all loops), with an optional
  /// lower bound added to the context (parameters are sizes, default >= 1).
  unsigned addParam(const std::string &Name, int64_t MinValue = 1);

  /// Adds an array whose extents are all equal to parameter \p ExtentParam,
  /// with \p Rank dimensions.
  unsigned addSquareArray(const std::string &Name, unsigned Rank,
                          unsigned ExtentParam,
                          LayoutKind Layout = LayoutKind::RowMajor);

  /// Adds an array with explicit extents.
  unsigned addArray(const std::string &Name, std::vector<AffineExpr> Extents,
                    LayoutKind Layout = LayoutKind::RowMajor,
                    unsigned BandParam = 0);

  /// --- Affine helpers (over the current variable universe) ---------------

  /// Constant expression.
  AffineExpr cst(int64_t C) const {
    return AffineExpr::constant(VarNames.size(), C);
  }
  /// Variable expression.
  AffineExpr v(unsigned Var) const {
    return AffineExpr::var(VarNames.size(), Var);
  }

  /// --- Structure building ------------------------------------------------

  /// Opens a loop  Name = Lb .. Ub  and returns its variable id.
  unsigned beginLoop(const std::string &Name, AffineExpr Lb, AffineExpr Ub);

  /// Opens a loop with max/min bound lists.
  unsigned beginLoopMulti(const std::string &Name, std::vector<AffineExpr> Lbs,
                          std::vector<AffineExpr> Ubs);

  /// Closes the innermost open loop.
  void endLoop();

  /// Adds the statement  LHS = RHS  at the current position.
  Stmt &addStmt(const std::string &Label, ArrayRef LHS, ScalarExpr::Ptr RHS);

  /// Must be called once after construction: extends every affine expression
  /// to the final variable universe and freezes the program.
  void finalize();

  /// --- Introspection ------------------------------------------------------

  unsigned getNumVars() const { return VarNames.size(); }
  unsigned getNumParams() const { return NumParams; }
  const std::vector<std::string> &getVarNames() const { return VarNames; }
  const std::string &getVarName(unsigned Var) const { return VarNames[Var]; }
  VarKind getVarKind(unsigned Var) const { return VarKinds[Var]; }
  int64_t getParamMin(unsigned Param) const { return ParamMins[Param]; }

  unsigned getNumArrays() const { return Arrays.size(); }
  const ArrayDecl &getArray(unsigned Id) const { return Arrays[Id]; }
  const std::vector<ArrayDecl> &arrays() const { return Arrays; }

  /// Switches a rank-2 array to physically tiled (block-major) storage.
  /// Must be called before finalize().
  void setTiledLayout(unsigned ArrayId, int64_t TileRows, int64_t TileCols);

  unsigned getNumStmts() const { return AllStmts.size(); }
  const Stmt &getStmt(unsigned Id) const { return *AllStmts[Id]; }
  Stmt &getStmtMutable(unsigned Id) { return *AllStmts[Id]; }

  const std::vector<Node> &topLevel() const { return TopLevel; }

  /// Returns the loop that declares \p Var (must be a loop variable).
  const Loop &getLoopForVar(unsigned Var) const;

  bool isFinalized() const { return Finalized; }

  /// Pretty-prints in the paper's do-loop style.
  std::string str() const;

private:
  std::vector<Node> &currentBody();

  std::vector<std::string> VarNames;
  std::vector<VarKind> VarKinds;
  std::vector<int64_t> ParamMins; ///< Indexed by param id.
  unsigned NumParams = 0;

  std::vector<ArrayDecl> Arrays;
  std::vector<std::unique_ptr<Loop>> AllLoops;
  std::vector<std::unique_ptr<Stmt>> AllStmts;
  std::vector<Loop *> LoopsByVar; ///< Indexed by var id; null for params.
  std::vector<Node> TopLevel;
  std::vector<Loop *> OpenLoops;
  bool Finalized = false;
};

} // namespace shackle

#endif // SHACKLE_IR_PROGRAM_H
