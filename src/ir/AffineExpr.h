//===- AffineExpr.h - Affine expressions over program variables -*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Affine (linear + constant) expressions over the variables of a Program:
/// symbolic parameters (e.g. the matrix order N) and loop index variables.
/// Used for loop bounds and array subscripts. Dense representation: one
/// coefficient per program variable, which stays tiny for the kernels in the
/// paper.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_IR_AFFINEEXPR_H
#define SHACKLE_IR_AFFINEEXPR_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace shackle {

/// sum(Coeffs[v] * var_v) + Constant over a Program's variable list.
class AffineExpr {
public:
  AffineExpr() = default;

  /// A constant expression in a space of \p NumVars variables.
  static AffineExpr constant(unsigned NumVars, int64_t C) {
    AffineExpr E;
    E.Coeffs.assign(NumVars, 0);
    E.Constant = C;
    return E;
  }

  /// The expression  1 * var_{Var}.
  static AffineExpr var(unsigned NumVars, unsigned Var) {
    AffineExpr E = constant(NumVars, 0);
    assert(Var < NumVars && "variable out of range");
    E.Coeffs[Var] = 1;
    return E;
  }

  unsigned getNumVars() const { return Coeffs.size(); }
  int64_t getCoeff(unsigned Var) const { return Coeffs[Var]; }
  void setCoeff(unsigned Var, int64_t C) { Coeffs[Var] = C; }
  int64_t getConstant() const { return Constant; }
  void setConstant(int64_t C) { Constant = C; }

  bool isConstant() const {
    for (int64_t C : Coeffs)
      if (C != 0)
        return false;
    return true;
  }

  /// Evaluates with concrete values for every variable.
  int64_t evaluate(const std::vector<int64_t> &Values) const {
    assert(Values.size() >= Coeffs.size() && "missing variable values");
    int64_t R = Constant;
    for (unsigned I = 0; I < Coeffs.size(); ++I)
      R += Coeffs[I] * Values[I];
    return R;
  }

  /// Grows the space to \p NumVars variables (new coefficients are zero).
  void extendTo(unsigned NumVars) {
    assert(NumVars >= Coeffs.size() && "cannot shrink an affine expression");
    Coeffs.resize(NumVars, 0);
  }

  AffineExpr operator+(const AffineExpr &O) const {
    assert(Coeffs.size() == O.Coeffs.size() && "space mismatch");
    AffineExpr R = *this;
    for (unsigned I = 0; I < Coeffs.size(); ++I)
      R.Coeffs[I] += O.Coeffs[I];
    R.Constant += O.Constant;
    return R;
  }

  AffineExpr operator-(const AffineExpr &O) const {
    assert(Coeffs.size() == O.Coeffs.size() && "space mismatch");
    AffineExpr R = *this;
    for (unsigned I = 0; I < Coeffs.size(); ++I)
      R.Coeffs[I] -= O.Coeffs[I];
    R.Constant -= O.Constant;
    return R;
  }

  AffineExpr operator+(int64_t C) const {
    AffineExpr R = *this;
    R.Constant += C;
    return R;
  }

  AffineExpr operator-(int64_t C) const { return *this + (-C); }

  AffineExpr operator*(int64_t C) const {
    AffineExpr R = *this;
    for (int64_t &V : R.Coeffs)
      V *= C;
    R.Constant *= C;
    return R;
  }

  bool operator==(const AffineExpr &O) const {
    return Coeffs == O.Coeffs && Constant == O.Constant;
  }

  /// Renders using the given variable names.
  std::string str(const std::vector<std::string> &Names) const;

private:
  std::vector<int64_t> Coeffs;
  int64_t Constant = 0;
};

} // namespace shackle

#endif // SHACKLE_IR_AFFINEEXPR_H
