//===- Expr.h - Scalar expression trees for statement bodies ----*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Right-hand sides of statements in the loop-nest IR: scalar arithmetic over
/// affine array references (the operations needed by the paper's benchmarks:
/// +, -, *, /, unary minus, and sqrt for the Cholesky diagonal).
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_IR_EXPR_H
#define SHACKLE_IR_EXPR_H

#include "ir/AffineExpr.h"

#include <memory>
#include <string>
#include <vector>

namespace shackle {

/// An affine reference A[e1, ..., ek] into array \p ArrayId.
struct ArrayRef {
  unsigned ArrayId = 0;
  std::vector<AffineExpr> Indices;

  bool operator==(const ArrayRef &O) const {
    return ArrayId == O.ArrayId && Indices == O.Indices;
  }
};

enum class ExprKind { Number, Load, Add, Sub, Mul, Div, Neg, Sqrt };

/// A node in a scalar expression tree.
class ScalarExpr {
public:
  using Ptr = std::unique_ptr<ScalarExpr>;

  static Ptr number(double V);
  static Ptr load(ArrayRef Ref);
  static Ptr binary(ExprKind K, Ptr L, Ptr R);
  static Ptr add(Ptr L, Ptr R) { return binary(ExprKind::Add, std::move(L), std::move(R)); }
  static Ptr sub(Ptr L, Ptr R) { return binary(ExprKind::Sub, std::move(L), std::move(R)); }
  static Ptr mul(Ptr L, Ptr R) { return binary(ExprKind::Mul, std::move(L), std::move(R)); }
  static Ptr div(Ptr L, Ptr R) { return binary(ExprKind::Div, std::move(L), std::move(R)); }
  static Ptr neg(Ptr E) { return unary(ExprKind::Neg, std::move(E)); }
  static Ptr sqrt(Ptr E) { return unary(ExprKind::Sqrt, std::move(E)); }
  static Ptr unary(ExprKind K, Ptr E);

  ExprKind getKind() const { return Kind; }
  double getNumber() const { return Number; }
  const ArrayRef &getRef() const { return Ref; }
  ArrayRef &getRefMutable() { return Ref; }
  const ScalarExpr *getLHS() const { return LHS.get(); }
  const ScalarExpr *getRHS() const { return RHS.get(); }
  ScalarExpr *getLHSMutable() { return LHS.get(); }
  ScalarExpr *getRHSMutable() { return RHS.get(); }

  Ptr clone() const;

  /// Collects pointers to every Load reference in the tree (pre-order).
  void collectLoads(std::vector<const ArrayRef *> &Out) const;

private:
  ScalarExpr() = default;

  ExprKind Kind = ExprKind::Number;
  double Number = 0;
  ArrayRef Ref;
  Ptr LHS, RHS;
};

} // namespace shackle

#endif // SHACKLE_IR_EXPR_H
