//===- Expr.cpp - Scalar expression trees -----------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "ir/Expr.h"

#include <cassert>

using namespace shackle;

ScalarExpr::Ptr ScalarExpr::number(double V) {
  Ptr E(new ScalarExpr());
  E->Kind = ExprKind::Number;
  E->Number = V;
  return E;
}

ScalarExpr::Ptr ScalarExpr::load(ArrayRef Ref) {
  Ptr E(new ScalarExpr());
  E->Kind = ExprKind::Load;
  E->Ref = std::move(Ref);
  return E;
}

ScalarExpr::Ptr ScalarExpr::binary(ExprKind K, Ptr L, Ptr R) {
  assert((K == ExprKind::Add || K == ExprKind::Sub || K == ExprKind::Mul ||
          K == ExprKind::Div) &&
         "not a binary operator");
  Ptr E(new ScalarExpr());
  E->Kind = K;
  E->LHS = std::move(L);
  E->RHS = std::move(R);
  return E;
}

ScalarExpr::Ptr ScalarExpr::unary(ExprKind K, Ptr Sub) {
  assert((K == ExprKind::Neg || K == ExprKind::Sqrt) &&
         "not a unary operator");
  Ptr E(new ScalarExpr());
  E->Kind = K;
  E->LHS = std::move(Sub);
  return E;
}

ScalarExpr::Ptr ScalarExpr::clone() const {
  Ptr E(new ScalarExpr());
  E->Kind = Kind;
  E->Number = Number;
  E->Ref = Ref;
  if (LHS)
    E->LHS = LHS->clone();
  if (RHS)
    E->RHS = RHS->clone();
  return E;
}

void ScalarExpr::collectLoads(std::vector<const ArrayRef *> &Out) const {
  if (Kind == ExprKind::Load)
    Out.push_back(&Ref);
  if (LHS)
    LHS->collectLoads(Out);
  if (RHS)
    RHS->collectLoads(Out);
}
