//===- AffineExpr.cpp - Affine expression printing ---------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "ir/AffineExpr.h"

using namespace shackle;

std::string AffineExpr::str(const std::vector<std::string> &Names) const {
  std::string S;
  bool First = true;
  for (unsigned I = 0; I < Coeffs.size(); ++I) {
    int64_t C = Coeffs[I];
    if (C == 0)
      continue;
    if (First) {
      if (C == -1)
        S += "-";
      else if (C != 1)
        S += std::to_string(C) + "*";
    } else {
      S += C > 0 ? " + " : " - ";
      int64_t A = C > 0 ? C : -C;
      if (A != 1)
        S += std::to_string(A) + "*";
    }
    S += I < Names.size() ? Names[I] : ("v" + std::to_string(I));
    First = false;
  }
  if (First)
    return std::to_string(Constant);
  if (Constant > 0)
    S += " + " + std::to_string(Constant);
  else if (Constant < 0)
    S += " - " + std::to_string(-Constant);
  return S;
}
