//===- Program.cpp - Loop-nest IR -------------------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "ir/Program.h"

#include <cassert>

using namespace shackle;

std::vector<std::pair<const ArrayRef *, bool>> Stmt::refs() const {
  std::vector<std::pair<const ArrayRef *, bool>> Out;
  Out.emplace_back(&LHS, /*IsWrite=*/true);
  std::vector<const ArrayRef *> Loads;
  RHS->collectLoads(Loads);
  for (const ArrayRef *R : Loads)
    Out.emplace_back(R, /*IsWrite=*/false);
  return Out;
}

unsigned Program::addParam(const std::string &Name, int64_t MinValue) {
  assert(!Finalized && "program is frozen");
  assert(AllLoops.empty() && "parameters must be declared before loops");
  VarNames.push_back(Name);
  VarKinds.push_back(VarKind::Param);
  ParamMins.push_back(MinValue);
  LoopsByVar.push_back(nullptr);
  return NumParams++;
}

unsigned Program::addSquareArray(const std::string &Name, unsigned Rank,
                                 unsigned ExtentParam, LayoutKind Layout) {
  std::vector<AffineExpr> Extents(Rank, v(ExtentParam));
  return addArray(Name, std::move(Extents), Layout);
}

unsigned Program::addArray(const std::string &Name,
                           std::vector<AffineExpr> Extents, LayoutKind Layout,
                           unsigned BandParam) {
  assert(!Finalized && "program is frozen");
  ArrayDecl D;
  D.Name = Name;
  D.Extents = std::move(Extents);
  D.Layout = Layout;
  D.BandParam = BandParam;
  Arrays.push_back(std::move(D));
  return Arrays.size() - 1;
}

void Program::setTiledLayout(unsigned ArrayId, int64_t TileRows,
                             int64_t TileCols) {
  assert(!Finalized && "program is frozen");
  assert(ArrayId < Arrays.size() && "array index out of range");
  assert(Arrays[ArrayId].Extents.size() == 2 &&
         "tiled layout is for matrices");
  assert(TileRows >= 1 && TileCols >= 1 && "tile sizes must be positive");
  Arrays[ArrayId].Layout = LayoutKind::TiledRowMajor;
  Arrays[ArrayId].TileRows = TileRows;
  Arrays[ArrayId].TileCols = TileCols;
}

std::vector<Node> &Program::currentBody() {
  return OpenLoops.empty() ? TopLevel : OpenLoops.back()->Body;
}

unsigned Program::beginLoop(const std::string &Name, AffineExpr Lb,
                            AffineExpr Ub) {
  return beginLoopMulti(Name, {std::move(Lb)}, {std::move(Ub)});
}

unsigned Program::beginLoopMulti(const std::string &Name,
                                 std::vector<AffineExpr> Lbs,
                                 std::vector<AffineExpr> Ubs) {
  assert(!Finalized && "program is frozen");
  assert(!Lbs.empty() && !Ubs.empty() && "loops need at least one bound");
  unsigned Var = VarNames.size();
  VarNames.push_back(Name);
  VarKinds.push_back(VarKind::Loop);

  auto L = std::make_unique<Loop>();
  L->Var = Var;
  L->LowerBounds = std::move(Lbs);
  L->UpperBounds = std::move(Ubs);
  Loop *Raw = L.get();
  LoopsByVar.push_back(Raw);
  currentBody().push_back(Node{Raw, nullptr});
  AllLoops.push_back(std::move(L));
  OpenLoops.push_back(Raw);
  return Var;
}

void Program::endLoop() {
  assert(!OpenLoops.empty() && "no open loop");
  OpenLoops.pop_back();
}

Stmt &Program::addStmt(const std::string &Label, ArrayRef LHS,
                       ScalarExpr::Ptr RHS) {
  assert(!Finalized && "program is frozen");
  auto S = std::make_unique<Stmt>();
  S->Id = AllStmts.size();
  S->Label = Label;
  S->LHS = std::move(LHS);
  S->RHS = std::move(RHS);
  for (Loop *L : OpenLoops)
    S->LoopVars.push_back(L->Var);
  Stmt *Raw = S.get();
  currentBody().push_back(Node{nullptr, Raw});
  AllStmts.push_back(std::move(S));
  return *Raw;
}

namespace {

/// Walks the tree assigning 2d+1 schedule positions.
void assignSchedules(const std::vector<Node> &Body,
                     std::vector<unsigned> &Prefix) {
  unsigned Pos = 0;
  for (const Node &N : Body) {
    Prefix.push_back(Pos++);
    if (N.isLoop()) {
      assignSchedules(N.L->Body, Prefix);
    } else {
      N.S->Schedule = Prefix;
    }
    Prefix.pop_back();
  }
}

void extendExpr(AffineExpr &E, unsigned NumVars) { E.extendTo(NumVars); }

void extendScalar(ScalarExpr *E, unsigned NumVars);

void extendRef(ArrayRef &R, unsigned NumVars) {
  for (AffineExpr &I : R.Indices)
    extendExpr(I, NumVars);
}

void extendScalar(ScalarExpr *E, unsigned NumVars) {
  if (!E)
    return;
  if (E->getKind() == ExprKind::Load)
    extendRef(E->getRefMutable(), NumVars);
  extendScalar(E->getLHSMutable(), NumVars);
  extendScalar(E->getRHSMutable(), NumVars);
}

} // namespace

void Program::finalize() {
  assert(!Finalized && "finalize called twice");
  assert(OpenLoops.empty() && "unclosed loop at finalize");
  unsigned NV = VarNames.size();
  for (ArrayDecl &A : Arrays)
    for (AffineExpr &E : A.Extents)
      extendExpr(E, NV);
  for (auto &L : AllLoops) {
    for (AffineExpr &E : L->LowerBounds)
      extendExpr(E, NV);
    for (AffineExpr &E : L->UpperBounds)
      extendExpr(E, NV);
  }
  for (auto &S : AllStmts) {
    extendRef(S->LHS, NV);
    extendScalar(S->RHS.get(), NV);
  }
  std::vector<unsigned> Prefix;
  assignSchedules(TopLevel, Prefix);
  Finalized = true;
}

const Loop &Program::getLoopForVar(unsigned Var) const {
  assert(Var < LoopsByVar.size() && LoopsByVar[Var] &&
         "not a loop variable");
  return *LoopsByVar[Var];
}

namespace {

std::string boundListStr(const std::vector<AffineExpr> &Bounds,
                         const std::vector<std::string> &Names, bool IsMax) {
  if (Bounds.size() == 1)
    return Bounds[0].str(Names);
  std::string S = IsMax ? "max(" : "min(";
  for (unsigned I = 0; I < Bounds.size(); ++I) {
    if (I)
      S += ", ";
    S += Bounds[I].str(Names);
  }
  return S + ")";
}

std::string refStr(const ArrayRef &R, const Program &P) {
  std::string S = P.getArray(R.ArrayId).Name + "[";
  for (unsigned I = 0; I < R.Indices.size(); ++I) {
    if (I)
      S += ",";
    S += R.Indices[I].str(P.getVarNames());
  }
  return S + "]";
}

std::string exprStr(const ScalarExpr *E, const Program &P) {
  switch (E->getKind()) {
  case ExprKind::Number: {
    std::string S = std::to_string(E->getNumber());
    // Trim trailing zeros for readability.
    while (S.size() > 1 && S.back() == '0')
      S.pop_back();
    if (!S.empty() && S.back() == '.')
      S.pop_back();
    return S;
  }
  case ExprKind::Load:
    return refStr(E->getRef(), P);
  case ExprKind::Add:
    return "(" + exprStr(E->getLHS(), P) + " + " + exprStr(E->getRHS(), P) +
           ")";
  case ExprKind::Sub:
    return "(" + exprStr(E->getLHS(), P) + " - " + exprStr(E->getRHS(), P) +
           ")";
  case ExprKind::Mul:
    return "(" + exprStr(E->getLHS(), P) + " * " + exprStr(E->getRHS(), P) +
           ")";
  case ExprKind::Div:
    return "(" + exprStr(E->getLHS(), P) + " / " + exprStr(E->getRHS(), P) +
           ")";
  case ExprKind::Neg:
    return "(-" + exprStr(E->getLHS(), P) + ")";
  case ExprKind::Sqrt:
    return "sqrt(" + exprStr(E->getLHS(), P) + ")";
  }
  return "?";
}

void printBody(const std::vector<Node> &Body, const Program &P,
               std::string &Out, unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  for (const Node &N : Body) {
    if (N.isLoop()) {
      const Loop &L = *N.L;
      Out += Pad + "do " + P.getVarName(L.Var) + " = " +
             boundListStr(L.LowerBounds, P.getVarNames(), /*IsMax=*/true) +
             " .. " +
             boundListStr(L.UpperBounds, P.getVarNames(), /*IsMax=*/false) +
             "\n";
      printBody(L.Body, P, Out, Indent + 1);
    } else {
      const Stmt &S = *N.S;
      Out += Pad + S.Label + ": " + refStr(S.LHS, P) + " = " +
             exprStr(S.RHS.get(), P) + "\n";
    }
  }
}

} // namespace

std::string Program::str() const {
  std::string Out;
  printBody(TopLevel, *this, Out, 0);
  return Out;
}
