//===- LoopAST.h - Generated-code AST ---------------------------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The target representation of code generation: a tree of loops over the
/// scanning-space dimensions (block coordinates, then the 2d+1 schedule
/// encoding of the source program), with max/min bounds containing exact
/// integer ceil/floor divisions, affine guards, and statement instances that
/// map source loop variables to scanning dimensions. Both the interpreter
/// and the C++ emitter consume this AST, so everything measured or tested in
/// this project flows through it.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_CODEGEN_LOOPAST_H
#define SHACKLE_CODEGEN_LOOPAST_H

#include "ir/Program.h"
#include "polyhedral/Polyhedron.h"

#include <memory>
#include <string>
#include <vector>

namespace shackle {

/// One term of a loop bound:  ceil((expr) / Divisor)  or  floor(...).
/// \p Expr is affine over the scanning dimensions; Divisor >= 1. Lower
/// bounds use ceil, upper bounds use floor, which makes rational projections
/// exact for unit-step integer loops.
struct BoundExpr {
  AffineExpr Expr;
  int64_t Divisor = 1;
  bool IsCeil = false;

  std::string str(const std::vector<std::string> &Names) const;
};

struct ASTNode;
using ASTNodePtr = std::unique_ptr<ASTNode>;

enum class ASTKind { Loop, If, Instance, Let };

/// A node of the generated-code tree.
struct ASTNode {
  ASTKind Kind;

  // Loop: for Dim = max(Lbs) .. min(Ubs).
  // Let: bind Dim to the single value Lbs[0] (an exact expression).
  unsigned Dim = 0;
  std::vector<BoundExpr> Lbs;
  std::vector<BoundExpr> Ubs;

  // If: conjunction of affine conditions row . (dims, 1) >= 0 / == 0.
  std::vector<ConstraintRow> IneqConds;
  std::vector<ConstraintRow> EqConds;

  // Loop and If carry children.
  std::vector<ASTNodePtr> Body;

  // Instance: execute statement *S with source loop variable k bound to the
  // scanning dimension VarMap[k].
  const Stmt *S = nullptr;
  std::vector<unsigned> VarMap;

  static ASTNodePtr makeLoop(unsigned Dim);
  static ASTNodePtr makeIf();
  static ASTNodePtr makeInstance(const Stmt *S, std::vector<unsigned> VarMap);
  static ASTNodePtr makeLet(unsigned Dim, BoundExpr Value);
};

/// A complete generated program: loops over the scanning space, whose first
/// NumParams dimensions are the symbolic parameters (inputs, not loops).
struct LoopNest {
  const Program *Prog = nullptr;
  unsigned NumDims = 0;
  unsigned NumParams = 0;
  std::vector<std::string> DimNames;
  std::vector<ASTNodePtr> Roots;

  /// Pretty-prints in the paper's style (do-loops, guards, statements).
  std::string str() const;

  /// Total number of Instance nodes.
  unsigned countInstances() const;

  /// Maximum loop nesting depth.
  unsigned loopDepth() const;
};

/// Renders an affine condition row over dimension names, e.g.
/// "t1 - 2*t3 + 4 >= 0".
std::string condStr(const ConstraintRow &Row,
                    const std::vector<std::string> &Names, bool IsEq);

} // namespace shackle

#endif // SHACKLE_CODEGEN_LOOPAST_H
