//===- LoopAST.cpp - Generated-code AST --------------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "codegen/LoopAST.h"

#include <cassert>

using namespace shackle;

std::string BoundExpr::str(const std::vector<std::string> &Names) const {
  if (Divisor == 1)
    return Expr.str(Names);
  if (Expr.isConstant()) {
    int64_t V = Expr.getConstant();
    int64_t Q = V / Divisor;
    if (V % Divisor != 0)
      Q += IsCeil ? (V > 0) : -(V < 0);
    return std::to_string(Q);
  }
  return std::string(IsCeil ? "ceil" : "floor") + "((" + Expr.str(Names) +
         ")/" + std::to_string(Divisor) + ")";
}

ASTNodePtr ASTNode::makeLoop(unsigned Dim) {
  auto N = std::make_unique<ASTNode>();
  N->Kind = ASTKind::Loop;
  N->Dim = Dim;
  return N;
}

ASTNodePtr ASTNode::makeIf() {
  auto N = std::make_unique<ASTNode>();
  N->Kind = ASTKind::If;
  return N;
}

ASTNodePtr ASTNode::makeInstance(const Stmt *S, std::vector<unsigned> VarMap) {
  auto N = std::make_unique<ASTNode>();
  N->Kind = ASTKind::Instance;
  N->S = S;
  N->VarMap = std::move(VarMap);
  return N;
}

ASTNodePtr ASTNode::makeLet(unsigned Dim, BoundExpr Value) {
  auto N = std::make_unique<ASTNode>();
  N->Kind = ASTKind::Let;
  N->Dim = Dim;
  N->Lbs.push_back(std::move(Value));
  return N;
}

std::string shackle::condStr(const ConstraintRow &Row,
                             const std::vector<std::string> &Names,
                             bool IsEq) {
  std::string S;
  bool First = true;
  for (unsigned I = 0; I + 1 < Row.size(); ++I) {
    int64_t C = Row[I];
    if (C == 0)
      continue;
    if (First) {
      if (C == -1)
        S += "-";
      else if (C != 1)
        S += std::to_string(C) + "*";
    } else {
      S += C > 0 ? " + " : " - ";
      int64_t A = C > 0 ? C : -C;
      if (A != 1)
        S += std::to_string(A) + "*";
    }
    S += Names[I];
    First = false;
  }
  int64_t K = Row.back();
  if (First)
    S += std::to_string(K);
  else if (K > 0)
    S += " + " + std::to_string(K);
  else if (K < 0)
    S += " - " + std::to_string(-K);
  return S + (IsEq ? " == 0" : " >= 0");
}

namespace {

std::string boundsStr(const std::vector<BoundExpr> &Bs,
                      const std::vector<std::string> &Names, bool IsMax) {
  assert(!Bs.empty() && "loop without bounds");
  if (Bs.size() == 1)
    return Bs[0].str(Names);
  std::string S = IsMax ? "max(" : "min(";
  for (unsigned I = 0; I < Bs.size(); ++I) {
    if (I)
      S += ", ";
    S += Bs[I].str(Names);
  }
  return S + ")";
}

void printNode(const ASTNode &N, const LoopNest &Nest, std::string &Out,
               unsigned Indent) {
  std::string Pad(Indent * 2, ' ');
  switch (N.Kind) {
  case ASTKind::Loop:
    Out += Pad + "do " + Nest.DimNames[N.Dim] + " = " +
           boundsStr(N.Lbs, Nest.DimNames, /*IsMax=*/true) + " .. " +
           boundsStr(N.Ubs, Nest.DimNames, /*IsMax=*/false) + "\n";
    for (const ASTNodePtr &C : N.Body)
      printNode(*C, Nest, Out, Indent + 1);
    return;
  case ASTKind::If: {
    std::string Cond;
    for (const ConstraintRow &Row : N.EqConds) {
      if (!Cond.empty())
        Cond += " && ";
      Cond += condStr(Row, Nest.DimNames, /*IsEq=*/true);
    }
    for (const ConstraintRow &Row : N.IneqConds) {
      if (!Cond.empty())
        Cond += " && ";
      Cond += condStr(Row, Nest.DimNames, /*IsEq=*/false);
    }
    Out += Pad + "if (" + Cond + ")\n";
    for (const ASTNodePtr &C : N.Body)
      printNode(*C, Nest, Out, Indent + 1);
    return;
  }
  case ASTKind::Let:
    Out += Pad + Nest.DimNames[N.Dim] + " = " + N.Lbs[0].str(Nest.DimNames) +
           "\n";
    for (const ASTNodePtr &C : N.Body)
      printNode(*C, Nest, Out, Indent);
    return;
  case ASTKind::Instance: {
    // Print the statement with its loop variables renamed to scan dims.
    const Program &P = *Nest.Prog;
    std::string Line = N.S->Label + "[";
    for (unsigned K = 0; K < N.VarMap.size(); ++K) {
      if (K)
        Line += ",";
      Line += P.getVarName(N.S->LoopVars[K]) + "=" +
              Nest.DimNames[N.VarMap[K]];
    }
    Line += "]";
    Out += Pad + Line + "\n";
    return;
  }
  }
}

unsigned countInstancesIn(const ASTNode &N) {
  if (N.Kind == ASTKind::Instance)
    return 1;
  unsigned Total = 0;
  for (const ASTNodePtr &C : N.Body)
    Total += countInstancesIn(*C);
  return Total;
}

unsigned loopDepthIn(const ASTNode &N) {
  unsigned Max = 0;
  for (const ASTNodePtr &C : N.Body)
    Max = std::max(Max, loopDepthIn(*C));
  return Max + (N.Kind == ASTKind::Loop ? 1 : 0);
}

} // namespace

std::string LoopNest::str() const {
  std::string Out;
  for (const ASTNodePtr &N : Roots)
    printNode(*N, *this, Out, 0);
  return Out;
}

unsigned LoopNest::countInstances() const {
  unsigned Total = 0;
  for (const ASTNodePtr &N : Roots)
    Total += countInstancesIn(*N);
  return Total;
}

unsigned LoopNest::loopDepth() const {
  unsigned Max = 0;
  for (const ASTNodePtr &N : Roots)
    Max = std::max(Max, loopDepthIn(*N));
  return Max;
}
