//===- Scanner.h - Polyhedra scanning code generation -----------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates a loop nest that enumerates, in lexicographic order of the
/// scanning space, the integer points of a set of statement domains. This is
/// the role the Omega calculator's code generator plays in the paper: the
/// data shackle fixes *what* must run when each block is touched, and this
/// scanner merely produces clean loops for it (paper Section 4.2: polyhedral
/// tools "simplify programs").
///
/// The algorithm is the classic Quillere-Rajopadhye-Wilde scheme: at each
/// dimension, project every statement's domain onto the outer dimensions,
/// split the projections into disjoint pieces (set difference), sort the
/// pieces, emit one loop per piece, and recurse. Dimensions marked as
/// schedule positions carry a constant per statement and become statement
/// ordering instead of loops. Loop bounds use exact integer ceil/floor
/// division, and any constraint not captured by bounds becomes a guard,
/// so the generated code is exact even where rational projection is not.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_CODEGEN_SCANNER_H
#define SHACKLE_CODEGEN_SCANNER_H

#include "codegen/LoopAST.h"
#include "ir/Program.h"
#include "polyhedral/Polyhedron.h"
#include "support/Diagnostics.h"

#include <vector>

namespace shackle {

/// The scanning space: parameters first, then loop/schedule dimensions in
/// enumeration order.
struct ScanSpace {
  unsigned NumParams = 0;
  std::vector<std::string> DimNames;
  /// True for 2d+1 schedule-position dimensions (each statement's domain
  /// fixes them to a constant; they order statements, no loop is emitted).
  std::vector<bool> IsSchedule;

  unsigned numDims() const { return DimNames.size(); }
};

/// One statement's domain within the scanning space.
struct ScanItem {
  Polyhedron Domain; ///< Over the full scan space.
  const Stmt *S = nullptr;
  std::vector<unsigned> VarMap; ///< Stmt loop var k lives at scan dim VarMap[k].
};

/// Generates the loop nest scanning \p Items in lexicographic order of the
/// scan space. \p InitialContext holds what is known about the parameters
/// (e.g. N >= 1), over the same space. Aborts (fatalError) if the scan
/// cannot be completed; callers with a fallback should use
/// scanPolyhedraChecked instead.
LoopNest scanPolyhedra(const ScanSpace &Space, std::vector<ScanItem> Items,
                       const Program &Prog,
                       const Polyhedron &InitialContext);

/// Recoverable variant of scanPolyhedra: returns a ScanFailed diagnostic
/// instead of aborting when pieces cannot be totally ordered, a schedule
/// dimension is not pinned to a constant, or a scanning dimension is
/// unbounded. All three can arise from solver budget exhaustion inside the
/// underlying set operations (an Unknown emptiness verdict conservatively
/// keeps pieces and ordering candidates alive), so a ScanFailed error is the
/// signal to fall back to naive (Figure 5) code generation.
Expected<LoopNest> scanPolyhedraChecked(const ScanSpace &Space,
                                        std::vector<ScanItem> Items,
                                        const Program &Prog,
                                        const Polyhedron &InitialContext);

/// Removes Let bindings whose dimension is never read below them (these come
/// from the zero-padding of statements nested less deeply than the scanning
/// space).
void pruneUnusedLets(LoopNest &Nest);

} // namespace shackle

#endif // SHACKLE_CODEGEN_SCANNER_H
