//===- Scanner.cpp - Polyhedra scanning code generation ---------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "codegen/Scanner.h"

#include "polyhedral/OmegaTest.h"
#include "polyhedral/SetOps.h"
#include "polyhedral/Simplify.h"
#include "support/ErrorHandling.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <optional>

using namespace shackle;

namespace {

/// Eliminates every dimension with index > Dim while keeping the arity, so
/// the result stays in the full scanning space.
Polyhedron projectOntoPrefix(const Polyhedron &P, unsigned Dim) {
  Polyhedron Q = P;
  for (unsigned V = P.getNumVars(); V-- > Dim + 1;)
    Q.fourierMotzkinEliminate(V);
  return Q;
}

/// A maximal region over dims 0..Dim within which a fixed set of statements
/// is active.
struct Piece {
  Polyhedron Dom;
  std::vector<unsigned> Items;
};

/// True iff some point of A at dimension \p Dim comes after some point of B,
/// for identical values of the outer dimensions 0..Dim-1. A and B must only
/// constrain dims 0..Dim.
bool afterExists(const Polyhedron &A, const Polyhedron &B, unsigned Dim) {
  Polyhedron Q = A;
  unsigned Y = Q.appendVar("__y");
  for (const ConstraintRow &Row : B.equalities()) {
    ConstraintRow R = Row;
    R.insert(R.end() - 1, 0);
    std::swap(R[Dim], R[Y]);
    Q.addEquality(std::move(R));
  }
  for (const ConstraintRow &Row : B.inequalities()) {
    ConstraintRow R = Row;
    R.insert(R.end() - 1, 0);
    std::swap(R[Dim], R[Y]);
    Q.addInequality(std::move(R));
  }
  // x_Dim >= y + 1.
  ConstraintRow Gt(Q.getNumVars() + 1, 0);
  Gt[Dim] = 1;
  Gt[Y] = -1;
  Gt.back() = -1;
  Q.addInequality(std::move(Gt));
  return !isIntegerEmpty(Q);
}

/// Splits the projections of the active items at dimension \p Dim into
/// disjoint pieces, each labeled with the items active inside it.
std::vector<Piece> separate(const std::vector<Polyhedron> &Projections,
                            const std::vector<unsigned> &ItemIdxs) {
  std::vector<Piece> Pieces;
  for (unsigned PI = 0; PI < Projections.size(); ++PI) {
    const Polyhedron &P = Projections[PI];
    unsigned Item = ItemIdxs[PI];

    // The part of P not covered by any existing piece becomes new pieces.
    std::vector<Polyhedron> OldDoms;
    for (const Piece &Pc : Pieces)
      OldDoms.push_back(Pc.Dom);

    std::vector<Piece> Next;
    for (Piece &Old : Pieces) {
      Polyhedron Inter = intersect(Old.Dom, P);
      if (Inter.normalize() && !isIntegerEmpty(Inter)) {
        Piece Both;
        Both.Dom = std::move(Inter);
        Both.Items = Old.Items;
        Both.Items.push_back(Item);
        Next.push_back(std::move(Both));
        for (Polyhedron &Rest : subtract(Old.Dom, P)) {
          Piece OnlyOld;
          OnlyOld.Dom = std::move(Rest);
          OnlyOld.Items = Old.Items;
          Next.push_back(std::move(OnlyOld));
        }
      } else {
        Next.push_back(std::move(Old));
      }
    }
    for (Polyhedron &Rest : subtractAll(P, OldDoms)) {
      Piece OnlyNew;
      OnlyNew.Dom = std::move(Rest);
      OnlyNew.Items = {Item};
      Next.push_back(std::move(OnlyNew));
    }
    Pieces = std::move(Next);
  }
  return Pieces;
}

/// Orders disjoint pieces by their position along dimension \p Dim
/// (selection sort with a semantic "must precede" test). Returns false when
/// no total order exists (context-dependent ordering, or an Unknown solver
/// verdict kept too many "comes after" candidates alive).
[[nodiscard]] bool sortPieces(std::vector<Piece> &Pieces, unsigned Dim) {
  for (unsigned I = 0; I + 1 < Pieces.size(); ++I) {
    bool Found = false;
    for (unsigned J = I; J < Pieces.size(); ++J) {
      bool IsMin = true;
      for (unsigned K = I; K < Pieces.size(); ++K) {
        if (K == J)
          continue;
        if (afterExists(Pieces[J].Dom, Pieces[K].Dom, Dim)) {
          IsMin = false;
          break;
        }
      }
      if (IsMin) {
        std::swap(Pieces[I], Pieces[J]);
        Found = true;
        break;
      }
    }
    if (!Found)
      return false;
  }
  return true;
}

class ScannerImpl {
public:
  ScannerImpl(const ScanSpace &Space, std::vector<ScanItem> Items,
              const Program &Prog, const Polyhedron &InitialContext)
      : Space(Space), Items(std::move(Items)), Prog(Prog),
        InitialContext(InitialContext) {}

  Expected<LoopNest> run() {
    LoopNest Nest;
    Nest.Prog = &Prog;
    Nest.NumDims = Space.numDims();
    Nest.NumParams = Space.NumParams;
    Nest.DimNames = Space.DimNames;
    std::vector<unsigned> All(Items.size());
    for (unsigned I = 0; I < Items.size(); ++I)
      All[I] = I;
    Nest.Roots = generate(All, Space.NumParams, InitialContext);
    if (Failed)
      return Status::error(DiagCode::ScanFailed, FailMsg);
    return Nest;
  }

private:
  std::vector<ASTNodePtr> generate(const std::vector<unsigned> &Active,
                                   unsigned Dim, const Polyhedron &Context);
  std::vector<ASTNodePtr> generateLeaf(const std::vector<unsigned> &Active,
                                       const Polyhedron &Context);
  std::vector<ASTNodePtr> generateSchedule(const std::vector<unsigned> &Active,
                                           unsigned Dim,
                                           const Polyhedron &Context);
  std::vector<ASTNodePtr> generateLoop(const std::vector<unsigned> &Active,
                                       unsigned Dim,
                                       const Polyhedron &Context);

  /// Records the first failure and unwinds with an empty node list; the
  /// sticky flag short-circuits the remaining recursion.
  std::vector<ASTNodePtr> fail(std::string Msg) {
    if (!Failed) {
      Failed = true;
      FailMsg = std::move(Msg);
    }
    return {};
  }

  const ScanSpace &Space;
  std::vector<ScanItem> Items;
  const Program &Prog;
  const Polyhedron &InitialContext;
  bool Failed = false;
  std::string FailMsg;
};

std::vector<ASTNodePtr>
ScannerImpl::generate(const std::vector<unsigned> &Active, unsigned Dim,
                      const Polyhedron &Context) {
  if (Active.empty() || Failed)
    return {};
  if (Dim == Space.numDims())
    return generateLeaf(Active, Context);
  if (Space.IsSchedule[Dim])
    return generateSchedule(Active, Dim, Context);
  return generateLoop(Active, Dim, Context);
}

std::vector<ASTNodePtr>
ScannerImpl::generateLeaf(const std::vector<unsigned> &Active,
                          const Polyhedron &Context) {
  // Distinct statements always differ in some schedule position, so at most
  // one item can reach a leaf.
  assert(Active.size() == 1 && "multiple statements with identical schedule");
  const ScanItem &Item = Items[Active.front()];
  ASTNodePtr Inst = ASTNode::makeInstance(Item.S, Item.VarMap);

  Polyhedron Guard = gist(Item.Domain, Context);
  if (Guard.getNumEqualities() == 0 && Guard.getNumInequalities() == 0) {
    std::vector<ASTNodePtr> Out;
    Out.push_back(std::move(Inst));
    return Out;
  }
  ASTNodePtr If = ASTNode::makeIf();
  for (const ConstraintRow &Row : Guard.equalities())
    If->EqConds.push_back(Row);
  for (const ConstraintRow &Row : Guard.inequalities())
    If->IneqConds.push_back(Row);
  If->Body.push_back(std::move(Inst));
  std::vector<ASTNodePtr> Out;
  Out.push_back(std::move(If));
  return Out;
}

/// Extracts the constant value a schedule dimension takes in \p Domain, or
/// nullopt if no constraint pins it.
static std::optional<int64_t> schedulePosition(const Polyhedron &Domain,
                                               unsigned Dim) {
  for (const ConstraintRow &Row : Domain.equalities()) {
    if (Row[Dim] != 1 && Row[Dim] != -1)
      continue;
    bool Pure = true;
    for (unsigned V = 0; V + 1 < Row.size(); ++V)
      if (V != Dim && Row[V] != 0)
        Pure = false;
    if (Pure)
      return Row[Dim] == 1 ? -Row.back() : Row.back();
  }
  return std::nullopt;
}

std::vector<ASTNodePtr>
ScannerImpl::generateSchedule(const std::vector<unsigned> &Active,
                              unsigned Dim, const Polyhedron &Context) {
  std::map<int64_t, std::vector<unsigned>> Groups;
  for (unsigned I : Active) {
    std::optional<int64_t> Pos = schedulePosition(Items[I].Domain, Dim);
    if (!Pos)
      return fail("schedule dimension " + Space.DimNames[Dim] +
                  " is not pinned to a constant");
    Groups[*Pos].push_back(I);
  }

  std::vector<ASTNodePtr> Out;
  for (auto &[Pos, Group] : Groups) {
    Polyhedron Inner = Context;
    ConstraintRow Eq(Inner.getNumVars() + 1, 0);
    Eq[Dim] = 1;
    Eq.back() = -Pos;
    Inner.addEquality(std::move(Eq));
    std::vector<ASTNodePtr> Sub = generate(Group, Dim + 1, Inner);
    Out.insert(Out.end(), std::make_move_iterator(Sub.begin()),
               std::make_move_iterator(Sub.end()));
  }
  return Out;
}

std::vector<ASTNodePtr>
ScannerImpl::generateLoop(const std::vector<unsigned> &Active, unsigned Dim,
                          const Polyhedron &Context) {
  // Project every active item onto dims 0..Dim.
  std::vector<Polyhedron> Projections;
  for (unsigned I : Active) {
    Polyhedron Proj = projectOntoPrefix(Items[I].Domain, Dim);
    Proj.normalize();
    Proj.removeDuplicateConstraints();
    Projections.push_back(std::move(Proj));
  }

  std::vector<Piece> Pieces = separate(Projections, Active);
  if (!sortPieces(Pieces, Dim))
    return fail("pieces are not totally ordered along scan dimension " +
                Space.DimNames[Dim] +
                "; context-dependent ordering is not supported");

  std::vector<ASTNodePtr> Out;
  for (Piece &Pc : Pieces) {
    Polyhedron Simplified = gist(Pc.Dom, Context);

    // If the piece pins this dimension to an exact affine expression of the
    // outer dimensions, bind it instead of looping — the shape the paper's
    // generated code takes where a block index is substituted (Figure 7's
    // diagonal-block sections).
    int PinIdx = -1;
    for (unsigned I = 0; I < Simplified.getNumEqualities(); ++I) {
      int64_t C = Simplified.getEquality(I)[Dim];
      if (C == 1 || C == -1) {
        PinIdx = static_cast<int>(I);
        break;
      }
    }
    if (PinIdx >= 0) {
      ConstraintRow Pin = Simplified.getEquality(PinIdx);
      int64_t C = Pin[Dim];
      BoundExpr Value;
      Value.Expr = AffineExpr::constant(Space.numDims(), Pin.back() * -C);
      for (unsigned V = 0; V + 1 < Pin.size(); ++V)
        if (V != Dim)
          Value.Expr.setCoeff(V, Pin[V] * -C);
      ASTNodePtr Let = ASTNode::makeLet(Dim, std::move(Value));

      ASTNodePtr InnerGuard;
      Simplified.removeEquality(PinIdx);
      if (Simplified.getNumEqualities() || Simplified.getNumInequalities()) {
        InnerGuard = ASTNode::makeIf();
        for (const ConstraintRow &Row : Simplified.equalities())
          InnerGuard->EqConds.push_back(Row);
        for (const ConstraintRow &Row : Simplified.inequalities())
          InnerGuard->IneqConds.push_back(Row);
      }

      Polyhedron Inner = intersect(Context, Pc.Dom);
      Inner.removeDuplicateConstraints();
      std::vector<ScanItem> Saved;
      for (unsigned I : Pc.Items) {
        Saved.push_back(
            ScanItem{Items[I].Domain, Items[I].S, Items[I].VarMap});
        Items[I].Domain = intersect(Items[I].Domain, Pc.Dom);
        Items[I].Domain.removeDuplicateConstraints();
      }
      std::vector<ASTNodePtr> Sub = generate(Pc.Items, Dim + 1, Inner);
      for (unsigned K = 0; K < Pc.Items.size(); ++K)
        Items[Pc.Items[K]].Domain = std::move(Saved[K].Domain);
      if (Sub.empty())
        continue;
      if (InnerGuard) {
        InnerGuard->Body = std::move(Sub);
        Let->Body.push_back(std::move(InnerGuard));
      } else {
        Let->Body = std::move(Sub);
      }
      Out.push_back(std::move(Let));
      continue;
    }

    ASTNodePtr Loop = ASTNode::makeLoop(Dim);
    ASTNodePtr Guard; // Conditions on outer dims, if any.

    auto AddBoundsFromRow = [&](ConstraintRow Row, bool IsEq) {
      int64_t C = Row[Dim];
      if (C == 0) {
        if (!Guard)
          Guard = ASTNode::makeIf();
        if (IsEq)
          Guard->EqConds.push_back(std::move(Row));
        else
          Guard->IneqConds.push_back(std::move(Row));
        return;
      }
      // Normalize an equality so the dimension's coefficient is positive.
      if (IsEq && C < 0) {
        for (int64_t &V : Row)
          V = -V;
        C = -C;
      }
      // C * d + rest (>= or ==) 0.
      AffineExpr Rest = AffineExpr::constant(Space.numDims(), Row.back());
      for (unsigned V = 0; V + 1 < Row.size(); ++V)
        if (V != Dim)
          Rest.setCoeff(V, Row[V]);
      if (C > 0) {
        // d >= ceil(-rest / C); for an equality also d <= floor(-rest / C).
        BoundExpr Lb;
        Lb.Expr = Rest * -1;
        Lb.Divisor = C;
        Lb.IsCeil = true;
        Loop->Lbs.push_back(std::move(Lb));
        if (IsEq) {
          BoundExpr Ub;
          Ub.Expr = Rest * -1;
          Ub.Divisor = C;
          Ub.IsCeil = false;
          Loop->Ubs.push_back(std::move(Ub));
        }
        return;
      }
      // (-C) * d <= rest  =>  d <= floor(rest / -C).
      BoundExpr Ub;
      Ub.Expr = Rest;
      Ub.Divisor = -C;
      Ub.IsCeil = false;
      Loop->Ubs.push_back(std::move(Ub));
    };

    for (const ConstraintRow &Row : Simplified.equalities())
      AddBoundsFromRow(Row, /*IsEq=*/true);
    for (const ConstraintRow &Row : Simplified.inequalities())
      AddBoundsFromRow(Row, /*IsEq=*/false);

    // A piece must bound its dimension on both sides; if the gist dropped a
    // bound as redundant against the context, recover it from the raw piece.
    if (Loop->Lbs.empty() || Loop->Ubs.empty()) {
      for (const ConstraintRow &Row : Pc.Dom.inequalities()) {
        int64_t C = Row[Dim];
        if (C == 0)
          continue;
        AffineExpr Rest = AffineExpr::constant(Space.numDims(), Row.back());
        for (unsigned V = 0; V + 1 < Row.size(); ++V)
          if (V != Dim)
            Rest.setCoeff(V, Row[V]);
        if (C > 0 && Loop->Lbs.empty()) {
          BoundExpr Lb;
          Lb.Expr = Rest * -1;
          Lb.Divisor = C;
          Lb.IsCeil = true;
          Loop->Lbs.push_back(std::move(Lb));
        } else if (C < 0 && Loop->Ubs.empty()) {
          BoundExpr Ub;
          Ub.Expr = Rest;
          Ub.Divisor = -C;
          Ub.IsCeil = false;
          Loop->Ubs.push_back(std::move(Ub));
        }
      }
    }
    if (Loop->Lbs.empty() || Loop->Ubs.empty())
      return fail("scanning dimension " + Space.DimNames[Dim] +
                  " is unbounded");

    // Recurse with domains restricted to this piece.
    Polyhedron Inner = intersect(Context, Pc.Dom);
    Inner.removeDuplicateConstraints();
    std::vector<unsigned> SubActive;
    for (unsigned I : Pc.Items)
      SubActive.push_back(I);
    std::vector<ScanItem> Saved;
    for (unsigned I : SubActive) {
      Saved.push_back(ScanItem{Items[I].Domain, Items[I].S, Items[I].VarMap});
      Items[I].Domain = intersect(Items[I].Domain, Pc.Dom);
      Items[I].Domain.removeDuplicateConstraints();
    }
    Loop->Body = generate(SubActive, Dim + 1, Inner);
    for (unsigned K = 0; K < SubActive.size(); ++K)
      Items[SubActive[K]].Domain = std::move(Saved[K].Domain);

    if (Loop->Body.empty())
      continue;
    if (Guard) {
      Guard->Body.push_back(std::move(Loop));
      Out.push_back(std::move(Guard));
    } else {
      Out.push_back(std::move(Loop));
    }
  }
  return Out;
}

} // namespace

namespace {

void markUsedDims(const ASTNode &N, std::vector<bool> &Used) {
  auto MarkBound = [&](const BoundExpr &B) {
    for (unsigned V = 0; V < B.Expr.getNumVars(); ++V)
      if (B.Expr.getCoeff(V) != 0)
        Used[V] = true;
  };
  for (const BoundExpr &B : N.Lbs)
    MarkBound(B);
  for (const BoundExpr &B : N.Ubs)
    MarkBound(B);
  auto MarkRow = [&](const ConstraintRow &Row) {
    for (unsigned V = 0; V + 1 < Row.size() && V < Used.size(); ++V)
      if (Row[V] != 0)
        Used[V] = true;
  };
  for (const ConstraintRow &Row : N.EqConds)
    MarkRow(Row);
  for (const ConstraintRow &Row : N.IneqConds)
    MarkRow(Row);
  for (unsigned D : N.VarMap)
    Used[D] = true;
  for (const ASTNodePtr &C : N.Body)
    markUsedDims(*C, Used);
}

void pruneLetsIn(std::vector<ASTNodePtr> &Body, unsigned NumDims) {
  for (unsigned I = 0; I < Body.size();) {
    ASTNode &N = *Body[I];
    pruneLetsIn(N.Body, NumDims);
    if (N.Kind != ASTKind::Let) {
      ++I;
      continue;
    }
    std::vector<bool> Used(NumDims, false);
    for (const ASTNodePtr &C : N.Body)
      markUsedDims(*C, Used);
    if (Used[N.Dim]) {
      ++I;
      continue;
    }
    // Splice the children in place of the Let.
    std::vector<ASTNodePtr> Children = std::move(N.Body);
    Body.erase(Body.begin() + I);
    Body.insert(Body.begin() + I, std::make_move_iterator(Children.begin()),
                std::make_move_iterator(Children.end()));
  }
}

} // namespace

void shackle::pruneUnusedLets(LoopNest &Nest) {
  pruneLetsIn(Nest.Roots, Nest.NumDims);
}

Expected<LoopNest> shackle::scanPolyhedraChecked(
    const ScanSpace &Space, std::vector<ScanItem> Items, const Program &Prog,
    const Polyhedron &InitialContext) {
  assert(Space.DimNames.size() == Space.IsSchedule.size() &&
         "scan space metadata mismatch");
  for (const ScanItem &Item : Items) {
    assert(Item.Domain.getNumVars() == Space.numDims() &&
           "item domain not in the scan space");
    (void)Item;
  }
  ScannerImpl Impl(Space, std::move(Items), Prog, InitialContext);
  return Impl.run();
}

LoopNest shackle::scanPolyhedra(const ScanSpace &Space,
                                std::vector<ScanItem> Items,
                                const Program &Prog,
                                const Polyhedron &InitialContext) {
  Expected<LoopNest> Nest =
      scanPolyhedraChecked(Space, std::move(Items), Prog, InitialContext);
  if (!Nest.ok())
    fatalError(Nest.diagnostic().Message.c_str());
  return std::move(Nest.get());
}
