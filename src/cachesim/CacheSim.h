//===- CacheSim.h - Multi-level cache hierarchy simulator -------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A set-associative, LRU, write-allocate cache hierarchy simulator. The
/// paper demonstrates data shackling on a real machine (IBM SP-2); we do not
/// have that hardware, so at small problem sizes the interpreter feeds every
/// array access through this simulator to produce *deterministic* miss
/// counts per memory level. This is the substrate behind the multi-level
/// blocking ablation (naive vs one-level vs two-level blocked codes), where
/// the paper's claim shows up as a drop in both L1 and L2 misses.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_CACHESIM_CACHESIM_H
#define SHACKLE_CACHESIM_CACHESIM_H

#include <cstdint>
#include <string>
#include <vector>

namespace shackle {

/// Geometry of one cache level.
struct CacheConfig {
  std::string Name;       ///< "L1", "L2", ...
  uint64_t SizeBytes = 0; ///< Total capacity.
  unsigned LineBytes = 64;
  unsigned Associativity = 8;
};

/// One set-associative LRU cache level.
class CacheLevel {
public:
  explicit CacheLevel(const CacheConfig &Config);

  /// Accesses the line containing \p Address; returns true on hit. On a
  /// miss the line is allocated (evicting the LRU way).
  bool access(uint64_t Address);

  const CacheConfig &config() const { return Config; }
  uint64_t hits() const { return Hits; }
  uint64_t misses() const { return Misses; }
  void resetCounters() { Hits = Misses = 0; }

private:
  CacheConfig Config;
  unsigned NumSets = 0;
  unsigned LineShift = 0;
  unsigned SetShift = 0;
  /// Tags[set * Associativity + way]; Stamps parallel for LRU.
  std::vector<uint64_t> Tags;
  std::vector<uint64_t> Stamps;
  std::vector<bool> Valid;
  uint64_t Clock = 0;
  uint64_t Hits = 0, Misses = 0;
};

/// An inclusive-lookup hierarchy: every access probes L1; on a miss the next
/// level is probed, and so on. (Counts, not timing; replacement decisions at
/// each level are independent, which is the standard simple model.)
class CacheHierarchy {
public:
  explicit CacheHierarchy(const std::vector<CacheConfig> &Configs);

  /// Classic two-level default loosely modeled after the paper's SP-2 thin
  /// node (64 KB L1) plus a modern-ish 1 MB L2.
  static CacheHierarchy classic();

  void access(uint64_t Address);

  unsigned numLevels() const { return Levels.size(); }
  const CacheLevel &level(unsigned I) const { return Levels[I]; }
  uint64_t accesses() const { return Accesses; }
  void resetCounters();

  /// One row per level: "L1: accesses=... misses=... missrate=...".
  std::string report() const;

private:
  std::vector<CacheLevel> Levels;
  uint64_t Accesses = 0;
};

} // namespace shackle

#endif // SHACKLE_CACHESIM_CACHESIM_H
