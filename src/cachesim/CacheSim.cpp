//===- CacheSim.cpp - Multi-level cache hierarchy simulator ------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "cachesim/CacheSim.h"

#include <cassert>
#include <cstdio>

using namespace shackle;

namespace {

unsigned log2Exact(uint64_t V) {
  unsigned L = 0;
  while ((1ULL << L) < V)
    ++L;
  assert((1ULL << L) == V && "cache geometry must be a power of two");
  return L;
}

} // namespace

CacheLevel::CacheLevel(const CacheConfig &C) : Config(C) {
  assert(C.SizeBytes % (static_cast<uint64_t>(C.LineBytes) *
                        C.Associativity) ==
             0 &&
         "size must be divisible by line * associativity");
  NumSets = C.SizeBytes / (static_cast<uint64_t>(C.LineBytes) *
                           C.Associativity);
  LineShift = log2Exact(C.LineBytes);
  SetShift = log2Exact(NumSets);
  Tags.assign(static_cast<size_t>(NumSets) * C.Associativity, 0);
  Stamps.assign(Tags.size(), 0);
  Valid.assign(Tags.size(), false);
}

bool CacheLevel::access(uint64_t Address) {
  uint64_t Line = Address >> LineShift;
  unsigned Set = static_cast<unsigned>(Line & (NumSets - 1));
  uint64_t Tag = Line >> SetShift;
  unsigned Base = Set * Config.Associativity;
  ++Clock;

  unsigned LruWay = 0;
  uint64_t LruStamp = UINT64_MAX;
  for (unsigned Way = 0; Way < Config.Associativity; ++Way) {
    unsigned Slot = Base + Way;
    if (Valid[Slot] && Tags[Slot] == Tag) {
      Stamps[Slot] = Clock;
      ++Hits;
      return true;
    }
    uint64_t Stamp = Valid[Slot] ? Stamps[Slot] : 0;
    if (!Valid[Slot]) {
      LruWay = Way;
      LruStamp = 0;
    } else if (Stamp < LruStamp) {
      LruWay = Way;
      LruStamp = Stamp;
    }
  }
  ++Misses;
  unsigned Slot = Base + LruWay;
  Tags[Slot] = Tag;
  Stamps[Slot] = Clock;
  Valid[Slot] = true;
  return false;
}

CacheHierarchy::CacheHierarchy(const std::vector<CacheConfig> &Configs) {
  for (const CacheConfig &C : Configs)
    Levels.emplace_back(C);
}

CacheHierarchy CacheHierarchy::classic() {
  return CacheHierarchy({
      CacheConfig{"L1", 64 * 1024, 64, 4},
      CacheConfig{"L2", 1024 * 1024, 64, 8},
  });
}

void CacheHierarchy::access(uint64_t Address) {
  ++Accesses;
  for (CacheLevel &L : Levels)
    if (L.access(Address))
      return;
}

void CacheHierarchy::resetCounters() {
  Accesses = 0;
  for (CacheLevel &L : Levels)
    L.resetCounters();
}

std::string CacheHierarchy::report() const {
  std::string Out;
  char Buf[160];
  for (const CacheLevel &L : Levels) {
    uint64_t Total = L.hits() + L.misses();
    double Rate = Total ? 100.0 * static_cast<double>(L.misses()) /
                              static_cast<double>(Total)
                        : 0.0;
    std::snprintf(Buf, sizeof(Buf),
                  "%-3s accesses=%12llu  misses=%12llu  missrate=%6.2f%%\n",
                  L.config().Name.c_str(),
                  static_cast<unsigned long long>(Total),
                  static_cast<unsigned long long>(L.misses()), Rate);
    Out += Buf;
  }
  return Out;
}
