//===- Simplify.cpp - Constraint simplification ----------------------------===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "polyhedral/Simplify.h"

#include "polyhedral/OmegaTest.h"

#include <cassert>

using namespace shackle;

void shackle::removeRedundantInequalities(Polyhedron &P) {
  P.normalize();
  P.removeDuplicateConstraints();
  for (unsigned I = 0; I < P.getNumInequalities();) {
    Polyhedron Q = P;
    ConstraintRow Negated = negateInequality(P.getInequality(I));
    Q.removeInequality(I);
    Q.addInequality(std::move(Negated));
    if (isIntegerEmpty(Q)) {
      P.removeInequality(I);
      continue;
    }
    ++I;
  }
}

Polyhedron shackle::gist(const Polyhedron &P, const Polyhedron &Context) {
  assert(P.getNumVars() == Context.getNumVars() &&
         "gist requires a common space");

  // If P /\ Context has no integer point, every constraint is vacuously
  // implied; return an explicitly empty set so the result still satisfies
  // gist(P, C) /\ C == P /\ C.
  if (isIntegerEmpty(intersect(P, Context))) {
    Polyhedron Empty(P.getVarNames());
    ConstraintRow False(P.getNumVars() + 1, 0);
    False.back() = -1; // -1 >= 0.
    Empty.addInequality(std::move(False));
    Empty.markKnownEmpty();
    return Empty;
  }

  Polyhedron Result = P;
  Result.normalize();
  Result.removeDuplicateConstraints();

  // Equalities implied by the context can be dropped as well; test both
  // directions.
  for (unsigned I = 0; I < Result.getNumEqualities();) {
    Polyhedron Rest = Result;
    Rest.removeEquality(I);
    Polyhedron Whole = intersect(Rest, Context);
    const ConstraintRow &Eq = Result.getEquality(I);
    Polyhedron Pos = Whole;
    ConstraintRow GE = Eq;
    GE.back() -= 1;
    Pos.addInequality(std::move(GE));
    Polyhedron Neg = Whole;
    Neg.addInequality(negateInequality(Eq));
    if (isIntegerEmpty(Pos) && isIntegerEmpty(Neg)) {
      Result.removeEquality(I);
      continue;
    }
    ++I;
  }

  for (unsigned I = 0; I < Result.getNumInequalities();) {
    Polyhedron Rest = Result;
    Rest.removeInequality(I);
    Polyhedron Q = intersect(Rest, Context);
    Q.addInequality(negateInequality(Result.getInequality(I)));
    if (isIntegerEmpty(Q)) {
      Result.removeInequality(I);
      continue;
    }
    ++I;
  }
  return Result;
}
