//===- Sample.cpp - Integer point sampling ------------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "polyhedral/Sample.h"

#include "polyhedral/OmegaTest.h"
#include "support/MathExtras.h"

#include <algorithm>

using namespace shackle;

namespace {

/// Adds the constraint x_Var <= V (or >= with Sign = -1).
Polyhedron withBound(const Polyhedron &P, unsigned Var, int64_t V,
                     bool Upper) {
  Polyhedron Q = P;
  ConstraintRow Row(P.getNumVars() + 1, 0);
  if (Upper) {
    Row[Var] = -1;
    Row.back() = V;
  } else {
    Row[Var] = 1;
    Row.back() = -V;
  }
  Q.addInequality(std::move(Row));
  return Q;
}

} // namespace

std::optional<std::vector<int64_t>>
shackle::sampleIntegerPoint(const Polyhedron &P, int64_t Lo, int64_t Hi) {
  Polyhedron Q = P;
  if (!Q.normalize())
    return std::nullopt;

  // Clamp every variable to the box up front; if that leaves no integer
  // point there is nothing to find within the box.
  for (unsigned V = 0; V < Q.getNumVars(); ++V)
    Q.addBounds(V, Lo, Hi);
  if (isIntegerEmpty(Q))
    return std::nullopt;

  // Extract the lexicographically smallest point: for each variable in
  // order, bisect for the least value that keeps the system non-empty,
  // then pin the variable there. No backtracking is needed because the
  // system is re-verified non-empty at every step.
  std::vector<int64_t> Point(Q.getNumVars(), 0);
  for (unsigned Var = 0; Var < Q.getNumVars(); ++Var) {
    int64_t L = Lo, H = Hi;
    while (L < H) {
      int64_t Mid = L + floorDiv(H - L, 2);
      if (!isIntegerEmpty(withBound(Q, Var, Mid, /*Upper=*/true)))
        H = Mid;
      else
        L = Mid + 1;
    }
    Point[Var] = L;
    // Pin x_Var := L by substitution.
    ConstraintRow Def(Q.getNumVars() + 1, 0);
    Def.back() = L;
    Q.substitute(Var, Def);
    if (Q.isObviouslyEmpty())
      return std::nullopt; // Defensive; cannot happen.
  }

  if (!P.containsPoint(Point))
    return std::nullopt; // Defensive; cannot happen.
  return Point;
}
