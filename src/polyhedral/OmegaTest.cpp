//===- OmegaTest.cpp - Exact integer feasibility --------------------------===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "polyhedral/OmegaTest.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <limits>

using namespace shackle;

std::string SolverStats::reasonStr() const {
  if (Overflowed)
    return "int64 coefficient overflow";
  if (HitWorkLimit)
    return "work-unit budget exhausted (" + std::to_string(WorkUnits) +
           " units)";
  if (HitDepthLimit)
    return "recursion depth limit";
  return "not exhausted";
}

namespace {

/// Per-query state threaded through the recursion: the budget, the running
/// counters, and a sticky exhaustion flag that aborts the whole query.
struct SolverCtx {
  const SolverBudget &Budget;
  SolverStats &Stats;

  /// Charges \p Units of work; returns false once the budget is exceeded.
  bool charge(uint64_t Units) {
    Stats.WorkUnits += Units;
    if (Stats.WorkUnits > Budget.MaxWorkUnits)
      Stats.HitWorkLimit = true;
    return !Stats.exhausted();
  }

  bool overflow() {
    Stats.Overflowed = true;
    return false;
  }
};

FeasVerdict isEmptyRec(Polyhedron P, unsigned Depth, SolverCtx &C);

/// Substitutes variable \p Var using the unit-coefficient row \p Eq
/// (Eq[Var] == +-1) into \p P and drops the equality. Returns false on
/// int64 overflow (P is then abandoned).
bool substituteUnit(Polyhedron &P, unsigned EqIdx, unsigned Var,
                    SolverCtx &C) {
  ConstraintRow Def = P.getEquality(EqIdx);
  int64_t A = Def[Var];
  assert((A == 1 || A == -1) && "expected a unit coefficient");
  P.removeEquality(EqIdx);
  ConstraintRow Subst(P.getNumVars() + 1, 0);
  for (unsigned J = 0; J <= P.getNumVars(); ++J)
    if (J != Var)
      Subst[J] = -A * Def[J];
  if (!P.substituteChecked(Var, Subst))
    return C.overflow();
  return true;
}

/// Eliminates all equalities from \p P exactly (Pugh Section 2.3.1).
/// Returns Empty if the equalities prove the polyhedron integer-empty,
/// NonEmpty if elimination completed (meaning: not yet decided, continue
/// with the inequalities), Unknown on exhaustion.
FeasVerdict eliminateEqualities(Polyhedron &P, SolverCtx &C) {
  while (P.getNumEqualities() > 0) {
    if (!C.charge(1 + P.getNumEqualities()))
      return FeasVerdict::Unknown;
    if (!P.normalize())
      return FeasVerdict::Empty;
    if (P.getNumEqualities() == 0)
      break;

    // Find the equality and variable with the smallest nonzero |coefficient|.
    unsigned BestEq = 0, BestVar = 0;
    int64_t BestAbs = std::numeric_limits<int64_t>::max();
    for (unsigned I = 0; I < P.getNumEqualities(); ++I) {
      const ConstraintRow &Row = P.getEquality(I);
      for (unsigned V = 0; V < P.getNumVars(); ++V) {
        int64_t A = std::abs(Row[V]);
        if (A != 0 && A < BestAbs) {
          BestAbs = A;
          BestEq = I;
          BestVar = V;
        }
      }
    }
    if (BestAbs == std::numeric_limits<int64_t>::max()) {
      // All equalities are constant rows; normalize() validated them.
      break;
    }

    if (BestAbs == 1) {
      if (!substituteUnit(P, BestEq, BestVar, C))
        return FeasVerdict::Unknown;
      continue;
    }

    // Non-unit minimal coefficient: apply the hat-mod transformation. For the
    // equality sum(a_i x_i) + c == 0 with |a_k| minimal, let m = |a_k| + 1 and
    // introduce sigma with
    //   sum(symMod(a_i, m) x_i) + symMod(c, m) == m * sigma.
    // The coefficient of x_k in this new equality is +-1, so x_k can be
    // substituted away; all coefficients shrink by roughly a factor of m.
    ConstraintRow Eq = P.getEquality(BestEq);
    int64_t M = BestAbs + 1;
    unsigned Sigma = P.appendVar("sigma" + std::to_string(P.getNumVars()));
    Eq.insert(Eq.end() - 1, 0); // Account for the new variable column.

    ConstraintRow NewEq(P.getNumVars() + 1, 0);
    for (unsigned V = 0; V < P.getNumVars(); ++V)
      if (V != Sigma)
        NewEq[V] = symMod(Eq[V], M);
    NewEq[Sigma] = -M;
    NewEq[P.getNumVars()] = symMod(Eq.back(), M);
    assert((NewEq[BestVar] == 1 || NewEq[BestVar] == -1) &&
           "hat-mod must produce a unit coefficient on the chosen variable");

    P.addEquality(std::move(NewEq));
    if (!substituteUnit(P, P.getNumEqualities() - 1, BestVar, C))
      return FeasVerdict::Unknown;
  }
  return P.isObviouslyEmpty() ? FeasVerdict::Empty : FeasVerdict::NonEmpty;
}

struct BoundSplit {
  std::vector<ConstraintRow> Lowers; // coeff on Var > 0
  std::vector<ConstraintRow> Uppers; // coeff on Var < 0
  std::vector<ConstraintRow> Rest;   // coeff on Var == 0
};

BoundSplit splitBounds(const Polyhedron &P, unsigned Var) {
  BoundSplit S;
  for (const ConstraintRow &Row : P.inequalities()) {
    if (Row[Var] > 0)
      S.Lowers.push_back(Row);
    else if (Row[Var] < 0)
      S.Uppers.push_back(Row);
    else
      S.Rest.push_back(Row);
  }
  return S;
}

/// Picks the variable whose elimination is cheapest, preferring variables
/// whose elimination is exact (some unit coefficient in every lower/upper
/// pair). Returns the variable and whether elimination is exact.
std::pair<unsigned, bool> pickVariable(const Polyhedron &P) {
  unsigned BestVar = 0;
  bool BestExact = false;
  long BestCost = std::numeric_limits<long>::max();

  for (unsigned V = 0; V < P.getNumVars(); ++V) {
    if (!P.involvesVar(V))
      continue;
    long NumLo = 0, NumUp = 0;
    bool AllLoUnit = true, AllUpUnit = true;
    for (const ConstraintRow &Row : P.inequalities()) {
      if (Row[V] > 0) {
        ++NumLo;
        if (Row[V] != 1)
          AllLoUnit = false;
      } else if (Row[V] < 0) {
        ++NumUp;
        if (Row[V] != -1)
          AllUpUnit = false;
      }
    }
    bool Exact = AllLoUnit || AllUpUnit;
    long Cost = NumLo * NumUp - NumLo - NumUp;
    // Prefer exact eliminations; among them, the cheapest.
    if ((Exact && !BestExact) ||
        (Exact == BestExact && Cost < BestCost)) {
      BestVar = V;
      BestExact = Exact;
      BestCost = Cost;
    }
  }
  return {BestVar, BestExact};
}

/// Returns true if no variable appears in any constraint.
bool isVariableFree(const Polyhedron &P) {
  for (unsigned V = 0; V < P.getNumVars(); ++V)
    if (P.involvesVar(V))
      return false;
  return true;
}

FeasVerdict isEmptyRec(Polyhedron P, unsigned Depth, SolverCtx &C) {
  if (Depth >= C.Budget.MaxDepth) {
    C.Stats.HitDepthLimit = true;
    return FeasVerdict::Unknown;
  }
  if (!C.charge(1 + P.getNumInequalities()))
    return FeasVerdict::Unknown;

  if (!P.normalize())
    return FeasVerdict::Empty;
  P.removeDuplicateConstraints();
  FeasVerdict EqV = eliminateEqualities(P, C);
  if (EqV != FeasVerdict::NonEmpty)
    return EqV; // Empty or Unknown.
  if (!P.normalize())
    return FeasVerdict::Empty;

  if (isVariableFree(P))
    return P.isObviouslyEmpty() ? FeasVerdict::Empty : FeasVerdict::NonEmpty;

  auto [Var, Exact] = pickVariable(P);
  BoundSplit S = splitBounds(P, Var);

  // Unbounded on one side: the variable can always be chosen, eliminate it
  // exactly by dropping its constraints.
  if (S.Lowers.empty() || S.Uppers.empty()) {
    Polyhedron Q(P.getVarNames());
    for (ConstraintRow &Row : S.Rest)
      Q.addInequality(std::move(Row));
    return isEmptyRec(std::move(Q), Depth + 1, C);
  }

  // Real shadow (and dark shadow when inexact). Each lower/upper pair costs
  // one work unit; this product is exactly where hard instances explode.
  if (!C.charge(static_cast<uint64_t>(S.Lowers.size()) * S.Uppers.size()))
    return FeasVerdict::Unknown;
  Polyhedron Real(P.getVarNames());
  Polyhedron Dark(P.getVarNames());
  for (const ConstraintRow &Row : S.Rest) {
    Real.addInequality(Row);
    Dark.addInequality(Row);
  }
  for (const ConstraintRow &L : S.Lowers) {
    for (const ConstraintRow &U : S.Uppers) {
      int64_t A = L[Var];
      int64_t B = -U[Var];
      ConstraintRow Combined(P.getNumVars() + 1, 0);
      for (unsigned J = 0; J <= P.getNumVars(); ++J) {
        int64_t AU, BL;
        if (mulOverflow(A, U[J], AU) || mulOverflow(B, L[J], BL) ||
            addOverflow(AU, BL, Combined[J])) {
          C.overflow();
          return FeasVerdict::Unknown;
        }
      }
      Combined[Var] = 0;
      ConstraintRow DarkRow = Combined;
      // dark constant: combined - (A-1)*(B-1).
      int64_t Penalty;
      if (mulOverflow(A - 1, B - 1, Penalty) ||
          subOverflow(DarkRow.back(), Penalty, DarkRow.back())) {
        C.overflow();
        return FeasVerdict::Unknown;
      }
      Real.addInequality(std::move(Combined));
      Dark.addInequality(std::move(DarkRow));
    }
  }

  if (Exact)
    return isEmptyRec(std::move(Real), Depth + 1, C);

  FeasVerdict RealV = isEmptyRec(Real, Depth + 1, C);
  if (RealV != FeasVerdict::NonEmpty)
    return RealV; // Empty or Unknown.
  FeasVerdict DarkV = isEmptyRec(std::move(Dark), Depth + 1, C);
  if (DarkV == FeasVerdict::NonEmpty)
    return FeasVerdict::NonEmpty; // A dark-shadow point is a real point.
  if (DarkV == FeasVerdict::Unknown)
    return FeasVerdict::Unknown;

  // Inexact and the shadows disagree: splinter (Pugh Section 2.3.3). An
  // integer solution, if any, must have A * x within a bounded distance of
  // some lower bound: A * x = -l(rest) + I for 0 <= I <= (A*Bmax - A -
  // Bmax) / Bmax, where Bmax is the largest upper-bound coefficient.
  int64_t BMax = 0;
  for (const ConstraintRow &U : S.Uppers)
    BMax = std::max(BMax, -U[Var]);
  bool SawUnknown = false;
  for (const ConstraintRow &L : S.Lowers) {
    int64_t A = L[Var];
    int64_t ABMax;
    if (mulOverflow(A, BMax, ABMax)) {
      C.overflow();
      return FeasVerdict::Unknown;
    }
    int64_t MaxI = floorDiv(ABMax - A - BMax, BMax);
    for (int64_t I = 0; I <= MaxI; ++I) {
      ++C.Stats.Splinters;
      if (!C.charge(1))
        return FeasVerdict::Unknown;
      Polyhedron Q = P;
      ConstraintRow Eq = L; // A * x + l(rest) == I
      Eq.back() -= I;       // |I| <= A <= |coeff| already in range.
      Q.addEquality(std::move(Eq));
      FeasVerdict V = isEmptyRec(std::move(Q), Depth + 1, C);
      if (V == FeasVerdict::NonEmpty)
        return FeasVerdict::NonEmpty;
      if (V == FeasVerdict::Unknown)
        SawUnknown = true;
    }
  }
  // Every splinter proven empty => empty; any Unknown splinter poisons the
  // emptiness claim.
  return SawUnknown ? FeasVerdict::Unknown : FeasVerdict::Empty;
}

} // namespace

namespace {
std::atomic<uint64_t> GlobalSolverQueries{0};
} // namespace

uint64_t shackle::solverQueryCount() {
  return GlobalSolverQueries.load(std::memory_order_relaxed);
}

FeasVerdict shackle::isIntegerEmptyBounded(const Polyhedron &P,
                                           const SolverBudget &Budget,
                                           SolverStats *Stats) {
  GlobalSolverQueries.fetch_add(1, std::memory_order_relaxed);
  SolverStats Local;
  SolverCtx C{Budget, Stats ? *Stats : Local};
  return isEmptyRec(P, /*Depth=*/0, C);
}

Ternary shackle::isSubsetOfBounded(const Polyhedron &A, const Polyhedron &B,
                                   const SolverBudget &Budget,
                                   SolverStats *Stats) {
  assert(A.getNumVars() == B.getNumVars() && "subset requires a common space");
  bool SawUnknown = false;
  auto Check = [&](Polyhedron Q) {
    switch (isIntegerEmptyBounded(Q, Budget, Stats)) {
    case FeasVerdict::Empty:
      return true; // This direction holds; keep checking the rest.
    case FeasVerdict::NonEmpty:
      return false;
    case FeasVerdict::Unknown:
      SawUnknown = true;
      return true; // Undecided; a later constraint may still refute.
    }
    return true;
  };
  for (const ConstraintRow &Row : B.equalities()) {
    // A subset of {e == 0} iff A /\ {e >= 1} and A /\ {e <= -1} are empty.
    Polyhedron Pos = A;
    ConstraintRow GE = Row;
    GE.back() -= 1;
    Pos.addInequality(std::move(GE));
    if (!Check(std::move(Pos)))
      return Ternary::False;
    Polyhedron Neg = A;
    ConstraintRow LE = negateInequality(Row);
    Neg.addInequality(std::move(LE));
    if (!Check(std::move(Neg)))
      return Ternary::False;
  }
  for (const ConstraintRow &Row : B.inequalities()) {
    Polyhedron Q = A;
    Q.addInequality(negateInequality(Row));
    if (!Check(std::move(Q)))
      return Ternary::False;
  }
  return SawUnknown ? Ternary::Unknown : Ternary::True;
}

Ternary shackle::isDisjointBounded(const Polyhedron &A, const Polyhedron &B,
                                   const SolverBudget &Budget,
                                   SolverStats *Stats) {
  switch (isIntegerEmptyBounded(intersect(A, B), Budget, Stats)) {
  case FeasVerdict::Empty:
    return Ternary::True;
  case FeasVerdict::NonEmpty:
    return Ternary::False;
  case FeasVerdict::Unknown:
    break;
  }
  return Ternary::Unknown;
}

bool shackle::isIntegerEmpty(const Polyhedron &P) {
  return isIntegerEmptyBounded(P) == FeasVerdict::Empty;
}

bool shackle::isSubsetOf(const Polyhedron &A, const Polyhedron &B) {
  return isSubsetOfBounded(A, B) == Ternary::True;
}

bool shackle::isDisjoint(const Polyhedron &A, const Polyhedron &B) {
  return isDisjointBounded(A, B) == Ternary::True;
}
