//===- OmegaTest.cpp - Exact integer feasibility --------------------------===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "polyhedral/OmegaTest.h"

#include "support/MathExtras.h"

#include <cassert>
#include <cstdlib>
#include <limits>

using namespace shackle;

namespace {

/// Recursion ceiling. Real problems in this project stay far below it; the
/// guard exists to turn a logic error into a loud failure instead of a hang.
constexpr int MaxDepth = 256;

bool isEmptyRec(Polyhedron P, int Depth);

/// Substitutes variable \p Var using the unit-coefficient row \p Eq
/// (Eq[Var] == +-1) into \p P and drops the equality.
void substituteUnit(Polyhedron &P, unsigned EqIdx, unsigned Var) {
  ConstraintRow Def = P.getEquality(EqIdx);
  int64_t A = Def[Var];
  assert((A == 1 || A == -1) && "expected a unit coefficient");
  P.removeEquality(EqIdx);
  ConstraintRow Subst(P.getNumVars() + 1, 0);
  for (unsigned J = 0; J <= P.getNumVars(); ++J)
    if (J != Var)
      Subst[J] = -A * Def[J];
  P.substitute(Var, Subst);
}

/// Eliminates all equalities from \p P exactly (Pugh Section 2.3.1). Returns
/// false if the equalities prove the polyhedron integer-empty outright.
bool eliminateEqualities(Polyhedron &P) {
  while (P.getNumEqualities() > 0) {
    if (!P.normalize())
      return false;
    if (P.getNumEqualities() == 0)
      break;

    // Find the equality and variable with the smallest nonzero |coefficient|.
    unsigned BestEq = 0, BestVar = 0;
    int64_t BestAbs = std::numeric_limits<int64_t>::max();
    for (unsigned I = 0; I < P.getNumEqualities(); ++I) {
      const ConstraintRow &Row = P.getEquality(I);
      for (unsigned V = 0; V < P.getNumVars(); ++V) {
        int64_t A = std::abs(Row[V]);
        if (A != 0 && A < BestAbs) {
          BestAbs = A;
          BestEq = I;
          BestVar = V;
        }
      }
    }
    if (BestAbs == std::numeric_limits<int64_t>::max()) {
      // All equalities are constant rows; normalize() validated them.
      break;
    }

    if (BestAbs == 1) {
      substituteUnit(P, BestEq, BestVar);
      continue;
    }

    // Non-unit minimal coefficient: apply the hat-mod transformation. For the
    // equality sum(a_i x_i) + c == 0 with |a_k| minimal, let m = |a_k| + 1 and
    // introduce sigma with
    //   sum(symMod(a_i, m) x_i) + symMod(c, m) == m * sigma.
    // The coefficient of x_k in this new equality is +-1, so x_k can be
    // substituted away; all coefficients shrink by roughly a factor of m.
    ConstraintRow Eq = P.getEquality(BestEq);
    int64_t M = BestAbs + 1;
    unsigned Sigma = P.appendVar("sigma" + std::to_string(P.getNumVars()));
    Eq.insert(Eq.end() - 1, 0); // Account for the new variable column.

    ConstraintRow NewEq(P.getNumVars() + 1, 0);
    for (unsigned V = 0; V < P.getNumVars(); ++V)
      if (V != Sigma)
        NewEq[V] = symMod(Eq[V], M);
    NewEq[Sigma] = -M;
    NewEq[P.getNumVars()] = symMod(Eq.back(), M);
    assert((NewEq[BestVar] == 1 || NewEq[BestVar] == -1) &&
           "hat-mod must produce a unit coefficient on the chosen variable");

    P.addEquality(std::move(NewEq));
    substituteUnit(P, P.getNumEqualities() - 1, BestVar);
  }
  return !P.isObviouslyEmpty();
}

struct BoundSplit {
  std::vector<ConstraintRow> Lowers; // coeff on Var > 0
  std::vector<ConstraintRow> Uppers; // coeff on Var < 0
  std::vector<ConstraintRow> Rest;   // coeff on Var == 0
};

BoundSplit splitBounds(const Polyhedron &P, unsigned Var) {
  BoundSplit S;
  for (const ConstraintRow &Row : P.inequalities()) {
    if (Row[Var] > 0)
      S.Lowers.push_back(Row);
    else if (Row[Var] < 0)
      S.Uppers.push_back(Row);
    else
      S.Rest.push_back(Row);
  }
  return S;
}

/// Picks the variable whose elimination is cheapest, preferring variables
/// whose elimination is exact (some unit coefficient in every lower/upper
/// pair). Returns the variable and whether elimination is exact.
std::pair<unsigned, bool> pickVariable(const Polyhedron &P) {
  unsigned BestVar = 0;
  bool BestExact = false;
  long BestCost = std::numeric_limits<long>::max();

  for (unsigned V = 0; V < P.getNumVars(); ++V) {
    if (!P.involvesVar(V))
      continue;
    long NumLo = 0, NumUp = 0;
    bool AllLoUnit = true, AllUpUnit = true;
    for (const ConstraintRow &Row : P.inequalities()) {
      if (Row[V] > 0) {
        ++NumLo;
        if (Row[V] != 1)
          AllLoUnit = false;
      } else if (Row[V] < 0) {
        ++NumUp;
        if (Row[V] != -1)
          AllUpUnit = false;
      }
    }
    bool Exact = AllLoUnit || AllUpUnit;
    long Cost = NumLo * NumUp - NumLo - NumUp;
    // Prefer exact eliminations; among them, the cheapest.
    if ((Exact && !BestExact) ||
        (Exact == BestExact && Cost < BestCost)) {
      BestVar = V;
      BestExact = Exact;
      BestCost = Cost;
    }
  }
  return {BestVar, BestExact};
}

/// Returns true if no variable appears in any constraint.
bool isVariableFree(const Polyhedron &P) {
  for (unsigned V = 0; V < P.getNumVars(); ++V)
    if (P.involvesVar(V))
      return false;
  return true;
}

bool isEmptyRec(Polyhedron P, int Depth) {
  assert(Depth < MaxDepth && "Omega test recursion too deep");

  if (!P.normalize())
    return true;
  P.removeDuplicateConstraints();
  if (!eliminateEqualities(P))
    return true;
  if (!P.normalize())
    return true;

  if (isVariableFree(P))
    return P.isObviouslyEmpty();

  auto [Var, Exact] = pickVariable(P);
  BoundSplit S = splitBounds(P, Var);

  // Unbounded on one side: the variable can always be chosen, eliminate it
  // exactly by dropping its constraints.
  if (S.Lowers.empty() || S.Uppers.empty()) {
    Polyhedron Q(P.getVarNames());
    for (ConstraintRow &Row : S.Rest)
      Q.addInequality(std::move(Row));
    return isEmptyRec(std::move(Q), Depth + 1);
  }

  // Real shadow (and dark shadow when inexact).
  Polyhedron Real(P.getVarNames());
  Polyhedron Dark(P.getVarNames());
  for (const ConstraintRow &Row : S.Rest) {
    Real.addInequality(Row);
    Dark.addInequality(Row);
  }
  for (const ConstraintRow &L : S.Lowers) {
    for (const ConstraintRow &U : S.Uppers) {
      int64_t A = L[Var];
      int64_t B = -U[Var];
      ConstraintRow Combined(P.getNumVars() + 1, 0);
      for (unsigned J = 0; J <= P.getNumVars(); ++J)
        Combined[J] = checkedAdd(checkedMul(A, U[J]), checkedMul(B, L[J]));
      Combined[Var] = 0;
      Real.addInequality(Combined);
      ConstraintRow DarkRow = Combined;
      DarkRow.back() = checkedAdd(DarkRow.back(), -(A - 1) * (B - 1));
      Dark.addInequality(std::move(DarkRow));
    }
  }

  if (Exact)
    return isEmptyRec(std::move(Real), Depth + 1);

  if (isEmptyRec(Real, Depth + 1))
    return true;
  if (!isEmptyRec(std::move(Dark), Depth + 1))
    return false;

  // Inexact and the shadows disagree: splinter (Pugh Section 2.3.3). An
  // integer solution, if any, must have A * x within a bounded distance of
  // some lower bound: A * x = -l(rest) + I for 0 <= I <= (A*Bmax - A -
  // Bmax) / Bmax, where Bmax is the largest upper-bound coefficient.
  int64_t BMax = 0;
  for (const ConstraintRow &U : S.Uppers)
    BMax = std::max(BMax, -U[Var]);
  for (const ConstraintRow &L : S.Lowers) {
    int64_t A = L[Var];
    int64_t MaxI = floorDiv(checkedMul(A, BMax) - A - BMax, BMax);
    for (int64_t I = 0; I <= MaxI; ++I) {
      Polyhedron Q = P;
      ConstraintRow Eq = L; // A * x + l(rest) == I
      Eq.back() = checkedAdd(Eq.back(), -I);
      Q.addEquality(std::move(Eq));
      if (!isEmptyRec(std::move(Q), Depth + 1))
        return false;
    }
  }
  return true;
}

} // namespace

bool shackle::isIntegerEmpty(const Polyhedron &P) {
  return isEmptyRec(P, /*Depth=*/0);
}

bool shackle::isSubsetOf(const Polyhedron &A, const Polyhedron &B) {
  assert(A.getNumVars() == B.getNumVars() && "subset requires a common space");
  for (const ConstraintRow &Row : B.equalities()) {
    // A subset of {e == 0} iff A /\ {e >= 1} and A /\ {e <= -1} are empty.
    Polyhedron Pos = A;
    ConstraintRow GE = Row;
    GE.back() -= 1;
    Pos.addInequality(std::move(GE));
    if (!isIntegerEmpty(Pos))
      return false;
    Polyhedron Neg = A;
    ConstraintRow LE = negateInequality(Row);
    Neg.addInequality(std::move(LE));
    if (!isIntegerEmpty(Neg))
      return false;
  }
  for (const ConstraintRow &Row : B.inequalities()) {
    Polyhedron Q = A;
    Q.addInequality(negateInequality(Row));
    if (!isIntegerEmpty(Q))
      return false;
  }
  return true;
}

bool shackle::isDisjoint(const Polyhedron &A, const Polyhedron &B) {
  return isIntegerEmpty(intersect(A, B));
}
