//===- Simplify.h - Constraint simplification --------------------*- C++ -*-=//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Redundancy elimination and "gist" simplification. The paper's pipeline
/// produces naive guarded code (its Figure 5) and then relies on a polyhedral
/// tool "merely to simplify programs" (Section 4.2); these routines are that
/// simplifier. A constraint is redundant over the integers iff adding its
/// negation yields an integer-empty set, which the Omega test decides exactly.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_POLYHEDRAL_SIMPLIFY_H
#define SHACKLE_POLYHEDRAL_SIMPLIFY_H

#include "polyhedral/Polyhedron.h"

namespace shackle {

/// Removes inequalities of \p P implied (over the integers) by the remaining
/// constraints. Deterministic: constraints are considered in order.
void removeRedundantInequalities(Polyhedron &P);

/// Returns \p P simplified under the assumption that \p Context holds: every
/// constraint of P that is implied by (rest of P) /\ Context is dropped.
/// The result, intersected with Context, equals P intersected with Context.
Polyhedron gist(const Polyhedron &P, const Polyhedron &Context);

} // namespace shackle

#endif // SHACKLE_POLYHEDRAL_SIMPLIFY_H
