//===- SetOps.h - Non-convex set operations on polyhedra --------*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Operations whose results are finite unions of polyhedra. The polyhedral
/// code generator needs set difference to *separate* the projected domains of
/// different statements into disjoint pieces (the Quillere-Rajopadhye-Wilde
/// scheme); a difference of convex sets is generally non-convex, hence the
/// union-of-polyhedra results here.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_POLYHEDRAL_SETOPS_H
#define SHACKLE_POLYHEDRAL_SETOPS_H

#include "polyhedral/Polyhedron.h"

#include <vector>

namespace shackle {

/// Computes A \ B as a disjoint finite union of polyhedra (over the common
/// space). Empty pieces are dropped; the result may be empty.
std::vector<Polyhedron> subtract(const Polyhedron &A, const Polyhedron &B);

/// Computes A \ (union of Bs) as a disjoint finite union of polyhedra.
std::vector<Polyhedron> subtractAll(const Polyhedron &A,
                                    const std::vector<Polyhedron> &Bs);

} // namespace shackle

#endif // SHACKLE_POLYHEDRAL_SETOPS_H
