//===- SetOps.cpp - Non-convex set operations ------------------------------===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "polyhedral/SetOps.h"

#include "polyhedral/OmegaTest.h"

#include <cassert>

using namespace shackle;

std::vector<Polyhedron> shackle::subtract(const Polyhedron &A,
                                          const Polyhedron &B) {
  assert(A.getNumVars() == B.getNumVars() &&
         "subtraction requires a common space");

  // Collect B's constraints as inequalities (an equality contributes both
  // directions). A point is outside B iff it violates at least one of them;
  // the pieces below enumerate "first violated constraint" cases, which makes
  // them pairwise disjoint by construction.
  std::vector<ConstraintRow> BRows;
  for (const ConstraintRow &Row : B.equalities()) {
    // e == 0 splits into e >= 0 and -e >= 0.
    BRows.push_back(Row);
    ConstraintRow Neg(Row.size());
    for (unsigned I = 0; I < Row.size(); ++I)
      Neg[I] = -Row[I];
    BRows.push_back(std::move(Neg));
  }
  for (const ConstraintRow &Row : B.inequalities())
    BRows.push_back(Row);

  std::vector<Polyhedron> Pieces;
  Polyhedron Context = A;
  for (const ConstraintRow &Row : BRows) {
    Polyhedron Piece = Context;
    Piece.addInequality(negateInequality(Row));
    if (Piece.normalize() && !isIntegerEmpty(Piece)) {
      Piece.removeDuplicateConstraints();
      Pieces.push_back(std::move(Piece));
    }
    Context.addInequality(Row);
    if (!Context.normalize() || isIntegerEmpty(Context))
      break; // Remaining cases are all empty.
  }
  return Pieces;
}

std::vector<Polyhedron>
shackle::subtractAll(const Polyhedron &A, const std::vector<Polyhedron> &Bs) {
  std::vector<Polyhedron> Work = {A};
  for (const Polyhedron &B : Bs) {
    std::vector<Polyhedron> Next;
    for (const Polyhedron &Piece : Work) {
      std::vector<Polyhedron> Sub = subtract(Piece, B);
      Next.insert(Next.end(), std::make_move_iterator(Sub.begin()),
                  std::make_move_iterator(Sub.end()));
    }
    Work = std::move(Next);
    if (Work.empty())
      break;
  }
  return Work;
}
