//===- OmegaTest.h - Exact integer feasibility (Pugh's Omega test) -*- C++ -*-//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper checks shackle legality (Theorem 1) by asking whether a
/// conjunction of affine constraints has an integer solution, using the Omega
/// calculator. This file is our from-scratch implementation of that decision
/// procedure: William Pugh's Omega test (CACM 35(8), 1992) —
///
///   1. equality elimination with the symmetric ("hat") modulo trick,
///   2. Fourier-Motzkin elimination with exactness tracking,
///   3. the dark-shadow sufficient test, and
///   4. splintering for the rare inexact eliminations.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_POLYHEDRAL_OMEGATEST_H
#define SHACKLE_POLYHEDRAL_OMEGATEST_H

#include "polyhedral/Polyhedron.h"

namespace shackle {

/// Returns true iff \p P contains no integer point. Exact (sound and
/// complete) for any conjunction of affine constraints over int64
/// coefficients.
bool isIntegerEmpty(const Polyhedron &P);

/// Returns true iff every integer point of \p A lies in \p B (same space).
bool isSubsetOf(const Polyhedron &A, const Polyhedron &B);

/// Returns true iff A and B share no integer point (same space).
bool isDisjoint(const Polyhedron &A, const Polyhedron &B);

} // namespace shackle

#endif // SHACKLE_POLYHEDRAL_OMEGATEST_H
