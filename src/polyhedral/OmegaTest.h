//===- OmegaTest.h - Exact integer feasibility (Pugh's Omega test) -*- C++ -*-//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper checks shackle legality (Theorem 1) by asking whether a
/// conjunction of affine constraints has an integer solution, using the Omega
/// calculator. This file is our from-scratch implementation of that decision
/// procedure: William Pugh's Omega test (CACM 35(8), 1992) —
///
///   1. equality elimination with the symmetric ("hat") modulo trick,
///   2. Fourier-Motzkin elimination with exactness tracking,
///   3. the dark-shadow sufficient test, and
///   4. splintering for the rare inexact eliminations.
///
/// The test is exact but worst-case exponential, and Fourier-Motzkin can
/// splinter and grow coefficients without bound on adversarial inputs. Every
/// query therefore runs under a SolverBudget: a work-unit ceiling, a
/// recursion ceiling, and overflow-checked int64 arithmetic. When any limit
/// trips, the query answers *Unknown* instead of hanging or wrapping, and
/// callers must act conservatively (keep the dependence, reject the shackle,
/// fall back to simpler code generation).
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_POLYHEDRAL_OMEGATEST_H
#define SHACKLE_POLYHEDRAL_OMEGATEST_H

#include "polyhedral/Polyhedron.h"

#include <cstdint>

namespace shackle {

/// Three-valued answer to "is this set integer-empty?".
enum class FeasVerdict {
  Empty,    ///< Proven: no integer point.
  NonEmpty, ///< Proven: at least one integer point.
  Unknown,  ///< Budget exhausted or arithmetic overflowed; undecided.
};

/// Three-valued answer for the derived predicates (subset, disjoint).
enum class Ternary { False, True, Unknown };

/// Resource limits for one solver query (shared across its recursion).
struct SolverBudget {
  /// Abstract work units; roughly one per constraint combination formed
  /// during Fourier-Motzkin plus one per recursive subproblem. The default
  /// decides every legality/codegen problem in this project in well under
  /// a millisecond while bounding adversarial inputs to ~a second.
  uint64_t MaxWorkUnits = 2'000'000;
  /// Recursion ceiling (also a stack-depth guard; never disable it).
  unsigned MaxDepth = 256;

  /// A budget for callers that prefer a long wait over an Unknown verdict.
  static SolverBudget generous() {
    SolverBudget B;
    B.MaxWorkUnits = 512'000'000;
    return B;
  }
};

/// Counters reported by a bounded query; useful for diagnostics and tests.
struct SolverStats {
  uint64_t WorkUnits = 0;   ///< Total work charged.
  uint64_t Splinters = 0;   ///< Splinter subproblems spawned.
  bool HitWorkLimit = false;
  bool HitDepthLimit = false;
  bool Overflowed = false;  ///< A coefficient left int64 range.

  /// True iff the query gave up for any reason (verdict was Unknown).
  bool exhausted() const {
    return HitWorkLimit || HitDepthLimit || Overflowed;
  }
  /// Human-readable reason for an Unknown verdict.
  std::string reasonStr() const;
};

/// Decides whether \p P contains an integer point, within \p Budget. Sound:
/// Empty and NonEmpty answers are exact; Unknown means undecided.
FeasVerdict isIntegerEmptyBounded(const Polyhedron &P,
                                  const SolverBudget &Budget = SolverBudget(),
                                  SolverStats *Stats = nullptr);

/// Process-wide count of top-level solver queries (isIntegerEmptyBounded
/// calls) since startup. The plan-cache service reads this around a request
/// to prove that warm hits never reach the solver.
uint64_t solverQueryCount();

/// Is every integer point of \p A in \p B (same space)? True/False exact;
/// Unknown when some underlying emptiness query exhausted its budget.
Ternary isSubsetOfBounded(const Polyhedron &A, const Polyhedron &B,
                          const SolverBudget &Budget = SolverBudget(),
                          SolverStats *Stats = nullptr);

/// Do A and B share no integer point (same space)?
Ternary isDisjointBounded(const Polyhedron &A, const Polyhedron &B,
                          const SolverBudget &Budget = SolverBudget(),
                          SolverStats *Stats = nullptr);

/// Returns true iff \p P is *proven* to contain no integer point under the
/// default budget. An Unknown verdict maps to false ("not proven empty"),
/// which is the conservative direction for every caller in this project:
/// dependences are kept, redundancy is not assumed, pieces are not dropped.
bool isIntegerEmpty(const Polyhedron &P);

/// Returns true iff every integer point of \p A is proven to lie in \p B
/// (same space); Unknown maps to false.
bool isSubsetOf(const Polyhedron &A, const Polyhedron &B);

/// Returns true iff A and B are proven to share no integer point (same
/// space); Unknown maps to false.
bool isDisjoint(const Polyhedron &A, const Polyhedron &B);

} // namespace shackle

#endif // SHACKLE_POLYHEDRAL_OMEGATEST_H
