//===- Sample.h - Integer point sampling --------------------------*- C++ -*-=//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Witness extraction: find a concrete integer point of a polyhedron. Used
/// to turn "this shackle is illegal" into "here is the dependent instance
/// pair it would run backwards" — the problem size is one of the variables,
/// so the witness also exhibits the smallest-ish N at which the violation
/// occurs within the search box.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_POLYHEDRAL_SAMPLE_H
#define SHACKLE_POLYHEDRAL_SAMPLE_H

#include "polyhedral/Polyhedron.h"

#include <optional>
#include <vector>

namespace shackle {

/// Finds the lexicographically smallest integer point of \p P with every
/// coordinate in [Lo, Hi] (the box keeps unbounded directions finite).
/// Complete within the box: returns a point iff one exists there. Each
/// coordinate costs O(log(Hi - Lo)) exact emptiness tests.
std::optional<std::vector<int64_t>>
sampleIntegerPoint(const Polyhedron &P, int64_t Lo = -(1 << 20),
                   int64_t Hi = 1 << 20);

} // namespace shackle

#endif // SHACKLE_POLYHEDRAL_SAMPLE_H
