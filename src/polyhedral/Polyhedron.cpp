//===- Polyhedron.cpp - Integer polyhedra implementation ------------------===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "polyhedral/Polyhedron.h"

#include "support/MathExtras.h"

#include <algorithm>
#include <cassert>

using namespace shackle;

Polyhedron::Polyhedron(unsigned NumVars) : NumVars(NumVars) {
  VarNames.reserve(NumVars);
  for (unsigned I = 0; I < NumVars; ++I)
    VarNames.push_back("x" + std::to_string(I));
}

Polyhedron::Polyhedron(std::vector<std::string> Names)
    : NumVars(Names.size()), VarNames(std::move(Names)) {}

void Polyhedron::setVarName(unsigned Var, std::string Name) {
  assert(Var < NumVars && "variable index out of range");
  VarNames[Var] = std::move(Name);
}

unsigned Polyhedron::appendVar(const std::string &Name) {
  VarNames.push_back(Name);
  for (ConstraintRow &Row : Equalities)
    Row.insert(Row.end() - 1, 0);
  for (ConstraintRow &Row : Inequalities)
    Row.insert(Row.end() - 1, 0);
  return NumVars++;
}

void Polyhedron::addEquality(ConstraintRow Row) {
  assert(Row.size() == NumVars + 1 && "constraint row has wrong arity");
  Equalities.push_back(std::move(Row));
}

void Polyhedron::addInequality(ConstraintRow Row) {
  assert(Row.size() == NumVars + 1 && "constraint row has wrong arity");
  Inequalities.push_back(std::move(Row));
}

static ConstraintRow
rowFromTerms(unsigned NumVars,
             const std::vector<std::pair<unsigned, int64_t>> &Terms,
             int64_t C) {
  ConstraintRow Row(NumVars + 1, 0);
  for (const auto &[Var, Coeff] : Terms) {
    assert(Var < NumVars && "term variable out of range");
    Row[Var] += Coeff;
  }
  Row[NumVars] = C;
  return Row;
}

void Polyhedron::addEqualityTerms(
    const std::vector<std::pair<unsigned, int64_t>> &Terms, int64_t C) {
  addEquality(rowFromTerms(NumVars, Terms, C));
}

void Polyhedron::addInequalityTerms(
    const std::vector<std::pair<unsigned, int64_t>> &Terms, int64_t C) {
  addInequality(rowFromTerms(NumVars, Terms, C));
}

void Polyhedron::addBounds(unsigned Var, int64_t Lo, int64_t Hi) {
  addInequalityTerms({{Var, 1}}, -Lo);
  addInequalityTerms({{Var, -1}}, Hi);
}

void Polyhedron::removeInequality(unsigned I) {
  assert(I < Inequalities.size());
  Inequalities.erase(Inequalities.begin() + I);
}

void Polyhedron::removeEquality(unsigned I) {
  assert(I < Equalities.size());
  Equalities.erase(Equalities.begin() + I);
}

void Polyhedron::clearConstraints() {
  Equalities.clear();
  Inequalities.clear();
  KnownEmpty = false;
}

/// Returns the gcd of the variable coefficients of \p Row (0 if all zero).
static int64_t coeffGcd(const ConstraintRow &Row) {
  int64_t G = 0;
  for (unsigned I = 0, E = Row.size() - 1; I < E; ++I)
    G = gcd64(G, Row[I]);
  return G;
}

bool Polyhedron::isObviouslyEmpty() const {
  if (KnownEmpty)
    return true;
  for (const ConstraintRow &Row : Equalities) {
    int64_t G = coeffGcd(Row);
    int64_t C = Row.back();
    if (G == 0 ? C != 0 : C % G != 0)
      return true;
  }
  for (const ConstraintRow &Row : Inequalities)
    if (coeffGcd(Row) == 0 && Row.back() < 0)
      return true;
  return false;
}

bool Polyhedron::normalize() {
  for (auto It = Equalities.begin(); It != Equalities.end();) {
    int64_t G = coeffGcd(*It);
    if (G == 0) {
      if (It->back() != 0)
        KnownEmpty = true;
      It = Equalities.erase(It);
      continue;
    }
    if (It->back() % G != 0) {
      // gcd does not divide the constant: no integer solutions.
      KnownEmpty = true;
      ++It;
      continue;
    }
    if (G > 1)
      for (int64_t &V : *It)
        V /= G;
    ++It;
  }

  for (auto It = Inequalities.begin(); It != Inequalities.end();) {
    int64_t G = coeffGcd(*It);
    if (G == 0) {
      if (It->back() < 0)
        KnownEmpty = true;
      It = Inequalities.erase(It);
      continue;
    }
    if (G > 1) {
      // e + c >= 0 with gcd G on e: divide and floor the constant; exact for
      // integer points.
      for (unsigned I = 0, E = It->size() - 1; I < E; ++I)
        (*It)[I] /= G;
      It->back() = floorDiv(It->back(), G);
    }
    ++It;
  }

  // Coalesce complementary inequality pairs (e >= 0 and -e >= 0) into
  // equalities; this lets downstream consumers (the Let substitution in the
  // code generator, equality elimination in the Omega test) see them.
  unsigned I = 0;
  while (I < Inequalities.size()) {
    ConstraintRow Neg(Inequalities[I].size());
    for (unsigned K = 0; K < Neg.size(); ++K)
      Neg[K] = -Inequalities[I][K];
    bool Coalesced = false;
    for (unsigned J = I + 1; J < Inequalities.size(); ++J) {
      if (Inequalities[J] != Neg)
        continue;
      Equalities.push_back(Inequalities[I]);
      Inequalities.erase(Inequalities.begin() + J);
      Inequalities.erase(Inequalities.begin() + I);
      Coalesced = true;
      break;
    }
    if (!Coalesced)
      ++I;
  }

  return !KnownEmpty;
}

void Polyhedron::removeDuplicateConstraints() {
  auto Dedup = [](std::vector<ConstraintRow> &Rows) {
    std::sort(Rows.begin(), Rows.end());
    Rows.erase(std::unique(Rows.begin(), Rows.end()), Rows.end());
  };
  Dedup(Equalities);
  Dedup(Inequalities);
}

void Polyhedron::fourierMotzkinEliminate(unsigned Var) {
  assert(Var < NumVars && "variable index out of range");

  // First use an equality involving Var, if any, to substitute it away; this
  // is exact and avoids constraint blowup.
  for (unsigned I = 0, E = Equalities.size(); I < E; ++I) {
    int64_t A = Equalities[I][Var];
    if (A == 0)
      continue;
    if (A != 1 && A != -1)
      continue; // Handled below by pairing; unit case is the common one.
    ConstraintRow Def = Equalities[I];
    Equalities.erase(Equalities.begin() + I);
    // A * x + rest = 0  =>  x = -rest / A; with |A| == 1, x = -A * rest.
    ConstraintRow Subst(NumVars + 1, 0);
    for (unsigned J = 0; J <= NumVars; ++J)
      if (J != Var)
        Subst[J] = -A * Def[J];
    substitute(Var, Subst);
    return;
  }

  std::vector<ConstraintRow> Lowers, Uppers, Rest;
  for (ConstraintRow &Row : Inequalities) {
    if (Row[Var] > 0)
      Lowers.push_back(std::move(Row));
    else if (Row[Var] < 0)
      Uppers.push_back(std::move(Row));
    else
      Rest.push_back(std::move(Row));
  }

  // Non-unit equalities involving Var become a lower and an upper bound.
  for (auto It = Equalities.begin(); It != Equalities.end();) {
    if ((*It)[Var] == 0) {
      ++It;
      continue;
    }
    ConstraintRow Pos = *It, Neg = *It;
    if (Pos[Var] < 0)
      for (int64_t &V : Pos)
        V = -V;
    else
      for (int64_t &V : Neg)
        V = -V;
    Lowers.push_back(std::move(Pos));
    Uppers.push_back(std::move(Neg));
    It = Equalities.erase(It);
  }

  Inequalities = std::move(Rest);
  for (const ConstraintRow &L : Lowers) {
    for (const ConstraintRow &U : Uppers) {
      int64_t A = L[Var];       // A > 0:  A * x >= -l(rest)
      int64_t B = -U[Var];      // B > 0:  B * x <= u(rest)
      ConstraintRow Combined(NumVars + 1, 0);
      for (unsigned J = 0; J <= NumVars; ++J)
        Combined[J] =
            checkedAdd(checkedMul(A, U[J]), checkedMul(B, L[J]));
      Combined[Var] = 0;
      Inequalities.push_back(std::move(Combined));
    }
  }

  normalize();
  removeDuplicateConstraints();
}

Polyhedron Polyhedron::project(unsigned NumKeep) const {
  assert(NumKeep <= NumVars && "cannot keep more variables than exist");
  Polyhedron Result = *this;
  for (unsigned Var = NumVars; Var-- > NumKeep;)
    Result.fourierMotzkinEliminate(Var);

  Polyhedron Shrunk(std::vector<std::string>(VarNames.begin(),
                                             VarNames.begin() + NumKeep));
  if (Result.KnownEmpty)
    Shrunk.markKnownEmpty();
  for (const ConstraintRow &Row : Result.Equalities) {
    ConstraintRow Short(Row.begin(), Row.begin() + NumKeep);
    Short.push_back(Row.back());
    Shrunk.addEquality(std::move(Short));
  }
  for (const ConstraintRow &Row : Result.Inequalities) {
    ConstraintRow Short(Row.begin(), Row.begin() + NumKeep);
    Short.push_back(Row.back());
    Shrunk.addInequality(std::move(Short));
  }
  return Shrunk;
}

bool Polyhedron::involvesVar(unsigned Var) const {
  assert(Var < NumVars && "variable index out of range");
  for (const ConstraintRow &Row : Equalities)
    if (Row[Var] != 0)
      return true;
  for (const ConstraintRow &Row : Inequalities)
    if (Row[Var] != 0)
      return true;
  return false;
}

void Polyhedron::substitute(unsigned Var, const ConstraintRow &Def) {
  assert(Def.size() == NumVars + 1 && "definition row has wrong arity");
  assert(Def[Var] == 0 && "definition must not mention the variable");
  auto Apply = [&](ConstraintRow &Row) {
    int64_t A = Row[Var];
    if (A == 0)
      return;
    Row[Var] = 0;
    for (unsigned J = 0; J <= NumVars; ++J)
      Row[J] = checkedAdd(Row[J], checkedMul(A, Def[J]));
  };
  for (ConstraintRow &Row : Equalities)
    Apply(Row);
  for (ConstraintRow &Row : Inequalities)
    Apply(Row);
  normalize();
  removeDuplicateConstraints();
}

bool Polyhedron::substituteChecked(unsigned Var, const ConstraintRow &Def) {
  assert(Def.size() == NumVars + 1 && "definition row has wrong arity");
  assert(Def[Var] == 0 && "definition must not mention the variable");
  auto Apply = [&](ConstraintRow &Row) {
    int64_t A = Row[Var];
    if (A == 0)
      return true;
    Row[Var] = 0;
    for (unsigned J = 0; J <= NumVars; ++J) {
      int64_t Scaled;
      if (mulOverflow(A, Def[J], Scaled) ||
          addOverflow(Row[J], Scaled, Row[J]))
        return false;
    }
    return true;
  };
  for (ConstraintRow &Row : Equalities)
    if (!Apply(Row))
      return false;
  for (ConstraintRow &Row : Inequalities)
    if (!Apply(Row))
      return false;
  normalize();
  removeDuplicateConstraints();
  return true;
}

bool Polyhedron::containsPoint(const std::vector<int64_t> &Point) const {
  assert(Point.size() == NumVars && "point has wrong arity");
  if (KnownEmpty)
    return false;
  auto Eval = [&](const ConstraintRow &Row) {
    int64_t V = Row.back();
    for (unsigned I = 0; I < NumVars; ++I)
      V = checkedAdd(V, checkedMul(Row[I], Point[I]));
    return V;
  };
  for (const ConstraintRow &Row : Equalities)
    if (Eval(Row) != 0)
      return false;
  for (const ConstraintRow &Row : Inequalities)
    if (Eval(Row) < 0)
      return false;
  return true;
}

std::string Polyhedron::constraintStr(const ConstraintRow &Row,
                                      bool IsEq) const {
  std::string S;
  bool First = true;
  for (unsigned I = 0; I < NumVars; ++I) {
    int64_t C = Row[I];
    if (C == 0)
      continue;
    if (First) {
      if (C == -1)
        S += "-";
      else if (C != 1)
        S += std::to_string(C) + "*";
    } else {
      S += C > 0 ? " + " : " - ";
      int64_t A = C > 0 ? C : -C;
      if (A != 1)
        S += std::to_string(A) + "*";
    }
    S += VarNames[I];
    First = false;
  }
  int64_t K = Row.back();
  if (First)
    S += std::to_string(K);
  else if (K > 0)
    S += " + " + std::to_string(K);
  else if (K < 0)
    S += " - " + std::to_string(-K);
  S += IsEq ? " == 0" : " >= 0";
  return S;
}

std::string Polyhedron::str() const {
  std::string S;
  for (const ConstraintRow &Row : Equalities)
    S += constraintStr(Row, /*IsEq=*/true) + "\n";
  for (const ConstraintRow &Row : Inequalities)
    S += constraintStr(Row, /*IsEq=*/false) + "\n";
  return S;
}

Polyhedron shackle::intersect(const Polyhedron &A, const Polyhedron &B) {
  assert(A.getNumVars() == B.getNumVars() &&
         "intersection requires a common space");
  Polyhedron R = A;
  if (B.isKnownEmpty())
    R.markKnownEmpty();
  for (const ConstraintRow &Row : B.equalities())
    R.addEquality(Row);
  for (const ConstraintRow &Row : B.inequalities())
    R.addInequality(Row);
  R.normalize();
  R.removeDuplicateConstraints();
  return R;
}

ConstraintRow shackle::negateInequality(const ConstraintRow &Row) {
  ConstraintRow Neg(Row.size());
  for (unsigned I = 0; I < Row.size(); ++I)
    Neg[I] = -Row[I];
  Neg.back() -= 1;
  return Neg;
}
