//===- Polyhedron.h - Integer polyhedra over int64 coefficients -*- C++ -*-===//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An integer polyhedron: a conjunction of affine equalities and inequalities
/// over a fixed list of integer variables. This is the workhorse of the
/// reproduction: dependence problems, shackle legality problems (Theorem 1 of
/// the paper), and the code-generation scanning sets are all Polyhedra.
///
/// Representation: every constraint is a row of NumVars coefficients plus a
/// trailing constant. An equality row e means e . (x, 1) == 0; an inequality
/// row e means e . (x, 1) >= 0.
///
//===----------------------------------------------------------------------===//

#ifndef SHACKLE_POLYHEDRAL_POLYHEDRON_H
#define SHACKLE_POLYHEDRAL_POLYHEDRON_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace shackle {

/// A single affine constraint row: Coeffs[0..NumVars-1] then the constant.
using ConstraintRow = std::vector<int64_t>;

/// A conjunction of affine equality and inequality constraints over integer
/// variables.
///
/// Variables are identified by index; names are carried only for printing and
/// for code generation. The class provides exact rational Fourier-Motzkin
/// elimination (used for projections during code generation) while the exact
/// *integer* emptiness test lives in OmegaTest.h.
class Polyhedron {
public:
  Polyhedron() = default;

  /// Creates a polyhedron over \p NumVars anonymous variables.
  explicit Polyhedron(unsigned NumVars);

  /// Creates a polyhedron with named variables (one per name).
  explicit Polyhedron(std::vector<std::string> Names);

  unsigned getNumVars() const { return NumVars; }
  const std::vector<std::string> &getVarNames() const { return VarNames; }
  const std::string &getVarName(unsigned Var) const { return VarNames[Var]; }
  void setVarName(unsigned Var, std::string Name);

  /// Appends a fresh variable (coefficient 0 in all existing constraints) and
  /// returns its index.
  unsigned appendVar(const std::string &Name);

  unsigned getNumEqualities() const { return Equalities.size(); }
  unsigned getNumInequalities() const { return Inequalities.size(); }
  const ConstraintRow &getEquality(unsigned I) const { return Equalities[I]; }
  const ConstraintRow &getInequality(unsigned I) const {
    return Inequalities[I];
  }
  const std::vector<ConstraintRow> &equalities() const { return Equalities; }
  const std::vector<ConstraintRow> &inequalities() const {
    return Inequalities;
  }

  /// Adds the equality row . (x, 1) == 0. The row must have NumVars + 1
  /// entries.
  void addEquality(ConstraintRow Row);

  /// Adds the inequality row . (x, 1) >= 0.
  void addInequality(ConstraintRow Row);

  /// Convenience: adds the constraint  sum coeff_i * x_i + C  (>= or ==) 0
  /// from a sparse list of (var, coeff) terms.
  void addEqualityTerms(const std::vector<std::pair<unsigned, int64_t>> &Terms,
                        int64_t C);
  void
  addInequalityTerms(const std::vector<std::pair<unsigned, int64_t>> &Terms,
                     int64_t C);

  /// Adds lower and upper bounds  Lo <= x_Var <= Hi.
  void addBounds(unsigned Var, int64_t Lo, int64_t Hi);

  /// Removes the inequality at index \p I.
  void removeInequality(unsigned I);

  /// Removes the equality at index \p I.
  void removeEquality(unsigned I);

  /// Removes all constraints (and clears any sticky emptiness marker).
  void clearConstraints();

  /// True if a prior normalization discharged an unsatisfiable constraint.
  bool isKnownEmpty() const { return KnownEmpty; }

  /// Marks the polyhedron as integer empty.
  void markKnownEmpty() { KnownEmpty = true; }

  /// True if some constraint is syntactically unsatisfiable (e.g. 0 >= 1 or
  /// an equality whose coefficient gcd does not divide its constant), or if a
  /// prior normalize() discovered and discharged such a constraint. This is
  /// a cheap check; the full integer test is isIntegerEmpty() in OmegaTest.h.
  bool isObviouslyEmpty() const;

  /// Divides every constraint by the gcd of its coefficients, tightening
  /// inequality constants toward feasibility (exact for integer points), and
  /// drops trivially true constraints. Returns false if a constraint became
  /// syntactically unsatisfiable (the polyhedron is integer empty).
  bool normalize();

  /// Removes syntactically duplicated constraints (after normalize()).
  void removeDuplicateConstraints();

  /// Eliminates variable \p Var by exact rational Fourier-Motzkin, leaving a
  /// polyhedron over the same variable list where \p Var is unconstrained
  /// (all its coefficients zero). This computes the *real shadow*; it is an
  /// exact integer projection whenever every elimination pair has a unit
  /// coefficient on one side.
  void fourierMotzkinEliminate(unsigned Var);

  /// Returns the projection of this polyhedron onto the first \p NumKeep
  /// variables (eliminating the rest by Fourier-Motzkin), shrinking the
  /// variable list.
  Polyhedron project(unsigned NumKeep) const;

  /// Returns true if any constraint mentions \p Var.
  bool involvesVar(unsigned Var) const;

  /// Substitutes x_Var := (Def . (x, 1)) / Denom into every constraint.
  /// Denom must be +1 or -1 times... (strictly: the substitution must keep
  /// coefficients integral, so Denom must be 1; callers scale beforehand).
  void substitute(unsigned Var, const ConstraintRow &Def);

  /// Overflow-reporting variant of substitute() for solver paths that must
  /// survive adversarial coefficients: returns false (leaving the polyhedron
  /// in an unspecified but valid state that callers must abandon) if any
  /// intermediate product or sum leaves int64 range.
  [[nodiscard]] bool substituteChecked(unsigned Var, const ConstraintRow &Def);

  /// Evaluates whether the integer point \p Point (size NumVars) satisfies
  /// all constraints.
  bool containsPoint(const std::vector<int64_t> &Point) const;

  /// Renders a human-readable form, one constraint per line.
  std::string str() const;

  /// Renders a single constraint using variable names.
  std::string constraintStr(const ConstraintRow &Row, bool IsEq) const;

private:
  unsigned NumVars = 0;
  std::vector<std::string> VarNames;
  std::vector<ConstraintRow> Equalities;
  std::vector<ConstraintRow> Inequalities;
  /// Sticky marker set when normalization discharges an unsatisfiable
  /// constraint; the polyhedron is integer empty regardless of the remaining
  /// rows.
  bool KnownEmpty = false;
};

/// Intersection of two polyhedra over the same variable list.
Polyhedron intersect(const Polyhedron &A, const Polyhedron &B);

/// Negation of an inequality row: not(e >= 0)  ==  -e - 1 >= 0.
ConstraintRow negateInequality(const ConstraintRow &Row);

} // namespace shackle

#endif // SHACKLE_POLYHEDRAL_POLYHEDRON_H
