//===- main.cpp - dsc-gen: the data-shackling compiler driver ----------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Build-time code generator: constructs every benchmark program, applies the
// paper's shackle configurations, verifies legality (a failed check fails
// the build, as a compiler should), and emits one translation unit of C++
// kernels plus its header. The bench binaries compile the result, so every
// measured number comes from compiled code, not the interpreter.
//
// Usage: dsc-gen <output-directory>
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "emitc/EmitC.h"
#include "programs/Benchmarks.h"

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

using namespace shackle;

namespace {

struct GenState {
  std::vector<KernelSpec> Kernels;
  std::vector<std::unique_ptr<LoopNest>> Owned;
  std::vector<std::unique_ptr<Program>> Programs;

  void add(const std::string &Name, LoopNest Nest) {
    Owned.push_back(std::make_unique<LoopNest>(std::move(Nest)));
    Kernels.push_back(KernelSpec{Name, Owned.back().get()});
  }
};

void addShackled(GenState &G, const Program &P, const std::string &Name,
                 const ShackleChain &Chain) {
  LegalityResult R = checkLegality(P, Chain);
  if (!R.Legal) {
    std::fprintf(stderr, "dsc-gen: shackle for %s is illegal: %s\n",
                 Name.c_str(), R.summary(P).c_str());
    std::exit(1);
  }
  G.add(Name, generateShackledCode(P, Chain));
}

} // namespace

int main(int argc, char **argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: dsc-gen <output-directory>\n");
    return 1;
  }
  std::string OutDir = argv[1];
  GenState G;

  // --- Matrix multiplication (Figures 3, 5, 6, 10) ------------------------
  {
    BenchSpec Spec = makeMatMul();
    const Program &P = *Spec.Prog;
    G.add("mmm_orig", generateOriginalCode(P));
    G.add("mmm_naive_c_64", generateNaiveShackledCode(P, mmmShackleC(P, 64)));
    addShackled(G, P, "mmm_shackle_c_64", mmmShackleC(P, 64));
    for (int64_t B : {16, 32, 64, 128})
      addShackled(G, P, "mmm_shackle_cxa_" + std::to_string(B),
                  mmmShackleCxA(P, B));
    addShackled(G, P, "mmm_two_level_64_8", mmmShackleTwoLevel(P, 64, 8));
    addShackled(G, P, "mmm_two_level_128_16",
                mmmShackleTwoLevel(P, 128, 16));
    G.Programs.push_back(std::move(Spec.Prog));
  }

  // --- Physically tiled MMM (Section 5.3 data reshaping) ------------------
  {
    BenchSpec Spec = makeMatMulTiled(64);
    const Program &P = *Spec.Prog;
    G.add("mmm_tiled_orig", generateOriginalCode(P));
    addShackled(G, P, "mmm_tiled_cxa_64", mmmShackleCxA(P, 64));
    G.Programs.push_back(std::move(Spec.Prog));
  }

  // --- Right-looking Cholesky (Figures 7, 11) -----------------------------
  {
    BenchSpec Spec = makeCholeskyRight();
    const Program &P = *Spec.Prog;
    G.add("chol_orig", generateOriginalCode(P));
    addShackled(G, P, "chol_stores_64", choleskyShackleStores(P, 64));
    addShackled(G, P, "chol_reads_64", choleskyShackleReads(P, 64));
    addShackled(G, P, "chol_product_wr_64",
                choleskyShackleProduct(P, 64, /*WritesFirst=*/true));
    // Two-level blocking (Section 6.3): outer 64 blocks refined by 8 blocks.
    {
      ShackleChain TwoLevel = choleskyShackleStores(P, 64);
      ShackleChain Inner = choleskyShackleStores(P, 8);
      TwoLevel.Factors.push_back(std::move(Inner.Factors[0]));
      addShackled(G, P, "chol_two_level_64_8", TwoLevel);
    }
    G.Programs.push_back(std::move(Spec.Prog));
  }

  // --- Left-looking Cholesky ----------------------------------------------
  {
    BenchSpec Spec = makeCholeskyLeft();
    const Program &P = *Spec.Prog;
    G.add("chol_left_orig", generateOriginalCode(P));
    addShackled(G, P, "chol_left_stores_64", choleskyShackleStores(P, 64));
    G.Programs.push_back(std::move(Spec.Prog));
  }

  // --- QR factorization (Figure 12) ---------------------------------------
  {
    BenchSpec Spec = makeQRHouseholder();
    const Program &P = *Spec.Prog;
    G.add("qr_orig", generateOriginalCode(P));
    for (int64_t B : {16, 32, 64})
      addShackled(G, P, "qr_cols_" + std::to_string(B), qrColumnShackle(P, B));
    G.Programs.push_back(std::move(Spec.Prog));
  }

  // --- ADI (Figures 13(ii), 14) -------------------------------------------
  {
    BenchSpec Spec = makeADI();
    const Program &P = *Spec.Prog;
    G.add("adi_orig", generateOriginalCode(P));
    addShackled(G, P, "adi_fused", adiShackle(P));
    G.Programs.push_back(std::move(Spec.Prog));
  }

  // --- GMTRY (Figure 13(i)) ------------------------------------------------
  {
    BenchSpec Spec = makeGmtry();
    const Program &P = *Spec.Prog;
    G.add("gmtry_orig", generateOriginalCode(P));
    addShackled(G, P, "gmtry_stores_64", gmtryShackleStores(P, 64));
    G.Programs.push_back(std::move(Spec.Prog));
  }

  // --- Banded Cholesky (Figure 15) ------------------------------------------
  {
    BenchSpec Spec = makeCholeskyBanded();
    const Program &P = *Spec.Prog;
    G.add("band_orig", generateOriginalCode(P));
    addShackled(G, P, "band_stores_32", choleskyShackleStores(P, 32));
    G.Programs.push_back(std::move(Spec.Prog));
  }

  std::string Cpp = emitTranslationUnit(G.Kernels);
  std::string Hdr = emitHeader(G.Kernels);

  auto WriteFile = [](const std::string &Path, const std::string &Text) {
    std::FILE *F = std::fopen(Path.c_str(), "w");
    if (!F) {
      std::fprintf(stderr, "dsc-gen: cannot open %s\n", Path.c_str());
      std::exit(1);
    }
    std::fwrite(Text.data(), 1, Text.size(), F);
    std::fclose(F);
  };
  WriteFile(OutDir + "/shackle_kernels.gen.cpp", Cpp);
  WriteFile(OutDir + "/shackle_kernels.gen.h", Hdr);
  std::fprintf(stderr, "dsc-gen: emitted %zu kernels to %s\n",
               G.Kernels.size(), OutDir.c_str());
  return 0;
}
