//===- main.cpp - shackle: the command-line driver -----------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// A user-facing driver over the whole library:
//
//   shackle list
//   shackle print   <benchmark>
//   shackle legality <benchmark> <config> [--block=N]
//   shackle codegen <benchmark> <config> [--block=N] [--naive]
//   shackle emit    <benchmark> <config> [--block=N] [--name=f]
//   shackle census
//   shackle auto    <benchmark> [--eval=N]
//   shackle simulate <benchmark> <config> [--block=N] --params=N[,bw]
//
//===----------------------------------------------------------------------===//

#include "autotune/AutoShackle.h"
#include "cachesim/CacheSim.h"
#include "core/Dependence.h"
#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "emitc/EmitC.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "parallel/ParallelExecutor.h"
#include "programs/Benchmarks.h"
#include "programs/Registry.h"
#include "runtime/MultiPass.h"
#include "service/Server.h"
#include "support/FaultInjector.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

using namespace shackle;

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage:\n"
      "  shackle list\n"
      "  shackle print    <benchmark>\n"
      "  shackle legality <benchmark> <config> [--block=N]\n"
      "  shackle codegen  <benchmark> <config> [--block=N] [--naive]\n"
      "  shackle emit     <benchmark> <config> [--block=N] [--name=f]\n"
      "  shackle census\n"
      "  shackle deps     <benchmark>   (direction vectors)\n"
      "  shackle auto     <benchmark> [--eval=N]\n"
      "  shackle simulate <benchmark> <config> [--block=N] "
      "--params=N[,bw]\n"
      "  shackle run      <benchmark> <config> [--block=N] --params=N[,..]\n"
      "      [--threads=N] [--task-level=K|auto] [--verify]\n"
      "      [--plan-cache=PATH]        (persisted-plan reuse: load PATH,\n"
      "       report hit/miss, save back; a warm hit skips legality,\n"
      "       simplification, and DAG construction entirely)\n"
      "      (parallel block execution; task-level schedules the first K\n"
      "       chain factors as outer tasks, inner levels serial per task)\n"
      "      [--max-retries=N] [--deadline-ms=N] [--stall-ms=N]\n"
      "      [--placement=affinity|round-robin] [--domain-size=N]\n"
      "      [--steal-remote-after=K] [--random-steal] [--steal-seed=S]\n"
      "      [--first-touch]            (locality: see docs/CLI.md)\n"
      "      [--inject=SPEC]            (chaos: deterministic faults;\n"
      "       e.g. --inject='throw@block=2;seed=7', see docs/CLI.md;\n"
      "       a malformed SPEC is rejected with exit code 2)\n"
      "      [--verify-data=off|undo|block] [--paranoia]\n"
      "      (integrity: 'undo' checksums undo logs before restores\n"
      "       [default]; 'block' also commits a block only after two\n"
      "       agreeing executions; --paranoia forces 'block')\n"
      "  shackle file <path> print\n"
      "  shackle file <path> {legality|codegen|emit} --array=NAME\n"
      "      [--block=B1[,B2...]] [--order=colblocks] [--reversed] "
      "[--naive]\n"
      "      (shackles every statement through its store into NAME)\n"
      "  shackle file <path> auto --array=NAME [--eval=N]\n"
      "  shackle serve    --socket=PATH [--snapshot=PATH]\n"
      "      [--cache-bytes=N] [--threads=N]\n"
      "      [--max-inflight=N] [--queue-depth=N] [--request-deadline-ms=N]\n"
      "      [--max-line-bytes=N] [--idle-timeout-ms=N] "
      "[--max-connections=N]\n"
      "      [--snapshot-interval-s=N] [--inject=SPEC]\n"
      "      (daemon: newline-delimited JSON requests over a Unix socket;\n"
      "       bounded worker pool sheds overload with structured replies,\n"
      "       SIGTERM/SIGINT drains gracefully, plan cache persisted to\n"
      "       --snapshot with periodic autosave; see docs/SERVE.md)\n"
      "  shackle request  --socket=PATH --json=REQ  [--timeout-ms=N]\n"
      "      [--max-retries=N] [--backoff-base-ms=N] [--backoff-max-ms=N]\n"
      "      [--retry-seed=S] [--inject=SPEC]\n"
      "      (send one request to a running daemon, print the reply;\n"
      "       retries `overloaded` replies with jittered backoff honoring\n"
      "       the server's retry_after_ms hint)\n"
      "common flags:\n"
      "  --solver-budget=N   Omega-test work-unit budget per query\n"
      "  --strict            fail instead of falling back to simpler code\n"
      "exit codes: 0 ok/legal, 1 usage or I/O error, 2 shackle illegal\n"
      "            (or malformed --inject spec), 3 parse error,\n"
      "            4 legality undecided within budget\n"
      "(see docs/CLI.md)\n");
  return 1;
}

/// Maps a diagnostic to the CLI's documented exit code (docs/CLI.md).
int exitCodeFor(const Diagnostic &D) {
  switch (D.Code) {
  case DiagCode::ParseError:
    return 3;
  case DiagCode::ShackleIllegal:
    return 2;
  case DiagCode::LegalityUnknown:
  case DiagCode::SolverBudgetExceeded:
    return 4;
  case DiagCode::IOError:
  case DiagCode::ShackleMismatch:
  case DiagCode::ScanFailed:
  case DiagCode::UsageError:
  case DiagCode::ParallelFallback:
  case DiagCode::ParallelFault:
  case DiagCode::ParallelDegrade:
    return 1;
  }
  return 1;
}

/// Prints \p D to stderr (prefixed with \p File when non-null) and returns
/// its exit code.
int reportError(const char *File, const Diagnostic &D) {
  if (File)
    std::fprintf(stderr, "%s: %s\n", File, D.str().c_str());
  else
    std::fprintf(stderr, "%s\n", D.str().c_str());
  return exitCodeFor(D);
}

int legalityExitCode(const LegalityResult &LR) {
  switch (LR.Verdict) {
  case LegalityVerdict::Legal:
    return 0;
  case LegalityVerdict::Illegal:
    return 2;
  case LegalityVerdict::Unknown:
    return 4;
  }
  return 4;
}

int64_t flagValue(int Argc, char **Argv, const char *Name, int64_t Default) {
  std::string Prefix = std::string("--") + Name + "=";
  for (int I = 0; I < Argc; ++I)
    if (std::strncmp(Argv[I], Prefix.c_str(), Prefix.size()) == 0)
      return std::atoll(Argv[I] + Prefix.size());
  return Default;
}

std::string flagString(int Argc, char **Argv, const char *Name,
                       const char *Default = "") {
  std::string Prefix = std::string("--") + Name + "=";
  for (int I = 0; I < Argc; ++I)
    if (std::strncmp(Argv[I], Prefix.c_str(), Prefix.size()) == 0)
      return Argv[I] + Prefix.size();
  return Default;
}

bool hasFlag(int Argc, char **Argv, const char *Name) {
  std::string Flag = std::string("--") + Name;
  for (int I = 0; I < Argc; ++I)
    if (Flag == Argv[I])
      return true;
  return false;
}

SolverBudget budgetFromFlags(int Argc, char **Argv) {
  SolverBudget B;
  B.MaxWorkUnits = static_cast<uint64_t>(flagValue(
      Argc, Argv, "solver-budget", static_cast<int64_t>(B.MaxWorkUnits)));
  return B;
}

std::vector<int64_t> paramList(int Argc, char **Argv, const char *Name) {
  std::string Prefix = std::string("--") + Name + "=";
  for (int I = 0; I < Argc; ++I) {
    if (std::strncmp(Argv[I], Prefix.c_str(), Prefix.size()) != 0)
      continue;
    std::vector<int64_t> Out;
    const char *S = Argv[I] + Prefix.size();
    while (*S) {
      Out.push_back(std::atoll(S));
      const char *Comma = std::strchr(S, ',');
      if (!Comma)
        break;
      S = Comma + 1;
    }
    return Out;
  }
  return {};
}

int cmdList() {
  for (const auto &[Name, Entry] : benchRegistry()) {
    std::printf("%-16s configs:", Name.c_str());
    for (const auto &[CName, Fn] : Entry.Configs) {
      (void)Fn;
      std::printf(" %s", CName.c_str());
    }
    std::printf("  (default block %lld)\n",
                static_cast<long long>(Entry.DefaultBlock));
  }
  return 0;
}

int cmdCensus() {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  const char *S2Names[] = {"A[I,J]", "A[J,J]"};
  const char *S3Names[] = {"A[L,K]", "A[L,J]", "A[K,J]"};
  std::printf("Right-looking Cholesky single-shackle census "
              "(64x64 blocks, column-block-major walk):\n");
  for (unsigned R2 = 1; R2 <= 2; ++R2)
    for (unsigned R3 = 1; R3 <= 3; ++R3) {
      std::vector<unsigned> RefIdx = {0, R2, R3};
      ShackleChain Chain;
      Chain.Factors.push_back(DataShackle::onRefs(
          P, DataBlocking::rectangular(0, {64, 64}, {1, 0}), RefIdx));
      LegalityResult R = checkLegality(P, Chain);
      std::printf("  S1=A[J,J] S2=%s S3=%s -> %s\n", S2Names[R2 - 1],
                  S3Names[R3 - 1], R.Legal ? "LEGAL" : "illegal");
      if (!R.Legal && !R.Violations.empty())
        std::printf("      %s\n", R.Violations[0].witnessStr(P).c_str());
    }
  return 0;
}

} // namespace

namespace {

int cmdFile(int Argc, char **Argv) {
  // shackle file <path> <action> [flags].
  if (Argc < 4)
    return usage();
  std::FILE *F = std::fopen(Argv[2], "rb");
  if (!F)
    return reportError(Argv[2],
                       Diagnostic(DiagCode::IOError, "cannot open file"));
  std::string Source;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Source.append(Buf, Got);
  std::fclose(F);

  ParseResult R = parseProgram(Source);
  if (!R)
    return reportError(Argv[2], R.Diag);
  const Program &P = *R.Prog;
  std::string Action = Argv[3];
  if (Action == "print") {
    std::printf("%s", P.str().c_str());
    return 0;
  }
  if (Action == "deps") {
    for (const DependenceSummary &S : summarizeDependences(P))
      std::printf("%s\n", S.str(P).c_str());
    return 0;
  }

  // Resolve the blocked array.
  int ArrayId = -1;
  for (int I = 0; I < Argc; ++I)
    if (std::strncmp(Argv[I], "--array=", 8) == 0)
      for (unsigned A = 0; A < P.getNumArrays(); ++A)
        if (P.getArray(A).Name == Argv[I] + 8)
          ArrayId = static_cast<int>(A);
  if (ArrayId < 0)
    return reportError(Argv[2],
                       Diagnostic(DiagCode::UsageError,
                                  "--array=NAME (declared in the program) "
                                  "required"));

  if (Action == "auto") {
    AutoShackleOptions Opts;
    Opts.EvalParams.assign(P.getNumParams(),
                           flagValue(Argc, Argv, "eval", 96));
    AutoShackleResult AR = searchShackles(P, ArrayId, Opts);
    for (const ShackleCandidate &C : AR.Candidates)
      if (C.Evaluated)
        std::printf("%-70s cost=%.0f\n", C.Description.c_str(), C.Cost);
      else
        std::printf("%-70s %s\n", C.Description.c_str(),
                    C.Legal ? "legal (not evaluated)" : "illegal");
    return 0;
  }

  // Build the stores shackle with the requested blocking.
  unsigned Rank = P.getArray(ArrayId).Extents.size();
  std::vector<int64_t> Blocks = paramList(Argc, Argv, "block");
  if (Blocks.empty())
    Blocks.assign(Rank, 64);
  while (Blocks.size() < Rank)
    Blocks.push_back(Blocks.back());
  std::vector<unsigned> Order(Rank);
  for (unsigned D = 0; D < Rank; ++D)
    Order[D] = D;
  if (hasFlag(Argc, Argv, "order=colblocks") && Rank == 2)
    Order = {1, 0};
  DataBlocking Blocking =
      DataBlocking::rectangular(ArrayId, Blocks, Order);
  if (hasFlag(Argc, Argv, "reversed"))
    Blocking.Planes[0].Reversed = true;
  Expected<DataShackle> Shackle =
      DataShackle::tryOnStores(P, std::move(Blocking));
  if (!Shackle.ok())
    return reportError(Argv[2], Shackle.diagnostic());
  ShackleChain Chain;
  Chain.Factors.push_back(std::move(Shackle.get()));
  SolverBudget Budget = budgetFromFlags(Argc, Argv);
  bool Strict = hasFlag(Argc, Argv, "strict");

  if (Action == "legality") {
    LegalityResult LR =
        checkLegality(P, Chain, /*FirstViolationOnly=*/false, Budget);
    std::printf("%s\n", LR.summary(P).c_str());
    for (const LegalityViolation &V : LR.Violations)
      std::printf("  %s\n", V.witnessStr(P).c_str());
    for (const Diagnostic &D : LR.Diags)
      std::fprintf(stderr, "%s\n", D.str().c_str());
    return legalityExitCode(LR);
  }
  if (Action == "codegen" || Action == "emit") {
    if (hasFlag(Argc, Argv, "naive") && Action == "codegen") {
      LegalityResult LR = checkLegality(P, Chain, true, Budget);
      if (LR.Verdict != LegalityVerdict::Legal) {
        std::fprintf(stderr, "shackle rejected: %s\n",
                     LR.summary(P).c_str());
        return legalityExitCode(LR);
      }
      std::printf("%s", generateNaiveShackledCode(P, Chain).str().c_str());
      return 0;
    }
    CodegenResult CR = generateCodeWithFallback(P, Chain, Budget);
    for (const Diagnostic &D : CR.Diags)
      std::fprintf(stderr, "%s\n", D.str().c_str());
    std::fprintf(stderr, "codegen tier: %s\n", codegenTierName(CR.Tier));
    if (Strict && CR.Tier != CodegenTier::Shackled) {
      std::fprintf(stderr,
                   "--strict: refusing to emit %s-tier fallback code\n",
                   codegenTierName(CR.Tier));
      return CR.Legality.Verdict == LegalityVerdict::Legal
                 ? 1
                 : legalityExitCode(CR.Legality);
    }
    if (Action == "codegen")
      std::printf("%s", CR.Nest.str().c_str());
    else
      std::printf("%s", emitKernel(CR.Nest, "kernel").c_str());
    return 0;
  }
  if (Action == "simulate") {
    std::vector<int64_t> Params = paramList(Argc, Argv, "params");
    if (Params.size() != P.getNumParams()) {
      std::fprintf(stderr, "--params must supply %u value(s)\n",
                   P.getNumParams());
      return 1;
    }
    auto Simulate = [&](const char *Label, const LoopNest &Nest) {
      ProgramInstance Inst(P, Params);
      Inst.fillRandom(1, 0.5, 1.5);
      CacheHierarchy H({CacheConfig{"L1", 32 * 1024, 64, 4},
                        CacheConfig{"L2", 256 * 1024, 64, 8}});
      TraceFn Trace = [&H](unsigned ArrayId, int64_t Off, bool) {
        H.access((static_cast<uint64_t>(ArrayId + 1) << 33) +
                 static_cast<uint64_t>(Off) * sizeof(double));
      };
      runLoopNest(Nest, Inst, &Trace);
      std::printf("-- %s --\n%s", Label, H.report().c_str());
    };
    Simulate("original", generateOriginalCode(P));
    Simulate("shackled", generateShackledCode(P, Chain));
    return 0;
  }
  if (Action == "multipass") {
    std::vector<int64_t> Params = paramList(Argc, Argv, "params");
    if (Params.size() != P.getNumParams()) {
      std::fprintf(stderr, "--params must supply %u value(s)\n",
                   P.getNumParams());
      return 1;
    }
    ProgramInstance Ref(P, Params), Test(P, Params);
    Ref.fillRandom(1, 0.5, 1.5);
    for (unsigned A = 0; A < P.getNumArrays(); ++A)
      Test.buffer(A) = Ref.buffer(A);
    runLoopNest(generateOriginalCode(P), Ref);
    MultiPassResult M =
        runMultiPassShackled(P, Chain.Factors[0], Test);
    std::printf("%u passes, %llu instances, completed=%s, max diff vs "
                "original = %g\n",
                M.Passes, static_cast<unsigned long long>(M.Instances),
                M.Completed ? "yes" : "no", Ref.maxAbsDifference(Test));
    return M.Completed ? 0 : 2;
  }
  return usage();
}

// The SIGTERM/SIGINT hook for graceful drain: the handler only performs an
// atomic load and an atomic store (ServiceServer::stop()), both
// async-signal-safe.
std::atomic<ServiceServer *> GServeServer{nullptr};

extern "C" void serveSignalHandler(int) {
  if (ServiceServer *S = GServeServer.load())
    S->stop();
}

int cmdServe(int Argc, char **Argv) {
  std::string Socket = flagString(Argc, Argv, "socket");
  if (Socket.empty()) {
    std::fprintf(stderr, "error: [usage-error] serve requires "
                         "--socket=PATH\n");
    return 1;
  }
  ServiceOptions Opts;
  Opts.SnapshotPath = flagString(Argc, Argv, "snapshot");
  Opts.CacheBytes = static_cast<uint64_t>(flagValue(
      Argc, Argv, "cache-bytes", static_cast<int64_t>(Opts.CacheBytes)));
  Opts.DefaultThreads = static_cast<unsigned>(
      std::max<int64_t>(1, flagValue(Argc, Argv, "threads", 1)));
  Opts.Budget = budgetFromFlags(Argc, Argv);

  ServerOptions SOpts;
  SOpts.Admission.MaxInflight = static_cast<unsigned>(std::max<int64_t>(
      1, flagValue(Argc, Argv, "max-inflight",
                   static_cast<int64_t>(SOpts.Admission.MaxInflight))));
  SOpts.Admission.QueueDepth = static_cast<unsigned>(std::max<int64_t>(
      0, flagValue(Argc, Argv, "queue-depth",
                   static_cast<int64_t>(SOpts.Admission.QueueDepth))));
  SOpts.Admission.RequestDeadlineMs = static_cast<uint64_t>(
      std::max<int64_t>(0, flagValue(Argc, Argv, "request-deadline-ms", 0)));
  SOpts.MaxLineBytes = static_cast<uint64_t>(std::max<int64_t>(
      1, flagValue(Argc, Argv, "max-line-bytes",
                   static_cast<int64_t>(SOpts.MaxLineBytes))));
  SOpts.IdleTimeoutMs = static_cast<uint64_t>(
      std::max<int64_t>(0, flagValue(Argc, Argv, "idle-timeout-ms", 0)));
  SOpts.MaxConnections = static_cast<unsigned>(std::max<int64_t>(
      1, flagValue(Argc, Argv, "max-connections",
                   static_cast<int64_t>(SOpts.MaxConnections))));
  SOpts.SnapshotIntervalS = static_cast<uint64_t>(
      std::max<int64_t>(0, flagValue(Argc, Argv, "snapshot-interval-s", 0)));

  std::string InjectSpec = flagString(Argc, Argv, "inject");
  if (!InjectSpec.empty()) {
    Status IS = FaultInjector::instance().configure(InjectSpec);
    if (!IS.ok()) {
      std::fprintf(stderr, "%s\n", IS.diagnostic().str().c_str());
      return 2;
    }
  }

  ServiceCore Core(Opts);
  Status Loaded = Core.loadSnapshot();
  if (!Loaded.ok())
    // A malformed snapshot must never block startup: warn and serve cold.
    std::fprintf(stderr, "%s\n", Loaded.diagnostic().Message.c_str());

  ServiceServer Server(Core, Socket, SOpts);
  Status S = Server.start();
  if (!S.ok())
    return reportError(nullptr, S.diagnostic());
  GServeServer.store(&Server);
  std::signal(SIGTERM, serveSignalHandler);
  std::signal(SIGINT, serveSignalHandler);
  std::printf("serving on %s (cache %llu MiB%s%s, %u workers, queue %u)\n",
              Socket.c_str(),
              static_cast<unsigned long long>(Opts.CacheBytes >> 20),
              Opts.SnapshotPath.empty() ? "" : ", snapshot ",
              Opts.SnapshotPath.c_str(), SOpts.Admission.MaxInflight,
              SOpts.Admission.QueueDepth);
  std::fflush(stdout);
  uint64_t Conns = Server.serve();
  GServeServer.store(nullptr);
  // The shutdown save is a final flush: with --snapshot-interval-s the
  // cache has been autosaved all along (atomic tmp+rename each time).
  Status Saved = Core.saveSnapshot();
  if (!Saved.ok())
    std::fprintf(stderr, "%s\n", Saved.diagnostic().str().c_str());
  std::printf("served %llu connection(s), %llu autosave(s)\n",
              static_cast<unsigned long long>(Conns),
              static_cast<unsigned long long>(Server.autosaves()));
  std::printf("%s\n", Core.statsLine().c_str());
  std::printf("%s\n", Server.admission().statsLine().c_str());
  return 0;
}

int cmdRequest(int Argc, char **Argv) {
  std::string Socket = flagString(Argc, Argv, "socket");
  std::string Json = flagString(Argc, Argv, "json");
  if (Socket.empty() || Json.empty()) {
    std::fprintf(stderr, "error: [usage-error] request requires "
                         "--socket=PATH and --json=REQ\n");
    return 1;
  }
  std::string InjectSpec = flagString(Argc, Argv, "inject");
  if (!InjectSpec.empty()) {
    Status IS = FaultInjector::instance().configure(InjectSpec);
    if (!IS.ok()) {
      std::fprintf(stderr, "%s\n", IS.diagnostic().str().c_str());
      return 2;
    }
  }
  ServiceRequestOptions ROpts;
  ROpts.TimeoutMs = static_cast<unsigned>(
      std::max<int64_t>(1, flagValue(Argc, Argv, "timeout-ms", 10000)));
  ROpts.MaxRetries = static_cast<unsigned>(
      std::max<int64_t>(0, flagValue(Argc, Argv, "max-retries", 0)));
  ROpts.BackoffBaseMs = static_cast<uint64_t>(std::max<int64_t>(
      1, flagValue(Argc, Argv, "backoff-base-ms",
                   static_cast<int64_t>(ROpts.BackoffBaseMs))));
  ROpts.BackoffMaxMs = static_cast<uint64_t>(std::max<int64_t>(
      1, flagValue(Argc, Argv, "backoff-max-ms",
                   static_cast<int64_t>(ROpts.BackoffMaxMs))));
  ROpts.Seed = static_cast<uint64_t>(
      std::max<int64_t>(0, flagValue(Argc, Argv, "retry-seed", 0)));
  unsigned Retries = 0;
  ROpts.RetriesOut = &Retries;
  std::string Reply, Err;
  if (!serviceRequest(Socket, Json, Reply, &Err, ROpts)) {
    std::fprintf(stderr, "error: [io-error] %s\n", Err.c_str());
    return 1;
  }
  if (Retries > 0)
    std::fprintf(stderr, "note: retried %u time(s) after overload\n",
                 Retries);
  std::printf("%s\n", Reply.c_str());
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2)
    return usage();
  std::string Cmd = Argv[1];
  if (Cmd == "list")
    return cmdList();
  if (Cmd == "census")
    return cmdCensus();
  if (Cmd == "file")
    return cmdFile(Argc, Argv);
  if (Cmd == "serve")
    return cmdServe(Argc, Argv);
  if (Cmd == "request")
    return cmdRequest(Argc, Argv);
  if (Argc < 3)
    return usage();

  auto It = benchRegistry().find(Argv[2]);
  if (It == benchRegistry().end()) {
    std::fprintf(stderr, "unknown benchmark '%s'; try 'shackle list'\n",
                 Argv[2]);
    return 1;
  }
  const BenchEntry &Entry = It->second;
  BenchSpec Spec = Entry.Make();
  const Program &P = *Spec.Prog;

  if (Cmd == "print") {
    std::printf("%s", P.str().c_str());
    return 0;
  }

  if (Cmd == "deps") {
    for (const DependenceSummary &S : summarizeDependences(P))
      std::printf("%s\n", S.str(P).c_str());
    return 0;
  }

  if (Cmd == "auto") {
    AutoShackleOptions Opts;
    Opts.EvalParams = {flagValue(Argc, Argv, "eval", 96)};
    if (P.getNumParams() > 1)
      Opts.EvalParams.push_back(
          std::min<int64_t>(Opts.EvalParams[0] - 1, 16));
    AutoShackleResult R = searchShackles(P, Spec.MainArray, Opts);
    if (R.Candidates.empty()) {
      std::printf("no candidates (a statement lacks a reference to the "
                  "main array; dummy references are not auto-generated)\n");
      return 0;
    }
    for (const ShackleCandidate &C : R.Candidates) {
      if (C.Evaluated)
        std::printf("%-70s L1=%llu L2=%llu cost=%.0f\n",
                    C.Description.c_str(),
                    static_cast<unsigned long long>(C.Misses[0]),
                    static_cast<unsigned long long>(C.Misses[1]), C.Cost);
      else
        std::printf("%-70s %s\n", C.Description.c_str(),
                    C.Legal ? "legal (not evaluated)" : "illegal");
    }
    return 0;
  }

  if (Argc < 4)
    return usage();
  auto CIt = Entry.Configs.find(Argv[3]);
  if (CIt == Entry.Configs.end()) {
    std::fprintf(stderr, "unknown config '%s' for benchmark '%s'\n", Argv[3],
                 Argv[2]);
    return 1;
  }
  int64_t Block = flagValue(Argc, Argv, "block", Entry.DefaultBlock);
  ShackleChain Chain = CIt->second(P, Block);

  if (Cmd == "legality") {
    LegalityResult R = checkLegality(P, Chain, /*FirstViolationOnly=*/false,
                                     budgetFromFlags(Argc, Argv));
    std::printf("%s\n", R.summary(P).c_str());
    for (const LegalityViolation &V : R.Violations)
      std::printf("  %s\n", V.witnessStr(P).c_str());
    for (const Diagnostic &D : R.Diags)
      std::fprintf(stderr, "%s\n", D.str().c_str());
    return legalityExitCode(R);
  }

  if (Cmd == "codegen") {
    LoopNest Nest = hasFlag(Argc, Argv, "naive")
                        ? generateNaiveShackledCode(P, Chain)
                        : generateShackledCode(P, Chain);
    std::printf("%s", Nest.str().c_str());
    return 0;
  }

  if (Cmd == "emit") {
    LoopNest Nest = generateShackledCode(P, Chain);
    std::string Name = "kernel";
    for (int I = 0; I < Argc; ++I)
      if (std::strncmp(Argv[I], "--name=", 7) == 0)
        Name = Argv[I] + 7;
    std::printf("%s", emitKernel(Nest, Name).c_str());
    return 0;
  }

  if (Cmd == "simulate") {
    std::vector<int64_t> Params = paramList(Argc, Argv, "params");
    if (Params.size() != P.getNumParams()) {
      std::fprintf(stderr, "--params must supply %u value(s)\n",
                   P.getNumParams());
      return 1;
    }
    auto Simulate = [&](const char *Label, const LoopNest &Nest) {
      ProgramInstance Inst(P, Params);
      Inst.fillRandom(1, 0.5, 1.5);
      CacheHierarchy H({CacheConfig{"L1", 32 * 1024, 64, 4},
                        CacheConfig{"L2", 256 * 1024, 64, 8}});
      TraceFn Trace = [&H](unsigned ArrayId, int64_t Off, bool) {
        H.access((static_cast<uint64_t>(ArrayId + 1) << 33) +
                 static_cast<uint64_t>(Off) * sizeof(double));
      };
      runLoopNest(Nest, Inst, &Trace);
      std::printf("-- %s --\n%s", Label, H.report().c_str());
    };
    Simulate("original", generateOriginalCode(P));
    Simulate("shackled", generateShackledCode(P, Chain));
    return 0;
  }

  if (Cmd == "run") {
    std::vector<int64_t> Params = paramList(Argc, Argv, "params");
    if (Params.size() != P.getNumParams()) {
      std::fprintf(stderr, "--params must supply %u value(s)\n",
                   P.getNumParams());
      return 1;
    }
    unsigned Threads = static_cast<unsigned>(
        std::max<int64_t>(1, flagValue(Argc, Argv, "threads", 1)));

    // Chaos flags. The injector must be armed before the plan is built so
    // that solver-unknown faults can hit the dependence analysis.
    std::string InjectSpec = flagString(Argc, Argv, "inject");
    if (!InjectSpec.empty()) {
      Status S = FaultInjector::instance().configure(InjectSpec);
      if (!S.ok()) {
        // The diagnostic carries the 1-based column of the offending
        // clause within SPEC. Exit 2: the spec is illegal, not a usage
        // slip — a typo here must never silently run without faults.
        std::fprintf(stderr, "%s\n", S.diagnostic().str().c_str());
        return 2;
      }
    }
    ParallelRunOptions RunOpts;
    RunOpts.NumThreads = Threads;
    RunOpts.MaxRetries = static_cast<unsigned>(
        std::max<int64_t>(0, flagValue(Argc, Argv, "max-retries", 2)));
    RunOpts.DeadlineMs = static_cast<uint64_t>(
        std::max<int64_t>(0, flagValue(Argc, Argv, "deadline-ms", 0)));
    // Default a stall watchdog on whenever faults are armed, so that an
    // injected worker stall or death degrades instead of hanging the run.
    RunOpts.StallTimeoutMs = static_cast<uint64_t>(std::max<int64_t>(
        0, flagValue(Argc, Argv, "stall-ms", InjectSpec.empty() ? 0 : 250)));
    std::string Placement = flagString(Argc, Argv, "placement", "affinity");
    if (Placement == "round-robin") {
      RunOpts.Placement = TaskPlacement::RoundRobin;
    } else if (Placement != "affinity") {
      std::fprintf(stderr,
                   "error: [usage-error] --placement expects 'affinity' or "
                   "'round-robin', got '%s'\n",
                   Placement.c_str());
      return 1;
    }
    RunOpts.DomainSize = static_cast<unsigned>(
        std::max<int64_t>(0, flagValue(Argc, Argv, "domain-size", 0)));
    RunOpts.StealRemoteAfter = static_cast<unsigned>(std::max<int64_t>(
        0, flagValue(Argc, Argv, "steal-remote-after", 2)));
    RunOpts.RandomSteal = hasFlag(Argc, Argv, "random-steal");
    RunOpts.StealSeed = static_cast<uint64_t>(
        std::max<int64_t>(0, flagValue(Argc, Argv, "steal-seed", 0)));
    RunOpts.FirstTouch = hasFlag(Argc, Argv, "first-touch");
    std::string VerifyData =
        flagString(Argc, Argv, "verify-data", "undo");
    if (VerifyData == "off") {
      RunOpts.VerifyData = DataVerify::Off;
    } else if (VerifyData == "undo") {
      RunOpts.VerifyData = DataVerify::Undo;
    } else if (VerifyData == "block") {
      RunOpts.VerifyData = DataVerify::Block;
    } else {
      std::fprintf(stderr,
                   "error: [usage-error] --verify-data expects 'off', "
                   "'undo', or 'block', got '%s'\n",
                   VerifyData.c_str());
      return 1;
    }
    if (hasFlag(Argc, Argv, "paranoia"))
      RunOpts.VerifyData = DataVerify::Block;

    ParallelPlanOptions Opts;
    Opts.Budget = budgetFromFlags(Argc, Argv);
    Opts.ThreadsHint = Threads;
    std::string LevelStr = flagString(Argc, Argv, "task-level");
    if (!LevelStr.empty()) {
      if (LevelStr == "auto") {
        Opts.AutoTaskLevel = true;
      } else {
        char *End = nullptr;
        long L = std::strtol(LevelStr.c_str(), &End, 10);
        if (End == LevelStr.c_str() || *End || L < 0) {
          std::fprintf(stderr,
                       "error: [usage-error] --task-level expects a factor "
                       "count (0 = flat) or 'auto', got '%s'\n",
                       LevelStr.c_str());
          return 1;
        }
        Opts.TaskLevel = static_cast<unsigned>(L);
      }
    }
    // Offline persisted-plan reuse: route the build through a PlanCache
    // primed from --plan-cache=PATH. A warm hit revives the persisted plan
    // and skips legality, simplification, and DAG construction entirely.
    std::string CachePath = flagString(Argc, Argv, "plan-cache");
    std::unique_ptr<ParallelPlan> OwnedPlan;
    std::shared_ptr<const CachedPlan> Cached;
    if (!CachePath.empty()) {
      PlanCache PC;
      Status Loaded = PC.loadSnapshot(CachePath);
      if (!Loaded.ok())
        std::fprintf(stderr, "%s\n", Loaded.diagnostic().Message.c_str());
      unsigned KeyLevel =
          Opts.AutoTaskLevel ? PlanKeyAutoTaskLevel : Opts.TaskLevel;
      PlanKey Key =
          makePlanKey(P, Chain, Params, KeyLevel, detectMachineShape());
      // Non-owning alias: the benchmark Program outlives this command, and
      // the cache dies with it.
      std::shared_ptr<const Program> ProgRef(&P, [](const Program *) {});
      PlanCache::Outcome Out = PC.getOrBuild(Key, ProgRef, [&] {
        return ParallelPlan::build(P, Chain, Params, Opts);
      });
      if (!Out.Plan) {
        std::fprintf(stderr, "plan-cache: build failed: %s\n",
                     Out.Error.c_str());
        return 1;
      }
      std::printf("plan-cache: %s %s\n", Out.Hit ? "hit" : "miss",
                  Key.str().c_str());
      Status Saved = PC.saveSnapshot(CachePath);
      if (!Saved.ok())
        std::fprintf(stderr, "%s\n", Saved.diagnostic().str().c_str());
      Cached = Out.Plan;
    } else {
      OwnedPlan = std::make_unique<ParallelPlan>(
          ParallelPlan::build(P, Chain, Params, Opts));
    }
    const ParallelPlan &Plan = Cached ? Cached->Plan : *OwnedPlan;
    for (const Diagnostic &D : Plan.diags())
      std::fprintf(stderr, "%s\n", D.str().c_str());
    std::printf("plan: %s\n", Plan.summary().c_str());
    if (Plan.partition().OK) {
      // Task-granularity stats: how coarse the DAG is relative to the full
      // chain, and what each task amortizes.
      const BlockPartition &Part = Plan.partition();
      double AvgSegs =
          Part.Tasks.empty()
              ? 0.0
              : static_cast<double>(Part.totalSegments()) /
                    static_cast<double>(Part.Tasks.size());
      std::printf("task graph: %zu %s over %u of %u chain factor(s); "
                  "%llu segment(s), avg %.1f max %zu per task; "
                  "dag-build %.2f ms (partition %.2f ms)\n",
                  Part.Tasks.size(),
                  Plan.hierarchical() ? "outer task(s)" : "block task(s)",
                  Plan.taskFactors(), Plan.totalFactors(),
                  static_cast<unsigned long long>(Part.totalSegments()),
                  AvgSegs, Part.maxSegmentsPerTask(), Plan.dagBuildMs(),
                  Plan.partitionMs());
    }
    if (hasFlag(Argc, Argv, "strict") && !Plan.parallelReady()) {
      std::fprintf(stderr,
                   "--strict: refusing serial fallback execution\n");
      return 1;
    }

    ProgramInstance Inst(P, Params);
    Inst.fillRandom(1, 0.5, 1.5);
    auto Start = std::chrono::steady_clock::now();
    ParallelRunStats Stats = Plan.run(Inst, RunOpts);
    auto End = std::chrono::steady_clock::now();
    double Ms =
        std::chrono::duration<double, std::milli>(End - Start).count();
    for (const Diagnostic &D : Stats.Diags)
      std::fprintf(stderr, "%s\n", D.str().c_str());
    // Level-aware accounting: with a hierarchical plan the counters report
    // outer tasks (the rollback/retry/progress unit), not inner block
    // visits; the segment count carries the inner-level volume.
    if (Stats.TaskFactors < Stats.TotalFactors)
      std::printf("ran %llu outer task(s) [task-level %u/%u, %llu inner "
                  "segment(s)] on %u thread(s) in %.2f ms (mode=%s, "
                  "steals=%llu)\n",
                  static_cast<unsigned long long>(Stats.BlocksRun),
                  Stats.TaskFactors, Stats.TotalFactors,
                  static_cast<unsigned long long>(Stats.SegmentsRun),
                  Stats.ThreadsUsed, Ms, parallelModeName(Stats.Mode),
                  static_cast<unsigned long long>(Stats.Steals));
    else
      std::printf("ran %llu block task(s) on %u thread(s) in %.2f ms "
                  "(mode=%s, steals=%llu)\n",
                  static_cast<unsigned long long>(Stats.BlocksRun),
                  Stats.ThreadsUsed, Ms, parallelModeName(Stats.Mode),
                  static_cast<unsigned long long>(Stats.Steals));
    if (Stats.Mode != ParallelMode::SerialFallback) {
      double HomePct =
          Stats.BlocksRun == 0
              ? 0.0
              : 100.0 * static_cast<double>(Stats.HomeHits) /
                    static_cast<double>(Stats.BlocksRun);
      std::printf("locality: domains=%u (x%u workers) home-hits=%llu "
                  "(%.1f%%) local-steals=%llu remote-steals=%llu "
                  "mailbox=%llu (+%llu fallback) bytes-migrated=%llu",
                  Stats.NumDomains, Stats.DomainSize,
                  static_cast<unsigned long long>(Stats.HomeHits), HomePct,
                  static_cast<unsigned long long>(Stats.LocalSteals),
                  static_cast<unsigned long long>(Stats.RemoteSteals),
                  static_cast<unsigned long long>(Stats.MailboxPushes),
                  static_cast<unsigned long long>(Stats.MailboxFallbacks),
                  static_cast<unsigned long long>(Stats.BytesMigrated));
      if (RunOpts.FirstTouch)
        std::printf(" first-touch-elems=%llu",
                    static_cast<unsigned long long>(Stats.FirstTouchElems));
      std::printf("\n");
    }
    if (Stats.Faults || Stats.Retries || Stats.ReplayedSerially)
      std::printf("faults=%llu retries=%llu replayed-serially=%llu "
                  "progress=%s\n",
                  static_cast<unsigned long long>(Stats.Faults),
                  static_cast<unsigned long long>(Stats.Retries),
                  static_cast<unsigned long long>(Stats.ReplayedSerially),
                  Stats.Progress.str().c_str());
    for (std::size_t B = 0; B < Stats.RetriesPerBlock.size(); ++B)
      if (Stats.RetriesPerBlock[B])
        std::printf("  %s #%zu: %u retr%s\n",
                    Stats.TaskFactors < Stats.TotalFactors ? "outer task"
                                                           : "block",
                    B, Stats.RetriesPerBlock[B],
                    Stats.RetriesPerBlock[B] == 1 ? "y" : "ies");
    if (Stats.VerifyUsed != DataVerify::Off || Stats.Integrity.PoisonedBlocks) {
      std::printf("integrity: verify-data=%s checksums-verified=%llu "
                  "corruptions-detected=%llu poisoned-blocks=%llu",
                  dataVerifyName(Stats.VerifyUsed),
                  static_cast<unsigned long long>(
                      Stats.Integrity.ChecksumsVerified),
                  static_cast<unsigned long long>(
                      Stats.Integrity.CorruptionsDetected),
                  static_cast<unsigned long long>(
                      Stats.Integrity.PoisonedBlocks));
      if (Stats.Integrity.UndoRefused)
        std::printf(" undo-refused=%llu",
                    static_cast<unsigned long long>(
                        Stats.Integrity.UndoRefused));
      if (Stats.Integrity.PristineReplays)
        std::printf(" pristine-replays=%llu",
                    static_cast<unsigned long long>(
                        Stats.Integrity.PristineReplays));
      std::printf("\n");
    }
    if (Stats.Failed) {
      if (Stats.Integrity.PoisonedBlocks)
        std::fprintf(stderr,
                     "run: %llu block(s) quarantined for poisoned data; "
                     "their results are withheld, not silently wrong\n",
                     static_cast<unsigned long long>(
                         Stats.Integrity.PoisonedBlocks));
      else
        std::fprintf(stderr, "run: a block failed every recovery attempt; "
                             "results are unreliable\n");
      return 1;
    }
    if (Spec.Flops)
      std::printf("%.1f MFlops\n", Spec.Flops(Params) / (Ms * 1e3));
    if (hasFlag(Argc, Argv, "verify")) {
      ProgramInstance Ref(P, Params);
      Ref.fillRandom(1, 0.5, 1.5);
      Plan.runSerial(Ref);
      if (!Ref.bitwiseEqual(Inst)) {
        std::fprintf(stderr, "verify: parallel result differs from serial "
                             "shackled execution\n");
        return 2;
      }
      std::printf("verify: bitwise-identical to serial execution\n");
    }
    return 0;
  }

  return usage();
}
