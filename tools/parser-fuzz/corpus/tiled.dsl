param N
array C[N][N] tiled(8, 4)
array A[N][N] rowmajor
do I = 0, N-1
  do J = 0, N-1
    C[I][J] = 0.5 * C[I][J] + 1.25e-1 * A[J][I]
  end
end
