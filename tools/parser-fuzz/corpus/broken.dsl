param N
array A[N
do i = 0, N-1
  A[i] = B[j] @ 99999999999999999999
