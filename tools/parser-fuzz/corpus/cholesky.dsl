# Right-looking Cholesky, paper Figure 1(ii).
param N
array A[N][N] colmajor

do J = 0, N-1
  S1: A[J][J] = sqrt(A[J][J])
  do I = J+1, N-1
    S2: A[I][J] = A[I][J] / A[J][J]
  end
  do L = J+1, N-1
    do K = J+1, L
      S3: A[L][K] = A[L][K] - A[L][J]*A[K][J]
    end
  end
end
