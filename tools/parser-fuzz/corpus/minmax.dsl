param N
param M
array b[N]
do i = max(0, 3-N), min(N-1, M+4)
  b[N-1-i] = b[N-1-i] + b[2*i - i] - (-(b[i]))
end
