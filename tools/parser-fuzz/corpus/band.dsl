param N
param bw
array A[N][N] band(bw)
do J = 0, N-1
  A[J][J] = sqrt(A[J][J])
  do I = J+1, min(N-1, J+bw)
    A[I][J] = A[I][J] / A[J][J]
  end
end
