//===- fuzz_parser.cpp - DSL parser fuzz harness -------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The front end's robustness contract: *no* byte sequence may crash, abort
// or hang the parser — malformed input must come back as a ParseResult
// diagnostic (see DESIGN.md, "Failure policy").
//
// Two build modes share one entry point:
//
//  * -DSHACKLE_ENABLE_FUZZER=ON (Clang only): a libFuzzer target; run as
//      parser-fuzz tools/parser-fuzz/corpus
//    for coverage-guided fuzzing.
//  * default: a deterministic standalone driver that replays the seed
//    corpus plus LCG-derived mutations (byte flips, truncations, splices)
//    of every seed; registered in ctest as a smoke test.
//
//===----------------------------------------------------------------------===//

#include "frontend/Parser.h"

#include <cstdint>
#include <cstring>
#include <string>

using namespace shackle;

namespace {

/// One fuzz iteration: parsing must never crash, and a successful parse
/// must survive pretty-printing (the CLI always prints what it parsed).
void runOneInput(const uint8_t *Data, size_t Size) {
  std::string Src(reinterpret_cast<const char *>(Data), Size);
  ParseResult R = parseProgram(Src);
  if (R)
    (void)R.Prog->str();
}

} // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t *Data, size_t Size) {
  runOneInput(Data, Size);
  return 0;
}

#ifndef SHACKLE_FUZZER_BUILD

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

namespace {

/// Deterministic xorshift generator so failures reproduce exactly.
struct Rng {
  uint64_t X;
  explicit Rng(uint64_t Seed) : X(Seed * 0x9e3779b97f4a7c15ULL + 1) {}
  uint64_t next() {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    return X;
  }
};

/// Applies 1-4 random edits to \p Input: flip a byte, insert a byte,
/// delete a span, or splice a chunk from elsewhere in the input.
std::vector<uint8_t> mutate(const std::vector<uint8_t> &Input, Rng &R) {
  std::vector<uint8_t> Out = Input;
  unsigned Edits = 1 + R.next() % 4;
  for (unsigned E = 0; E < Edits && !Out.empty(); ++E) {
    switch (R.next() % 4) {
    case 0: // Flip.
      Out[R.next() % Out.size()] = static_cast<uint8_t>(R.next());
      break;
    case 1: // Insert.
      Out.insert(Out.begin() + R.next() % (Out.size() + 1),
                 static_cast<uint8_t>(R.next()));
      break;
    case 2: { // Delete a span.
      size_t At = R.next() % Out.size();
      size_t Len = 1 + R.next() % 16;
      Out.erase(Out.begin() + At,
                Out.begin() + std::min(Out.size(), At + Len));
      break;
    }
    default: { // Splice a chunk from elsewhere.
      size_t From = R.next() % Out.size();
      size_t Len = std::min<size_t>(1 + R.next() % 32, Out.size() - From);
      size_t To = R.next() % (Out.size() + 1);
      std::vector<uint8_t> Chunk(Out.begin() + From,
                                 Out.begin() + From + Len);
      Out.insert(Out.begin() + To, Chunk.begin(), Chunk.end());
      break;
    }
    }
  }
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr,
                 "usage: parser-fuzz <corpus-dir> [mutations-per-seed]\n");
    return 1;
  }
  unsigned long Mutations = Argc > 2 ? std::strtoul(Argv[2], nullptr, 10) : 500;

  std::vector<std::vector<uint8_t>> Seeds;
  for (const auto &Entry : std::filesystem::directory_iterator(Argv[1])) {
    if (!Entry.is_regular_file())
      continue;
    std::ifstream In(Entry.path(), std::ios::binary);
    Seeds.emplace_back(std::istreambuf_iterator<char>(In),
                       std::istreambuf_iterator<char>());
  }
  if (Seeds.empty()) {
    std::fprintf(stderr, "parser-fuzz: no seeds in %s\n", Argv[1]);
    return 1;
  }

  uint64_t Runs = 0;
  for (size_t S = 0; S < Seeds.size(); ++S) {
    runOneInput(Seeds[S].data(), Seeds[S].size());
    ++Runs;
    Rng R(0xf0a2 + S);
    for (unsigned long M = 0; M < Mutations; ++M) {
      std::vector<uint8_t> Input = mutate(Seeds[S], R);
      runOneInput(Input.data(), Input.size());
      ++Runs;
    }
  }
  std::printf("parser-fuzz: %llu inputs parsed, no crashes\n",
              static_cast<unsigned long long>(Runs));
  return 0;
}

#endif // SHACKLE_FUZZER_BUILD
