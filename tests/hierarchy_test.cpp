//===- hierarchy_test.cpp - Hierarchical task graphs --------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The differential battery for hierarchical task graphs (DESIGN.md §10):
// multi-level shackle chains scheduled at the outer-block granularity must
// be bitwise-identical to both the flat parallel schedule and serial
// shackled execution, at every task level and thread count. Also pins the
// structural legality argument (every flat dependence edge, projected to
// the outer block coordinates, is a self-loop or a hierarchical edge), the
// automatic task-level picker, the partition/pair-scan work caps' serial
// fallback, and the per-worker memory traces feeding the cache simulator.
//
//===----------------------------------------------------------------------===//

#include "cachesim/CacheSim.h"
#include "interp/Interpreter.h"
#include "parallel/BlockDepGraph.h"
#include "parallel/ParallelExecutor.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <tuple>
#include <vector>

using namespace shackle;

namespace {

ParallelPlan buildAtLevel(const Program &P, const ShackleChain &Chain,
                          std::vector<int64_t> Params, unsigned Level) {
  ParallelPlanOptions Opts;
  Opts.TaskLevel = Level;
  return ParallelPlan::build(P, Chain, std::move(Params), Opts);
}

/// Runs \p Plan at \p Threads on a fresh copy of \p Init and checks the
/// result is bitwise-identical to serial execution of the same nest.
void expectBitwise(const ParallelPlan &Plan, const ProgramInstance &Init,
                   unsigned Threads, unsigned ExpectTaskFactors) {
  ProgramInstance Par = Init, Ser = Init;
  ParallelRunOptions Opts;
  Opts.NumThreads = Threads;
  ParallelRunStats Stats = Plan.run(Par, Opts);
  Plan.runSerial(Ser);
  EXPECT_FALSE(Stats.Failed) << Plan.summary();
  EXPECT_EQ(Stats.Mode, ParallelMode::Parallel) << Plan.summary();
  EXPECT_EQ(Stats.TaskFactors, ExpectTaskFactors);
  EXPECT_EQ(Stats.BlocksRun, Plan.partition().Tasks.size());
  EXPECT_EQ(Stats.SegmentsRun, Plan.partition().totalSegments());
  EXPECT_TRUE(Par.bitwiseEqual(Ser))
      << "threads=" << Threads << " " << Plan.summary();
}

//===----------------------------------------------------------------------===//
// Differential battery: flat vs hierarchical vs serial
//===----------------------------------------------------------------------===//

TEST(HierarchyDifferential, TwoLevelMMMEveryLevelEveryThreadCount) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 8, 4); // 4 factors.
  ProgramInstance Init(P, {16});
  Init.fillRandom(11, 0.5, 1.5);

  for (unsigned Level : {0u, 1u, 2u, 3u}) {
    ParallelPlan Plan = buildAtLevel(P, Chain, {16}, Level);
    ASSERT_TRUE(Plan.parallelReady()) << "level " << Level << ": "
                                      << Plan.summary();
    unsigned Expect = Level == 0 ? 4u : Level;
    EXPECT_EQ(Plan.taskFactors(), Expect);
    EXPECT_EQ(Plan.hierarchical(), Level != 0 && Level != 4);
    for (unsigned Threads : {1u, 2u, 4u, 8u})
      expectBitwise(Plan, Init, Threads, Expect);
  }
}

TEST(HierarchyDifferential, CholeskyProductOuterTasks) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = choleskyShackleProduct(P, 4, /*WritesFirst=*/true);
  const int64_t N = 16;
  ProgramInstance Init(P, {N});
  Init.fillRandom(23, 0.5, 1.5);
  // Diagonally dominant input keeps the factorization numerically tame.
  for (int64_t I = 0; I < N; ++I) {
    int64_t Idx[2] = {I, I};
    Init.buffer(0)[Init.offset(0, Idx)] += 3.0 * static_cast<double>(N);
  }

  for (unsigned Level : {0u, 1u}) {
    ParallelPlan Plan = buildAtLevel(P, Chain, {N}, Level);
    ASSERT_TRUE(Plan.parallelReady()) << "level " << Level << ": "
                                      << Plan.summary();
    unsigned Expect = Level == 0 ? 2u : Level;
    for (unsigned Threads : {1u, 2u, 4u, 8u})
      expectBitwise(Plan, Init, Threads, Expect);
  }
}

TEST(HierarchyDifferential, ADITwoLevelColumnPanels) {
  BenchSpec Spec = makeADI();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = adiShackleTwoLevel(P, 8);
  ProgramInstance Init(P, {32});
  Init.fillRandom(37, 0.5, 1.5);

  for (unsigned Level : {0u, 1u}) {
    ParallelPlan Plan = buildAtLevel(P, Chain, {32}, Level);
    ASSERT_TRUE(Plan.parallelReady()) << "level " << Level << ": "
                                      << Plan.summary();
    unsigned Expect = Level == 0 ? 2u : Level;
    for (unsigned Threads : {1u, 2u, 4u, 8u})
      expectBitwise(Plan, Init, Threads, Expect);
  }
  // ADI's dependences flow along rows within one column, so the column
  // panels of the outer factor are fully independent: the hierarchical DAG
  // collapses to isolated nodes while the flat DAG is edge-dense.
  ParallelPlan Flat = buildAtLevel(P, Chain, {32}, 0);
  ParallelPlan Hier = buildAtLevel(P, Chain, {32}, 1);
  EXPECT_GT(Flat.graph().NumEdges, 0u);
  EXPECT_EQ(Hier.graph().NumEdges, 0u);
  EXPECT_GE(Flat.graph().numBlocks(), 8 * Hier.graph().numBlocks());
}

//===----------------------------------------------------------------------===//
// DAG coarsening: structural properties
//===----------------------------------------------------------------------===//

/// Every flat-DAG edge, projected to the hierarchical graph's outer block
/// coordinates, must be a self-loop (both endpoints in the same outer task,
/// ordered by the serial in-task segment replay) or an edge of the
/// hierarchical DAG (ordered by the scheduler). This is the legality of
/// coarsening: no flat dependence escapes the hierarchical ordering.
void expectCoarseningCovers(const ParallelPlan &Flat,
                            const ParallelPlan &Hier) {
  ASSERT_TRUE(Flat.parallelReady());
  ASSERT_TRUE(Hier.parallelReady());
  const BlockDepGraph &FG = Flat.graph(), &HG = Hier.graph();
  unsigned PD = HG.NumBlockDims;
  ASSERT_LE(PD, FG.NumBlockDims);

  std::map<std::vector<int64_t>, uint32_t> HIdx;
  for (uint32_t I = 0; I < HG.numBlocks(); ++I)
    HIdx[HG.Coords[I]] = I;

  uint64_t Checked = 0, SelfLoops = 0;
  for (uint32_t U = 0; U < FG.numBlocks(); ++U) {
    std::vector<int64_t> PU(FG.Coords[U].begin(), FG.Coords[U].begin() + PD);
    for (uint32_t V : FG.Succs[U]) {
      ++Checked;
      std::vector<int64_t> PV(FG.Coords[V].begin(),
                              FG.Coords[V].begin() + PD);
      if (PU == PV) {
        ++SelfLoops;
        continue;
      }
      auto FromIt = HIdx.find(PU), ToIt = HIdx.find(PV);
      ASSERT_NE(FromIt, HIdx.end());
      ASSERT_NE(ToIt, HIdx.end());
      const std::vector<uint32_t> &Succs = HG.Succs[FromIt->second];
      EXPECT_NE(std::find(Succs.begin(), Succs.end(), ToIt->second),
                Succs.end())
          << "flat edge " << U << "->" << V
          << " projects to a missing hierarchical edge";
    }
  }
  // The check must have exercised real edges to mean anything.
  EXPECT_GT(Checked, 0u);
  EXPECT_LT(SelfLoops, Checked);
}

TEST(HierarchyCoarsening, MMMFlatEdgesProjectIntoHierarchicalDag) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 8, 4);
  expectCoarseningCovers(buildAtLevel(P, Chain, {16}, 0),
                         buildAtLevel(P, Chain, {16}, 2));
}

TEST(HierarchyCoarsening, ADIFlatEdgesProjectIntoHierarchicalDag) {
  BenchSpec Spec = makeADI();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = adiShackleTwoLevel(P, 4);
  // All flat edges stay within one column panel here, so the projected
  // check degenerates to self-loops only; relax the self-loop bound by
  // checking coordinates directly.
  ParallelPlan Flat = buildAtLevel(P, Chain, {16}, 0);
  ParallelPlan Hier = buildAtLevel(P, Chain, {16}, 1);
  ASSERT_TRUE(Flat.parallelReady());
  ASSERT_TRUE(Hier.parallelReady());
  unsigned PD = Hier.graph().NumBlockDims;
  uint64_t Checked = 0;
  for (uint32_t U = 0; U < Flat.graph().numBlocks(); ++U)
    for (uint32_t V : Flat.graph().Succs[U]) {
      ++Checked;
      std::vector<int64_t> PU(Flat.graph().Coords[U].begin(),
                              Flat.graph().Coords[U].begin() + PD);
      std::vector<int64_t> PV(Flat.graph().Coords[V].begin(),
                              Flat.graph().Coords[V].begin() + PD);
      EXPECT_EQ(PU, PV) << "cross-panel dependence in ADI";
    }
  EXPECT_GT(Checked, 0u);
}

TEST(HierarchyCoarsening, PrefixBlockDimsSumLeadingFactors) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 8, 4);
  ASSERT_EQ(Chain.Factors.size(), 4u); // C@8, A@8, C@4, A@4 - 2 planes each.
  EXPECT_EQ(Chain.numBlockDims(), 8u);
  EXPECT_EQ(Chain.numBlockDimsPrefix(1), 2u);
  EXPECT_EQ(Chain.numBlockDimsPrefix(2), 4u);
  EXPECT_EQ(Chain.numBlockDimsPrefix(3), 6u);
  EXPECT_EQ(Chain.numBlockDimsPrefix(4), 8u);
  // 0 and out-of-range mean "the whole chain".
  EXPECT_EQ(Chain.numBlockDimsPrefix(0), 8u);
  EXPECT_EQ(Chain.numBlockDimsPrefix(9), 8u);

  // The plan's graph and partition range over exactly the prefix dims.
  ParallelPlan Plan = buildAtLevel(P, Chain, {16}, 2);
  ASSERT_TRUE(Plan.parallelReady());
  EXPECT_EQ(Plan.graph().NumBlockDims, 4u);
  for (const BlockTask &T : Plan.partition().Tasks)
    EXPECT_EQ(T.Coords.size(), 4u);
}

//===----------------------------------------------------------------------===//
// Automatic task level
//===----------------------------------------------------------------------===//

TEST(HierarchyAuto, PicksCoarsestLevelWithEnoughTasks) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 8, 4);
  ParallelPlanOptions Opts;
  Opts.AutoTaskLevel = true;
  Opts.ThreadsHint = 4; // Wants >= 16 tasks.
  ParallelPlan Plan = ParallelPlan::build(P, Chain, {32}, Opts);
  ASSERT_TRUE(Plan.parallelReady()) << Plan.summary();
  // Level 1 (C's outer blocks alone) already yields (32/8)^2 = 16 tasks,
  // so auto stops there instead of descending to finer levels.
  EXPECT_EQ(Plan.taskFactors(), 1u);
  EXPECT_GE(Plan.partition().Tasks.size(), 16u);
  EXPECT_TRUE(Plan.hierarchical());

  // The auto plan still executes bitwise-identically.
  ProgramInstance Init(P, {32});
  Init.fillRandom(5, 0.5, 1.5);
  expectBitwise(Plan, Init, 4, 1u);
}

//===----------------------------------------------------------------------===//
// Work caps: degrade to serial, never explode
//===----------------------------------------------------------------------===//

TEST(HierarchyCaps, MaxTasksOverflowFallsBackToSerial) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 8, 4);
  ParallelPlanOptions Opts;
  Opts.MaxTasks = 8; // The flat partition has 64 tasks at N=16.
  ParallelPlan Plan = ParallelPlan::build(P, Chain, {16}, Opts);
  EXPECT_FALSE(Plan.parallelReady());
  EXPECT_FALSE(Plan.partition().OK);
  EXPECT_NE(Plan.partition().FailReason.find("cap"), std::string::npos)
      << Plan.partition().FailReason;
  EXPECT_FALSE(Plan.diags().empty());

  // Execution still succeeds (serial fallback), bitwise-identical.
  ProgramInstance Par(P, {16}), Ser(P, {16});
  Par.fillRandom(9, 0.5, 1.5);
  Ser = Par;
  ParallelRunStats Stats = Plan.run(Par, 4);
  Plan.runSerial(Ser);
  EXPECT_EQ(Stats.Mode, ParallelMode::SerialFallback);
  EXPECT_FALSE(Stats.Failed);
  EXPECT_TRUE(Par.bitwiseEqual(Ser));
}

TEST(HierarchyCaps, MaxPairVisitsOverflowFallsBackToSerial) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 8, 4);
  ParallelPlanOptions Opts;
  // The flat pair scan needs 64*63/2 = 2016 visits; the level-2 scan only
  // 8*7/2 = 28. A cap between the two kills flat and spares hierarchical.
  Opts.MaxPairVisits = 100;
  ParallelPlan Plan = ParallelPlan::build(P, Chain, {16}, Opts);
  EXPECT_FALSE(Plan.parallelReady());
  EXPECT_TRUE(Plan.graph().WorkCapHit);

  ProgramInstance Par(P, {16}), Ser(P, {16});
  Par.fillRandom(13, 0.5, 1.5);
  Ser = Par;
  ParallelRunStats Stats = Plan.run(Par, 4);
  Plan.runSerial(Ser);
  EXPECT_EQ(Stats.Mode, ParallelMode::SerialFallback);
  EXPECT_TRUE(Par.bitwiseEqual(Ser));

  // A coarser task level shrinks the scan under the same cap.
  Opts.TaskLevel = 2;
  ParallelPlan Coarse = ParallelPlan::build(P, Chain, {16}, Opts);
  EXPECT_TRUE(Coarse.parallelReady()) << Coarse.summary();
}

//===----------------------------------------------------------------------===//
// Per-worker traces and cache simulation of the parallel traversal
//===----------------------------------------------------------------------===//

using Access = std::tuple<unsigned, int64_t, bool>;

struct TraceCollector {
  std::vector<std::vector<Access>> PerWorker;
  std::vector<TraceFn> Sinks;

  explicit TraceCollector(unsigned Workers) : PerWorker(Workers) {
    for (unsigned W = 0; W < Workers; ++W)
      Sinks.push_back([this, W](unsigned ArrayId, int64_t Off, bool IsWrite) {
        PerWorker[W].emplace_back(ArrayId, Off, IsWrite);
      });
  }

  std::vector<Access> merged() const {
    std::vector<Access> All;
    for (const std::vector<Access> &V : PerWorker)
      All.insert(All.end(), V.begin(), V.end());
    std::sort(All.begin(), All.end());
    return All;
  }
};

TEST(HierarchyTrace, WorkerTracesCoverTheSerialAccessMultiset) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 8, 4);
  ParallelPlan Plan = buildAtLevel(P, Chain, {16}, 2);
  ASSERT_TRUE(Plan.parallelReady());

  ProgramInstance Init(P, {16});
  Init.fillRandom(31, 0.5, 1.5);

  std::vector<Access> SerialAccesses;
  {
    ProgramInstance Ser = Init;
    TraceFn Trace = [&](unsigned ArrayId, int64_t Off, bool IsWrite) {
      SerialAccesses.emplace_back(ArrayId, Off, IsWrite);
    };
    runLoopNest(Plan.nest(), Ser, &Trace);
  }
  ASSERT_FALSE(SerialAccesses.empty());
  std::vector<Access> SerialSorted = SerialAccesses;
  std::sort(SerialSorted.begin(), SerialSorted.end());

  for (unsigned Threads : {1u, 4u}) {
    ProgramInstance Par = Init;
    TraceCollector Collector(Threads);
    ParallelRunOptions Opts;
    Opts.NumThreads = Threads;
    Opts.WorkerTraces = &Collector.Sinks;
    ParallelRunStats Stats = Plan.run(Par, Opts);
    EXPECT_FALSE(Stats.Failed);
    // Same accesses, same read/write mix - only the interleaving differs.
    EXPECT_EQ(Collector.merged(), SerialSorted) << "threads=" << Threads;
  }
}

TEST(HierarchyTrace, CacheSimMissesComparableSerialVsHierarchical) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 8, 4);
  ParallelPlan Plan = buildAtLevel(P, Chain, {16}, 2);
  ASSERT_TRUE(Plan.parallelReady());

  ProgramInstance Init(P, {16});
  Init.fillRandom(43, 0.5, 1.5);
  auto Address = [](unsigned ArrayId, int64_t Off) {
    return (static_cast<uint64_t>(ArrayId + 1) << 33) +
           static_cast<uint64_t>(Off) * sizeof(double);
  };
  std::vector<CacheConfig> Configs = {{"L1", 32 * 1024, 64, 4},
                                      {"L2", 256 * 1024, 64, 8}};

  CacheHierarchy Serial(Configs);
  {
    ProgramInstance Ser = Init;
    TraceFn Trace = [&](unsigned ArrayId, int64_t Off, bool) {
      Serial.access(Address(ArrayId, Off));
    };
    runLoopNest(Plan.nest(), Ser, &Trace);
  }

  // One worker: the parallel traversal is a topological reordering of the
  // same blocks, so its locality profile must stay in the same regime as
  // the serial shackled order.
  CacheHierarchy Parallel(Configs);
  {
    ProgramInstance Par = Init;
    std::vector<TraceFn> Sinks;
    Sinks.push_back([&](unsigned ArrayId, int64_t Off, bool) {
      Parallel.access(Address(ArrayId, Off));
    });
    ParallelRunOptions Opts;
    Opts.NumThreads = 1;
    Opts.WorkerTraces = &Sinks;
    ParallelRunStats Stats = Plan.run(Par, Opts);
    EXPECT_FALSE(Stats.Failed);
  }

  EXPECT_EQ(Parallel.accesses(), Serial.accesses());
  for (unsigned L = 0; L < 2; ++L) {
    uint64_t MS = Serial.level(L).misses(), MP = Parallel.level(L).misses();
    EXPECT_LE(MP, 2 * MS + 64) << "level " << L;
    EXPECT_LE(MS, 2 * MP + 64) << "level " << L;
  }
}

} // namespace
