//===- multipass_test.cpp - Multi-sweep block traversal ------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"
#include "runtime/MultiPass.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

TEST(MultiPass, SeidelSingleSweepIsIllegal) {
  BenchSpec Spec = makeSeidel1D();
  const Program &P = *Spec.Prog;
  EXPECT_FALSE(checkLegality(P, seidelShackle(P, 8)).Legal);
}

class SeidelMultiPass
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, int64_t>> {
};

TEST_P(SeidelMultiPass, CompletesAndMatchesOriginal) {
  auto [N, T, B] = GetParam();
  BenchSpec Spec = makeSeidel1D();
  const Program &P = *Spec.Prog;

  ProgramInstance Ref(P, {N, T}), Test(P, {N, T});
  Ref.fillRandom(33, 0.0, 1.0);
  Test.buffer(0) = Ref.buffer(0);
  runLoopNest(generateOriginalCode(P), Ref);

  ShackleChain Chain = seidelShackle(P, B);
  MultiPassResult R =
      runMultiPassShackled(P, Chain.Factors[0], Test);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Instances, static_cast<uint64_t>((N - 2) * T));
  EXPECT_EQ(Ref.maxAbsDifference(Test), 0.0);
  // With T sweeps and blocks of B, the right edge of each block keeps a
  // t+1 instance waiting on the next block: more than one pass is needed
  // whenever the array spans several blocks and T > 1.
  if (T > 1 && N - 2 > B)
    EXPECT_GT(R.Passes, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SeidelMultiPass,
    ::testing::Values(std::make_tuple<int64_t>(12, 1, 4),
                      std::make_tuple<int64_t>(20, 3, 4),
                      std::make_tuple<int64_t>(33, 5, 8),
                      std::make_tuple<int64_t>(16, 4, 16),
                      std::make_tuple<int64_t>(9, 2, 2)));

TEST(MultiPass, LegalShackleCompletesInOnePass) {
  // For a shackle that is legal outright, the first sweep retires every
  // instance: multi-pass degenerates to the static schedule.
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = choleskyShackleStores(P, 4);
  ASSERT_TRUE(checkLegality(P, Chain).Legal);

  int64_t N = 13;
  ProgramInstance Ref(P, {N}), Test(P, {N});
  Ref.fillRandom(7, 0.5, 1.5);
  for (int64_t I = 0; I < N; ++I) {
    int64_t Idx[2] = {I, I};
    Ref.buffer(0)[Ref.offset(0, Idx)] += 3.0 * static_cast<double>(N);
  }
  Test.buffer(0) = Ref.buffer(0);
  runLoopNest(generateOriginalCode(P), Ref);

  MultiPassResult R = runMultiPassShackled(P, Chain.Factors[0], Test);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Passes, 1u);
  EXPECT_EQ(Ref.maxAbsDifference(Test), 0.0);
}

TEST(MultiPass, IllegalSingleShackleStillComputesCorrectResult) {
  // Multi-pass execution is correct even when the one-sweep shackle is not:
  // the paper-prose Cholesky "reads" choice with A[L,J].
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  std::vector<unsigned> RefIdx = {0, 2, 2};
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onRefs(
      P, DataBlocking::rectangular(0, {4, 4}, {1, 0}), RefIdx));
  ASSERT_FALSE(checkLegality(P, Chain).Legal);

  int64_t N = 14;
  ProgramInstance Ref(P, {N}), Test(P, {N});
  Ref.fillRandom(9, 0.5, 1.5);
  for (int64_t I = 0; I < N; ++I) {
    int64_t Idx[2] = {I, I};
    Ref.buffer(0)[Ref.offset(0, Idx)] += 3.0 * static_cast<double>(N);
  }
  Test.buffer(0) = Ref.buffer(0);
  runLoopNest(generateOriginalCode(P), Ref);

  MultiPassResult R = runMultiPassShackled(P, Chain.Factors[0], Test);
  EXPECT_TRUE(R.Completed);
  EXPECT_GT(R.Passes, 1u);
  EXPECT_EQ(Ref.maxAbsDifference(Test), 0.0);
}

TEST(MultiPass, Seidel2DCompletesAndMatches) {
  BenchSpec Spec = makeSeidel2D();
  const Program &P = *Spec.Prog;
  int64_t N = 10, T = 3;
  ProgramInstance Ref(P, {N, T}), Test(P, {N, T});
  Ref.fillRandom(21, 0.0, 1.0);
  Test.buffer(0) = Ref.buffer(0);
  runLoopNest(generateOriginalCode(P), Ref);

  DataShackle Sh =
      DataShackle::onStores(P, DataBlocking::rectangular(0, {4, 4}));
  {
    ShackleChain Chain;
    Chain.Factors.push_back(Sh);
    EXPECT_FALSE(checkLegality(P, Chain).Legal);
  }
  MultiPassResult R = runMultiPassShackled(P, Sh, Test);
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.Instances, static_cast<uint64_t>((N - 2) * (N - 2) * T));
  EXPECT_GT(R.Passes, 1u);
  EXPECT_EQ(Ref.maxAbsDifference(Test), 0.0);
}

TEST(MultiPass, MaxPassesCutoffReportsPartialProgress) {
  // A relaxation kernel needing several sweeps, capped at one: the run must
  // report Completed == false, count only what actually executed, and still
  // have retired at least the oldest pending instance (the progress property
  // that guarantees termination when passes are unbounded).
  BenchSpec Spec = makeSeidel1D();
  const Program &P = *Spec.Prog;
  int64_t N = 20, T = 3, B = 4;
  ShackleChain Chain = seidelShackle(P, B);

  ProgramInstance Full(P, {N, T});
  Full.fillRandom(33, 0.0, 1.0);
  MultiPassResult FullR = runMultiPassShackled(P, Chain.Factors[0], Full);
  ASSERT_TRUE(FullR.Completed);
  ASSERT_GT(FullR.Passes, 1u); // The cap below really cuts this run short.

  ProgramInstance Capped(P, {N, T});
  Capped.fillRandom(33, 0.0, 1.0);
  MultiPassResult R =
      runMultiPassShackled(P, Chain.Factors[0], Capped, /*MaxPasses=*/1);
  EXPECT_FALSE(R.Completed);
  EXPECT_EQ(R.Passes, 1u);
  EXPECT_EQ(R.TotalInstances, static_cast<uint64_t>((N - 2) * T));
  EXPECT_LT(R.Instances, R.TotalInstances);
  ASSERT_EQ(R.ExecutedPerPass.size(), 1u);
  EXPECT_EQ(R.ExecutedPerPass[0], R.Instances);
  // Progress property: the sweep retired the oldest pending instance (and
  // thus at least one), so repeated sweeps always terminate.
  EXPECT_GE(R.Instances, 1u);
  EXPECT_TRUE(R.OldestRetiredEachPass);
}

TEST(MultiPass, PerPassCountsSumToTotal) {
  BenchSpec Spec = makeSeidel1D();
  const Program &P = *Spec.Prog;
  int64_t N = 20, T = 3;
  ShackleChain Chain = seidelShackle(P, 4);
  ProgramInstance Inst(P, {N, T});
  Inst.fillRandom(5, 0.0, 1.0);
  MultiPassResult R = runMultiPassShackled(P, Chain.Factors[0], Inst);
  ASSERT_TRUE(R.Completed);
  EXPECT_EQ(R.Instances, R.TotalInstances);
  EXPECT_EQ(R.ExecutedPerPass.size(), R.Passes);
  uint64_t Sum = 0;
  for (uint64_t C : R.ExecutedPerPass)
    Sum += C;
  EXPECT_EQ(Sum, R.TotalInstances);
  EXPECT_TRUE(R.OldestRetiredEachPass);
}

TEST(MultiPass, PassCountGrowsWithSweeps) {
  BenchSpec Spec = makeSeidel1D();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = seidelShackle(P, 4);
  auto PassesFor = [&](int64_t T) {
    ProgramInstance Inst(P, {24, T});
    Inst.fillRandom(1, 0.0, 1.0);
    return runMultiPassShackled(P, Chain.Factors[0], Inst).Passes;
  };
  EXPECT_LE(PassesFor(1), PassesFor(3));
  EXPECT_LE(PassesFor(3), PassesFor(6));
}

} // namespace
