//===- frontend_test.cpp - DSL parser ------------------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "frontend/Parser.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

const char *CholeskySrc = R"(
# Right-looking Cholesky, paper Figure 1(ii), 0-based.
param N
array A[N][N] colmajor

do J = 0, N-1
  S1: A[J][J] = sqrt(A[J][J])
  do I = J+1, N-1
    S2: A[I][J] = A[I][J] / A[J][J]
  end
  do L = J+1, N-1
    do K = J+1, L
      S3: A[L][K] = A[L][K] - A[L][J]*A[K][J]
    end
  end
end
)";

TEST(Frontend, ParsesCholeskyIdenticalToBuiltin) {
  ParseResult R = parseProgram(CholeskySrc);
  ASSERT_TRUE(R) << R.Error;
  BenchSpec Builtin = makeCholeskyRight();
  // The same pretty-printed text implies identical structure.
  EXPECT_EQ(R.Prog->str(), Builtin.Prog->str());
  EXPECT_EQ(R.Prog->getNumStmts(), 3u);
  EXPECT_EQ(R.Prog->getNumParams(), 1u);
}

TEST(Frontend, ParsedProgramRunsAndShacklesLikeBuiltin) {
  ParseResult R = parseProgram(CholeskySrc);
  ASSERT_TRUE(R) << R.Error;
  const Program &P = *R.Prog;
  ShackleChain Chain = choleskyShackleStores(P, 8);
  ASSERT_TRUE(checkLegality(P, Chain).Legal);

  int64_t N = 21;
  ProgramInstance Ref(P, {N}), Test(P, {N});
  Ref.fillRandom(3, 0.5, 1.5);
  for (int64_t I = 0; I < N; ++I) {
    int64_t Idx[2] = {I, I};
    Ref.buffer(0)[Ref.offset(0, Idx)] += 3.0 * static_cast<double>(N);
  }
  Test.buffer(0) = Ref.buffer(0);
  runLoopNest(generateOriginalCode(P), Ref);
  runLoopNest(generateShackledCode(P, Chain), Test);
  EXPECT_EQ(Ref.maxAbsDifference(Test), 0.0);
}

TEST(Frontend, MinMaxBoundsAndBandLayout) {
  const char *Src = R"(
param N
param bw
array A[N][N] band(bw)
do J = 0, N-1
  A[J][J] = sqrt(A[J][J])
  do I = J+1, min(N-1, J+bw)
    A[I][J] = A[I][J] / A[J][J]
  end
end
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getArray(0).Layout, LayoutKind::BandLower);
  EXPECT_NE(R.Prog->str().find("min(N - 1, bw + J)"), std::string::npos);
  // Auto-generated labels.
  EXPECT_EQ(R.Prog->getStmt(0).Label, "S1");
  EXPECT_EQ(R.Prog->getStmt(1).Label, "S2");
}

TEST(Frontend, TiledLayoutAndFloats) {
  const char *Src = R"(
param N
array C[N][N] tiled(8, 4)
do I = 0, N-1
  C[I][I] = 0.5 * C[I][I] + 1.25e-1
end
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R) << R.Error;
  EXPECT_EQ(R.Prog->getArray(0).Layout, LayoutKind::TiledRowMajor);
  EXPECT_EQ(R.Prog->getArray(0).TileRows, 8);
  EXPECT_EQ(R.Prog->getArray(0).TileCols, 4);
  ProgramInstance Inst(*R.Prog, {8});
  Inst.fillRandom(1, 1.0, 1.0); // All ones.
  runLoopNest(generateOriginalCode(*R.Prog), Inst);
  int64_t Idx[2] = {3, 3};
  EXPECT_DOUBLE_EQ(Inst.buffer(0)[Inst.offset(0, Idx)], 0.625);
}

TEST(Frontend, NegativeCoefficientsAndScaledVars) {
  const char *Src = R"(
param N
array b[N]
do i = 0, N-1
  b[N-1-i] = b[N-1-i] + b[2*i - i]
end
)";
  ParseResult R = parseProgram(Src);
  ASSERT_TRUE(R) << R.Error;
  // N - 1 - i prints in variable order; 2*i - i folds to i.
  EXPECT_NE(R.Prog->str().find("b[N - i - 1]"), std::string::npos)
      << R.Prog->str();
  EXPECT_NE(R.Prog->str().find("+ b[i])"), std::string::npos)
      << R.Prog->str();
}

struct ErrorCase {
  const char *Src;
  const char *Fragment; ///< Expected substring of the error.
};

class FrontendErrors : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(FrontendErrors, RejectsWithDiagnostic) {
  ParseResult R = parseProgram(GetParam().Src);
  ASSERT_FALSE(R) << "parsed unexpectedly";
  EXPECT_NE(R.Error.find(GetParam().Fragment), std::string::npos)
      << R.Error;
  EXPECT_NE(R.Error.find("line "), std::string::npos) << R.Error;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, FrontendErrors,
    ::testing::Values(
        ErrorCase{"param N\narray A[N]\ndo i = 0, N-1\nA[i] = B[i]\nend",
                  "unknown array"},
        ErrorCase{"param N\narray A[N]\nA[j] = 1", "unknown variable"},
        ErrorCase{"param N\narray A[N]\ndo i = 0, N-1\nA[i] = 1\n",
                  "expected 'end'"},
        ErrorCase{"param N\narray A[N]\ndo i = min(0, 1), N-1\nA[i] = 1\nend",
                  "lower bounds take max"},
        ErrorCase{"param N\narray A[N]\ndo i = 0, max(N-1, 5)\nA[i] = 1\nend",
                  "upper bounds take min"},
        ErrorCase{"param N\narray A[N][N]\nA[0] = 1",
                  "wrong number of subscripts"},
        ErrorCase{"param N\nparam N", "redefinition"},
        ErrorCase{"param N\narray A[N]\ndo N = 0, 5\nA[0] = 1\nend",
                  "shadows"},
        ErrorCase{"param N\narray A[N]\nA[i+1] = 1", "unknown variable"}));

TEST(FrontendErrors, StrayCharacterCarriesLineAndColumn) {
  ParseResult R = parseProgram(
      "param N\narray A[N]\ndo i = 0, N-1\n  A[i] = 1 @ 2\nend\n");
  ASSERT_FALSE(R);
  EXPECT_EQ(R.Diag.Code, DiagCode::ParseError);
  EXPECT_EQ(R.Diag.Loc.Line, 4u);
  EXPECT_EQ(R.Diag.Loc.Col, 12u);
  EXPECT_NE(R.Error.find("unexpected character '@'"), std::string::npos)
      << R.Error;
  EXPECT_NE(R.Error.find("col 12"), std::string::npos) << R.Error;
}

TEST(FrontendErrors, OverflowingIntegerLiteralIsRejected) {
  ParseResult R = parseProgram(
      "param N\narray A[N]\ndo i = 0, N-1\n"
      "  A[i] = A[i] + 99999999999999999999\nend\n");
  ASSERT_FALSE(R);
  EXPECT_EQ(R.Diag.Code, DiagCode::ParseError);
  EXPECT_NE(R.Error.find("does not fit in 64 bits"), std::string::npos)
      << R.Error;
}

TEST(FrontendErrors, TrailingGarbageAfterProgramIsAnError) {
  // A stray character after a complete program used to be silently treated
  // as end-of-input; it must be a diagnostic.
  ParseResult R =
      parseProgram("param N\narray A[N]\ndo i = 0, N-1\n  A[i] = 1\nend\n$");
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("unexpected character '$'"), std::string::npos)
      << R.Error;
  EXPECT_EQ(R.Diag.Loc.Line, 6u);
}

TEST(Frontend, AffineRejectsVariableTimesVariable) {
  const char *Src = "param N\narray A[N]\ndo i = 0, N-1\nA[i*N] = 1\nend";
  ParseResult R = parseProgram(Src);
  ASSERT_FALSE(R);
  EXPECT_NE(R.Error.find("constant coefficients"), std::string::npos)
      << R.Error;
}

} // namespace
