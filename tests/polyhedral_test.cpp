//===- polyhedral_test.cpp - Polyhedra, FM, Omega test, set ops ---------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Unit and property tests for the polyhedral substrate. The property tests
// compare against brute-force enumeration over a bounding box, which is the
// ground truth the Omega test and Fourier-Motzkin must agree with.
//
//===----------------------------------------------------------------------===//

#include "polyhedral/OmegaTest.h"
#include "polyhedral/Polyhedron.h"
#include "polyhedral/SetOps.h"
#include "polyhedral/Simplify.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <vector>

using namespace shackle;

namespace {

/// Deterministic pseudo-random generator for property tests.
struct Rng {
  uint64_t X;
  explicit Rng(uint64_t Seed) : X(Seed * 2654435761u + 1) {}
  uint64_t next() {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    return X;
  }
  int64_t range(int64_t Lo, int64_t Hi) { // Inclusive.
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
};

/// Enumerates all points of [-Box, Box]^NumVars satisfying P.
std::vector<std::vector<int64_t>> enumerate(const Polyhedron &P,
                                            int64_t Box) {
  std::vector<std::vector<int64_t>> Points;
  std::vector<int64_t> Cur(P.getNumVars(), -Box);
  std::function<void(unsigned)> Rec = [&](unsigned D) {
    if (D == P.getNumVars()) {
      if (P.containsPoint(Cur))
        Points.push_back(Cur);
      return;
    }
    for (int64_t V = -Box; V <= Box; ++V) {
      Cur[D] = V;
      Rec(D + 1);
    }
  };
  Rec(0);
  return Points;
}

/// Builds a random conjunction of constraints within a small box.
Polyhedron randomPoly(Rng &R, unsigned NumVars, unsigned NumCons,
                      int64_t Box) {
  Polyhedron P(NumVars);
  for (unsigned V = 0; V < NumVars; ++V)
    P.addBounds(V, -Box, Box);
  for (unsigned I = 0; I < NumCons; ++I) {
    ConstraintRow Row(NumVars + 1, 0);
    for (unsigned V = 0; V < NumVars; ++V)
      Row[V] = R.range(-3, 3);
    Row[NumVars] = R.range(-6, 6);
    if (R.range(0, 3) == 0)
      P.addEquality(std::move(Row));
    else
      P.addInequality(std::move(Row));
  }
  return P;
}

//===----------------------------------------------------------------------===//
// Basics
//===----------------------------------------------------------------------===//

TEST(Polyhedron, ContainsPoint) {
  Polyhedron P(2);
  P.addInequalityTerms({{0, 1}}, 0);           // x >= 0
  P.addInequalityTerms({{1, 1}, {0, -1}}, 0);  // y >= x
  EXPECT_TRUE(P.containsPoint({0, 0}));
  EXPECT_TRUE(P.containsPoint({2, 5}));
  EXPECT_FALSE(P.containsPoint({-1, 0}));
  EXPECT_FALSE(P.containsPoint({3, 2}));
}

TEST(Polyhedron, NormalizeTightensGcd) {
  // 2x - 3 >= 0 has integer solutions x >= 2.
  Polyhedron P(1);
  P.addInequalityTerms({{0, 2}}, -3);
  ASSERT_TRUE(P.normalize());
  ASSERT_EQ(P.getNumInequalities(), 1u);
  // Tightened to x - 2 >= 0.
  EXPECT_EQ(P.getInequality(0)[0], 1);
  EXPECT_EQ(P.getInequality(0)[1], -2);
}

TEST(Polyhedron, NormalizeDetectsGcdInfeasibleEquality) {
  // 2x == 5 has no integer solution.
  Polyhedron P(1);
  P.addEqualityTerms({{0, 2}}, -5);
  EXPECT_FALSE(P.normalize());
  EXPECT_TRUE(P.isObviouslyEmpty());
}

TEST(Polyhedron, NormalizeCoalescesComplementaryPairs) {
  Polyhedron P(2);
  P.addInequalityTerms({{0, 1}, {1, -1}}, 0); // x - y >= 0
  P.addInequalityTerms({{0, -1}, {1, 1}}, 0); // y - x >= 0
  ASSERT_TRUE(P.normalize());
  EXPECT_EQ(P.getNumEqualities(), 1u);
  EXPECT_EQ(P.getNumInequalities(), 0u);
}

TEST(Polyhedron, StickyEmptinessSurvivesSubstitution) {
  // x == y and y >= x + 1: substitution discharges to 0 >= 1.
  Polyhedron P(2);
  P.addEqualityTerms({{0, 1}, {1, -1}}, 0);
  P.addInequalityTerms({{1, 1}, {0, -1}}, -1);
  ConstraintRow Def(3, 0);
  Def[1] = 1; // x := y
  P.substitute(0, Def);
  EXPECT_TRUE(P.isObviouslyEmpty());
}

TEST(Polyhedron, AppendVarExtendsRows) {
  Polyhedron P(1);
  P.addInequalityTerms({{0, 1}}, -1);
  unsigned Y = P.appendVar("y");
  EXPECT_EQ(P.getNumVars(), 2u);
  EXPECT_EQ(P.getInequality(0).size(), 3u);
  EXPECT_EQ(P.getInequality(0)[Y], 0);
  EXPECT_EQ(P.getInequality(0).back(), -1);
}

TEST(Polyhedron, NegateInequality) {
  // not(x - 3 >= 0) == (-x + 2 >= 0), i.e. x <= 2.
  ConstraintRow Row = {1, -3};
  ConstraintRow Neg = negateInequality(Row);
  EXPECT_EQ(Neg[0], -1);
  EXPECT_EQ(Neg[1], 2);
}

//===----------------------------------------------------------------------===//
// Fourier-Motzkin projection vs brute force
//===----------------------------------------------------------------------===//

class FMProperty : public ::testing::TestWithParam<int> {};

TEST_P(FMProperty, ProjectionMatchesBruteForce) {
  Rng R(GetParam());
  const int64_t Box = 4;
  Polyhedron P = randomPoly(R, 3, 3, Box);

  // Ground truth: which (x0, x1) have some x2 in the box?
  std::vector<std::vector<int64_t>> Points = enumerate(P, Box);
  auto HasWitness = [&](int64_t A, int64_t B) {
    for (const auto &Pt : Points)
      if (Pt[0] == A && Pt[1] == B)
        return true;
    return false;
  };

  Polyhedron Proj = P.project(2);
  // FM (rational) over-approximates the integer projection, and equals it
  // when eliminations are exact. We check soundness (no projected point is
  // lost) always.
  for (int64_t A = -Box; A <= Box; ++A)
    for (int64_t B = -Box; B <= Box; ++B)
      if (HasWitness(A, B))
        EXPECT_TRUE(Proj.containsPoint({A, B}))
            << "lost (" << A << "," << B << ")";
}

INSTANTIATE_TEST_SUITE_P(Seeds, FMProperty, ::testing::Range(1, 40));

//===----------------------------------------------------------------------===//
// Omega test vs brute force
//===----------------------------------------------------------------------===//

class OmegaProperty : public ::testing::TestWithParam<int> {};

TEST_P(OmegaProperty, EmptinessMatchesBruteForce) {
  Rng R(GetParam() * 977);
  const int64_t Box = 4;
  // Random systems bounded to the box, so brute force is exact ground truth.
  Polyhedron P = randomPoly(R, 3, 4, Box);
  bool BruteEmpty = enumerate(P, Box).empty();
  EXPECT_EQ(isIntegerEmpty(P), BruteEmpty) << P.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OmegaProperty, ::testing::Range(1, 120));

TEST(OmegaTest, KnownRationalButNotIntegerFeasible) {
  // 1 <= 2x <= 1 has the rational solution x = 0.5 but no integer one.
  Polyhedron P(1);
  P.addInequalityTerms({{0, 2}}, -1);
  P.addInequalityTerms({{0, -2}}, 1);
  EXPECT_TRUE(isIntegerEmpty(P));

  // 3 <= 3x <= 5: rational interval [1, 5/3] contains the integer 1.
  Polyhedron Q(1);
  Q.addInequalityTerms({{0, 3}}, -3);
  Q.addInequalityTerms({{0, -3}}, 5);
  EXPECT_FALSE(isIntegerEmpty(Q));
}

TEST(OmegaTest, DarkShadowInexactCase) {
  // The classic: 0 <= x, 3x <= y, y <= 3x + 2, 5 <= y <= 7 combined with
  // y != 6-ish structures force splintering in textbook examples; here a
  // direct instance: 7 <= 3x + 5z <= 8 with 0 <= x,z <= 10 — solutions?
  // 3x + 5z = 7 (x=4? 3*4=12 no..) => x = 4, z = -1 invalid; z = 2, 3x = -3
  // invalid... x=0,z=? 5z in [7,8] no; z=1, 3x in [2,3] -> x=1 works (3+5=8).
  Polyhedron P(2);
  P.addBounds(0, 0, 10);
  P.addBounds(1, 0, 10);
  P.addInequalityTerms({{0, 3}, {1, 5}}, -7);
  P.addInequalityTerms({{0, -3}, {1, -5}}, 8);
  EXPECT_FALSE(isIntegerEmpty(P));
}

TEST(OmegaTest, EqualityEliminationWithLargeCoefficients) {
  // 7x + 12y == 13, -100 <= x,y <= 100: x = 7, y = -3 works (49 - 36 = 13).
  Polyhedron P(2);
  P.addBounds(0, -100, 100);
  P.addBounds(1, -100, 100);
  P.addEqualityTerms({{0, 7}, {1, 12}}, -13);
  EXPECT_FALSE(isIntegerEmpty(P));
  // 6x + 9y == 13: gcd 3 does not divide 13.
  Polyhedron Q(2);
  Q.addBounds(0, -100, 100);
  Q.addBounds(1, -100, 100);
  Q.addEqualityTerms({{0, 6}, {1, 9}}, -13);
  EXPECT_TRUE(isIntegerEmpty(Q));
}

TEST(OmegaTest, UnboundedSystems) {
  Polyhedron P(2); // x >= 10, y <= -3, no other bounds.
  P.addInequalityTerms({{0, 1}}, -10);
  P.addInequalityTerms({{1, -1}}, -3);
  EXPECT_FALSE(isIntegerEmpty(P));
}

TEST(OmegaTest, SubsetAndDisjoint) {
  Polyhedron Small(1), Big(1), Other(1);
  Small.addBounds(0, 2, 4);
  Big.addBounds(0, 0, 10);
  Other.addBounds(0, 7, 9);
  EXPECT_TRUE(isSubsetOf(Small, Big));
  EXPECT_FALSE(isSubsetOf(Big, Small));
  EXPECT_TRUE(isDisjoint(Small, Other));
  EXPECT_FALSE(isDisjoint(Big, Other));
}

//===----------------------------------------------------------------------===//
// Set difference
//===----------------------------------------------------------------------===//

class SubtractProperty : public ::testing::TestWithParam<int> {};

TEST_P(SubtractProperty, PiecesAreDisjointAndCoverExactly) {
  Rng R(GetParam() * 31337);
  const int64_t Box = 3;
  Polyhedron A = randomPoly(R, 2, 2, Box);
  Polyhedron B = randomPoly(R, 2, 2, Box);
  std::vector<Polyhedron> Pieces = subtract(A, B);

  for (int64_t X = -Box; X <= Box; ++X) {
    for (int64_t Y = -Box; Y <= Box; ++Y) {
      std::vector<int64_t> Pt = {X, Y};
      bool InDiff = A.containsPoint(Pt) && !B.containsPoint(Pt);
      unsigned Count = 0;
      for (const Polyhedron &Piece : Pieces)
        if (Piece.containsPoint(Pt))
          ++Count;
      EXPECT_EQ(Count, InDiff ? 1u : 0u)
          << "point (" << X << "," << Y << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubtractProperty, ::testing::Range(1, 60));

//===----------------------------------------------------------------------===//
// Simplification
//===----------------------------------------------------------------------===//

TEST(Simplify, RemovesRedundantInequalities) {
  Polyhedron P(1);
  P.addBounds(0, 0, 10);
  P.addInequalityTerms({{0, 1}}, 5);   // x >= -5, implied by x >= 0.
  P.addInequalityTerms({{0, -1}}, 20); // x <= 20, implied by x <= 10.
  removeRedundantInequalities(P);
  EXPECT_EQ(P.getNumInequalities(), 2u);
}

TEST(Simplify, KeepsIrredundantConstraintsAndPreservesSet) {
  Polyhedron P(2);
  P.addBounds(0, 0, 10);
  P.addBounds(1, 0, 10);
  P.addInequalityTerms({{0, 1}, {1, -1}}, 0); // x >= y.
  Polyhedron Original = P;
  removeRedundantInequalities(P);
  // x >= 0 (implied by x >= y, y >= 0) and y <= 10 (implied by y <= x,
  // x <= 10) are dropped; the minimal description has three constraints.
  EXPECT_EQ(P.getNumInequalities(), 3u);
  for (int64_t X = -1; X <= 11; ++X)
    for (int64_t Y = -1; Y <= 11; ++Y)
      EXPECT_EQ(P.containsPoint({X, Y}), Original.containsPoint({X, Y}));
}

TEST(Simplify, GistDropsContextImpliedConstraints) {
  Polyhedron P(1), Ctx(1);
  P.addBounds(0, 0, 100);
  Ctx.addBounds(0, 10, 50);
  Polyhedron G = gist(P, Ctx);
  // Both of P's bounds are implied by the context.
  EXPECT_EQ(G.getNumInequalities(), 0u);
  EXPECT_EQ(G.getNumEqualities(), 0u);
}

class GistProperty : public ::testing::TestWithParam<int> {};

TEST_P(GistProperty, GistIntersectContextEqualsOriginal) {
  Rng R(GetParam() * 7919);
  const int64_t Box = 3;
  Polyhedron P = randomPoly(R, 2, 2, Box);
  Polyhedron Ctx = randomPoly(R, 2, 1, Box);
  Polyhedron G = gist(P, Ctx);
  for (int64_t X = -Box; X <= Box; ++X)
    for (int64_t Y = -Box; Y <= Box; ++Y) {
      std::vector<int64_t> Pt = {X, Y};
      if (!Ctx.containsPoint(Pt))
        continue;
      EXPECT_EQ(G.containsPoint(Pt), P.containsPoint(Pt))
          << "(" << X << "," << Y << ")";
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GistProperty, ::testing::Range(1, 60));

} // namespace
