//===- service_chaos_test.cpp - Overload-safe serving tests -------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The serving layer's failure domain (ctest label: service-chaos): admission
// control under saturation, per-request deadlines, connection hygiene
// (line caps, idle timeout, connection cap), hostile socket input (random
// bytes, 1-byte writes, pipelining), graceful drain on SIGTERM, kill -9 +
// warm restart riding the periodic autosave, injected client drip-feed,
// mid-request connection kills, snapshot write failures, and the retrying
// client. Runs under tsan with the parallel/chaos/service suites.
//
//===----------------------------------------------------------------------===//

#include "service/Admission.h"
#include "service/Json.h"
#include "service/PlanSerdes.h"
#include "service/Server.h"
#include "service/Service.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace shackle;

namespace {

#ifndef SHACKLE_CLI_PATH
#error "SHACKLE_CLI_PATH must be defined by the build"
#endif

/// A cold compile+run of this takes hundreds of milliseconds (1024 blocks):
/// long enough to hold a worker slot while other clients pile on.
const char *SlowReq =
    R"({"op":"run","benchmark":"matmul","config":"c","block":4,"params":[128]})";
/// A small request: tens of milliseconds cold, sub-millisecond warm.
const char *FastReq =
    R"({"op":"run","benchmark":"matmul","config":"c","block":16,"params":[48]})";
const char *StatsReq = R"({"op":"stats"})";

/// A per-test unique temp path (tests run concurrently under ctest -j).
std::string tmpPath(const std::string &Stem) {
  static std::atomic<unsigned> Counter{0};
  return testing::TempDir() + "shkchaos_" + std::to_string(getpid()) + "_" +
         std::to_string(Counter.fetch_add(1)) + "_" + Stem;
}

std::string readFile(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  EXPECT_NE(F, nullptr) << Path;
  if (!F)
    return "";
  std::string Out;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, Got);
  std::fclose(F);
  return Out;
}

/// Parses a service reply; fails the test on malformed JSON.
JsonValue parseReply(const std::string &Line) {
  JsonValue V;
  std::string Err;
  EXPECT_TRUE(parseJson(Line, V, &Err)) << Err << " in: " << Line;
  return V;
}

/// Arms the process-wide injector for one test and disarms on scope exit,
/// so a failing test cannot leak faults into its neighbors.
struct InjectorGuard {
  explicit InjectorGuard(const std::string &Spec) {
    Status S = FaultInjector::instance().configure(Spec);
    EXPECT_TRUE(S.ok()) << S.diagnostic().str();
  }
  ~InjectorGuard() { FaultInjector::instance().disarm(); }
};

/// In-process daemon: starts serving on construction, drains on destruction.
struct TestServer {
  ServiceServer Server;
  std::thread T;
  TestServer(ServiceCore &Core, const std::string &Sock,
             ServerOptions Opts = ServerOptions())
      : Server(Core, Sock, Opts) {
    Status S = Server.start();
    EXPECT_TRUE(S.ok()) << S.diagnostic().str();
    T = std::thread([this] { Server.serve(); });
  }
  ~TestServer() {
    Server.stop();
    if (T.joinable())
      T.join();
  }
};

/// Connects a raw stream socket, retrying while the server comes up.
int rawConnect(const std::string &Path, int TimeoutMs = 5000) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    EXPECT_GE(Fd, 0);
    if (::connect(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) ==
        0)
      return Fd;
    ::close(Fd);
    if (std::chrono::steady_clock::now() >= Deadline)
      return -1;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

/// Reads one newline-terminated line (newline stripped). False on EOF,
/// error, or timeout.
bool rawReadLine(int Fd, std::string &Line, int TimeoutMs = 20000) {
  Line.clear();
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  char C;
  for (;;) {
    pollfd P{Fd, POLLIN, 0};
    int Remain = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(
            Deadline - std::chrono::steady_clock::now())
            .count());
    if (Remain <= 0 || ::poll(&P, 1, Remain) <= 0)
      return false;
    ssize_t N = ::recv(Fd, &C, 1, 0);
    if (N <= 0)
      return false;
    if (C == '\n')
      return true;
    Line += C;
  }
}

/// Best-effort bulk send; stops at the first error (the server may close
/// the connection mid-stream on purpose — that's what some tests provoke).
void rawSendAll(int Fd, const char *Data, size_t Len) {
  while (Len > 0) {
    ssize_t N = ::send(Fd, Data, Len, MSG_NOSIGNAL);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return;
    }
    Data += N;
    Len -= static_cast<size_t>(N);
  }
}

/// Forks and execs `shackle serve --socket=SOCK <ExtraArgs>` with stdio
/// routed to /dev/null. Returns the child pid.
pid_t spawnServe(const std::string &Sock,
                 const std::vector<std::string> &ExtraArgs) {
  pid_t Pid = fork();
  if (Pid != 0)
    return Pid;
  int Null = ::open("/dev/null", O_RDWR);
  ::dup2(Null, 0);
  ::dup2(Null, 1);
  ::dup2(Null, 2);
  std::vector<std::string> Args = {SHACKLE_CLI_PATH, "serve",
                                   "--socket=" + Sock};
  Args.insert(Args.end(), ExtraArgs.begin(), ExtraArgs.end());
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(const_cast<char *>(A.c_str()));
  Argv.push_back(nullptr);
  ::execv(SHACKLE_CLI_PATH, Argv.data());
  _exit(127);
}

/// Waits for \p Pid with a deadline; returns the wait status, or -1 if the
/// child is still running at the deadline (the test then fails and kills).
int waitForExit(pid_t Pid, int TimeoutMs) {
  auto Deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(TimeoutMs);
  for (;;) {
    int St = 0;
    pid_t R = ::waitpid(Pid, &St, WNOHANG);
    if (R == Pid)
      return St;
    if (std::chrono::steady_clock::now() >= Deadline) {
      ::kill(Pid, SIGKILL);
      ::waitpid(Pid, &St, 0);
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
}

//===----------------------------------------------------------------------===//
// Admission control under saturation
//===----------------------------------------------------------------------===//

TEST(ServiceOverload, ShedsWithStructuredRepliesUnderSaturation) {
  // Offered load 8 against capacity 2 (1 in flight + 1 queued): 4x over.
  ServiceCore Core;
  ServerOptions Opts;
  Opts.Admission.MaxInflight = 1;
  Opts.Admission.QueueDepth = 1;
  std::string Sock = tmpPath("overload.sock");
  TestServer S(Core, Sock, Opts);

  constexpr int N = 8;
  std::vector<std::string> Replies(N), Errs(N);
  std::vector<std::thread> Clients;
  for (int I = 0; I < N; ++I)
    Clients.emplace_back([&, I] {
      serviceRequest(Sock, SlowReq, Replies[I], &Errs[I], 60000u);
    });
  for (std::thread &T : Clients)
    T.join();

  unsigned Ok = 0, Shed = 0;
  std::string Checksum;
  for (int I = 0; I < N; ++I) {
    ASSERT_FALSE(Replies[I].empty()) << Errs[I];
    JsonValue R = parseReply(Replies[I]);
    if (R.getBool("ok", false)) {
      ++Ok;
      if (Checksum.empty())
        Checksum = R.getString("checksum");
      EXPECT_EQ(R.getString("checksum"), Checksum)
          << "every accepted request must see bitwise-identical results";
    } else {
      ASSERT_EQ(R.getString("code"), "overloaded") << Replies[I];
      EXPECT_GE(R.getInt("retry_after_ms", 0), 1) << Replies[I];
      ++Shed;
    }
  }
  EXPECT_GE(Ok, 1u);
  EXPECT_GE(Shed, 1u);
  EXPECT_EQ(Ok + Shed, static_cast<unsigned>(N));

  // The reply reaches the waiter just before the worker bumps its own
  // completion counters; give the pool a moment to quiesce.
  AdmissionStats St;
  for (int Spin = 0; Spin < 1000; ++Spin) {
    St = S.Server.admission().stats();
    if (St.Completed == Ok && St.InflightNow == 0)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(St.Admitted, Ok);
  EXPECT_EQ(St.Shed, Shed);
  EXPECT_EQ(St.Completed, Ok);
  EXPECT_EQ(St.QueuedNow, 0u);
  EXPECT_EQ(St.InflightNow, 0u);
}

TEST(ServiceOverload, ControlOpsBypassTheSaturatedQueue) {
  ServiceCore Core;
  ServerOptions Opts;
  Opts.Admission.MaxInflight = 1;
  Opts.Admission.QueueDepth = 0;
  std::string Sock = tmpPath("bypass.sock");
  TestServer S(Core, Sock, Opts);

  std::thread Background([&] {
    std::string Reply, Err;
    serviceRequest(Sock, SlowReq, Reply, &Err, 60000u);
  });
  // Once the slow request holds the only worker, stats must still answer —
  // and must see that worker busy, proving it did not wait behind it.
  for (int Spin = 0; Spin < 1000; ++Spin) {
    if (S.Server.admission().stats().InflightNow == 1)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(S.Server.admission().stats().InflightNow, 1u);
  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, StatsReq, Reply, &Err, 20000u)) << Err;
  JsonValue R = parseReply(Reply);
  EXPECT_TRUE(R.getBool("ok", false)) << Reply;
  EXPECT_EQ(R.getInt("inflight", -1), 1) << Reply;
  Background.join();
}

//===----------------------------------------------------------------------===//
// Per-request deadlines
//===----------------------------------------------------------------------===//

TEST(ServiceDeadline, ClientDeadlineExpiresButThePlanStillCaches) {
  ServiceCore Core;
  ServerOptions Opts;
  Opts.Admission.MaxInflight = 1;
  std::string Sock = tmpPath("deadline.sock");
  TestServer S(Core, Sock, Opts);

  std::string WithDeadline(SlowReq);
  WithDeadline.insert(WithDeadline.size() - 1, ",\"deadline_ms\":10");
  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, WithDeadline, Reply, &Err, 20000u))
      << Err;
  JsonValue R = parseReply(Reply);
  EXPECT_FALSE(R.getBool("ok", true)) << Reply;
  EXPECT_EQ(R.getString("code"), "deadline-exceeded") << Reply;
  EXPECT_EQ(R.getInt("deadline_ms", -1), 10) << Reply;
  EXPECT_EQ(S.Server.admission().stats().DeadlineExpired, 1u);

  // The abandoned build still completes and lands in the plan cache: the
  // same request without a deadline eventually answers as a hit.
  bool Hit = false;
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (!Hit && std::chrono::steady_clock::now() < Deadline) {
    ASSERT_TRUE(serviceRequest(Sock, SlowReq, Reply, &Err, 60000u)) << Err;
    JsonValue R2 = parseReply(Reply);
    ASSERT_TRUE(R2.getBool("ok", false)) << Reply;
    Hit = R2.getBool("hit", false);
  }
  EXPECT_TRUE(Hit) << "plan-cache entry from the abandoned request";
  EXPECT_GE(S.Server.admission().stats().Abandoned, 1u);
}

TEST(ServiceDeadline, ServerDefaultAppliesAndClientsCannotLoosenIt) {
  ServiceCore Core;
  ServerOptions Opts;
  Opts.Admission.MaxInflight = 1;
  Opts.Admission.RequestDeadlineMs = 10;
  std::string Sock = tmpPath("defdeadline.sock");
  TestServer S(Core, Sock, Opts);

  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, SlowReq, Reply, &Err, 20000u)) << Err;
  JsonValue R = parseReply(Reply);
  EXPECT_EQ(R.getString("code"), "deadline-exceeded") << Reply;

  // A huge client deadline_ms must not loosen the server's 10ms default.
  std::string Loose =
      R"({"op":"run","benchmark":"matmul","config":"c","block":4,"params":[120],"deadline_ms":60000})";
  ASSERT_TRUE(serviceRequest(Sock, Loose, Reply, &Err, 20000u)) << Err;
  JsonValue R2 = parseReply(Reply);
  EXPECT_EQ(R2.getString("code"), "deadline-exceeded") << Reply;
  EXPECT_EQ(R2.getInt("deadline_ms", -1), 10) << Reply;
}

//===----------------------------------------------------------------------===//
// Connection hygiene
//===----------------------------------------------------------------------===//

TEST(ServiceHygiene, TenMiBNewlineFreeStreamGetsLineTooLongAndClose) {
  ServiceCore Core;
  std::string Sock = tmpPath("longline.sock");
  TestServer S(Core, Sock); // Default 1 MiB line cap.

  int Fd = rawConnect(Sock);
  ASSERT_GE(Fd, 0);
  std::string Chunk(64 << 10, 'a');
  for (int I = 0; I < 160; ++I) // 10 MiB, no newline anywhere.
    rawSendAll(Fd, Chunk.data(), Chunk.size());
  std::string Line;
  ASSERT_TRUE(rawReadLine(Fd, Line));
  JsonValue R = parseReply(Line);
  EXPECT_EQ(R.getString("code"), "line-too-long") << Line;
  EXPECT_EQ(R.getInt("max_line_bytes", -1), 1 << 20) << Line;
  // After the structured reply the server closes the connection.
  char C;
  pollfd P{Fd, POLLIN, 0};
  ASSERT_GT(::poll(&P, 1, 20000), 0);
  EXPECT_EQ(::recv(Fd, &C, 1, 0), 0);
  ::close(Fd);

  // The daemon is unharmed: a fresh connection still gets served.
  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, StatsReq, Reply, &Err, 20000u)) << Err;
  EXPECT_TRUE(parseReply(Reply).getBool("ok", false)) << Reply;
}

TEST(ServiceHygiene, OversizedTerminatedLineIsAlsoRejected) {
  ServiceCore Core;
  ServerOptions Opts;
  Opts.MaxLineBytes = 1024;
  std::string Sock = tmpPath("cap.sock");
  TestServer S(Core, Sock, Opts);

  int Fd = rawConnect(Sock);
  ASSERT_GE(Fd, 0);
  std::string Line(4096, 'b');
  Line += '\n';
  rawSendAll(Fd, Line.data(), Line.size());
  std::string Reply;
  ASSERT_TRUE(rawReadLine(Fd, Reply));
  EXPECT_EQ(parseReply(Reply).getString("code"), "line-too-long") << Reply;
  ::close(Fd);
}

TEST(ServiceHygiene, IdleConnectionTimesOutWithStructuredReply) {
  ServiceCore Core;
  ServerOptions Opts;
  Opts.IdleTimeoutMs = 150;
  std::string Sock = tmpPath("idle.sock");
  TestServer S(Core, Sock, Opts);

  int Fd = rawConnect(Sock);
  ASSERT_GE(Fd, 0);
  // Send nothing; the server must evict us, not hold the thread forever.
  std::string Line;
  ASSERT_TRUE(rawReadLine(Fd, Line));
  EXPECT_EQ(parseReply(Line).getString("code"), "idle-timeout") << Line;
  char C;
  pollfd P{Fd, POLLIN, 0};
  ASSERT_GT(::poll(&P, 1, 20000), 0);
  EXPECT_EQ(::recv(Fd, &C, 1, 0), 0);
  ::close(Fd);
}

TEST(ServiceHygiene, ConnectionCapShedsExcessClients) {
  ServiceCore Core;
  ServerOptions Opts;
  Opts.MaxConnections = 1;
  std::string Sock = tmpPath("cap1.sock");
  TestServer S(Core, Sock, Opts);

  int Held = rawConnect(Sock);
  ASSERT_GE(Held, 0);
  // Make sure the first connection is accepted (counted) before the probe:
  // send a request and read its reply.
  std::string Probe = std::string(StatsReq) + "\n";
  rawSendAll(Held, Probe.data(), Probe.size());
  std::string Line;
  ASSERT_TRUE(rawReadLine(Held, Line));

  int Extra = rawConnect(Sock);
  ASSERT_GE(Extra, 0);
  ASSERT_TRUE(rawReadLine(Extra, Line));
  JsonValue R = parseReply(Line);
  EXPECT_EQ(R.getString("code"), "overloaded") << Line;
  EXPECT_GE(R.getInt("retry_after_ms", 0), 1) << Line;
  ::close(Extra);

  // Freeing the held connection frees the slot (reaping is async: retry).
  ::close(Held);
  bool Served = false;
  for (int Spin = 0; Spin < 200 && !Served; ++Spin) {
    std::string Reply, Err;
    if (serviceRequest(Sock, StatsReq, Reply, &Err, 5000u) &&
        parseReply(Reply).getBool("ok", false))
      Served = true;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(25));
  }
  EXPECT_TRUE(Served);
}

//===----------------------------------------------------------------------===//
// Hostile socket input
//===----------------------------------------------------------------------===//

TEST(ServiceHostile, RandomBytesNeverCrashOrWedgeTheServer) {
  ServiceCore Core;
  std::string Sock = tmpPath("fuzz.sock");
  TestServer S(Core, Sock);

  // Deterministic junk: every byte value, newlines sprinkled in so the
  // server actually parses (and rejects) many "lines".
  uint64_t X = 0x5eed;
  std::string Junk;
  Junk.reserve(64 << 10);
  for (int I = 0; I < (64 << 10); ++I) {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    Junk += static_cast<char>(X & 0xff);
  }
  int Fd = rawConnect(Sock);
  ASSERT_GE(Fd, 0);
  rawSendAll(Fd, Junk.data(), Junk.size());
  ::shutdown(Fd, SHUT_WR);
  // Every reply the server emits must be a well-formed error document.
  std::string Line;
  unsigned ErrorReplies = 0;
  while (rawReadLine(Fd, Line, 5000)) {
    JsonValue R = parseReply(Line);
    EXPECT_FALSE(R.getBool("ok", true)) << Line;
    ++ErrorReplies;
  }
  ::close(Fd);
  EXPECT_GE(ErrorReplies, 1u);

  // And the daemon still serves real work afterwards.
  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, FastReq, Reply, &Err, 60000u)) << Err;
  EXPECT_TRUE(parseReply(Reply).getBool("ok", false)) << Reply;
}

TEST(ServiceHostile, RequestSplitIntoSingleByteWritesReassembles) {
  ServiceCore Core;
  std::string Sock = tmpPath("bytes.sock");
  TestServer S(Core, Sock);

  int Fd = rawConnect(Sock);
  ASSERT_GE(Fd, 0);
  std::string Req = std::string(StatsReq) + "\n";
  for (char C : Req) {
    rawSendAll(Fd, &C, 1);
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  std::string Line;
  ASSERT_TRUE(rawReadLine(Fd, Line));
  EXPECT_TRUE(parseReply(Line).getBool("ok", false)) << Line;
  ::close(Fd);
}

TEST(ServiceHostile, PipelinedRequestsAreAnsweredInOrder) {
  ServiceCore Core;
  // Two distinct programs, warmed directly so the checksums are known.
  const std::string ReqA =
      R"({"op":"run","benchmark":"matmul","config":"c","block":16,"params":[32]})";
  const std::string ReqB =
      R"({"op":"run","benchmark":"matmul","config":"c","block":16,"params":[40]})";
  JsonValue WarmA = parseReply(Core.handleLine(ReqA));
  JsonValue WarmB = parseReply(Core.handleLine(ReqB));
  ASSERT_TRUE(WarmA.getBool("ok", false));
  ASSERT_TRUE(WarmB.getBool("ok", false));
  std::string CkA = WarmA.getString("checksum");
  std::string CkB = WarmB.getString("checksum");
  ASSERT_NE(CkA, CkB);

  std::string Sock = tmpPath("pipeline.sock");
  TestServer S(Core, Sock);
  int Fd = rawConnect(Sock);
  ASSERT_GE(Fd, 0);
  // One write, four requests: replies must come back in request order even
  // though execution happens on a worker pool.
  std::string Batch = ReqA + "\n" + ReqB + "\n" + ReqA + "\n" + ReqB + "\n";
  rawSendAll(Fd, Batch.data(), Batch.size());
  const std::string Expect[4] = {CkA, CkB, CkA, CkB};
  for (int I = 0; I < 4; ++I) {
    std::string Line;
    ASSERT_TRUE(rawReadLine(Fd, Line)) << "reply " << I;
    JsonValue R = parseReply(Line);
    ASSERT_TRUE(R.getBool("ok", false)) << Line;
    EXPECT_EQ(R.getString("checksum"), Expect[I]) << "reply " << I;
  }
  ::close(Fd);
}

//===----------------------------------------------------------------------===//
// Injected service chaos
//===----------------------------------------------------------------------===//

TEST(ServiceChaos, DripFedClientIsStillServed) {
  ServiceCore Core;
  std::string Sock = tmpPath("drip.sock");
  // Guard before server: ~TestServer joins every connection thread (they
  // poll the injector per line) before ~InjectorGuard rewrites the plan.
  InjectorGuard G("drip@client=3,ms=1");
  TestServer S(Core, Sock);
  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, StatsReq, Reply, &Err, 20000u)) << Err;
  EXPECT_TRUE(parseReply(Reply).getBool("ok", false)) << Reply;
  EXPECT_EQ(FaultInjector::instance().counters().ClientDrips, 1u);
}

TEST(ServiceChaos, MidRequestConnectionKillLeavesTheServerHealthy) {
  ServiceCore Core;
  std::string Sock = tmpPath("kill.sock");
  // Guard before server, as above: disarm must not race the fire checks.
  InjectorGuard G("kill@conn=0");
  TestServer S(Core, Sock);
  // Connection 0 dies after its request arrives, before any reply.
  std::string Reply, Err;
  EXPECT_FALSE(serviceRequest(Sock, StatsReq, Reply, &Err, 20000u));
  EXPECT_EQ(FaultInjector::instance().counters().ConnKills, 1u);
  // Connection 1 is served normally.
  ASSERT_TRUE(serviceRequest(Sock, FastReq, Reply, &Err, 60000u)) << Err;
  EXPECT_TRUE(parseReply(Reply).getBool("ok", false)) << Reply;
}

TEST(ServiceChaos, SnapshotWriteFailureKeepsThePreviousSnapshotIntact) {
  std::string Snap = tmpPath("snapfail.bin");
  ServiceOptions Opts;
  Opts.SnapshotPath = Snap;
  ServiceCore Core(Opts);
  ASSERT_TRUE(parseReply(Core.handleLine(FastReq)).getBool("ok", false));
  ASSERT_TRUE(Core.saveSnapshot().ok());
  std::string Good = readFile(Snap);
  ASSERT_FALSE(Good.empty());

  {
    InjectorGuard G("snapshot-fail@write=enospc");
    Status S = Core.saveSnapshot();
    EXPECT_FALSE(S.ok());
    EXPECT_NE(S.diagnostic().Message.find("no space"), std::string::npos)
        << S.diagnostic().str();
    EXPECT_EQ(FaultInjector::instance().counters().SnapshotWriteFails, 1u);
  }
  EXPECT_EQ(readFile(Snap), Good) << "atomic tmp+rename must keep the old "
                                     "snapshot on a failed write";
  EXPECT_NE(::access((Snap + ".tmp").c_str(), F_OK), 0)
      << "no stale tmp file";

  {
    InjectorGuard G("snapshot-fail@write=short");
    Status S = Core.saveSnapshot();
    EXPECT_FALSE(S.ok());
    EXPECT_NE(S.diagnostic().Message.find("short write"), std::string::npos)
        << S.diagnostic().str();
  }
  EXPECT_EQ(readFile(Snap), Good);

  // The surviving snapshot still loads cleanly.
  ServiceCore Fresh(Opts);
  EXPECT_TRUE(Fresh.loadSnapshot().ok());
  JsonValue Warm = parseReply(Fresh.handleLine(FastReq));
  EXPECT_TRUE(Warm.getBool("hit", false)) << Warm.str();
}

//===----------------------------------------------------------------------===//
// Retrying client
//===----------------------------------------------------------------------===//

TEST(ServiceRetry, BackoffRetrySucceedsOnceTheOverloadClears) {
  ServiceCore Core;
  ServerOptions Opts;
  Opts.Admission.MaxInflight = 1;
  Opts.Admission.QueueDepth = 0;
  std::string Sock = tmpPath("retry.sock");
  TestServer S(Core, Sock, Opts);

  std::thread Background([&] {
    std::string Reply, Err;
    serviceRequest(Sock, SlowReq, Reply, &Err, 60000u);
  });
  // Ensure the only worker is genuinely busy before the retrying client
  // starts, so its first attempt deterministically sheds.
  for (int Spin = 0; Spin < 2000; ++Spin) {
    if (S.Server.admission().stats().InflightNow == 1)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(S.Server.admission().stats().InflightNow, 1u);

  ServiceRequestOptions ROpts;
  ROpts.TimeoutMs = 60000;
  // Generous: retries stop the moment the slow request frees the worker,
  // but under TSan plus a loaded machine that can take tens of seconds,
  // and exhausting the budget returns the final overloaded reply.
  ROpts.MaxRetries = 5000;
  ROpts.BackoffBaseMs = 5;
  ROpts.BackoffMaxMs = 100;
  ROpts.Seed = 42;
  unsigned Retries = 0;
  ROpts.RetriesOut = &Retries;
  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, FastReq, Reply, &Err, ROpts)) << Err;
  JsonValue R = parseReply(Reply);
  EXPECT_TRUE(R.getBool("ok", false)) << Reply;
  EXPECT_GE(Retries, 1u) << "first attempt must have been shed";
  Background.join();
}

//===----------------------------------------------------------------------===//
// Graceful drain and crash durability (subprocess daemon)
//===----------------------------------------------------------------------===//

TEST(ServiceDrain, SigtermMidLoadDrainsSavesSnapshotAndWarmRestartHits) {
  std::string Sock = tmpPath("drain.sock");
  std::string Snap = tmpPath("drain-snap.bin");
  pid_t Pid = spawnServe(Sock, {"--snapshot=" + Snap, "--max-inflight=2"});
  ASSERT_GT(Pid, 0);
  // Wait for the daemon to come up.
  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, StatsReq, Reply, &Err, 20000u)) << Err;

  // A slow request rides through the SIGTERM: drain must finish it and
  // flush its reply before exiting.
  std::string ClientReply, ClientErr;
  bool ClientOk = false;
  std::thread Client([&] {
    ClientOk = serviceRequest(Sock, SlowReq, ClientReply, &ClientErr,
                              60000u);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_EQ(::kill(Pid, SIGTERM), 0);
  Client.join();
  ASSERT_TRUE(ClientOk) << ClientErr;
  JsonValue R = parseReply(ClientReply);
  EXPECT_TRUE(R.getBool("ok", false)) << ClientReply;
  std::string Checksum = R.getString("checksum");

  int St = waitForExit(Pid, 60000);
  ASSERT_NE(St, -1) << "daemon failed to drain and exit";
  ASSERT_TRUE(WIFEXITED(St));
  EXPECT_EQ(WEXITSTATUS(St), 0) << "graceful drain must exit 0";
  EXPECT_EQ(::access(Sock.c_str(), F_OK), -1) << "socket file removed";

  // The shutdown path saved a snapshot; a warm restart serves a hit with
  // the identical result.
  std::vector<SnapshotEntry> Entries;
  ASSERT_TRUE(loadSnapshotFile(Snap, Entries).ok());
  EXPECT_GE(Entries.size(), 1u);
  pid_t Pid2 = spawnServe(Sock, {"--snapshot=" + Snap});
  ASSERT_GT(Pid2, 0);
  ASSERT_TRUE(serviceRequest(Sock, SlowReq, Reply, &Err, 60000u)) << Err;
  JsonValue Warm = parseReply(Reply);
  EXPECT_TRUE(Warm.getBool("ok", false)) << Reply;
  EXPECT_TRUE(Warm.getBool("hit", false)) << Reply;
  EXPECT_EQ(Warm.getString("checksum"), Checksum);
  ::kill(Pid2, SIGTERM);
  EXPECT_NE(waitForExit(Pid2, 60000), -1);
}

TEST(ServiceDurability, Kill9ThenWarmRestartServesHitsViaAutosave) {
  std::string Sock = tmpPath("kill9.sock");
  std::string Snap = tmpPath("kill9-snap.bin");
  pid_t Pid = spawnServe(
      Sock, {"--snapshot=" + Snap, "--snapshot-interval-s=1"});
  ASSERT_GT(Pid, 0);

  std::string Reply, Err;
  ASSERT_TRUE(serviceRequest(Sock, FastReq, Reply, &Err, 60000u)) << Err;
  JsonValue Cold = parseReply(Reply);
  ASSERT_TRUE(Cold.getBool("ok", false)) << Reply;
  std::string Checksum = Cold.getString("checksum");

  // Wait for an autosave cycle to persist the entry, then SIGKILL: no
  // drain, no shutdown save — durability comes from the autosave alone.
  bool Persisted = false;
  auto Deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!Persisted && std::chrono::steady_clock::now() < Deadline) {
    std::vector<SnapshotEntry> Entries;
    if (loadSnapshotFile(Snap, Entries).ok() && !Entries.empty())
      Persisted = true;
    else
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  ASSERT_TRUE(Persisted) << "autosave never wrote the snapshot";
  ASSERT_EQ(::kill(Pid, SIGKILL), 0);
  int St = waitForExit(Pid, 20000);
  ASSERT_NE(St, -1);
  ASSERT_TRUE(WIFSIGNALED(St));

  pid_t Pid2 = spawnServe(Sock, {"--snapshot=" + Snap});
  ASSERT_GT(Pid2, 0);
  ASSERT_TRUE(serviceRequest(Sock, FastReq, Reply, &Err, 60000u)) << Err;
  JsonValue Warm = parseReply(Reply);
  EXPECT_TRUE(Warm.getBool("ok", false)) << Reply;
  EXPECT_TRUE(Warm.getBool("hit", false)) << Reply;
  EXPECT_TRUE(Warm.getBool("from_snapshot", false)) << Reply;
  EXPECT_EQ(Warm.getString("checksum"), Checksum);
  ::kill(Pid2, SIGTERM);
  EXPECT_NE(waitForExit(Pid2, 60000), -1);
}

TEST(ServiceDrain, InProcessStopUnderLoadLeavesConsistentState) {
  ServiceCore Core;
  ServerOptions Opts;
  Opts.Admission.MaxInflight = 2;
  Opts.Admission.QueueDepth = 2;
  std::string Sock = tmpPath("stopload.sock");

  constexpr int N = 8;
  std::vector<std::string> Replies(N), Errs(N);
  // Not vector<bool>: clients write concurrently and bit-packed elements
  // share words. Distinct chars are distinct memory locations.
  std::vector<char> Transport(N, 0);
  {
    TestServer S(Core, Sock, Opts);
    std::vector<std::thread> Clients;
    for (int I = 0; I < N; ++I)
      Clients.emplace_back([&, I] {
        Transport[I] = serviceRequest(Sock, I % 2 ? SlowReq : FastReq,
                                      Replies[I], &Errs[I], 60000u);
      });
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    S.Server.stop(); // Destructor joins serve(); must not hang.
    for (std::thread &T : Clients)
      T.join();
  }

  for (int I = 0; I < N; ++I) {
    if (!Transport[I])
      continue; // Raced the teardown: a clean transport error, not a hang.
    JsonValue R = parseReply(Replies[I]);
    if (R.getBool("ok", false))
      continue;
    std::string Code = R.getString("code");
    EXPECT_TRUE(Code == "draining" || Code == "overloaded" ||
                Code == "deadline-exceeded")
        << Replies[I];
  }
}

} // namespace
