//===- equivalence_test.cpp - Shackled == original, exhaustively --------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The central safety property, swept across every benchmark, every shackle
// configuration, edge-case problem sizes (N < B, N == B, N == B +- 1, prime
// N) and block sizes: interpreting the shackled code on random inputs gives
// *bit-identical* arrays to interpreting the original program. Equality is
// exact, not approximate, because a legal shackle permutes statement
// instances without touching the arithmetic inside any instance — and for
// these kernels every legal order computes the same rounding sequence per
// element. A disagreement therefore always indicates a codegen bug, never
// floating-point noise.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

enum class Kernel {
  MatMulC,
  MatMulCxA,
  MatMulTwoLevel,
  CholRightStores,
  CholRightReads,
  CholRightProduct,
  CholLeftStores,
  QRCols,
  Gmtry,
  Banded,
};

struct Case {
  Kernel K;
  int64_t N;
  int64_t B;
};

void PrintTo(const Case &C, std::ostream *OS) {
  *OS << "kernel=" << static_cast<int>(C.K) << " N=" << C.N << " B=" << C.B;
}

class Equivalence : public ::testing::TestWithParam<Case> {};

TEST_P(Equivalence, ShackledMatchesOriginalBitForBit) {
  Case C = GetParam();
  BenchSpec Spec = [&] {
    switch (C.K) {
    case Kernel::MatMulC:
    case Kernel::MatMulCxA:
    case Kernel::MatMulTwoLevel:
      return makeMatMul();
    case Kernel::CholRightStores:
    case Kernel::CholRightReads:
    case Kernel::CholRightProduct:
      return makeCholeskyRight();
    case Kernel::CholLeftStores:
      return makeCholeskyLeft();
    case Kernel::QRCols:
      return makeQRHouseholder();
    case Kernel::Gmtry:
      return makeGmtry();
    case Kernel::Banded:
      return makeCholeskyBanded();
    }
    return makeMatMul();
  }();
  const Program &P = *Spec.Prog;

  ShackleChain Chain = [&] {
    switch (C.K) {
    case Kernel::MatMulC:
      return mmmShackleC(P, C.B);
    case Kernel::MatMulCxA:
      return mmmShackleCxA(P, C.B);
    case Kernel::MatMulTwoLevel:
      return mmmShackleTwoLevel(P, 2 * C.B, C.B);
    case Kernel::CholRightStores:
    case Kernel::CholLeftStores:
    case Kernel::Banded:
      return choleskyShackleStores(P, C.B);
    case Kernel::CholRightReads:
      return choleskyShackleReads(P, C.B);
    case Kernel::CholRightProduct:
      return choleskyShackleProduct(P, C.B, /*WritesFirst=*/true);
    case Kernel::QRCols:
      return qrColumnShackle(P, C.B);
    case Kernel::Gmtry:
      return gmtryShackleStores(P, C.B);
    }
    return mmmShackleC(P, C.B);
  }();

  ASSERT_TRUE(checkLegality(P, Chain).Legal);

  bool NeedsSPD = C.K != Kernel::MatMulC && C.K != Kernel::MatMulCxA &&
                  C.K != Kernel::MatMulTwoLevel && C.K != Kernel::QRCols;
  std::vector<int64_t> Params = {C.N};
  if (C.K == Kernel::Banded)
    Params.push_back(std::min<int64_t>(C.N - 1 > 0 ? C.N - 1 : 1, 5));

  ProgramInstance Ref(P, Params), Test(P, Params);
  Ref.fillRandom(1000 + C.N, 0.5, 1.5);
  if (NeedsSPD)
    for (int64_t I = 0; I < C.N; ++I) {
      int64_t Idx[2] = {I, I};
      Ref.buffer(0)[Ref.offset(0, Idx)] += 3.0 * static_cast<double>(C.N);
    }
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    Test.buffer(A) = Ref.buffer(A);

  runLoopNest(generateOriginalCode(P), Ref);
  runLoopNest(generateShackledCode(P, Chain), Test);
  EXPECT_EQ(Ref.maxAbsDifference(Test), 0.0);
}

std::vector<Case> allCases() {
  std::vector<Case> Cases;
  std::vector<Kernel> Kernels = {
      Kernel::MatMulC,        Kernel::MatMulCxA,  Kernel::MatMulTwoLevel,
      Kernel::CholRightStores, Kernel::CholRightReads,
      Kernel::CholRightProduct, Kernel::CholLeftStores,
      Kernel::QRCols,          Kernel::Gmtry,      Kernel::Banded};
  for (Kernel K : Kernels) {
    // Edge sizes around the block size 4: N < B, N == B, N == B +- 1,
    // several blocks, ragged tail, prime N.
    for (int64_t N : {1, 3, 4, 5, 8, 11, 16, 19})
      Cases.push_back(Case{K, N, 4});
    // A larger, odd block size against a ragged N.
    Cases.push_back(Case{K, 23, 7});
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Equivalence, ::testing::ValuesIn(allCases()));

} // namespace
