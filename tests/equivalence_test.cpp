//===- equivalence_test.cpp - Shackled == original, exhaustively --------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The central safety property, swept across every benchmark, every shackle
// configuration, edge-case problem sizes (N < B, N == B, N == B +- 1, prime
// N) and block sizes: interpreting the shackled code on random inputs gives
// *bit-identical* arrays to interpreting the original program. Equality is
// exact, not approximate, because a legal shackle permutes statement
// instances without touching the arithmetic inside any instance — and for
// these kernels every legal order computes the same rounding sequence per
// element. A disagreement therefore always indicates a codegen bug, never
// floating-point noise.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

enum class Kernel {
  MatMulC,
  MatMulCxA,
  MatMulTwoLevel,
  CholRightStores,
  CholRightReads,
  CholRightProduct,
  CholLeftStores,
  QRCols,
  Gmtry,
  Banded,
};

struct Case {
  Kernel K;
  int64_t N;
  int64_t B;
};

void PrintTo(const Case &C, std::ostream *OS) {
  *OS << "kernel=" << static_cast<int>(C.K) << " N=" << C.N << " B=" << C.B;
}

class Equivalence : public ::testing::TestWithParam<Case> {};

TEST_P(Equivalence, ShackledMatchesOriginalBitForBit) {
  Case C = GetParam();
  BenchSpec Spec = [&] {
    switch (C.K) {
    case Kernel::MatMulC:
    case Kernel::MatMulCxA:
    case Kernel::MatMulTwoLevel:
      return makeMatMul();
    case Kernel::CholRightStores:
    case Kernel::CholRightReads:
    case Kernel::CholRightProduct:
      return makeCholeskyRight();
    case Kernel::CholLeftStores:
      return makeCholeskyLeft();
    case Kernel::QRCols:
      return makeQRHouseholder();
    case Kernel::Gmtry:
      return makeGmtry();
    case Kernel::Banded:
      return makeCholeskyBanded();
    }
    return makeMatMul();
  }();
  const Program &P = *Spec.Prog;

  ShackleChain Chain = [&] {
    switch (C.K) {
    case Kernel::MatMulC:
      return mmmShackleC(P, C.B);
    case Kernel::MatMulCxA:
      return mmmShackleCxA(P, C.B);
    case Kernel::MatMulTwoLevel:
      return mmmShackleTwoLevel(P, 2 * C.B, C.B);
    case Kernel::CholRightStores:
    case Kernel::CholLeftStores:
    case Kernel::Banded:
      return choleskyShackleStores(P, C.B);
    case Kernel::CholRightReads:
      return choleskyShackleReads(P, C.B);
    case Kernel::CholRightProduct:
      return choleskyShackleProduct(P, C.B, /*WritesFirst=*/true);
    case Kernel::QRCols:
      return qrColumnShackle(P, C.B);
    case Kernel::Gmtry:
      return gmtryShackleStores(P, C.B);
    }
    return mmmShackleC(P, C.B);
  }();

  ASSERT_TRUE(checkLegality(P, Chain).Legal);

  bool NeedsSPD = C.K != Kernel::MatMulC && C.K != Kernel::MatMulCxA &&
                  C.K != Kernel::MatMulTwoLevel && C.K != Kernel::QRCols;
  std::vector<int64_t> Params = {C.N};
  if (C.K == Kernel::Banded)
    Params.push_back(std::min<int64_t>(C.N - 1 > 0 ? C.N - 1 : 1, 5));

  ProgramInstance Ref(P, Params), Test(P, Params);
  Ref.fillRandom(1000 + C.N, 0.5, 1.5);
  if (NeedsSPD)
    for (int64_t I = 0; I < C.N; ++I) {
      int64_t Idx[2] = {I, I};
      Ref.buffer(0)[Ref.offset(0, Idx)] += 3.0 * static_cast<double>(C.N);
    }
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    Test.buffer(A) = Ref.buffer(A);

  runLoopNest(generateOriginalCode(P), Ref);
  runLoopNest(generateShackledCode(P, Chain), Test);
  EXPECT_EQ(Ref.maxAbsDifference(Test), 0.0);
}

std::vector<Case> allCases() {
  std::vector<Case> Cases;
  std::vector<Kernel> Kernels = {
      Kernel::MatMulC,        Kernel::MatMulCxA,  Kernel::MatMulTwoLevel,
      Kernel::CholRightStores, Kernel::CholRightReads,
      Kernel::CholRightProduct, Kernel::CholLeftStores,
      Kernel::QRCols,          Kernel::Gmtry,      Kernel::Banded};
  for (Kernel K : Kernels) {
    // Edge sizes around the block size 4: N < B, N == B, N == B +- 1,
    // several blocks, ragged tail, prime N.
    for (int64_t N : {1, 3, 4, 5, 8, 11, 16, 19})
      Cases.push_back(Case{K, N, 4});
    // A larger, odd block size against a ragged N.
    Cases.push_back(Case{K, 23, 7});
  }
  return Cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, Equivalence, ::testing::ValuesIn(allCases()));

//===----------------------------------------------------------------------===//
// Fallback tiers: whatever tier the fault-tolerant driver lands on, the
// numbers it computes are bit-identical to the shackled code.
//===----------------------------------------------------------------------===//

/// Runs \p Nest on a fresh instance seeded identically to the reference
/// and returns the max abs difference against running \p RefNest.
double diffAgainst(const Program &P, const LoopNest &RefNest,
                   const LoopNest &Nest, int64_t N, bool NeedsSPD) {
  ProgramInstance Ref(P, {N}), Test(P, {N});
  Ref.fillRandom(1000 + N, 0.5, 1.5);
  if (NeedsSPD)
    for (int64_t I = 0; I < N; ++I) {
      int64_t Idx[2] = {I, I};
      Ref.buffer(0)[Ref.offset(0, Idx)] += 3.0 * static_cast<double>(N);
    }
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    Test.buffer(A) = Ref.buffer(A);
  runLoopNest(RefNest, Ref);
  runLoopNest(Nest, Test);
  return Ref.maxAbsDifference(Test);
}

class FallbackTiers : public ::testing::TestWithParam<bool> {};

TEST_P(FallbackTiers, AllThreeTiersAgreeBitForBit) {
  // GetParam() selects Cholesky (true) or MMM (false): the two kernels the
  // paper's headline results rest on.
  bool Chol = GetParam();
  BenchSpec Spec = Chol ? makeCholeskyRight() : makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain =
      Chol ? choleskyShackleStores(P, 4) : mmmShackleC(P, 4);
  ASSERT_TRUE(checkLegality(P, Chain).Legal);

  LoopNest Shackled = generateShackledCode(P, Chain);
  LoopNest Naive = generateNaiveShackledCode(P, Chain);
  LoopNest Original = generateOriginalCode(P);
  for (int64_t N : {1, 4, 5, 11}) {
    EXPECT_EQ(diffAgainst(P, Shackled, Naive, N, Chol), 0.0)
        << "naive tier diverged at N=" << N;
    EXPECT_EQ(diffAgainst(P, Shackled, Original, N, Chol), 0.0)
        << "original tier diverged at N=" << N;
  }
}

INSTANTIATE_TEST_SUITE_P(CholeskyAndMMM, FallbackTiers, ::testing::Bool());

TEST(FallbackDriver, HealthyPipelineStaysOnShackledTier) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  CodegenResult R = generateCodeWithFallback(P, choleskyShackleStores(P, 4));
  EXPECT_EQ(R.Tier, CodegenTier::Shackled);
  EXPECT_TRUE(R.isBlocked());
  EXPECT_EQ(R.Legality.Verdict, LegalityVerdict::Legal);
  EXPECT_TRUE(R.Diags.empty());
  EXPECT_EQ(diffAgainst(P, generateShackledCode(P, choleskyShackleStores(P, 4)),
                        R.Nest, 11, /*NeedsSPD=*/true),
            0.0);
}

TEST(FallbackDriver, ExhaustedSolverFallsBackToOriginalCode) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  SolverBudget Tiny;
  Tiny.MaxWorkUnits = 1;
  CodegenResult R =
      generateCodeWithFallback(P, choleskyShackleStores(P, 4), Tiny);
  EXPECT_EQ(R.Tier, CodegenTier::Original);
  EXPECT_FALSE(R.isBlocked());
  EXPECT_EQ(R.Legality.Verdict, LegalityVerdict::Unknown);
  ASSERT_FALSE(R.Diags.empty());
  bool SawUnknown = false;
  for (const Diagnostic &D : R.Diags)
    SawUnknown |= D.Code == DiagCode::LegalityUnknown;
  EXPECT_TRUE(SawUnknown);
  // The emitted code is exactly the original program.
  EXPECT_EQ(R.Nest.str(), generateOriginalCode(P).str());
  EXPECT_EQ(diffAgainst(P, generateOriginalCode(P), R.Nest, 11,
                        /*NeedsSPD=*/true),
            0.0);
}

TEST(FallbackDriver, IllegalShackleFallsBackToOriginalCode) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = choleskyShackleStores(P, 4);
  Chain.Factors[0].Blocking.Planes[0].Reversed = true; // Known illegal.
  CodegenResult R = generateCodeWithFallback(P, Chain);
  EXPECT_EQ(R.Tier, CodegenTier::Original);
  EXPECT_EQ(R.Legality.Verdict, LegalityVerdict::Illegal);
  bool SawIllegal = false;
  for (const Diagnostic &D : R.Diags)
    SawIllegal |= D.Code == DiagCode::ShackleIllegal;
  EXPECT_TRUE(SawIllegal);
  EXPECT_EQ(R.Nest.str(), generateOriginalCode(P).str());
}

} // namespace
