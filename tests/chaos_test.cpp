//===- chaos_test.cpp - Chaos tests for the parallel runtime ------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Deterministic fault-injection tests (ctest label: chaos). Every test arms
// the process-wide FaultInjector with a seeded spec, runs the parallel
// runtime against it, and asserts the recovery contract: the run completes
// (retry or degradation, never a crash or hang), the result is
// bitwise-identical to serial shackled execution, and every injected fault
// is visible in the diagnostics and counters.
//
//===----------------------------------------------------------------------===//

#include "parallel/ChaseLevDeque.h"
#include "parallel/ParallelExecutor.h"
#include "parallel/Scheduler.h"
#include "parallel/UndoLog.h"
#include "programs/Benchmarks.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

using namespace shackle;

namespace {

#ifndef SHACKLE_CLI_PATH
#error "SHACKLE_CLI_PATH must be defined by the build"
#endif

/// Runs the CLI with \p Args; returns (exit code, combined stdout+stderr).
std::pair<int, std::string> runCli(const std::string &Args) {
  std::string Cmd = std::string(SHACKLE_CLI_PATH) + " " + Args + " 2>&1";
  std::FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, Got);
  int Status = pclose(Pipe);
  return {WEXITSTATUS(Status), Out};
}

/// Arms the injector in SetUp-compatible form and guarantees it is disarmed
/// when the test ends, so no schedule leaks into the next test.
class ChaosTest : public ::testing::Test {
protected:
  void SetUp() override {
    if (!FaultInjectionCompiledIn)
      GTEST_SKIP() << "built without SHACKLE_ENABLE_FAULT_INJECTION";
    FaultInjector::instance().disarm();
  }
  void TearDown() override { FaultInjector::instance().disarm(); }

  void arm(const std::string &Spec) {
    Status S = FaultInjector::instance().configure(Spec);
    ASSERT_TRUE(S.ok()) << S.diagnostic().str();
  }
};

bool hasDiag(const std::vector<Diagnostic> &Diags, DiagCode Code) {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

/// Builds the plan, runs it under \p Opts with the already-armed injector,
/// and asserts the recovery contract: completion, no Failed flag, and a
/// result bitwise-identical to serial shackled execution.
ParallelRunStats runExpectBitwise(const BenchSpec &Spec,
                                  const ShackleChain &Chain,
                                  std::vector<int64_t> Params,
                                  const ParallelRunOptions &Opts,
                                  const ParallelPlanOptions &PlanOpts =
                                      ParallelPlanOptions()) {
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, Chain, Params, PlanOpts);
  EXPECT_TRUE(Plan.parallelReady()) << Plan.summary();

  ProgramInstance Ref(P, Params);
  Ref.fillRandom(77, 0.5, 1.5);
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    for (double &V : Ref.buffer(A))
      V += 1.0; // Keep factorizations well conditioned.
  ProgramInstance Par = Ref;
  Plan.runSerial(Ref);

  ParallelRunStats Stats = Plan.run(Par, Opts);
  EXPECT_FALSE(Stats.Failed) << Spec.Name;
  EXPECT_TRUE(Ref.bitwiseEqual(Par))
      << Spec.Name << " mode=" << parallelModeName(Stats.Mode);
  EXPECT_TRUE(Stats.Progress.complete()) << Stats.Progress.str();
  return Stats;
}

//===----------------------------------------------------------------------===//
// Injection-spec parsing
//===----------------------------------------------------------------------===//

TEST_F(ChaosTest, MalformedSpecsAreUsageErrors) {
  FaultInjector &FI = FaultInjector::instance();
  for (const char *Bad :
       {"bogus@spec=1", "throw@block", "throw@block=x", "stall@worker=1,ms=",
        "throw@rate=2.5", "seed", ";;throw@block=1=2", "die@domain=x",
        "die@ms=1"}) {
    Status S = FI.configure(Bad);
    ASSERT_FALSE(S.ok()) << Bad;
    EXPECT_EQ(S.diagnostic().Code, DiagCode::UsageError) << Bad;
    EXPECT_FALSE(FI.armed()) << Bad; // A bad spec must not half-arm.
  }
}

TEST_F(ChaosTest, DisarmSilencesEveryHook) {
  arm("seed=1;throw@any,count=100");
  FaultInjector::instance().disarm();
  EXPECT_FALSE(injectTaskThrow(0));
  EXPECT_EQ(injectWorkerStall(0), 0u);
  EXPECT_FALSE(injectWorkerDeath(0));
  EXPECT_FALSE(injectAllocFail());
  EXPECT_FALSE(injectSolverUnknown());
  EXPECT_EQ(FaultInjector::instance().counters().total(), 0u);
}

TEST_F(ChaosTest, FireBudgetsAreFinite) {
  arm("seed=9;throw@any,count=2");
  EXPECT_TRUE(injectTaskThrow(0));
  EXPECT_TRUE(injectTaskThrow(1));
  EXPECT_FALSE(injectTaskThrow(2)); // Budget exhausted: recovery can finish.
  EXPECT_EQ(FaultInjector::instance().counters().TaskThrows, 2u);
}

//===----------------------------------------------------------------------===//
// Task throw -> rollback-and-retry (across the benchmark schedules)
//===----------------------------------------------------------------------===//

struct ThrowCase {
  const char *Label;
  BenchSpec (*Make)();
  ShackleChain (*Shackle)(const Program &);
  std::vector<int64_t> Params;
};

ShackleChain mmmC8(const Program &P) { return mmmShackleC(P, 8); }
ShackleChain mmmCxA8(const Program &P) { return mmmShackleCxA(P, 8); }
ShackleChain cholStores4(const Program &P) {
  return choleskyShackleStores(P, 4);
}
ShackleChain adi1(const Program &P) { return adiShackle(P); }

const ThrowCase ThrowCases[] = {
    {"matmul-c", makeMatMul, mmmC8, {32}},
    {"matmul-cxa", makeMatMul, mmmCxA8, {24}},
    {"cholesky-stores", makeCholeskyRight, cholStores4, {20}},
    {"adi-fused", makeADI, adi1, {12}},
};

TEST_F(ChaosTest, InjectedThrowIsRecoveredByRetryOnEverySchedule) {
  for (const ThrowCase &C : ThrowCases) {
    arm("seed=5;throw@block=1,count=1");
    BenchSpec Spec = C.Make();
    ParallelRunOptions Opts;
    Opts.NumThreads = 4;
    ParallelRunStats Stats = runExpectBitwise(Spec, C.Shackle(*Spec.Prog),
                                              C.Params, Opts);
    EXPECT_EQ(Stats.Mode, ParallelMode::Parallel) << C.Label;
    EXPECT_GE(Stats.Faults, 1u) << C.Label;
    EXPECT_GE(Stats.Retries, 1u) << C.Label;
    EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelFault)) << C.Label;
    ASSERT_GT(Stats.RetriesPerBlock.size(), 1u) << C.Label;
    EXPECT_GE(Stats.RetriesPerBlock[1], 1u) << C.Label;
    EXPECT_EQ(FaultInjector::instance().counters().TaskThrows, 1u) << C.Label;
  }
}

TEST_F(ChaosTest, RateBasedThrowsAreRecoveredDeterministically) {
  // Hash-selected blocks fail on every attempt until the fire budget
  // drains; with MaxRetries >= the total budget no block can exhaust its
  // retries, so all faults are absorbed in place.
  arm("seed=1234;throw@rate=0.5,count=6");
  BenchSpec Spec = makeMatMul();
  ParallelRunOptions Opts;
  Opts.NumThreads = 8;
  Opts.MaxRetries = 6;
  ParallelRunStats Stats =
      runExpectBitwise(Spec, mmmShackleC(*Spec.Prog, 8), {32}, Opts);
  EXPECT_EQ(Stats.Mode, ParallelMode::Parallel);
  EXPECT_GE(Stats.Faults, 1u);
  EXPECT_EQ(Stats.Faults,
            FaultInjector::instance().counters().TaskThrows);
}

TEST_F(ChaosTest, RetryExhaustionDegradesToSerialReplay) {
  // count=3 fires against MaxRetries=1: both parallel attempts of block 2
  // fail, the run quiesces and degrades, and the serial replay (one more
  // fire, then a clean retry) completes the suffix exactly.
  arm("seed=5;throw@block=2,count=3");
  BenchSpec Spec = makeMatMul();
  ParallelRunOptions Opts;
  Opts.NumThreads = 4;
  Opts.MaxRetries = 1;
  ParallelRunStats Stats =
      runExpectBitwise(Spec, mmmShackleC(*Spec.Prog, 8), {32}, Opts);
  EXPECT_EQ(Stats.Mode, ParallelMode::Degraded);
  EXPECT_EQ(Stats.Abort, DagAbort::TaskFailed);
  EXPECT_GT(Stats.ReplayedSerially, 0u);
  EXPECT_EQ(Stats.Faults, 3u);
  EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelFault));
  EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelDegrade));
}

TEST_F(ChaosTest, UndoLogOffMarksRunFailedInsteadOfLyingAboutResults) {
  arm("seed=5;throw@block=0,count=1");
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, mmmShackleC(P, 8), {16});
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance Inst(P, {16});
  Inst.fillRandom(3, 0.0, 1.0);
  ParallelRunOptions Opts;
  Opts.NumThreads = 2;
  Opts.UndoLog = false; // The benchmark fast path: no recovery.
  ParallelRunStats Stats = Plan.run(Inst, Opts);
  EXPECT_TRUE(Stats.Failed);
  EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelFault));
}

//===----------------------------------------------------------------------===//
// Watchdog: stalls, deaths, deadlines
//===----------------------------------------------------------------------===//

TEST_F(ChaosTest, StalledWorkerTripsWatchdogAndDegrades) {
  // One worker, so worker 0 is guaranteed to claim a block and hit the
  // stall (with more workers a loaded machine can let the others finish
  // everything before worker 0 ever claims, and no fault fires).
  arm("seed=3;stall@worker=0,ms=30000");
  BenchSpec Spec = makeCholeskyRight();
  ParallelRunOptions Opts;
  Opts.NumThreads = 1;
  Opts.StallTimeoutMs = 100;
  ParallelRunStats Stats = runExpectBitwise(
      Spec, choleskyShackleStores(*Spec.Prog, 4), {20}, Opts);
  EXPECT_EQ(Stats.Mode, ParallelMode::Degraded);
  EXPECT_EQ(Stats.Abort, DagAbort::Stalled);
  EXPECT_GT(Stats.ReplayedSerially, 0u);
  EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelFault));
  EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelDegrade));
  EXPECT_EQ(FaultInjector::instance().counters().WorkerStalls, 1u);
}

TEST_F(ChaosTest, DeadWorkerLosesItsTaskButTheRunRecovers) {
  arm("seed=3;die@worker=0");
  BenchSpec Spec = makeCholeskyRight();
  ParallelRunOptions Opts;
  Opts.NumThreads = 1; // Worker 0 must claim; see the stall test above.
  Opts.StallTimeoutMs = 100;
  ParallelRunStats Stats = runExpectBitwise(
      Spec, choleskyShackleStores(*Spec.Prog, 4), {20}, Opts);
  EXPECT_EQ(Stats.Mode, ParallelMode::Degraded);
  EXPECT_EQ(Stats.Abort, DagAbort::Stalled);
  EXPECT_EQ(FaultInjector::instance().counters().WorkerDeaths, 1u);
}

TEST_F(ChaosTest, DomainDeathClauseParsesAndHasAFiniteBudget) {
  arm("seed=1;die@domain=1,count=2");
  EXPECT_FALSE(injectDomainDeath(0)); // Only the named domain dies.
  EXPECT_FALSE(injectWorkerDeath(0)); // Distinct clause, distinct hook.
  EXPECT_TRUE(injectDomainDeath(1));
  EXPECT_TRUE(injectDomainDeath(1));
  EXPECT_FALSE(injectDomainDeath(1)); // Budget exhausted.
  EXPECT_EQ(FaultInjector::instance().counters().DomainDeaths, 2u);
}

TEST_F(ChaosTest, DeadDomainIsDrainedByRemoteStealsAndRecovers) {
  // Kill locality domain 0 (workers 0 and 1 at DomainSize = 2): each dies
  // on its first claim, losing that task. ADI's outer column panels are
  // fully independent (every task initially ready, seeded to its home
  // deque), so domain 0's remaining tasks can only be executed by domain 1
  // workers raiding the dead workers' deques and mailboxes across the
  // domain boundary. The lost claims wedge the pool; the watchdog then
  // degrades to the bitwise serial replay.
  arm("seed=3;die@domain=0,count=2");
  BenchSpec Spec = makeADI();
  ParallelRunOptions Opts;
  Opts.NumThreads = 4;
  Opts.DomainSize = 2;
  Opts.StallTimeoutMs = 150;
  ParallelPlanOptions PlanOpts;
  PlanOpts.TaskLevel = 1; // Outer panels only: an edge-free task graph.
  ParallelRunStats Stats =
      runExpectBitwise(Spec, adiShackleTwoLevel(*Spec.Prog, 8), {64}, Opts,
                       PlanOpts);
  EXPECT_EQ(Stats.Mode, ParallelMode::Degraded);
  EXPECT_EQ(Stats.Abort, DagAbort::Stalled);
  EXPECT_EQ(Stats.NumDomains, 2u);
  // Domain 0 owns a quarter of the panels per worker; at most two are lost
  // to the deaths and no domain-0 worker can run the rest (a claim kills),
  // so the survivors must have pulled at least two across the boundary.
  EXPECT_GE(Stats.RemoteSteals, 2u);
  EXPECT_GE(FaultInjector::instance().counters().DomainDeaths, 1u);
  EXPECT_GT(Stats.ReplayedSerially, 0u);
  EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelDegrade));
}

TEST_F(ChaosTest, DeadlineExpiryDegradesAndStillFinishesExactly) {
  arm("seed=3;stall@worker=0,ms=30000");
  BenchSpec Spec = makeCholeskyRight();
  ParallelRunOptions Opts;
  Opts.NumThreads = 1; // Worker 0 must claim; see the stall test above.
  Opts.DeadlineMs = 80;
  // No explicit stall timeout: the injector-armed default must not preempt
  // a deadline this short (it is clamped above DeadlineMs by construction).
  ParallelRunStats Stats = runExpectBitwise(
      Spec, choleskyShackleStores(*Spec.Prog, 4), {20}, Opts);
  EXPECT_EQ(Stats.Mode, ParallelMode::Degraded);
  EXPECT_EQ(Stats.Abort, DagAbort::Deadline);
  EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelDegrade));
}

//===----------------------------------------------------------------------===//
// Hierarchical outer tasks under injection
//===----------------------------------------------------------------------===//

/// True when some diag's message contains \p MsgSub and one of that diag's
/// notes contains \p NoteSub.
bool diagNoteContains(const std::vector<Diagnostic> &Diags,
                      const std::string &MsgSub, const std::string &NoteSub) {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(MsgSub) != std::string::npos)
      for (const Diagnostic &Note : D.Notes)
        if (Note.Message.find(NoteSub) != std::string::npos)
          return true;
  return false;
}

TEST(HierarchicalUndo, FootprintIsTheWholeOuterBlock) {
  // The rollback granularity of a hierarchical plan is the outer block:
  // the undo log snapshots every element the task's segments (all inner
  // levels included) can write, not one inner block.
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 8, 4);
  ProgramInstance Inst(P, {16});
  Inst.fillRandom(3, 0.0, 1.0);

  ParallelPlanOptions Hier;
  Hier.TaskLevel = 2;
  ParallelPlan HPlan = ParallelPlan::build(P, Chain, {16}, Hier);
  ASSERT_TRUE(HPlan.parallelReady());
  BlockUndoLog HUndo =
      captureBlockUndo(HPlan.nest(), HPlan.partition().Tasks[0], Inst);
  EXPECT_EQ(HUndo.Entries.size(), 64u); // One 8x8 outer block of C.

  ParallelPlan FPlan = ParallelPlan::build(P, Chain, {16});
  ASSERT_TRUE(FPlan.parallelReady());
  BlockUndoLog FUndo =
      captureBlockUndo(FPlan.nest(), FPlan.partition().Tasks[0], Inst);
  EXPECT_EQ(FUndo.Entries.size(), 16u); // One 4x4 inner block of C.
}

TEST_F(ChaosTest, HierarchicalThrowRollsBackTheWholeOuterTask) {
  arm("seed=5;throw@block=1,count=1");
  BenchSpec Spec = makeMatMul();
  ParallelPlanOptions PlanOpts;
  PlanOpts.TaskLevel = 2;
  ParallelRunOptions Opts;
  Opts.NumThreads = 4;
  ParallelRunStats Stats = runExpectBitwise(
      Spec, mmmShackleTwoLevel(*Spec.Prog, 8, 4), {16}, Opts, PlanOpts);
  EXPECT_EQ(Stats.Mode, ParallelMode::Parallel);
  EXPECT_GE(Stats.Faults, 1u);
  EXPECT_GE(Stats.Retries, 1u);
  EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelFault));
  // Stats count outer tasks: 8 at N=16 (4 C outer blocks x 2 A column
  // groups), each replaying several inner segments serially.
  EXPECT_EQ(Stats.TaskFactors, 2u);
  EXPECT_EQ(Stats.TotalFactors, 4u);
  EXPECT_EQ(Stats.BlocksRun, 8u);
  EXPECT_GE(Stats.SegmentsRun, Stats.BlocksRun);
  ASSERT_EQ(Stats.RetriesPerBlock.size(), 8u);
  EXPECT_GE(Stats.RetriesPerBlock[1], 1u);
  // The rollback restored the outer task's whole footprint - the full 8x8
  // outer block of C (64 elements), not one 4x4 inner block.
  EXPECT_TRUE(diagNoteContains(Stats.Diags, "outer task #1",
                               "rolled back (64 element(s))"))
      << "no outer-granularity rollback note found";
}

TEST_F(ChaosTest, HierarchicalStallDegradesToBitwiseSerialReplay) {
  // One worker so worker 0 is guaranteed to claim an outer task and hit
  // the stall; the watchdog quiesces and the unfinished outer tasks are
  // replayed serially - still bitwise-identical.
  arm("seed=3;stall@worker=0,ms=30000");
  BenchSpec Spec = makeCholeskyRight();
  ParallelPlanOptions PlanOpts;
  PlanOpts.TaskLevel = 1;
  ParallelRunOptions Opts;
  Opts.NumThreads = 1;
  Opts.StallTimeoutMs = 100;
  ParallelRunStats Stats =
      runExpectBitwise(Spec, choleskyShackleProduct(*Spec.Prog, 4, true),
                       {20}, Opts, PlanOpts);
  EXPECT_EQ(Stats.Mode, ParallelMode::Degraded);
  EXPECT_EQ(Stats.Abort, DagAbort::Stalled);
  EXPECT_GT(Stats.ReplayedSerially, 0u);
  EXPECT_EQ(Stats.TaskFactors, 1u);
  EXPECT_EQ(Stats.TotalFactors, 2u);
  EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelDegrade));
}

TEST_F(ChaosTest, HierarchicalDeadlineDegradesBitwise) {
  arm("seed=3;stall@worker=0,ms=30000");
  BenchSpec Spec = makeMatMul();
  ParallelPlanOptions PlanOpts;
  PlanOpts.TaskLevel = 2;
  ParallelRunOptions Opts;
  Opts.NumThreads = 1; // Worker 0 must claim; see the stall test above.
  Opts.DeadlineMs = 80;
  ParallelRunStats Stats = runExpectBitwise(
      Spec, mmmShackleTwoLevel(*Spec.Prog, 8, 4), {16}, Opts, PlanOpts);
  EXPECT_EQ(Stats.Mode, ParallelMode::Degraded);
  EXPECT_EQ(Stats.Abort, DagAbort::Deadline);
  EXPECT_TRUE(hasDiag(Stats.Diags, DiagCode::ParallelDegrade));
}

//===----------------------------------------------------------------------===//
// Allocation failure in deque growth
//===----------------------------------------------------------------------===//

TEST_F(ChaosTest, DequeSurvivesBadAllocDuringGrowth) {
  arm("alloc-fail@grow=1,count=1");
  ChaseLevDeque<int> D(2); // Capacity 2: the third push must grow.
  EXPECT_TRUE(D.push(10));
  EXPECT_TRUE(D.push(11));
  EXPECT_FALSE(D.push(12)); // Growth threw; item rejected, deque intact.
  EXPECT_EQ(FaultInjector::instance().counters().AllocFails, 1u);

  int V = -1;
  ASSERT_TRUE(D.steal(V));
  EXPECT_EQ(V, 10); // The failed push corrupted nothing.
  ASSERT_TRUE(D.pop(V));
  EXPECT_EQ(V, 11);
  EXPECT_FALSE(D.pop(V));

  // The budget is spent: the next growth succeeds and service resumes.
  for (int I = 0; I < 100; ++I)
    EXPECT_TRUE(D.push(I));
  int Count = 0;
  while (D.pop(V))
    ++Count;
  EXPECT_EQ(Count, 100);
}

TEST_F(ChaosTest, DequeBadAllocMidStealKeepsThievesConsistent) {
  // A thief races the owner while every growth attempt fails: items already
  // published must each be taken exactly once, rejected pushes never appear.
  arm("alloc-fail@grow=1,count=1000000");
  ChaseLevDeque<int> D(4);
  const int Tries = 20000;
  std::vector<std::atomic<uint8_t>> Taken(Tries);
  for (auto &T : Taken)
    T.store(0);
  std::atomic<bool> Stop{false};
  std::thread Thief([&] {
    int V = -1;
    while (!Stop.load(std::memory_order_acquire))
      if (D.steal(V))
        Taken[V].fetch_add(1);
  });
  int Accepted = 0, Rejected = 0;
  std::vector<uint8_t> Pushed(Tries, 0);
  for (int I = 0; I < Tries; ++I) {
    if (D.push(I)) {
      Pushed[I] = 1;
      ++Accepted;
    } else {
      ++Rejected;
    }
  }
  int V = -1;
  while (D.pop(V))
    Taken[V].fetch_add(1);
  for (int Spin = 0; Spin < 1000000 && D.sizeEstimate() > 0; ++Spin)
    std::this_thread::yield();
  Stop.store(true, std::memory_order_release);
  Thief.join();

  EXPECT_GT(Rejected, 0); // The schedule really exercised failed growth.
  EXPECT_GT(Accepted, 0);
  for (int I = 0; I < Tries; ++I)
    EXPECT_EQ(Taken[I].load(), Pushed[I]) << "item " << I;
}

TEST_F(ChaosTest, SchedulerOverflowQueueLosesNoTaskWhenGrowthFails) {
  // A root task releases thousands of successors at once; with every deque
  // growth failing, the hand-offs divert to the overflow queue and the run
  // still executes every task exactly once.
  arm("alloc-fail@grow=1,count=1000000");
  const std::size_t N = 5001;
  std::vector<std::vector<uint32_t>> Succs(N);
  for (uint32_t V = 1; V < N; ++V)
    Succs[0].push_back(V);
  std::vector<uint32_t> InDeg(N, 1);
  InDeg[0] = 0;
  std::vector<std::atomic<uint32_t>> Ran(N);
  for (auto &R : Ran)
    R.store(0);
  DagRunOptions Opts;
  Opts.NumThreads = 4;
  DagRunResult Result = runTaskDagPartial(
      N, Succs, InDeg, Opts, [&](uint32_t T, unsigned) {
        Ran[T].fetch_add(1);
        return true;
      });
  ASSERT_FALSE(Result.Refused);
  EXPECT_TRUE(Result.Completed);
  EXPECT_GT(Result.Stats.OverflowPushes, 0u);
  EXPECT_GT(FaultInjector::instance().counters().AllocFails, 0u);
  for (std::size_t T = 0; T < N; ++T)
    ASSERT_EQ(Ran[T].load(), 1u) << "task " << T;
}

//===----------------------------------------------------------------------===//
// Solver-budget exhaustion during DAG construction
//===----------------------------------------------------------------------===//

TEST_F(ChaosTest, SolverUnknownPoisonsGraphIntoSerialFallback) {
  // Unknown feasibility verdicts make the sign-pattern set unsound for
  // scheduling; the plan must refuse parallelism, diagnose the fallback,
  // and still compute exact results. The injector is armed before build()
  // because the queries run during DAG construction.
  arm("solver-unknown@query=1,count=1000000");
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan =
      ParallelPlan::build(P, choleskyShackleStores(P, 4), {20});
  EXPECT_GT(FaultInjector::instance().counters().SolverUnknowns, 0u);
  EXPECT_FALSE(Plan.parallelReady()) << Plan.summary();
  EXPECT_TRUE(hasDiag(Plan.diags(), DiagCode::ParallelFallback));

  FaultInjector::instance().disarm(); // Execution itself runs clean.
  ProgramInstance Ref(P, {20}), Par(P, {20});
  Ref.fillRandom(77, 0.5, 1.5);
  for (double &V : Ref.buffer(0))
    V += 1.0;
  Par.buffer(0) = Ref.buffer(0);
  Plan.runSerial(Ref);
  ParallelRunStats Stats = Plan.run(Par, 4);
  EXPECT_EQ(Stats.Mode, ParallelMode::SerialFallback);
  EXPECT_TRUE(Ref.bitwiseEqual(Par));
}

//===----------------------------------------------------------------------===//
// End-to-end through the CLI
//===----------------------------------------------------------------------===//

TEST_F(ChaosTest, CliChaosRunRecoversAndVerifiesBitwise) {
  auto [Rc, Out] =
      runCli("run matmul c --params=32 --block=8 --threads=4 "
             "--inject='seed=7;throw@block=2,count=1' --verify");
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("[parallel-fault]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("recovered"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bitwise-identical"), std::string::npos) << Out;
}

TEST_F(ChaosTest, CliChaosDegradeStillExitsZeroAndVerifies) {
  auto [Rc, Out] =
      runCli("run matmul c --params=32 --block=8 --threads=4 --max-retries=1 "
             "--inject='seed=7;throw@block=2,count=3' --verify");
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("[parallel-degrade]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("mode=degraded"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bitwise-identical"), std::string::npos) << Out;
}

TEST_F(ChaosTest, CliHierarchicalChaosRunRecoversAtOuterGranularity) {
  auto [Rc, Out] =
      runCli("run matmul two-level --params=16 --block=8 --threads=4 "
             "--task-level=2 --inject='seed=7;throw@block=1,count=1' "
             "--verify");
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("[parallel-fault]"), std::string::npos) << Out;
  // Diagnostics and retry stats speak in outer tasks, not inner blocks.
  EXPECT_NE(Out.find("outer task"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("block #"), std::string::npos) << Out;
  EXPECT_NE(Out.find("recovered"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bitwise-identical"), std::string::npos) << Out;
}

TEST_F(ChaosTest, CliRejectsMalformedInjectSpec) {
  // Exit 2 (illegal spec, not a usage slip) with a line/col diagnostic: a
  // typo here must never silently run without faults.
  auto [Rc, Out] = runCli("run matmul c --params=16 --inject='bogus@x=1'");
  EXPECT_EQ(Rc, 2) << Out;
  EXPECT_NE(Out.find("usage-error"), std::string::npos) << Out;
  EXPECT_NE(Out.find("col 1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("grammar"), std::string::npos) << Out;
}

} // namespace
