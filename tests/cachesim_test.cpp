//===- cachesim_test.cpp - Cache hierarchy simulator ---------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "cachesim/CacheSim.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

TEST(CacheLevel, SequentialSweepMissesOncePerLine) {
  CacheLevel L(CacheConfig{"L1", 1024, 64, 2});
  for (uint64_t A = 0; A < 4096; A += 8)
    L.access(A);
  EXPECT_EQ(L.misses(), 4096u / 64u);
  EXPECT_EQ(L.hits(), 4096u / 8u - 4096u / 64u);
}

TEST(CacheLevel, RepeatedAccessHitsAfterFirstMiss) {
  CacheLevel L(CacheConfig{"L1", 1024, 64, 2});
  for (int I = 0; I < 100; ++I)
    L.access(0x1000);
  EXPECT_EQ(L.misses(), 1u);
  EXPECT_EQ(L.hits(), 99u);
}

TEST(CacheLevel, LruEvictsTheLeastRecentWay) {
  // 2-way, 64B lines, 1024B total -> 8 sets. Three lines mapping to set 0:
  // addresses 0, 8*64*1 = 512... sets = (addr/64) % 8, so 0, 512, 1024 all
  // land in set 0.
  CacheLevel L(CacheConfig{"L1", 1024, 64, 2});
  EXPECT_FALSE(L.access(0));    // Miss, way 0.
  EXPECT_FALSE(L.access(512));  // Miss, way 1.
  EXPECT_TRUE(L.access(0));     // Hit, refreshes line 0.
  EXPECT_FALSE(L.access(1024)); // Miss, evicts 512 (LRU).
  EXPECT_TRUE(L.access(0));     // Still resident.
  EXPECT_FALSE(L.access(512));  // Was evicted.
}

TEST(CacheLevel, FullAssociativityUsesAllWays) {
  // 4-way, one set (4 * 64 = 256 bytes).
  CacheLevel L(CacheConfig{"L1", 256, 64, 4});
  for (uint64_t A = 0; A < 4 * 64; A += 64)
    L.access(A);
  for (uint64_t A = 0; A < 4 * 64; A += 64)
    EXPECT_TRUE(L.access(A)) << A;
}

TEST(CacheHierarchy, MissesPropagateToNextLevel) {
  CacheHierarchy H({
      CacheConfig{"L1", 256, 64, 2},
      CacheConfig{"L2", 4096, 64, 4},
  });
  // Stream 128 distinct lines: all miss L1, all miss L2 once; re-stream:
  // too big for L1 (4 lines) but fits L2 (64 lines)? 128 lines > 64 lines,
  // so use 32 lines instead.
  for (int Round = 0; Round < 2; ++Round)
    for (uint64_t A = 0; A < 32 * 64; A += 64)
      H.access(A);
  EXPECT_EQ(H.accesses(), 64u);
  EXPECT_EQ(H.level(0).misses(), 64u); // 4-line L1 thrashes every time.
  EXPECT_EQ(H.level(1).misses(), 32u); // Second round hits in L2.
}

TEST(CacheHierarchy, ReportMentionsEveryLevel) {
  CacheHierarchy H = CacheHierarchy::classic();
  H.access(0);
  std::string R = H.report();
  EXPECT_NE(R.find("L1"), std::string::npos);
  EXPECT_NE(R.find("L2"), std::string::npos);
  EXPECT_NE(R.find("missrate"), std::string::npos);
}

TEST(CacheHierarchy, ResetClearsCountersButNotContents) {
  CacheHierarchy H = CacheHierarchy::classic();
  H.access(0x40);
  H.resetCounters();
  EXPECT_EQ(H.accesses(), 0u);
  H.access(0x40); // Still cached from before the reset.
  EXPECT_EQ(H.level(0).hits(), 1u);
}

/// End-to-end: blocking must reduce simulated misses on a cache-sized
/// problem — the qualitative content of the paper's graphs.
TEST(CacheIntegration, BlockedMatMulHasFarFewerMisses) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  const int64_t N = 48; // 3 * 48^2 * 8B = 55 KB; L1 below is 8 KB.
  auto CountL1Misses = [&](const LoopNest &Nest) {
    ProgramInstance Inst(P, {N});
    Inst.fillRandom(1, 0.5, 1.5);
    CacheHierarchy H({CacheConfig{"L1", 8 * 1024, 64, 4}});
    TraceFn Trace = [&H](unsigned ArrayId, int64_t Off, bool) {
      H.access((static_cast<uint64_t>(ArrayId + 1) << 30) +
               static_cast<uint64_t>(Off) * 8);
    };
    runLoopNest(Nest, Inst, &Trace);
    return H.level(0).misses();
  };
  uint64_t Orig = CountL1Misses(generateOriginalCode(P));
  uint64_t Blocked =
      CountL1Misses(generateShackledCode(P, mmmShackleCxA(P, 8)));
  EXPECT_LT(Blocked * 4, Orig)
      << "blocked misses " << Blocked << " vs original " << Orig;
}

} // namespace
