//===- legality_test.cpp - Shackle legality (Theorem 1) -----------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The paper's legality claims, checked two independent ways: the exact ILP
// test (Theorem 1, symbolic in N), and a brute-force oracle that enumerates
// every statement instance at a small concrete N, sorts instances by
// (block coordinates of the shackled reference, original program order),
// and verifies every dependent pair stays ordered. The two must agree.
//
// Paper discrepancy note (Section 6.1): the prose lists A[L,J] for S3 in
// the second legal Cholesky shackle. Both checkers here agree that that
// choice is illegal and that A[K,J] is the legal one; see
// choleskyShackleReads in src/programs/Benchmarks.cpp.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <vector>

using namespace shackle;

namespace {

struct InstanceRecord {
  unsigned StmtId;
  std::vector<int64_t> Iter;
};

std::vector<InstanceRecord> enumerateInstances(const Program &P,
                                               std::vector<int64_t> Params) {
  std::vector<InstanceRecord> Out;
  std::vector<int64_t> VarValues(P.getNumVars(), 0);
  for (unsigned V = 0; V < P.getNumParams(); ++V)
    VarValues[V] = Params[V];
  std::function<void(const std::vector<Node> &)> Walk =
      [&](const std::vector<Node> &Body) {
        for (const Node &N : Body) {
          if (N.isLoop()) {
            const Loop &L = *N.L;
            int64_t Lo = L.LowerBounds[0].evaluate(VarValues);
            for (unsigned I = 1; I < L.LowerBounds.size(); ++I)
              Lo = std::max(Lo, L.LowerBounds[I].evaluate(VarValues));
            int64_t Hi = L.UpperBounds[0].evaluate(VarValues);
            for (unsigned I = 1; I < L.UpperBounds.size(); ++I)
              Hi = std::min(Hi, L.UpperBounds[I].evaluate(VarValues));
            for (int64_t V = Lo; V <= Hi; ++V) {
              VarValues[L.Var] = V;
              Walk(L.Body);
            }
          } else {
            InstanceRecord R;
            R.StmtId = N.S->Id;
            for (unsigned Var : N.S->LoopVars)
              R.Iter.push_back(VarValues[Var]);
            Out.push_back(std::move(R));
          }
        }
      };
  Walk(P.topLevel());
  return Out;
}

/// Block coordinates assigned to one instance by a shackle chain, by direct
/// evaluation of the definition.
std::vector<int64_t> blockCoords(const Program &P, const ShackleChain &Chain,
                                 const InstanceRecord &R,
                                 const std::vector<int64_t> &Params) {
  const Stmt &S = P.getStmt(R.StmtId);
  std::vector<int64_t> VarValues(P.getNumVars(), 0);
  for (unsigned V = 0; V < P.getNumParams(); ++V)
    VarValues[V] = Params[V];
  for (unsigned K = 0; K < S.LoopVars.size(); ++K)
    VarValues[S.LoopVars[K]] = R.Iter[K];

  std::vector<int64_t> Coords;
  for (const DataShackle &F : Chain.Factors) {
    const ArrayRef &Ref = F.ShackledRefs[R.StmtId];
    std::vector<int64_t> Idx;
    for (const AffineExpr &E : Ref.Indices)
      Idx.push_back(E.evaluate(VarValues));
    for (const CuttingPlaneSet &PS : F.Blocking.Planes) {
      int64_t E = 0;
      for (unsigned D = 0; D < PS.Normal.size(); ++D)
        E += PS.Normal[D] * Idx[D];
      int64_t Z = E >= 0 ? E / PS.BlockSize
                         : -((-E + PS.BlockSize - 1) / PS.BlockSize);
      Coords.push_back(PS.Reversed ? -Z : Z);
    }
  }
  return Coords;
}

/// Brute-force legality: execution order = stable sort by block coords,
/// check all dependent pairs keep their order.
bool bruteForceLegal(const Program &P, const ShackleChain &Chain, int64_t N,
                     std::vector<int64_t> ExtraParams = {}) {
  std::vector<int64_t> Params = {N};
  for (int64_t E : ExtraParams)
    Params.push_back(E);
  std::vector<InstanceRecord> Insts = enumerateInstances(P, Params);

  std::vector<std::vector<int64_t>> Keys;
  for (const InstanceRecord &R : Insts)
    Keys.push_back(blockCoords(P, Chain, R, Params));
  std::vector<unsigned> Order(Insts.size());
  for (unsigned I = 0; I < Order.size(); ++I)
    Order[I] = I;
  std::stable_sort(Order.begin(), Order.end(),
                   [&](unsigned A, unsigned B) { return Keys[A] < Keys[B]; });
  std::vector<unsigned> Pos(Insts.size());
  for (unsigned I = 0; I < Order.size(); ++I)
    Pos[Order[I]] = I;

  auto EvalRef = [&](const ArrayRef &Ref, const InstanceRecord &R) {
    const Stmt &S = P.getStmt(R.StmtId);
    std::vector<int64_t> VarValues(P.getNumVars(), 0);
    for (unsigned V = 0; V < P.getNumParams(); ++V)
      VarValues[V] = Params[V];
    for (unsigned K = 0; K < S.LoopVars.size(); ++K)
      VarValues[S.LoopVars[K]] = R.Iter[K];
    std::vector<int64_t> Out = {static_cast<int64_t>(Ref.ArrayId)};
    for (const AffineExpr &E : Ref.Indices)
      Out.push_back(E.evaluate(VarValues));
    return Out;
  };

  for (size_t A = 0; A < Insts.size(); ++A) {
    for (size_t B = A + 1; B < Insts.size(); ++B) {
      if (Pos[A] < Pos[B])
        continue; // Order preserved; nothing to check.
      auto RefsA = P.getStmt(Insts[A].StmtId).refs();
      auto RefsB = P.getStmt(Insts[B].StmtId).refs();
      for (const auto &[RA, WA] : RefsA)
        for (const auto &[RB, WB] : RefsB)
          if ((WA || WB) && EvalRef(*RA, Insts[A]) == EvalRef(*RB, Insts[B]))
            return false;
    }
  }
  return true;
}

//===----------------------------------------------------------------------===//
// The paper's census, validated against the oracle
//===----------------------------------------------------------------------===//

struct CensusCase {
  unsigned S2Ref, S3Ref;
  bool ExpectLegal;
};

class CholeskyCensus : public ::testing::TestWithParam<CensusCase> {};

TEST_P(CholeskyCensus, ILPAndBruteForceAgree) {
  CensusCase C = GetParam();
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  std::vector<unsigned> RefIdx = {0, C.S2Ref, C.S3Ref};
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onRefs(
      P, DataBlocking::rectangular(0, {3, 3}, {1, 0}), RefIdx));
  bool ILP = checkLegality(P, Chain).Legal;
  EXPECT_EQ(ILP, C.ExpectLegal);
  EXPECT_EQ(bruteForceLegal(P, Chain, 9), C.ExpectLegal);
}

// S2 refs: 1 = A[I,J], 2 = A[J,J]. S3 refs: 1 = A[L,K], 2 = A[L,J],
// 3 = A[K,J]. Column-block-major traversal (the paper's Figure 7 walk).
INSTANTIATE_TEST_SUITE_P(AllSixChoices, CholeskyCensus,
                         ::testing::Values(CensusCase{1, 1, true},
                                           CensusCase{1, 2, true},
                                           CensusCase{1, 3, false},
                                           CensusCase{2, 1, false},
                                           CensusCase{2, 2, false},
                                           CensusCase{2, 3, true}));

//===----------------------------------------------------------------------===//
// Products (Section 6)
//===----------------------------------------------------------------------===//

TEST(Legality, ProductOfLegalShacklesIsLegal) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  for (bool WritesFirst : {true, false}) {
    ShackleChain Prod = choleskyShackleProduct(P, 8, WritesFirst);
    EXPECT_TRUE(checkLegality(P, Prod).Legal);
    EXPECT_TRUE(bruteForceLegal(P, Prod, 12));
  }
}

TEST(Legality, ProductCanBeLegalWhenSecondFactorAloneIsNot) {
  // Paper Section 6: "a product M1 x M2 can be legal even if M2 by itself
  // is illegal" — the outer factor carries the troublesome dependence, like
  // an outer loop carrying the dependence that blocks an inner interchange.
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;

  // M2: shackle B[K,J] walking the K blocks *in reverse*. Alone this runs
  // the C[I,J] reduction backwards across K blocks: illegal.
  DataBlocking BBlk = DataBlocking::rectangular(2, {8, 8});
  BBlk.Planes[0].Reversed = true;
  DataShackle M2 = DataShackle::onRefs(P, BBlk, {3});
  {
    ShackleChain Alone;
    Alone.Factors.push_back(M2);
    ASSERT_FALSE(checkLegality(P, Alone).Legal);
    ASSERT_FALSE(bruteForceLegal(P, Alone, 20));
  }

  // M1: shackle A[I,K] with the same 8-blocks. Its K planes carry the
  // reduction dependence forward; within one A block the reversed M2 walk
  // pins the same K block, so the product is legal.
  ShackleChain Prod;
  Prod.Factors.push_back(DataShackle::onRefs(
      P, DataBlocking::rectangular(1, {8, 8}), {2}));
  Prod.Factors.push_back(M2);
  EXPECT_TRUE(checkLegality(P, Prod).Legal);
  EXPECT_TRUE(bruteForceLegal(P, Prod, 20));
}

TEST(Legality, MatMulAllSingleShacklesLegal) {
  // Section 6.1: shackling any of C[I,J], A[I,K], B[K,J] is legal, hence
  // all products are too.
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  for (unsigned RefIdx : {0u, 2u, 3u}) { // store C, load A, load B.
    auto Refs = P.getStmt(0).refs();
    unsigned Arr = Refs[RefIdx].first->ArrayId;
    ShackleChain Chain;
    Chain.Factors.push_back(DataShackle::onRefs(
        P, DataBlocking::rectangular(Arr, {5, 5}), {RefIdx}));
    EXPECT_TRUE(checkLegality(P, Chain).Legal) << RefIdx;
    EXPECT_TRUE(bruteForceLegal(P, Chain, 11)) << RefIdx;
  }
}

TEST(Legality, ReversedTraversalChangesLegality) {
  // Blocking C of MMM and walking blocks in reverse row order is still
  // legal (no dependence constrains I's direction across C rows)...
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  DataBlocking B = DataBlocking::rectangular(0, {4, 4});
  B.Planes[0].Reversed = true;
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onStores(P, B));
  EXPECT_TRUE(checkLegality(P, Chain).Legal);
  EXPECT_TRUE(bruteForceLegal(P, Chain, 9));

  // ...but reversing the Cholesky column walk is illegal: later columns
  // need earlier columns factored first.
  BenchSpec Chol = makeCholeskyRight();
  DataBlocking CB = DataBlocking::rectangular(0, {4, 4}, {1, 0});
  CB.Planes[0].Reversed = true;
  ShackleChain CChain;
  CChain.Factors.push_back(DataShackle::onStores(*Chol.Prog, CB));
  EXPECT_FALSE(checkLegality(*Chol.Prog, CChain).Legal);
  EXPECT_FALSE(bruteForceLegal(*Chol.Prog, CChain, 12));
}

TEST(Legality, QRColumnShackleLegalButReversedWalkIllegal) {
  BenchSpec Spec = makeQRHouseholder();
  const Program &P = *Spec.Prog;
  EXPECT_TRUE(checkLegality(P, qrColumnShackle(P, 4)).Legal);
  EXPECT_TRUE(bruteForceLegal(P, qrColumnShackle(P, 4), 9));

  // Note: because every shackled reference sits on the diagonal (K,K) or
  // (J,J), switching the plane normal from columns to rows yields the very
  // same instance-to-block map, so "row blocking" is equally legal here.
  ShackleChain Rows = qrColumnShackle(P, 4);
  for (CuttingPlaneSet &PS : Rows.Factors[0].Blocking.Planes)
    PS.Normal = {1, 0};
  EXPECT_TRUE(checkLegality(P, Rows).Legal);

  // Walking the column blocks right-to-left, however, applies updates
  // before their reflectors exist: illegal, by both checkers.
  ShackleChain Reversed = qrColumnShackle(P, 4);
  Reversed.Factors[0].Blocking.Planes[0].Reversed = true;
  EXPECT_FALSE(checkLegality(P, Reversed).Legal);
  EXPECT_FALSE(bruteForceLegal(P, Reversed, 9));
}

TEST(Legality, GmtryAndBandedAndADI) {
  {
    BenchSpec S = makeGmtry();
    EXPECT_TRUE(checkLegality(*S.Prog, gmtryShackleStores(*S.Prog, 4)).Legal);
    EXPECT_TRUE(bruteForceLegal(*S.Prog, gmtryShackleStores(*S.Prog, 4), 9));
  }
  {
    BenchSpec S = makeADI();
    EXPECT_TRUE(checkLegality(*S.Prog, adiShackle(*S.Prog)).Legal);
    EXPECT_TRUE(bruteForceLegal(*S.Prog, adiShackle(*S.Prog), 8));
  }
  {
    BenchSpec S = makeCholeskyBanded();
    ShackleChain C = choleskyShackleStores(*S.Prog, 4);
    EXPECT_TRUE(checkLegality(*S.Prog, C).Legal);
    EXPECT_TRUE(bruteForceLegal(*S.Prog, C, 12, {3}));
  }
}

TEST(Legality, DiagonalCuttingPlanesAreSupported) {
  // The paper's cutting planes are general hyperplanes, not just axis
  // slices (Figure 4 shows a general cutting-planes matrix). Block C of
  // matrix multiply with anti-diagonal planes (normal (1,1)) crossed with
  // columns: legal, and the executed result is exact.
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  DataBlocking Blocking;
  Blocking.ArrayId = 0;
  CuttingPlaneSet Diag;
  Diag.Normal = {1, 1};
  Diag.BlockSize = 5;
  CuttingPlaneSet Cols;
  Cols.Normal = {0, 1};
  Cols.BlockSize = 3;
  Blocking.Planes.push_back(std::move(Diag));
  Blocking.Planes.push_back(std::move(Cols));
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onStores(P, std::move(Blocking)));

  EXPECT_TRUE(checkLegality(P, Chain).Legal);
  EXPECT_TRUE(bruteForceLegal(P, Chain, 11));

  LoopNest Orig = generateOriginalCode(P);
  LoopNest Blocked = generateShackledCode(P, Chain);
  ProgramInstance A(P, {13}), B(P, {13});
  A.fillRandom(12, 0.5, 1.5);
  for (unsigned Arr = 0; Arr < 3; ++Arr)
    B.buffer(Arr) = A.buffer(Arr);
  runLoopNest(Orig, A);
  runLoopNest(Blocked, B);
  EXPECT_EQ(A.maxAbsDifference(B), 0.0);
}

//===----------------------------------------------------------------------===//
// Randomized cross-validation: ILP verdict == oracle verdict
//===----------------------------------------------------------------------===//

class RandomShackleCrossCheck : public ::testing::TestWithParam<int> {};

TEST_P(RandomShackleCrossCheck, ILPMatchesOracleOnCholesky) {
  int Seed = GetParam();
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;

  // Derive a pseudo-random configuration from the seed: reference choices,
  // block sizes, plane order, reversals.
  unsigned S2 = 1 + (Seed % 2);
  unsigned S3 = 1 + ((Seed / 2) % 3);
  int64_t Bsz = 2 + ((Seed / 6) % 3);
  bool ColFirst = (Seed / 18) % 2;
  bool Rev = (Seed / 36) % 2;

  std::vector<unsigned> RefIdx = {0, S2, S3};
  DataBlocking B = DataBlocking::rectangular(
      0, {Bsz, Bsz},
      ColFirst ? std::vector<unsigned>{1, 0} : std::vector<unsigned>{0, 1});
  B.Planes[0].Reversed = Rev;
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onRefs(P, B, RefIdx));

  bool ILP = checkLegality(P, Chain).Legal;
  bool Oracle = bruteForceLegal(P, Chain, 8);
  // The ILP is symbolic in N; if it says legal, every concrete N is legal.
  // If it says illegal, the witness might need a larger N than the oracle
  // checks, so only the "legal => oracle legal" direction is guaranteed at
  // a fixed N. Check both directions where sound, and the strong equality
  // at this size empirically.
  if (ILP)
    EXPECT_TRUE(Oracle);
  else
    EXPECT_FALSE(bruteForceLegal(P, Chain, 8) && bruteForceLegal(P, Chain, 11))
        << "ILP says illegal but no concrete witness at N=8,11";
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomShackleCrossCheck,
                         ::testing::Range(0, 72));

} // namespace
