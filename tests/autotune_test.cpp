//===- autotune_test.cpp - Automatic shackle search ----------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "autotune/AutoShackle.h"
#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

AutoShackleOptions smallOptions(std::vector<int64_t> EvalParams) {
  AutoShackleOptions Opts;
  Opts.BlockSizes = {4, 8};
  Opts.EvalParams = std::move(EvalParams);
  // Tiny caches so even a 24x24 problem shows locality differences.
  Opts.Caches = {CacheConfig{"L1", 2 * 1024, 64, 2},
                 CacheConfig{"L2", 8 * 1024, 64, 4}};
  return Opts;
}

TEST(AutoShackle, CholeskySearchFindsLegalWinner) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  AutoShackleResult R = searchShackles(P, 0, smallOptions({24}));
  ASSERT_NE(R.best(), nullptr);
  EXPECT_TRUE(R.best()->Legal);
  EXPECT_TRUE(R.best()->Evaluated);
  // The known census: with 2 block sizes and 2 traversal orders, the six
  // reference combos yield 3 legal * 4 = 12 legal single candidates.
  unsigned LegalSingles = 0, IllegalSingles = 0;
  for (const ShackleCandidate &C : R.Candidates) {
    if (C.Chain.Factors.size() != 1)
      continue;
    (C.Legal ? LegalSingles : IllegalSingles)++;
  }
  EXPECT_EQ(LegalSingles, 12u);
  EXPECT_EQ(IllegalSingles, 12u);
  // The evaluated candidates are sorted by cost.
  double Last = -1;
  for (const ShackleCandidate &C : R.Candidates) {
    if (!C.Evaluated)
      break;
    EXPECT_GE(C.Cost, Last);
    Last = C.Cost;
  }
}

TEST(AutoShackle, WinnerBeatsOriginalCodeOnMisses) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  AutoShackleOptions Opts = smallOptions({24});
  AutoShackleResult R = searchShackles(P, 0, Opts);
  ASSERT_NE(R.best(), nullptr);

  // Original code under the same cost model.
  LoopNest Orig = generateOriginalCode(P);
  ProgramInstance Inst(P, {24});
  CacheHierarchy H(Opts.Caches);
  TraceFn Trace = [&H](unsigned ArrayId, int64_t Off, bool) {
    H.access((static_cast<uint64_t>(ArrayId + 1) << 33) +
             static_cast<uint64_t>(Off) * sizeof(double));
  };
  runLoopNest(Orig, Inst, &Trace);
  double OrigCost = static_cast<double>(H.level(0).misses()) +
                    8.0 * static_cast<double>(H.level(1).misses());
  EXPECT_LT(R.best()->Cost, OrigCost);
}

TEST(AutoShackle, MatMulSearchIncludesProducts) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  AutoShackleOptions Opts = smallOptions({24});
  Opts.TryBothTraversalOrders = false;
  AutoShackleResult R = searchShackles(P, 0, Opts); // Block C.
  ASSERT_NE(R.best(), nullptr);
  bool SawProduct = false;
  for (const ShackleCandidate &C : R.Candidates)
    SawProduct |= C.Chain.Factors.size() == 2;
  EXPECT_TRUE(SawProduct);
}

TEST(AutoShackle, SearchedWinnerPreservesSemantics) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  AutoShackleResult R = searchShackles(P, 0, smallOptions({24}));
  ASSERT_NE(R.best(), nullptr);

  int64_t N = 31;
  ProgramInstance Ref(P, {N}), Test(P, {N});
  Ref.fillRandom(8, 0.5, 1.5);
  for (int64_t I = 0; I < N; ++I) {
    int64_t Idx[2] = {I, I};
    Ref.buffer(0)[Ref.offset(0, Idx)] += 3.0 * static_cast<double>(N);
  }
  Test.buffer(0) = Ref.buffer(0);
  runLoopNest(generateOriginalCode(P), Ref);
  runLoopNest(generateShackledCode(P, R.best()->Chain), Test);
  EXPECT_EQ(Ref.maxAbsDifference(Test), 0.0);
}

TEST(AutoShackle, BlockSizeSweepIsSortedAndLegalOnly) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  AutoShackleOptions Opts = smallOptions({24});
  auto Sweep = sweepBlockSizes(P, mmmShackleCxA(P, 8), {2, 4, 8, 16}, Opts);
  ASSERT_EQ(Sweep.size(), 4u);
  for (unsigned I = 1; I < Sweep.size(); ++I)
    EXPECT_GE(Sweep[I].second, Sweep[I - 1].second);
}

TEST(AutoShackle, QRSearchSkipsWhenStatementsLackReferences) {
  // QR's S1 (sig[K] = 0) has no reference to A, and the search does not
  // invent dummy references: empty result, no crash.
  BenchSpec Spec = makeQRHouseholder();
  AutoShackleResult R = searchShackles(*Spec.Prog, 0, smallOptions({16}));
  EXPECT_EQ(R.best(), nullptr);
  EXPECT_TRUE(R.Candidates.empty());
}

} // namespace
