//===- smoke_test.cpp - End-to-end pipeline smoke tests ----------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// First-line integration checks: build the paper's matrix-multiply program,
// shackle it, and verify that the naive (Figure 5) and simplified (Figure 6)
// generated codes compute exactly what the original program computes.
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

/// Runs both nests from identical random inputs and returns the maximum
/// absolute difference between all arrays.
double compareNests(const Program &P, const LoopNest &Ref,
                    const LoopNest &Test, std::vector<int64_t> Params,
                    uint64_t Seed = 42) {
  ProgramInstance A(P, Params);
  ProgramInstance B(P, Params);
  A.fillRandom(Seed, 0.5, 1.5);
  B.fillRandom(Seed, 0.5, 1.5);
  runLoopNest(Ref, A);
  runLoopNest(Test, B);
  return A.maxAbsDifference(B);
}

TEST(Smoke, MatMulOriginalMatchesHandWritten) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  LoopNest Orig = generateOriginalCode(P);

  int64_t N = 9;
  ProgramInstance Inst(P, {N});
  Inst.fillRandom(7, 0.5, 1.5);
  // Keep pristine copies of the inputs.
  std::vector<double> C = Inst.buffer(0), A = Inst.buffer(1),
                      B = Inst.buffer(2);
  runLoopNest(Orig, Inst);

  auto Off = [&](int64_t I, int64_t J) {
    int64_t Idx[2] = {I, J};
    return Inst.offset(0, Idx); // All three arrays share the same layout.
  };
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J) {
      double Acc = C[Off(I, J)];
      for (int64_t K = 0; K < N; ++K)
        Acc += A[Off(I, K)] * B[Off(K, J)];
      EXPECT_NEAR(Acc, Inst.buffer(0)[Off(I, J)], 1e-12);
    }
}

TEST(Smoke, MatMulShackleCIsLegal) {
  BenchSpec Spec = makeMatMul();
  ShackleChain Chain = mmmShackleC(*Spec.Prog, 25);
  LegalityResult R = checkLegality(*Spec.Prog, Chain);
  EXPECT_TRUE(R.Legal) << R.summary(*Spec.Prog);
}

TEST(Smoke, MatMulNaiveShackledMatchesOriginal) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleC(P, 4);
  LoopNest Orig = generateOriginalCode(P);
  LoopNest Naive = generateNaiveShackledCode(P, Chain);
  EXPECT_EQ(compareNests(P, Orig, Naive, {10}), 0.0);
}

TEST(Smoke, MatMulSimplifiedShackledMatchesOriginal) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleC(P, 4);
  LoopNest Orig = generateOriginalCode(P);
  LoopNest Blocked = generateShackledCode(P, Chain);
  SCOPED_TRACE(Blocked.str());
  EXPECT_EQ(compareNests(P, Orig, Blocked, {10}), 0.0);
}

TEST(Smoke, MatMulProductShackleMatchesOriginal) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleCxA(P, 4);
  ASSERT_TRUE(checkLegality(P, Chain).Legal);
  LoopNest Orig = generateOriginalCode(P);
  LoopNest Blocked = generateShackledCode(P, Chain);
  SCOPED_TRACE(Blocked.str());
  EXPECT_EQ(compareNests(P, Orig, Blocked, {10}), 0.0);
}

} // namespace
