//===- omega_stress_test.cpp - Harder integer feasibility cases ----------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Stress cases beyond polyhedral_test.cpp's 3-variable sweeps: four
// variables, larger coefficients (forcing inexact eliminations, dark
// shadows and splintering), and equality chains like those produced by
// multi-level block links.
//
//===----------------------------------------------------------------------===//

#include "polyhedral/OmegaTest.h"
#include "polyhedral/Polyhedron.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

using namespace shackle;

namespace {

struct Rng {
  uint64_t X;
  explicit Rng(uint64_t Seed) : X(Seed * 0x9e3779b97f4a7c15ULL + 1) {}
  uint64_t next() {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    return X;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
};

bool bruteNonEmpty(const Polyhedron &P, int64_t Box) {
  std::vector<int64_t> Cur(P.getNumVars());
  std::function<bool(unsigned)> Rec = [&](unsigned D) {
    if (D == P.getNumVars())
      return P.containsPoint(Cur);
    for (int64_t V = -Box; V <= Box; ++V) {
      Cur[D] = V;
      if (Rec(D + 1))
        return true;
    }
    return false;
  };
  return Rec(0);
}

class FourVarOmega : public ::testing::TestWithParam<int> {};

TEST_P(FourVarOmega, MatchesBruteForceWithLargeCoefficients) {
  Rng R(GetParam() * 104729);
  const int64_t Box = 3;
  Polyhedron P(4);
  for (unsigned V = 0; V < 4; ++V)
    P.addBounds(V, -Box, Box);
  // Large coefficients make eliminations inexact (dark shadow/splinter).
  for (unsigned I = 0; I < 4; ++I) {
    ConstraintRow Row(5, 0);
    for (unsigned V = 0; V < 4; ++V)
      Row[V] = R.range(-7, 7);
    Row[4] = R.range(-15, 15);
    if (R.range(0, 4) == 0)
      P.addEquality(std::move(Row));
    else
      P.addInequality(std::move(Row));
  }
  EXPECT_EQ(isIntegerEmpty(P), !bruteNonEmpty(P, Box)) << P.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourVarOmega, ::testing::Range(1, 100));

TEST(OmegaStress, MultiLevelBlockLinkChains) {
  // The shape legality produces for two-level products: element index e,
  // coarse block z1, fine block z2 with 64*z1 <= e <= 64*z1+63 and
  // 8*z2 <= e <= 8*z2+7, plus e in [0, N-1] for a concrete N. The fine
  // blocks must nest: z2 in [8*z1, 8*z1+7].
  Polyhedron P(3); // e, z1, z2.
  P.addBounds(0, 0, 999);
  P.addInequalityTerms({{0, 1}, {1, -64}}, 0);
  P.addInequalityTerms({{0, -1}, {1, 64}}, 63);
  P.addInequalityTerms({{0, 1}, {2, -8}}, 0);
  P.addInequalityTerms({{0, -1}, {2, 8}}, 7);
  // Nesting violated: z2 <= 8*z1 - 1 must be infeasible.
  Polyhedron Bad = P;
  Bad.addInequalityTerms({{2, -1}, {1, 8}}, -1);
  EXPECT_TRUE(isIntegerEmpty(Bad));
  // And the consistent side is feasible.
  Polyhedron Good = P;
  Good.addInequalityTerms({{2, 1}, {1, -8}}, 0);
  EXPECT_FALSE(isIntegerEmpty(Good));
}

TEST(OmegaStress, PughSplinterExample) {
  // A classic inexact-projection family: 0 <= y, 3y <= x <= 3y + 1,
  // with x restricted so that only specific residues survive.
  // x == 3y or 3y+1; adding x == 2 (mod nothing) via 2 <= x <= 2 forces
  // y = 0 ... x=2 > 3*0+1: empty.
  Polyhedron P(2);
  P.addInequalityTerms({{1, 1}}, 0);
  P.addInequalityTerms({{0, 1}, {1, -3}}, 0);
  P.addInequalityTerms({{0, -1}, {1, 3}}, 1);
  P.addBounds(0, 2, 2);
  EXPECT_TRUE(isIntegerEmpty(P));
  Polyhedron Q(2);
  Q.addInequalityTerms({{1, 1}}, 0);
  Q.addInequalityTerms({{0, 1}, {1, -3}}, 0);
  Q.addInequalityTerms({{0, -1}, {1, 3}}, 1);
  Q.addBounds(0, 3, 3);
  EXPECT_FALSE(isIntegerEmpty(Q)); // x=3, y=1.
}

TEST(OmegaStress, WideCoefficientEqualitySystems) {
  // 127x + 52y == 1 has solutions (Bezout); bounded boxes decide.
  Polyhedron P(2);
  P.addEqualityTerms({{0, 127}, {1, 52}}, -1);
  P.addBounds(0, -1000, 1000);
  P.addBounds(1, -1000, 1000);
  EXPECT_FALSE(isIntegerEmpty(P)); // e.g. x = -9, y = 22.
  Polyhedron Q(2);
  Q.addEqualityTerms({{0, 127}, {1, 52}}, -1);
  Q.addBounds(0, 0, 5);
  Q.addBounds(1, 0, 5);
  EXPECT_TRUE(isIntegerEmpty(Q));
}

TEST(OmegaStress, DeepEqualityChain) {
  // x0 = 2 x1, x1 = 3 x2, x2 = 5 x3, x0 == 60 => x3 == 2.
  Polyhedron P(4);
  P.addEqualityTerms({{0, 1}, {1, -2}}, 0);
  P.addEqualityTerms({{1, 1}, {2, -3}}, 0);
  P.addEqualityTerms({{2, 1}, {3, -5}}, 0);
  P.addEqualityTerms({{0, 1}}, -60);
  EXPECT_FALSE(isIntegerEmpty(P));
  P.addInequalityTerms({{3, 1}}, -3); // x3 >= 3: contradiction.
  EXPECT_TRUE(isIntegerEmpty(P));
}

} // namespace
