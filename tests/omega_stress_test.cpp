//===- omega_stress_test.cpp - Harder integer feasibility cases ----------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Stress cases beyond polyhedral_test.cpp's 3-variable sweeps: four
// variables, larger coefficients (forcing inexact eliminations, dark
// shadows and splintering), and equality chains like those produced by
// multi-level block links.
//
//===----------------------------------------------------------------------===//

#include "polyhedral/OmegaTest.h"
#include "polyhedral/Polyhedron.h"
#include "support/MathExtras.h"

#include <gtest/gtest.h>

#include <functional>
#include <vector>

using namespace shackle;

namespace {

struct Rng {
  uint64_t X;
  explicit Rng(uint64_t Seed) : X(Seed * 0x9e3779b97f4a7c15ULL + 1) {}
  uint64_t next() {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    return X;
  }
  int64_t range(int64_t Lo, int64_t Hi) {
    return Lo + static_cast<int64_t>(next() % (Hi - Lo + 1));
  }
};

bool bruteNonEmpty(const Polyhedron &P, int64_t Box) {
  std::vector<int64_t> Cur(P.getNumVars());
  std::function<bool(unsigned)> Rec = [&](unsigned D) {
    if (D == P.getNumVars())
      return P.containsPoint(Cur);
    for (int64_t V = -Box; V <= Box; ++V) {
      Cur[D] = V;
      if (Rec(D + 1))
        return true;
    }
    return false;
  };
  return Rec(0);
}

class FourVarOmega : public ::testing::TestWithParam<int> {};

TEST_P(FourVarOmega, MatchesBruteForceWithLargeCoefficients) {
  Rng R(GetParam() * 104729);
  const int64_t Box = 3;
  Polyhedron P(4);
  for (unsigned V = 0; V < 4; ++V)
    P.addBounds(V, -Box, Box);
  // Large coefficients make eliminations inexact (dark shadow/splinter).
  for (unsigned I = 0; I < 4; ++I) {
    ConstraintRow Row(5, 0);
    for (unsigned V = 0; V < 4; ++V)
      Row[V] = R.range(-7, 7);
    Row[4] = R.range(-15, 15);
    if (R.range(0, 4) == 0)
      P.addEquality(std::move(Row));
    else
      P.addInequality(std::move(Row));
  }
  EXPECT_EQ(isIntegerEmpty(P), !bruteNonEmpty(P, Box)) << P.str();
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourVarOmega, ::testing::Range(1, 100));

TEST(OmegaStress, MultiLevelBlockLinkChains) {
  // The shape legality produces for two-level products: element index e,
  // coarse block z1, fine block z2 with 64*z1 <= e <= 64*z1+63 and
  // 8*z2 <= e <= 8*z2+7, plus e in [0, N-1] for a concrete N. The fine
  // blocks must nest: z2 in [8*z1, 8*z1+7].
  Polyhedron P(3); // e, z1, z2.
  P.addBounds(0, 0, 999);
  P.addInequalityTerms({{0, 1}, {1, -64}}, 0);
  P.addInequalityTerms({{0, -1}, {1, 64}}, 63);
  P.addInequalityTerms({{0, 1}, {2, -8}}, 0);
  P.addInequalityTerms({{0, -1}, {2, 8}}, 7);
  // Nesting violated: z2 <= 8*z1 - 1 must be infeasible.
  Polyhedron Bad = P;
  Bad.addInequalityTerms({{2, -1}, {1, 8}}, -1);
  EXPECT_TRUE(isIntegerEmpty(Bad));
  // And the consistent side is feasible.
  Polyhedron Good = P;
  Good.addInequalityTerms({{2, 1}, {1, -8}}, 0);
  EXPECT_FALSE(isIntegerEmpty(Good));
}

TEST(OmegaStress, PughSplinterExample) {
  // A classic inexact-projection family: 0 <= y, 3y <= x <= 3y + 1,
  // with x restricted so that only specific residues survive.
  // x == 3y or 3y+1; adding x == 2 (mod nothing) via 2 <= x <= 2 forces
  // y = 0 ... x=2 > 3*0+1: empty.
  Polyhedron P(2);
  P.addInequalityTerms({{1, 1}}, 0);
  P.addInequalityTerms({{0, 1}, {1, -3}}, 0);
  P.addInequalityTerms({{0, -1}, {1, 3}}, 1);
  P.addBounds(0, 2, 2);
  EXPECT_TRUE(isIntegerEmpty(P));
  Polyhedron Q(2);
  Q.addInequalityTerms({{1, 1}}, 0);
  Q.addInequalityTerms({{0, 1}, {1, -3}}, 0);
  Q.addInequalityTerms({{0, -1}, {1, 3}}, 1);
  Q.addBounds(0, 3, 3);
  EXPECT_FALSE(isIntegerEmpty(Q)); // x=3, y=1.
}

TEST(OmegaStress, OmegaNightmareRequiresSplintering) {
  // Pugh's "Omega test nightmare": 27 <= 11x + 13y <= 45 and
  // -10 <= 7x - 9y <= 4. Real-feasible but integer-empty, and the dark
  // shadow alone cannot prove it — the decision must go through
  // splintering, which the stats must report.
  Polyhedron P(2);
  P.addInequalityTerms({{0, 11}, {1, 13}}, -27);
  P.addInequalityTerms({{0, -11}, {1, -13}}, 45);
  P.addInequalityTerms({{0, 7}, {1, -9}}, 10);
  P.addInequalityTerms({{0, -7}, {1, 9}}, 4);
  ASSERT_FALSE(bruteNonEmpty(P, 10)); // The real region fits well inside.
  SolverStats Stats;
  EXPECT_EQ(isIntegerEmptyBounded(P, SolverBudget(), &Stats),
            FeasVerdict::Empty);
  EXPECT_GT(Stats.Splinters, 0u);
  EXPECT_FALSE(Stats.exhausted());
}

TEST(OmegaStress, WideCoefficientEqualitySystems) {
  // 127x + 52y == 1 has solutions (Bezout); bounded boxes decide.
  Polyhedron P(2);
  P.addEqualityTerms({{0, 127}, {1, 52}}, -1);
  P.addBounds(0, -1000, 1000);
  P.addBounds(1, -1000, 1000);
  EXPECT_FALSE(isIntegerEmpty(P)); // e.g. x = -9, y = 22.
  Polyhedron Q(2);
  Q.addEqualityTerms({{0, 127}, {1, 52}}, -1);
  Q.addBounds(0, 0, 5);
  Q.addBounds(1, 0, 5);
  EXPECT_TRUE(isIntegerEmpty(Q));
}

TEST(OmegaStress, DeepEqualityChain) {
  // x0 = 2 x1, x1 = 3 x2, x2 = 5 x3, x0 == 60 => x3 == 2.
  Polyhedron P(4);
  P.addEqualityTerms({{0, 1}, {1, -2}}, 0);
  P.addEqualityTerms({{1, 1}, {2, -3}}, 0);
  P.addEqualityTerms({{2, 1}, {3, -5}}, 0);
  P.addEqualityTerms({{0, 1}}, -60);
  EXPECT_FALSE(isIntegerEmpty(P));
  P.addInequalityTerms({{3, 1}}, -3); // x3 >= 3: contradiction.
  EXPECT_TRUE(isIntegerEmpty(P));
}

//===----------------------------------------------------------------------===//
// Budget exhaustion: adversarial inputs must answer Unknown, never hang.
//===----------------------------------------------------------------------===//

/// A dense "thin slab" system: NumVars width-1 slabs whose coefficients
/// are large, coprime and never +-1, with every variable appearing on
/// both sides of every slab. Each slab is anchored on the all-halves real
/// point (x_V = 1/2), so the system is real-feasible by construction and
/// Fourier-Motzkin can never disprove it rationally — yet an integer
/// point would have to hit a width-1 window of every dense functional at
/// once. Every elimination is inexact, the thin dark shadows are empty,
/// and each inexact step splinters ~|coefficient| subproblems, so the
/// search tree grows like 50^NumVars. The unbounded solver would run for
/// geological time on this; the budgeted solver must give up and say so.
Polyhedron thinSlabs(unsigned NumVars) {
  Polyhedron P(NumVars);
  for (unsigned Row = 0; Row < NumVars; ++Row) {
    ConstraintRow Lo(NumVars + 1, 0), Up(NumVars + 1, 0);
    int64_t Twice = 0; // 2 * slab_Row(1/2, ..., 1/2).
    for (unsigned V = 0; V < NumVars; ++V) {
      int64_t C = 53 + static_cast<int64_t>((17 * Row + 29 * V) % 45);
      if ((13 * Row + 7 * V) % 5 < 2)
        C = -C;
      Lo[V] = C;
      Up[V] = -C;
      Twice += C;
    }
    int64_t Base = floorDiv(Twice, 2);
    Lo[NumVars] = -Base;     // slab_Row(x) >= Base
    Up[NumVars] = Base + 1;  // slab_Row(x) <= Base + 1
    P.addInequality(std::move(Lo));
    P.addInequality(std::move(Up));
  }
  return P;
}

TEST(OmegaBudget, AdversarialInstanceReturnsUnknownUnderDefaultBudget) {
  Polyhedron P = thinSlabs(6);
  SolverStats Stats;
  FeasVerdict V = isIntegerEmptyBounded(P, SolverBudget(), &Stats);
  EXPECT_EQ(V, FeasVerdict::Unknown);
  EXPECT_TRUE(Stats.exhausted());
  EXPECT_TRUE(Stats.HitWorkLimit) << Stats.reasonStr();
  EXPECT_GT(Stats.WorkUnits, SolverBudget().MaxWorkUnits);
  EXPECT_NE(Stats.reasonStr().find("work-unit budget"), std::string::npos);
  // The legacy boolean maps Unknown to "not proven empty".
  EXPECT_FALSE(isIntegerEmpty(P));
}

TEST(OmegaBudget, TinyWorkBudgetGivesUpOnDecidableInstance) {
  // The same multi-level block-link system MultiLevelBlockLinkChains
  // decides exactly; under a 5-unit budget the only sound answer is
  // Unknown.
  Polyhedron P(3);
  P.addBounds(0, 0, 999);
  P.addInequalityTerms({{0, 1}, {1, -64}}, 0);
  P.addInequalityTerms({{0, -1}, {1, 64}}, 63);
  P.addInequalityTerms({{0, 1}, {2, -8}}, 0);
  P.addInequalityTerms({{0, -1}, {2, 8}}, 7);
  P.addInequalityTerms({{2, -1}, {1, 8}}, -1);
  SolverBudget Tiny;
  Tiny.MaxWorkUnits = 5;
  SolverStats Stats;
  EXPECT_EQ(isIntegerEmptyBounded(P, Tiny, &Stats), FeasVerdict::Unknown);
  EXPECT_TRUE(Stats.HitWorkLimit);
  // The default budget decides the same instance with room to spare.
  SolverStats Full;
  EXPECT_EQ(isIntegerEmptyBounded(P, SolverBudget(), &Full),
            FeasVerdict::Empty);
  EXPECT_FALSE(Full.exhausted());
  EXPECT_GT(Full.WorkUnits, 0u);
}

TEST(OmegaBudget, DepthCeilingTripsInsteadOfRecursing) {
  // Pugh's splinter family needs at least one nested elimination; a depth
  // ceiling of one stops after the first level, whatever the verdict
  // would have been.
  Polyhedron P(2);
  P.addInequalityTerms({{1, 1}}, 0);
  P.addInequalityTerms({{0, 1}, {1, -3}}, 0);
  P.addInequalityTerms({{0, -1}, {1, 3}}, 1);
  P.addBounds(0, 2, 3);
  SolverBudget Shallow;
  Shallow.MaxDepth = 1;
  SolverStats Stats;
  EXPECT_EQ(isIntegerEmptyBounded(P, Shallow, &Stats), FeasVerdict::Unknown);
  EXPECT_TRUE(Stats.HitDepthLimit);
  EXPECT_NE(Stats.reasonStr().find("depth"), std::string::npos);
}

TEST(OmegaBudget, SubsetAndDisjointPropagateUnknown) {
  // [0,5]^2 is a subset of [0,10]^2 and disjoint from [20,30]^2, but a
  // one-unit budget cannot prove either; the three-valued wrappers must
  // answer Unknown and the boolean wrappers (default budget) stay exact.
  Polyhedron A(2), B(2), C(2);
  A.addBounds(0, 0, 5);
  A.addBounds(1, 0, 5);
  B.addBounds(0, 0, 10);
  B.addBounds(1, 0, 10);
  C.addBounds(0, 20, 30);
  C.addBounds(1, 20, 30);
  SolverBudget One;
  One.MaxWorkUnits = 1;
  EXPECT_EQ(isSubsetOfBounded(A, B, One), Ternary::Unknown);
  EXPECT_EQ(isDisjointBounded(A, C, One), Ternary::Unknown);
  EXPECT_TRUE(isSubsetOf(A, B));
  EXPECT_FALSE(isSubsetOf(B, A));
  EXPECT_TRUE(isDisjoint(A, C));
  EXPECT_FALSE(isDisjoint(A, B));
}

TEST(OmegaBudget, StatsAreCleanOnEasyInstances) {
  // Every decided verdict must come with exhausted() == false, so callers
  // can trust "Unknown iff exhausted".
  Polyhedron P(2);
  P.addBounds(0, 0, 7);
  P.addBounds(1, 0, 7);
  P.addInequalityTerms({{0, 1}, {1, 1}}, -20); // x + y >= 20: empty.
  SolverStats Stats;
  EXPECT_EQ(isIntegerEmptyBounded(P, SolverBudget(), &Stats),
            FeasVerdict::Empty);
  EXPECT_FALSE(Stats.exhausted());
  EXPECT_EQ(Stats.reasonStr(), "not exhausted");
}

} // namespace
