//===- dependence_test.cpp - Exact dependence analysis ------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Known dependence facts of the paper's kernels, checked against the exact
// ILP-based analysis, plus a brute-force cross-validation: a dependence
// problem is feasible iff enumerating all instance pairs at a small concrete
// N finds a dependent, ordered pair.
//
//===----------------------------------------------------------------------===//

#include "core/Dependence.h"
#include "interp/Interpreter.h"
#include "polyhedral/OmegaTest.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

#include <functional>
#include <map>
#include <set>

using namespace shackle;

namespace {

/// Returns the set of (src, dst) statement pairs with at least one feasible
/// dependence problem.
std::set<std::pair<unsigned, unsigned>> dependentPairs(const Program &P) {
  std::set<std::pair<unsigned, unsigned>> Out;
  for (const DependenceProblem &DP : buildDependenceProblems(P))
    if (!Out.count({DP.SrcStmt, DP.DstStmt}) && !isIntegerEmpty(DP.Poly))
      Out.insert({DP.SrcStmt, DP.DstStmt});
  return Out;
}

TEST(Dependence, MatMulHasOnlySelfDependencesOnC) {
  BenchSpec Spec = makeMatMul();
  auto Pairs = dependentPairs(*Spec.Prog);
  // The single statement depends on itself (reduction on C[I,J]).
  EXPECT_EQ(Pairs, (std::set<std::pair<unsigned, unsigned>>{{0, 0}}));

  // And the self-dependence is carried only by the innermost level (K): at
  // level 0 (I) and level 1 (J) the C subscripts differ.
  for (const DependenceProblem &DP : buildDependenceProblems(*Spec.Prog)) {
    bool Feasible = !isIntegerEmpty(DP.Poly);
    if (DP.Level < 2)
      EXPECT_FALSE(Feasible) << DP.describe(*Spec.Prog);
  }
}

TEST(Dependence, CholeskyRightPairwiseFacts) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  auto Pairs = dependentPairs(P);
  // S1 (sqrt) feeds S2 (scale); S2 feeds S3 (update); S3 feeds everything
  // in later iterations including itself, S1 and S2.
  EXPECT_TRUE(Pairs.count({0, 1})); // S1 -> S2 flow on A[J,J].
  EXPECT_TRUE(Pairs.count({1, 2})); // S2 -> S3 flow on the scaled column.
  EXPECT_TRUE(Pairs.count({2, 0})); // S3 -> S1: updates feed later sqrt.
  EXPECT_TRUE(Pairs.count({2, 1}));
  EXPECT_TRUE(Pairs.count({2, 2}));
  // S1 -> S1: A[J,J] is written once per J and never re-read by S1.
  EXPECT_FALSE(Pairs.count({0, 0}));
}

TEST(Dependence, ADIKernelFacts) {
  BenchSpec Spec = makeADI();
  const Program &P = *Spec.Prog;
  auto Pairs = dependentPairs(P);
  // S2 (writes B[i,k]) feeds both statements at the next i; S1 only writes
  // X, which S2 never reads.
  EXPECT_TRUE(Pairs.count({1, 0}));
  EXPECT_TRUE(Pairs.count({1, 1}));
  EXPECT_TRUE(Pairs.count({0, 0})); // X[i-1,k] -> X[i,k].
  EXPECT_FALSE(Pairs.count({0, 1}));
}

TEST(Dependence, DescribeNamesKindAndLevel) {
  BenchSpec Spec = makeCholeskyRight();
  bool SawFlow = false;
  for (const DependenceProblem &DP : buildDependenceProblems(*Spec.Prog)) {
    std::string D = DP.describe(*Spec.Prog);
    EXPECT_NE(D.find("->"), std::string::npos);
    if (D.find("flow") == 0)
      SawFlow = true;
  }
  EXPECT_TRUE(SawFlow);
}

//===----------------------------------------------------------------------===//
// Direction vectors
//===----------------------------------------------------------------------===//

TEST(DirectionVectors, MatMulReductionIsEqualsEqualsLess) {
  BenchSpec Spec = makeMatMul();
  auto Summaries = summarizeDependences(*Spec.Prog);
  // Output, flow, and anti on C: all carried by K with (=,=,<).
  ASSERT_FALSE(Summaries.empty());
  for (const DependenceSummary &S : Summaries) {
    ASSERT_EQ(S.Directions.size(), 3u);
    EXPECT_FALSE(S.Directions[0].Lt);
    EXPECT_TRUE(S.Directions[0].Eq);
    EXPECT_FALSE(S.Directions[0].Gt);
    EXPECT_TRUE(S.Directions[1].Eq);
    EXPECT_TRUE(S.Directions[2].Lt);
    EXPECT_FALSE(S.Directions[2].Gt);
    EXPECT_FALSE(S.LoopIndependent);
    EXPECT_EQ(S.str(*Spec.Prog).find("(=,=,<)") != std::string::npos, true)
        << S.str(*Spec.Prog);
  }
}

TEST(DirectionVectors, CholeskyFlowS1ToS2IsLoopIndependent) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  bool Found = false;
  for (const DependenceSummary &S : summarizeDependences(P)) {
    if (S.Kind != DependenceKind::Flow || P.getStmt(S.SrcStmt).Label != "S1" ||
        P.getStmt(S.DstStmt).Label != "S2")
      continue;
    Found = true;
    // A[J,J] written by S1(J), read by S2(J, I): same J only.
    ASSERT_EQ(S.Directions.size(), 1u);
    EXPECT_TRUE(S.LoopIndependent);
    EXPECT_FALSE(S.Directions[0].Lt);
    EXPECT_FALSE(S.Directions[0].Gt);
  }
  EXPECT_TRUE(Found);
}

TEST(DirectionVectors, ADICarriedByOuterLoopOnly) {
  BenchSpec Spec = makeADI();
  const Program &P = *Spec.Prog;
  for (const DependenceSummary &S : summarizeDependences(P)) {
    // Every ADI dependence is strictly forward on i (distance 1).
    ASSERT_GE(S.Directions.size(), 1u);
    EXPECT_TRUE(S.Directions[0].Lt) << S.str(P);
    EXPECT_FALSE(S.Directions[0].Gt) << S.str(P);
    EXPECT_FALSE(S.LoopIndependent) << S.str(P);
  }
}

//===----------------------------------------------------------------------===//
// Brute-force cross-validation
//===----------------------------------------------------------------------===//

/// Enumerates all statement instances of the original program at concrete
/// parameters, recording (stmt, iteration vector) in execution order.
struct InstanceRecord {
  unsigned StmtId;
  std::vector<int64_t> Iter;
};

std::vector<InstanceRecord> enumerateInstances(const Program &P,
                                               std::vector<int64_t> Params) {
  std::vector<InstanceRecord> Out;
  std::vector<int64_t> VarValues(P.getNumVars(), 0);
  for (unsigned V = 0; V < P.getNumParams(); ++V)
    VarValues[V] = Params[V];
  std::function<void(const std::vector<Node> &)> Walk =
      [&](const std::vector<Node> &Body) {
        for (const Node &N : Body) {
          if (N.isLoop()) {
            const Loop &L = *N.L;
            int64_t Lo = L.LowerBounds[0].evaluate(VarValues);
            for (unsigned I = 1; I < L.LowerBounds.size(); ++I)
              Lo = std::max(Lo, L.LowerBounds[I].evaluate(VarValues));
            int64_t Hi = L.UpperBounds[0].evaluate(VarValues);
            for (unsigned I = 1; I < L.UpperBounds.size(); ++I)
              Hi = std::min(Hi, L.UpperBounds[I].evaluate(VarValues));
            for (int64_t V = Lo; V <= Hi; ++V) {
              VarValues[L.Var] = V;
              Walk(L.Body);
            }
          } else {
            InstanceRecord R;
            R.StmtId = N.S->Id;
            for (unsigned Var : N.S->LoopVars)
              R.Iter.push_back(VarValues[Var]);
            Out.push_back(std::move(R));
          }
        }
      };
  Walk(P.topLevel());
  return Out;
}

/// Evaluates a reference at an instance.
std::vector<int64_t> evalRef(const Program &P, const ArrayRef &R,
                             const Stmt &S, const std::vector<int64_t> &Iter,
                             const std::vector<int64_t> &Params) {
  std::vector<int64_t> VarValues(P.getNumVars(), 0);
  for (unsigned V = 0; V < P.getNumParams(); ++V)
    VarValues[V] = Params[V];
  for (unsigned K = 0; K < S.LoopVars.size(); ++K)
    VarValues[S.LoopVars[K]] = Iter[K];
  std::vector<int64_t> Out;
  for (const AffineExpr &E : R.Indices)
    Out.push_back(E.evaluate(VarValues));
  return Out;
}

class DependenceBruteForce
    : public ::testing::TestWithParam<std::tuple<int, int64_t>> {};

TEST_P(DependenceBruteForce, PairsMatchEnumeration) {
  auto [Which, N] = GetParam();
  BenchSpec Spec = Which == 0   ? makeMatMul()
                   : Which == 1 ? makeCholeskyRight()
                   : Which == 2 ? makeCholeskyLeft()
                                : makeADI();
  const Program &P = *Spec.Prog;
  std::vector<int64_t> Params = {N};

  // Ground truth: dependent ordered instance pairs by direct enumeration.
  std::vector<InstanceRecord> Insts = enumerateInstances(P, Params);
  std::set<std::pair<unsigned, unsigned>> Truth;
  for (size_t A = 0; A < Insts.size(); ++A) {
    for (size_t B = A + 1; B < Insts.size(); ++B) {
      const Stmt &SA = P.getStmt(Insts[A].StmtId);
      const Stmt &SB = P.getStmt(Insts[B].StmtId);
      if (Truth.count({SA.Id, SB.Id}))
        continue;
      auto RefsA = SA.refs();
      auto RefsB = SB.refs();
      for (const auto &[RA, WA] : RefsA) {
        for (const auto &[RB, WB] : RefsB) {
          if (!WA && !WB)
            continue;
          if (RA->ArrayId != RB->ArrayId)
            continue;
          if (evalRef(P, *RA, SA, Insts[A].Iter, Params) ==
              evalRef(P, *RB, SB, Insts[B].Iter, Params))
            Truth.insert({SA.Id, SB.Id});
        }
      }
    }
  }

  // ILP must find exactly the same statement pairs (the ILP is for all N,
  // so it may find strictly more only if a dependence needs a larger N; at
  // these sizes the kernels exercise every pair that can ever occur).
  auto ILP = dependentPairs(P);
  EXPECT_EQ(ILP, Truth);
}

INSTANTIATE_TEST_SUITE_P(
    Kernels, DependenceBruteForce,
    ::testing::Values(std::make_tuple(0, int64_t(5)),
                      std::make_tuple(1, int64_t(7)),
                      std::make_tuple(2, int64_t(7)),
                      std::make_tuple(3, int64_t(6))));

} // namespace
