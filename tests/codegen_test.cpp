//===- codegen_test.cpp - Polyhedra scanning code generation ------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "codegen/Scanner.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

/// Instance-count helper: the generated code must execute exactly the same
/// number of statement instances as the original.
uint64_t instances(const LoopNest &Nest, const Program &P,
                   std::vector<int64_t> Params) {
  ProgramInstance Inst(P, Params);
  return countExecutedInstances(Nest, Inst);
}

TEST(Scanner, MatMulFigure6Shape) {
  BenchSpec Spec = makeMatMul();
  LoopNest Nest = generateShackledCode(*Spec.Prog, mmmShackleC(*Spec.Prog, 25));
  std::string S = Nest.str();
  // Block loops then point loops with intersected bounds, exactly Figure 6.
  EXPECT_NE(S.find("do b1 = 0 .. floor((N - 1)/25)"), std::string::npos) << S;
  EXPECT_NE(S.find("do t1 = 25*b1 .. min(25*b1 + 24, N - 1)"),
            std::string::npos)
      << S;
  EXPECT_NE(S.find("do t3 = 0 .. N - 1"), std::string::npos) << S;
  EXPECT_EQ(Nest.loopDepth(), 5u);
  EXPECT_EQ(Nest.countInstances(), 1u);
}

TEST(Scanner, ProductShacklePinsRedundantBlockDim) {
  // C x A constrains the A row blocks to equal the C row blocks; the
  // scanner must discover b3 == b1 and bind it instead of looping.
  BenchSpec Spec = makeMatMul();
  LoopNest Nest =
      generateShackledCode(*Spec.Prog, mmmShackleCxA(*Spec.Prog, 25));
  std::string S = Nest.str();
  EXPECT_NE(S.find("b3 = b1"), std::string::npos) << S;
  EXPECT_EQ(S.find("do b3"), std::string::npos) << S;
}

TEST(Scanner, ADIFusionMatchesFigure14) {
  BenchSpec Spec = makeADI();
  LoopNest Nest = generateShackledCode(*Spec.Prog, adiShackle(*Spec.Prog));
  std::string S = Nest.str();
  // Two loops (k outer via b1, i via b2), both statements in the inner body,
  // no guards.
  EXPECT_EQ(Nest.loopDepth(), 2u);
  EXPECT_EQ(Nest.countInstances(), 2u);
  EXPECT_EQ(S.find("if ("), std::string::npos) << S;
}

TEST(Scanner, PruneUnusedLetsRemovesPaddingDims) {
  // Cholesky's S1 is nested one deep but the scan space pads to depth 3;
  // the padding t2/t3 = 0 bindings must be pruned.
  BenchSpec Spec = makeCholeskyRight();
  LoopNest Nest = generateShackledCode(*Spec.Prog,
                                       choleskyShackleStores(*Spec.Prog, 64));
  std::string S = Nest.str();
  EXPECT_EQ(S.find("t2 = 0\n"), std::string::npos) << S;
  EXPECT_EQ(S.find("t3 = 0\n"), std::string::npos) << S;
}

/// Property: the generated blocked code executes exactly as many instances
/// as the original, over a grid of problem and block sizes (this catches
/// both lost and duplicated iterations at block boundaries).
class InstanceCount
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t>> {};

TEST_P(InstanceCount, MatMulBlockedCountsMatch) {
  auto [N, B] = GetParam();
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  LoopNest Orig = generateOriginalCode(P);
  LoopNest Blocked = generateShackledCode(P, mmmShackleCxA(P, B));
  EXPECT_EQ(instances(Orig, P, {N}), instances(Blocked, P, {N}));
  EXPECT_EQ(instances(Orig, P, {N}),
            static_cast<uint64_t>(N) * N * N);
}

TEST_P(InstanceCount, CholeskyBlockedCountsMatch) {
  auto [N, B] = GetParam();
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  LoopNest Orig = generateOriginalCode(P);
  LoopNest Blocked = generateShackledCode(P, choleskyShackleStores(P, B));
  EXPECT_EQ(instances(Orig, P, {N}), instances(Blocked, P, {N}));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InstanceCount,
    ::testing::Combine(::testing::Values<int64_t>(1, 2, 3, 7, 8, 9, 16, 23,
                                                  31),
                       ::testing::Values<int64_t>(1, 2, 4, 8)));

TEST(Scanner, NaiveCodeCountsMatchToo) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  LoopNest Orig = generateOriginalCode(P);
  LoopNest Naive = generateNaiveShackledCode(P, choleskyShackleStores(P, 5));
  for (int64_t N : {1, 4, 9, 17})
    EXPECT_EQ(instances(Orig, P, {N}), instances(Naive, P, {N})) << N;
}

TEST(Scanner, OriginalLoweringPreservesStructure) {
  BenchSpec Spec = makeCholeskyRight();
  LoopNest Orig = generateOriginalCode(*Spec.Prog);
  EXPECT_EQ(Orig.loopDepth(), 3u);
  EXPECT_EQ(Orig.countInstances(), 3u);
  // Dims are exactly the program variables.
  EXPECT_EQ(Orig.NumDims, Spec.Prog->getNumVars());
}

TEST(BoundExprPrinting, FoldsConstantDivisions) {
  BoundExpr B;
  B.Expr = AffineExpr::constant(1, 7);
  B.Divisor = 2;
  B.IsCeil = false;
  EXPECT_EQ(B.str({"x"}), "3");
  B.IsCeil = true;
  EXPECT_EQ(B.str({"x"}), "4");
  B.Expr = AffineExpr::constant(1, -7);
  B.IsCeil = false;
  EXPECT_EQ(B.str({"x"}), "-4");
  B.IsCeil = true;
  EXPECT_EQ(B.str({"x"}), "-3");
}

TEST(LoopNestPrinting, GuardsRenderAsConjunction) {
  BenchSpec Spec = makeMatMul();
  LoopNest Naive = generateNaiveShackledCode(*Spec.Prog,
                                             mmmShackleC(*Spec.Prog, 25));
  std::string S = Naive.str();
  EXPECT_NE(S.find(" && "), std::string::npos);
  EXPECT_NE(S.find(">= 0"), std::string::npos);
}

} // namespace
