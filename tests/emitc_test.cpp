//===- emitc_test.cpp - C++ emission ------------------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Structural checks on the emitted C++ (the numeric behaviour of compiled
// kernels is covered by genkernels_test.cpp, which compares them against
// the interpreter).
//
//===----------------------------------------------------------------------===//

#include "core/ShackleDriver.h"
#include "emitc/EmitC.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

TEST(EmitC, KernelSignatureAndParams) {
  BenchSpec Spec = makeMatMul();
  LoopNest Orig = generateOriginalCode(*Spec.Prog);
  std::string S = emitKernel(Orig, "my_kernel");
  EXPECT_NE(S.find("extern \"C\" void my_kernel(double **arrays, "
                   "const int64_t *params)"),
            std::string::npos)
      << S;
  EXPECT_NE(S.find("const int64_t N = params[0];"), std::string::npos);
  EXPECT_NE(S.find("__restrict"), std::string::npos);
}

TEST(EmitC, ColMajorAddressing) {
  // MMM arrays are column-major: offset of C[I,J] is I + J*N, which the
  // emitter writes innermost-dimension-major.
  BenchSpec Spec = makeMatMul();
  LoopNest Orig = generateOriginalCode(*Spec.Prog);
  std::string S = emitKernel(Orig, "k");
  EXPECT_NE(S.find("a0[((J))*(N) + (I)]"), std::string::npos) << S;
}

TEST(EmitC, BandStorageAddressing) {
  BenchSpec Spec = makeCholeskyBanded();
  LoopNest Orig = generateOriginalCode(*Spec.Prog);
  std::string S = emitKernel(Orig, "k");
  EXPECT_NE(S.find("(bw + 1)"), std::string::npos) << S;
}

TEST(EmitC, BlockedCodeUsesDivisionHelpersAndLets) {
  BenchSpec Spec = makeMatMul();
  LoopNest Nest = generateShackledCode(*Spec.Prog,
                                       mmmShackleCxA(*Spec.Prog, 25));
  std::string S = emitKernel(Nest, "k");
  EXPECT_NE(S.find("shk_floordiv("), std::string::npos) << S;
  EXPECT_NE(S.find("const int64_t b3 = b1;"), std::string::npos) << S;
}

TEST(EmitC, SqrtAndDivisionOperators) {
  BenchSpec Spec = makeCholeskyRight();
  LoopNest Orig = generateOriginalCode(*Spec.Prog);
  std::string S = emitKernel(Orig, "k");
  EXPECT_NE(S.find("std::sqrt("), std::string::npos);
  EXPECT_NE(S.find(" / "), std::string::npos);
}

TEST(EmitC, TranslationUnitHasRegistryAndHelpers) {
  BenchSpec Spec = makeMatMul();
  LoopNest Orig = generateOriginalCode(*Spec.Prog);
  std::vector<KernelSpec> Kernels = {{"k1", &Orig}, {"k2", &Orig}};
  std::string TU = emitTranslationUnit(Kernels);
  EXPECT_NE(TU.find("shk_ceildiv"), std::string::npos);
  EXPECT_NE(TU.find("shackle_gen_lookup"), std::string::npos);
  EXPECT_NE(TU.find("\"k1\""), std::string::npos);
  EXPECT_NE(TU.find("\"k2\""), std::string::npos);

  std::string H = emitHeader(Kernels);
  EXPECT_NE(H.find("void k1(double **arrays"), std::string::npos);
  EXPECT_NE(H.find("shackle_kernel_fn"), std::string::npos);
}

TEST(EmitC, EmissionIsDeterministic) {
  BenchSpec Spec = makeCholeskyRight();
  LoopNest A = generateShackledCode(*Spec.Prog,
                                    choleskyShackleStores(*Spec.Prog, 16));
  BenchSpec Spec2 = makeCholeskyRight();
  LoopNest B = generateShackledCode(*Spec2.Prog,
                                    choleskyShackleStores(*Spec2.Prog, 16));
  EXPECT_EQ(emitKernel(A, "k"), emitKernel(B, "k"));
}

TEST(EmitC, GuardsEmitAsIfs) {
  BenchSpec Spec = makeMatMul();
  LoopNest Naive = generateNaiveShackledCode(*Spec.Prog,
                                             mmmShackleC(*Spec.Prog, 25));
  std::string S = emitKernel(Naive, "k");
  EXPECT_NE(S.find("if ("), std::string::npos);
  EXPECT_NE(S.find(">= 0"), std::string::npos);
}

} // namespace
