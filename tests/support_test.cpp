//===- support_test.cpp - Exact integer arithmetic helpers --------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "support/MathExtras.h"
#include "support/Writer.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

TEST(MathExtras, GcdLcm) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(-4, 6), 12);
  EXPECT_EQ(lcm64(0, 5), 0);
}

/// Parameterized over a grid of dividends: the defining properties of
/// floor/ceil division and the modulo variants.
class DivisionProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(DivisionProperty, Definitions) {
  int64_t A = GetParam();
  for (int64_t B : {1, 2, 3, 5, 7, 25, 64}) {
    int64_t F = floorDiv(A, B);
    int64_t C = ceilDiv(A, B);
    // floorDiv: largest q with q*b <= a.
    EXPECT_LE(F * B, A);
    EXPECT_GT((F + 1) * B, A);
    // ceilDiv: smallest q with q*b >= a.
    EXPECT_GE(C * B, A);
    EXPECT_LT((C - 1) * B, A);
    // floorMod in [0, B).
    int64_t M = floorMod(A, B);
    EXPECT_GE(M, 0);
    EXPECT_LT(M, B);
    EXPECT_EQ(F * B + M, A);
    // symMod in [-floor(B/2), ceil(B/2)) and congruent mod B.
    int64_t S = symMod(A, B);
    EXPECT_GE(2 * S, -B);
    EXPECT_LT(2 * S, B);
    EXPECT_EQ(floorMod(A - S, B), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DivisionProperty,
                         ::testing::Range<int64_t>(-130, 131, 7));

TEST(MathExtras, HatModExamples) {
  // a hatmod b == a - b*floor(a/b + 1/2): result in [-b/2, b/2).
  EXPECT_EQ(symMod(12, 8), -4); // 12 mod 8 = 4; 2*4 >= 8 wraps to -4.
  EXPECT_EQ(symMod(3, 8), 3);
  EXPECT_EQ(symMod(-3, 8), -3);
  EXPECT_EQ(symMod(5, 8), -3);
  EXPECT_EQ(symMod(8, 8), 0);
  EXPECT_EQ(symMod(7, 2), -1);
}

TEST(Writer, IndentationAndLines) {
  Writer W;
  W.line("a");
  W.indent();
  W.line("b");
  W.dedent();
  W.dedent(); // Saturates at zero.
  W.line("c");
  EXPECT_EQ(W.str(), "a\n  b\nc\n");
}

} // namespace
