//===- support_test.cpp - Exact integer arithmetic helpers --------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"
#include "support/MathExtras.h"
#include "support/Writer.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

using namespace shackle;

namespace {

TEST(MathExtras, GcdLcm) {
  EXPECT_EQ(gcd64(12, 18), 6);
  EXPECT_EQ(gcd64(-12, 18), 6);
  EXPECT_EQ(gcd64(12, -18), 6);
  EXPECT_EQ(gcd64(0, 7), 7);
  EXPECT_EQ(gcd64(0, 0), 0);
  EXPECT_EQ(lcm64(4, 6), 12);
  EXPECT_EQ(lcm64(-4, 6), 12);
  EXPECT_EQ(lcm64(0, 5), 0);
}

/// Parameterized over a grid of dividends: the defining properties of
/// floor/ceil division and the modulo variants.
class DivisionProperty : public ::testing::TestWithParam<int64_t> {};

TEST_P(DivisionProperty, Definitions) {
  int64_t A = GetParam();
  for (int64_t B : {1, 2, 3, 5, 7, 25, 64}) {
    int64_t F = floorDiv(A, B);
    int64_t C = ceilDiv(A, B);
    // floorDiv: largest q with q*b <= a.
    EXPECT_LE(F * B, A);
    EXPECT_GT((F + 1) * B, A);
    // ceilDiv: smallest q with q*b >= a.
    EXPECT_GE(C * B, A);
    EXPECT_LT((C - 1) * B, A);
    // floorMod in [0, B).
    int64_t M = floorMod(A, B);
    EXPECT_GE(M, 0);
    EXPECT_LT(M, B);
    EXPECT_EQ(F * B + M, A);
    // symMod in [-floor(B/2), ceil(B/2)) and congruent mod B.
    int64_t S = symMod(A, B);
    EXPECT_GE(2 * S, -B);
    EXPECT_LT(2 * S, B);
    EXPECT_EQ(floorMod(A - S, B), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Grid, DivisionProperty,
                         ::testing::Range<int64_t>(-130, 131, 7));

TEST(MathExtras, HatModExamples) {
  // a hatmod b == a - b*floor(a/b + 1/2): result in [-b/2, b/2).
  EXPECT_EQ(symMod(12, 8), -4); // 12 mod 8 = 4; 2*4 >= 8 wraps to -4.
  EXPECT_EQ(symMod(3, 8), 3);
  EXPECT_EQ(symMod(-3, 8), -3);
  EXPECT_EQ(symMod(5, 8), -3);
  EXPECT_EQ(symMod(8, 8), 0);
  EXPECT_EQ(symMod(7, 2), -1);
}

//===----------------------------------------------------------------------===//
// Overflow-reporting arithmetic (the Omega test's safety net).
//===----------------------------------------------------------------------===//

constexpr int64_t Min64 = std::numeric_limits<int64_t>::min();
constexpr int64_t Max64 = std::numeric_limits<int64_t>::max();

TEST(OverflowHelpers, MulBoundaries) {
  int64_t R = 0;
  // In-range products, including the extremes that just fit.
  EXPECT_FALSE(mulOverflow(0, Min64, R));
  EXPECT_EQ(R, 0);
  EXPECT_FALSE(mulOverflow(1, Min64, R));
  EXPECT_EQ(R, Min64);
  EXPECT_FALSE(mulOverflow(-1, Max64, R));
  EXPECT_EQ(R, -Max64);
  EXPECT_FALSE(mulOverflow(Max64, 1, R));
  EXPECT_EQ(R, Max64);
  EXPECT_FALSE(mulOverflow(1LL << 31, 1LL << 31, R));
  EXPECT_EQ(R, 1LL << 62);
  // One past the edge in every sign combination.
  EXPECT_TRUE(mulOverflow(-1, Min64, R)); // |INT64_MIN| does not fit.
  EXPECT_TRUE(mulOverflow(Min64, -1, R));
  EXPECT_TRUE(mulOverflow(Min64, 2, R));
  EXPECT_TRUE(mulOverflow(Max64, 2, R));
  EXPECT_TRUE(mulOverflow(Max64, Max64, R));
  EXPECT_TRUE(mulOverflow(Min64, Min64, R));
  EXPECT_TRUE(mulOverflow(Max64, Min64, R)); // Mixed signs.
  EXPECT_TRUE(mulOverflow(1LL << 32, 1LL << 31, R));
}

TEST(OverflowHelpers, AddBoundaries) {
  int64_t R = 0;
  EXPECT_FALSE(addOverflow(Max64, 0, R));
  EXPECT_EQ(R, Max64);
  EXPECT_FALSE(addOverflow(Max64, Min64, R)); // Mixed signs never overflow.
  EXPECT_EQ(R, -1);
  EXPECT_FALSE(addOverflow(Min64, Max64, R));
  EXPECT_EQ(R, -1);
  EXPECT_FALSE(addOverflow(Max64 - 1, 1, R));
  EXPECT_EQ(R, Max64);
  EXPECT_FALSE(addOverflow(Min64 + 1, -1, R));
  EXPECT_EQ(R, Min64);
  EXPECT_TRUE(addOverflow(Max64, 1, R));
  EXPECT_TRUE(addOverflow(Min64, -1, R));
  EXPECT_TRUE(addOverflow(Max64, Max64, R));
  EXPECT_TRUE(addOverflow(Min64, Min64, R));
}

TEST(OverflowHelpers, SubBoundaries) {
  int64_t R = 0;
  EXPECT_FALSE(subOverflow(Min64, 0, R));
  EXPECT_EQ(R, Min64);
  EXPECT_FALSE(subOverflow(Max64, Max64, R));
  EXPECT_EQ(R, 0);
  EXPECT_FALSE(subOverflow(Min64, Min64, R));
  EXPECT_EQ(R, 0);
  EXPECT_FALSE(subOverflow(-1, Max64, R));
  EXPECT_EQ(R, Min64);
  EXPECT_TRUE(subOverflow(Min64, 1, R));
  EXPECT_TRUE(subOverflow(Max64, -1, R));
  EXPECT_TRUE(subOverflow(0, Min64, R)); // -INT64_MIN does not fit.
  EXPECT_TRUE(subOverflow(Max64, Min64, R));
  EXPECT_TRUE(subOverflow(Min64, Max64, R));
}

//===----------------------------------------------------------------------===//
// Structured diagnostics (Status / Expected<T>).
//===----------------------------------------------------------------------===//

TEST(Diagnostics, SourceLocRendering) {
  EXPECT_EQ(SourceLoc{}.str(), "");
  EXPECT_FALSE(SourceLoc{}.isValid());
  SourceLoc L;
  L.Line = 3;
  L.Col = 7;
  EXPECT_TRUE(L.isValid());
  EXPECT_EQ(L.str(), "line 3, col 7");
}

TEST(Diagnostics, DiagCodeNamesAreStable) {
  EXPECT_STREQ(diagCodeName(DiagCode::ParseError), "parse-error");
  EXPECT_STREQ(diagCodeName(DiagCode::SolverBudgetExceeded),
               "solver-budget-exceeded");
  EXPECT_STREQ(diagCodeName(DiagCode::ShackleIllegal), "shackle-illegal");
  EXPECT_STREQ(diagCodeName(DiagCode::LegalityUnknown), "legality-unknown");
  EXPECT_STREQ(diagCodeName(DiagCode::ScanFailed), "scan-failed");
  EXPECT_STREQ(diagCodeName(DiagCode::UsageError), "usage-error");
}

TEST(Diagnostics, StatusCarriesDiagnosticAndNotes) {
  Status Ok = Status::success();
  EXPECT_TRUE(Ok.ok());
  Status S = Status::error(DiagCode::ScanFailed, "pieces are not ordered");
  S.withNote("while generating code for matmul");
  ASSERT_FALSE(S.ok());
  EXPECT_EQ(S.diagnostic().Code, DiagCode::ScanFailed);
  ASSERT_EQ(S.diagnostic().Notes.size(), 1u);
  std::string Str = S.diagnostic().str();
  EXPECT_NE(Str.find("[scan-failed]"), std::string::npos) << Str;
  EXPECT_NE(Str.find("pieces are not ordered"), std::string::npos) << Str;
  EXPECT_NE(Str.find("while generating code"), std::string::npos) << Str;
  // takeDiagnostic moves the payload out.
  Diagnostic D = S.takeDiagnostic();
  EXPECT_EQ(D.Message, "pieces are not ordered");
}

TEST(Diagnostics, ExpectedValueAndErrorPaths) {
  Expected<int> V(42);
  ASSERT_TRUE(V.ok());
  EXPECT_EQ(*V, 42);
  SourceLoc L;
  L.Line = 2;
  L.Col = 5;
  Expected<int> E(Diagnostic(DiagCode::ParseError, "unexpected 'end'", L));
  ASSERT_FALSE(E.ok());
  EXPECT_EQ(E.diagnostic().Code, DiagCode::ParseError);
  EXPECT_EQ(E.diagnostic().Loc.Line, 2u);
  E.withNote("while parsing the loop body");
  // An error Status converts into an error Expected of any type, keeping
  // the diagnostic and its notes.
  Expected<std::string> F(E.takeStatus());
  ASSERT_FALSE(F.ok());
  EXPECT_EQ(F.diagnostic().Message, "unexpected 'end'");
  EXPECT_EQ(F.diagnostic().Notes.size(), 1u);
}

TEST(Writer, IndentationAndLines) {
  Writer W;
  W.line("a");
  W.indent();
  W.line("b");
  W.dedent();
  W.dedent(); // Saturates at zero.
  W.line("c");
  EXPECT_EQ(W.str(), "a\n  b\nc\n");
}

} // namespace
