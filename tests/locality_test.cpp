//===- locality_test.cpp - Locality-aware scheduling --------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The battery for locality-aware scheduling (DESIGN.md §11): affinity
// placement, locality domains, hierarchical stealing, and the random-victim
// baseline must all preserve bitwise serial equality at every thread count
// on MMM, Cholesky, and ADI; the affinity map must partition the task order
// into exactly one contiguous range per worker; and with stealing disabled
// every task must execute on its affinity home worker (verified through the
// per-worker memory traces). Steal telemetry must stay consistent:
// Steals == LocalSteals + RemoteSteals, and all tasks are home hits when
// nothing can steal.
//
//===----------------------------------------------------------------------===//

#include "interp/Interpreter.h"
#include "parallel/Affinity.h"
#include "parallel/ParallelExecutor.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <tuple>
#include <vector>

using namespace shackle;

namespace {

ParallelPlan buildAtLevel(const Program &P, const ShackleChain &Chain,
                          std::vector<int64_t> Params, unsigned Level) {
  ParallelPlanOptions Opts;
  Opts.TaskLevel = Level;
  return ParallelPlan::build(P, Chain, std::move(Params), Opts);
}

/// Runs \p Plan on a fresh copy of \p Init under \p Opts and checks the
/// result is bitwise-identical to serial execution of the same nest.
void expectBitwise(const ParallelPlan &Plan, const ProgramInstance &Init,
                   const ParallelRunOptions &Opts, const char *What) {
  ProgramInstance Par = Init, Ser = Init;
  ParallelRunStats Stats = Plan.run(Par, Opts);
  Plan.runSerial(Ser);
  EXPECT_FALSE(Stats.Failed) << What;
  EXPECT_EQ(Stats.Mode, ParallelMode::Parallel) << What;
  EXPECT_EQ(Stats.Steals, Stats.LocalSteals + Stats.RemoteSteals) << What;
  EXPECT_TRUE(Par.bitwiseEqual(Ser)) << What << " " << Plan.summary();
}

/// The locality configurations every kernel is swept through: default
/// affinity, explicit small domains, cross-domain stealing disabled,
/// stealing disabled entirely, the round-robin and random-victim
/// baselines, and the first-touch warming pass.
std::vector<std::pair<const char *, ParallelRunOptions>>
localityConfigs(unsigned Threads) {
  auto Mk = [Threads] {
    ParallelRunOptions O;
    O.NumThreads = Threads;
    return O;
  };
  std::vector<std::pair<const char *, ParallelRunOptions>> Cs;
  Cs.emplace_back("affinity-default", Mk());
  {
    ParallelRunOptions O = Mk();
    O.DomainSize = 2;
    Cs.emplace_back("domains-of-2", O);
  }
  {
    ParallelRunOptions O = Mk();
    O.DomainSize = 2;
    O.StealRemoteAfter = 0; // Local stealing only.
    Cs.emplace_back("no-remote-steals", O);
  }
  {
    ParallelRunOptions O = Mk();
    O.DomainSize = 1;
    O.StealRemoteAfter = 0; // No stealing at all.
    Cs.emplace_back("no-steals", O);
  }
  {
    ParallelRunOptions O = Mk();
    O.Placement = TaskPlacement::RoundRobin;
    Cs.emplace_back("round-robin", O);
  }
  {
    ParallelRunOptions O = Mk();
    O.RandomSteal = true;
    O.StealSeed = 7;
    Cs.emplace_back("random-victims", O);
  }
  {
    ParallelRunOptions O = Mk();
    O.FirstTouch = true;
    Cs.emplace_back("first-touch", O);
  }
  return Cs;
}

void sweepKernel(const ParallelPlan &Plan, const ProgramInstance &Init) {
  ASSERT_TRUE(Plan.parallelReady()) << Plan.summary();
  for (unsigned Threads : {1u, 2u, 4u, 8u})
    for (const auto &[Name, Opts] : localityConfigs(Threads))
      expectBitwise(Plan, Init, Opts,
                    (std::string(Name) + " threads=" +
                     std::to_string(Threads))
                        .c_str());
}

//===----------------------------------------------------------------------===//
// Bitwise serial equality under every locality policy
//===----------------------------------------------------------------------===//

TEST(LocalityBitwise, TwoLevelMMMEveryConfigEveryThreadCount) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 8, 4);
  ProgramInstance Init(P, {16});
  Init.fillRandom(11, 0.5, 1.5);
  sweepKernel(buildAtLevel(P, Chain, {16}, 2), Init);
  sweepKernel(buildAtLevel(P, Chain, {16}, 0), Init);
}

TEST(LocalityBitwise, CholeskyProduct) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = choleskyShackleProduct(P, 4, /*WritesFirst=*/true);
  const int64_t N = 16;
  ProgramInstance Init(P, {N});
  Init.fillRandom(23, 0.5, 1.5);
  for (int64_t I = 0; I < N; ++I) {
    int64_t Idx[2] = {I, I};
    Init.buffer(0)[Init.offset(0, Idx)] += 3.0 * static_cast<double>(N);
  }
  sweepKernel(buildAtLevel(P, Chain, {N}, 0), Init);
}

TEST(LocalityBitwise, ADITwoLevelColumnPanels) {
  BenchSpec Spec = makeADI();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = adiShackleTwoLevel(P, 8);
  ProgramInstance Init(P, {32});
  Init.fillRandom(37, 0.5, 1.5);
  sweepKernel(buildAtLevel(P, Chain, {32}, 1), Init);
}

//===----------------------------------------------------------------------===//
// Affinity map: a contiguous, exhaustive partition of the task order
//===----------------------------------------------------------------------===//

/// Checks the partition invariants: NumWorkers + 1 monotone boundaries
/// tiling [0, NumTasks), and Home agreeing with the range each task falls
/// into (in particular every task has exactly one home).
void expectPartition(const AffinityMap &Map, std::size_t NumTasks) {
  ASSERT_TRUE(Map.valid());
  ASSERT_EQ(Map.Home.size(), NumTasks);
  ASSERT_EQ(Map.RangeBegin.size(), Map.NumWorkers + 1u);
  EXPECT_EQ(Map.RangeBegin.front(), 0u);
  EXPECT_EQ(Map.RangeBegin.back(), NumTasks);
  for (unsigned W = 0; W < Map.NumWorkers; ++W) {
    EXPECT_LE(Map.RangeBegin[W], Map.RangeBegin[W + 1]) << "worker " << W;
    for (uint32_t T = Map.RangeBegin[W]; T < Map.RangeBegin[W + 1]; ++T)
      EXPECT_EQ(Map.Home[T], W) << "task " << T;
  }
  // Homes are non-decreasing along the lexicographic order - the
  // "contiguous ranges" property stated directly on Home.
  for (std::size_t T = 1; T < NumTasks; ++T)
    EXPECT_LE(Map.Home[T - 1], Map.Home[T]);
}

TEST(AffinityMap, UniformWeightsSplitEvenly) {
  AffinityMap Map = buildAffinityMap(12, {}, 4);
  expectPartition(Map, 12);
  for (unsigned W = 0; W < 4; ++W)
    EXPECT_EQ(Map.RangeBegin[W + 1] - Map.RangeBegin[W], 3u) << W;
}

TEST(AffinityMap, WeightedCutsFollowTheWeight) {
  // One heavy task up front: it should own worker 0's range alone.
  AffinityMap Map = buildAffinityMap(5, {100, 1, 1, 1, 1}, 2);
  expectPartition(Map, 5);
  EXPECT_EQ(Map.RangeBegin[1], 1u);
  EXPECT_EQ(Map.Home[0], 0u);
  for (std::size_t T = 1; T < 5; ++T)
    EXPECT_EQ(Map.Home[T], 1u);
}

TEST(AffinityMap, EdgeCases) {
  // More workers than tasks: trailing ranges are empty, tasks still all
  // homed.
  AffinityMap Sparse = buildAffinityMap(3, {}, 8);
  expectPartition(Sparse, 3);
  // Zero tasks, zero workers (clamped to 1), zero weights.
  expectPartition(buildAffinityMap(0, {}, 4), 0);
  expectPartition(buildAffinityMap(6, {0, 0, 0, 0, 0, 0}, 0), 6);
  expectPartition(buildAffinityMap(1, {42}, 1), 1);
}

TEST(AffinityMap, PlanAffinityMatchesSchedulerClamp) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan =
      buildAtLevel(P, mmmShackleTwoLevel(P, 8, 4), {16}, 2);
  ASSERT_TRUE(Plan.parallelReady());
  const std::size_t N = Plan.partition().Tasks.size();
  // Requesting more threads than tasks clamps the map to the task count -
  // the same clamp the scheduler applies to its worker pool.
  AffinityMap Map = Plan.affinityMap(64);
  EXPECT_EQ(Map.NumWorkers, N);
  expectPartition(Map, N);
  expectPartition(Plan.affinityMap(2), N);
}

TEST(AffinityMap, DetectDomainSizeIsSane) {
  EXPECT_EQ(detectDomainSize(0), 1u);
  for (unsigned W : {1u, 2u, 4u, 8u, 64u}) {
    unsigned D = detectDomainSize(W);
    EXPECT_GE(D, 1u) << W;
    EXPECT_LE(D, W) << W;
  }
}

//===----------------------------------------------------------------------===//
// With stealing disabled, every task runs on its affinity home
//===----------------------------------------------------------------------===//

using Access = std::tuple<unsigned, int64_t, bool>;

TEST(LocalityPlacement, NoStealTracesMatchHomeRanges) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan =
      buildAtLevel(P, mmmShackleTwoLevel(P, 8, 4), {16}, 2);
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance Init(P, {16});
  Init.fillRandom(31, 0.5, 1.5);

  for (unsigned Threads : {2u, 4u}) {
    AffinityMap Map = Plan.affinityMap(Threads);
    ASSERT_LE(Map.NumWorkers, Threads);

    // Expected per-home access multisets: serially replay each home's task
    // range through the interpreter with a private trace.
    std::vector<std::vector<Access>> Expected(Map.NumWorkers);
    {
      ProgramInstance Ser = Init;
      for (unsigned W = 0; W < Map.NumWorkers; ++W) {
        TraceFn Trace = [&Expected, W](unsigned ArrayId, int64_t Off,
                                       bool IsWrite) {
          Expected[W].emplace_back(ArrayId, Off, IsWrite);
        };
        for (uint32_t T = Map.RangeBegin[W]; T < Map.RangeBegin[W + 1]; ++T)
          for (const BlockTask::Segment &Seg :
               Plan.partition().Tasks[T].Segments)
            runLoopNestSubtree(Plan.nest(), *Seg.Node, Seg.DimValues, Ser,
                               &Trace);
        std::sort(Expected[W].begin(), Expected[W].end());
      }
    }

    // Parallel run with stealing disabled: tasks may only reach their home
    // worker's deque or mailbox, so worker W's trace must be exactly its
    // range's accesses (as a multiset - W interleaves its own tasks
    // freely as dependences release them).
    std::vector<std::vector<Access>> Got(Map.NumWorkers);
    std::vector<TraceFn> Sinks;
    for (unsigned W = 0; W < Map.NumWorkers; ++W)
      Sinks.push_back([&Got, W](unsigned ArrayId, int64_t Off, bool IsWrite) {
        Got[W].emplace_back(ArrayId, Off, IsWrite);
      });
    ProgramInstance Par = Init;
    ParallelRunOptions Opts;
    Opts.NumThreads = Threads;
    Opts.DomainSize = 1;
    Opts.StealRemoteAfter = 0;
    Opts.WorkerTraces = &Sinks;
    ParallelRunStats Stats = Plan.run(Par, Opts);
    ASSERT_FALSE(Stats.Failed);
    ASSERT_EQ(Stats.Mode, ParallelMode::Parallel);
    EXPECT_EQ(Stats.Steals, 0u) << "stealing was disabled";
    EXPECT_EQ(Stats.HomeHits, Stats.BlocksRun)
        << "every task must run at home when nothing can steal";
    for (unsigned W = 0; W < Map.NumWorkers; ++W) {
      std::sort(Got[W].begin(), Got[W].end());
      EXPECT_EQ(Got[W], Expected[W]) << "worker " << W << " threads="
                                     << Threads;
    }
  }
}

//===----------------------------------------------------------------------===//
// Steal telemetry consistency
//===----------------------------------------------------------------------===//

TEST(LocalityTelemetry, DomainSplitAndStealDecomposition) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan =
      buildAtLevel(P, mmmShackleTwoLevel(P, 8, 4), {16}, 0);
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance Init(P, {16});
  Init.fillRandom(13, 0.5, 1.5);

  ProgramInstance Inst = Init;
  ParallelRunOptions Opts;
  Opts.NumThreads = 4;
  Opts.DomainSize = 2;
  ParallelRunStats Stats = Plan.run(Inst, Opts);
  ASSERT_FALSE(Stats.Failed);
  EXPECT_EQ(Stats.DomainSize, 2u);
  EXPECT_EQ(Stats.NumDomains, 2u);
  EXPECT_EQ(Stats.Steals, Stats.LocalSteals + Stats.RemoteSteals);
  EXPECT_LE(Stats.HomeHits, Stats.BlocksRun);

  // Single worker: its one range is the whole task order, every task is a
  // home hit, and nothing can be stolen or migrated.
  ProgramInstance Solo = Init;
  ParallelRunOptions SoloOpts;
  SoloOpts.NumThreads = 1;
  ParallelRunStats SoloStats = Plan.run(Solo, SoloOpts);
  EXPECT_EQ(SoloStats.HomeHits, SoloStats.BlocksRun);
  EXPECT_EQ(SoloStats.Steals, 0u);
  EXPECT_EQ(SoloStats.BytesMigrated, 0u);
}

TEST(LocalityTelemetry, FirstTouchReadsEveryFootprintOnce) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan =
      buildAtLevel(P, mmmShackleTwoLevel(P, 8, 4), {16}, 2);
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance Init(P, {16});
  Init.fillRandom(17, 0.5, 1.5);

  ProgramInstance Inst = Init;
  ParallelRunOptions Opts;
  Opts.NumThreads = 4;
  Opts.FirstTouch = true;
  ParallelRunStats Stats = Plan.run(Inst, Opts);
  ASSERT_FALSE(Stats.Failed);
  EXPECT_GT(Stats.FirstTouchElems, 0u);

  // The warming pass is read-only: results stay bitwise-identical.
  ProgramInstance Ser = Init;
  Plan.runSerial(Ser);
  EXPECT_TRUE(Inst.bitwiseEqual(Ser));

  // Round-robin placement has no home ranges to warm.
  ProgramInstance RR = Init;
  Opts.Placement = TaskPlacement::RoundRobin;
  ParallelRunStats RRStats = Plan.run(RR, Opts);
  EXPECT_EQ(RRStats.FirstTouchElems, 0u);
  EXPECT_EQ(RRStats.HomeHits, 0u) << "no affinity map, no home hits";
}

} // namespace
