//===- genkernels_test.cpp - Compiled kernels vs interpreter -----------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// The benchmarks measure kernels that dsc-gen emitted and the C++ compiler
// built. These tests pin those kernels to the semantics of the original
// programs: for every generated variant, running the compiled kernel on
// random inputs must produce the same arrays as interpreting the original
// IR program (bit-for-bit, because the statement-instance arithmetic is
// identical and only the execution order legally changes... up to the
// floating-point non-associativity the shackle itself never introduces:
// shackling permutes statement instances, not the operations inside one).
//
//===----------------------------------------------------------------------===//

#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"
#include "shackle_kernels.gen.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

/// Runs kernel \p Name on a fresh copy of \p Init's arrays.
void runKernel(const char *Name, ProgramInstance &Inst) {
  shackle_kernel_fn Fn = shackle_gen_lookup(Name);
  ASSERT_NE(Fn, nullptr) << "kernel not found: " << Name;
  std::vector<double *> Arrays;
  for (unsigned A = 0; A < Inst.program().getNumArrays(); ++A)
    Arrays.push_back(Inst.buffer(A).data());
  Fn(Arrays.data(), Inst.paramValues().data());
}

struct VariantCase {
  const char *Kernel;
  double Tol; ///< 0 for exact instance-permutation equality.
};

void checkVariants(BenchSpec Spec, std::vector<int64_t> Params, bool SPD,
                   const char *OrigKernel,
                   const std::vector<VariantCase> &Variants) {
  const Program &P = *Spec.Prog;
  LoopNest Orig = generateOriginalCode(P);

  ProgramInstance Ref(P, Params);
  Ref.fillRandom(11, 0.5, 1.5);
  if (SPD) {
    int64_t N = Params[0];
    for (int64_t I = 0; I < N; ++I) {
      int64_t Idx[2] = {I, I};
      Ref.buffer(0)[Ref.offset(0, Idx)] += 3.0 * static_cast<double>(N);
    }
  }
  ProgramInstance Pristine = Ref;
  runLoopNest(Orig, Ref);

  // The compiled original must agree exactly with the interpreted original.
  {
    ProgramInstance K = Pristine;
    runKernel(OrigKernel, K);
    EXPECT_EQ(Ref.maxAbsDifference(K), 0.0) << OrigKernel;
  }

  for (const VariantCase &V : Variants) {
    ProgramInstance K = Pristine;
    runKernel(V.Kernel, K);
    EXPECT_LE(Ref.maxAbsDifference(K), V.Tol) << V.Kernel;
  }
}

TEST(GenKernels, MatMul) {
  checkVariants(makeMatMul(), {131}, /*SPD=*/false, "mmm_orig",
                {{"mmm_naive_c_64", 0.0},
                 {"mmm_shackle_c_64", 0.0},
                 {"mmm_shackle_cxa_16", 0.0},
                 {"mmm_shackle_cxa_32", 0.0},
                 {"mmm_shackle_cxa_64", 0.0},
                 {"mmm_shackle_cxa_128", 0.0},
                 {"mmm_two_level_64_8", 0.0},
                 {"mmm_two_level_128_16", 0.0}});
}

TEST(GenKernels, MatMulTiledLayout) {
  checkVariants(makeMatMulTiled(64), {131}, /*SPD=*/false, "mmm_tiled_orig",
                {{"mmm_tiled_cxa_64", 0.0}});
}

TEST(GenKernels, CholeskyRight) {
  checkVariants(makeCholeskyRight(), {131}, /*SPD=*/true, "chol_orig",
                {{"chol_stores_64", 0.0},
                 {"chol_reads_64", 0.0},
                 {"chol_product_wr_64", 0.0},
                 {"chol_two_level_64_8", 0.0}});
}

TEST(GenKernels, CholeskyLeft) {
  checkVariants(makeCholeskyLeft(), {131}, /*SPD=*/true, "chol_left_orig",
                {{"chol_left_stores_64", 0.0}});
}

TEST(GenKernels, QR) {
  checkVariants(makeQRHouseholder(), {97}, /*SPD=*/false, "qr_orig",
                {{"qr_cols_16", 0.0},
                 {"qr_cols_32", 0.0},
                 {"qr_cols_64", 0.0}});
}

TEST(GenKernels, ADI) {
  checkVariants(makeADI(), {73}, /*SPD=*/false, "adi_orig",
                {{"adi_fused", 0.0}});
}

TEST(GenKernels, Gmtry) {
  // Diagonal dominance keeps elimination without pivoting well-conditioned.
  checkVariants(makeGmtry(), {97}, /*SPD=*/true, "gmtry_orig",
                {{"gmtry_stores_64", 0.0}});
}

TEST(GenKernels, BandedCholesky) {
  checkVariants(makeCholeskyBanded(), {150, 17}, /*SPD=*/true, "band_orig",
                {{"band_stores_32", 0.0}});
}

} // namespace
