//===- integrity_test.cpp - Data-integrity runtime tests ----------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// Tests for the data-plane half of fault tolerance (DESIGN.md §12, ctest
// label: integrity): checksummed undo logs, shadow re-execution
// verification, numerical-poisoning quarantine, and the escalation ladder
// verify -> rollback-retry -> pristine serial replay -> fail with
// provenance. The contract under test is absolute: a run either finishes
// bitwise-identical to serial shackled execution or fails loudly naming
// the corrupted block. Never a silently wrong answer.
//
//===----------------------------------------------------------------------===//

#include "parallel/Integrity.h"
#include "parallel/ParallelExecutor.h"
#include "parallel/UndoLog.h"
#include "programs/Benchmarks.h"
#include "support/Checksum.h"
#include "support/FaultInjector.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

using namespace shackle;

namespace {

#ifndef SHACKLE_CLI_PATH
#error "SHACKLE_CLI_PATH must be defined by the build"
#endif

/// Runs the CLI with \p Args; returns (exit code, combined stdout+stderr).
std::pair<int, std::string> runCli(const std::string &Args) {
  std::string Cmd = std::string(SHACKLE_CLI_PATH) + " " + Args + " 2>&1";
  std::FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, Got);
  int Status = pclose(Pipe);
  return {WEXITSTATUS(Status), Out};
}

class IntegrityTest : public ::testing::Test {
protected:
  void SetUp() override { FaultInjector::instance().disarm(); }
  void TearDown() override { FaultInjector::instance().disarm(); }

  void arm(const std::string &Spec) {
    if (!FaultInjectionCompiledIn)
      GTEST_SKIP() << "built without SHACKLE_ENABLE_FAULT_INJECTION";
    Status S = FaultInjector::instance().configure(Spec);
    ASSERT_TRUE(S.ok()) << S.diagnostic().str();
  }
};

bool hasDiag(const std::vector<Diagnostic> &Diags, DiagCode Code) {
  for (const Diagnostic &D : Diags)
    if (D.Code == Code)
      return true;
  return false;
}

/// True when some diag of \p Code has a message or note containing \p Sub.
bool diagContains(const std::vector<Diagnostic> &Diags, DiagCode Code,
                  const std::string &Sub) {
  for (const Diagnostic &D : Diags) {
    if (D.Code != Code)
      continue;
    if (D.Message.find(Sub) != std::string::npos)
      return true;
    for (const Diagnostic &Note : D.Notes)
      if (Note.Message.find(Sub) != std::string::npos)
        return true;
  }
  return false;
}

/// Builds the plan, runs it under \p Opts with the already-armed injector,
/// and asserts the integrity contract: completion, no Failed flag, and a
/// result bitwise-identical to serial shackled execution.
ParallelRunStats runExpectBitwise(const BenchSpec &Spec,
                                  const ShackleChain &Chain,
                                  std::vector<int64_t> Params,
                                  const ParallelRunOptions &Opts) {
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, Chain, Params);
  EXPECT_TRUE(Plan.parallelReady()) << Plan.summary();

  ProgramInstance Ref(P, Params);
  Ref.fillRandom(77, 0.5, 1.5);
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    for (double &V : Ref.buffer(A))
      V += 1.0; // Keep factorizations well conditioned.
  ProgramInstance Par = Ref;
  Plan.runSerial(Ref);

  ParallelRunStats Stats = Plan.run(Par, Opts);
  EXPECT_FALSE(Stats.Failed) << Spec.Name;
  EXPECT_TRUE(Ref.bitwiseEqual(Par))
      << Spec.Name << " mode=" << parallelModeName(Stats.Mode);
  EXPECT_TRUE(Stats.Progress.complete()) << Stats.Progress.str();
  return Stats;
}

//===----------------------------------------------------------------------===//
// Checksum primitives
//===----------------------------------------------------------------------===//

TEST(Checksum, SingleBitFlipChangesTheDigest) {
  BlockUndoLog Log;
  for (int I = 0; I < 32; ++I)
    Log.Entries.push_back({0u, I, 1.0 + 0.25 * I});
  const uint64_t Clean = checksumUndoLog(Log);
  EXPECT_EQ(checksumUndoLog(Log), Clean); // Deterministic.
  for (unsigned Bit : {0u, 31u, 52u, 63u}) {
    BlockUndoLog Mutated = Log;
    Mutated.Entries[7].Value = flipDoubleBit(Mutated.Entries[7].Value, Bit);
    EXPECT_NE(checksumUndoLog(Mutated), Clean) << "bit " << Bit;
  }
  // Metadata is covered too: the same values at a shifted offset differ.
  BlockUndoLog Shifted = Log;
  Shifted.Entries[0].Offset += 1;
  EXPECT_NE(checksumUndoLog(Shifted), Clean);
}

TEST(Checksum, FlipDoubleBitIsAnInvolution) {
  for (unsigned Bit = 0; Bit < 64; ++Bit) {
    const double V = 3.14159 * (Bit + 1);
    const double Flipped = flipDoubleBit(V, Bit);
    EXPECT_NE(Flipped, V) << "bit " << Bit; // Finite values: bitwise change.
    EXPECT_EQ(flipDoubleBit(Flipped, Bit), V) << "bit " << Bit;
  }
  EXPECT_EQ(flipDoubleBit(2.0, 63), -2.0); // Sign bit.
}

TEST(Checksum, ZeroRepresentationsAreDistinguished) {
  // The digest hashes bit patterns, not values: +0.0 and -0.0 compare
  // equal as doubles but must not collide, or a sign-bit flip of a zero
  // would be undetectable.
  BlockUndoLog Pos, Neg;
  Pos.Entries.push_back({0u, 0, 0.0});
  Neg.Entries.push_back({0u, 0, -0.0});
  EXPECT_NE(checksumUndoLog(Pos), checksumUndoLog(Neg));
}

TEST(Cone, DownstreamConeIsTheTransitiveSuccessorSet) {
  // 0 -> {1, 2}, 1 -> {3}, 2 -> {3}, 3 -> {}, 4 isolated.
  BlockDepGraph G;
  G.Succs = {{1, 2}, {3}, {3}, {}, {}};
  G.InDegree = {0, 1, 1, 2, 0};
  EXPECT_EQ(downstreamCone(G, 0), (std::vector<uint32_t>{1, 2, 3}));
  EXPECT_EQ(downstreamCone(G, 1), (std::vector<uint32_t>{3}));
  EXPECT_TRUE(downstreamCone(G, 3).empty());
  EXPECT_TRUE(downstreamCone(G, 4).empty());
  EXPECT_EQ(formatCone({1, 2, 3}), "#1, #2, #3");
  EXPECT_EQ(formatCone({1, 2, 3}, 2), "#1, #2, ...");
}

//===----------------------------------------------------------------------===//
// Injection clauses
//===----------------------------------------------------------------------===//

TEST_F(IntegrityTest, DataFaultClausesParseAndHaveFiniteBudgets) {
  arm("seed=9;flip@block=3,bit=52;corrupt-undo@block=1;nan@block=2;"
      "inf@block=4,count=2");
  unsigned Bit = 99;
  uint64_t Pick = 0;
  EXPECT_FALSE(injectBitFlip(0, Bit, Pick)); // Only the named block.
  EXPECT_TRUE(injectBitFlip(3, Bit, Pick));
  EXPECT_EQ(Bit, 52u);
  EXPECT_FALSE(injectBitFlip(3, Bit, Pick)); // Budget exhausted.
  EXPECT_FALSE(injectUndoCorrupt(0, Pick));
  EXPECT_TRUE(injectUndoCorrupt(1, Pick));
  EXPECT_FALSE(injectUndoCorrupt(1, Pick));
  EXPECT_EQ(injectPoisonValue(0, Pick), 0);
  EXPECT_EQ(injectPoisonValue(2, Pick), 1); // NaN.
  EXPECT_EQ(injectPoisonValue(2, Pick), 0);
  EXPECT_EQ(injectPoisonValue(4, Pick), 2); // Inf, twice.
  EXPECT_EQ(injectPoisonValue(4, Pick), 2);
  EXPECT_EQ(injectPoisonValue(4, Pick), 0);
  const FaultCounters &C = FaultInjector::instance().counters();
  EXPECT_EQ(C.BitFlips, 1u);
  EXPECT_EQ(C.UndoCorruptions, 1u);
  EXPECT_EQ(C.NansInjected, 1u);
  EXPECT_EQ(C.InfsInjected, 2u);
}

TEST_F(IntegrityTest, ElementPicksAreSeedDeterministic) {
  uint64_t P1, P2;
  arm("seed=41;flip@block=5");
  unsigned Bit;
  ASSERT_TRUE(injectBitFlip(5, Bit, P1));
  arm("seed=41;flip@block=5");
  ASSERT_TRUE(injectBitFlip(5, Bit, P2));
  EXPECT_EQ(P1, P2);
  arm("seed=42;flip@block=5");
  ASSERT_TRUE(injectBitFlip(5, Bit, P2));
  EXPECT_NE(P1, P2); // Different seed, different element pick.
}

TEST_F(IntegrityTest, MalformedDataClausesAreRejectedWholesale) {
  FaultInjector &FI = FaultInjector::instance();
  for (const char *Bad :
       {"flip@bit=3", "flip@block=1,bit=64", "flip@block=x",
        "corrupt-undo@worker=1", "nan@block", "inf@rate=0.5"}) {
    Status S = FI.configure(Bad);
    ASSERT_FALSE(S.ok()) << Bad;
    EXPECT_EQ(S.diagnostic().Code, DiagCode::UsageError) << Bad;
    EXPECT_FALSE(FI.armed()) << Bad; // A bad spec must not half-arm.
  }
}

//===----------------------------------------------------------------------===//
// Bit flips: detected, rolled back, recomputed bitwise
//===----------------------------------------------------------------------===//

struct FlipCase {
  const char *Label;
  BenchSpec (*Make)();
  ShackleChain (*Shackle)(const Program &);
  std::vector<int64_t> Params;
};

ShackleChain mmmC8(const Program &P) { return mmmShackleC(P, 8); }
ShackleChain cholStores4(const Program &P) {
  return choleskyShackleStores(P, 4);
}
ShackleChain adi1(const Program &P) { return adiShackle(P); }

const FlipCase FlipCases[] = {
    {"matmul-c", makeMatMul, mmmC8, {32}},
    {"cholesky-stores", makeCholeskyRight, cholStores4, {20}},
    {"adi-fused", makeADI, adi1, {12}},
};

TEST_F(IntegrityTest, FlipIsDetectedAndRecomputedBitwiseOnEverySchedule) {
  // The acceptance gate: under flip@block with --verify-data=block, every
  // benchmark at every thread count finishes bitwise-identical to serial
  // with the corruption counted — the flipped execution never commits.
  for (const FlipCase &C : FlipCases) {
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      arm("seed=5;flip@block=1");
      if (IsSkipped())
        return;
      BenchSpec Spec = C.Make();
      ParallelRunOptions Opts;
      Opts.NumThreads = Threads;
      Opts.VerifyData = DataVerify::Block;
      ParallelRunStats Stats =
          runExpectBitwise(Spec, C.Shackle(*Spec.Prog), C.Params, Opts);
      EXPECT_EQ(Stats.VerifyUsed, DataVerify::Block) << C.Label;
      EXPECT_GE(Stats.Integrity.CorruptionsDetected, 1u)
          << C.Label << " threads=" << Threads;
      EXPECT_GE(Stats.Integrity.ChecksumsVerified, 1u) << C.Label;
      EXPECT_GE(Stats.Retries, 1u) << C.Label;
      EXPECT_TRUE(diagContains(Stats.Diags, DiagCode::ParallelFault,
                               "checksums diverged"))
          << C.Label;
      EXPECT_EQ(FaultInjector::instance().counters().BitFlips, 1u)
          << C.Label;
    }
  }
}

TEST_F(IntegrityTest, SeedSweptFlipsNeverCommitSilently) {
  // Zero-silent-wrong-answers: whatever element and bit the seed picks,
  // the run either matches serial bitwise or fails loudly. (With
  // verification on it must in fact always match.)
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    arm("seed=" + std::to_string(Seed) + ";flip@block=2");
    if (IsSkipped())
      return;
    BenchSpec Spec = makeMatMul();
    ParallelRunOptions Opts;
    Opts.NumThreads = 4;
    Opts.VerifyData = DataVerify::Block;
    ParallelRunStats Stats =
        runExpectBitwise(Spec, mmmC8(*Spec.Prog), {32}, Opts);
    EXPECT_GE(Stats.Integrity.CorruptionsDetected, 1u) << "seed " << Seed;
  }
}

TEST_F(IntegrityTest, UndoVerifyModeAloneDoesNotCatchFlips) {
  // Contrast case documenting the verification tiers: --verify-data=undo
  // protects restores, not commits, so a flipped commit goes through and
  // the result legitimately differs from serial. The run must still be
  // "successful" (no Failed flag) — this is exactly the gap that
  // --verify-data=block closes.
  arm("seed=5;flip@block=1");
  if (IsSkipped())
    return;
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, mmmC8(P), {32});
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance Ref(P, {32});
  Ref.fillRandom(77, 0.5, 1.5);
  ProgramInstance Par = Ref;
  Plan.runSerial(Ref);
  ParallelRunOptions Opts;
  Opts.NumThreads = 4;
  Opts.VerifyData = DataVerify::Undo;
  ParallelRunStats Stats = Plan.run(Par, Opts);
  EXPECT_FALSE(Stats.Failed);
  EXPECT_EQ(Stats.Integrity.CorruptionsDetected, 0u);
  EXPECT_FALSE(Ref.bitwiseEqual(Par)); // The flip landed undetected.
}

//===----------------------------------------------------------------------===//
// Corrupted undo logs: refused restores escalate to the pristine replay
//===----------------------------------------------------------------------===//

TEST_F(IntegrityTest, CorruptUndoRefusesRestoreAndReplaysFromPristine) {
  // The undo log of block 2 is mutated before its restore (the restore is
  // forced by pairing a throw on the same block). The checksum catches
  // the mutation, the restore is refused, and the whole nest restarts
  // serially from the pristine snapshot — still bitwise-identical.
  for (unsigned Threads : {1u, 2u, 4u, 8u}) {
    arm("seed=9;throw@block=2,count=1;corrupt-undo@block=2");
    if (IsSkipped())
      return;
    BenchSpec Spec = makeCholeskyRight();
    ParallelRunOptions Opts;
    Opts.NumThreads = Threads;
    Opts.VerifyData = DataVerify::Undo;
    ParallelRunStats Stats =
        runExpectBitwise(Spec, cholStores4(*Spec.Prog), {20}, Opts);
    EXPECT_EQ(Stats.Mode, ParallelMode::Degraded) << Threads;
    EXPECT_GE(Stats.Integrity.UndoRefused, 1u) << Threads;
    EXPECT_GE(Stats.Integrity.CorruptionsDetected, 1u) << Threads;
    EXPECT_EQ(Stats.Integrity.PristineReplays, 1u) << Threads;
    EXPECT_TRUE(diagContains(Stats.Diags, DiagCode::ParallelFault,
                             "refusing the unsound restore"))
        << Threads;
    EXPECT_TRUE(diagContains(Stats.Diags, DiagCode::ParallelDegrade,
                             "pristine"))
        << Threads;
    EXPECT_EQ(FaultInjector::instance().counters().UndoCorruptions, 1u)
        << Threads;
  }
}

TEST_F(IntegrityTest, CorruptUndoUnderBlockVerifyNeedsNoPairedFault) {
  // --verify-data=block restores between the two shadow executions, so a
  // corrupt-undo fires without any other fault — and MMM and ADI join
  // Cholesky in converging bitwise through the pristine replay.
  struct Case {
    const char *Label;
    BenchSpec (*Make)();
    ShackleChain (*Shackle)(const Program &);
    std::vector<int64_t> Params;
  };
  const Case Cases[] = {
      {"matmul-c", makeMatMul, mmmC8, {32}},
      {"adi-fused", makeADI, adi1, {12}},
  };
  for (const Case &C : Cases) {
    arm("seed=3;corrupt-undo@block=1");
    if (IsSkipped())
      return;
    BenchSpec Spec = C.Make();
    ParallelRunOptions Opts;
    Opts.NumThreads = 4;
    Opts.VerifyData = DataVerify::Block;
    ParallelRunStats Stats =
        runExpectBitwise(Spec, C.Shackle(*Spec.Prog), C.Params, Opts);
    EXPECT_GE(Stats.Integrity.UndoRefused, 1u) << C.Label;
    EXPECT_EQ(Stats.Integrity.PristineReplays, 1u) << C.Label;
  }
}

TEST_F(IntegrityTest, VerifyOffTrustsTheUndoLogAndMissesTheCorruption) {
  // Without verification the mutated pre-image is restored as if sound.
  // MMM accumulates into C, so the corrupted restored base flows into the
  // retried block's result: the run "succeeds" with a wrong answer — the
  // documented cost of --verify-data=off, pinned here so the tier table
  // stays honest.
  arm("seed=9;throw@block=2,count=1;corrupt-undo@block=2");
  if (IsSkipped())
    return;
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, mmmC8(P), {32});
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance Ref(P, {32});
  Ref.fillRandom(77, 0.5, 1.5);
  ProgramInstance Par = Ref;
  Plan.runSerial(Ref);
  ParallelRunOptions Opts;
  Opts.NumThreads = 4;
  Opts.VerifyData = DataVerify::Off;
  Opts.PoisonCheck = false;
  ParallelRunStats Stats = Plan.run(Par, Opts);
  EXPECT_EQ(Stats.Integrity.UndoRefused, 0u);
  EXPECT_EQ(Stats.VerifyUsed, DataVerify::Off);
  EXPECT_FALSE(Ref.bitwiseEqual(Par));
}

//===----------------------------------------------------------------------===//
// Numerical poisoning: quarantine with provenance
//===----------------------------------------------------------------------===//

TEST_F(IntegrityTest, InjectedNanQuarantinesTheBlockAndItsCone) {
  arm("seed=5;nan@block=2");
  if (IsSkipped())
    return;
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, cholStores4(P), {20});
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance Inst(P, {20});
  Inst.fillRandom(77, 0.5, 1.5);
  // A strongly diagonally dominant matrix is SPD: the factorization is
  // finite everywhere, so the only non-finite value in the run is the
  // injected one — unmistakably corruption, not "produced" arithmetic.
  for (int64_t I = 0; I < 20; ++I)
    Inst.buffer(0)[I * 20 + I] += 100.0;
  ParallelRunOptions Opts;
  Opts.NumThreads = 4;
  ParallelRunStats Stats = Plan.run(Inst, Opts);

  // The run fails with provenance: the exact first poisoned block, the
  // poisoned address, and the downstream cone — never a silent NaN.
  EXPECT_TRUE(Stats.Failed);
  EXPECT_FALSE(Stats.Progress.complete());
  EXPECT_GE(Stats.Integrity.PoisonedBlocks, 1u);
  EXPECT_GE(Stats.Integrity.CorruptionsDetected, 1u);
  EXPECT_TRUE(diagContains(Stats.Diags, DiagCode::ParallelPoison,
                           "block #2"));
  EXPECT_TRUE(diagContains(Stats.Diags, DiagCode::ParallelPoison,
                           "silent corruption"));
  // Cholesky block 2 has dependents; the cone is named and larger than
  // the block itself.
  EXPECT_TRUE(diagContains(Stats.Diags, DiagCode::ParallelPoison,
                           "downstream dependence cone"));
  EXPECT_GT(Stats.Integrity.PoisonedBlocks, 1u);
  EXPECT_EQ(FaultInjector::instance().counters().NansInjected, 1u);
}

TEST_F(IntegrityTest, InjectedInfIsCaughtLikeNan) {
  arm("seed=7;inf@block=1");
  if (IsSkipped())
    return;
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, mmmC8(P), {32});
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance Inst(P, {32});
  Inst.fillRandom(77, 0.5, 1.5);
  ParallelRunOptions Opts;
  Opts.NumThreads = 2;
  ParallelRunStats Stats = Plan.run(Inst, Opts);
  EXPECT_TRUE(Stats.Failed);
  EXPECT_GE(Stats.Integrity.PoisonedBlocks, 1u);
  EXPECT_TRUE(diagContains(Stats.Diags, DiagCode::ParallelPoison, "inf"));
  EXPECT_EQ(FaultInjector::instance().counters().InfsInjected, 1u);
}

TEST_F(IntegrityTest, PoisonedFootprintIsRolledBackNotCommitted) {
  // The quarantined block's footprint must hold its pre-run values: the
  // poison is withheld, not published for some later consumer to read.
  arm("seed=5;nan@block=0");
  if (IsSkipped())
    return;
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, mmmC8(P), {16});
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance Inst(P, {16});
  Inst.fillRandom(3, 0.5, 1.5);
  ParallelRunOptions Opts;
  Opts.NumThreads = 1;
  ParallelRunStats Stats = Plan.run(Inst, Opts);
  EXPECT_TRUE(Stats.Failed);
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    for (double V : Inst.buffer(A))
      EXPECT_TRUE(std::isfinite(V)); // No NaN escaped into the instance.
}

TEST_F(IntegrityTest, GenuineNanIsAttributedButCommittedLikeSerial) {
  // A negative matrix sends Cholesky's sqrt to NaN in the block's own
  // arithmetic. That is the program's honest answer — serial would
  // compute the same bits — so the runtime attributes it (store-check
  // provenance, "produced", not corruption) and commits it. Refusing it
  // would break serial equivalence.
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ParallelPlan Plan = ParallelPlan::build(P, cholStores4(P), {20});
  ASSERT_TRUE(Plan.parallelReady());
  ProgramInstance Ref(P, {20});
  Ref.fillRandom(13, -2.0, -1.0); // Negative diagonal: sqrt -> NaN.
  ProgramInstance Par = Ref;
  Plan.runSerial(Ref);
  bool RefHasNan = false;
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    for (double V : Ref.buffer(A))
      RefHasNan |= !std::isfinite(V);
  ASSERT_TRUE(RefHasNan); // Premise: the program genuinely produces NaN.

  ParallelRunOptions Opts;
  Opts.NumThreads = 4;
  ParallelRunStats Stats = Plan.run(Par, Opts);
  EXPECT_FALSE(Stats.Failed);
  EXPECT_TRUE(Stats.Progress.complete());
  EXPECT_EQ(Stats.Integrity.PoisonedBlocks, 0u); // Nothing quarantined.
  EXPECT_EQ(Stats.Integrity.CorruptionsDetected, 0u);
  EXPECT_TRUE(Ref.bitwiseEqual(Par));
  EXPECT_TRUE(diagContains(Stats.Diags, DiagCode::ParallelPoison,
                           "genuine numerical failure"));
}

//===----------------------------------------------------------------------===//
// Escalation interplay: retries x watchdog deadlines (seed swept)
//===----------------------------------------------------------------------===//

TEST_F(IntegrityTest, ThrowPlusStallConvergesOrDegradesCleanlyAcrossSeeds) {
  // A block that both throws (twice) and stalls its worker forever: the
  // retry ladder and the watchdog race. Whatever the interleaving at any
  // thread count, the run must converge bitwise — retried in place or
  // degraded to the serial replay — and never hang, fail, or lie.
  for (uint64_t Seed : {1u, 7u, 23u}) {
    for (unsigned Threads : {1u, 2u, 4u, 8u}) {
      arm("seed=" + std::to_string(Seed) +
          ";throw@block=1,count=2;stall@worker=0,ms=30000");
      if (IsSkipped())
        return;
      BenchSpec Spec = makeCholeskyRight();
      ParallelRunOptions Opts;
      Opts.NumThreads = Threads;
      Opts.MaxRetries = 2;
      Opts.StallTimeoutMs = 100;
      ParallelRunStats Stats =
          runExpectBitwise(Spec, cholStores4(*Spec.Prog), {20}, Opts);
      EXPECT_TRUE(Stats.Mode == ParallelMode::Parallel ||
                  Stats.Mode == ParallelMode::Degraded)
          << "seed=" << Seed << " threads=" << Threads;
      EXPECT_GE(Stats.Faults + Stats.ReplayedSerially, 1u)
          << "seed=" << Seed << " threads=" << Threads;
    }
  }
}

//===----------------------------------------------------------------------===//
// CLI end-to-end
//===----------------------------------------------------------------------===//

TEST_F(IntegrityTest, CliFlipRunPrintsIntegrityLineAndVerifiesBitwise) {
  if (!FaultInjectionCompiledIn)
    GTEST_SKIP() << "built without SHACKLE_ENABLE_FAULT_INJECTION";
  auto [Rc, Out] = runCli(
      "run matmul c --params=32 --block=8 --threads=4 --verify-data=block "
      "--verify --inject='seed=5;flip@block=1'");
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("integrity: verify-data=block"), std::string::npos)
      << Out;
  EXPECT_NE(Out.find("corruptions-detected=1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bitwise-identical"), std::string::npos) << Out;
}

TEST_F(IntegrityTest, CliParanoiaFlagForcesBlockVerification) {
  auto [Rc, Out] = runCli(
      "run matmul c --params=16 --block=8 --threads=2 --paranoia --verify");
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("integrity: verify-data=block"), std::string::npos)
      << Out;
}

TEST_F(IntegrityTest, CliNanRunFailsWithPoisonProvenance) {
  if (!FaultInjectionCompiledIn)
    GTEST_SKIP() << "built without SHACKLE_ENABLE_FAULT_INJECTION";
  auto [Rc, Out] = runCli(
      "run matmul c --params=32 --block=8 --threads=4 "
      "--inject='seed=5;nan@block=3'");
  EXPECT_EQ(Rc, 1) << Out;
  EXPECT_NE(Out.find("parallel-poison"), std::string::npos) << Out;
  EXPECT_NE(Out.find("block #3"), std::string::npos) << Out;
  EXPECT_NE(Out.find("quarantined"), std::string::npos) << Out;
}

TEST_F(IntegrityTest, CliCorruptUndoConvergesThroughPristineReplay) {
  if (!FaultInjectionCompiledIn)
    GTEST_SKIP() << "built without SHACKLE_ENABLE_FAULT_INJECTION";
  auto [Rc, Out] = runCli(
      "run cholesky-right stores --params=20 --block=4 --threads=4 "
      "--verify --inject='seed=9;throw@block=2;corrupt-undo@block=2'");
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("pristine-replays=1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("undo-refused=1"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bitwise-identical"), std::string::npos) << Out;
}

} // namespace
