//===- interp_test.cpp - Interpreter details -----------------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

TEST(Interpreter, TraceEmitsLoadsBeforeTheStore) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  LoopNest Orig = generateOriginalCode(P);
  ProgramInstance Inst(P, {2});
  Inst.fillRandom(1, 0.5, 1.5);

  struct Event {
    unsigned Array;
    int64_t Off;
    bool Write;
  };
  std::vector<Event> Events;
  TraceFn Trace = [&](unsigned A, int64_t O, bool W) {
    Events.push_back({A, O, W});
  };
  runLoopNest(Orig, Inst, &Trace);

  // 8 instances x (3 loads + 1 store).
  ASSERT_EQ(Events.size(), 32u);
  for (unsigned I = 0; I < Events.size(); I += 4) {
    EXPECT_FALSE(Events[I].Write);
    EXPECT_FALSE(Events[I + 1].Write);
    EXPECT_FALSE(Events[I + 2].Write);
    EXPECT_TRUE(Events[I + 3].Write);
    // The C load and the C store hit the same location.
    EXPECT_EQ(Events[I].Array, Events[I + 3].Array);
    EXPECT_EQ(Events[I].Off, Events[I + 3].Off);
  }
}

TEST(Interpreter, TraceCountIsLayoutIndependent) {
  // The same program traced under plain and tiled layouts emits the same
  // number of events (addresses differ, the access sequence does not).
  auto CountEvents = [](BenchSpec Spec) {
    ProgramInstance Inst(*Spec.Prog, {9});
    Inst.fillRandom(1, 0.5, 1.5);
    uint64_t Count = 0;
    TraceFn Trace = [&](unsigned, int64_t, bool) { ++Count; };
    runLoopNest(generateOriginalCode(*Spec.Prog), Inst, &Trace);
    return Count;
  };
  EXPECT_EQ(CountEvents(makeMatMul()), CountEvents(makeMatMulTiled(4)));
}

TEST(Interpreter, CountExecutedInstancesDoesNotTouchArrays) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  ProgramInstance Inst(P, {6});
  Inst.fillRandom(3, 0.5, 1.5); // Not SPD: running would produce NaNs.
  std::vector<double> Before = Inst.buffer(0);
  uint64_t Count = countExecutedInstances(generateOriginalCode(P), Inst);
  // J sqrt (6) + scale (15) + updates sum L-J over J (1+3+6+10+15 = 35)...
  // directly: sum over J of (N-1-J)(N-J)/2 = 35; total 6 + 15 + 35.
  EXPECT_EQ(Count, 56u);
  EXPECT_EQ(Inst.buffer(0), Before);
}

TEST(Interpreter, ExecuteStatementInstanceMatchesFullRun) {
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  int64_t N = 5;
  ProgramInstance A(P, {N}), B(P, {N});
  A.fillRandom(4, 0.5, 1.5);
  for (unsigned Arr = 0; Arr < 3; ++Arr)
    B.buffer(Arr) = A.buffer(Arr);
  runLoopNest(generateOriginalCode(P), A);
  const Stmt &S = P.getStmt(0);
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J)
      for (int64_t K = 0; K < N; ++K)
        executeStatementInstance(B, S, {I, J, K});
  EXPECT_EQ(A.maxAbsDifference(B), 0.0);
}

TEST(Interpreter, MinMaxLoopBoundsEvaluate) {
  // Banded Cholesky has min() upper bounds; spot-check the executed
  // instance count against the closed form.
  BenchSpec Spec = makeCholeskyBanded();
  const Program &P = *Spec.Prog;
  int64_t N = 8, BW = 3;
  ProgramInstance Inst(P, {N, BW});
  uint64_t Count = countExecutedInstances(generateOriginalCode(P), Inst);
  uint64_t Expected = 0;
  for (int64_t J = 0; J < N; ++J) {
    int64_t Last = std::min(N - 1, J + BW);
    Expected += 1 + (Last - J); // S1 + S2 range.
    for (int64_t L = J + 1; L <= Last; ++L)
      Expected += L - J; // S3: K in [J+1, L].
  }
  EXPECT_EQ(Count, Expected);
}

TEST(ThreeLevelBlocking, MatMulTripleProductIsExact) {
  // Section 6.3 stress: three memory levels = three product groups,
  // twelve block dimensions in the scanning space.
  BenchSpec Spec = makeMatMul();
  const Program &P = *Spec.Prog;
  ShackleChain Chain = mmmShackleTwoLevel(P, 16, 4);
  ShackleChain Third = mmmShackleCxA(P, 2);
  for (DataShackle &F : Third.Factors)
    Chain.Factors.push_back(std::move(F));
  ASSERT_EQ(Chain.numBlockDims(), 12u);

  LoopNest Blocked = generateShackledCode(P, Chain);
  LoopNest Orig = generateOriginalCode(P);
  ProgramInstance A(P, {19}), B(P, {19});
  A.fillRandom(6, 0.5, 1.5);
  for (unsigned Arr = 0; Arr < 3; ++Arr)
    B.buffer(Arr) = A.buffer(Arr);
  runLoopNest(Orig, A);
  runLoopNest(Blocked, B);
  EXPECT_EQ(A.maxAbsDifference(B), 0.0);
}

} // namespace
