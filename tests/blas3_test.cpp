//===- blas3_test.cpp - SYRK and TRMM through the pipeline ---------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "core/ShackleDriver.h"
#include "interp/Interpreter.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

double runBoth(const Program &P, const ShackleChain &Chain, int64_t N) {
  ProgramInstance Ref(P, {N}), Test(P, {N});
  Ref.fillRandom(14, 0.5, 1.5);
  for (unsigned A = 0; A < P.getNumArrays(); ++A)
    Test.buffer(A) = Ref.buffer(A);
  runLoopNest(generateOriginalCode(P), Ref);
  runLoopNest(generateShackledCode(P, Chain), Test);
  return Ref.maxAbsDifference(Test);
}

TEST(Syrk, ComputesTheLowerTriangleUpdate) {
  BenchSpec Spec = makeSyrk();
  const Program &P = *Spec.Prog;
  int64_t N = 7;
  ProgramInstance Inst(P, {N});
  Inst.fillRandom(2, 0.5, 1.5);
  std::vector<double> C0 = Inst.buffer(0), A = Inst.buffer(1);
  runLoopNest(generateOriginalCode(P), Inst);
  auto Off = [&](unsigned Arr, int64_t I, int64_t J) {
    int64_t Idx[2] = {I, J};
    return Inst.offset(Arr, Idx);
  };
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J <= I; ++J) {
      double Acc = C0[Off(0, I, J)];
      for (int64_t K = 0; K < N; ++K)
        Acc += A[Off(1, I, K)] * A[Off(1, J, K)];
      EXPECT_NEAR(Inst.buffer(0)[Off(0, I, J)], Acc, 1e-12);
    }
  // Strict upper triangle untouched.
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = I + 1; J < N; ++J)
      EXPECT_EQ(Inst.buffer(0)[Off(0, I, J)], C0[Off(0, I, J)]);
}

TEST(Syrk, StoreShackleLegalAndExact) {
  BenchSpec Spec = makeSyrk();
  const Program &P = *Spec.Prog;
  ShackleChain Chain;
  Chain.Factors.push_back(
      DataShackle::onStores(P, DataBlocking::rectangular(0, {8, 8})));
  ASSERT_TRUE(checkLegality(P, Chain).Legal);
  EXPECT_EQ(runBoth(P, Chain, 21), 0.0);
}

TEST(Trmm, ComputesLTimesBInPlace) {
  BenchSpec Spec = makeTrmm();
  const Program &P = *Spec.Prog;
  int64_t N = 8;
  ProgramInstance Inst(P, {N});
  Inst.fillRandom(5, 0.5, 1.5);
  std::vector<double> B0 = Inst.buffer(0), L = Inst.buffer(1);
  runLoopNest(generateOriginalCode(P), Inst);
  auto Off = [&](unsigned Arr, int64_t I, int64_t J) {
    int64_t Idx[2] = {I, J};
    return Inst.offset(Arr, Idx);
  };
  for (int64_t I = 0; I < N; ++I)
    for (int64_t J = 0; J < N; ++J) {
      double Acc = 0;
      for (int64_t K = 0; K <= I; ++K)
        Acc += L[Off(1, I, K)] * B0[Off(0, K, J)];
      EXPECT_NEAR(Inst.buffer(0)[Off(0, I, J)], Acc, 1e-12) << I << "," << J;
    }
}

TEST(Trmm, RowBlocksNeedTheReversedWalk) {
  // Rows are produced bottom-up, so walking row blocks top-to-bottom is
  // illegal and the reversed walk is legal — the same Section 8 reversal
  // pattern as the triangular solve.
  BenchSpec Spec = makeTrmm();
  const Program &P = *Spec.Prog;
  for (bool Reversed : {false, true}) {
    DataBlocking Blocking = DataBlocking::rectangular(0, {4, 4});
    Blocking.Planes[0].Reversed = Reversed;
    ShackleChain Chain;
    Chain.Factors.push_back(DataShackle::onStores(P, Blocking));
    EXPECT_EQ(checkLegality(P, Chain).Legal, Reversed);
    if (Reversed)
      EXPECT_EQ(runBoth(P, Chain, 19), 0.0);
  }
}

} // namespace
