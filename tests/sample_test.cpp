//===- sample_test.cpp - Integer sampling and legality witnesses --------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//

#include "core/Legality.h"
#include "polyhedral/OmegaTest.h"
#include "polyhedral/Sample.h"
#include "programs/Benchmarks.h"

#include <gtest/gtest.h>

using namespace shackle;

namespace {

TEST(Sample, FindsPointInSimpleBox) {
  Polyhedron P(2);
  P.addBounds(0, 3, 5);
  P.addBounds(1, -2, -2);
  auto Pt = sampleIntegerPoint(P);
  ASSERT_TRUE(Pt.has_value());
  EXPECT_TRUE(P.containsPoint(*Pt));
  EXPECT_EQ((*Pt)[1], -2);
}

TEST(Sample, RespectsCouplingConstraints) {
  // x + y == 7, x - y >= 3, 0 <= x,y <= 10.
  Polyhedron P(2);
  P.addBounds(0, 0, 10);
  P.addBounds(1, 0, 10);
  P.addEqualityTerms({{0, 1}, {1, 1}}, -7);
  P.addInequalityTerms({{0, 1}, {1, -1}}, -3);
  auto Pt = sampleIntegerPoint(P);
  ASSERT_TRUE(Pt.has_value());
  EXPECT_TRUE(P.containsPoint(*Pt));
}

TEST(Sample, ReturnsNulloptOnEmptySets) {
  Polyhedron P(1);
  P.addBounds(0, 5, 3); // Empty interval.
  EXPECT_FALSE(sampleIntegerPoint(P).has_value());

  Polyhedron Q(1); // 2x == 1.
  Q.addEqualityTerms({{0, 2}}, -1);
  EXPECT_FALSE(sampleIntegerPoint(Q).has_value());
}

class SampleProperty : public ::testing::TestWithParam<int> {};

TEST_P(SampleProperty, AgreesWithOmegaWithinBox) {
  // Random bounded systems: sample() finds a point iff the Omega test says
  // non-empty, and the point satisfies the constraints.
  uint64_t X = GetParam() * 2654435761u + 17;
  auto Next = [&X]() {
    X ^= X << 13;
    X ^= X >> 7;
    X ^= X << 17;
    return X;
  };
  Polyhedron P(3);
  for (unsigned V = 0; V < 3; ++V)
    P.addBounds(V, -4, 4);
  for (unsigned I = 0; I < 3; ++I) {
    ConstraintRow Row(4, 0);
    for (unsigned V = 0; V < 3; ++V)
      Row[V] = static_cast<int64_t>(Next() % 7) - 3;
    Row[3] = static_cast<int64_t>(Next() % 13) - 6;
    P.addInequality(std::move(Row));
  }
  auto Pt = sampleIntegerPoint(P, -4, 4);
  EXPECT_EQ(Pt.has_value(), !isIntegerEmpty(P));
  if (Pt)
    EXPECT_TRUE(P.containsPoint(*Pt));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampleProperty, ::testing::Range(1, 80));

TEST(LegalityWitness, IllegalCholeskyShackleHasConcreteCounterexample) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  // The paper-prose choice (A[J,J] for S2, A[L,J] for S3): illegal.
  std::vector<unsigned> RefIdx = {0, 2, 2};
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onRefs(
      P, DataBlocking::rectangular(0, {4, 4}, {1, 0}), RefIdx));
  LegalityResult R = checkLegality(P, Chain);
  ASSERT_FALSE(R.Legal);
  ASSERT_FALSE(R.Violations.empty());
  std::string W = R.Violations[0].witnessStr(P);
  EXPECT_NE(W.find("must precede"), std::string::npos) << W;
  EXPECT_NE(W.find("N="), std::string::npos) << W;
}

TEST(LegalityWitness, WitnessSatisfiesViolationSystem) {
  BenchSpec Spec = makeCholeskyRight();
  const Program &P = *Spec.Prog;
  std::vector<unsigned> RefIdx = {0, 2, 2};
  ShackleChain Chain;
  Chain.Factors.push_back(DataShackle::onRefs(
      P, DataBlocking::rectangular(0, {4, 4}, {1, 0}), RefIdx));
  LegalityResult R = checkLegality(P, Chain, /*FirstViolationOnly=*/true);
  ASSERT_FALSE(R.Violations.empty());
  auto Pt = sampleIntegerPoint(R.Violations[0].ViolationPoly);
  ASSERT_TRUE(Pt.has_value());
  EXPECT_TRUE(R.Violations[0].ViolationPoly.containsPoint(*Pt));
}

} // namespace
