//===- cli_test.cpp - The shackle command-line driver --------------------------//
//
// Part of the Shackle project: a reproduction of "Data-centric Multi-level
// Blocking" (Kodukula, Ahmed, Pingali; PLDI 1997).
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of the `shackle` binary (path injected by CMake),
// including the DSL front-end path through a temp file.
//
//===----------------------------------------------------------------------===//

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>

namespace {

#ifndef SHACKLE_CLI_PATH
#error "SHACKLE_CLI_PATH must be defined by the build"
#endif

/// Runs the CLI with \p Args; returns (exit code, stdout).
std::pair<int, std::string> runCli(const std::string &Args) {
  std::string Cmd = std::string(SHACKLE_CLI_PATH) + " " + Args + " 2>&1";
  std::FILE *Pipe = popen(Cmd.c_str(), "r");
  EXPECT_NE(Pipe, nullptr);
  std::string Out;
  char Buf[4096];
  size_t Got;
  while ((Got = std::fread(Buf, 1, sizeof(Buf), Pipe)) > 0)
    Out.append(Buf, Got);
  int Status = pclose(Pipe);
  return {WEXITSTATUS(Status), Out};
}

TEST(Cli, ListShowsBenchmarks) {
  auto [Rc, Out] = runCli("list");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("cholesky-right"), std::string::npos);
  EXPECT_NE(Out.find("matmul"), std::string::npos);
}

TEST(Cli, CodegenPrintsBlockedLoops) {
  auto [Rc, Out] = runCli("codegen matmul cxa --block=25");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("do b1 = 0 .. floor((N - 1)/25)"), std::string::npos)
      << Out;
}

TEST(Cli, LegalityExitCodesDistinguishVerdicts) {
  EXPECT_EQ(runCli("legality cholesky-right stores").first, 0);
  EXPECT_EQ(runCli("legality matmul c").first, 0);
}

TEST(Cli, CensusReportsSixVerdictsWithWitnesses) {
  auto [Rc, Out] = runCli("census");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("LEGAL"), std::string::npos);
  EXPECT_NE(Out.find("illegal"), std::string::npos);
  EXPECT_NE(Out.find("must precede"), std::string::npos);
}

TEST(Cli, DepsPrintsDirectionVectors) {
  auto [Rc, Out] = runCli("deps matmul");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("(=,=,<)"), std::string::npos) << Out;
}

TEST(Cli, UnknownBenchmarkFailsWithMessage) {
  auto [Rc, Out] = runCli("print nosuchthing");
  EXPECT_NE(Rc, 0);
  EXPECT_NE(Out.find("unknown benchmark"), std::string::npos);
}

TEST(Cli, RunVerifiesParallelExecutionBitwise) {
  auto [Rc, Out] = runCli("run matmul c --params=24 --block=8 --threads=4 "
                          "--verify");
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("mode=parallel"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bitwise-identical"), std::string::npos) << Out;
}

TEST(Cli, RunStrictRefusesSerialFallbackWithExit1) {
  // Seidel's shackle is illegal, so the plan is never parallel-ready;
  // --strict turns the silent fallback into a refusal.
  auto [Rc, Out] =
      runCli("run seidel blocks --params=24,3 --threads=4 --strict");
  EXPECT_EQ(Rc, 1) << Out;
  EXPECT_NE(Out.find("[parallel-fallback]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("refusing serial fallback"), std::string::npos) << Out;
}

TEST(Cli, RunSolverBudgetFallbackStillExecutesWithExit0) {
  auto [Rc, Out] = runCli("run cholesky-right stores --params=16 --block=4 "
                          "--threads=4 --solver-budget=5 --verify");
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("[parallel-fallback]"), std::string::npos) << Out;
  EXPECT_NE(Out.find("mode=serial-fallback"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bitwise-identical"), std::string::npos) << Out;
}

TEST(Cli, RunTaskLevelReportsOuterTasksNotInnerBlocks) {
  auto [Rc, Out] = runCli("run matmul two-level --params=16 --block=8 "
                          "--threads=4 --task-level=2 --verify");
  EXPECT_EQ(Rc, 0) << Out;
  // The plan summary and run report speak in outer tasks (the rollback /
  // retry / progress unit), never inner block visits.
  EXPECT_NE(Out.find("task-level=2/4"), std::string::npos) << Out;
  EXPECT_NE(Out.find("outer task(s) over 2 of 4 chain factor(s)"),
            std::string::npos)
      << Out;
  EXPECT_NE(Out.find("ran 8 outer task(s) [task-level 2/4"),
            std::string::npos)
      << Out;
  EXPECT_EQ(Out.find("block task(s)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bitwise-identical"), std::string::npos) << Out;
}

TEST(Cli, RunTaskLevelAutoPicksACoarseLevel) {
  auto [Rc, Out] = runCli("run matmul two-level --params=32 --block=8 "
                          "--threads=4 --task-level=auto --verify");
  EXPECT_EQ(Rc, 0) << Out;
  // Auto stops at level 1: C's outer blocks alone already give 16 tasks,
  // enough for 4 threads.
  EXPECT_NE(Out.find("task-level=1/4"), std::string::npos) << Out;
  EXPECT_NE(Out.find("outer task(s)"), std::string::npos) << Out;
  EXPECT_NE(Out.find("bitwise-identical"), std::string::npos) << Out;
}

TEST(Cli, RunFlatKeepsBlockTaskWording) {
  auto [Rc, Out] =
      runCli("run matmul c --params=24 --block=8 --threads=4 --verify");
  EXPECT_EQ(Rc, 0) << Out;
  EXPECT_NE(Out.find("block task(s)"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("outer task"), std::string::npos) << Out;
}

TEST(Cli, RunRejectsMalformedTaskLevel) {
  auto [Rc, Out] =
      runCli("run matmul two-level --params=16 --task-level=banana");
  EXPECT_EQ(Rc, 1) << Out;
  EXPECT_NE(Out.find("usage-error"), std::string::npos) << Out;
  EXPECT_NE(Out.find("--task-level"), std::string::npos) << Out;
}

TEST(Cli, RunRejectsMalformedInjectSpecWithExit2AndColumn) {
  // A typo in --inject must never silently run without faults: exit 2
  // (illegal spec, same class as an illegal shackle) and a diagnostic
  // pointing at the offending clause's column within the spec string.
  auto [Rc, Out] = runCli(
      "run matmul c --params=16 --inject='seed=3;flip@blk=2'");
  EXPECT_EQ(Rc, 2) << Out;
  EXPECT_NE(Out.find("col 8"), std::string::npos) << Out;
  EXPECT_NE(Out.find("flip@blk=2"), std::string::npos) << Out;
  EXPECT_NE(Out.find("grammar"), std::string::npos) << Out;
}

TEST(Cli, RunRejectsMalformedVerifyData) {
  auto [Rc, Out] = runCli("run matmul c --params=16 --verify-data=banana");
  EXPECT_EQ(Rc, 1) << Out;
  EXPECT_NE(Out.find("usage-error"), std::string::npos) << Out;
  EXPECT_NE(Out.find("--verify-data"), std::string::npos) << Out;
}

class CliFile : public ::testing::Test {
protected:
  void SetUp() override {
    Path = ::testing::TempDir() + "cli_test_prog.dsl";
    std::FILE *F = std::fopen(Path.c_str(), "w");
    ASSERT_NE(F, nullptr);
    const char *Src = "param N\n"
                      "array A[N][N] colmajor\n"
                      "do J = 0, N-1\n"
                      "  S1: A[J][J] = sqrt(A[J][J])\n"
                      "  do I = J+1, N-1\n"
                      "    S2: A[I][J] = A[I][J] / A[J][J]\n"
                      "  end\n"
                      "  do L = J+1, N-1\n"
                      "    do K = J+1, L\n"
                      "      S3: A[L][K] = A[L][K] - A[L][J]*A[K][J]\n"
                      "    end\n"
                      "  end\n"
                      "end\n";
    std::fputs(Src, F);
    std::fclose(F);
  }

  std::string Path;
};

TEST_F(CliFile, PrintRoundTrips) {
  auto [Rc, Out] = runCli("file " + Path + " print");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("do J = 0 .. N - 1"), std::string::npos) << Out;
}

TEST_F(CliFile, LegalityAndCodegenOnParsedProgram) {
  auto [Rc, Out] =
      runCli("file " + Path + " legality --array=A --block=8,8");
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("legal"), std::string::npos);

  auto [Rc2, Out2] =
      runCli("file " + Path + " codegen --array=A --block=8,8");
  EXPECT_EQ(Rc2, 0);
  EXPECT_NE(Out2.find("do b1"), std::string::npos) << Out2;
}

TEST_F(CliFile, ReversedWalkIsRejectedWithCounterexample) {
  auto [Rc, Out] =
      runCli("file " + Path + " legality --array=A --block=4,4 --reversed");
  EXPECT_EQ(Rc, 2);
  EXPECT_NE(Out.find("illegal"), std::string::npos);
  EXPECT_NE(Out.find("must precede"), std::string::npos);
}

TEST_F(CliFile, ParseErrorsAreReportedWithLine) {
  std::string Bad = ::testing::TempDir() + "cli_test_bad.dsl";
  std::FILE *F = std::fopen(Bad.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fputs("param N\narray A[N]\ndo i = 0, N-1\nA[i] = 1\n", F);
  std::fclose(F);
  auto [Rc, Out] = runCli("file " + Bad + " print");
  EXPECT_EQ(Rc, 3);
  EXPECT_NE(Out.find("line"), std::string::npos) << Out;
  EXPECT_NE(Out.find("parse-error"), std::string::npos) << Out;
}

TEST_F(CliFile, StrayCharacterReportsLineAndColumnWithExit3) {
  std::string Bad = ::testing::TempDir() + "cli_test_stray.dsl";
  std::FILE *F = std::fopen(Bad.c_str(), "w");
  ASSERT_NE(F, nullptr);
  std::fputs("param N\narray A[N]\ndo i = 0, N-1\n  A[i] = 1 @ 2\nend\n", F);
  std::fclose(F);
  auto [Rc, Out] = runCli("file " + Bad + " print");
  EXPECT_EQ(Rc, 3);
  EXPECT_NE(Out.find("line 4"), std::string::npos) << Out;
  EXPECT_NE(Out.find("col"), std::string::npos) << Out;
  EXPECT_NE(Out.find("unexpected character '@'"), std::string::npos) << Out;
}

TEST_F(CliFile, MissingArrayFlagIsUsageErrorExit1) {
  auto [Rc, Out] = runCli("file " + Path + " codegen --block=8,8");
  EXPECT_EQ(Rc, 1);
  EXPECT_NE(Out.find("usage-error"), std::string::npos) << Out;
}

TEST_F(CliFile, MismatchedShackleArrayIsReportedNotAborted) {
  // --array=B is not declared by the program: a structured error, never a
  // crash/abort.
  auto [Rc, Out] = runCli("file " + Path + " codegen --array=B --block=8,8");
  EXPECT_EQ(Rc, 1);
  EXPECT_NE(Out.find("error"), std::string::npos) << Out;
}

TEST_F(CliFile, TinySolverBudgetMakesLegalityUndecidedExit4) {
  auto [Rc, Out] = runCli("file " + Path +
                          " legality --array=A --block=8,8 --solver-budget=5");
  EXPECT_EQ(Rc, 4);
  EXPECT_NE(Out.find("legality-unknown"), std::string::npos) << Out;
  EXPECT_NE(Out.find("budget"), std::string::npos) << Out;
}

TEST_F(CliFile, TinySolverBudgetCodegenFallsBackToOriginal) {
  auto [Rc, Out] = runCli("file " + Path +
                          " codegen --array=A --block=8,8 --solver-budget=5");
  // Fallback still emits runnable (original) code and exits 0.
  EXPECT_EQ(Rc, 0);
  EXPECT_NE(Out.find("codegen tier: original"), std::string::npos) << Out;
  EXPECT_NE(Out.find("falling back"), std::string::npos) << Out;
  EXPECT_NE(Out.find("do J = 0 .. N - 1"), std::string::npos) << Out;
  EXPECT_EQ(Out.find("do b1"), std::string::npos) << Out;
}

TEST_F(CliFile, StrictRefusesFallbackTiers) {
  auto [Rc, Out] =
      runCli("file " + Path +
             " codegen --array=A --block=8,8 --solver-budget=5 --strict");
  EXPECT_EQ(Rc, 4);
  EXPECT_NE(Out.find("refusing to emit"), std::string::npos) << Out;
  // And a healthy run is unaffected by --strict.
  auto [Rc2, Out2] =
      runCli("file " + Path + " codegen --array=A --block=8,8 --strict");
  EXPECT_EQ(Rc2, 0);
  EXPECT_NE(Out2.find("codegen tier: shackled"), std::string::npos) << Out2;
  EXPECT_NE(Out2.find("do b1"), std::string::npos) << Out2;
}

} // namespace
